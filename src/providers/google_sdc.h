// Google App Engine + Secure Data Connector model (§2.3, Fig. 4).
//
// Pipeline, in the paper's order:
//   user --> Apps front-end --> Tunnel Server (validates the request,
//   establishes the encrypted tunnel) --> SDC agent (checks resource rules)
//   --> service server (validates the signed request, checks credentials,
//   returns data).
//
// The signed request carries the fields §2.3 lists: owner_id, viewer_id,
// instance_id, app_id, public_key, consumer_key, nonce, token, signature.
// The datastore beneath exposes only GET/PUT, like the low-level API the
// paper cites.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "crypto/aead.h"
#include "crypto/rsa.h"
#include "providers/platform.h"
#include "storage/object_store.h"

namespace tpnr::providers {

/// The OpenSocial-style signed request of §2.3.
struct SignedRequest {
  std::string owner_id;
  std::string viewer_id;
  std::string instance_id;
  std::string app_id;
  Bytes public_key_fingerprint;
  std::string consumer_key;
  std::uint64_t nonce = 0;
  std::string token;
  std::string method;    ///< "GET" or "PUT"
  std::string resource;  ///< datastore key
  Bytes body;            ///< PUT payload
  Bytes signature;       ///< RSA over canonical_encode()

  /// Everything except the signature, canonically encoded.
  [[nodiscard]] Bytes canonical_encode() const;
};

/// Prefix-based access rule: who may touch which resources.
struct ResourceRule {
  std::string resource_prefix;
  std::set<std::string> allowed_viewers;
};

struct SdcResponse {
  int status = 0;  ///< 200, 400, 401, 403, 404
  Bytes body;
  std::string detail;
};

class GoogleSdcService final : public CloudPlatform {
 public:
  explicit GoogleSdcService(common::SimClock& clock);

  /// Registers a consumer (an Apps domain user): stores their verified
  /// public key and issues an access token.
  std::string register_consumer(const std::string& consumer_key,
                                const crypto::RsaPublicKey& key,
                                crypto::Drbg& rng);

  void add_resource_rule(ResourceRule rule);

  /// The full Fig. 4 pipeline for one request. Validation order follows the
  /// figure: tunnel (authn) -> resource rules (authz) -> service server
  /// (signature + credentials) -> datastore.
  SdcResponse handle(const SignedRequest& request);

  /// Client-side helper: fills in token bookkeeping and signs.
  static SignedRequest make_signed_request(
      const std::string& consumer_key, const std::string& viewer_id,
      const std::string& token, const crypto::RsaPrivateKey& key,
      std::uint64_t nonce, const std::string& method,
      const std::string& resource, BytesView body);

  // --- CloudPlatform ---
  [[nodiscard]] std::string name() const override { return "gae"; }
  UploadReceipt upload(const std::string& user, const std::string& key,
                       BytesView data, BytesView md5) override;
  DownloadResult download(const std::string& user,
                          const std::string& key) override;
  bool tamper(const std::string& key, BytesView new_data) override;

  [[nodiscard]] std::uint64_t tunnel_sessions() const noexcept {
    return tunnel_sessions_;
  }

 private:
  struct Consumer {
    crypto::RsaPublicKey key;
    std::string token;
    std::set<std::uint64_t> seen_nonces;  ///< replay cache
  };

  [[nodiscard]] bool authorized(const std::string& viewer,
                                const std::string& resource) const;

  common::SimClock* clock_;
  std::map<std::string, Consumer> consumers_;
  std::vector<ResourceRule> rules_;
  storage::ObjectStore datastore_;
  std::uint64_t tunnel_sessions_ = 0;
  // CloudPlatform adapter state: a keypair + nonce counter per enrolled user.
  std::map<std::string, crypto::RsaKeyPair> adapter_keys_;
  std::map<std::string, std::string> adapter_tokens_;
  std::uint64_t adapter_nonce_ = 1;
  crypto::Drbg adapter_rng_{std::uint64_t{0x5dc}};
};

}  // namespace tpnr::providers
