#include "providers/aws_import_export.h"

#include "common/serial.h"
#include "crypto/hash.h"
#include "crypto/hmac.h"

namespace tpnr::providers {

Bytes Manifest::encode() const {
  common::BinaryWriter w;
  w.str(access_key_id);
  w.str(device_id);
  w.str(destination);
  w.str(operation);
  w.str(return_address);
  return w.take();
}

Manifest Manifest::decode(BytesView data) {
  common::BinaryReader r(data);
  Manifest m;
  m.access_key_id = r.str();
  m.device_id = r.str();
  m.destination = r.str();
  m.operation = r.str();
  m.return_address = r.str();
  r.expect_done();
  return m;
}

AwsImportExport::AwsImportExport(common::SimClock& clock,
                                 SimTime shipping_transit)
    : clock_(&clock),
      shipping_transit_(shipping_transit),
      bucket_(std::make_unique<storage::MemoryBackend>()) {}

Bytes AwsImportExport::register_user(const std::string& access_key_id,
                                     crypto::Drbg& rng) {
  Bytes secret = rng.bytes(32);
  user_secrets_[access_key_id] = secret;
  return secret;
}

Bytes AwsImportExport::sign_job(BytesView secret, const std::string& job_id,
                                const Manifest& manifest) {
  Bytes input = common::to_bytes(job_id);
  common::append(input, manifest.encode());
  return crypto::hmac_sha256_cached(secret, input);
}

std::optional<std::string> AwsImportExport::create_job(
    const Manifest& manifest, BytesView manifest_signature) {
  const auto secret_it = user_secrets_.find(manifest.access_key_id);
  if (secret_it == user_secrets_.end()) return std::nullopt;
  // The e-mailed manifest itself is authenticated with the user secret.
  const Bytes expected =
      crypto::hmac_sha256_cached(secret_it->second, manifest.encode());
  if (!common::constant_time_equal(expected, manifest_signature)) {
    return std::nullopt;
  }
  Job job;
  job.manifest = manifest;
  job.job_id = "job-" + std::to_string(next_job_++);
  jobs_[job.job_id] = job;
  return job.job_id;
}

JobReport AwsImportExport::receive_device(const std::string& job_id,
                                          const Device& device,
                                          const SignatureFile& signature_file) {
  // The device spends the transit time in the mail before processing.
  clock_->advance(shipping_transit_);

  JobReport report;
  report.job_id = job_id;

  const auto job_it = jobs_.find(job_id);
  if (job_it == jobs_.end()) {
    report.detail = "unknown job";
    return report;
  }
  Job& job = job_it->second;
  const auto secret_it = user_secrets_.find(job.manifest.access_key_id);
  if (secret_it == user_secrets_.end()) {
    report.detail = "unknown user";
    return report;
  }
  // "On receiving the storage device and the signature file, the service
  // provider will validate the signature in the device with the manifest."
  if (signature_file.job_id != job_id ||
      !common::constant_time_equal(
          signature_file.signature,
          sign_job(secret_it->second, job_id, job.manifest))) {
    report.detail = "signature file validation failed";
    return report;
  }

  common::BinaryWriter log;
  for (const auto& [key, data] : device) {
    const std::string object_key = job.manifest.destination + "/" + key;
    const Bytes digest = crypto::md5(data);
    bucket_.put(object_key, data, digest, clock_->now());
    ReportEntry entry{key, data.size(), digest, "ok"};
    report.entries.push_back(entry);
    log.str(key);
    log.u64(entry.bytes);
    log.bytes(entry.md5);
  }
  // "the location on Amazon S3 of the AWS Import Export Log".
  report.log_location = job.manifest.destination + "/import-log-" + job_id;
  const Bytes log_bytes = log.take();
  bucket_.put(report.log_location, log_bytes, crypto::md5(log_bytes),
              clock_->now());
  job.completed = true;
  report.ok = true;
  return report;
}

AwsImportExport::ExportResult AwsImportExport::serve_export(
    const std::string& job_id, const SignatureFile& signature_file) {
  ExportResult result;
  result.report.job_id = job_id;

  const auto job_it = jobs_.find(job_id);
  if (job_it == jobs_.end()) {
    result.report.detail = "unknown job";
    return result;
  }
  Job& job = job_it->second;
  const auto secret_it = user_secrets_.find(job.manifest.access_key_id);
  if (secret_it == user_secrets_.end()) {
    result.report.detail = "unknown user";
    return result;
  }
  if (signature_file.job_id != job_id ||
      !common::constant_time_equal(
          signature_file.signature,
          sign_job(secret_it->second, job_id, job.manifest))) {
    result.report.detail = "signature file validation failed";
    return result;
  }

  const std::string prefix = job.manifest.destination + "/";
  for (const std::string& key : bucket_.list()) {
    if (key.rfind(prefix, 0) != 0) continue;
    auto record = bucket_.get(key);
    if (!record) continue;
    const std::string device_key = key.substr(prefix.size());
    // "ship it back, and email the user the status including MD5 of the
    // Data" — MD5 recomputed from what is in the store NOW.
    ReportEntry entry{device_key, record->data.size(),
                      crypto::md5(record->data), "ok"};
    result.report.entries.push_back(entry);
    result.device[device_key] = record->data.to_bytes();
  }
  // Return shipping.
  clock_->advance(shipping_transit_);
  job.completed = true;
  result.report.ok = true;
  return result;
}

UploadReceipt AwsImportExport::upload(const std::string& user,
                                      const std::string& key, BytesView data,
                                      BytesView md5) {
  if (!user_secrets_.contains(user)) {
    return {false, "unknown user " + user, {}};
  }
  if (crypto::md5(data) != Bytes(md5.begin(), md5.end())) {
    return {false, "MD5 mismatch on upload", {}};
  }
  bucket_.put(key, common::Payload::copy_of(data), md5, clock_->now());
  return {true, "", Bytes(md5.begin(), md5.end())};
}

DownloadResult AwsImportExport::download(const std::string& user,
                                         const std::string& key) {
  DownloadResult result;
  result.md5_source = Md5Source::kRecomputed;
  if (!user_secrets_.contains(user)) {
    result.detail = "unknown user " + user;
    return result;
  }
  auto record = bucket_.get(key);
  if (!record) {
    result.detail = "no such object";
    return result;
  }
  result.ok = true;
  // AWS behaviour: recompute from the bytes being served.
  result.md5_returned = crypto::md5(record->data);
  result.data = record->data.to_bytes();
  return result;
}

bool AwsImportExport::tamper(const std::string& key, BytesView new_data) {
  return bucket_.tamper(key, new_data);
}

}  // namespace tpnr::providers
