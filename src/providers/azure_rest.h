// Windows Azure Storage model (§2.2, Fig. 3, Table 1): Blob/Table/Queue
// stores behind a REST front-end authenticated with SharedKey HMAC-SHA256
// over a canonicalized request, with Content-MD5 integrity on PUT and the
// stored MD5 echoed back on GET (§2.4: "the original MD5_1 will be sent").
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "providers/platform.h"
#include "storage/object_store.h"

namespace tpnr::providers {

/// An HTTP-shaped request, canonicalized and signed per the SharedKey
/// scheme. Header names are case-sensitive lowercase internally.
struct RestRequest {
  std::string method;                          ///< "PUT" / "GET" / "DELETE"
  std::string path;                            ///< "/container/blob?comp=..."
  std::map<std::string, std::string> headers;  ///< incl. x-ms-date, x-ms-version
  Bytes body;

  /// Canonical wire encoding (for transport over a secure channel).
  [[nodiscard]] Bytes encode() const;
  static RestRequest decode(BytesView data);
};

struct RestResponse {
  int status = 0;  ///< 200/201, 400, 403, 404
  std::map<std::string, std::string> headers;
  Bytes body;
  std::string detail;  ///< human-readable error context

  [[nodiscard]] Bytes encode() const;
  static RestResponse decode(BytesView data);
};

/// The string-to-sign: method, content-length, content-md5, x-ms-date,
/// x-ms-version, then the path — a faithful simplification of Azure's
/// canonicalized-headers + canonicalized-resource construction.
std::string canonicalize(const RestRequest& request);

/// Computes the SharedKey authorization value "SharedKey account:signature".
std::string shared_key_authorization(const std::string& account,
                                     BytesView account_key,
                                     const RestRequest& request);

/// Attaches the Authorization header in place.
void sign_request(RestRequest& request, const std::string& account,
                  BytesView account_key);

/// Service-side scale limits, scaled down from the real 50 GB / 8 KB for
/// fast simulation but enforced the same way.
struct AzureLimits {
  std::size_t max_blob_bytes = 50ull << 20;  ///< stands in for 50 GB
  std::size_t max_queue_message_bytes = 8 << 10;
};

class AzureRestService final : public CloudPlatform {
 public:
  using Limits = AzureLimits;

  explicit AzureRestService(common::SimClock& clock,
                            AzureLimits limits = AzureLimits{});

  /// Creates an account and returns its fresh 256-bit secret key (what the
  /// Azure portal hands the user).
  Bytes create_account(const std::string& account, crypto::Drbg& rng);
  [[nodiscard]] bool has_account(const std::string& account) const;

  /// The REST front door: authenticates, then routes blob/table/queue ops.
  RestResponse handle(const RestRequest& request);

  // --- CloudPlatform (drives the blob store through the REST path) ---
  [[nodiscard]] std::string name() const override { return "azure"; }
  UploadReceipt upload(const std::string& user, const std::string& key,
                       BytesView data, BytesView md5) override;
  DownloadResult download(const std::string& user,
                          const std::string& key) override;
  bool tamper(const std::string& key, BytesView new_data) override;

  /// Table entity operations (authenticated like blobs).
  RestResponse put_entity(const std::string& account, const std::string& table,
                          const std::string& row_key, BytesView entity);
  RestResponse get_entity(const std::string& account, const std::string& table,
                          const std::string& row_key);

  /// Queue operations with the 8 KB message cap.
  RestResponse enqueue(const std::string& account, const std::string& queue,
                       BytesView message);
  RestResponse dequeue(const std::string& account, const std::string& queue);

  // Block-blob operations — the exact shape of Table 1's
  // "PUT ...?comp=block&blockid=blockid1". Blocks are staged per blob and
  // only become readable after a block-list commit.
  /// Stages one block (authenticated caller already established).
  RestResponse put_block(const std::string& account, const std::string& blob,
                         const std::string& block_id, BytesView data);
  /// Commits an ordered list of staged blocks into the blob.
  RestResponse put_block_list(const std::string& account,
                              const std::string& blob,
                              const std::vector<std::string>& block_ids);
  /// Blocks staged but not yet committed for a blob.
  [[nodiscard]] std::vector<std::string> uncommitted_blocks(
      const std::string& account, const std::string& blob) const;

  [[nodiscard]] storage::ObjectStore& blob_store() noexcept { return blobs_; }

 private:
  /// Verifies the Authorization header; returns the account on success.
  [[nodiscard]] std::optional<std::string> authenticate(
      const RestRequest& request) const;
  RestResponse handle_blob_put(const std::string& account,
                               const RestRequest& request);
  RestResponse handle_blob_get(const RestRequest& request);

  common::SimClock* clock_;
  Limits limits_;
  std::map<std::string, Bytes> account_keys_;
  storage::ObjectStore blobs_;
  std::map<std::string, std::map<std::string, Bytes>> tables_;
  std::map<std::string, std::deque<Bytes>> queues_;
  /// Staged, uncommitted blocks: "account/blob" -> block_id -> bytes.
  std::map<std::string, std::map<std::string, Bytes>> staged_blocks_;
};

}  // namespace tpnr::providers
