#include "providers/google_sdc.h"

#include "common/serial.h"
#include "crypto/hash.h"
#include "crypto/verify_memo.h"

namespace tpnr::providers {

Bytes SignedRequest::canonical_encode() const {
  common::BinaryWriter w;
  w.str(owner_id);
  w.str(viewer_id);
  w.str(instance_id);
  w.str(app_id);
  w.bytes(public_key_fingerprint);
  w.str(consumer_key);
  w.u64(nonce);
  w.str(token);
  w.str(method);
  w.str(resource);
  w.bytes(body);
  return w.take();
}

GoogleSdcService::GoogleSdcService(common::SimClock& clock)
    : clock_(&clock), datastore_(std::make_unique<storage::MemoryBackend>()) {}

std::string GoogleSdcService::register_consumer(
    const std::string& consumer_key, const crypto::RsaPublicKey& key,
    crypto::Drbg& rng) {
  Consumer consumer;
  consumer.key = key;
  consumer.token = "tok-" + common::to_hex(rng.bytes(12));
  const std::string token = consumer.token;
  consumers_[consumer_key] = std::move(consumer);
  return token;
}

void GoogleSdcService::add_resource_rule(ResourceRule rule) {
  rules_.push_back(std::move(rule));
}

bool GoogleSdcService::authorized(const std::string& viewer,
                                  const std::string& resource) const {
  for (const ResourceRule& rule : rules_) {
    if (resource.rfind(rule.resource_prefix, 0) == 0 &&
        rule.allowed_viewers.contains(viewer)) {
      return true;
    }
  }
  return false;
}

SdcResponse GoogleSdcService::handle(const SignedRequest& request) {
  // 1. Tunnel server validates the request identity and sets up the
  //    encrypted tunnel.
  const auto consumer_it = consumers_.find(request.consumer_key);
  if (consumer_it == consumers_.end()) {
    return {401, {}, "tunnel: unknown consumer_key"};
  }
  Consumer& consumer = consumer_it->second;
  if (request.token != consumer.token) {
    return {401, {}, "tunnel: bad token"};
  }
  if (consumer.seen_nonces.contains(request.nonce)) {
    return {401, {}, "tunnel: replayed nonce"};
  }
  if (request.public_key_fingerprint != consumer.key.fingerprint()) {
    return {401, {}, "tunnel: key fingerprint mismatch"};
  }
  ++tunnel_sessions_;  // encrypted tunnel established

  // 2. SDC checks the resource rules: is this viewer authorized?
  if (!authorized(request.viewer_id, request.resource)) {
    return {403, {}, "sdc: resource rule denies access"};
  }

  // 3. Service server validates the signed request and credentials.
  if (!crypto::rsa_verify_memo(consumer.key, crypto::HashKind::kSha256,
                               request.canonical_encode(),
                               request.signature)) {
    return {401, {}, "service: bad request signature"};
  }
  consumer.seen_nonces.insert(request.nonce);

  // 4. Datastore GET/PUT (the only operations the low API offers).
  if (request.method == "PUT") {
    datastore_.put(request.resource, request.body, crypto::md5(request.body),
                   clock_->now());
    return {200, {}, ""};
  }
  if (request.method == "GET") {
    auto record = datastore_.get(request.resource);
    if (!record) return {404, {}, "datastore: no such entity"};
    return {200, record->data.to_bytes(), ""};
  }
  return {400, {}, "unsupported method " + request.method};
}

SignedRequest GoogleSdcService::make_signed_request(
    const std::string& consumer_key, const std::string& viewer_id,
    const std::string& token, const crypto::RsaPrivateKey& key,
    std::uint64_t nonce, const std::string& method,
    const std::string& resource, BytesView body) {
  SignedRequest request;
  request.owner_id = consumer_key;
  request.viewer_id = viewer_id;
  request.instance_id = "instance-0";
  request.app_id = "app-storage";
  request.public_key_fingerprint = key.public_key().fingerprint();
  request.consumer_key = consumer_key;
  request.nonce = nonce;
  request.token = token;
  request.method = method;
  request.resource = resource;
  request.body = Bytes(body.begin(), body.end());
  request.signature = crypto::rsa_sign(key, crypto::HashKind::kSha256,
                                       request.canonical_encode());
  return request;
}

UploadReceipt GoogleSdcService::upload(const std::string& user,
                                       const std::string& key, BytesView data,
                                       BytesView md5) {
  auto key_it = adapter_keys_.find(user);
  if (key_it == adapter_keys_.end()) {
    // First use: enroll the user with a fresh keypair, token and an
    // all-access rule for their own prefix.
    adapter_keys_[user] = crypto::rsa_generate(1024, adapter_rng_);
    key_it = adapter_keys_.find(user);
    adapter_tokens_[user] = register_consumer(
        user, key_it->second.pub, adapter_rng_);
    add_resource_rule(ResourceRule{"", {user}});
  }
  if (crypto::md5(data) != Bytes(md5.begin(), md5.end())) {
    return {false, "MD5 mismatch on upload", {}};
  }
  const SignedRequest request = make_signed_request(
      user, user, adapter_tokens_[user], key_it->second.priv,
      adapter_nonce_++, "PUT", key, data);
  const SdcResponse response = handle(request);
  if (response.status != 200) return {false, response.detail, {}};
  return {true, "", Bytes(md5.begin(), md5.end())};
}

DownloadResult GoogleSdcService::download(const std::string& user,
                                          const std::string& key) {
  DownloadResult result;
  result.md5_source = Md5Source::kStoredAtUpload;
  const auto key_it = adapter_keys_.find(user);
  if (key_it == adapter_keys_.end()) {
    result.detail = "user not enrolled";
    return result;
  }
  const SignedRequest request = make_signed_request(
      user, user, adapter_tokens_[user], key_it->second.priv,
      adapter_nonce_++, "GET", key, {});
  SdcResponse response = handle(request);
  if (response.status != 200) {
    result.detail = response.detail;
    return result;
  }
  result.ok = true;
  result.data = std::move(response.body);
  // GAE's low API returns no checksum at all (§2.3: "there is no content
  // addressing the issues of securing storage services"); the adapter
  // surfaces the stored MD5 the datastore kept, mirroring Fig. 5's generic
  // shape.
  auto record = datastore_.get(key);
  if (record) result.md5_returned = record->stored_md5;
  return result;
}

bool GoogleSdcService::tamper(const std::string& key, BytesView new_data) {
  return datastore_.tamper(key, new_data);
}

}  // namespace tpnr::providers
