// AWS Import/Export model (§2.1, Fig. 2): a user prepares a manifest file
// (AccessKeyID, DeviceID, Destination, ...), signs it, e-mails it to the
// provider, then ships a storage device with an attached signature file.
// The provider validates the signature against the manifest, copies the
// data, and e-mails back a report with byte counts and RECOMPUTED MD5s
// (§2.4: "the Amazon AWS computes the data MD5 and emails to the user").
// Shipping is simulated with a configurable transit delay on the shared
// clock — the §6 observation that protocol time is trivial against
// surface-mail time falls out of this model.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "crypto/hmac.h"
#include "providers/platform.h"
#include "storage/object_store.h"

namespace tpnr::providers {

/// The import/export metadata file.
struct Manifest {
  std::string access_key_id;
  std::string device_id;
  std::string destination;  ///< S3 bucket name
  std::string operation;    ///< "import" or "export"
  std::string return_address;

  [[nodiscard]] Bytes encode() const;
  static Manifest decode(BytesView data);
};

/// The metadata file attached to the shipped device: identifies the job and
/// carries the HMAC that authenticates the request ("the cipher algorithm
/// that is adopted to encrypt the job ID and the bytes in the manifest").
struct SignatureFile {
  std::string job_id;
  std::string cipher = "hmac-sha256";
  Bytes signature;  ///< HMAC_secret(job_id || manifest bytes)
};

/// The physical device: a bag of files.
using Device = std::map<std::string, Bytes>;

/// Per-file line of the e-mailed report / import log.
struct ReportEntry {
  std::string key;
  std::uint64_t bytes = 0;
  Bytes md5;  ///< recomputed by the provider
  std::string status;
};

struct JobReport {
  std::string job_id;
  bool ok = false;
  std::string detail;
  std::vector<ReportEntry> entries;
  std::string log_location;  ///< S3 key of the import/export log
};

class AwsImportExport final : public CloudPlatform {
 public:
  AwsImportExport(common::SimClock& clock,
                  SimTime shipping_transit = 2 * common::kHour);

  /// Registers a user and returns the shared secret used for signature
  /// files (stands in for the AWS secret access key).
  Bytes register_user(const std::string& access_key_id, crypto::Drbg& rng);

  /// Step 1 (e-mail): user sends the signed manifest; provider validates
  /// and returns a job id, or nullopt when the signature is bad.
  std::optional<std::string> create_job(const Manifest& manifest,
                                        BytesView manifest_signature);

  /// Steps 2-4 (shipping + load): device with attached signature file
  /// arrives after the transit delay; the provider validates, copies data
  /// into the destination bucket, writes the log, and "e-mails" the report.
  JobReport receive_device(const std::string& job_id, const Device& device,
                           const SignatureFile& signature_file);

  /// Export path: provider copies bucket objects onto a device and ships it
  /// back; the report carries the MD5 of the data written.
  struct ExportResult {
    JobReport report;
    Device device;
  };
  ExportResult serve_export(const std::string& job_id,
                            const SignatureFile& signature_file);

  /// Computes the signature-file HMAC the way the client must.
  static Bytes sign_job(BytesView secret, const std::string& job_id,
                        const Manifest& manifest);

  // --- CloudPlatform (direct S3-ish path used by the Fig. 5 harness) ---
  [[nodiscard]] std::string name() const override { return "aws"; }
  UploadReceipt upload(const std::string& user, const std::string& key,
                       BytesView data, BytesView md5) override;
  DownloadResult download(const std::string& user,
                          const std::string& key) override;
  bool tamper(const std::string& key, BytesView new_data) override;

  [[nodiscard]] storage::ObjectStore& bucket_store() noexcept {
    return bucket_;
  }
  [[nodiscard]] SimTime shipping_transit() const noexcept {
    return shipping_transit_;
  }

 private:
  struct Job {
    Manifest manifest;
    std::string job_id;
    bool completed = false;
  };

  common::SimClock* clock_;
  SimTime shipping_transit_;
  std::map<std::string, Bytes> user_secrets_;
  std::map<std::string, Job> jobs_;
  storage::ObjectStore bucket_;
  std::uint64_t next_job_ = 1;
};

}  // namespace tpnr::providers
