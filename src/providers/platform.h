// The common upload/store/download shape of all three platforms — Fig. 5 of
// the paper. Each provider model implements this so the integrity-gap
// experiment (bench_fig5) can drive AWS/Azure/GAE interchangeably:
//
//   user1 --(data + MD5_1)--> provider --(data + MD5)--> user2
//
// The MD5 the provider returns is either the one stored at upload (Azure) or
// recomputed from the bytes at download (AWS) — the distinction §2.4 draws,
// and the reason neither detects in-store tampering.
#pragma once

#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/clock.h"

namespace tpnr::providers {

using common::Bytes;
using common::BytesView;
using common::SimTime;

/// Where the MD5 returned on download came from.
enum class Md5Source {
  kStoredAtUpload,   ///< Azure: the original MD5_1 echoes back
  kRecomputed,       ///< AWS: MD5_2 computed from current bytes
};

struct UploadReceipt {
  bool accepted = false;
  std::string detail;      ///< error description when !accepted
  Bytes md5_of_received;   ///< what the provider acknowledged
};

struct DownloadResult {
  bool ok = false;
  std::string detail;
  Bytes data;
  Bytes md5_returned;
  Md5Source md5_source = Md5Source::kStoredAtUpload;
};

/// A cloud storage platform, as seen by a (already authenticated) user
/// session. Authentication specifics live in each concrete provider; this
/// interface captures only the Fig. 5 data path.
class CloudPlatform {
 public:
  virtual ~CloudPlatform() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Upload session: client supplies data and its MD5; the provider verifies
  /// and stores.
  virtual UploadReceipt upload(const std::string& user, const std::string& key,
                               BytesView data, BytesView md5) = 0;

  /// Download session: provider returns data plus an MD5 per its policy.
  virtual DownloadResult download(const std::string& user,
                                  const std::string& key) = 0;

  /// The Eve operation: the storage administrator silently replaces the
  /// object bytes. Returns false if the object does not exist.
  virtual bool tamper(const std::string& key, BytesView new_data) = 0;
};

}  // namespace tpnr::providers
