#include "providers/azure_rest.h"

#include "common/base64.h"
#include "common/serial.h"
#include "crypto/hash.h"
#include "crypto/hmac.h"

namespace tpnr::providers {

namespace {

std::string header_or_empty(const RestRequest& request,
                            const std::string& name) {
  const auto it = request.headers.find(name);
  return it == request.headers.end() ? std::string{} : it->second;
}

}  // namespace

Bytes RestRequest::encode() const {
  common::BinaryWriter w;
  w.str(method);
  w.str(path);
  w.u32(static_cast<std::uint32_t>(headers.size()));
  for (const auto& [name, value] : headers) {
    w.str(name);
    w.str(value);
  }
  w.bytes(body);
  return w.take();
}

RestRequest RestRequest::decode(BytesView data) {
  common::BinaryReader r(data);
  RestRequest request;
  request.method = r.str();
  request.path = r.str();
  const std::uint32_t header_count = r.u32();
  for (std::uint32_t i = 0; i < header_count; ++i) {
    const std::string name = r.str();
    request.headers[name] = r.str();
  }
  request.body = r.bytes();
  r.expect_done();
  return request;
}

Bytes RestResponse::encode() const {
  common::BinaryWriter w;
  w.i64(status);
  w.u32(static_cast<std::uint32_t>(headers.size()));
  for (const auto& [name, value] : headers) {
    w.str(name);
    w.str(value);
  }
  w.bytes(body);
  w.str(detail);
  return w.take();
}

RestResponse RestResponse::decode(BytesView data) {
  common::BinaryReader r(data);
  RestResponse response;
  response.status = static_cast<int>(r.i64());
  const std::uint32_t header_count = r.u32();
  for (std::uint32_t i = 0; i < header_count; ++i) {
    const std::string name = r.str();
    response.headers[name] = r.str();
  }
  response.body = r.bytes();
  response.detail = r.str();
  r.expect_done();
  return response;
}

std::string canonicalize(const RestRequest& request) {
  std::string out;
  out += request.method;
  out += '\n';
  out += std::to_string(request.body.size());
  out += '\n';
  out += header_or_empty(request, "content-md5");
  out += '\n';
  out += header_or_empty(request, "x-ms-date");
  out += '\n';
  out += header_or_empty(request, "x-ms-version");
  out += '\n';
  out += request.path;
  return out;
}

std::string shared_key_authorization(const std::string& account,
                                     BytesView account_key,
                                     const RestRequest& request) {
  // The account key signs every request in the account's lifetime; the
  // cached key state skips the HMAC pad compressions on all but the first.
  const Bytes mac = crypto::hmac_sha256_cached(
      account_key, common::to_bytes(canonicalize(request)));
  return "SharedKey " + account + ":" + common::base64_encode(mac);
}

void sign_request(RestRequest& request, const std::string& account,
                  BytesView account_key) {
  request.headers["authorization"] =
      shared_key_authorization(account, account_key, request);
}

AzureRestService::AzureRestService(common::SimClock& clock, Limits limits)
    : clock_(&clock),
      limits_(limits),
      blobs_(std::make_unique<storage::MemoryBackend>()) {}

Bytes AzureRestService::create_account(const std::string& account,
                                       crypto::Drbg& rng) {
  Bytes key = rng.bytes(32);  // the portal's 256-bit secret key
  account_keys_[account] = key;
  return key;
}

bool AzureRestService::has_account(const std::string& account) const {
  return account_keys_.contains(account);
}

std::optional<std::string> AzureRestService::authenticate(
    const RestRequest& request) const {
  const std::string auth = header_or_empty(request, "authorization");
  constexpr std::string_view kPrefix = "SharedKey ";
  if (auth.rfind(kPrefix, 0) != 0) return std::nullopt;
  const std::size_t colon = auth.find(':', kPrefix.size());
  if (colon == std::string::npos) return std::nullopt;
  const std::string account = auth.substr(kPrefix.size(),
                                          colon - kPrefix.size());
  const auto key_it = account_keys_.find(account);
  if (key_it == account_keys_.end()) return std::nullopt;

  const std::string expected =
      shared_key_authorization(account, key_it->second, request);
  // Constant-time compare of the whole header value.
  if (!common::constant_time_equal(common::to_bytes(auth),
                                   common::to_bytes(expected))) {
    return std::nullopt;
  }
  return account;
}

RestResponse AzureRestService::handle(const RestRequest& request) {
  const auto account = authenticate(request);
  if (!account) {
    return {403, {}, {}, "authentication failed: bad SharedKey signature"};
  }
  if (request.method == "PUT") return handle_blob_put(*account, request);
  if (request.method == "GET") return handle_blob_get(request);
  if (request.method == "DELETE") {
    if (!blobs_.remove(request.path)) return {404, {}, {}, "no such blob"};
    return {200, {}, {}, ""};
  }
  return {400, {}, {}, "unsupported method " + request.method};
}

namespace {

/// Extracts a query parameter value from "path?k1=v1&k2=v2"; empty if absent.
std::string query_param(const std::string& path, const std::string& name) {
  const std::size_t question = path.find('?');
  if (question == std::string::npos) return {};
  std::string query = path.substr(question + 1);
  std::size_t start = 0;
  while (start < query.size()) {
    std::size_t end = query.find('&', start);
    if (end == std::string::npos) end = query.size();
    const std::string pair = query.substr(start, end - start);
    const std::size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == name) {
      return pair.substr(eq + 1);
    }
    start = end + 1;
  }
  return {};
}

std::string path_without_query(const std::string& path) {
  const std::size_t question = path.find('?');
  return question == std::string::npos ? path : path.substr(0, question);
}

}  // namespace

RestResponse AzureRestService::handle_blob_put(const std::string& account,
                                               const RestRequest& request) {
  // Table 1's block operations arrive as query parameters on the PUT.
  const std::string comp = query_param(request.path, "comp");
  if (comp == "block") {
    const std::string block_id = query_param(request.path, "blockid");
    return put_block(account, path_without_query(request.path), block_id,
                     request.body);
  }
  if (comp == "blocklist") {
    // Body: newline-separated block ids, in commit order.
    std::vector<std::string> ids;
    std::string current;
    for (const std::uint8_t byte : request.body) {
      if (byte == '\n') {
        if (!current.empty()) ids.push_back(current);
        current.clear();
      } else {
        current.push_back(static_cast<char>(byte));
      }
    }
    if (!current.empty()) ids.push_back(current);
    return put_block_list(account, path_without_query(request.path), ids);
  }

  if (request.body.size() > limits_.max_blob_bytes) {
    return {400, {}, {}, "blob exceeds size limit"};
  }
  const std::string content_md5 = header_or_empty(request, "content-md5");
  Bytes md5_raw;
  if (!content_md5.empty()) {
    try {
      md5_raw = common::base64_decode(content_md5);
    } catch (const std::invalid_argument&) {
      return {400, {}, {}, "malformed Content-MD5"};
    }
    // "The MD5 checksum is checked by the server. If it does not match, an
    // error is returned."
    if (crypto::md5(request.body) != md5_raw) {
      return {400, {}, {}, "Content-MD5 mismatch"};
    }
  }
  blobs_.put(request.path, request.body, md5_raw, clock_->now());
  RestResponse response{201, {}, {}, ""};
  if (!content_md5.empty()) {
    response.headers["content-md5"] = content_md5;
  }
  return response;
}

RestResponse AzureRestService::handle_blob_get(const RestRequest& request) {
  const auto record = blobs_.get(request.path);
  if (!record) return {404, {}, {}, "no such blob"};
  RestResponse response{200, {}, record->data.to_bytes(), ""};
  // "if the Content-MD5 request header was set when the Blob has been
  // uploaded, it will be returned in the response header" — the STORED
  // value, not a recomputation. This is the §2.4 vulnerability surface.
  if (!record->stored_md5.empty()) {
    response.headers["content-md5"] =
        common::base64_encode(record->stored_md5);
  }
  response.headers["content-length"] = std::to_string(record->data.size());
  return response;
}

UploadReceipt AzureRestService::upload(const std::string& user,
                                       const std::string& key, BytesView data,
                                       BytesView md5) {
  const auto key_it = account_keys_.find(user);
  if (key_it == account_keys_.end()) {
    return {false, "unknown account " + user, {}};
  }
  RestRequest request;
  request.method = "PUT";
  request.path = "/" + user + "/" + key;
  request.headers["x-ms-date"] = std::to_string(clock_->now());
  request.headers["x-ms-version"] = "2009-09-19";
  request.headers["content-md5"] = common::base64_encode(md5);
  request.body = Bytes(data.begin(), data.end());
  sign_request(request, user, key_it->second);

  const RestResponse response = handle(request);
  if (response.status != 201) return {false, response.detail, {}};
  return {true, "", Bytes(md5.begin(), md5.end())};
}

DownloadResult AzureRestService::download(const std::string& user,
                                          const std::string& key) {
  const auto key_it = account_keys_.find(user);
  if (key_it == account_keys_.end()) {
    return {false, "unknown account " + user, {}, {},
            Md5Source::kStoredAtUpload};
  }
  RestRequest request;
  request.method = "GET";
  request.path = "/" + user + "/" + key;
  request.headers["x-ms-date"] = std::to_string(clock_->now());
  request.headers["x-ms-version"] = "2009-09-19";
  sign_request(request, user, key_it->second);

  const RestResponse response = handle(request);
  DownloadResult result;
  result.md5_source = Md5Source::kStoredAtUpload;
  if (response.status != 200) {
    result.detail = response.detail;
    return result;
  }
  result.ok = true;
  result.data = response.body;
  const auto md5_it = response.headers.find("content-md5");
  if (md5_it != response.headers.end()) {
    result.md5_returned = common::base64_decode(md5_it->second);
  }
  return result;
}

bool AzureRestService::tamper(const std::string& key, BytesView new_data) {
  // Blobs are stored under "/<account>/<key>"; the administrator tampers by
  // object name regardless of owning account.
  if (blobs_.tamper(key, new_data)) return true;
  for (const std::string& path : blobs_.list()) {
    if (path.size() > key.size() &&
        path.compare(path.size() - key.size(), key.size(), key) == 0 &&
        path[path.size() - key.size() - 1] == '/') {
      return blobs_.tamper(path, new_data);
    }
  }
  return false;
}

RestResponse AzureRestService::put_entity(const std::string& account,
                                          const std::string& table,
                                          const std::string& row_key,
                                          BytesView entity) {
  if (!has_account(account)) return {403, {}, {}, "unknown account"};
  tables_[account + "/" + table][row_key] =
      Bytes(entity.begin(), entity.end());
  return {201, {}, {}, ""};
}

RestResponse AzureRestService::get_entity(const std::string& account,
                                          const std::string& table,
                                          const std::string& row_key) {
  if (!has_account(account)) return {403, {}, {}, "unknown account"};
  const auto table_it = tables_.find(account + "/" + table);
  if (table_it == tables_.end()) return {404, {}, {}, "no such table"};
  const auto row_it = table_it->second.find(row_key);
  if (row_it == table_it->second.end()) return {404, {}, {}, "no such row"};
  return {200, {}, row_it->second, ""};
}

namespace {

/// Canonical object key for an account's blob: "/<account>/<blob>", unless
/// the blob name already carries the account prefix (REST paths do).
std::string blob_key(const std::string& account, const std::string& blob) {
  const std::string prefix = "/" + account + "/";
  if (blob.rfind(prefix, 0) == 0) return blob;
  return prefix + blob;
}

}  // namespace

RestResponse AzureRestService::put_block(const std::string& account,
                                         const std::string& blob,
                                         const std::string& block_id,
                                         BytesView data) {
  if (!has_account(account)) return {403, {}, {}, "unknown account"};
  if (block_id.empty() || block_id.size() > 64) {
    return {400, {}, {}, "block id must be 1..64 characters"};
  }
  if (data.size() > limits_.max_blob_bytes) {
    return {400, {}, {}, "block exceeds size limit"};
  }
  staged_blocks_[blob_key(account, blob)][block_id] =
      Bytes(data.begin(), data.end());
  return {201, {}, {}, ""};
}

RestResponse AzureRestService::put_block_list(
    const std::string& account, const std::string& blob,
    const std::vector<std::string>& block_ids) {
  if (!has_account(account)) return {403, {}, {}, "unknown account"};
  const std::string key = blob_key(account, blob);
  const auto staged_it = staged_blocks_.find(key);

  Bytes assembled;
  for (const std::string& id : block_ids) {
    if (staged_it == staged_blocks_.end() ||
        !staged_it->second.contains(id)) {
      return {400, {}, {}, "block list references unstaged block '" + id +
                               "'"};
    }
    common::append(assembled, staged_it->second.at(id));
  }
  if (assembled.size() > limits_.max_blob_bytes) {
    return {400, {}, {}, "assembled blob exceeds size limit"};
  }
  // Commit: the assembled bytes become the blob; its MD5 is recorded the
  // way an upload-time Content-MD5 would be.
  blobs_.put(key, assembled, crypto::md5(assembled), clock_->now());
  if (staged_it != staged_blocks_.end()) staged_blocks_.erase(staged_it);
  RestResponse response{201, {}, {}, ""};
  response.headers["content-md5"] =
      common::base64_encode(crypto::md5(assembled));
  return response;
}

std::vector<std::string> AzureRestService::uncommitted_blocks(
    const std::string& account, const std::string& blob) const {
  std::vector<std::string> ids;
  const auto it = staged_blocks_.find(blob_key(account, blob));
  if (it == staged_blocks_.end()) return ids;
  ids.reserve(it->second.size());
  for (const auto& [id, data] : it->second) ids.push_back(id);
  return ids;
}

RestResponse AzureRestService::enqueue(const std::string& account,
                                       const std::string& queue,
                                       BytesView message) {
  if (!has_account(account)) return {403, {}, {}, "unknown account"};
  if (message.size() > limits_.max_queue_message_bytes) {
    return {400, {}, {}, "queue message exceeds 8K limit"};
  }
  queues_[account + "/" + queue].emplace_back(message.begin(), message.end());
  return {201, {}, {}, ""};
}

RestResponse AzureRestService::dequeue(const std::string& account,
                                       const std::string& queue) {
  if (!has_account(account)) return {403, {}, {}, "unknown account"};
  auto& q = queues_[account + "/" + queue];
  if (q.empty()) return {404, {}, {}, "queue empty"};
  RestResponse response{200, {}, std::move(q.front()), ""};
  q.pop_front();
  return response;
}

}  // namespace tpnr::providers
