#include "dyn/client.h"

#include <utility>

#include "common/error.h"
#include "common/serial.h"
#include "nr/evidence.h"

namespace tpnr::dyn {

DynClientActor::DynClientActor(std::string id, net::Network& network,
                               pki::Identity& identity, crypto::Drbg& rng,
                               Bytes master_secret, DynClientOptions options)
    : NrActor(std::move(id), network, identity, rng),
      master_secret_(std::move(master_secret)),
      options_(options),
      txn_ids_(rng.next_u64()) {}

const DynClientActor::DynObject* DynClientActor::object(
    const std::string& object_key) const {
  const auto it = objects_.find(object_key);
  return it == objects_.end() ? nullptr : &it->second;
}

const VersionChain* DynClientActor::chain(
    const std::string& object_key) const {
  const DynObject* obj = object(object_key);
  return obj == nullptr ? nullptr : &obj->chain;
}

const TagKey* DynClientActor::tag_key(const std::string& object_key) const {
  const DynObject* obj = object(object_key);
  return obj == nullptr ? nullptr : &obj->tag_key;
}

DynClientActor::DynObject* DynClientActor::mutable_object(
    const std::string& object_key) {
  const auto it = objects_.find(object_key);
  return it == objects_.end() ? nullptr : &it->second;
}

std::string DynClientActor::store_dyn(const std::string& provider,
                                      const std::string& ttp,
                                      const std::string& object_key,
                                      BytesView data, std::size_t chunk_size) {
  if (peer_key(provider) == nullptr) {
    throw common::ProtocolError(
        "DynClientActor::store_dyn: provider key unknown");
  }
  if (chunk_size == 0) {
    throw common::ProtocolError(
        "DynClientActor::store_dyn: chunk_size must be > 0");
  }
  if (data.empty()) {
    throw common::ProtocolError("DynClientActor::store_dyn: empty object");
  }
  if (objects_.count(object_key) != 0) {
    throw common::ProtocolError(
        "DynClientActor::store_dyn: object already stored");
  }

  DynObject obj;
  obj.provider = provider;
  obj.ttp = ttp;
  obj.object_key = object_key;
  obj.txn_id = txn_ids_.next_id("dyn");
  obj.chunk_size = chunk_size;
  obj.chunks = split_chunks(data, chunk_size);
  obj.tree = DynMerkleTree::build(chunk_views(obj.chunks));
  obj.tag_key = TagKey::derive(master_secret_, object_key);
  obj.alphas = obj.tag_key.alphas(sectors_per_chunk(chunk_size));
  obj.tags = make_tags(obj.tag_key, chunk_views(obj.chunks), chunk_size);

  VersionRecord record;
  record.object_key = object_key;
  record.version = 1;
  record.op = MutateOp::kStore;
  record.chunk_index = 0;
  record.chunk_count = obj.tree.leaf_count();
  record.old_root = DynMerkleTree::empty_root();
  record.new_root = obj.tree.root();
  record.chunk_tag = 0;
  record.prev_record_hash = VersionRecord::genesis_link();

  DynObject::PendingOp pending;
  pending.client_sig = identity_->sign(record.encode());
  pending.record = std::move(record);
  pending.chunk = Bytes(data.begin(), data.end());
  obj.pending = std::move(pending);

  const std::string txn_id = obj.txn_id;
  txn_to_object_[txn_id] = object_key;
  objects_.emplace(object_key, std::move(obj));
  transmit_pending(object_key);
  return txn_id;
}

bool DynClientActor::update(const std::string& object_key,
                            std::uint64_t index, BytesView chunk) {
  DynObject* obj = mutable_object(object_key);
  return obj != nullptr &&
         begin_mutation(*obj, MutateOp::kUpdate, index, chunk);
}

bool DynClientActor::insert(const std::string& object_key,
                            std::uint64_t index, BytesView chunk) {
  DynObject* obj = mutable_object(object_key);
  return obj != nullptr &&
         begin_mutation(*obj, MutateOp::kInsert, index, chunk);
}

bool DynClientActor::append_chunk(const std::string& object_key,
                                  BytesView chunk) {
  DynObject* obj = mutable_object(object_key);
  return obj != nullptr &&
         begin_mutation(*obj, MutateOp::kAppend, obj->tree.leaf_count(),
                        chunk);
}

bool DynClientActor::erase(const std::string& object_key,
                           std::uint64_t index) {
  DynObject* obj = mutable_object(object_key);
  return obj != nullptr &&
         begin_mutation(*obj, MutateOp::kErase, index, BytesView{});
}

bool DynClientActor::begin_mutation(DynObject& obj, MutateOp op,
                                    std::uint64_t index, BytesView chunk) {
  if (obj.pending) return false;  // one in-flight mutation per object
  const std::uint64_t count = obj.tree.leaf_count();
  const bool inserting = op == MutateOp::kInsert || op == MutateOp::kAppend;
  if (inserting ? index > count : index >= count) return false;

  // The store serves aggregate challenges by slicing the object at a fixed
  // chunk_size stride, so only the LAST chunk may be short — enforce that
  // invariant here rather than letting the provider reject later.
  if (op != MutateOp::kErase) {
    if (chunk.empty() || chunk.size() > obj.chunk_size) return false;
    const bool at_tail = inserting ? index == count : index + 1 == count;
    if (!at_tail && chunk.size() != obj.chunk_size) return false;
  }
  if (inserting && index == count && count > 0 &&
      obj.chunks[count - 1].size() != obj.chunk_size) {
    return false;  // appending after a short tail would break the stride
  }

  VersionRecord record;
  record.object_key = obj.object_key;
  record.version = obj.chain.head_version() + 1;
  record.op = op;
  record.chunk_index = index;
  record.old_root = obj.chain.head_root();
  record.prev_record_hash = obj.chain.head_hash();

  DynObject::PendingOp pending;
  pending.tree_backup = obj.tree.clone();

  Bytes leaf_hash;
  std::uint64_t tag = 0;
  if (op != MutateOp::kErase) {
    leaf_hash = DynMerkleTree::hash_chunk(chunk);
    tag = make_tag(obj.tag_key, chunk, leaf_hash, obj.alphas);
  }

  const auto at = static_cast<std::ptrdiff_t>(index);
  switch (op) {
    case MutateOp::kUpdate:
      pending.old_chunk = obj.chunks[index];
      pending.old_tag = obj.tags[index];
      obj.tree.update_leaf(index, std::move(leaf_hash));
      obj.chunks[index] = Bytes(chunk.begin(), chunk.end());
      obj.tags[index] = tag;
      break;
    case MutateOp::kInsert:
    case MutateOp::kAppend:
      obj.tree.insert_leaf(index, std::move(leaf_hash));
      obj.chunks.insert(obj.chunks.begin() + at,
                        Bytes(chunk.begin(), chunk.end()));
      obj.tags.insert(obj.tags.begin() + at, tag);
      break;
    case MutateOp::kErase:
      pending.old_chunk = std::move(obj.chunks[index]);
      pending.old_tag = obj.tags[index];
      obj.tree.erase(index);
      obj.chunks.erase(obj.chunks.begin() + at);
      obj.tags.erase(obj.tags.begin() + at);
      break;
    case MutateOp::kStore:
      return false;  // store_dyn builds its own record
  }

  record.chunk_count = obj.tree.leaf_count();
  record.new_root = obj.tree.root();
  record.chunk_tag = tag;
  pending.client_sig = identity_->sign(record.encode());
  pending.record = std::move(record);
  pending.chunk = Bytes(chunk.begin(), chunk.end());
  obj.pending = std::move(pending);
  transmit_pending(obj.object_key);
  return true;
}

void DynClientActor::transmit_pending(const std::string& object_key) {
  DynObject* obj = mutable_object(object_key);
  if (obj == nullptr || !obj->pending) return;
  const crypto::RsaPublicKey* provider_key = peer_key(obj->provider);
  if (provider_key == nullptr) return;
  DynObject::PendingOp& pending = *obj->pending;

  // Same idempotent-retry contract as the static client: every (re-)send
  // carries a fresh header (live nonce/seq/deadline) around the SAME signed
  // record; the version number is the idempotency key the provider
  // deduplicates on. data_hash binds the header to the post-op root.
  const bool is_store = pending.record.op == MutateOp::kStore;
  nr::MessageHeader header = next_header(
      is_store ? nr::MsgType::kDynStoreRequest : nr::MsgType::kMutateRequest,
      obj->provider, obj->ttp, obj->txn_id, pending.record.new_root,
      network_->now() + options_.reply_window);
  common::Payload evidence(
      nr::make_evidence(*identity_, *provider_key, header, *rng_));
  ++pending.attempts;

  common::BinaryWriter payload;
  payload.str(obj->object_key);
  if (is_store) {
    payload.u32(static_cast<std::uint32_t>(obj->chunk_size));
    payload.bytes(pending.chunk);  // the full object
    payload.u32(static_cast<std::uint32_t>(obj->tags.size()));
    for (const std::uint64_t tag : obj->tags) payload.u64(tag);
  } else {
    payload.u8(static_cast<std::uint8_t>(pending.record.op));
    payload.u64(pending.record.chunk_index);
    payload.bytes(pending.chunk);  // empty for erase
    payload.u64(pending.record.chunk_tag);
  }
  payload.bytes(pending.record.encode());
  payload.bytes(pending.client_sig);

  nr::NrMessage message;
  message.header = std::move(header);
  message.payload = payload.take();
  message.evidence = std::move(evidence);
  send(obj->provider, std::move(message));
  arm_receipt_timer(object_key, pending.record.version, pending.attempts);
}

void DynClientActor::arm_receipt_timer(const std::string& object_key,
                                       std::uint64_t version,
                                       std::size_t attempt) {
  const common::SimTime wait =
      options_.receipt_timeout +
      options_.retry_backoff * static_cast<common::SimTime>(attempt - 1);
  network_->schedule(wait, [this, object_key, version, attempt] {
    DynObject* obj = mutable_object(object_key);
    // Guard on version AND attempt: a timer that fires after the receipt
    // landed (or after a superseding re-send) must do nothing.
    if (obj == nullptr || !obj->pending ||
        obj->pending->record.version != version ||
        obj->pending->attempts != attempt) {
      return;
    }
    if (attempt <= options_.mutate_retries) {
      transmit_pending(object_key);
      return;
    }
    ++obj->timeouts;
    revert_pending(*obj);
  });
}

void DynClientActor::revert_pending(DynObject& obj) {
  if (!obj.pending) return;
  DynObject::PendingOp& pending = *obj.pending;
  const std::uint64_t index = pending.record.chunk_index;
  const auto at = static_cast<std::ptrdiff_t>(index);
  switch (pending.record.op) {
    case MutateOp::kStore:
      // Version 1 never committed — the object does not exist.
      txn_to_object_.erase(obj.txn_id);
      objects_.erase(obj.object_key);  // `obj` is dead past this line
      return;
    case MutateOp::kUpdate:
      obj.chunks[index] = std::move(pending.old_chunk);
      obj.tags[index] = pending.old_tag;
      break;
    case MutateOp::kInsert:
    case MutateOp::kAppend:
      obj.chunks.erase(obj.chunks.begin() + at);
      obj.tags.erase(obj.tags.begin() + at);
      break;
    case MutateOp::kErase:
      obj.chunks.insert(obj.chunks.begin() + at,
                        std::move(pending.old_chunk));
      obj.tags.insert(obj.tags.begin() + at, pending.old_tag);
      break;
  }
  obj.tree = std::move(pending.tree_backup);
  obj.pending.reset();
}

void DynClientActor::on_message(const nr::NrMessage& message) {
  switch (message.header.flag) {
    case nr::MsgType::kDynStoreReceipt:
    case nr::MsgType::kMutateReceipt:
      handle_receipt(message);
      break;
    case nr::MsgType::kMutateError:
      handle_mutate_error(message);
      break;
    default:
      break;
  }
}

void DynClientActor::handle_receipt(const nr::NrMessage& message) {
  const nr::MessageHeader& h = message.header;
  const auto txn_it = txn_to_object_.find(h.txn_id);
  if (txn_it == txn_to_object_.end()) return;
  DynObject* obj = mutable_object(txn_it->second);
  if (obj == nullptr || h.sender != obj->provider) return;

  SignedVersionRecord signed_record;
  try {
    common::BinaryReader r(message.payload);
    if (r.str() != obj->object_key) return;
    signed_record = SignedVersionRecord::decode(r.bytes());
    r.expect_done();
  } catch (const common::SerialError&) {
    ++stats_.rejected_bad_hash;
    return;
  }
  if (!common::constant_time_equal(h.data_hash,
                                   signed_record.record.new_root)) {
    ++stats_.rejected_bad_hash;
    return;
  }
  const crypto::RsaPublicKey* provider_key = peer_key(obj->provider);
  const auto nrr =
      nr::open_evidence(*identity_, *provider_key, h, message.evidence);
  if (!nrr) {
    ++stats_.rejected_bad_evidence;
    return;
  }

  if (!obj->pending ||
      obj->pending->record.version != signed_record.record.version) {
    // A retry crossed with its receipt: the version is already committed
    // (or long settled) — account for it, nothing to apply.
    ++obj->duplicate_receipts;
    return;
  }
  // The countersigned record must be EXACTLY the one we signed, and the
  // provider's countersignature must cover record‖our-signature.
  if (!common::constant_time_equal(signed_record.record.encode(),
                                   obj->pending->record.encode()) ||
      !common::constant_time_equal(signed_record.client_sig,
                                   obj->pending->client_sig)) {
    ++stats_.rejected_bad_hash;
    return;
  }
  if (!signed_record.verify_provider(*provider_key)) {
    ++stats_.rejected_bad_evidence;
    return;
  }
  std::string why;
  if (!obj->chain.append(std::move(signed_record), &why)) {
    // Can only happen on local state corruption — surface it loudly.
    throw common::ProtocolError("DynClientActor: receipt does not extend "
                                "the local chain: " +
                                why);
  }
  ++obj->receipts;
  obj->pending.reset();
  // The dynamic NRR: journal it the moment it verifies, like the static
  // client journals its store receipts.
  journal_evidence("dyn-nrr", h.txn_id, obj->provider, obj->object_key,
                   obj->chunk_size, h, *nrr);
}

void DynClientActor::handle_mutate_error(const nr::NrMessage& message) {
  const nr::MessageHeader& h = message.header;
  const auto txn_it = txn_to_object_.find(h.txn_id);
  if (txn_it == txn_to_object_.end()) return;
  DynObject* obj = mutable_object(txn_it->second);
  if (obj == nullptr || h.sender != obj->provider) return;

  std::uint64_t version = 0;
  try {
    common::BinaryReader r(message.payload);
    if (r.str() != obj->object_key) return;
    version = r.u64();
    (void)r.str();  // human-readable reason; narration only
    r.expect_done();
  } catch (const common::SerialError&) {
    return;
  }
  if (!obj->pending || obj->pending->record.version != version) return;
  ++obj->rejected;
  revert_pending(*obj);
}

}  // namespace tpnr::dyn
