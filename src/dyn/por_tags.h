// Homomorphic-style chunk tags and aggregated audit proofs (the compact
// challenge mode of the dynamic-data extension; after Shacham–Waters
// private-verification PoR as surveyed by Sengupta–Ruj).
//
// Each chunk is split into 7-byte sectors interpreted as elements of the
// prime field F_p with p = 2^61 − 1, and tagged
//
//   tag_i = PRF_k(leaf_hash_i) + Σ_j α_j · m_{i,j}   (mod p)
//
// where the PRF key k and the sector coefficients α_j are secrets shared by
// the client and the auditor (the provider stores tags it cannot forge).
// Keying the PRF on the chunk's LEAF HASH — not its index — is what makes
// the tags dynamic-friendly: insert/erase shifts indices but never
// invalidates an untouched chunk's tag, so a mutation re-tags exactly one
// chunk. Positional binding comes from the rank-annotated Merkle proof that
// accompanies every response.
//
// A challenge samples c chunks with per-chunk weights ν_i from a seeded
// Drbg; the response aggregates
//
//   σ = Σ_i ν_i · tag_i        μ_j = Σ_i ν_i · m_{i,j}   (mod p)
//
// plus ONE batched Merkle proof for the sampled leaf hashes — so proof
// bytes are O(sectors + c·log(n/c) hashes) regardless of chunk size,
// instead of c full chunks. The verifier recomputes
//
//   σ' = Σ_i ν_i · PRF_k(leaf_hash_i) + Σ_j α_j · μ_j   (mod p)
//
// over the PROVEN leaf hashes and accepts iff σ' == σ.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "dyn/dyn_merkle.h"

namespace tpnr::dyn {

using common::Bytes;
using common::BytesView;

/// Arithmetic in F_p, p = 2^61 − 1 (a Mersenne prime, so reduction is two
/// shifts: 2^61 ≡ 1 (mod p)).
namespace fp {

inline constexpr std::uint64_t kP = (std::uint64_t{1} << 61) - 1;

/// Reduces an arbitrary 64-bit value into [0, p).
[[nodiscard]] std::uint64_t reduce(std::uint64_t x) noexcept;
/// (a + b) mod p for a, b < p.
[[nodiscard]] std::uint64_t add(std::uint64_t a, std::uint64_t b) noexcept;
/// (a · b) mod p for a, b < p.
[[nodiscard]] std::uint64_t mul(std::uint64_t a, std::uint64_t b) noexcept;

}  // namespace fp

/// Bytes per sector: 7-byte little-endian values are < 2^56 < p, so every
/// sector is already a canonical field element.
inline constexpr std::size_t kSectorBytes = 7;

/// Sectors per chunk for a given chunk size (the last sector may be
/// zero-padded; short final chunks are padded the same way).
[[nodiscard]] std::size_t sectors_per_chunk(std::size_t chunk_size);

/// Unpacks `chunk` into exactly `sector_count` field elements (bytes past
/// the end of the chunk read as zero).
std::vector<std::uint64_t> chunk_sectors(BytesView chunk,
                                         std::size_t sector_count);

/// The client/auditor tagging secret. The provider never sees it — it only
/// stores the resulting tags.
struct TagKey {
  Bytes prf_key;    ///< keys PRF_k(leaf_hash)
  Bytes alpha_key;  ///< derives the sector coefficients α_j

  /// Deterministic per-object key from a master secret (domain-separated by
  /// the object key, so objects cannot cross-satisfy challenges).
  static TagKey derive(BytesView master, std::string_view object_key);

  /// PRF_k(leaf_hash) as a field element.
  [[nodiscard]] std::uint64_t prf(BytesView leaf_hash) const;

  /// α_0 .. α_{sector_count−1}.
  [[nodiscard]] std::vector<std::uint64_t> alphas(
      std::size_t sector_count) const;
};

/// Tag for one chunk given its precomputed leaf hash and the α vector.
[[nodiscard]] std::uint64_t make_tag(const TagKey& key, BytesView chunk,
                                     BytesView leaf_hash,
                                     std::span<const std::uint64_t> alphas);

/// Tags every chunk of an object (leaf hashes run through the multi-lane
/// SHA-256 engine). `chunk_size` fixes the sector count for short chunks.
std::vector<std::uint64_t> make_tags(const TagKey& key,
                                     std::span<const BytesView> chunks,
                                     std::size_t chunk_size);

/// A compact-audit challenge: (seed, count) is all that travels on the wire;
/// both sides expand it identically.
struct AggChallenge {
  std::uint64_t seed = 0;
  std::uint64_t count = 0;  ///< sampled chunks (clamped to leaf_count)

  struct Item {
    std::uint64_t index = 0;  ///< challenged chunk
    std::uint64_t nu = 0;     ///< its weight ν, in [1, p)
  };

  /// Expands to distinct challenged indices in ascending order with their
  /// weights. Deterministic in (seed, count, leaf_count).
  [[nodiscard]] std::vector<Item> derive(std::uint64_t leaf_count) const;
};

/// The aggregated response: constant-size algebra plus one batched Merkle
/// proof, independent of chunk size.
struct AggResponse {
  std::uint64_t version = 0;  ///< provider's version-chain head at answer time
  Bytes root;                 ///< the root the proof verifies against
  std::uint64_t sigma = 0;    ///< Σ ν_i · tag_i
  std::vector<std::uint64_t> mu;  ///< μ_j = Σ ν_i · m_{i,j}, one per sector
  DynBatchProof proof;            ///< batched proof for the sampled leaves

  [[nodiscard]] Bytes encode() const;
  /// Throws common::SerialError on malformed input.
  static AggResponse decode(BytesView data);
  /// Wire size (for bandwidth accounting).
  [[nodiscard]] std::size_t encoded_size() const;
};

/// Prover side: aggregates tags and sectors over the challenged chunks and
/// attaches the batched proof from `tree`. `chunks` and `tags` are the full
/// per-chunk vectors; `version` is the provider's version-chain head.
AggResponse make_agg_response(const AggChallenge& challenge,
                              const DynMerkleTree& tree,
                              std::span<const BytesView> chunks,
                              std::span<const std::uint64_t> tags,
                              std::size_t chunk_size, std::uint64_t version);

/// Verifier side: checks the batched proof against `root`, that the proven
/// leaf set equals the challenged set, and the σ/μ algebra under `key`.
/// Does NOT compare `root`/`version` to the chain head — the caller decides
/// what stale or rolled-back heads mean (see audit::AuditorActor).
[[nodiscard]] bool verify_agg_response(const AggChallenge& challenge,
                                       const AggResponse& response,
                                       const TagKey& key,
                                       std::uint64_t leaf_count,
                                       std::size_t chunk_size, BytesView root);

}  // namespace tpnr::dyn
