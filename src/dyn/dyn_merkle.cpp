#include "dyn/dyn_merkle.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/error.h"
#include "common/serial.h"
#include "crypto/sha256.h"
#include "crypto/sha256_mb.h"

namespace tpnr::dyn {

namespace {

constexpr std::uint8_t kLeafTag = 0x00;
constexpr std::uint8_t kInteriorTag = 0x01;
constexpr std::uint8_t kEmptyTag = 0x02;

// Pruned-tree node kinds in the DynBatchProof encoding.
constexpr std::uint8_t kNodePruned = 0;      // (hash, rank) summary
constexpr std::uint8_t kNodeChallenged = 1;  // challenged leaf: leaf hash
constexpr std::uint8_t kNodeInterior = 2;    // expanded: left then right

// Anything deeper is not a tree an AVL-balanced instance can produce, and
// caps adversarial recursion in verify_batch.
constexpr int kMaxProofDepth = 96;

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

Bytes interior_preimage(std::uint64_t left_rank, std::uint64_t right_rank,
                        BytesView left_hash, BytesView right_hash) {
  Bytes preimage;
  preimage.reserve(1 + 16 + left_hash.size() + right_hash.size());
  preimage.push_back(kInteriorTag);
  put_u64(preimage, left_rank);
  put_u64(preimage, right_rank);
  preimage.insert(preimage.end(), left_hash.begin(), left_hash.end());
  preimage.insert(preimage.end(), right_hash.begin(), right_hash.end());
  return preimage;
}

Bytes interior_hash(std::uint64_t left_rank, std::uint64_t right_rank,
                    BytesView left_hash, BytesView right_hash) {
  return crypto::sha256(
      interior_preimage(left_rank, right_rank, left_hash, right_hash));
}

}  // namespace

Bytes DynMerkleTree::hash_chunk(BytesView chunk) {
  Bytes preimage;
  preimage.reserve(1 + chunk.size());
  preimage.push_back(kLeafTag);
  preimage.insert(preimage.end(), chunk.begin(), chunk.end());
  return crypto::sha256(preimage);
}

std::vector<Bytes> DynMerkleTree::hash_chunks(
    std::span<const BytesView> chunks) {
  return crypto::sha256_many_tagged(kLeafTag, chunks);
}

const Bytes& DynMerkleTree::empty_root() {
  static const Bytes root = crypto::sha256(Bytes{kEmptyTag});
  return root;
}

const Bytes& DynMerkleTree::root() const {
  return root_ ? root_->hash : empty_root();
}

int DynMerkleTree::height() const noexcept {
  return root_ ? root_->height : 0;
}

// ---------------------------------------------------------------------------
// Construction

DynMerkleTree DynMerkleTree::build(std::span<const BytesView> chunks) {
  std::vector<Bytes> leaves = hash_chunks(chunks);
  DynMerkleTree tree;
  tree.hash_computations_ += leaves.size();
  tree.root_ = tree.build_range(leaves);
  return tree;
}

DynMerkleTree DynMerkleTree::build_from_leaves(
    std::span<const Bytes> leaf_hashes) {
  DynMerkleTree tree;
  tree.root_ =
      tree.build_range({leaf_hashes.data(), leaf_hashes.size()});
  return tree;
}

DynMerkleTree DynMerkleTree::build_over(BytesView data,
                                        std::size_t chunk_size) {
  if (chunk_size == 0) throw common::Error("DynMerkleTree: chunk_size 0");
  std::vector<BytesView> chunks;
  for (std::size_t offset = 0; offset < data.size(); offset += chunk_size) {
    chunks.push_back(
        data.subspan(offset, std::min(chunk_size, data.size() - offset)));
  }
  return build(chunks);
}

DynMerkleTree::NodePtr DynMerkleTree::build_range(
    std::span<const Bytes> leaf_hashes) {
  if (leaf_hashes.empty()) return nullptr;
  if (leaf_hashes.size() == 1) {
    auto leaf = std::make_unique<Node>();
    leaf->hash = leaf_hashes.front();
    return leaf;
  }
  const std::size_t mid = (leaf_hashes.size() + 1) / 2;  // left gets ceil
  auto node = std::make_unique<Node>();
  node->left = build_range(leaf_hashes.first(mid));
  node->right = build_range(leaf_hashes.subspan(mid));
  refresh(node.get());
  return node;
}

void DynMerkleTree::refresh(Node* node) {
  node->rank = node->left->rank + node->right->rank;
  node->height = 1 + std::max(node->left->height, node->right->height);
  node->hash = interior_hash(node->left->rank, node->right->rank,
                             node->left->hash, node->right->hash);
  ++hash_computations_;
}

// ---------------------------------------------------------------------------
// Balancing (AVL by leaf rank; interior nodes always have two children)

DynMerkleTree::NodePtr DynMerkleTree::rotate_left(NodePtr node) {
  NodePtr pivot = std::move(node->right);
  node->right = std::move(pivot->left);
  refresh(node.get());
  pivot->left = std::move(node);
  refresh(pivot.get());
  return pivot;
}

DynMerkleTree::NodePtr DynMerkleTree::rotate_right(NodePtr node) {
  NodePtr pivot = std::move(node->left);
  node->left = std::move(pivot->right);
  refresh(node.get());
  pivot->right = std::move(node);
  refresh(pivot.get());
  return pivot;
}

DynMerkleTree::NodePtr DynMerkleTree::rebalance(NodePtr node) {
  const int balance = height_of(node->left.get()) -
                      height_of(node->right.get());
  if (balance > 1) {
    if (height_of(node->left->left.get()) <
        height_of(node->left->right.get())) {
      node->left = rotate_left(std::move(node->left));
    }
    return rotate_right(std::move(node));
  }
  if (balance < -1) {
    if (height_of(node->right->right.get()) <
        height_of(node->right->left.get())) {
      node->right = rotate_right(std::move(node->right));
    }
    return rotate_left(std::move(node));
  }
  return node;
}

// ---------------------------------------------------------------------------
// Mutations

void DynMerkleTree::update(std::uint64_t index, BytesView chunk) {
  Bytes leaf = hash_chunk(chunk);
  ++hash_computations_;
  update_leaf(index, std::move(leaf));
}

void DynMerkleTree::update_leaf(std::uint64_t index, Bytes leaf_hash) {
  if (index >= leaf_count()) {
    throw std::out_of_range("DynMerkleTree::update_leaf: index");
  }
  update_at(root_.get(), index, std::move(leaf_hash));
}

void DynMerkleTree::update_at(Node* node, std::uint64_t index,
                              Bytes&& leaf_hash) {
  if (node->is_leaf()) {
    node->hash = std::move(leaf_hash);
    return;
  }
  if (index < node->left->rank) {
    update_at(node->left.get(), index, std::move(leaf_hash));
  } else {
    update_at(node->right.get(), index - node->left->rank,
              std::move(leaf_hash));
  }
  // Shape is unchanged: only the path hashes are recomputed.
  node->hash = interior_hash(node->left->rank, node->right->rank,
                             node->left->hash, node->right->hash);
  ++hash_computations_;
}

void DynMerkleTree::insert(std::uint64_t index, BytesView chunk) {
  Bytes leaf = hash_chunk(chunk);
  ++hash_computations_;
  insert_leaf(index, std::move(leaf));
}

void DynMerkleTree::insert_leaf(std::uint64_t index, Bytes leaf_hash) {
  if (index > leaf_count()) {
    throw std::out_of_range("DynMerkleTree::insert_leaf: index");
  }
  root_ = insert_at(std::move(root_), index, std::move(leaf_hash));
}

DynMerkleTree::NodePtr DynMerkleTree::insert_at(NodePtr node,
                                                std::uint64_t index,
                                                Bytes&& leaf_hash) {
  if (node == nullptr || node->is_leaf()) {
    auto fresh = std::make_unique<Node>();
    fresh->hash = std::move(leaf_hash);
    if (node == nullptr) return fresh;
    auto parent = std::make_unique<Node>();
    if (index == 0) {
      parent->left = std::move(fresh);
      parent->right = std::move(node);
    } else {
      parent->left = std::move(node);
      parent->right = std::move(fresh);
    }
    refresh(parent.get());
    return parent;
  }
  // Route boundary inserts toward the shorter side so repeated appends keep
  // the tree shallow without extra rotations.
  const std::uint64_t left_rank = node->left->rank;
  const bool go_left =
      index < left_rank ||
      (index == left_rank && node->left->height < node->right->height);
  if (go_left) {
    node->left = insert_at(std::move(node->left), index, std::move(leaf_hash));
  } else {
    node->right = insert_at(std::move(node->right), index - left_rank,
                            std::move(leaf_hash));
  }
  refresh(node.get());
  return rebalance(std::move(node));
}

void DynMerkleTree::erase(std::uint64_t index) {
  if (index >= leaf_count()) {
    throw std::out_of_range("DynMerkleTree::erase: index");
  }
  root_ = erase_at(std::move(root_), index);
}

DynMerkleTree::NodePtr DynMerkleTree::erase_at(NodePtr node,
                                               std::uint64_t index) {
  if (node->is_leaf()) return nullptr;  // the parent collapses to the sibling
  if (index < node->left->rank) {
    node->left = erase_at(std::move(node->left), index);
    if (node->left == nullptr) return std::move(node->right);
  } else {
    node->right = erase_at(std::move(node->right), index - node->left->rank);
    if (node->right == nullptr) return std::move(node->left);
  }
  refresh(node.get());
  return rebalance(std::move(node));
}

// ---------------------------------------------------------------------------
// Reads

const Bytes& DynMerkleTree::leaf_hash(std::uint64_t index) const {
  if (index >= leaf_count()) {
    throw std::out_of_range("DynMerkleTree::leaf_hash: index");
  }
  const Node* node = root_.get();
  while (!node->is_leaf()) {
    if (index < node->left->rank) {
      node = node->left.get();
    } else {
      index -= node->left->rank;
      node = node->right.get();
    }
  }
  return node->hash;
}

std::vector<Bytes> DynMerkleTree::leaf_hashes() const {
  std::vector<Bytes> out;
  out.reserve(leaf_count());
  // Explicit stack: leaves in index order, right child pushed first.
  std::vector<const Node*> stack;
  if (root_) stack.push_back(root_.get());
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node->is_leaf()) {
      out.push_back(node->hash);
      continue;
    }
    stack.push_back(node->right.get());
    stack.push_back(node->left.get());
  }
  return out;
}

Bytes DynMerkleTree::recompute_root_reference() const {
  if (root_ == nullptr) return empty_root();
  return reference_hash(root_.get());
}

Bytes DynMerkleTree::reference_hash(const Node* node) {
  if (node->is_leaf()) return node->hash;  // leaf hashes are the inputs
  const Bytes left = reference_hash(node->left.get());
  const Bytes right = reference_hash(node->right.get());
  return interior_hash(node->left->rank, node->right->rank, left, right);
}

// ---------------------------------------------------------------------------
// Proofs

DynProof DynMerkleTree::prove(std::uint64_t index) const {
  if (index >= leaf_count()) {
    throw std::out_of_range("DynMerkleTree::prove: index");
  }
  DynProof proof;
  proof.leaf_index = index;
  proof.leaf_count = leaf_count();
  const Node* node = root_.get();
  std::uint64_t offset = index;
  while (!node->is_leaf()) {
    DynProofStep step;
    if (offset < node->left->rank) {
      step.sibling_on_left = false;
      step.sibling_rank = node->right->rank;
      step.sibling_hash = node->right->hash;
      node = node->left.get();
    } else {
      step.sibling_on_left = true;
      step.sibling_rank = node->left->rank;
      step.sibling_hash = node->left->hash;
      offset -= node->left->rank;
      node = node->right.get();
    }
    proof.steps.push_back(std::move(step));
  }
  std::reverse(proof.steps.begin(), proof.steps.end());
  return proof;
}

bool DynMerkleTree::verify(BytesView chunk, const DynProof& proof,
                           BytesView root) {
  return verify_leaf(hash_chunk(chunk), proof, root);
}

bool DynMerkleTree::verify_leaf(BytesView leaf_hash, const DynProof& proof,
                                BytesView root) {
  if (proof.steps.size() > static_cast<std::size_t>(kMaxProofDepth)) {
    return false;
  }
  Bytes hash(leaf_hash.begin(), leaf_hash.end());
  std::uint64_t rank = 1;
  std::uint64_t index = 0;
  for (const DynProofStep& step : proof.steps) {
    if (step.sibling_rank == 0) return false;
    if (step.sibling_on_left) {
      index += step.sibling_rank;  // everything left of us precedes us
      hash = interior_hash(step.sibling_rank, rank, step.sibling_hash, hash);
    } else {
      hash = interior_hash(rank, step.sibling_rank, hash, step.sibling_hash);
    }
    rank += step.sibling_rank;
  }
  return rank == proof.leaf_count && index == proof.leaf_index &&
         common::constant_time_equal(hash, root);
}

Bytes DynProof::encode() const {
  common::BinaryWriter w;
  w.u64(leaf_index);
  w.u64(leaf_count);
  w.u32(static_cast<std::uint32_t>(steps.size()));
  for (const DynProofStep& step : steps) {
    w.boolean(step.sibling_on_left);
    w.u64(step.sibling_rank);
    w.bytes(step.sibling_hash);
  }
  return w.take();
}

DynProof DynProof::decode(BytesView data) {
  common::BinaryReader r(data);
  DynProof proof;
  proof.leaf_index = r.u64();
  proof.leaf_count = r.u64();
  const std::uint32_t count = r.u32();
  if (count > static_cast<std::uint32_t>(kMaxProofDepth)) {
    throw common::SerialError("DynProof: implausible depth");
  }
  proof.steps.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    DynProofStep step;
    step.sibling_on_left = r.boolean();
    step.sibling_rank = r.u64();
    step.sibling_hash = r.bytes();
    proof.steps.push_back(std::move(step));
  }
  r.expect_done();
  return proof;
}

std::size_t DynProof::encoded_size() const { return encode().size(); }

// ---------------------------------------------------------------------------
// Batch proofs

namespace {

// Recursive pruned-tree writer. `indices` is the (sorted) slice of
// challenged leaf indices that fall inside this subtree, already shifted to
// subtree-local offsets.
template <typename Node>
void write_pruned(common::BinaryWriter& w, const Node* node,
                  std::span<const std::uint64_t> local) {
  if (local.empty()) {
    w.u8(kNodePruned);
    w.bytes(node->hash);
    w.u64(node->rank);
    return;
  }
  if (node->left == nullptr) {
    w.u8(kNodeChallenged);
    w.bytes(node->hash);
    return;
  }
  w.u8(kNodeInterior);
  const std::uint64_t left_rank = node->left->rank;
  const auto split = std::lower_bound(local.begin(), local.end(), left_rank);
  const std::size_t left_n = static_cast<std::size_t>(split - local.begin());
  write_pruned(w, node->left.get(), local.first(left_n));
  // Shift the right-side indices to right-subtree-local offsets.
  std::vector<std::uint64_t> shifted(local.begin() + left_n, local.end());
  for (std::uint64_t& v : shifted) v -= left_rank;
  write_pruned(w, node->right.get(), shifted);
}

struct DecodedSubtree {
  Bytes hash;
  std::uint64_t rank = 0;
};

// Recursive pruned-tree reader: recomputes (hash, rank) bottom-up and
// collects challenged leaves at `base + local offset`. Throws SerialError on
// malformed input; rank lies surface as a final root/leaf_count mismatch.
DecodedSubtree read_pruned(common::BinaryReader& r, std::uint64_t base,
                           int depth, std::vector<VerifiedLeaf>& out) {
  if (depth > kMaxProofDepth) {
    throw common::SerialError("DynBatchProof: implausible depth");
  }
  const std::uint8_t kind = r.u8();
  DecodedSubtree subtree;
  switch (kind) {
    case kNodePruned:
      subtree.hash = r.bytes();
      subtree.rank = r.u64();
      if (subtree.rank == 0) {
        throw common::SerialError("DynBatchProof: zero-rank subtree");
      }
      return subtree;
    case kNodeChallenged:
      subtree.hash = r.bytes();
      subtree.rank = 1;
      out.push_back({base, subtree.hash});
      return subtree;
    case kNodeInterior: {
      const DecodedSubtree left = read_pruned(r, base, depth + 1, out);
      const DecodedSubtree right =
          read_pruned(r, base + left.rank, depth + 1, out);
      subtree.rank = left.rank + right.rank;
      subtree.hash = interior_hash(left.rank, right.rank, left.hash,
                                   right.hash);
      return subtree;
    }
    default:
      throw common::SerialError("DynBatchProof: unknown node kind");
  }
}

}  // namespace

DynBatchProof DynMerkleTree::prove_batch(
    std::span<const std::uint64_t> indices) const {
  if (!std::is_sorted(indices.begin(), indices.end()) ||
      std::adjacent_find(indices.begin(), indices.end()) != indices.end()) {
    throw std::invalid_argument("prove_batch: indices must be sorted+unique");
  }
  if (!indices.empty() && indices.back() >= leaf_count()) {
    throw std::out_of_range("prove_batch: index");
  }
  DynBatchProof proof;
  proof.leaf_count = leaf_count();
  if (root_ == nullptr || indices.empty()) return proof;
  common::BinaryWriter w;
  write_pruned(w, root_.get(), indices);
  proof.nodes = w.take();
  return proof;
}

bool DynMerkleTree::verify_batch(const DynBatchProof& proof, BytesView root,
                                 std::vector<VerifiedLeaf>& out) {
  out.clear();
  if (proof.nodes.empty()) {
    // An empty batch proves nothing beyond the (externally known) count.
    return proof.leaf_count == 0
               ? common::constant_time_equal(empty_root(), root)
               : true;
  }
  try {
    common::BinaryReader r(proof.nodes);
    const DecodedSubtree decoded = read_pruned(r, 0, 0, out);
    r.expect_done();
    if (decoded.rank != proof.leaf_count) return false;
    return common::constant_time_equal(decoded.hash, root);
  } catch (const common::SerialError&) {
    out.clear();
    return false;
  }
}

Bytes DynBatchProof::encode() const {
  common::BinaryWriter w;
  w.u64(leaf_count);
  w.bytes(nodes);
  return w.take();
}

DynBatchProof DynBatchProof::decode(BytesView data) {
  common::BinaryReader r(data);
  DynBatchProof proof;
  proof.leaf_count = r.u64();
  proof.nodes = r.bytes();
  r.expect_done();
  return proof;
}

std::size_t DynBatchProof::encoded_size() const {
  return 8 + 4 + nodes.size();
}

DynMerkleTree DynMerkleTree::clone() const {
  DynMerkleTree copy;
  if (root_ != nullptr) copy.root_ = clone_node(root_.get());
  return copy;
}

DynMerkleTree::NodePtr DynMerkleTree::clone_node(const Node* node) {
  auto out = std::make_unique<Node>();
  out->hash = node->hash;
  out->rank = node->rank;
  out->height = node->height;
  if (!node->is_leaf()) {
    out->left = clone_node(node->left.get());
    out->right = clone_node(node->right.get());
  }
  return out;
}

std::vector<Bytes> split_chunks(BytesView data, std::size_t chunk_size) {
  if (chunk_size == 0) throw common::Error("split_chunks: zero chunk size");
  std::vector<Bytes> chunks;
  chunks.reserve((data.size() + chunk_size - 1) / chunk_size);
  for (std::size_t offset = 0; offset < data.size(); offset += chunk_size) {
    const std::size_t len = std::min(chunk_size, data.size() - offset);
    chunks.emplace_back(data.begin() + static_cast<std::ptrdiff_t>(offset),
                        data.begin() + static_cast<std::ptrdiff_t>(offset + len));
  }
  return chunks;
}

std::vector<BytesView> chunk_views(std::span<const Bytes> chunks) {
  std::vector<BytesView> views;
  views.reserve(chunks.size());
  for (const Bytes& chunk : chunks) views.emplace_back(chunk);
  return views;
}

}  // namespace tpnr::dyn
