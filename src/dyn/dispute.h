// TTP dispute resolution for dynamic objects — the §2.4-style decision
// table extended with the two rows the versioned chain makes decidable:
// "provider served a stale version" and "client repudiates an update".
//
// Pure evidence evaluation over a presented chain plus the provider's
// currently-served (version, root) claim, mirroring nr::Arbitrator: not a
// network actor, deterministic, same case → same ruling.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crypto/rsa.h"
#include "dyn/version_chain.h"

namespace tpnr::dyn {

enum class DynRulingKind : std::uint8_t {
  kChainIntact = 1,      ///< chain valid, provider serves the head version
  kProviderStale = 2,    ///< provider honestly labels an OLD version as current
  kProviderRollback = 3, ///< provider claims head version but serves an older root
  kProviderFault = 4,    ///< broken countersignature / link, or unrecognized root
  kClientBound = 5,      ///< repudiated update carries the client's valid signature
  kClientUpheld = 6,     ///< no countersigned record for the repudiated version
  kInconclusive = 7,
};
std::string dyn_ruling_name(DynRulingKind kind);

/// Everything laid before the TTP for one dynamic-object dispute.
struct DynDisputeCase {
  std::string object_key;
  crypto::RsaPublicKey client_key;
  crypto::RsaPublicKey provider_key;

  /// The version chain as presented (normally by the provider, who commits
  /// the records; the client may counter-present a longer chain).
  std::vector<SignedVersionRecord> chain;

  /// What the provider currently serves, if the dispute is about freshness
  /// or integrity (both nullopt for a pure repudiation dispute).
  std::optional<std::uint64_t> served_version;
  std::optional<Bytes> served_root;

  /// Set when the client denies having authorized this version's mutation.
  std::optional<std::uint64_t> repudiated_version;
};

struct DynRuling {
  DynRulingKind kind = DynRulingKind::kInconclusive;
  ChainWalkResult walk;  ///< the underlying chain-walk outcome
  std::string rationale;
};

/// Walks the chain, then applies the decision table:
///
///   chain walk fails                          → kProviderFault (the committer
///                                               presented invalid records)
///   repudiated version has a valid client sig → kClientBound
///   repudiated version beyond the chain head  → kClientUpheld
///   served (version, root) == chain head      → kChainIntact
///   served root matches served OLD version    → kProviderStale
///   claims head version, root is an old one   → kProviderRollback
///   served root matches no committed version  → kProviderFault
[[nodiscard]] DynRuling resolve_dyn_dispute(const DynDisputeCase& dispute);

}  // namespace tpnr::dyn
