// The dynamic-data provider — Bob extended with chunk-level mutations and
// compact aggregated audits.
//
// For every dynamic object the provider keeps an in-memory mirror (chunk
// bytes, rank-annotated tree, PoR tags) plus its own copy of the version
// chain; the COMMIT path validates a mutation against that mirror in
// O(log n) (root check on the incrementally maintained tree) before
// countersigning.
//
// Aggregated audit challenges are answered FROM THE OBJECT STORE, not the
// mirror: the served bytes are re-sliced and re-hashed per challenge, so
// any divergence between what the provider acknowledged and what the store
// durably holds — a dropped (stale) mutation, a silent rollback — surfaces
// in the response's (version, root) and is classified by the auditor
// against the client's chain head.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dyn/dyn_merkle.h"
#include "dyn/por_tags.h"
#include "dyn/version_chain.h"
#include "nr/actor.h"
#include "storage/object_store.h"

namespace tpnr::dyn {

/// Misbehaviour dials for the dynamic provider.
struct DynProviderBehavior {
  bool send_receipts = true;      ///< false: withholds receipts (unfair Bob)
  bool respond_to_audit = true;   ///< false: ignores aggregate challenges
};

class DynProviderActor final : public nr::NrActor {
 public:
  /// Provider-side state of one dynamic object.
  struct DynObjectState {
    std::string txn_id;
    std::string client;  ///< who may mutate (the storing identity)
    std::size_t chunk_size = 0;
    std::vector<Bytes> chunks;  ///< committed mirror (commit-path checks)
    DynMerkleTree tree;
    std::vector<std::uint64_t> tags;
    VersionChain chain;  ///< the provider's copy (countersigned records)
  };

  DynProviderActor(std::string id, net::Network& network,
                   pki::Identity& identity, crypto::Drbg& rng);

  void set_behavior(DynProviderBehavior behavior) { behavior_ = behavior; }
  [[nodiscard]] const DynProviderBehavior& behavior() const noexcept {
    return behavior_;
  }

  [[nodiscard]] storage::ObjectStore& store() noexcept { return store_; }
  [[nodiscard]] const DynObjectState* object_state(
      const std::string& object_key) const;

  /// Receipts re-issued for retried requests without re-applying
  /// (idempotence accounting, mirrors ProviderActor::receipts_resent()).
  [[nodiscard]] std::uint64_t receipts_resent() const noexcept {
    return receipts_resent_;
  }
  /// Mutations rejected with kMutateError.
  [[nodiscard]] std::uint64_t mutations_rejected() const noexcept {
    return mutations_rejected_;
  }

 protected:
  void on_message(const nr::NrMessage& message) override;

 private:
  void handle_dyn_store(const nr::NrMessage& message);
  void handle_mutate(const nr::NrMessage& message);
  void handle_agg_challenge(const nr::NrMessage& message);

  /// Countersigns `record`‖`client_sig` and sends the receipt carrying the
  /// full SignedVersionRecord back to `client`.
  void send_receipt(const std::string& client, const std::string& txn_id,
                    nr::MsgType flag, const SignedVersionRecord& rec);
  void send_mutate_error(const std::string& client, const std::string& txn_id,
                         const std::string& object_key, std::uint64_t version,
                         const std::string& reason);

  DynProviderBehavior behavior_;
  storage::ObjectStore store_;
  std::map<std::string, DynObjectState> objects_;  ///< by object key
  std::uint64_t receipts_resent_ = 0;
  std::uint64_t mutations_rejected_ = 0;
};

}  // namespace tpnr::dyn
