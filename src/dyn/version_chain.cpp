#include "dyn/version_chain.h"

#include <cstddef>
#include <utility>
#include <vector>

#include "common/serial.h"
#include "crypto/hash.h"
#include "crypto/rsa.h"
#include "dyn/dyn_merkle.h"
#include "pki/identity.h"

namespace tpnr::dyn {

std::string mutate_op_name(MutateOp op) {
  switch (op) {
    case MutateOp::kStore:
      return "store";
    case MutateOp::kUpdate:
      return "update";
    case MutateOp::kInsert:
      return "insert";
    case MutateOp::kAppend:
      return "append";
    case MutateOp::kErase:
      return "erase";
  }
  return "?";
}

Bytes VersionRecord::encode() const {
  common::BinaryWriter w;
  w.str("tpnr.dyn.version.v1");  // domain separation from other signed blobs
  w.str(object_key);
  w.u64(version);
  w.u8(static_cast<std::uint8_t>(op));
  w.u64(chunk_index);
  w.u64(chunk_count);
  w.bytes(old_root);
  w.bytes(new_root);
  w.u64(chunk_tag);
  w.bytes(prev_record_hash);
  return w.take();
}

VersionRecord VersionRecord::decode(BytesView data) {
  common::BinaryReader r(data);
  if (r.str() != "tpnr.dyn.version.v1") {
    throw common::SerialError("VersionRecord: bad magic");
  }
  VersionRecord out;
  out.object_key = r.str();
  out.version = r.u64();
  const std::uint8_t op = r.u8();
  if (op < 1 || op > 5) throw common::SerialError("VersionRecord: bad op");
  out.op = static_cast<MutateOp>(op);
  out.chunk_index = r.u64();
  out.chunk_count = r.u64();
  out.old_root = r.bytes();
  out.new_root = r.bytes();
  out.chunk_tag = r.u64();
  out.prev_record_hash = r.bytes();
  r.expect_done();
  return out;
}

Bytes VersionRecord::hash() const { return crypto::sha256(encode()); }

const Bytes& VersionRecord::genesis_link() {
  static const Bytes zeros(32, 0);
  return zeros;
}

Bytes SignedVersionRecord::encode() const {
  common::BinaryWriter w;
  w.bytes(record.encode());
  w.bytes(client_sig);
  w.bytes(provider_sig);
  return w.take();
}

SignedVersionRecord SignedVersionRecord::decode(BytesView data) {
  common::BinaryReader r(data);
  SignedVersionRecord out;
  out.record = VersionRecord::decode(r.bytes());
  out.client_sig = r.bytes();
  out.provider_sig = r.bytes();
  r.expect_done();
  return out;
}

bool SignedVersionRecord::verify_client(
    const crypto::RsaPublicKey& client) const {
  return pki::Identity::verify(client, record.encode(), client_sig);
}

bool SignedVersionRecord::verify_provider(
    const crypto::RsaPublicKey& provider) const {
  const Bytes countersigned =
      common::concat({BytesView(record.encode()), BytesView(client_sig)});
  return pki::Identity::verify(provider, countersigned, provider_sig);
}

bool SignedVersionRecord::verify(const crypto::RsaPublicKey& client,
                                 const crypto::RsaPublicKey& provider) const {
  return verify_client(client) && verify_provider(provider);
}

namespace {

bool fail(std::string* why, std::string message) {
  if (why != nullptr) *why = std::move(message);
  return false;
}

/// Structural continuity of `rec` against the current head. Shared by
/// VersionChain::append and walk_chain so both enforce the same rules.
bool extends_head(const VersionRecord& rec, std::uint64_t head_version,
                  BytesView head_root, std::uint64_t head_chunk_count,
                  BytesView head_hash, std::string* why) {
  if (rec.version != head_version + 1) {
    return fail(why, "version " + std::to_string(rec.version) +
                         " does not follow " + std::to_string(head_version));
  }
  if ((rec.op == MutateOp::kStore) != (rec.version == 1)) {
    return fail(why, "store op must be (exactly) the first record");
  }
  if (!common::constant_time_equal(rec.old_root, head_root)) {
    return fail(why, "old_root does not match chain head root");
  }
  if (!common::constant_time_equal(rec.prev_record_hash, head_hash)) {
    return fail(why, "prev_record_hash does not match chain head");
  }
  std::uint64_t expect_count = head_chunk_count;
  switch (rec.op) {
    case MutateOp::kStore:
      expect_count = rec.chunk_count;  // free choice, but must be non-empty
      if (rec.chunk_count == 0) return fail(why, "store of zero chunks");
      break;
    case MutateOp::kUpdate:
      break;  // count unchanged
    case MutateOp::kInsert:
    case MutateOp::kAppend:
      expect_count = head_chunk_count + 1;
      break;
    case MutateOp::kErase:
      if (head_chunk_count == 0) return fail(why, "erase on empty object");
      expect_count = head_chunk_count - 1;
      break;
  }
  if (rec.chunk_count != expect_count) {
    return fail(why, "chunk_count inconsistent with op");
  }
  if (rec.op == MutateOp::kAppend && rec.chunk_index != head_chunk_count) {
    return fail(why, "append index must equal previous chunk_count");
  }
  if ((rec.op == MutateOp::kUpdate || rec.op == MutateOp::kErase) &&
      rec.chunk_index >= head_chunk_count) {
    return fail(why, "chunk_index out of range");
  }
  if (rec.op == MutateOp::kInsert && rec.chunk_index > head_chunk_count) {
    return fail(why, "insert index out of range");
  }
  return true;
}

}  // namespace

bool VersionChain::append(SignedVersionRecord rec, std::string* why) {
  if (!records_.empty() &&
      rec.record.object_key != records_.front().record.object_key) {
    return fail(why, "record for a different object");
  }
  if (!extends_head(rec.record, head_version(), head_root(),
                    head_chunk_count(), head_hash(), why)) {
    return false;
  }
  records_.push_back(std::move(rec));
  return true;
}

std::uint64_t VersionChain::head_version() const noexcept {
  return records_.empty() ? 0 : records_.back().record.version;
}

const Bytes& VersionChain::head_root() const {
  return records_.empty() ? DynMerkleTree::empty_root()
                          : records_.back().record.new_root;
}

std::uint64_t VersionChain::head_chunk_count() const noexcept {
  return records_.empty() ? 0 : records_.back().record.chunk_count;
}

Bytes VersionChain::head_hash() const {
  return records_.empty() ? VersionRecord::genesis_link()
                          : records_.back().record.hash();
}

std::optional<std::uint64_t> VersionChain::version_of_root(
    BytesView root) const {
  // Newest first: after an update that restores earlier bytes, the HIGHEST
  // version owning this root is the honest interpretation.
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (common::constant_time_equal(it->record.new_root, root)) {
      return it->record.version;
    }
  }
  return std::nullopt;
}

std::string chain_status_name(ChainStatus status) {
  switch (status) {
    case ChainStatus::kValid:
      return "valid";
    case ChainStatus::kEmpty:
      return "empty";
    case ChainStatus::kBrokenLink:
      return "broken-link";
    case ChainStatus::kBadClientSig:
      return "bad-client-sig";
    case ChainStatus::kBadProviderSig:
      return "bad-provider-sig";
  }
  return "?";
}

ChainWalkResult walk_chain(std::span<const SignedVersionRecord> records,
                           const crypto::RsaPublicKey& client_key,
                           const crypto::RsaPublicKey& provider_key) {
  ChainWalkResult result;
  if (records.empty()) return result;

  std::uint64_t head_version = 0;
  Bytes head_root = DynMerkleTree::empty_root();
  std::uint64_t head_count = 0;
  Bytes head_hash = VersionRecord::genesis_link();
  const std::string& object = records.front().record.object_key;

  // Structural pass first: replay the links up to the first break, keeping
  // each linked record's encoded bytes and countersigned message. The
  // client signatures then run as ONE rsa_verify_many group under the
  // client key, the countersignatures as another under the provider key —
  // each group sharing its key's Montgomery context. The verdict is the
  // earliest failure in original walk order (link, then client sig, then
  // provider sig per record), exactly as the per-record walk reported it.
  std::size_t linked = records.size();  // records that extend the chain
  std::string link_why;
  std::vector<Bytes> encoded(records.size());
  std::vector<Bytes> countersigned(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const VersionRecord& rec = records[i].record;
    result.at_version = rec.version;
    std::string why;
    if (rec.object_key != object) {
      linked = i;
      link_why = "record for a different object";
      break;
    }
    if (!extends_head(rec, head_version, head_root, head_count, head_hash,
                      &why)) {
      linked = i;
      link_why = std::move(why);
      break;
    }
    encoded[i] = rec.encode();
    countersigned[i] = common::concat(
        {BytesView(encoded[i]), BytesView(records[i].client_sig)});
    head_version = rec.version;
    head_root = rec.new_root;
    head_count = rec.chunk_count;
    head_hash = rec.hash();
  }
  std::vector<crypto::RsaVerifyItem> client_items(linked);
  std::vector<crypto::RsaVerifyItem> provider_items(linked);
  for (std::size_t i = 0; i < linked; ++i) {
    client_items[i] = {crypto::HashKind::kSha256, BytesView(encoded[i]),
                       BytesView(records[i].client_sig)};
    provider_items[i] = {crypto::HashKind::kSha256,
                         BytesView(countersigned[i]),
                         BytesView(records[i].provider_sig)};
  }
  const std::vector<bool> client_ok =
      crypto::rsa_verify_many(client_key, client_items);
  const std::vector<bool> provider_ok =
      crypto::rsa_verify_many(provider_key, provider_items);
  for (std::size_t i = 0; i < linked; ++i) {
    const VersionRecord& rec = records[i].record;
    if (!client_ok[i]) {
      result.status = ChainStatus::kBadClientSig;
      result.at_version = rec.version;
      result.detail = "client signature fails on " + mutate_op_name(rec.op);
      return result;
    }
    if (!provider_ok[i]) {
      result.status = ChainStatus::kBadProviderSig;
      result.at_version = rec.version;
      result.detail =
          "provider countersignature fails on " + mutate_op_name(rec.op);
      return result;
    }
  }
  if (linked < records.size()) {
    result.status = ChainStatus::kBrokenLink;
    result.at_version = records[linked].record.version;
    result.detail = std::move(link_why);
    return result;
  }
  result.status = ChainStatus::kValid;
  result.at_version = head_version;
  result.detail = "chain intact through version " + std::to_string(head_version);
  return result;
}

}  // namespace tpnr::dyn
