// Versioned non-repudiation records for dynamic objects.
//
// Every mutation produces a VersionRecord signing
//
//   (object, version, op, old_root, new_root, prev_record_hash, ...)
//
// The client signs the record (it cannot later repudiate the update) and
// the provider countersigns client-record‖client-sig (it cannot later deny
// having committed it) — the dynamic-data analogue of the paper's NRO/NRR
// pair. prev_record_hash makes the records a hash-linked chain: the TTP
// walks it during disputes, and any attempt to re-order, drop or fork
// history breaks a link. The chain head (version, new_root) is what the
// continuous auditor pins aggregated responses against, which is how stale
// serves and rollbacks become detectable (see dyn/dispute.h for the §2.4
// decision-table extension).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "crypto/rsa.h"

namespace tpnr::dyn {

using common::Bytes;
using common::BytesView;

/// The mutation kinds a version record can commit.
enum class MutateOp : std::uint8_t {
  kStore = 1,   ///< initial store (creates version 1)
  kUpdate = 2,  ///< replace chunk `chunk_index`
  kInsert = 3,  ///< insert before `chunk_index`
  kAppend = 4,  ///< insert at the end
  kErase = 5,   ///< remove chunk `chunk_index`
};
std::string mutate_op_name(MutateOp op);

/// One link of the version chain. `version` is the object version AFTER the
/// op; the first record (kStore) creates version 1 with an all-zero
/// prev_record_hash.
struct VersionRecord {
  std::string object_key;
  std::uint64_t version = 0;
  MutateOp op = MutateOp::kStore;
  std::uint64_t chunk_index = 0;  ///< target chunk (0 for kStore)
  std::uint64_t chunk_count = 0;  ///< leaf count AFTER the op
  Bytes old_root;                 ///< tree root before (empty root for kStore)
  Bytes new_root;                 ///< tree root after
  std::uint64_t chunk_tag = 0;    ///< PoR tag of the touched chunk (0: kErase)
  Bytes prev_record_hash;         ///< SHA-256 link; 32 zero bytes for v1

  [[nodiscard]] Bytes encode() const;
  /// Throws common::SerialError on malformed input.
  static VersionRecord decode(BytesView data);
  /// SHA-256 over encode() — what the next record links to.
  [[nodiscard]] Bytes hash() const;

  /// The 32-zero-byte link the first record carries.
  static const Bytes& genesis_link();
};

/// A version record with both parties' signatures.
struct SignedVersionRecord {
  VersionRecord record;
  Bytes client_sig;    ///< Sign_client(record.encode())
  Bytes provider_sig;  ///< Sign_provider(record.encode() ‖ client_sig)

  [[nodiscard]] Bytes encode() const;
  static SignedVersionRecord decode(BytesView data);

  [[nodiscard]] bool verify_client(const crypto::RsaPublicKey& client) const;
  [[nodiscard]] bool verify_provider(
      const crypto::RsaPublicKey& provider) const;
  /// Both signatures.
  [[nodiscard]] bool verify(const crypto::RsaPublicKey& client,
                            const crypto::RsaPublicKey& provider) const;
};

/// An append-only, structurally validated record sequence. Signature checks
/// are the walker's job (walk_chain) — the chain itself enforces version,
/// root and hash-link continuity so a locally maintained mirror can never
/// drift silently.
class VersionChain {
 public:
  /// Appends if the record extends the head consistently; otherwise returns
  /// false and (if non-null) explains in `why`.
  bool append(SignedVersionRecord rec, std::string* why = nullptr);

  [[nodiscard]] const std::vector<SignedVersionRecord>& records()
      const noexcept {
    return records_;
  }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }

  /// 0 for an empty chain.
  [[nodiscard]] std::uint64_t head_version() const noexcept;
  /// DynMerkleTree::empty_root() for an empty chain.
  [[nodiscard]] const Bytes& head_root() const;
  [[nodiscard]] std::uint64_t head_chunk_count() const noexcept;
  /// genesis_link() for an empty chain.
  [[nodiscard]] Bytes head_hash() const;

  /// The version whose new_root equals `root`, if any — the rollback check:
  /// a served root matching an OLDER committed version is a revert, not
  /// random corruption.
  [[nodiscard]] std::optional<std::uint64_t> version_of_root(
      BytesView root) const;

 private:
  std::vector<SignedVersionRecord> records_;
};

/// What a full chain walk concluded.
enum class ChainStatus : std::uint8_t {
  kValid = 1,
  kEmpty = 2,
  kBrokenLink = 3,      ///< version/root/hash-link discontinuity
  kBadClientSig = 4,    ///< some record's client signature fails
  kBadProviderSig = 5,  ///< some record's provider countersignature fails
};
std::string chain_status_name(ChainStatus status);

struct ChainWalkResult {
  ChainStatus status = ChainStatus::kEmpty;
  std::uint64_t at_version = 0;  ///< first offending version (0: none)
  std::string detail;
};

/// The TTP's full validation: structural continuity plus both signatures on
/// every record. Deterministic; same chain, same result.
ChainWalkResult walk_chain(std::span<const SignedVersionRecord> records,
                           const crypto::RsaPublicKey& client_key,
                           const crypto::RsaPublicKey& provider_key);

}  // namespace tpnr::dyn
