#include "dyn/por_tags.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "common/error.h"
#include "common/serial.h"
#include "crypto/drbg.h"
#include "crypto/hmac.h"

namespace tpnr::dyn {

namespace fp {

std::uint64_t reduce(std::uint64_t x) noexcept {
  // 2^61 ≡ 1 (mod p): fold the top bits down, then one conditional subtract.
  std::uint64_t r = (x >> 61) + (x & kP);
  if (r >= kP) r -= kP;
  return r;
}

std::uint64_t add(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t r = a + b;  // < 2^62, no overflow
  if (r >= kP) r -= kP;
  return r;
}

std::uint64_t mul(std::uint64_t a, std::uint64_t b) noexcept {
  __extension__ using u128 = unsigned __int128;  // GCC/Clang builtin
  const u128 t = static_cast<u128>(a) * b;
  // t < p^2 < 2^122; fold both 61-bit limbs (2^61 ≡ 1, 2^122 ≡ 1).
  const auto lo = static_cast<std::uint64_t>(t) & kP;
  const auto mid = static_cast<std::uint64_t>(t >> 61) & kP;
  const auto hi = static_cast<std::uint64_t>(t >> 122);
  return reduce(lo + mid + hi);  // ≤ 3p − 2 < 2^63, reduce handles it
}

}  // namespace fp

namespace {

/// First 8 bytes of an HMAC output as a little-endian field element.
std::uint64_t mac_to_field(const Bytes& mac) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | mac[static_cast<std::size_t>(i)];
  }
  return fp::reduce(v);
}

}  // namespace

std::size_t sectors_per_chunk(std::size_t chunk_size) {
  if (chunk_size == 0) throw common::Error("sectors_per_chunk: zero chunk");
  return (chunk_size + kSectorBytes - 1) / kSectorBytes;
}

std::vector<std::uint64_t> chunk_sectors(BytesView chunk,
                                         std::size_t sector_count) {
  std::vector<std::uint64_t> sectors(sector_count, 0);
  for (std::size_t j = 0; j < sector_count; ++j) {
    std::uint64_t v = 0;
    const std::size_t base = j * kSectorBytes;
    for (std::size_t b = kSectorBytes; b-- > 0;) {
      const std::size_t at = base + b;
      v <<= 8;
      if (at < chunk.size()) v |= chunk[at];
    }
    sectors[j] = v;  // < 2^56 < p, already canonical
  }
  return sectors;
}

TagKey TagKey::derive(BytesView master, std::string_view object_key) {
  const Bytes label = common::to_bytes(object_key);
  TagKey key;
  key.prf_key =
      crypto::hmac_sha256(master, common::concat({common::to_bytes("tpnr.dyn.tag.prf:"), label}));
  key.alpha_key =
      crypto::hmac_sha256(master, common::concat({common::to_bytes("tpnr.dyn.tag.alpha:"), label}));
  return key;
}

std::uint64_t TagKey::prf(BytesView leaf_hash) const {
  return mac_to_field(crypto::hmac_sha256_cached(prf_key, leaf_hash));
}

std::vector<std::uint64_t> TagKey::alphas(std::size_t sector_count) const {
  std::vector<std::uint64_t> out(sector_count);
  for (std::size_t j = 0; j < sector_count; ++j) {
    common::BinaryWriter w;
    w.str("alpha");
    w.u64(j);
    out[j] = mac_to_field(crypto::hmac_sha256_cached(alpha_key, w.data()));
  }
  return out;
}

std::uint64_t make_tag(const TagKey& key, BytesView chunk, BytesView leaf_hash,
                       std::span<const std::uint64_t> alphas) {
  const auto sectors = chunk_sectors(chunk, alphas.size());
  std::uint64_t tag = key.prf(leaf_hash);
  for (std::size_t j = 0; j < alphas.size(); ++j) {
    tag = fp::add(tag, fp::mul(alphas[j], sectors[j]));
  }
  return tag;
}

std::vector<std::uint64_t> make_tags(const TagKey& key,
                                     std::span<const BytesView> chunks,
                                     std::size_t chunk_size) {
  const auto leaves = DynMerkleTree::hash_chunks(chunks);
  const auto alphas = key.alphas(sectors_per_chunk(chunk_size));
  std::vector<std::uint64_t> tags(chunks.size());
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    tags[i] = make_tag(key, chunks[i], leaves[i], alphas);
  }
  return tags;
}

std::vector<AggChallenge::Item> AggChallenge::derive(
    std::uint64_t leaf_count) const {
  std::vector<Item> items;
  if (leaf_count == 0 || count == 0) return items;
  crypto::Drbg drbg(seed);
  const std::uint64_t want = std::min(count, leaf_count);
  std::set<std::uint64_t> picked;
  while (picked.size() < want) {
    const std::uint64_t index = drbg.uniform(leaf_count);
    if (!picked.insert(index).second) continue;  // duplicate: no ν consumed
    items.push_back({index, drbg.uniform(fp::kP - 1) + 1});
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.index < b.index; });
  return items;
}

Bytes AggResponse::encode() const {
  common::BinaryWriter w;
  w.u64(version);
  w.bytes(root);
  w.u64(sigma);
  w.u32(static_cast<std::uint32_t>(mu.size()));
  for (const std::uint64_t m : mu) w.u64(m);
  w.bytes(proof.encode());
  return w.take();
}

AggResponse AggResponse::decode(BytesView data) {
  common::BinaryReader r(data);
  AggResponse out;
  out.version = r.u64();
  out.root = r.bytes();
  out.sigma = r.u64();
  const std::uint32_t n = r.u32();
  out.mu.reserve(n);
  for (std::uint32_t j = 0; j < n; ++j) out.mu.push_back(r.u64());
  out.proof = DynBatchProof::decode(r.bytes());
  r.expect_done();
  return out;
}

std::size_t AggResponse::encoded_size() const {
  // u64 version + len+root + u64 sigma + u32 count + mu + len+proof.
  return 8 + 4 + root.size() + 8 + 4 + 8 * mu.size() + 4 +
         proof.encoded_size();
}

AggResponse make_agg_response(const AggChallenge& challenge,
                              const DynMerkleTree& tree,
                              std::span<const BytesView> chunks,
                              std::span<const std::uint64_t> tags,
                              std::size_t chunk_size, std::uint64_t version) {
  if (chunks.size() != tags.size()) {
    throw common::Error("make_agg_response: chunks/tags size mismatch");
  }
  if (tree.leaf_count() != chunks.size()) {
    throw common::Error("make_agg_response: tree/chunks size mismatch");
  }
  const auto items = challenge.derive(tree.leaf_count());
  const std::size_t sector_count = sectors_per_chunk(chunk_size);

  AggResponse out;
  out.version = version;
  out.root = tree.root();
  out.mu.assign(sector_count, 0);
  std::vector<std::uint64_t> indices;
  indices.reserve(items.size());
  for (const auto& item : items) {
    const std::size_t i = item.index;
    indices.push_back(item.index);
    const std::uint64_t nu = item.nu;
    out.sigma = fp::add(out.sigma, fp::mul(nu, tags[i]));
    const auto sectors = chunk_sectors(chunks[i], sector_count);
    for (std::size_t j = 0; j < sector_count; ++j) {
      out.mu[j] = fp::add(out.mu[j], fp::mul(nu, sectors[j]));
    }
  }
  out.proof = tree.prove_batch(indices);
  return out;
}

bool verify_agg_response(const AggChallenge& challenge,
                         const AggResponse& response, const TagKey& key,
                         std::uint64_t leaf_count, std::size_t chunk_size,
                         BytesView root) {
  const std::size_t sector_count = sectors_per_chunk(chunk_size);
  if (response.mu.size() != sector_count) return false;
  if (response.sigma >= fp::kP) return false;
  for (const std::uint64_t m : response.mu) {
    if (m >= fp::kP) return false;
  }

  std::vector<VerifiedLeaf> leaves;
  if (!DynMerkleTree::verify_batch(response.proof, root, leaves)) return false;
  if (response.proof.leaf_count != leaf_count) return false;

  const auto items = challenge.derive(leaf_count);
  if (leaves.size() != items.size()) return false;
  // Both sides are in ascending index order; the proven set must equal the
  // challenged set exactly.
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (leaves[i].index != items[i].index) return false;
    expected =
        fp::add(expected, fp::mul(items[i].nu, key.prf(leaves[i].leaf_hash)));
  }
  const auto alphas = key.alphas(sector_count);
  for (std::size_t j = 0; j < sector_count; ++j) {
    expected = fp::add(expected, fp::mul(alphas[j], response.mu[j]));
  }
  return expected == response.sigma;
}

}  // namespace tpnr::dyn
