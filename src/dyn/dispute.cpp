#include "dyn/dispute.h"

#include "dyn/dyn_merkle.h"

namespace tpnr::dyn {

std::string dyn_ruling_name(DynRulingKind kind) {
  switch (kind) {
    case DynRulingKind::kChainIntact:
      return "chain-intact";
    case DynRulingKind::kProviderStale:
      return "provider-stale";
    case DynRulingKind::kProviderRollback:
      return "provider-rollback";
    case DynRulingKind::kProviderFault:
      return "provider-fault";
    case DynRulingKind::kClientBound:
      return "client-bound";
    case DynRulingKind::kClientUpheld:
      return "client-upheld";
    case DynRulingKind::kInconclusive:
      return "inconclusive";
  }
  return "?";
}

DynRuling resolve_dyn_dispute(const DynDisputeCase& dispute) {
  DynRuling ruling;
  ruling.walk =
      walk_chain(dispute.chain, dispute.client_key, dispute.provider_key);

  if (ruling.walk.status == ChainStatus::kEmpty) {
    ruling.kind = DynRulingKind::kInconclusive;
    ruling.rationale = "no version records presented";
    return ruling;
  }
  if (ruling.walk.status != ChainStatus::kValid) {
    // The provider commits records; presenting a chain that fails to verify
    // is its fault — including a record the client never signed, which is
    // exactly the evidence a falsely-accused client needs.
    ruling.kind = DynRulingKind::kProviderFault;
    ruling.rationale = "chain walk failed at version " +
                       std::to_string(ruling.walk.at_version) + ": " +
                       ruling.walk.detail;
    return ruling;
  }

  // Rebuild head state from the (now verified) chain.
  VersionChain chain;
  for (const auto& rec : dispute.chain) {
    std::string why;
    if (!chain.append(rec, &why)) {
      ruling.kind = DynRulingKind::kProviderFault;  // unreachable after walk
      ruling.rationale = why;
      return ruling;
    }
  }

  // Row: "client repudiates an update".
  if (dispute.repudiated_version.has_value()) {
    const std::uint64_t v = *dispute.repudiated_version;
    if (v == 0 || v > chain.head_version()) {
      ruling.kind = DynRulingKind::kClientUpheld;
      ruling.rationale = "no countersigned record exists for version " +
                         std::to_string(v) + "; the client is not bound";
      return ruling;
    }
    // walk_chain verified every client signature, so the record binds.
    const auto& rec = chain.records()[v - 1].record;
    ruling.kind = DynRulingKind::kClientBound;
    ruling.rationale = "version " + std::to_string(v) + " (" +
                       mutate_op_name(rec.op) +
                       ") carries the client's valid signature; "
                       "repudiation fails";
    return ruling;
  }

  // Rows: freshness/integrity of what the provider serves.
  if (!dispute.served_version.has_value() || !dispute.served_root.has_value()) {
    ruling.kind = DynRulingKind::kChainIntact;
    ruling.rationale = "chain verifies; no serving claim to examine";
    return ruling;
  }
  const std::uint64_t served_version = *dispute.served_version;
  const BytesView served_root(*dispute.served_root);

  if (served_version == chain.head_version() &&
      common::constant_time_equal(served_root, chain.head_root())) {
    ruling.kind = DynRulingKind::kChainIntact;
    ruling.rationale = "provider serves the chain head (version " +
                       std::to_string(served_version) + ")";
    return ruling;
  }

  const auto owner = chain.version_of_root(served_root);
  if (owner.has_value() && *owner == served_version &&
      served_version < chain.head_version()) {
    // Row: "provider served stale version" — an honest label on an old
    // snapshot; the countersigned head proves it committed something newer.
    ruling.kind = DynRulingKind::kProviderStale;
    ruling.rationale =
        "provider serves version " + std::to_string(served_version) +
        " but countersigned the chain through version " +
        std::to_string(chain.head_version());
    return ruling;
  }
  if (owner.has_value() && *owner < chain.head_version()) {
    // Claims currency, serves history: a silent revert.
    ruling.kind = DynRulingKind::kProviderRollback;
    ruling.rationale = "served root belongs to version " +
                       std::to_string(*owner) +
                       " while the provider claims version " +
                       std::to_string(served_version) + " (head " +
                       std::to_string(chain.head_version()) + ")";
    return ruling;
  }
  ruling.kind = DynRulingKind::kProviderFault;
  ruling.rationale =
      "served root matches no committed version of the chain";
  return ruling;
}

}  // namespace tpnr::dyn
