// Rank-annotated dynamic Merkle tree (the authenticated data structure of
// the dynamic-data extension; after Wang et al.'s MHT-with-ranks and the
// DPDP rank trees the ROADMAP cites).
//
// Unlike crypto::MerkleTree — which is rebuilt from the full byte buffer on
// every change — DynMerkleTree supports update / insert / append / erase of
// single chunks with O(log n) node re-hashes: the tree is height-balanced
// (AVL by leaf rank), so a mutation touches one root-to-leaf path plus a
// constant number of rotation nodes. Every interior hash commits to the
// LEAF RANKS of its children, so an inclusion proof simultaneously proves
// the chunk's position: a proof for leaf i cannot be replayed as a proof
// for leaf j, even under an identical chunk.
//
//   leaf     = H(0x00 ‖ chunk)                        (same tag as MerkleTree)
//   interior = H(0x01 ‖ u64le(rank_L) ‖ u64le(rank_R) ‖ h_L ‖ h_R)
//   empty    = H(0x02)
//
// The tree stores hashes only — chunk bytes stay with their owner — so a
// client can mirror the provider's tree at 32 bytes per chunk.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/bytes.h"

namespace tpnr::dyn {

using common::Bytes;
using common::BytesView;

/// One step of an inclusion proof, leaf to root. `sibling_rank` feeds both
/// the interior-hash recomputation and the position check.
struct DynProofStep {
  bool sibling_on_left = false;
  std::uint64_t sibling_rank = 0;
  Bytes sibling_hash;
};

/// Inclusion-plus-position proof for one chunk.
struct DynProof {
  std::uint64_t leaf_index = 0;
  std::uint64_t leaf_count = 0;
  std::vector<DynProofStep> steps;

  [[nodiscard]] Bytes encode() const;
  /// Throws common::SerialError on malformed input.
  static DynProof decode(BytesView data);
  /// Wire size of the encoded proof (for bandwidth accounting).
  [[nodiscard]] std::size_t encoded_size() const;
};

/// Batched inclusion proof for a SET of leaves: the pruned tree containing
/// the challenged leaves, with every unchallenged maximal subtree collapsed
/// to its (hash, rank) summary. Shared path prefixes are shipped once, so a
/// batch over c of n leaves costs ~c·log(n/c) sibling summaries instead of
/// c·log(n) independent paths.
struct DynBatchProof {
  std::uint64_t leaf_count = 0;
  Bytes nodes;  ///< recursive pruned-tree encoding (see dyn_merkle.cpp)

  [[nodiscard]] Bytes encode() const;
  static DynBatchProof decode(BytesView data);
  [[nodiscard]] std::size_t encoded_size() const;
};

/// One challenged leaf recovered from a verified batch proof.
struct VerifiedLeaf {
  std::uint64_t index = 0;
  Bytes leaf_hash;
};

class DynMerkleTree {
 public:
  /// Empty tree (leaf_count() == 0, root() == empty_root()).
  DynMerkleTree() = default;

  DynMerkleTree(DynMerkleTree&&) noexcept = default;
  DynMerkleTree& operator=(DynMerkleTree&&) noexcept = default;
  DynMerkleTree(const DynMerkleTree&) = delete;
  DynMerkleTree& operator=(const DynMerkleTree&) = delete;

  /// Canonical balanced build over `chunks` (leaf hashes run through the
  /// multi-lane SHA-256 engine). A tree mutated by update() only keeps the
  /// build shape, so update-only histories stay byte-identical to a fresh
  /// build over the final chunk vector.
  static DynMerkleTree build(std::span<const BytesView> chunks);
  /// Build from precomputed leaf hashes (the TTP replays chains this way —
  /// it never sees chunk bytes).
  static DynMerkleTree build_from_leaves(std::span<const Bytes> leaf_hashes);

  /// Splits `data` into `chunk_size` chunks (last one short) and builds.
  /// chunk_size == 0 throws common::Error.
  static DynMerkleTree build_over(BytesView data, std::size_t chunk_size);

  [[nodiscard]] std::uint64_t leaf_count() const noexcept {
    return root_ ? rank_of(root_.get()) : 0;
  }
  /// Root hash; empty_root() for an empty tree.
  [[nodiscard]] const Bytes& root() const;
  [[nodiscard]] static const Bytes& empty_root();
  /// Height of the tree (0 for empty or a single leaf).
  [[nodiscard]] int height() const noexcept;

  /// Leaf hash of chunk `index`. Throws std::out_of_range.
  [[nodiscard]] const Bytes& leaf_hash(std::uint64_t index) const;

  // Mutations. Each re-hashes O(log n) nodes — hash_computations() meters
  // exactly how many. All throw std::out_of_range on a bad index.
  void update(std::uint64_t index, BytesView chunk);
  void update_leaf(std::uint64_t index, Bytes leaf_hash);
  /// Inserts BEFORE `index` (index == leaf_count() appends).
  void insert(std::uint64_t index, BytesView chunk);
  void insert_leaf(std::uint64_t index, Bytes leaf_hash);
  void append(BytesView chunk) { insert(leaf_count(), chunk); }
  void erase(std::uint64_t index);

  /// Inclusion-plus-position proof for leaf `index`.
  [[nodiscard]] DynProof prove(std::uint64_t index) const;
  /// Batched proof for sorted, deduplicated `indices`. Throws
  /// std::out_of_range on any bad index, std::invalid_argument if unsorted.
  [[nodiscard]] DynBatchProof prove_batch(
      std::span<const std::uint64_t> indices) const;

  /// Verifies `chunk` sits at `proof.leaf_index` of the tree rooted at
  /// `root` — the index is RECOMPUTED from the rank annotations and must
  /// match the claimed one.
  static bool verify(BytesView chunk, const DynProof& proof, BytesView root);
  static bool verify_leaf(BytesView leaf_hash, const DynProof& proof,
                          BytesView root);

  /// Verifies a batch proof against `root`; on success fills `out` with the
  /// challenged leaves in ascending index order. Returns false on any hash,
  /// rank or structure mismatch (malformed encodings also return false).
  static bool verify_batch(const DynBatchProof& proof, BytesView root,
                           std::vector<VerifiedLeaf>& out);

  /// Node hashes computed since construction or reset — the O(log n)
  /// counter the mutation tests assert on. Leaf and interior hashes both
  /// count; the canonical build counts 2n−1.
  [[nodiscard]] std::uint64_t hash_computations() const noexcept {
    return hash_computations_;
  }
  void reset_hash_computations() noexcept { hash_computations_ = 0; }

  /// Recomputes EVERY node hash of the current structure from scratch and
  /// returns the root — the reference the incremental-maintenance tests
  /// diff against (a stale cached hash anywhere makes them differ).
  [[nodiscard]] Bytes recompute_root_reference() const;

  /// Leaf hashes in index order (the client tags chunks over these).
  [[nodiscard]] std::vector<Bytes> leaf_hashes() const;

  /// H(0x00 ‖ chunk) — shared with crypto::MerkleTree's leaf convention.
  static Bytes hash_chunk(BytesView chunk);
  /// Batch form through the multi-lane engine.
  static std::vector<Bytes> hash_chunks(std::span<const BytesView> chunks);

  /// Structural deep copy (no hashing — hash_computations() of the copy
  /// starts at 0). The optimistic-mutation path snapshots the tree with
  /// this so a provider rejection can restore the EXACT pre-op shape —
  /// shapes are history-dependent, so a canonical rebuild would not do.
  [[nodiscard]] DynMerkleTree clone() const;

 private:
  struct Node {
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
    Bytes hash;
    std::uint64_t rank = 1;  ///< leaves in this subtree
    int height = 0;          ///< 0 for a leaf

    [[nodiscard]] bool is_leaf() const noexcept { return left == nullptr; }
  };
  using NodePtr = std::unique_ptr<Node>;

  static std::uint64_t rank_of(const Node* node) noexcept {
    return node ? node->rank : 0;
  }
  static int height_of(const Node* node) noexcept {
    return node ? node->height : -1;
  }

  void refresh(Node* node);  ///< recompute rank/height/hash from children
  NodePtr rotate_left(NodePtr node);
  NodePtr rotate_right(NodePtr node);
  NodePtr rebalance(NodePtr node);
  NodePtr build_range(std::span<const Bytes> leaf_hashes);
  void update_at(Node* node, std::uint64_t index, Bytes&& leaf_hash);
  NodePtr insert_at(NodePtr node, std::uint64_t index, Bytes&& leaf_hash);
  NodePtr erase_at(NodePtr node, std::uint64_t index);
  static Bytes reference_hash(const Node* node);
  static NodePtr clone_node(const Node* node);

  NodePtr root_;
  std::uint64_t hash_computations_ = 0;
};

/// Splits `data` into `chunk_size`-byte chunks (last one short). Throws
/// common::Error on chunk_size == 0; empty data yields no chunks.
std::vector<Bytes> split_chunks(BytesView data, std::size_t chunk_size);

/// Non-owning views over an owned chunk vector (for span-taking APIs).
std::vector<BytesView> chunk_views(std::span<const Bytes> chunks);

}  // namespace tpnr::dyn
