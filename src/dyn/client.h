// The dynamic-data client — Alice extended with chunk-level mutations.
//
// Where nr::ClientActor treats every object as store-once, DynClientActor
// keeps a 32-bytes-per-chunk mirror (leaf hashes in a DynMerkleTree, plus
// the chunk bytes for inverse ops), tags every chunk with the PoR secret,
// and drives the versioned mutation flow:
//
//   kDynStoreRequest  -> chunks + tags + client-signed VersionRecord (v1)
//   kMutateRequest    -> one chunk op + its tag + client-signed record
//   kDynStoreReceipt / kMutateReceipt <- the provider's countersignature
//
// The version number is the idempotency key (the PR 3 pattern): a retry
// re-sends the SAME signed record under a fresh header, and the provider
// re-issues the receipt without re-applying. Mutations are optimistic — the
// mirror advances when the request is sent and is reverted by the exact
// inverse op if the provider rejects (every DynMerkleTree op has one).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/id.h"
#include "dyn/dyn_merkle.h"
#include "dyn/por_tags.h"
#include "dyn/version_chain.h"
#include "nr/actor.h"

namespace tpnr::dyn {

struct DynClientOptions {
  common::SimTime reply_window = 10 * common::kSecond;  ///< header time limit
  common::SimTime receipt_timeout = 15 * common::kSecond;
  /// Re-send an unacknowledged store/mutation this many times (same signed
  /// record, fresh header). 0 keeps single-shot behaviour.
  std::size_t mutate_retries = 0;
  /// Extra receipt wait added per successive attempt (linear backoff).
  common::SimTime retry_backoff = 5 * common::kSecond;
};

class DynClientActor final : public nr::NrActor {
 public:
  /// Client-side state of one dynamic object.
  struct DynObject {
    std::string provider;
    std::string ttp;
    std::string object_key;
    std::string txn_id;
    std::size_t chunk_size = 0;
    std::vector<Bytes> chunks;  ///< content mirror (inverse ops need bytes)
    DynMerkleTree tree;         ///< rank-annotated mirror, O(log n) per op
    std::vector<std::uint64_t> tags;
    TagKey tag_key;
    std::vector<std::uint64_t> alphas;  ///< cached α_j for this chunk size
    VersionChain chain;                 ///< countersigned records only

    /// The in-flight client-signed record (idempotency key: its version).
    struct PendingOp {
      VersionRecord record;
      Bytes client_sig;
      Bytes chunk;      ///< op payload bytes (empty for erase; data for store)
      Bytes old_chunk;  ///< pre-image for the inverse (update/erase)
      std::uint64_t old_tag = 0;
      /// Pre-op structural snapshot. Tree shapes are history-dependent, so
      /// a rejected insert/erase cannot be undone by the inverse op alone
      /// (rebalance rotations need not invert exactly) — the revert
      /// restores this instead.
      DynMerkleTree tree_backup;
      std::size_t attempts = 0;
    };
    std::optional<PendingOp> pending;

    // Outcome counters.
    std::uint64_t receipts = 0;
    std::uint64_t duplicate_receipts = 0;
    std::uint64_t rejected = 0;  ///< kMutateError received (op reverted)
    std::uint64_t timeouts = 0;  ///< retries exhausted, op reverted
  };

  /// `master_secret` seeds per-object TagKeys (shared with the auditor via
  /// tag_key()).
  DynClientActor(std::string id, net::Network& network,
                 pki::Identity& identity, crypto::Drbg& rng,
                 Bytes master_secret,
                 DynClientOptions options = DynClientOptions{});

  /// Stores `data` as a dynamic object (version 1). Returns the txn id.
  /// Throws ProtocolError on unknown provider key or zero chunk size.
  std::string store_dyn(const std::string& provider, const std::string& ttp,
                        const std::string& object_key, BytesView data,
                        std::size_t chunk_size);

  // One mutation may be in flight per object; these return false while one
  // is pending, on an unknown object, or on a bad index.
  bool update(const std::string& object_key, std::uint64_t index,
              BytesView chunk);
  bool insert(const std::string& object_key, std::uint64_t index,
              BytesView chunk);
  bool append_chunk(const std::string& object_key, BytesView chunk);
  bool erase(const std::string& object_key, std::uint64_t index);

  [[nodiscard]] const DynObject* object(const std::string& object_key) const;
  /// Stable pointer into this actor's state — what the auditor pins its
  /// freshness checks against (must not outlive the actor).
  [[nodiscard]] const VersionChain* chain(const std::string& object_key) const;
  [[nodiscard]] const TagKey* tag_key(const std::string& object_key) const;

 protected:
  void on_message(const nr::NrMessage& message) override;

 private:
  DynObject* mutable_object(const std::string& object_key);
  bool begin_mutation(DynObject& obj, MutateOp op, std::uint64_t index,
                      BytesView chunk);
  /// (Re-)sends the pending record under a fresh header and re-arms the
  /// receipt timer.
  void transmit_pending(const std::string& object_key);
  void arm_receipt_timer(const std::string& object_key, std::uint64_t version,
                         std::size_t attempt);
  /// Applies the inverse op to the mirror and drops the pending record.
  void revert_pending(DynObject& obj);
  void handle_receipt(const nr::NrMessage& message);
  void handle_mutate_error(const nr::NrMessage& message);

  Bytes master_secret_;
  DynClientOptions options_;
  std::map<std::string, DynObject> objects_;  ///< by object key
  std::map<std::string, std::string> txn_to_object_;
  common::IdGenerator txn_ids_;
};

}  // namespace tpnr::dyn
