#include "dyn/provider.h"

#include <utility>

#include "common/serial.h"
#include "crypto/hash.h"
#include "nr/evidence.h"
#include "storage/backend.h"

namespace tpnr::dyn {

namespace {

constexpr common::SimTime kReplyWindow = 30 * common::kSecond;

Bytes concat_chunks(std::span<const Bytes> chunks) {
  std::size_t total = 0;
  for (const Bytes& chunk : chunks) total += chunk.size();
  Bytes out;
  out.reserve(total);
  for (const Bytes& chunk : chunks) {
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  return out;
}

}  // namespace

DynProviderActor::DynProviderActor(std::string id, net::Network& network,
                                   pki::Identity& identity,
                                   crypto::Drbg& rng)
    : NrActor(std::move(id), network, identity, rng),
      store_(std::make_unique<storage::MemoryBackend>()) {
  store_.bind_clock(&network.clock());
}

const DynProviderActor::DynObjectState* DynProviderActor::object_state(
    const std::string& object_key) const {
  const auto it = objects_.find(object_key);
  return it == objects_.end() ? nullptr : &it->second;
}

void DynProviderActor::on_message(const nr::NrMessage& message) {
  switch (message.header.flag) {
    case nr::MsgType::kDynStoreRequest:
      handle_dyn_store(message);
      break;
    case nr::MsgType::kMutateRequest:
      handle_mutate(message);
      break;
    case nr::MsgType::kAggChallenge:
      handle_agg_challenge(message);
      break;
    default:
      break;
  }
}

void DynProviderActor::send_receipt(const std::string& client,
                                    const std::string& txn_id,
                                    nr::MsgType flag,
                                    const SignedVersionRecord& rec) {
  if (!behavior_.send_receipts) return;
  const crypto::RsaPublicKey* client_key = peer_key(client);
  if (client_key == nullptr) return;
  nr::MessageHeader header =
      next_header(flag, client, /*ttp=*/"", txn_id, rec.record.new_root,
                  network_->now() + kReplyWindow);
  Bytes evidence = nr::make_evidence(*identity_, *client_key, header, *rng_);

  common::BinaryWriter payload;
  payload.str(rec.record.object_key);
  payload.bytes(rec.encode());

  nr::NrMessage reply;
  reply.header = std::move(header);
  reply.payload = payload.take();
  reply.evidence = std::move(evidence);
  send(client, std::move(reply));
}

void DynProviderActor::send_mutate_error(const std::string& client,
                                         const std::string& txn_id,
                                         const std::string& object_key,
                                         std::uint64_t version,
                                         const std::string& reason) {
  ++mutations_rejected_;
  common::BinaryWriter payload;
  payload.str(object_key);
  payload.u64(version);
  payload.str(reason);

  nr::NrMessage reply;
  reply.header = next_header(nr::MsgType::kMutateError, client, /*ttp=*/"",
                             txn_id, Bytes{}, network_->now() + kReplyWindow);
  reply.payload = payload.take();
  send(client, std::move(reply));
}

void DynProviderActor::handle_dyn_store(const nr::NrMessage& message) {
  const nr::MessageHeader& h = message.header;
  const crypto::RsaPublicKey* sender_key = peer_key(h.sender);

  std::string object_key;
  std::uint32_t chunk_size = 0;
  Bytes data;
  std::vector<std::uint64_t> tags;
  VersionRecord record;
  Bytes client_sig;
  try {
    common::BinaryReader r(message.payload);
    object_key = r.str();
    chunk_size = r.u32();
    data = r.bytes();
    const std::uint32_t tag_count = r.u32();
    tags.reserve(tag_count);
    for (std::uint32_t i = 0; i < tag_count; ++i) tags.push_back(r.u64());
    record = VersionRecord::decode(r.bytes());
    client_sig = r.bytes();
    r.expect_done();
  } catch (const common::SerialError&) {
    ++stats_.rejected_bad_hash;
    return;
  }
  if (chunk_size == 0 || data.empty()) {
    ++stats_.rejected_bad_hash;
    return;
  }

  // The record IS the agreement: the header must bind to its new_root and
  // the client signature must cover it.
  if (!common::constant_time_equal(h.data_hash, record.new_root)) {
    ++stats_.rejected_bad_hash;
    return;
  }
  SignedVersionRecord signed_record;
  signed_record.record = std::move(record);
  signed_record.client_sig = std::move(client_sig);
  if (!signed_record.verify_client(*sender_key)) {
    ++stats_.rejected_bad_evidence;
    return;
  }
  const VersionRecord& rec = signed_record.record;

  // Idempotent re-store: same version-1 record for a known object → only
  // the receipt is re-issued (the chain already holds the countersigned
  // copy). A different record under a known key is a conflict.
  const auto existing = objects_.find(object_key);
  if (existing != objects_.end()) {
    const SignedVersionRecord& committed = existing->second.chain.records()[0];
    if (common::constant_time_equal(committed.record.encode(), rec.encode()) &&
        common::constant_time_equal(committed.client_sig,
                                    signed_record.client_sig)) {
      ++receipts_resent_;
      send_receipt(h.sender, h.txn_id, nr::MsgType::kDynStoreReceipt,
                   committed);
    } else {
      send_mutate_error(h.sender, h.txn_id, object_key, rec.version,
                        "object exists under a different record");
    }
    return;
  }

  // Recompute the committed facts from the bytes the client actually sent.
  DynObjectState state;
  state.txn_id = h.txn_id;
  state.client = h.sender;
  state.chunk_size = chunk_size;
  state.chunks = split_chunks(data, chunk_size);
  state.tree = DynMerkleTree::build(chunk_views(state.chunks));
  state.tags = std::move(tags);
  if (rec.version != 1 || rec.op != MutateOp::kStore ||
      rec.object_key != object_key ||
      rec.chunk_count != state.tree.leaf_count() ||
      state.tags.size() != state.chunks.size() ||
      !common::constant_time_equal(rec.old_root,
                                   DynMerkleTree::empty_root()) ||
      !common::constant_time_equal(rec.prev_record_hash,
                                   VersionRecord::genesis_link()) ||
      !common::constant_time_equal(rec.new_root, state.tree.root())) {
    ++stats_.rejected_bad_hash;
    return;
  }

  const auto nro =
      nr::open_evidence(*identity_, *sender_key, h, message.evidence);
  if (!nro) {
    ++stats_.rejected_bad_evidence;
    return;
  }

  signed_record.provider_sig = [&] {
    Bytes material = rec.encode();
    const Bytes& sig = signed_record.client_sig;
    material.insert(material.end(), sig.begin(), sig.end());
    return identity_->sign(material);
  }();
  std::string why;
  if (!state.chain.append(signed_record, &why)) {
    ++stats_.rejected_bad_hash;  // cannot happen for a validated v1 record
    return;
  }

  common::Payload stored(std::move(data));
  const Bytes data_md5 = crypto::md5(stored);
  store_.put(object_key, std::move(stored), data_md5, network_->now());
  journal_evidence("dyn-nro", h.txn_id, h.sender, object_key, chunk_size, h,
                   *nro);
  const auto [it, inserted] = objects_.emplace(object_key, std::move(state));
  send_receipt(h.sender, h.txn_id, nr::MsgType::kDynStoreReceipt,
               it->second.chain.records().back());
}

void DynProviderActor::handle_mutate(const nr::NrMessage& message) {
  const nr::MessageHeader& h = message.header;
  const crypto::RsaPublicKey* sender_key = peer_key(h.sender);

  std::string object_key;
  std::uint8_t op_byte = 0;
  std::uint64_t index = 0;
  Bytes chunk;
  std::uint64_t tag = 0;
  VersionRecord record;
  Bytes client_sig;
  try {
    common::BinaryReader r(message.payload);
    object_key = r.str();
    op_byte = r.u8();
    index = r.u64();
    chunk = r.bytes();
    tag = r.u64();
    record = VersionRecord::decode(r.bytes());
    client_sig = r.bytes();
    r.expect_done();
  } catch (const common::SerialError&) {
    ++stats_.rejected_bad_hash;
    return;
  }

  const auto it = objects_.find(object_key);
  if (it == objects_.end()) {
    send_mutate_error(h.sender, h.txn_id, object_key, record.version,
                      "unknown object");
    return;
  }
  DynObjectState& state = it->second;
  if (h.sender != state.client) {
    ++stats_.rejected_bad_evidence;  // only the storing identity may mutate
    return;
  }

  // Envelope consistency: the loose payload fields must restate the signed
  // record, the header must bind to its new_root, and the client signature
  // must verify — all before any state is touched.
  if (record.object_key != object_key ||
      static_cast<std::uint8_t>(record.op) != op_byte ||
      record.chunk_index != index || record.chunk_tag != tag ||
      !common::constant_time_equal(h.data_hash, record.new_root)) {
    ++stats_.rejected_bad_hash;
    return;
  }
  SignedVersionRecord signed_record;
  signed_record.record = std::move(record);
  signed_record.client_sig = std::move(client_sig);
  if (!signed_record.verify_client(*sender_key)) {
    ++stats_.rejected_bad_evidence;
    return;
  }
  const VersionRecord& rec = signed_record.record;

  // Version-number idempotency (the retry contract): an already-committed
  // version re-issues its receipt verbatim; nothing is re-applied. The
  // SAME record is required — a different record under a committed version
  // is a conflict, not a retry.
  const std::uint64_t head = state.chain.head_version();
  if (rec.version >= 1 && rec.version <= head) {
    const SignedVersionRecord& committed =
        state.chain.records()[rec.version - 1];
    if (common::constant_time_equal(committed.record.encode(), rec.encode()) &&
        common::constant_time_equal(committed.client_sig,
                                    signed_record.client_sig)) {
      ++receipts_resent_;
      send_receipt(h.sender, h.txn_id, nr::MsgType::kMutateReceipt,
                   committed);
    } else {
      send_mutate_error(h.sender, h.txn_id, object_key, rec.version,
                        "version already committed to a different record");
    }
    return;
  }
  if (rec.version != head + 1) {
    send_mutate_error(h.sender, h.txn_id, object_key, rec.version,
                      "version gap");
    return;
  }
  if (!common::constant_time_equal(rec.old_root, state.chain.head_root()) ||
      !common::constant_time_equal(rec.prev_record_hash,
                                   state.chain.head_hash())) {
    send_mutate_error(h.sender, h.txn_id, object_key, rec.version,
                      "old root does not match the committed head");
    return;
  }

  // Structural validation against the committed mirror — same stride rules
  // the client enforces (only the last chunk may be short).
  const std::uint64_t count = state.tree.leaf_count();
  const bool inserting =
      rec.op == MutateOp::kInsert || rec.op == MutateOp::kAppend;
  const bool erasing = rec.op == MutateOp::kErase;
  if (rec.op == MutateOp::kStore || (inserting ? index > count : index >= count) ||
      (rec.op == MutateOp::kAppend && index != count)) {
    send_mutate_error(h.sender, h.txn_id, object_key, rec.version,
                      "index out of range");
    return;
  }
  if (!erasing) {
    const bool at_tail = inserting ? index == count : index + 1 == count;
    if (chunk.empty() || chunk.size() > state.chunk_size ||
        (!at_tail && chunk.size() != state.chunk_size) ||
        (inserting && index == count && count > 0 &&
         state.chunks[count - 1].size() != state.chunk_size)) {
      send_mutate_error(h.sender, h.txn_id, object_key, rec.version,
                        "chunk breaks the stride layout");
      return;
    }
  } else if (chunk.size() != 0 || tag != 0) {
    ++stats_.rejected_bad_hash;
    return;
  }

  const auto nro =
      nr::open_evidence(*identity_, *sender_key, h, message.evidence);
  if (!nro) {
    ++stats_.rejected_bad_evidence;
    return;
  }

  // Apply to the tree first (O(log n)) and check the claimed post-op root
  // before committing anything — a mismatch reverts the snapshot and
  // rejects.
  DynMerkleTree backup = state.tree.clone();
  const auto at = static_cast<std::ptrdiff_t>(index);
  switch (rec.op) {
    case MutateOp::kUpdate:
      state.tree.update(index, chunk);
      break;
    case MutateOp::kInsert:
    case MutateOp::kAppend:
      state.tree.insert(index, chunk);
      break;
    case MutateOp::kErase:
      state.tree.erase(index);
      break;
    case MutateOp::kStore:
      return;  // unreachable (rejected above)
  }
  if (state.tree.leaf_count() != rec.chunk_count ||
      !common::constant_time_equal(state.tree.root(), rec.new_root)) {
    state.tree = std::move(backup);
    send_mutate_error(h.sender, h.txn_id, object_key, rec.version,
                      "claimed new root does not match the applied op");
    return;
  }
  switch (rec.op) {
    case MutateOp::kUpdate:
      state.chunks[index] = std::move(chunk);
      state.tags[index] = tag;
      break;
    case MutateOp::kInsert:
    case MutateOp::kAppend:
      state.chunks.insert(state.chunks.begin() + at, std::move(chunk));
      state.tags.insert(state.tags.begin() + at, tag);
      break;
    case MutateOp::kErase:
      state.chunks.erase(state.chunks.begin() + at);
      state.tags.erase(state.tags.begin() + at);
      break;
    case MutateOp::kStore:
      break;
  }

  // Commit: countersign, extend the chain, and write the mutated object
  // through to the store (which journals a MutationRecord). A store that
  // ACKs but drops the write — arm_stale_mutations() — diverges here, and
  // the next audit answered from the store exposes it.
  signed_record.provider_sig = [&] {
    Bytes material = rec.encode();
    const Bytes& sig = signed_record.client_sig;
    material.insert(material.end(), sig.begin(), sig.end());
    return identity_->sign(material);
  }();
  std::string why;
  if (!state.chain.append(signed_record, &why)) {
    throw common::ProtocolError(
        "DynProviderActor: validated record does not extend the chain: " +
        why);
  }
  storage::MutationInfo info;
  info.op = static_cast<std::uint8_t>(rec.op);
  info.chunk_index = rec.chunk_index;
  info.chunk_count = rec.chunk_count;
  info.old_root = rec.old_root;
  info.new_root = rec.new_root;
  common::Payload stored(concat_chunks(state.chunks));
  const Bytes data_md5 = crypto::md5(stored);
  store_.mutate(object_key, std::move(stored), data_md5, network_->now(),
                info);
  journal_evidence("dyn-nro", h.txn_id, h.sender, object_key,
                   state.chunk_size, h, *nro);
  send_receipt(h.sender, h.txn_id, nr::MsgType::kMutateReceipt,
               state.chain.records().back());
}

void DynProviderActor::handle_agg_challenge(const nr::NrMessage& message) {
  if (!behavior_.respond_to_audit) return;
  const nr::MessageHeader& h = message.header;
  const crypto::RsaPublicKey* sender_key = peer_key(h.sender);

  std::string object_key;
  AggChallenge challenge;
  try {
    common::BinaryReader r(message.payload);
    object_key = r.str();
    challenge.seed = r.u64();
    challenge.count = r.u64();
    r.expect_done();
  } catch (const common::SerialError&) {
    ++stats_.rejected_bad_hash;
    return;
  }
  const auto it = objects_.find(object_key);
  if (it == objects_.end()) return;  // silence → auditor times out
  const DynObjectState& state = it->second;

  // Answer from the STORE, not the mirror: re-slice whatever the store
  // serves right now, and report the store's version. When the served bytes
  // equal the committed mirror (the honest steady state), the proof is
  // built over the MIRROR tree — incremental AVL shapes are history-
  // dependent, so only that tree reproduces the countersigned head root
  // after inserts/erases. A diverged store — dropped mutation, rollback,
  // tamper — cannot use the mirror's shape honestly; it falls back to a
  // self-consistent canonical rebuild whose (version, root) pair the
  // auditor classifies against the client's chain head.
  const auto record = store_.get(object_key);
  if (!record) return;
  const std::vector<Bytes> served =
      split_chunks(record->data, state.chunk_size);
  const bool matches_mirror = served == state.chunks;
  DynMerkleTree rebuilt;
  if (!matches_mirror) rebuilt = DynMerkleTree::build(chunk_views(served));
  const DynMerkleTree& tree = matches_mirror ? state.tree : rebuilt;
  std::vector<std::uint64_t> tags = state.tags;
  tags.resize(served.size(), 0);  // length-match; a diverged store fails anyway

  const AggResponse response =
      make_agg_response(challenge, tree, chunk_views(served), tags,
                        state.chunk_size, record->version);
  const Bytes response_bytes = response.encode();

  nr::MessageHeader header = next_header(
      nr::MsgType::kAggResponse, h.sender, h.ttp, h.txn_id,
      crypto::sha256(response_bytes), network_->now() + kReplyWindow);
  Bytes evidence;
  if (sender_key != nullptr) {
    evidence = nr::make_evidence(*identity_, *sender_key, header, *rng_);
  }

  common::BinaryWriter payload;
  payload.str(object_key);
  payload.bytes(response_bytes);

  nr::NrMessage reply;
  reply.header = std::move(header);
  reply.payload = payload.take();
  reply.evidence = std::move(evidence);
  send(h.sender, std::move(reply));
}

}  // namespace tpnr::dyn
