// X.509-flavoured (but minimal) certificates binding an actor id to an RSA
// public key. The paper's §3.3/§3.4 "third authorities certified (TAC)"
// schemes and the §5.1 MITM defence ("when the party gets the other's public
// key, they should authenticate the validity") both rest on these.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/clock.h"
#include "crypto/rsa.h"

namespace tpnr::pki {

using common::Bytes;
using common::BytesView;
using common::SimTime;

struct Certificate {
  std::uint64_t serial = 0;
  std::string subject;              ///< actor id, e.g. "alice"
  std::string issuer;               ///< CA name
  crypto::RsaPublicKey subject_key;
  SimTime valid_from = 0;
  SimTime valid_to = 0;
  Bytes signature;                  ///< CA signature over tbs_encode()

  /// Canonical to-be-signed encoding (everything except the signature).
  [[nodiscard]] Bytes tbs_encode() const;
  /// Full canonical encoding including the signature.
  [[nodiscard]] Bytes encode() const;
  static Certificate decode(BytesView data);

  /// Signature check against the issuer key only (no validity/revocation).
  [[nodiscard]] bool verify_signature(const crypto::RsaPublicKey& issuer_key) const;
  [[nodiscard]] bool in_validity_window(SimTime now) const {
    return now >= valid_from && now <= valid_to;
  }
};

}  // namespace tpnr::pki
