// Process-wide public-key interning.
//
// A fleet run mints hundreds of thousands of actors from a small pool of
// pre-generated keypairs (pki::Identity's pooled constructor), then each
// actor stores BY VALUE the public keys of every peer it trusts — the same
// few dozen moduli duplicated once per (actor, peer) edge. Interning
// collapses that to one shared immutable copy per distinct key: trust_peer
// stores a shared_ptr, and the whole fleet's peer directories cost pointers
// instead of BigInts.
//
// Keys are immutable after interning (const through the shared_ptr); the
// table is keyed by fingerprint (SHA-256 of the canonical encoding) and
// internally synchronized, since actors can be constructed from bench setup
// code while worker threads run other engines.
#pragma once

#include <memory>

#include "crypto/rsa.h"

namespace tpnr::pki {

/// Returns the canonical shared copy of `key`, inserting it on first sight.
std::shared_ptr<const crypto::RsaPublicKey> intern_public_key(
    crypto::RsaPublicKey key);

/// Number of distinct keys currently interned (diagnostics/benchmarks).
std::size_t interned_key_count();

}  // namespace tpnr::pki
