#include "pki/key_intern.h"

#include <map>
#include <mutex>

#include "common/bytes.h"

namespace tpnr::pki {

namespace {

std::mutex g_mutex;
std::map<common::Bytes, std::shared_ptr<const crypto::RsaPublicKey>>&
table() {
  static auto* t =
      new std::map<common::Bytes,
                   std::shared_ptr<const crypto::RsaPublicKey>>();
  return *t;
}

}  // namespace

std::shared_ptr<const crypto::RsaPublicKey> intern_public_key(
    crypto::RsaPublicKey key) {
  common::Bytes fp = key.fingerprint();
  std::lock_guard<std::mutex> lock(g_mutex);
  auto& t = table();
  const auto it = t.find(fp);
  if (it != t.end()) return it->second;
  auto shared = std::make_shared<const crypto::RsaPublicKey>(std::move(key));
  t.emplace(std::move(fp), shared);
  return shared;
}

std::size_t interned_key_count() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return table().size();
}

}  // namespace tpnr::pki
