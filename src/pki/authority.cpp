#include "pki/authority.h"

namespace tpnr::pki {

std::string cert_status_name(CertStatus status) {
  switch (status) {
    case CertStatus::kValid:
      return "valid";
    case CertStatus::kBadSignature:
      return "bad-signature";
    case CertStatus::kExpired:
      return "expired";
    case CertStatus::kNotYetValid:
      return "not-yet-valid";
    case CertStatus::kRevoked:
      return "revoked";
    case CertStatus::kUnknownIssuer:
      return "unknown-issuer";
  }
  return "unknown";
}

CertificateAuthority::CertificateAuthority(std::string name,
                                           std::size_t key_bits,
                                           crypto::Drbg& rng)
    : name_(std::move(name)), keys_(crypto::rsa_generate(key_bits, rng)) {}

Certificate CertificateAuthority::issue(
    const std::string& subject, const crypto::RsaPublicKey& subject_key,
    SimTime now, SimTime lifetime) {
  Certificate cert;
  cert.serial = next_serial_++;
  cert.subject = subject;
  cert.issuer = name_;
  cert.subject_key = subject_key;
  cert.valid_from = now;
  cert.valid_to = now + lifetime;
  cert.signature = crypto::rsa_sign(keys_.priv, crypto::HashKind::kSha256,
                                    cert.tbs_encode());
  return cert;
}

void CertificateAuthority::revoke(std::uint64_t serial) {
  revoked_.insert(serial);
}

CertStatus CertificateAuthority::check(const Certificate& cert,
                                       SimTime now) const {
  if (cert.issuer != name_) return CertStatus::kUnknownIssuer;
  if (!cert.verify_signature(keys_.pub)) return CertStatus::kBadSignature;
  if (is_revoked(cert.serial)) return CertStatus::kRevoked;
  if (now < cert.valid_from) return CertStatus::kNotYetValid;
  if (now > cert.valid_to) return CertStatus::kExpired;
  return CertStatus::kValid;
}

}  // namespace tpnr::pki
