#include "pki/certificate.h"

#include "common/serial.h"
#include "crypto/verify_memo.h"

namespace tpnr::pki {

Bytes Certificate::tbs_encode() const {
  common::BinaryWriter w;
  w.u64(serial);
  w.str(subject);
  w.str(issuer);
  w.bytes(subject_key.encode());
  w.i64(valid_from);
  w.i64(valid_to);
  return w.take();
}

Bytes Certificate::encode() const {
  common::BinaryWriter w;
  w.bytes(tbs_encode());
  w.bytes(signature);
  return w.take();
}

Certificate Certificate::decode(BytesView data) {
  common::BinaryReader outer(data);
  const Bytes tbs = outer.bytes();
  Certificate cert;
  cert.signature = outer.bytes();
  outer.expect_done();

  common::BinaryReader r(tbs);
  cert.serial = r.u64();
  cert.subject = r.str();
  cert.issuer = r.str();
  cert.subject_key = crypto::RsaPublicKey::decode(r.bytes());
  cert.valid_from = r.i64();
  cert.valid_to = r.i64();
  r.expect_done();
  return cert;
}

bool Certificate::verify_signature(
    const crypto::RsaPublicKey& issuer_key) const {
  // Chain checks re-verify the same certificates on every handshake and
  // every piece of evidence; the memo collapses the repeats.
  return crypto::rsa_verify_memo(issuer_key, crypto::HashKind::kSha256,
                                 tbs_encode(), signature);
}

}  // namespace tpnr::pki
