// The certificate authority: the paper's "third authorities certified (TAC)"
// party. Issues certificates, maintains a revocation list, and validates
// presented certificates (signature + window + revocation).
#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "crypto/drbg.h"
#include "pki/certificate.h"

namespace tpnr::pki {

enum class CertStatus {
  kValid,
  kBadSignature,
  kExpired,
  kNotYetValid,
  kRevoked,
  kUnknownIssuer,
};

/// Human-readable status name (for logs and dispute records).
std::string cert_status_name(CertStatus status);

class CertificateAuthority {
 public:
  /// Creates a CA with a fresh RSA key of `key_bits`.
  CertificateAuthority(std::string name, std::size_t key_bits,
                       crypto::Drbg& rng);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const crypto::RsaPublicKey& public_key() const noexcept {
    return keys_.pub;
  }

  /// Issues a certificate for (subject, key) valid over
  /// [now, now + lifetime].
  Certificate issue(const std::string& subject,
                    const crypto::RsaPublicKey& subject_key, SimTime now,
                    SimTime lifetime);

  /// Adds the serial to the revocation list; unknown serials are accepted
  /// idempotently.
  void revoke(std::uint64_t serial);
  [[nodiscard]] bool is_revoked(std::uint64_t serial) const {
    return revoked_.contains(serial);
  }

  /// Full validation: issuer match, signature, window, revocation.
  [[nodiscard]] CertStatus check(const Certificate& cert, SimTime now) const;

 private:
  std::string name_;
  crypto::RsaKeyPair keys_;
  std::uint64_t next_serial_ = 1;
  std::set<std::uint64_t> revoked_;
};

}  // namespace tpnr::pki
