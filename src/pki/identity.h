// An actor identity: name + RSA keypair + (optionally) a certificate from
// the TAC. Provides the signing/sealing operations the NR protocol uses:
//   sign(m)            -> Sign_self(m)
//   seal_for(peer, m)  -> Encrypt_peer{m}
// plus a directory (KeyRegistry) that models "authenticated public keys"
// (§5.1): only keys vouched for by a trusted CA are returned.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "crypto/drbg.h"
#include "crypto/rsa.h"
#include "crypto/verify_memo.h"
#include "pki/authority.h"
#include "pki/certificate.h"

namespace tpnr::pki {

class Identity {
 public:
  Identity(std::string id, std::size_t key_bits, crypto::Drbg& rng)
      : id_(std::move(id)), keys_(crypto::rsa_generate(key_bits, rng)) {}

  /// Adopts an existing keypair instead of generating one. Keygen dominates
  /// large-scale experiment setup; this lets a bench mint thousands of
  /// actors from a small pool of pre-generated keys.
  Identity(std::string id, crypto::RsaKeyPair keys)
      : id_(std::move(id)), keys_(std::move(keys)) {}

  [[nodiscard]] const std::string& id() const noexcept { return id_; }
  [[nodiscard]] const crypto::RsaPublicKey& public_key() const noexcept {
    return keys_.pub;
  }
  [[nodiscard]] const crypto::RsaPrivateKey& private_key() const noexcept {
    return keys_.priv;
  }

  void set_certificate(Certificate cert) { cert_ = std::move(cert); }
  [[nodiscard]] const std::optional<Certificate>& certificate() const noexcept {
    return cert_;
  }

  /// Sign_self(message) with SHA-256/PKCS#1 v1.5.
  [[nodiscard]] common::Bytes sign(common::BytesView message) const {
    return crypto::rsa_sign(keys_.priv, crypto::HashKind::kSha256, message);
  }

  /// Verifies a signature allegedly by `signer_key`. Memoized: evidence
  /// signatures are re-checked at every protocol hop, and repeats cost a
  /// hash instead of a modular exponentiation.
  [[nodiscard]] static bool verify(const crypto::RsaPublicKey& signer_key,
                                   common::BytesView message,
                                   common::BytesView signature) {
    return crypto::rsa_verify_memo(signer_key, crypto::HashKind::kSha256,
                                   message, signature);
  }

  /// Encrypt_peer{message}.
  [[nodiscard]] static common::Bytes seal_for(
      const crypto::RsaPublicKey& peer_key, common::BytesView message,
      crypto::Drbg& rng) {
    return crypto::rsa_encrypt(peer_key, message, rng);
  }

  /// Decrypt_self{ciphertext}; throws CryptoError on failure.
  [[nodiscard]] common::Bytes unseal(common::BytesView ciphertext) const {
    return crypto::rsa_decrypt(keys_.priv, ciphertext);
  }

 private:
  std::string id_;
  crypto::RsaKeyPair keys_;
  std::optional<Certificate> cert_;
};

/// Authenticated public-key directory. Lookups only succeed for identities
/// whose certificate currently checks out against the trusted CA — the §5.1
/// defence against man-in-the-middle key substitution.
class KeyRegistry {
 public:
  explicit KeyRegistry(const CertificateAuthority& trusted_ca)
      : ca_(&trusted_ca) {}

  /// Registers (or replaces) the certificate for its subject.
  void enroll(const Certificate& cert) { certs_[cert.subject] = cert; }

  /// Returns the subject's key iff its certificate validates at `now`.
  [[nodiscard]] std::optional<crypto::RsaPublicKey> authenticated_key(
      const std::string& subject, common::SimTime now) const {
    const auto it = certs_.find(subject);
    if (it == certs_.end()) return std::nullopt;
    if (ca_->check(it->second, now) != CertStatus::kValid) return std::nullopt;
    return it->second.subject_key;
  }

  /// Raw certificate access (for dispute records).
  [[nodiscard]] std::optional<Certificate> certificate(
      const std::string& subject) const {
    const auto it = certs_.find(subject);
    if (it == certs_.end()) return std::nullopt;
    return it->second;
  }

 private:
  const CertificateAuthority* ca_;
  std::map<std::string, Certificate> certs_;
};

}  // namespace tpnr::pki
