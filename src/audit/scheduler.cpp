#include "audit/scheduler.h"

#include <algorithm>
#include <cmath>

namespace tpnr::audit {

AuditScheduler::AuditScheduler(net::Network& network, AuditorActor& auditor,
                               SchedulerConfig config)
    : network_(&network),
      auditor_(&auditor),
      config_(config),
      rng_(config.seed) {}

void AuditScheduler::start() {
  if (running_) return;
  running_ = true;
  ++generation_;
  arm();
}

void AuditScheduler::stop() { running_ = false; }

void AuditScheduler::arm() {
  const std::uint64_t generation = generation_;
  network_->schedule(config_.period, [this, generation] {
    if (!running_ || generation != generation_) return;
    tick();
    if (config_.max_rounds != 0 && rounds_ >= config_.max_rounds) {
      running_ = false;
      return;
    }
    arm();
  });
}

void AuditScheduler::tick() {
  ++rounds_;
  for (const auto& [txn_id, target] : auditor_->targets()) {
    const auto budget = static_cast<std::size_t>(std::max(
        1.0,
        std::round(config_.sampling_rate *
                   static_cast<double>(target.chunk_count))));
    for (std::size_t i = 0; i < budget; ++i) {
      // Draw before the cap check so the sampling sequence — and therefore
      // the whole run — does not depend on response timing.
      const auto chunk = static_cast<std::size_t>(
          rng_.uniform(target.chunk_count));
      if (auditor_->outstanding() >= config_.max_outstanding) {
        ++suppressed_;
        continue;
      }
      if (auditor_->challenge(txn_id, chunk)) {
        ++issued_;
      } else {
        ++suppressed_;  // identical challenge already in flight
      }
    }
  }
  if (config_.mode != ChallengeMode::kAggregate) return;
  // One aggregated challenge per dynamic target per round — constant-size
  // responses make a per-round cadence cheap regardless of object size.
  for (const auto& [txn_id, target] : auditor_->dyn_targets()) {
    if (auditor_->outstanding() >= config_.max_outstanding) {
      ++suppressed_;
      continue;
    }
    if (auditor_->challenge_aggregate(txn_id, config_.aggregate_count)) {
      ++issued_;
    } else {
      ++suppressed_;  // an aggregate for this txn is still in flight
    }
  }
}

}  // namespace tpnr::audit
