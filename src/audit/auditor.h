// The Auditor — a third TPNR actor that continuously spot-checks what the
// provider actually holds, closing the storage-phase gap of Fig. 5 without
// waiting for the client to re-fetch.
//
// For each registered target (a chunked TPNR transaction whose SIGNED
// Merkle root came out of the NRO/NRR), the auditor issues kChunkRequest
// challenges on the "nr.audit" topic, verifies the returned chunk + proof
// against that root, retries unresponsive providers, and records every
// conclusion — verified, mismatch, bad evidence, malformed, no-response —
// in the append-only AuditLedger. Challenge scheduling lives in
// AuditScheduler; this class owns correctness and timeout handling.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "audit/ledger.h"
#include "consistency/view_history.h"
#include "dyn/por_tags.h"
#include "dyn/version_chain.h"
#include "nr/actor.h"
#include "nr/client.h"

namespace tpnr::dyn {
class DynClientActor;
}

namespace tpnr::audit {

/// One provider-held object under continuous audit.
struct AuditTarget {
  std::string txn_id;
  std::string provider;
  std::string object_key;
  Bytes root;  ///< the Merkle root both parties signed (NRO/NRR data_hash)
  std::size_t chunk_size = 0;
  std::size_t chunk_count = 0;
  SimTime registered_at = 0;
};

/// A DYNAMIC object under continuous audit: instead of a fixed signed root,
/// freshness is pinned to the client's live version chain, and challenges
/// are the compact aggregated kind (one (σ, μ) pair + one batched Merkle
/// proof per challenge, independent of chunk size).
struct DynAuditTarget {
  std::string txn_id;
  std::string provider;
  std::string object_key;
  std::size_t chunk_size = 0;
  dyn::TagKey tag_key;  ///< the client/auditor PoR secret for this object
  /// The client's chain of countersigned version records — the freshness
  /// reference. Non-owning; must outlive the auditor's interest.
  const dyn::VersionChain* chain = nullptr;
  SimTime registered_at = 0;
};

/// The pending-map chunk index reserved for aggregated challenges (one per
/// transaction may be in flight; it is not a real chunk index).
inline constexpr std::uint64_t kAggregateIndex =
    ~static_cast<std::uint64_t>(0);

struct AuditorOptions {
  SimTime reply_window = 10 * common::kSecond;  ///< header time limit
  SimTime response_timeout = 15 * common::kSecond;
  int max_retries = 1;  ///< re-challenges before recording no-response
};

class AuditorActor final : public nr::NrActor {
 public:
  /// Running totals, cheaper to poll than scanning the ledger.
  struct Counters {
    std::uint64_t challenges = 0;  ///< fresh challenges (retries excluded)
    std::uint64_t retries = 0;
    std::uint64_t verified = 0;
    std::uint64_t flagged = 0;  ///< mismatch + bad evidence + malformed
    std::uint64_t no_responses = 0;
    std::uint64_t forks_detected = 0;       ///< valid equivocation proofs
    std::uint64_t fork_reports_rejected = 0;  ///< proofs that did not verify
  };

  AuditorActor(std::string id, net::Network& network, pki::Identity& identity,
               crypto::Drbg& rng, AuditLedger& ledger,
               AuditorOptions options = AuditorOptions{});

  /// Registers the object behind a completed chunked transaction. The root
  /// is taken from the client's signed agreement; when the client holds the
  /// NRR its signatures are re-verified against the provider's key first.
  /// Returns false (and registers nothing) for unknown/flat transactions,
  /// an untrusted provider, or an NRR that fails verification.
  bool watch(const nr::ClientActor& client, const std::string& txn_id);

  /// Lower-level registration when the caller already holds the signed
  /// root. Returns false on a malformed target (no chunks, empty ids).
  bool register_target(AuditTarget target);

  [[nodiscard]] const std::map<std::string, AuditTarget>& targets() const {
    return targets_;
  }

  /// Challenges one chunk now. Returns false if the target is unknown, the
  /// index is out of range, or the same (txn, chunk) is already in flight.
  bool challenge(const std::string& txn_id, std::size_t chunk_index);

  /// Registers a dynamic object from the client's live state (chain and tag
  /// key pointers stay with the client). Returns false if the client does
  /// not know the object or its chain is still empty.
  bool watch_dyn(const dyn::DynClientActor& client,
                 const std::string& object_key);
  /// Lower-level registration for callers holding the pieces themselves.
  bool register_dyn_target(DynAuditTarget target);
  [[nodiscard]] const std::map<std::string, DynAuditTarget>& dyn_targets()
      const {
    return dyn_targets_;
  }

  /// Issues one aggregated challenge over `count` sampled chunks. Returns
  /// false on an unknown target, an empty chain, or when an aggregate for
  /// the transaction is already in flight.
  bool challenge_aggregate(const std::string& txn_id, std::uint64_t count);

  /// Verifies a client-submitted EquivocationProof against `provider`'s
  /// trusted key and — when it holds — records a kForkDetected entry in
  /// the ledger. The proof is self-contained (two provider-signed
  /// commitments for one global position), so nothing about the reporting
  /// client needs to be believed. Returns true iff the proof convicts.
  /// Also the handler behind inbound kForkReport messages.
  bool report_fork(const std::string& provider, const std::string& txn_id,
                   const std::string& object_key,
                   const consistency::EquivocationProof& proof,
                   const std::string& reporter = "");

  /// Challenges in flight (issued, not yet concluded).
  [[nodiscard]] std::size_t outstanding() const noexcept {
    return pending_.size();
  }

  [[nodiscard]] const Counters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const AuditLedger& ledger() const noexcept {
    return *ledger_;
  }

 protected:
  void on_message(const nr::NrMessage& message) override;

 private:
  struct Pending {
    std::uint64_t id = 0;  ///< distinguishes this attempt's timeout timer
    SimTime challenged_at = 0;
    int retries_left = 0;
  };
  using PendingKey = std::pair<std::string, std::uint64_t>;  // txn, chunk

  void send_challenge(const AuditTarget& target, std::uint64_t chunk_index);
  void send_agg_challenge(const DynAuditTarget& target,
                          const dyn::AggChallenge& challenge);
  void arm_timeout(const PendingKey& key, std::uint64_t attempt_id);
  void conclude(const PendingKey& key, const Pending& pending,
                AuditVerdict verdict, std::string detail);
  void handle_chunk_response(const nr::NrMessage& message);
  void handle_agg_response(const nr::NrMessage& message);
  void handle_fork_report(const nr::NrMessage& message);

  AuditorOptions options_;
  AuditLedger* ledger_;
  std::map<std::string, AuditTarget> targets_;
  std::map<std::string, DynAuditTarget> dyn_targets_;
  /// The expanded challenge a retry must repeat verbatim, by txn id.
  std::map<std::string, dyn::AggChallenge> agg_inflight_;
  std::map<PendingKey, Pending> pending_;
  std::uint64_t next_attempt_id_ = 1;
  Counters counters_;
};

}  // namespace tpnr::audit
