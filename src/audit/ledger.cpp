#include "audit/ledger.h"

#include "common/serial.h"
#include "crypto/hash.h"

namespace tpnr::audit {

std::string audit_verdict_name(AuditVerdict verdict) {
  switch (verdict) {
    case AuditVerdict::kVerified:
      return "verified";
    case AuditVerdict::kMismatch:
      return "mismatch";
    case AuditVerdict::kBadEvidence:
      return "bad-evidence";
    case AuditVerdict::kMalformed:
      return "malformed";
    case AuditVerdict::kNoResponse:
      return "no-response";
  }
  return "unknown";
}

Bytes AuditEntry::encode_body() const {
  common::BinaryWriter w;
  w.u64(seq);
  w.i64(challenged_at);
  w.i64(concluded_at);
  w.str(auditor);
  w.str(provider);
  w.str(txn_id);
  w.str(object_key);
  w.u64(chunk_index);
  w.u8(static_cast<std::uint8_t>(verdict));
  w.str(detail);
  return w.take();
}

Bytes AuditLedger::genesis_hash() {
  return crypto::sha256(common::to_bytes("tpnr.audit.ledger/genesis"));
}

Bytes AuditLedger::chain_hash(BytesView prev_hash, const AuditEntry& entry) {
  Bytes material(prev_hash.begin(), prev_hash.end());
  const Bytes body = entry.encode_body();
  material.insert(material.end(), body.begin(), body.end());
  return crypto::sha256(material);
}

const AuditEntry& AuditLedger::append(AuditEntry entry) {
  entry.seq = entries_.size();
  entry.prev_hash = head();
  entry.entry_hash = chain_hash(entry.prev_hash, entry);
  entries_.push_back(std::move(entry));
  return entries_.back();
}

Bytes AuditLedger::head() const {
  return entries_.empty() ? genesis_hash() : entries_.back().entry_hash;
}

std::size_t AuditLedger::first_invalid() const {
  Bytes expected_prev = genesis_hash();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const AuditEntry& entry = entries_[i];
    if (entry.seq != i || entry.prev_hash != expected_prev ||
        entry.entry_hash != chain_hash(entry.prev_hash, entry)) {
      return i;
    }
    expected_prev = entry.entry_hash;
  }
  return entries_.size();
}

}  // namespace tpnr::audit
