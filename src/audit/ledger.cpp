#include "audit/ledger.h"

#include "common/serial.h"
#include "crypto/hash.h"

namespace tpnr::audit {

std::string audit_verdict_name(AuditVerdict verdict) {
  switch (verdict) {
    case AuditVerdict::kVerified:
      return "verified";
    case AuditVerdict::kMismatch:
      return "mismatch";
    case AuditVerdict::kBadEvidence:
      return "bad-evidence";
    case AuditVerdict::kMalformed:
      return "malformed";
    case AuditVerdict::kNoResponse:
      return "no-response";
    case AuditVerdict::kStaleVersion:
      return "stale-version";
    case AuditVerdict::kRollback:
      return "rollback";
    case AuditVerdict::kForkDetected:
      return "fork-detected";
  }
  return "unknown";
}

Bytes AuditEntry::encode_body() const {
  common::BinaryWriter w;
  w.u64(seq);
  w.i64(challenged_at);
  w.i64(concluded_at);
  w.str(auditor);
  w.str(provider);
  w.str(txn_id);
  w.str(object_key);
  w.u64(chunk_index);
  w.u8(static_cast<std::uint8_t>(verdict));
  w.str(detail);
  return w.take();
}

Bytes AuditEntry::encode_full() const {
  common::BinaryWriter w;
  w.bytes(encode_body());
  w.bytes(prev_hash);
  w.bytes(entry_hash);
  return w.take();
}

AuditEntry AuditEntry::decode_full(BytesView data) {
  common::BinaryReader r(data);
  const Bytes body = r.bytes();
  AuditEntry entry;
  common::BinaryReader b(body);
  entry.seq = b.u64();
  entry.challenged_at = b.i64();
  entry.concluded_at = b.i64();
  entry.auditor = b.str();
  entry.provider = b.str();
  entry.txn_id = b.str();
  entry.object_key = b.str();
  entry.chunk_index = b.u64();
  const std::uint8_t verdict = b.u8();
  if (verdict < static_cast<std::uint8_t>(AuditVerdict::kVerified) ||
      verdict > static_cast<std::uint8_t>(AuditVerdict::kForkDetected)) {
    throw common::SerialError("AuditEntry: unknown verdict");
  }
  entry.verdict = static_cast<AuditVerdict>(verdict);
  entry.detail = b.str();
  b.expect_done();
  entry.prev_hash = r.bytes();
  entry.entry_hash = r.bytes();
  r.expect_done();
  return entry;
}

Bytes AuditLedger::genesis_hash() {
  return crypto::sha256(common::to_bytes("tpnr.audit.ledger/genesis"));
}

Bytes AuditLedger::chain_hash(BytesView prev_hash, const AuditEntry& entry) {
  Bytes material(prev_hash.begin(), prev_hash.end());
  const Bytes body = entry.encode_body();
  material.insert(material.end(), body.begin(), body.end());
  return crypto::sha256(material);
}

const AuditEntry& AuditLedger::append(AuditEntry entry) {
  entry.seq = entries_.size();
  entry.prev_hash = head();
  entry.entry_hash = chain_hash(entry.prev_hash, entry);
  entries_.push_back(std::move(entry));
  if (journal_ != nullptr) {
    journal_->record(persist::RecordType::kAuditEntry,
                     entries_.back().encode_full());
  }
  return entries_.back();
}

Bytes AuditLedger::head() const {
  return entries_.empty() ? genesis_hash() : entries_.back().entry_hash;
}

std::size_t AuditLedger::first_invalid() const {
  Bytes expected_prev = genesis_hash();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const AuditEntry& entry = entries_[i];
    if (entry.seq != i || entry.prev_hash != expected_prev ||
        entry.entry_hash != chain_hash(entry.prev_hash, entry)) {
      return i;
    }
    expected_prev = entry.entry_hash;
  }
  return entries_.size();
}

}  // namespace tpnr::audit
