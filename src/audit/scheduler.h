// Periodic randomized challenge scheduling on top of AuditorActor.
//
// Runs entirely inside the simulated network: each round is a
// Network::schedule timer that samples (target, chunk) pairs from a seeded
// Drbg — so a whole continuous-audit run is bit-reproducible — and issues
// them through AuditorActor::challenge, bounded by a concurrency cap. The
// knobs (period, sampling rate, cap) are exactly the detection-latency /
// bandwidth trade-off bench_audit_detection sweeps.
#pragma once

#include <cstdint>

#include "audit/auditor.h"
#include "crypto/drbg.h"
#include "net/network.h"

namespace tpnr::audit {

/// How the scheduler challenges DYNAMIC targets. Static (store-once)
/// targets always get per-chunk challenges; dynamic targets are audited
/// only in aggregate mode (their freshness lives in the version chain).
enum class ChallengeMode : std::uint8_t {
  kLegacyChunks = 1,  ///< per-chunk challenges for static targets only
  kAggregate = 2,     ///< plus one aggregated challenge per dyn target/round
};

struct SchedulerConfig {
  /// Time between audit rounds.
  SimTime period = common::kSecond;
  /// Fraction of each target's chunks challenged per round; every target
  /// gets at least one challenge per round. 1.0 audits every chunk of
  /// every object every round.
  double sampling_rate = 0.05;
  /// Cap on challenges in flight (scheduler-issued and retries alike);
  /// a round stops issuing when the auditor reaches it.
  std::size_t max_outstanding = 16;
  /// Seed for the round-local sampling Drbg.
  std::uint64_t seed = 42;
  /// Stop after this many rounds (0 = run until stop()). Bounded runs let
  /// Network::run() drain to idle — tests and benches set this.
  std::uint64_t max_rounds = 0;
  /// Dynamic-target handling (see ChallengeMode).
  ChallengeMode mode = ChallengeMode::kLegacyChunks;
  /// Chunks sampled per aggregated challenge (kAggregate mode).
  std::uint64_t aggregate_count = 64;
};

class AuditScheduler {
 public:
  AuditScheduler(net::Network& network, AuditorActor& auditor,
                 SchedulerConfig config = SchedulerConfig{});

  /// Arms the first round one period from now. No-op when running.
  void start();
  /// Stops issuing; an already-armed timer fires but does nothing.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_; }
  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }
  [[nodiscard]] std::uint64_t challenges_issued() const noexcept {
    return issued_;
  }
  /// Challenges a round wanted to issue but could not (concurrency cap or
  /// an identical challenge already in flight). Non-zero means the period /
  /// sampling-rate combination outruns the configured concurrency.
  [[nodiscard]] std::uint64_t challenges_suppressed() const noexcept {
    return suppressed_;
  }
  [[nodiscard]] const SchedulerConfig& config() const noexcept {
    return config_;
  }

 private:
  void arm();
  void tick();

  net::Network* network_;
  AuditorActor* auditor_;
  SchedulerConfig config_;
  crypto::Drbg rng_;
  bool running_ = false;
  std::uint64_t generation_ = 0;  ///< invalidates timers armed before stop()
  std::uint64_t rounds_ = 0;
  std::uint64_t issued_ = 0;
  std::uint64_t suppressed_ = 0;
};

}  // namespace tpnr::audit
