// Aggregation of an audit run into the numbers the paper's argument needs:
// how fast at-rest faults are detected, what fraction slips through, and
// what the continuous audit costs on the wire relative to protocol traffic.
//
// Inputs are the three observability surfaces this subsystem added:
//   * the AuditLedger (every challenge and its verdict, with times),
//   * the ObjectStore fault log (every injected fault, with times),
//   * net::NetworkStats per-topic counters (audit vs protocol traffic).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "audit/ledger.h"
#include "net/network.h"
#include "storage/object_store.h"

namespace tpnr::audit {

/// Percentiles over a sample of simulated durations, in milliseconds.
struct LatencyStats {
  std::size_t count = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Computes count/p50/p99/max over `latencies` (simulated microseconds).
LatencyStats summarize_latencies(std::vector<SimTime> latencies);

struct AuditReport {
  // Verdict tallies from the ledger.
  std::uint64_t entries = 0;
  std::uint64_t verified = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t bad_evidence = 0;
  std::uint64_t malformed = 0;
  std::uint64_t no_responses = 0;
  std::uint64_t stale_versions = 0;  ///< aggregate mode: outdated version served
  std::uint64_t rollbacks = 0;       ///< aggregate mode: silent revert detected

  // Fault detection, matched per injected fault: a fault on key K at time t
  // counts as detected by the first flagging ledger entry (any verdict but
  // kVerified) for K concluded at or after t. Latency = conclusion − t.
  std::uint64_t faults_injected = 0;
  std::uint64_t faults_detected = 0;
  double detection_rate = 0.0;       ///< detected / injected (1.0 if none)
  double false_negative_rate = 0.0;  ///< 1 − detection_rate
  LatencyStats detection_latency;
  std::map<std::string, std::uint64_t> injected_by_kind;
  std::map<std::string, std::uint64_t> detected_by_kind;

  // Traffic attribution.
  std::uint64_t audit_messages = 0;
  std::uint64_t audit_bytes = 0;
  std::uint64_t protocol_bytes = 0;
  double audit_overhead = 0.0;  ///< audit_bytes / protocol_bytes
};

/// Builds the report. `audit_topic` must match the auditor's send topic.
AuditReport build_report(const AuditLedger& ledger,
                         const std::vector<storage::FaultEvent>& faults,
                         const net::NetworkStats& stats,
                         const std::string& audit_topic = "nr.audit");

}  // namespace tpnr::audit
