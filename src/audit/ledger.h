// Append-only, hash-chained audit evidence ledger.
//
// Every challenge the audit subsystem issues concludes in exactly one entry
// (verified / mismatch / bad-evidence / malformed / no-response) carrying
// the challenge and conclusion times. Entries are chained SHA-256 style —
// entry_hash = H(prev_hash ‖ canonical-encoding) — so a mutated, dropped or
// reordered entry breaks every later link: the ledger is tamper-evident
// evidence of WHAT was audited and WHEN, suitable for the §4.4 arbitration
// flow alongside the NRO/NRR it complements.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "persist/journal.h"

namespace tpnr::audit {

using common::Bytes;
using common::BytesView;
using common::SimTime;

/// How one challenge concluded.
enum class AuditVerdict : std::uint8_t {
  kVerified = 1,     ///< chunk + proof chain to the signed root
  kMismatch = 2,     ///< proof does not chain: tampered or substituted
  kBadEvidence = 3,  ///< response evidence failed (hash or signatures)
  kMalformed = 4,    ///< undecodable response payload
  kNoResponse = 5,   ///< provider silent past timeout (and retries)
  // Dynamic-data verdicts (aggregate challenge mode, src/dyn/): the version
  // chain exposes freshness failures the static root check cannot.
  kStaleVersion = 6, ///< provider answered for an older version than the head
  kRollback = 7,     ///< claims the head version but serves an older root
  // Consistency verdict (src/consistency/): a verified EquivocationProof —
  // two provider-signed commitments for one global position.
  kForkDetected = 8, ///< provider equivocated between clients (fork attack)
};

std::string audit_verdict_name(AuditVerdict verdict);

/// True for every verdict that flags the provider (anything not kVerified):
/// a mismatching proof, broken evidence, garbage, or silence all mean the
/// provider failed to prove possession of the agreed bytes.
[[nodiscard]] constexpr bool verdict_flags_provider(
    AuditVerdict verdict) noexcept {
  return verdict != AuditVerdict::kVerified;
}

/// One concluded challenge. `seq`, `prev_hash` and `entry_hash` are
/// assigned by AuditLedger::append; callers fill the rest.
struct AuditEntry {
  std::uint64_t seq = 0;
  SimTime challenged_at = 0;
  SimTime concluded_at = 0;
  std::string auditor;
  std::string provider;
  std::string txn_id;
  std::string object_key;
  std::uint64_t chunk_index = 0;
  AuditVerdict verdict = AuditVerdict::kVerified;
  std::string detail;
  Bytes prev_hash;   ///< entry_hash of the previous entry (genesis for seq 0)
  Bytes entry_hash;  ///< H(prev_hash ‖ encode_body())

  /// Canonical encoding of everything the chain hash covers except
  /// prev_hash itself.
  [[nodiscard]] Bytes encode_body() const;

  /// Full encoding (body + both hashes) — what the durability layer
  /// journals and snapshots, so a recovered entry carries its chain links
  /// and can be re-verified instead of trusted.
  [[nodiscard]] Bytes encode_full() const;
  /// Throws common::SerialError on truncation or an unknown verdict.
  static AuditEntry decode_full(BytesView data);
};

class AuditLedger {
 public:
  /// Chains and stores `entry` (seq/prev_hash/entry_hash are overwritten).
  /// Returns the stored entry.
  const AuditEntry& append(AuditEntry entry);

  [[nodiscard]] const std::vector<AuditEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Hash of the newest entry (the genesis hash when empty) — publish or
  /// countersign this to anchor everything before it.
  [[nodiscard]] Bytes head() const;

  /// Recomputes the whole chain. Returns the index of the first entry whose
  /// hash, back-link or sequence number does not verify, or size() if the
  /// ledger is intact.
  [[nodiscard]] std::size_t first_invalid() const;
  [[nodiscard]] bool verify_chain() const {
    return first_invalid() == entries_.size();
  }

  /// Direct mutable access for adversarial experiments: the tamper-evidence
  /// tests rewrite entries through this and expect verify_chain to fail.
  [[nodiscard]] std::vector<AuditEntry>& raw_entries() noexcept {
    return entries_;
  }

  static Bytes genesis_hash();
  static Bytes chain_hash(BytesView prev_hash, const AuditEntry& entry);

  /// Journals every appended entry (encode_full) through the durability
  /// seam. nullptr (the default) keeps the ledger memory-only.
  void bind_journal(persist::Journal* journal) noexcept {
    journal_ = journal;
  }

 private:
  std::vector<AuditEntry> entries_;
  persist::Journal* journal_ = nullptr;
};

}  // namespace tpnr::audit
