#include "audit/report.h"

#include <algorithm>

namespace tpnr::audit {

namespace {

double percentile(const std::vector<SimTime>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1));
  return static_cast<double>(sorted[index]);
}

}  // namespace

LatencyStats summarize_latencies(std::vector<SimTime> latencies) {
  LatencyStats stats;
  stats.count = latencies.size();
  if (latencies.empty()) return stats;
  std::sort(latencies.begin(), latencies.end());
  const double to_ms = 1.0 / static_cast<double>(common::kMillisecond);
  stats.p50_ms = percentile(latencies, 0.50) * to_ms;
  stats.p99_ms = percentile(latencies, 0.99) * to_ms;
  stats.max_ms = static_cast<double>(latencies.back()) * to_ms;
  return stats;
}

AuditReport build_report(const AuditLedger& ledger,
                         const std::vector<storage::FaultEvent>& faults,
                         const net::NetworkStats& stats,
                         const std::string& audit_topic) {
  AuditReport report;
  report.entries = ledger.size();
  for (const AuditEntry& entry : ledger.entries()) {
    switch (entry.verdict) {
      case AuditVerdict::kVerified:
        ++report.verified;
        break;
      case AuditVerdict::kMismatch:
        ++report.mismatches;
        break;
      case AuditVerdict::kBadEvidence:
        ++report.bad_evidence;
        break;
      case AuditVerdict::kMalformed:
        ++report.malformed;
        break;
      case AuditVerdict::kNoResponse:
        ++report.no_responses;
        break;
      case AuditVerdict::kStaleVersion:
        ++report.stale_versions;
        break;
      case AuditVerdict::kRollback:
        ++report.rollbacks;
        break;
    }
  }

  // Per-fault detection matching. Ledger entries are in conclusion order,
  // so a linear scan per fault finds the earliest qualifying flag.
  std::vector<SimTime> latencies;
  report.faults_injected = faults.size();
  for (const storage::FaultEvent& fault : faults) {
    ++report.injected_by_kind[storage::fault_kind_name(fault.kind)];
    for (const AuditEntry& entry : ledger.entries()) {
      if (entry.object_key != fault.key ||
          !verdict_flags_provider(entry.verdict) ||
          entry.concluded_at < fault.at) {
        continue;
      }
      ++report.faults_detected;
      ++report.detected_by_kind[storage::fault_kind_name(fault.kind)];
      latencies.push_back(entry.concluded_at - fault.at);
      break;
    }
  }
  report.detection_rate =
      report.faults_injected == 0
          ? 1.0
          : static_cast<double>(report.faults_detected) /
                static_cast<double>(report.faults_injected);
  report.false_negative_rate = 1.0 - report.detection_rate;
  report.detection_latency = summarize_latencies(std::move(latencies));

  const net::TopicStats audit = stats.topic(audit_topic);
  report.audit_messages = audit.messages_sent;
  report.audit_bytes = audit.bytes_sent;
  report.protocol_bytes = stats.bytes_sent - audit.bytes_sent;
  report.audit_overhead =
      report.protocol_bytes == 0
          ? 0.0
          : static_cast<double>(report.audit_bytes) /
                static_cast<double>(report.protocol_bytes);
  return report;
}

}  // namespace tpnr::audit
