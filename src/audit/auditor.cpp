#include "audit/auditor.h"

#include <memory>
#include <utility>
#include <vector>

#include "common/payload.h"
#include "common/serial.h"
#include "crypto/sha256.h"
#include "dyn/client.h"
#include "nr/chunked.h"
#include "nr/evidence.h"
#include "runtime/crypto_service.h"

namespace tpnr::audit {

AuditorActor::AuditorActor(std::string id, net::Network& network,
                           pki::Identity& identity, crypto::Drbg& rng,
                           AuditLedger& ledger, AuditorOptions options)
    : NrActor(std::move(id), network, identity, rng),
      options_(options),
      ledger_(&ledger) {
  // Audit traffic travels on its own topic so net::TopicStats can separate
  // audit overhead from protocol traffic.
  set_default_topic("nr.audit");
}

bool AuditorActor::watch(const nr::ClientActor& client,
                         const std::string& txn_id) {
  const nr::ClientActor::Txn* txn = client.transaction(txn_id);
  if (txn == nullptr || txn->chunk_size == 0 || txn->chunk_count == 0) {
    return false;  // unknown or flat: nothing to challenge chunk-wise
  }
  const crypto::RsaPublicKey* provider_key = peer_key(txn->provider);
  if (provider_key == nullptr) return false;
  // The root we audit against must be the SIGNED one. When the client holds
  // the provider's receipt, re-verify it: a receipt that does not verify,
  // or covers a different hash, is no basis for an audit.
  if (txn->nrr.has_value() && txn->nrr_header.has_value()) {
    if (txn->nrr_header->data_hash != txn->data_hash ||
        !nr::verify_evidence_signatures(*provider_key, *txn->nrr_header,
                                        *txn->nrr)) {
      return false;
    }
  }
  AuditTarget target;
  target.txn_id = txn_id;
  target.provider = txn->provider;
  target.object_key = txn->object_key;
  target.root = txn->data_hash;
  target.chunk_size = txn->chunk_size;
  target.chunk_count = txn->chunk_count;
  return register_target(std::move(target));
}

bool AuditorActor::register_target(AuditTarget target) {
  if (target.txn_id.empty() || target.provider.empty() ||
      target.chunk_size == 0 || target.chunk_count == 0 ||
      target.root.empty()) {
    return false;
  }
  target.registered_at = network_->now();
  targets_[target.txn_id] = std::move(target);
  return true;
}

bool AuditorActor::watch_dyn(const dyn::DynClientActor& client,
                             const std::string& object_key) {
  const dyn::DynClientActor::DynObject* obj = client.object(object_key);
  if (obj == nullptr || obj->chain.empty()) return false;
  DynAuditTarget target;
  target.txn_id = obj->txn_id;
  target.provider = obj->provider;
  target.object_key = obj->object_key;
  target.chunk_size = obj->chunk_size;
  target.tag_key = obj->tag_key;
  target.chain = &obj->chain;
  return register_dyn_target(std::move(target));
}

bool AuditorActor::register_dyn_target(DynAuditTarget target) {
  if (target.txn_id.empty() || target.provider.empty() ||
      target.chunk_size == 0 || target.chain == nullptr ||
      target.chain->empty() || peer_key(target.provider) == nullptr) {
    return false;
  }
  target.registered_at = network_->now();
  dyn_targets_[target.txn_id] = std::move(target);
  return true;
}

bool AuditorActor::challenge_aggregate(const std::string& txn_id,
                                       std::uint64_t count) {
  const auto it = dyn_targets_.find(txn_id);
  if (it == dyn_targets_.end() || count == 0 ||
      it->second.chain->head_chunk_count() == 0) {
    return false;
  }
  const PendingKey key{txn_id, kAggregateIndex};
  if (pending_.contains(key)) return false;  // one aggregate per txn

  dyn::AggChallenge challenge;
  challenge.seed = rng_->next_u64();
  challenge.count = count;
  agg_inflight_[txn_id] = challenge;

  Pending pending;
  pending.id = next_attempt_id_++;
  pending.challenged_at = network_->now();
  pending.retries_left = options_.max_retries;
  pending_[key] = pending;
  ++counters_.challenges;
  send_agg_challenge(it->second, challenge);
  arm_timeout(key, pending.id);
  return true;
}

void AuditorActor::send_agg_challenge(const DynAuditTarget& target,
                                      const dyn::AggChallenge& challenge) {
  common::BinaryWriter payload;
  payload.str(target.object_key);
  payload.u64(challenge.seed);
  payload.u64(challenge.count);

  nr::NrMessage message;
  // data_hash pins the header to the freshness reference at challenge
  // time: the chain head root the response will be judged against.
  message.header = next_header(nr::MsgType::kAggChallenge, target.provider,
                               /*ttp=*/"", target.txn_id,
                               target.chain->head_root(),
                               network_->now() + options_.reply_window);
  message.payload = payload.take();
  send(target.provider, std::move(message));
}

bool AuditorActor::challenge(const std::string& txn_id,
                             std::size_t chunk_index) {
  const auto it = targets_.find(txn_id);
  if (it == targets_.end() || chunk_index >= it->second.chunk_count) {
    return false;
  }
  const PendingKey key{txn_id, chunk_index};
  if (pending_.contains(key)) return false;  // already in flight

  Pending pending;
  pending.id = next_attempt_id_++;
  pending.challenged_at = network_->now();
  pending.retries_left = options_.max_retries;
  pending_[key] = pending;
  ++counters_.challenges;
  send_challenge(it->second, chunk_index);
  arm_timeout(key, pending.id);
  return true;
}

void AuditorActor::send_challenge(const AuditTarget& target,
                                  std::uint64_t chunk_index) {
  common::BinaryWriter payload;
  payload.u64(chunk_index);

  nr::NrMessage message;
  message.header = next_header(nr::MsgType::kChunkRequest, target.provider,
                               /*ttp=*/"", target.txn_id, target.root,
                               network_->now() + options_.reply_window);
  message.payload = payload.take();
  send(target.provider, std::move(message));
}

void AuditorActor::arm_timeout(const PendingKey& key,
                               std::uint64_t attempt_id) {
  network_->schedule(options_.response_timeout, [this, key, attempt_id] {
    const auto it = pending_.find(key);
    // Concluded meanwhile, or a retry re-armed with a newer attempt id.
    if (it == pending_.end() || it->second.id != attempt_id) return;
    if (it->second.retries_left > 0) {
      --it->second.retries_left;
      it->second.id = next_attempt_id_++;
      ++counters_.retries;
      if (key.second == kAggregateIndex) {
        // Re-issue the SAME expanded challenge: the provider's answer is a
        // pure function of (seed, count, object), so a retry is idempotent.
        const auto target_it = dyn_targets_.find(key.first);
        const auto challenge_it = agg_inflight_.find(key.first);
        if (target_it != dyn_targets_.end() &&
            challenge_it != agg_inflight_.end()) {
          send_agg_challenge(target_it->second, challenge_it->second);
        }
      } else {
        const auto target_it = targets_.find(key.first);
        if (target_it != targets_.end()) {
          send_challenge(target_it->second, key.second);
        }
      }
      arm_timeout(key, it->second.id);
      return;
    }
    conclude(key, it->second, AuditVerdict::kNoResponse,
             "provider silent through " +
                 std::to_string(1 + options_.max_retries) + " attempt(s)");
  });
}

void AuditorActor::conclude(const PendingKey& key, const Pending& pending,
                            AuditVerdict verdict, std::string detail) {
  AuditEntry entry;
  entry.challenged_at = pending.challenged_at;
  entry.concluded_at = network_->now();
  entry.auditor = id();
  entry.txn_id = key.first;
  entry.chunk_index = key.second;
  entry.verdict = verdict;
  entry.detail = std::move(detail);
  if (const auto it = targets_.find(key.first); it != targets_.end()) {
    entry.provider = it->second.provider;
    entry.object_key = it->second.object_key;
  } else if (const auto dyn_it = dyn_targets_.find(key.first);
             dyn_it != dyn_targets_.end()) {
    entry.provider = dyn_it->second.provider;
    entry.object_key = dyn_it->second.object_key;
  }
  ledger_->append(std::move(entry));

  switch (verdict) {
    case AuditVerdict::kVerified:
      ++counters_.verified;
      break;
    case AuditVerdict::kNoResponse:
      ++counters_.no_responses;
      break;
    default:
      ++counters_.flagged;
      break;
  }
  pending_.erase(key);
  if (key.second == kAggregateIndex) agg_inflight_.erase(key.first);
}

void AuditorActor::on_message(const nr::NrMessage& message) {
  if (message.header.flag == nr::MsgType::kChunkResponse) {
    handle_chunk_response(message);
  } else if (message.header.flag == nr::MsgType::kAggResponse) {
    handle_agg_response(message);
  } else if (message.header.flag == nr::MsgType::kForkReport) {
    handle_fork_report(message);
  }
}

void AuditorActor::handle_fork_report(const nr::NrMessage& message) {
  const nr::MessageHeader& h = message.header;
  std::string provider;
  std::string object_key;
  std::string txn_id;
  consistency::EquivocationProof proof;
  try {
    common::BinaryReader r(message.payload);
    provider = r.str();
    object_key = r.str();
    txn_id = r.str();
    const Bytes proof_bytes = r.bytes();
    r.expect_done();
    if (h.data_hash != crypto::sha256(proof_bytes)) {
      ++stats_.rejected_bad_hash;
      return;
    }
    proof = consistency::EquivocationProof::decode(proof_bytes);
  } catch (const common::SerialError&) {
    ++stats_.rejected_bad_hash;
    return;
  }
  std::shared_ptr<const crypto::RsaPublicKey> reporter_key =
      peer_key_shared(h.sender);
  if (reporter_key == nullptr) return;
  const auto opened =
      nr::open_evidence_unverified(*identity_, h, message.evidence);
  if (!opened.has_value()) {
    ++stats_.rejected_bad_evidence;
    return;
  }
  // The reporter's evidence signatures go through the crypto service; the
  // proof itself is judged in the completion (its two provider signatures
  // ride the per-key verify memo and Montgomery fast path).
  std::vector<runtime::VerifyJob> sigs(2);
  sigs[0].key = reporter_key;
  sigs[0].message = h.data_hash;
  sigs[0].signature = opened->data_hash_signature;
  sigs[1].key = reporter_key;
  sigs[1].message = h.encode();
  sigs[1].signature = opened->header_signature;
  crypto_service().submit_verifies(
      std::move(sigs),
      [this, provider, txn_id, object_key, proof = std::move(proof),
       reporter = h.sender](std::vector<bool> ok) {
        if (!ok[0] || !ok[1]) {
          ++stats_.rejected_bad_evidence;
          return;
        }
        report_fork(provider, txn_id, object_key, proof, reporter);
      });
}

bool AuditorActor::report_fork(const std::string& provider,
                               const std::string& txn_id,
                               const std::string& object_key,
                               const consistency::EquivocationProof& proof,
                               const std::string& reporter) {
  const SimTime now = network_->now();
  const crypto::RsaPublicKey* provider_key = peer_key(provider);
  std::string why;
  const bool convicts =
      provider_key != nullptr && proof.object_key == object_key &&
      proof.valid(*provider_key, &why);
  if (!convicts) {
    // A proof that does not verify proves nothing against anyone; count it
    // but keep the ledger to facts.
    ++counters_.fork_reports_rejected;
    return false;
  }
  ++counters_.forks_detected;
  ++counters_.flagged;
  AuditEntry entry;
  entry.challenged_at = now;
  entry.concluded_at = now;
  entry.auditor = id();
  entry.provider = provider;
  entry.txn_id = txn_id;
  entry.object_key = object_key;
  entry.chunk_index = proof.a.view.global_seq;
  entry.verdict = AuditVerdict::kForkDetected;
  entry.detail = (reporter.empty() ? std::string("local report")
                                   : "reported by " + reporter) +
                 ": " + proof.describe();
  ledger_->append(std::move(entry));
  return true;
}

void AuditorActor::handle_agg_response(const nr::NrMessage& message) {
  const nr::MessageHeader& h = message.header;
  const auto target_it = dyn_targets_.find(h.txn_id);
  if (target_it == dyn_targets_.end()) return;
  const DynAuditTarget& target = target_it->second;
  if (h.sender != target.provider) return;

  const PendingKey key{h.txn_id, kAggregateIndex};
  const auto pending_it = pending_.find(key);
  const auto challenge_it = agg_inflight_.find(h.txn_id);
  if (pending_it == pending_.end() || challenge_it == agg_inflight_.end()) {
    return;  // late duplicate or unsolicited
  }
  const Pending pending = pending_it->second;
  const dyn::AggChallenge challenge = challenge_it->second;

  Bytes response_bytes;
  dyn::AggResponse response;
  try {
    common::BinaryReader r(message.payload);
    if (r.str() != target.object_key) {
      conclude(key, pending, AuditVerdict::kMalformed,
               "response names a different object");
      return;
    }
    response_bytes = r.bytes();
    r.expect_done();
    response = dyn::AggResponse::decode(response_bytes);
  } catch (const common::SerialError&) {
    conclude(key, pending, AuditVerdict::kMalformed,
             "aggregated response undecodable");
    return;
  }

  // Evidence first: the provider signed the hash of this exact response,
  // so whatever (version, root, σ, μ) it claims is non-repudiable. The
  // digest and both evidence signatures run through the crypto service.
  std::shared_ptr<const crypto::RsaPublicKey> provider_key =
      peer_key_shared(target.provider);
  const auto opened =
      nr::open_evidence_unverified(*identity_, h, message.evidence);
  if (provider_key == nullptr || !opened.has_value()) {
    ++stats_.rejected_bad_evidence;
    conclude(key, pending, AuditVerdict::kBadEvidence,
             "response evidence failed verification");
    return;
  }

  // The freshness reference is pinned NOW, at response-execution time: the
  // completion judges against the chain head as it stood when the response
  // event ran, exactly as the inline path would.
  const dyn::VersionChain& chain = *target.chain;
  const std::uint64_t head_version = chain.head_version();
  const Bytes head_root = chain.head_root();
  const std::size_t head_chunk_count = chain.head_chunk_count();
  const auto older = chain.version_of_root(response.root);

  std::vector<runtime::DigestJob> jobs(1);
  jobs[0].message = common::Payload::copy_of(response_bytes);
  crypto_service().submit_digests(
      std::move(jobs),
      [this, h, key, pending, provider_key, opened = *opened, challenge,
       response = std::move(response), tag_key = target.tag_key,
       chunk_size = target.chunk_size, head_version, head_root,
       head_chunk_count, older](std::vector<Bytes> digests) {
        if (!pending_.contains(key)) return;  // concluded meanwhile
        if (digests[0] != h.data_hash) {
          ++stats_.rejected_bad_evidence;
          conclude(key, pending, AuditVerdict::kBadEvidence,
                   "response evidence failed verification");
          return;
        }
        std::vector<runtime::VerifyJob> sigs(2);
        sigs[0].key = provider_key;
        sigs[0].message = h.data_hash;
        sigs[0].signature = opened.data_hash_signature;
        sigs[1].key = provider_key;
        sigs[1].message = h.encode();
        sigs[1].signature = opened.header_signature;
        crypto_service().submit_verifies(
            std::move(sigs),
            [this, key, pending, challenge, response, tag_key, chunk_size,
             head_version, head_root, head_chunk_count,
             older](std::vector<bool> ok) {
              if (!pending_.contains(key)) return;
              if (!ok[0] || !ok[1]) {
                ++stats_.rejected_bad_evidence;
                conclude(key, pending, AuditVerdict::kBadEvidence,
                         "response evidence failed verification");
                return;
              }
              // Freshness against the client's chain head BEFORE any
              // algebra: a stale or rolled-back head is a verdict of its
              // own, not a mere mismatch.
              if (response.version < head_version) {
                conclude(key, pending, AuditVerdict::kStaleVersion,
                         "provider served version " +
                             std::to_string(response.version) +
                             " but the countersigned head is version " +
                             std::to_string(head_version));
                return;
              }
              if (!common::constant_time_equal(response.root, head_root)) {
                if (older.has_value() && *older < head_version) {
                  conclude(key, pending, AuditVerdict::kRollback,
                           "root matches committed version " +
                               std::to_string(*older) +
                               " while claiming version " +
                               std::to_string(response.version) + " (head " +
                               std::to_string(head_version) + ")");
                } else {
                  conclude(key, pending, AuditVerdict::kMismatch,
                           "root matches no committed version");
                }
                return;
              }
              const bool holds = dyn::verify_agg_response(
                  challenge, response, tag_key, head_chunk_count, chunk_size,
                  head_root);
              conclude(key, pending,
                       holds ? AuditVerdict::kVerified
                             : AuditVerdict::kMismatch,
                       holds ? "aggregated proof verified against the chain "
                               "head"
                             : "aggregated proof failed verification");
            });
      });
}

void AuditorActor::handle_chunk_response(const nr::NrMessage& message) {
  const nr::MessageHeader& h = message.header;
  const auto target_it = targets_.find(h.txn_id);
  if (target_it == targets_.end()) return;
  const AuditTarget& target = target_it->second;
  if (h.sender != target.provider) return;

  // Stage 1: the chunk index, to correlate with the outstanding challenge.
  std::uint64_t chunk_index = 0;
  common::BinaryReader reader(message.payload);
  try {
    chunk_index = reader.u64();
  } catch (const common::SerialError&) {
    // Undecodable beyond recovery. If exactly one challenge is in flight
    // for this transaction the response can still be attributed; otherwise
    // the timeout path will record the non-response.
    PendingKey only{};
    std::size_t matches = 0;
    for (const auto& [key, pending] : pending_) {
      if (key.first == h.txn_id) {
        only = key;
        ++matches;
      }
    }
    if (matches == 1) {
      conclude(only, pending_.at(only), AuditVerdict::kMalformed,
               "response payload undecodable");
    }
    return;
  }
  const PendingKey key{h.txn_id, chunk_index};
  const auto pending_it = pending_.find(key);
  if (pending_it == pending_.end()) return;  // late duplicate or unsolicited
  const Pending pending = pending_it->second;

  // Stage 2: the chunk and its inclusion proof.
  Bytes chunk;
  crypto::MerkleProof proof;
  try {
    chunk = reader.bytes();
    proof = nr::decode_proof(reader.bytes());
    reader.expect_done();
  } catch (const common::SerialError&) {
    conclude(key, pending, AuditVerdict::kMalformed,
             "chunk or proof undecodable");
    return;
  }

  // Stages 3 and 4 each hash the full chunk — the evidence digest (flat
  // SHA-256) and the Merkle leaf (0x00-tagged SHA-256). Both go through the
  // crypto service as one two-job submission, so concurrent audits in the
  // shard coalesce into full multi-buffer dispatches and the chunk's blocks
  // stream through the compressor once, two lanes wide.
  std::shared_ptr<const crypto::RsaPublicKey> provider_key =
      peer_key_shared(target.provider);
  const auto opened =
      nr::open_evidence_unverified(*identity_, h, message.evidence);
  if (provider_key == nullptr || !opened.has_value()) {
    ++stats_.rejected_bad_evidence;
    conclude(key, pending, AuditVerdict::kBadEvidence,
             "response evidence failed verification");
    return;
  }
  const common::Payload chunk_payload = common::Payload::copy_of(chunk);
  std::vector<runtime::DigestJob> jobs(2);
  jobs[0].message = chunk_payload;  // evidence digest
  jobs[1].message = chunk_payload;  // Merkle leaf
  jobs[1].tag = 0x00;
  crypto_service().submit_digests(
      std::move(jobs),
      [this, h, key, pending, provider_key, opened = *opened,
       proof = std::move(proof), chunk_index,
       chunk_count = target.chunk_count,
       root = target.root](std::vector<Bytes> digests) {
        if (!pending_.contains(key)) return;  // concluded meanwhile

        // Stage 3: the response evidence — the provider signed the hash of
        // the chunk it served NOW, so it cannot later repudiate this audit
        // answer.
        if (digests[0] != h.data_hash) {
          ++stats_.rejected_bad_evidence;
          conclude(key, pending, AuditVerdict::kBadEvidence,
                   "response evidence failed verification");
          return;
        }
        std::vector<runtime::VerifyJob> sigs(2);
        sigs[0].key = provider_key;
        sigs[0].message = h.data_hash;
        sigs[0].signature = opened.data_hash_signature;
        sigs[1].key = provider_key;
        sigs[1].message = h.encode();
        sigs[1].signature = opened.header_signature;
        crypto_service().submit_verifies(
            std::move(sigs),
            [this, key, pending, proof, chunk_index, chunk_count, root,
             leaf = std::move(digests[1])](std::vector<bool> ok) {
              if (!pending_.contains(key)) return;
              if (!ok[0] || !ok[1]) {
                ++stats_.rejected_bad_evidence;
                conclude(key, pending, AuditVerdict::kBadEvidence,
                         "response evidence failed verification");
                return;
              }
              // Stage 4: the audit proper — does the served chunk chain to
              // the Merkle root both parties signed at store time?
              const bool chains =
                  proof.leaf_index == chunk_index &&
                  proof.leaf_count == chunk_count &&
                  crypto::MerkleTree::verify_from_leaf(leaf, proof, root);
              conclude(key, pending,
                       chains ? AuditVerdict::kVerified
                              : AuditVerdict::kMismatch,
                       chains ? "chunk verified against the signed root"
                              : "proof does not chain to the signed root");
            });
      });
}

}  // namespace tpnr::audit
