// 8-lane SHA-256 compression, compiled with -mavx2 (see crypto/CMakeLists):
// the 32-byte vectors in sha256_mb_lanes.inl land in YMM registers here.
// Only sha256_mb.cpp's runtime dispatch calls into this TU, and only after
// __builtin_cpu_supports("avx2") — nothing else may be defined here, or a
// non-AVX2 host could fault on an incidentally vectorized symbol.
#include <cstddef>
#include <cstdint>
#include <cstring>

#define TPNR_MB_LANES 8
#define TPNR_MB_FN sha256_mb_compress_x8_avx2
#include "crypto/sha256_mb_lanes.inl"
