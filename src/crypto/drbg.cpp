#include "crypto/drbg.h"

#include <random>

#include "common/error.h"
#include "crypto/chacha20.h"
#include "crypto/hash.h"

namespace tpnr::crypto {

namespace {

Bytes normalize_seed(BytesView seed) {
  // Hash any seed down to exactly 32 bytes.
  return sha256(seed);
}

}  // namespace

Drbg::Drbg(BytesView seed) : key_(normalize_seed(seed)) {}

Drbg::Drbg(std::uint64_t seed) {
  Bytes raw(8);
  for (int i = 0; i < 8; ++i) {
    raw[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(seed >> (8 * i));
  }
  key_ = normalize_seed(raw);
}

Drbg Drbg::from_system_entropy() {
  std::random_device rd;
  Bytes raw(32);
  for (std::size_t i = 0; i < raw.size(); i += 4) {
    const std::uint32_t v = rd();
    for (std::size_t j = 0; j < 4 && i + j < raw.size(); ++j) {
      raw[i + j] = static_cast<std::uint8_t>(v >> (8 * j));
    }
  }
  return Drbg(BytesView(raw));
}

void Drbg::rekey() {
  // Fast key erasure: the first 32 keystream bytes of each request become
  // the next key, so compromise of the current state cannot recover past
  // output.
  Bytes nonce(ChaCha20::kNonceSize, 0);
  for (int i = 0; i < 8; ++i) {
    nonce[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(counter_ >> (8 * i));
  }
  ChaCha20 cipher(key_, nonce);
  Bytes next_key = cipher.keystream(32);
  common::secure_wipe(key_);
  key_ = std::move(next_key);
  ++counter_;
}

void Drbg::fill(Bytes& out) {
  Bytes nonce(ChaCha20::kNonceSize, 0);
  for (int i = 0; i < 8; ++i) {
    nonce[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(counter_ >> (8 * i));
  }
  // Domain-separate output stream from the rekey stream via nonce[11].
  nonce[11] = 0x01;
  ChaCha20 cipher(key_, nonce);
  out = cipher.keystream(out.size());
  rekey();
}

Bytes Drbg::bytes(std::size_t n) {
  Bytes out(n);
  fill(out);
  return out;
}

std::uint64_t Drbg::next_u64() {
  const Bytes raw = bytes(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(raw[static_cast<std::size_t>(i)]) << (8 * i);
  }
  return v;
}

std::uint64_t Drbg::uniform(std::uint64_t bound) {
  if (bound == 0) throw common::CryptoError("Drbg::uniform: zero bound");
  // Rejection sampling: discard values in the biased tail.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

double Drbg::next_double() {
  // 53 uniform bits into [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Drbg::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

}  // namespace tpnr::crypto
