#include "crypto/shamir.h"

#include <array>

#include "common/error.h"

namespace tpnr::crypto {

using common::CryptoError;

namespace {

// GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1; log/exp tables built once.
struct Gf256 {
  std::array<std::uint8_t, 256> exp{};
  std::array<std::uint8_t, 256> log{};

  Gf256() {
    std::uint8_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[static_cast<std::size_t>(i)] = x;
      log[x] = static_cast<std::uint8_t>(i);
      const std::uint8_t x2 =
          static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0));
      x = static_cast<std::uint8_t>(x2 ^ x);  // multiply by generator 3
    }
  }

  [[nodiscard]] std::uint8_t mul(std::uint8_t a, std::uint8_t b) const {
    if (a == 0 || b == 0) return 0;
    const int s = log[a] + log[b];
    return exp[static_cast<std::size_t>(s % 255)];
  }

  [[nodiscard]] std::uint8_t div(std::uint8_t a, std::uint8_t b) const {
    if (b == 0) throw CryptoError("GF256: division by zero");
    if (a == 0) return 0;
    const int s = log[a] - log[b] + 255;
    return exp[static_cast<std::size_t>(s % 255)];
  }
};

const Gf256& gf() {
  static const Gf256 field;
  return field;
}

// Evaluates the polynomial with byte coefficients at x (Horner).
std::uint8_t poly_eval(BytesView coeffs, std::uint8_t x) {
  std::uint8_t acc = 0;
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    acc = static_cast<std::uint8_t>(gf().mul(acc, x) ^ coeffs[i]);
  }
  return acc;
}

}  // namespace

std::vector<ShamirShare> shamir_split(BytesView secret, int threshold,
                                      int share_count, Drbg& rng) {
  if (threshold < 1 || share_count < threshold || share_count > 255) {
    throw CryptoError("shamir_split: bad threshold/share_count");
  }
  std::vector<ShamirShare> shares(static_cast<std::size_t>(share_count));
  for (int i = 0; i < share_count; ++i) {
    shares[static_cast<std::size_t>(i)].index =
        static_cast<std::uint8_t>(i + 1);
    shares[static_cast<std::size_t>(i)].data.resize(secret.size());
  }

  Bytes coeffs(static_cast<std::size_t>(threshold));
  for (std::size_t byte = 0; byte < secret.size(); ++byte) {
    // coeffs[0] = secret byte; higher coefficients random.
    coeffs[0] = secret[byte];
    if (threshold > 1) {
      Bytes rnd = rng.bytes(static_cast<std::size_t>(threshold - 1));
      std::copy(rnd.begin(), rnd.end(), coeffs.begin() + 1);
    }
    for (auto& share : shares) {
      share.data[byte] = poly_eval(coeffs, share.index);
    }
  }
  return shares;
}

Bytes shamir_combine(const std::vector<ShamirShare>& shares) {
  if (shares.empty()) throw CryptoError("shamir_combine: no shares");
  const std::size_t len = shares.front().data.size();
  for (const auto& s : shares) {
    if (s.index == 0) throw CryptoError("shamir_combine: share index 0");
    if (s.data.size() != len) {
      throw CryptoError("shamir_combine: share length mismatch");
    }
  }
  for (std::size_t i = 0; i < shares.size(); ++i) {
    for (std::size_t j = i + 1; j < shares.size(); ++j) {
      if (shares[i].index == shares[j].index) {
        throw CryptoError("shamir_combine: duplicate share index");
      }
    }
  }

  // Lagrange interpolation at x = 0, byte-wise.
  Bytes secret(len, 0);
  for (std::size_t byte = 0; byte < len; ++byte) {
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < shares.size(); ++i) {
      std::uint8_t num = 1;
      std::uint8_t den = 1;
      for (std::size_t j = 0; j < shares.size(); ++j) {
        if (i == j) continue;
        num = gf().mul(num, shares[j].index);
        den = gf().mul(den,
                       static_cast<std::uint8_t>(shares[i].index ^
                                                 shares[j].index));
      }
      const std::uint8_t term =
          gf().mul(shares[i].data[byte], gf().div(num, den));
      acc = static_cast<std::uint8_t>(acc ^ term);
    }
    secret[byte] = acc;
  }
  return secret;
}

}  // namespace tpnr::crypto
