// SHA-512 and SHA-384 (FIPS 180-4), 64-bit variant of the SHA-2 family.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/hash.h"

namespace tpnr::crypto {

class Sha512Core : public Hash {
 public:
  void update(BytesView data) override;
  Bytes finish() override;
  void reset() override;

  [[nodiscard]] std::size_t block_size() const noexcept override {
    return 128;
  }

 protected:
  [[nodiscard]] virtual std::array<std::uint64_t, 8> iv() const noexcept = 0;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint64_t, 8> state_{};
  std::array<std::uint8_t, 128> buffer_{};
  std::size_t buffered_ = 0;
  // 128-bit message length per the spec; low word suffices for any realistic
  // input but we track the carry anyway.
  std::uint64_t total_lo_ = 0;
  std::uint64_t total_hi_ = 0;
};

class Sha512 final : public Sha512Core {
 public:
  Sha512() noexcept { reset(); }
  [[nodiscard]] std::size_t digest_size() const noexcept override { return 64; }
  [[nodiscard]] HashKind kind() const noexcept override {
    return HashKind::kSha512;
  }
  [[nodiscard]] std::unique_ptr<Hash> fresh() const override {
    return std::make_unique<Sha512>();
  }

 protected:
  [[nodiscard]] std::array<std::uint64_t, 8> iv() const noexcept override {
    return {0x6a09e667f3bcc908ull, 0xbb67ae8584caa73bull, 0x3c6ef372fe94f82bull,
            0xa54ff53a5f1d36f1ull, 0x510e527fade682d1ull, 0x9b05688c2b3e6c1full,
            0x1f83d9abfb41bd6bull, 0x5be0cd19137e2179ull};
  }
};

class Sha384 final : public Sha512Core {
 public:
  Sha384() noexcept { reset(); }
  [[nodiscard]] std::size_t digest_size() const noexcept override { return 48; }
  [[nodiscard]] HashKind kind() const noexcept override {
    return HashKind::kSha384;
  }
  [[nodiscard]] std::unique_ptr<Hash> fresh() const override {
    return std::make_unique<Sha384>();
  }

 protected:
  [[nodiscard]] std::array<std::uint64_t, 8> iv() const noexcept override {
    return {0xcbbb9d5dc1059ed8ull, 0x629a292a367cd507ull, 0x9159015a3070dd17ull,
            0x152fecd8f70e5939ull, 0x67332667ffc00b31ull, 0x8eb44a8768581511ull,
            0xdb0c2e0d64f98fa7ull, 0x47b5481dbefa4fa4ull};
  }
};

}  // namespace tpnr::crypto
