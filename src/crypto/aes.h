// AES-128/192/256 block cipher (FIPS 197) and CTR mode. Table-free S-box at
// runtime (tables are computed once at static init). Not hardened against
// cache-timing side channels — see DESIGN.md.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace tpnr::crypto {

using common::Bytes;
using common::BytesView;

class Aes {
 public:
  static constexpr std::size_t kBlockSize = 16;

  /// Accepts 16-, 24- or 32-byte keys; throws CryptoError otherwise.
  explicit Aes(BytesView key);

  /// Encrypts exactly one 16-byte block, in place.
  void encrypt_block(std::uint8_t* block) const noexcept;
  /// Decrypts exactly one 16-byte block, in place.
  void decrypt_block(std::uint8_t* block) const noexcept;

  [[nodiscard]] int rounds() const noexcept { return rounds_; }

 private:
  void expand_key(BytesView key);

  std::array<std::uint32_t, 60> round_keys_{};   // enc schedule
  std::array<std::uint32_t, 60> dec_keys_{};     // dec schedule
  int rounds_ = 0;
};

/// CTR mode keystream cipher: encrypt == decrypt. The 16-byte initial counter
/// block is (nonce[12] || be32 counter starting at 0).
class AesCtr {
 public:
  AesCtr(BytesView key, BytesView nonce12);

  /// XORs the keystream into `data` in place.
  void apply(Bytes& data);

 private:
  Aes aes_;
  std::array<std::uint8_t, 16> counter_block_{};
  std::array<std::uint8_t, 16> keystream_{};
  std::size_t pos_ = 16;

  void bump() noexcept;
};

}  // namespace tpnr::crypto
