// HMAC (RFC 2104) over any Hash. Azure's SharedKey authorization (Table 1)
// is HMAC-SHA256; the secure channel's record MAC uses it too.
#pragma once

#include <memory>

#include "crypto/hash.h"
#include "crypto/sha256.h"

namespace tpnr::crypto {

/// Streaming HMAC. Keys longer than the block size are hashed first, per the
/// RFC. For the SHA-256 family the keyed ipad/opad blocks are compressed
/// once at construction and every subsequent MAC resumes from the captured
/// midstates, skipping two compressions per tag.
class Hmac {
 public:
  Hmac(HashKind kind, BytesView key);

  void update(BytesView data);
  /// Finalizes the tag and re-keys the instance for reuse.
  Bytes finish();

  [[nodiscard]] std::size_t tag_size() const noexcept {
    return inner_->digest_size();
  }

 private:
  void start();

  std::unique_ptr<Hash> inner_;
  std::unique_ptr<Hash> outer_;
  Bytes ipad_;
  Bytes opad_;
  bool use_midstate_ = false;
  Sha256Midstate inner_mid_;
  Sha256Midstate outer_mid_;
};

/// Precomputed HMAC key state for the SHA-256 family: the keyed ipad and
/// opad blocks are compressed exactly once, here, and every mac() resumes
/// from the stored midstates. Immutable after construction and safe to share
/// across threads; mac() allocates nothing but the result.
///
/// This is the per-key object behind hmac_sha256_cached() — SharedKey
/// request signing and TPNR session MACs reuse one key across thousands of
/// messages, so the two pad compressions amortize to zero.
class HmacKeyState {
 public:
  /// `kind` must be kSha224 or kSha256; throws CryptoError otherwise.
  HmacKeyState(HashKind kind, BytesView key);

  /// HMAC(key, data), resumed from the cached midstates.
  [[nodiscard]] Bytes mac(BytesView data) const;
  /// Constant-time tag check.
  [[nodiscard]] bool verify(BytesView data, BytesView tag) const;

  [[nodiscard]] HashKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::size_t tag_size() const noexcept {
    return kind_ == HashKind::kSha224 ? 28 : 32;
  }

 private:
  HashKind kind_;
  Sha256Midstate inner_mid_;
  Sha256Midstate outer_mid_;
};

/// One-shot convenience.
Bytes hmac(HashKind kind, BytesView key, BytesView data);

/// One-shot HMAC-SHA256, the variant used by SharedKey and the NR channel.
Bytes hmac_sha256(BytesView key, BytesView data);

/// HMAC-SHA256 through a process-wide HmacKeyState cache keyed by the key's
/// digest: the first call for a key derives its pad midstates, later calls
/// resume them. Bit-identical to hmac_sha256; falls back to it when
/// accel().hmac_midstate is off. Thread-safe.
Bytes hmac_sha256_cached(BytesView key, BytesView data);

/// Drops every cached HmacKeyState (tests and the ablation sweep).
void hmac_cache_clear();

/// Constant-time tag check.
bool hmac_verify(HashKind kind, BytesView key, BytesView data, BytesView tag);

}  // namespace tpnr::crypto
