// HMAC (RFC 2104) over any Hash. Azure's SharedKey authorization (Table 1)
// is HMAC-SHA256; the secure channel's record MAC uses it too.
#pragma once

#include <memory>

#include "crypto/hash.h"

namespace tpnr::crypto {

/// Streaming HMAC. Keys longer than the block size are hashed first, per the
/// RFC.
class Hmac {
 public:
  Hmac(HashKind kind, BytesView key);

  void update(BytesView data);
  /// Finalizes the tag and re-keys the instance for reuse.
  Bytes finish();

  [[nodiscard]] std::size_t tag_size() const noexcept {
    return inner_->digest_size();
  }

 private:
  void start();

  std::unique_ptr<Hash> inner_;
  std::unique_ptr<Hash> outer_;
  Bytes ipad_;
  Bytes opad_;
};

/// One-shot convenience.
Bytes hmac(HashKind kind, BytesView key, BytesView data);

/// One-shot HMAC-SHA256, the variant used by SharedKey and the NR channel.
Bytes hmac_sha256(BytesView key, BytesView data);

/// Constant-time tag check.
bool hmac_verify(HashKind kind, BytesView key, BytesView data, BytesView tag);

}  // namespace tpnr::crypto
