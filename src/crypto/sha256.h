// SHA-256 and SHA-224 (FIPS 180-4). SHA-256 is the workhorse of the NR
// protocol: evidence hashes and Azure SharedKey HMAC both run on it.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/hash.h"

namespace tpnr::crypto {

/// Captured compression state at a 64-byte block boundary. Lets a caller
/// absorb a fixed prefix once (HMAC's ipad/opad blocks) and resume any
/// number of later hashes from the same point instead of re-hashing the
/// prefix each time.
struct Sha256Midstate {
  std::array<std::uint32_t, 8> state{};
  std::uint64_t total_bytes = 0;  ///< must be a multiple of 64
};

/// Common core: SHA-224 differs only in IV and truncation.
class Sha256Core : public Hash {
 public:
  void update(BytesView data) override;
  Bytes finish() override;
  void reset() override;

  [[nodiscard]] std::size_t block_size() const noexcept override { return 64; }

  /// The compression state, valid only when the absorbed byte count is a
  /// multiple of the block size. Throws CryptoError otherwise.
  [[nodiscard]] Sha256Midstate midstate() const;
  /// Resumes from a previously exported midstate (discarding any buffered
  /// input). Throws CryptoError if the midstate's byte count is not
  /// block-aligned.
  void restore(const Sha256Midstate& mid);

 protected:
  /// IV per FIPS 180-4 §5.3.2 / §5.3.3.
  [[nodiscard]] virtual std::array<std::uint32_t, 8> iv() const noexcept = 0;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

class Sha256 final : public Sha256Core {
 public:
  Sha256() noexcept { reset(); }
  [[nodiscard]] std::size_t digest_size() const noexcept override { return 32; }
  [[nodiscard]] HashKind kind() const noexcept override {
    return HashKind::kSha256;
  }
  [[nodiscard]] std::unique_ptr<Hash> fresh() const override {
    return std::make_unique<Sha256>();
  }

 protected:
  [[nodiscard]] std::array<std::uint32_t, 8> iv() const noexcept override {
    return {0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
            0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u};
  }
};

class Sha224 final : public Sha256Core {
 public:
  Sha224() noexcept { reset(); }
  [[nodiscard]] std::size_t digest_size() const noexcept override { return 28; }
  [[nodiscard]] HashKind kind() const noexcept override {
    return HashKind::kSha224;
  }
  [[nodiscard]] std::unique_ptr<Hash> fresh() const override {
    return std::make_unique<Sha224>();
  }

 protected:
  [[nodiscard]] std::array<std::uint32_t, 8> iv() const noexcept override {
    return {0xc1059ed8u, 0x367cd507u, 0x3070dd17u, 0xf70e5939u,
            0xffc00b31u, 0x68581511u, 0x64f98fa7u, 0xbefa4fa4u};
  }
};

}  // namespace tpnr::crypto
