#include "crypto/sha256_mb.h"

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>

#include "common/error.h"
#include "crypto/counters.h"
#include "crypto/sha256.h"

// The portable lane engine: 4 lanes wide, baseline ISA (the compiler
// legalizes the 16-byte vectors to SSE2 on x86-64, NEON on aarch64, ...).
#if defined(__GNUC__) || defined(__clang__)
#define TPNR_HAVE_MB_X4 1
#define TPNR_MB_LANES 4
#define TPNR_MB_FN sha256_mb_compress_x4
#include "crypto/sha256_mb_lanes.inl"
#else
#define TPNR_HAVE_MB_X4 0
#endif

namespace tpnr::crypto {

#if TPNR_HAVE_SHA256_MB_AVX2
namespace detail {
// Defined in sha256_mb_avx2.cpp, compiled with -mavx2.
void sha256_mb_compress_x8_avx2(std::uint32_t* state,
                                const std::uint8_t* const* blocks,
                                std::size_t nblocks);
}  // namespace detail
#endif

namespace {

constexpr std::size_t kBlock = 64;

constexpr std::array<std::uint32_t, 8> kIv = {
    0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
    0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u};

std::size_t total_len(const TaggedMessage& m) {
  return m.msg.size() + (m.tag >= 0 ? 1 : 0);
}

/// Padded length in blocks for a message of `total` bytes (tag included).
std::size_t padded_blocks(std::size_t total) {
  return (total + 8) / kBlock + 1;
}

/// Writes tag? || msg || 0x80 || zeros || bitlen_be into `out`, which must
/// hold exactly padded_blocks(total_len(m)) * 64 bytes.
void materialize(std::uint8_t* out, std::size_t padded_len,
                 const TaggedMessage& m) {
  std::size_t pos = 0;
  if (m.tag >= 0) out[pos++] = static_cast<std::uint8_t>(m.tag);
  if (!m.msg.empty()) std::memcpy(out + pos, m.msg.data(), m.msg.size());
  pos += m.msg.size();
  out[pos++] = 0x80;
  std::memset(out + pos, 0, padded_len - pos - 8);
  const std::uint64_t bit_len = static_cast<std::uint64_t>(total_len(m)) * 8;
  for (int i = 0; i < 8; ++i) {
    out[padded_len - 8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
  }
}

Bytes scalar_digest(const TaggedMessage& m) {
  Sha256 h;
  if (m.tag >= 0) {
    const std::uint8_t tag = static_cast<std::uint8_t>(m.tag);
    h.update(BytesView(&tag, 1));
  }
  h.update(m.msg);
  counters().scalar_blocks.fetch_add(padded_blocks(total_len(m)),
                                     std::memory_order_relaxed);
  return h.finish();
}

using CompressFn = void (*)(std::uint32_t*, const std::uint8_t* const*,
                            std::size_t);

struct EngineInfo {
  CompressFn fn = nullptr;
  unsigned lanes = 1;
};

EngineInfo engine_info(Sha256MbEngine engine) {
  switch (engine) {
    case Sha256MbEngine::kScalar:
      return {nullptr, 1};
#if TPNR_HAVE_MB_X4
    case Sha256MbEngine::kX4:
      return {&detail::sha256_mb_compress_x4, 4};
#endif
#if TPNR_HAVE_SHA256_MB_AVX2
    case Sha256MbEngine::kX8Avx2:
      if (__builtin_cpu_supports("avx2")) {
        return {&detail::sha256_mb_compress_x8_avx2, 8};
      }
      break;
#endif
    default:
      break;
  }
  return {nullptr, 0};  // unavailable
}

/// Hashes `group` (indices into msgs, all with the same padded block count)
/// through the lane engine, `lanes` messages per compression call. Unfilled
/// lanes repeat the first message of the wave; their output is discarded.
void hash_group(const EngineInfo& eng, std::span<const TaggedMessage> msgs,
                const std::vector<std::size_t>& group, std::size_t nblocks,
                std::vector<Bytes>& out) {
  const unsigned lanes = eng.lanes;
  const std::size_t padded_len = nblocks * kBlock;
  std::vector<std::uint8_t> scratch(padded_len * lanes);
  std::vector<const std::uint8_t*> ptrs(lanes);
  std::vector<std::uint32_t> state(8 * lanes);

  for (std::size_t wave = 0; wave < group.size(); wave += lanes) {
    const std::size_t occupied =
        std::min<std::size_t>(lanes, group.size() - wave);
    for (unsigned l = 0; l < lanes; ++l) {
      std::uint8_t* lane_buf = scratch.data() + l * padded_len;
      if (l < occupied) {
        materialize(lane_buf, padded_len, msgs[group[wave + l]]);
      } else {
        // Idle lanes replay lane 0's buffer; their output is discarded.
        std::memcpy(lane_buf, scratch.data(), padded_len);
      }
      ptrs[l] = lane_buf;
      for (int wd = 0; wd < 8; ++wd) {
        state[static_cast<std::size_t>(wd) * lanes + l] =
            kIv[static_cast<std::size_t>(wd)];
      }
    }
    eng.fn(state.data(), ptrs.data(), nblocks);
    counters().mb_batches.fetch_add(1, std::memory_order_relaxed);
    counters().mb_lane_blocks.fetch_add(occupied * nblocks,
                                        std::memory_order_relaxed);
    // jobs-per-dispatch: mb_dispatch_jobs / mb_batches is the lane fill
    // rate the fleet sweep gates on (idle replay lanes don't count).
    counters().mb_dispatch_jobs.fetch_add(occupied, std::memory_order_relaxed);
    for (std::size_t l = 0; l < occupied; ++l) {
      Bytes digest(32);
      for (int wd = 0; wd < 8; ++wd) {
        const std::uint32_t v =
            state[static_cast<std::size_t>(wd) * lanes + l];
        for (int b = 0; b < 4; ++b) {
          digest[static_cast<std::size_t>(4 * wd + b)] =
              static_cast<std::uint8_t>(v >> (8 * (3 - b)));
        }
      }
      out[group[wave + l]] = std::move(digest);
    }
  }
}

std::vector<Bytes> many_core(Sha256MbEngine engine,
                             std::span<const TaggedMessage> msgs) {
  std::vector<Bytes> out(msgs.size());
  const EngineInfo eng = engine_info(engine);
  if (eng.lanes == 0) {
    throw common::CryptoError("sha256_many: engine not available");
  }
  if (eng.fn == nullptr || msgs.size() < 2) {
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      out[i] = scalar_digest(msgs[i]);
    }
    return out;
  }

  // Bucket by padded block count so every lane in a compression call runs
  // the same number of blocks (uniform control flow, no wasted tail work).
  std::map<std::size_t, std::vector<std::size_t>> buckets;
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    buckets[padded_blocks(total_len(msgs[i]))].push_back(i);
  }
  for (const auto& [nblocks, group] : buckets) {
    if (group.size() == 1) {
      out[group[0]] = scalar_digest(msgs[group[0]]);
    } else {
      hash_group(eng, msgs, group, nblocks, out);
    }
  }
  return out;
}

std::vector<TaggedMessage> wrap(const std::uint8_t* tag,
                                std::span<const BytesView> messages) {
  std::vector<TaggedMessage> msgs(messages.size());
  for (std::size_t i = 0; i < messages.size(); ++i) {
    msgs[i] = {messages[i], tag != nullptr ? static_cast<int>(*tag) : -1};
  }
  return msgs;
}

}  // namespace

bool sha256_mb_available(Sha256MbEngine engine) noexcept {
  if (engine == Sha256MbEngine::kScalar) return true;
  return engine_info(engine).lanes != 0;
}

Sha256MbEngine sha256_mb_best_engine() noexcept {
  if (!accel().multi_lane) return Sha256MbEngine::kScalar;
#if TPNR_HAVE_SHA256_MB_AVX2
  if (__builtin_cpu_supports("avx2")) return Sha256MbEngine::kX8Avx2;
#endif
#if TPNR_HAVE_MB_X4
  return Sha256MbEngine::kX4;
#else
  return Sha256MbEngine::kScalar;
#endif
}

unsigned sha256_mb_lanes() noexcept {
  return engine_info(sha256_mb_best_engine()).lanes;
}

std::vector<Bytes> sha256_many(std::span<const BytesView> messages) {
  return many_core(sha256_mb_best_engine(), wrap(nullptr, messages));
}

std::vector<Bytes> sha256_many_tagged(std::uint8_t tag,
                                      std::span<const BytesView> messages) {
  return many_core(sha256_mb_best_engine(), wrap(&tag, messages));
}

std::vector<Bytes> sha256_many_mixed(std::span<const TaggedMessage> messages) {
  return many_core(sha256_mb_best_engine(), messages);
}

std::vector<Bytes> sha256_many_engine(Sha256MbEngine engine,
                                      const std::uint8_t* tag,
                                      std::span<const BytesView> messages) {
  return many_core(engine, wrap(tag, messages));
}

}  // namespace tpnr::crypto
