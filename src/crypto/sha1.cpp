#include "crypto/sha1.h"

#include <cstring>

namespace tpnr::crypto {

namespace {

inline std::uint32_t rotl(std::uint32_t x, std::uint32_t n) noexcept {
  return (x << n) | (x >> (32 - n));
}

inline std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

}  // namespace

void Sha1::reset() {
  state_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u, 0xc3d2e1f0u};
  buffered_ = 0;
  total_bytes_ = 0;
  buffer_.fill(0);
}

void Sha1::process_block(const std::uint8_t* block) noexcept {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) w[i] = load_be32(block + 4 * i);
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f;
    std::uint32_t k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdcu;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6u;
    }
    const std::uint32_t tmp = rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = tmp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(BytesView data) {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset += take;
    if (buffered_ == 64) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

Bytes Sha1::finish() {
  const std::uint64_t bit_len = total_bytes_ * 8;
  const std::uint8_t pad_byte = 0x80;
  update(BytesView(&pad_byte, 1));
  static constexpr std::uint8_t kZero[64] = {};
  while (buffered_ != 56) {
    const std::size_t gap = buffered_ < 56 ? 56 - buffered_ : 64 - buffered_;
    update(BytesView(kZero, gap));
  }
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
  }
  update(BytesView(len_be, 8));

  Bytes out(20);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 4; ++j) {
      out[static_cast<std::size_t>(4 * i + j)] = static_cast<std::uint8_t>(
          state_[static_cast<std::size_t>(i)] >> (8 * (3 - j)));
    }
  }
  reset();
  return out;
}

}  // namespace tpnr::crypto
