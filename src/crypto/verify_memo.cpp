#include "crypto/verify_memo.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>

#include "crypto/counters.h"
#include "crypto/sha256.h"

namespace tpnr::crypto {

namespace {

// Bounded memo: a long-running arbitrator sees a finite set of live
// disputes; on overflow the memo cycles rather than grows.
constexpr std::size_t kMemoCap = 4096;
std::mutex g_memo_mu;
std::map<Bytes, bool>& memo() {
  static std::map<Bytes, bool> m;
  return m;
}

Bytes memo_key(const RsaPublicKey& key, HashKind kind, BytesView message,
               BytesView signature) {
  Sha256 h;
  // The key's cached fingerprint: a 32-byte copy instead of re-serializing
  // n||e (hundreds of bytes of BigInt encoding) on every lookup.
  h.update(key.fingerprint());
  const std::uint8_t kind_byte = static_cast<std::uint8_t>(kind);
  h.update(BytesView(&kind_byte, 1));
  // Hash the (possibly large) message and signature down first so the memo
  // key is fixed-size work regardless of payload size.
  h.update(sha256(message));
  h.update(sha256(signature));
  return h.finish();
}

}  // namespace

bool verify_memo_lookup(const RsaPublicKey& key, HashKind kind,
                        BytesView message, BytesView signature, bool& result) {
  if (!accel().verify_memo) return false;
  Bytes id = memo_key(key, kind, message, signature);
  std::lock_guard<std::mutex> lock(g_memo_mu);
  auto it = memo().find(id);
  if (it == memo().end()) return false;
  counters().verify_memo_hits.fetch_add(1, std::memory_order_relaxed);
  result = it->second;
  return true;
}

void verify_memo_store(const RsaPublicKey& key, HashKind kind,
                       BytesView message, BytesView signature, bool result) {
  if (!accel().verify_memo) return;
  counters().verify_memo_misses.fetch_add(1, std::memory_order_relaxed);
  Bytes id = memo_key(key, kind, message, signature);
  std::lock_guard<std::mutex> lock(g_memo_mu);
  auto& m = memo();
  if (m.size() >= kMemoCap) m.clear();
  m.emplace(std::move(id), result);
}

bool rsa_verify_memo(const RsaPublicKey& key, HashKind kind, BytesView message,
                     BytesView signature) {
  if (!accel().verify_memo) {
    return rsa_verify(key, kind, message, signature);
  }
  bool memoized = false;
  if (verify_memo_lookup(key, kind, message, signature, memoized)) {
    return memoized;
  }
  const bool ok = rsa_verify(key, kind, message, signature);
  verify_memo_store(key, kind, message, signature, ok);
  return ok;
}

void verify_memo_clear() {
  std::lock_guard<std::mutex> lock(g_memo_mu);
  memo().clear();
}

}  // namespace tpnr::crypto
