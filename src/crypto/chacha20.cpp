#include "crypto/chacha20.h"

#include "common/error.h"

namespace tpnr::crypto {

namespace {

inline std::uint32_t rotl(std::uint32_t x, int n) noexcept {
  return (x << n) | (x >> (32 - n));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) noexcept {
  a += b;
  d = rotl(d ^ a, 16);
  c += d;
  b = rotl(b ^ c, 12);
  a += b;
  d = rotl(d ^ a, 8);
  c += d;
  b = rotl(b ^ c, 7);
}

inline std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

ChaCha20::ChaCha20(BytesView key, BytesView nonce, std::uint32_t counter) {
  if (key.size() != kKeySize) {
    throw common::CryptoError("ChaCha20: key must be 32 bytes");
  }
  if (nonce.size() != kNonceSize) {
    throw common::CryptoError("ChaCha20: nonce must be 12 bytes");
  }
  state_[0] = 0x61707865u;
  state_[1] = 0x3320646eu;
  state_[2] = 0x79622d32u;
  state_[3] = 0x6b206574u;
  for (int i = 0; i < 8; ++i) state_[4 + i] = load_le32(key.data() + 4 * i);
  state_[12] = counter;
  for (int i = 0; i < 3; ++i) state_[13 + i] = load_le32(nonce.data() + 4 * i);
}

void ChaCha20::refill() noexcept {
  std::array<std::uint32_t, 16> x = state_;
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = x[static_cast<std::size_t>(i)] +
                            state_[static_cast<std::size_t>(i)];
    block_[static_cast<std::size_t>(4 * i)] = static_cast<std::uint8_t>(v);
    block_[static_cast<std::size_t>(4 * i + 1)] =
        static_cast<std::uint8_t>(v >> 8);
    block_[static_cast<std::size_t>(4 * i + 2)] =
        static_cast<std::uint8_t>(v >> 16);
    block_[static_cast<std::size_t>(4 * i + 3)] =
        static_cast<std::uint8_t>(v >> 24);
  }
  ++state_[12];
  block_pos_ = 0;
}

void ChaCha20::apply(Bytes& data) {
  for (auto& byte : data) {
    if (block_pos_ == 64) refill();
    byte ^= block_[block_pos_++];
  }
}

Bytes ChaCha20::keystream(std::size_t n) {
  Bytes out(n, 0);
  apply(out);
  return out;
}

}  // namespace tpnr::crypto
