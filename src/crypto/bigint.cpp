#include "crypto/bigint.h"

#include <algorithm>
#include <bit>

#include "common/error.h"
#include "crypto/counters.h"

namespace tpnr::crypto {

using common::CryptoError;

namespace {
constexpr std::size_t kKaratsubaThreshold = 32;  // limbs
}

BigInt::BigInt(std::int64_t v) {
  std::uint64_t mag;
  if (v < 0) {
    negative_ = true;
    mag = static_cast<std::uint64_t>(-(v + 1)) + 1;  // avoids INT64_MIN UB
  } else {
    mag = static_cast<std::uint64_t>(v);
  }
  while (mag != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(mag));
    mag >>= 32;
  }
  if (limbs_.empty()) negative_ = false;
}

void BigInt::normalize() noexcept {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

BigInt BigInt::from_bytes(BytesView data) {
  BigInt out;
  for (std::uint8_t byte : data) {
    // out = out*256 + byte, done limb-wise for speed.
    std::uint64_t carry = byte;
    for (auto& limb : out.limbs_) {
      const std::uint64_t v = (static_cast<std::uint64_t>(limb) << 8) | carry;
      limb = static_cast<std::uint32_t>(v);
      carry = v >> 32;
    }
    if (carry != 0) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  }
  out.normalize();
  return out;
}

Bytes BigInt::to_bytes(std::size_t min_len) const {
  Bytes out;
  const std::size_t bits = bit_length();
  const std::size_t len = (bits + 7) / 8;
  out.resize(std::max(len, min_len), 0);
  for (std::size_t i = 0; i < len; ++i) {
    const std::size_t limb = i / 4;
    const std::size_t shift = 8 * (i % 4);
    out[out.size() - 1 - i] =
        static_cast<std::uint8_t>(limbs_[limb] >> shift);
  }
  return out;
}

BigInt BigInt::from_hex(std::string_view hex) {
  bool neg = false;
  if (!hex.empty() && hex.front() == '-') {
    neg = true;
    hex.remove_prefix(1);
  }
  if (hex.empty()) throw CryptoError("BigInt::from_hex: empty input");
  BigInt out;
  for (char c : hex) {
    int v;
    if (c >= '0' && c <= '9') {
      v = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      v = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      v = c - 'A' + 10;
    } else {
      throw CryptoError("BigInt::from_hex: bad character");
    }
    std::uint64_t carry = static_cast<std::uint64_t>(v);
    for (auto& limb : out.limbs_) {
      const std::uint64_t x = (static_cast<std::uint64_t>(limb) << 4) | carry;
      limb = static_cast<std::uint32_t>(x);
      carry = x >> 32;
    }
    if (carry != 0) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  }
  out.normalize();
  out.negative_ = neg && !out.limbs_.empty();
  return out;
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int nib = 7; nib >= 0; --nib) {
      out.push_back(kDigits[(limbs_[i] >> (4 * nib)) & 0xf]);
    }
  }
  const std::size_t first = out.find_first_not_of('0');
  out.erase(0, first);
  if (negative_) out.insert(out.begin(), '-');
  return out;
}

BigInt BigInt::from_decimal(std::string_view dec) {
  bool neg = false;
  if (!dec.empty() && dec.front() == '-') {
    neg = true;
    dec.remove_prefix(1);
  }
  if (dec.empty()) throw CryptoError("BigInt::from_decimal: empty input");
  BigInt out;
  for (char c : dec) {
    if (c < '0' || c > '9') {
      throw CryptoError("BigInt::from_decimal: bad character");
    }
    std::uint64_t carry = static_cast<std::uint64_t>(c - '0');
    for (auto& limb : out.limbs_) {
      const std::uint64_t x = static_cast<std::uint64_t>(limb) * 10 + carry;
      limb = static_cast<std::uint32_t>(x);
      carry = x >> 32;
    }
    if (carry != 0) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  }
  out.normalize();
  out.negative_ = neg && !out.limbs_.empty();
  return out;
}

std::string BigInt::to_decimal() const {
  if (is_zero()) return "0";
  std::vector<std::uint32_t> mag = limbs_;
  std::string out;
  while (!mag.empty()) {
    // Divide the magnitude by 10^9, emit the remainder.
    std::uint64_t rem = 0;
    for (std::size_t i = mag.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | mag[i];
      mag[i] = static_cast<std::uint32_t>(cur / 1000000000ull);
      rem = cur % 1000000000ull;
    }
    while (!mag.empty() && mag.back() == 0) mag.pop_back();
    for (int i = 0; i < 9; ++i) {
      out.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (out.size() > 1 && out.back() == '0') out.pop_back();
  if (negative_) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::size_t BigInt::bit_length() const noexcept {
  if (limbs_.empty()) return 0;
  return 32 * (limbs_.size() - 1) +
         (32 - static_cast<std::size_t>(std::countl_zero(limbs_.back())));
}

bool BigInt::bit(std::size_t i) const noexcept {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1u;
}

int BigInt::compare_magnitude(const BigInt& other) const noexcept {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

int BigInt::compare(const BigInt& other) const noexcept {
  if (negative_ != other.negative_) return negative_ ? -1 : 1;
  const int mag = compare_magnitude(other);
  return negative_ ? -mag : mag;
}

std::vector<std::uint32_t> BigInt::add_mag(const std::vector<std::uint32_t>& a,
                                           const std::vector<std::uint32_t>& b) {
  const auto& big = a.size() >= b.size() ? a : b;
  const auto& small = a.size() >= b.size() ? b : a;
  std::vector<std::uint32_t> out;
  out.reserve(big.size() + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < big.size(); ++i) {
    std::uint64_t sum = carry + big[i];
    if (i < small.size()) sum += small[i];
    out.push_back(static_cast<std::uint32_t>(sum));
    carry = sum >> 32;
  }
  if (carry != 0) out.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

std::vector<std::uint32_t> BigInt::sub_mag(const std::vector<std::uint32_t>& a,
                                           const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> out;
  out.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow;
    if (i < b.size()) diff -= static_cast<std::int64_t>(b[i]);
    if (diff < 0) {
      diff += (1ll << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<std::uint32_t>(diff));
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<std::uint32_t> BigInt::mul_school(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<std::uint32_t> out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t ai = a[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      const std::uint64_t cur = ai * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + b.size();
    while (carry != 0) {
      const std::uint64_t cur = static_cast<std::uint64_t>(out[k]) + carry;
      out[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<std::uint32_t> BigInt::mul_mag(const std::vector<std::uint32_t>& a,
                                           const std::vector<std::uint32_t>& b) {
  if (a.size() < kKaratsubaThreshold || b.size() < kKaratsubaThreshold) {
    return mul_school(a, b);
  }
  // Karatsuba: split at half the longer operand.
  const std::size_t half = std::max(a.size(), b.size()) / 2;
  auto lo = [half](const std::vector<std::uint32_t>& v) {
    std::vector<std::uint32_t> out(v.begin(),
                                   v.begin() + static_cast<std::ptrdiff_t>(
                                                   std::min(half, v.size())));
    while (!out.empty() && out.back() == 0) out.pop_back();
    return out;
  };
  auto hi = [half](const std::vector<std::uint32_t>& v) {
    if (v.size() <= half) return std::vector<std::uint32_t>{};
    return std::vector<std::uint32_t>(
        v.begin() + static_cast<std::ptrdiff_t>(half), v.end());
  };

  const auto a0 = lo(a), a1 = hi(a), b0 = lo(b), b1 = hi(b);
  const auto z0 = mul_mag(a0, b0);
  const auto z2 = mul_mag(a1, b1);
  const auto z1_full = mul_mag(add_mag(a0, a1), add_mag(b0, b1));
  auto z1 = sub_mag(sub_mag(z1_full, z0), z2);

  // result = z2 << (2*half*32) + z1 << (half*32) + z0
  std::vector<std::uint32_t> out(std::max({z0.size(), z1.size() + half,
                                           z2.size() + 2 * half}) + 1, 0);
  auto add_at = [&out](const std::vector<std::uint32_t>& v,
                       std::size_t offset) {
    std::uint64_t carry = 0;
    std::size_t i = 0;
    for (; i < v.size(); ++i) {
      const std::uint64_t cur =
          static_cast<std::uint64_t>(out[offset + i]) + v[i] + carry;
      out[offset + i] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    while (carry != 0) {
      const std::uint64_t cur =
          static_cast<std::uint64_t>(out[offset + i]) + carry;
      out[offset + i] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++i;
    }
  };
  add_at(z0, 0);
  add_at(z1, half);
  add_at(z2, 2 * half);
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

void BigInt::div_mag(const std::vector<std::uint32_t>& a,
                     const std::vector<std::uint32_t>& b,
                     std::vector<std::uint32_t>& quotient,
                     std::vector<std::uint32_t>& remainder) {
  quotient.clear();
  remainder.clear();
  if (b.empty()) throw CryptoError("BigInt: division by zero");

  // Magnitude comparison shortcut.
  auto mag_less = [](const std::vector<std::uint32_t>& x,
                     const std::vector<std::uint32_t>& y) {
    if (x.size() != y.size()) return x.size() < y.size();
    for (std::size_t i = x.size(); i-- > 0;) {
      if (x[i] != y[i]) return x[i] < y[i];
    }
    return false;
  };
  if (mag_less(a, b)) {
    remainder = a;
    return;
  }

  if (b.size() == 1) {
    // Short division.
    const std::uint64_t d = b[0];
    quotient.assign(a.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = a.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | a[i];
      quotient[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    while (!quotient.empty() && quotient.back() == 0) quotient.pop_back();
    if (rem != 0) remainder.push_back(static_cast<std::uint32_t>(rem));
    return;
  }

  // Knuth TAOCP vol. 2, Algorithm D. Normalize so the divisor's top limb has
  // its high bit set.
  const int shift = std::countl_zero(b.back());
  const std::size_t n = b.size();
  const std::size_t m = a.size() - n;

  auto shl = [](const std::vector<std::uint32_t>& v, int s, bool extend) {
    std::vector<std::uint32_t> out(v.size() + (extend ? 1 : 0), 0);
    if (s == 0) {
      std::copy(v.begin(), v.end(), out.begin());
    } else {
      std::uint32_t carry = 0;
      for (std::size_t i = 0; i < v.size(); ++i) {
        out[i] = (v[i] << s) | carry;
        carry = static_cast<std::uint32_t>(v[i] >> (32 - s));
      }
      if (extend) out[v.size()] = carry;
    }
    return out;
  };

  std::vector<std::uint32_t> u = shl(a, shift, true);       // n + m + 1 limbs
  const std::vector<std::uint32_t> v = shl(b, shift, false);  // n limbs

  quotient.assign(m + 1, 0);
  const std::uint64_t vtop = v[n - 1];
  const std::uint64_t vsecond = v[n - 2];

  for (std::size_t j = m + 1; j-- > 0;) {
    const std::uint64_t numerator =
        (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t qhat = numerator / vtop;
    std::uint64_t rhat = numerator % vtop;
    while (qhat >= (1ull << 32) ||
           qhat * vsecond > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += vtop;
      if (rhat >= (1ull << 32)) break;
    }

    // u[j .. j+n] -= qhat * v
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t product = qhat * v[i] + carry;
      carry = product >> 32;
      const std::int64_t diff = static_cast<std::int64_t>(u[i + j]) -
                                static_cast<std::int64_t>(product & 0xffffffffull) -
                                borrow;
      if (diff < 0) {
        u[i + j] = static_cast<std::uint32_t>(diff + (1ll << 32));
        borrow = 1;
      } else {
        u[i + j] = static_cast<std::uint32_t>(diff);
        borrow = 0;
      }
    }
    const std::int64_t top_diff = static_cast<std::int64_t>(u[j + n]) -
                                  static_cast<std::int64_t>(carry) - borrow;
    if (top_diff < 0) {
      // qhat was one too large: add back.
      u[j + n] = static_cast<std::uint32_t>(top_diff + (1ll << 32));
      --qhat;
      std::uint64_t c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t sum =
            static_cast<std::uint64_t>(u[i + j]) + v[i] + c;
        u[i + j] = static_cast<std::uint32_t>(sum);
        c = sum >> 32;
      }
      u[j + n] = static_cast<std::uint32_t>(u[j + n] + c);
    } else {
      u[j + n] = static_cast<std::uint32_t>(top_diff);
    }
    quotient[j] = static_cast<std::uint32_t>(qhat);
  }

  while (!quotient.empty() && quotient.back() == 0) quotient.pop_back();

  // Remainder = u[0..n) >> shift.
  remainder.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
  if (shift != 0) {
    std::uint32_t carry = 0;
    for (std::size_t i = remainder.size(); i-- > 0;) {
      const std::uint32_t cur = remainder[i];
      remainder[i] = (cur >> shift) | carry;
      carry = cur << (32 - shift);
    }
  }
  while (!remainder.empty() && remainder.back() == 0) remainder.pop_back();
}

BigInt operator+(const BigInt& a, const BigInt& b) {
  BigInt out;
  if (a.negative_ == b.negative_) {
    out.limbs_ = BigInt::add_mag(a.limbs_, b.limbs_);
    out.negative_ = a.negative_;
  } else {
    const int cmp = a.compare_magnitude(b);
    if (cmp == 0) return BigInt{};
    if (cmp > 0) {
      out.limbs_ = BigInt::sub_mag(a.limbs_, b.limbs_);
      out.negative_ = a.negative_;
    } else {
      out.limbs_ = BigInt::sub_mag(b.limbs_, a.limbs_);
      out.negative_ = b.negative_;
    }
  }
  out.normalize();
  return out;
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.is_zero()) out.negative_ = !out.negative_;
  return out;
}

BigInt operator-(const BigInt& a, const BigInt& b) { return a + (-b); }

BigInt operator*(const BigInt& a, const BigInt& b) {
  BigInt out;
  out.limbs_ = BigInt::mul_mag(a.limbs_, b.limbs_);
  out.negative_ = (a.negative_ != b.negative_) && !out.limbs_.empty();
  return out;
}

void BigInt::div_mod(const BigInt& a, const BigInt& b, BigInt& quotient,
                     BigInt& remainder) {
  div_mag(a.limbs_, b.limbs_, quotient.limbs_, remainder.limbs_);
  quotient.negative_ =
      (a.negative_ != b.negative_) && !quotient.limbs_.empty();
  remainder.negative_ = a.negative_ && !remainder.limbs_.empty();
}

BigInt operator/(const BigInt& a, const BigInt& b) {
  BigInt q, r;
  BigInt::div_mod(a, b, q, r);
  return q;
}

BigInt operator%(const BigInt& a, const BigInt& b) {
  BigInt q, r;
  BigInt::div_mod(a, b, q, r);
  return r;
}

BigInt BigInt::shifted_left(std::size_t bits) const {
  if (is_zero() || bits == 0) {
    BigInt out = *this;
    return out;
  }
  const std::size_t limb_shift = bits / 32;
  const int bit_shift = static_cast<int>(bits % 32);
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    if (bit_shift == 0) {
      out.limbs_[i + limb_shift] = limbs_[i];
    } else {
      out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
      out.limbs_[i + limb_shift + 1] |=
          static_cast<std::uint32_t>(limbs_[i] >> (32 - bit_shift));
    }
  }
  out.negative_ = negative_;
  out.normalize();
  return out;
}

BigInt BigInt::shifted_right(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return BigInt{};
  const int bit_shift = static_cast<int>(bits % 32);
  BigInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (32 - bit_shift);
    }
  }
  out.negative_ = negative_;
  out.normalize();
  return out;
}

BigInt BigInt::mod(const BigInt& m) const {
  if (m.is_zero() || m.is_negative()) {
    throw CryptoError("BigInt::mod: modulus must be positive");
  }
  BigInt r = *this % m;
  if (r.is_negative()) r += m;
  return r;
}

BigInt BigInt::mod_pow(const BigInt& exp, const BigInt& m) const {
  // The Montgomery path needs an odd modulus; anything else (and the A/B
  // baseline) takes the classic multiply-then-reduce ladder. Both produce
  // the same value bit-for-bit — this is a speed dispatch, not a semantic
  // one. RSA moduli and primes are always odd, so the hot paths qualify.
  if (accel().rsa_fast && m.is_odd() && m.compare(BigInt(1)) > 0 &&
      !exp.is_negative()) {
    return Montgomery(m).pow(*this, exp);
  }
  return mod_pow_classic(exp, m);
}

BigInt BigInt::mod_pow_classic(const BigInt& exp, const BigInt& m) const {
  if (exp.is_negative()) {
    throw CryptoError("BigInt::mod_pow: negative exponent");
  }
  if (m.compare(BigInt(1)) <= 0) {
    throw CryptoError("BigInt::mod_pow: modulus must be > 1");
  }
  const BigInt base = this->mod(m);
  if (exp.is_zero()) return BigInt(1);

  // 4-bit fixed-window exponentiation: precompute base^0..base^15.
  std::vector<BigInt> table(16);
  table[0] = BigInt(1);
  table[1] = base;
  for (std::size_t i = 2; i < 16; ++i) {
    table[i] = (table[i - 1] * base).mod(m);
  }

  const std::size_t bits = exp.bit_length();
  const std::size_t windows = (bits + 3) / 4;
  std::uint64_t modmuls = 14;  // table build
  BigInt result(1);
  for (std::size_t w = windows; w-- > 0;) {
    for (int i = 0; i < 4; ++i) {
      result = (result * result).mod(m);
    }
    modmuls += 4;
    std::uint32_t nibble = 0;
    for (int i = 3; i >= 0; --i) {
      nibble = (nibble << 1) |
               static_cast<std::uint32_t>(exp.bit(4 * w + static_cast<std::size_t>(i)) ? 1 : 0);
    }
    if (nibble != 0) {
      result = (result * table[nibble]).mod(m);
      ++modmuls;
    }
  }
  counters().classic_modmuls.fetch_add(modmuls, std::memory_order_relaxed);
  return result;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::mod_inverse(const BigInt& m) const {
  if (m.compare(BigInt(1)) <= 0) {
    throw CryptoError("BigInt::mod_inverse: modulus must be > 1");
  }
  // Extended Euclid on (a, m).
  BigInt a = this->mod(m);
  BigInt r0 = m, r1 = a;
  BigInt t0(0), t1(1);
  while (!r1.is_zero()) {
    BigInt q, r2;
    div_mod(r0, r1, q, r2);
    BigInt t2 = t0 - q * t1;
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    t1 = std::move(t2);
  }
  if (r0.compare(BigInt(1)) != 0) {
    throw CryptoError("BigInt::mod_inverse: not invertible");
  }
  return t0.mod(m);
}

BigInt BigInt::random_bits(std::size_t bits, Drbg& rng) {
  if (bits == 0) return BigInt{};
  const std::size_t bytes_needed = (bits + 7) / 8;
  Bytes raw = rng.bytes(bytes_needed);
  // Clear excess top bits, then force the msb so the bit length is exact.
  const std::size_t excess = 8 * bytes_needed - bits;
  raw[0] = static_cast<std::uint8_t>(raw[0] & (0xffu >> excess));
  raw[0] = static_cast<std::uint8_t>(raw[0] | (0x80u >> excess));
  return from_bytes(raw);
}

BigInt BigInt::random_below(const BigInt& bound, Drbg& rng) {
  if (bound.is_zero() || bound.is_negative()) {
    throw CryptoError("BigInt::random_below: bound must be positive");
  }
  const std::size_t bits = bound.bit_length();
  const std::size_t bytes_needed = (bits + 7) / 8;
  const std::size_t excess = 8 * bytes_needed - bits;
  while (true) {
    Bytes raw = rng.bytes(bytes_needed);
    raw[0] = static_cast<std::uint8_t>(raw[0] & (0xffu >> excess));
    BigInt candidate = from_bytes(raw);
    if (candidate.compare(bound) < 0) return candidate;
  }
}

bool BigInt::is_probable_prime(Drbg& rng, int rounds) const {
  if (is_negative()) return false;
  if (compare(BigInt(2)) < 0) return false;
  if (compare(BigInt(2)) == 0 || compare(BigInt(3)) == 0) return true;
  if (!is_odd()) return false;

  // Trial division by small primes first.
  static constexpr std::uint32_t kSmallPrimes[] = {
      3,  5,  7,  11, 13, 17, 19, 23, 29, 31, 37, 41, 43,
      47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103};
  for (std::uint32_t p : kSmallPrimes) {
    const BigInt bp(static_cast<std::int64_t>(p));
    if (compare(bp) == 0) return true;
    if ((*this % bp).is_zero()) return false;
  }

  // Write n-1 = d * 2^s with d odd.
  const BigInt n_minus_1 = *this - BigInt(1);
  std::size_t s = 0;
  BigInt d = n_minus_1;
  while (!d.is_odd()) {
    d = d.shifted_right(1);
    ++s;
  }

  auto witness = [&](const BigInt& base) {
    BigInt x = base.mod_pow(d, *this);
    if (x.compare(BigInt(1)) == 0 || x.compare(n_minus_1) == 0) return false;
    for (std::size_t i = 1; i < s; ++i) {
      x = (x * x).mod(*this);
      if (x.compare(n_minus_1) == 0) return false;
    }
    return true;  // composite witness found
  };

  if (witness(BigInt(2))) return false;
  const BigInt two(2);
  const BigInt span = *this - BigInt(4);
  for (int i = 0; i < rounds; ++i) {
    const BigInt base = random_below(span, rng) + two;  // in [2, n-2]
    if (witness(base)) return false;
  }
  return true;
}

BigInt BigInt::generate_prime(std::size_t bits, Drbg& rng) {
  if (bits < 8) throw CryptoError("BigInt::generate_prime: need >= 8 bits");
  while (true) {
    BigInt candidate = random_bits(bits, rng);
    // Force odd.
    candidate.limbs_[0] |= 1u;
    if (candidate.is_probable_prime(rng)) return candidate;
  }
}

namespace {

// Double-width accumulator for the CIOS inner loops. __extension__ keeps
// -Wpedantic quiet about the non-standard __int128.
#if defined(__SIZEOF_INT128__)
__extension__ typedef unsigned __int128 MontDword;
#else
typedef std::uint64_t MontDword;
#endif

}  // namespace

Montgomery::Montgomery(const BigInt& modulus) : n_(modulus) {
  if (n_.is_negative() || !n_.is_odd() || n_.compare(BigInt(1)) <= 0) {
    throw CryptoError("Montgomery: modulus must be odd and > 1");
  }
  constexpr unsigned kWordBits = sizeof(Word) * 8;
  n_limbs_ = pad(n_);
  // n0' = -n^{-1} mod 2^w by Newton iteration: x0 = n is correct to 3 bits
  // for odd n, and each step doubles the correct bit count
  // (3 -> 6 -> 12 -> 24 -> 48 -> 96 >= w for both word sizes).
  Word inv = n_limbs_[0];
  for (int i = 0; i < 5; ++i) inv *= Word{2} - n_limbs_[0] * inv;
  n0_ = Word{0} - inv;
  // R^2 mod n for R = 2^(w s): the one division this context ever pays.
  const std::size_t s = n_limbs_.size();
  rr_ = pad(BigInt(1).shifted_left(2 * kWordBits * s).mod(n_));
}

Montgomery::Limbs Montgomery::pad(const BigInt& x) const {
  // Repack the BigInt's 32-bit limbs into Words; for the modulus itself
  // (n_limbs_ still empty) size to exactly cover it, else to its width.
  const std::vector<std::uint32_t>& src = x.limbs_;
  constexpr std::size_t kPer = sizeof(Word) / sizeof(std::uint32_t);
  const std::size_t want = n_limbs_.empty()
                               ? (src.size() + kPer - 1) / kPer
                               : n_limbs_.size();
  Limbs out(want, 0);
  for (std::size_t i = 0; i < src.size(); ++i) {
    out[i / kPer] |= static_cast<Word>(src[i]) << (32 * (i % kPer));
  }
  return out;
}

BigInt Montgomery::unpack(const Limbs& limbs) {
  constexpr std::size_t kPer = sizeof(Word) / sizeof(std::uint32_t);
  BigInt out;
  out.limbs_.resize(limbs.size() * kPer);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] =
        static_cast<std::uint32_t>(limbs[i / kPer] >> (32 * (i % kPer)));
  }
  out.normalize();
  return out;
}

Montgomery::Limbs Montgomery::mont_mul(const Limbs& a, const Limbs& b) const {
  // CIOS (coarsely integrated operand scanning): each outer step adds one
  // partial product row, then folds in one reduction row chosen so the low
  // word cancels — the running sum stays at s+2 words and the final value is
  // a·b·R^{-1} mod n (up to one conditional subtract).
  constexpr unsigned kWordBits = sizeof(Word) * 8;
  const std::size_t s = n_limbs_.size();
  Limbs t(s + 2, 0);
  for (std::size_t i = 0; i < s; ++i) {
    const Word ai = a[i];
    Word carry = 0;
    for (std::size_t j = 0; j < s; ++j) {
      const MontDword sum =
          static_cast<MontDword>(ai) * b[j] + t[j] + carry;
      t[j] = static_cast<Word>(sum);
      carry = static_cast<Word>(sum >> kWordBits);
    }
    MontDword sum = static_cast<MontDword>(t[s]) + carry;
    t[s] = static_cast<Word>(sum);
    t[s + 1] = static_cast<Word>(sum >> kWordBits);

    const Word m = t[0] * n0_;
    sum = static_cast<MontDword>(m) * n_limbs_[0] + t[0];
    carry = static_cast<Word>(sum >> kWordBits);
    for (std::size_t j = 1; j < s; ++j) {
      const MontDword sum2 =
          static_cast<MontDword>(m) * n_limbs_[j] + t[j] + carry;
      t[j - 1] = static_cast<Word>(sum2);
      carry = static_cast<Word>(sum2 >> kWordBits);
    }
    sum = static_cast<MontDword>(t[s]) + carry;
    t[s - 1] = static_cast<Word>(sum);
    t[s] = t[s + 1] + static_cast<Word>(sum >> kWordBits);
  }
  // t[0..s] < 2n with t[s] in {0, 1}; one conditional subtract normalizes.
  bool ge = t[s] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t j = s; j-- > 0;) {
      if (t[j] != n_limbs_[j]) {
        ge = t[j] > n_limbs_[j];
        break;
      }
    }
  }
  if (ge) {
    Word borrow = 0;
    for (std::size_t j = 0; j < s; ++j) {
      const Word d1 = t[j] - n_limbs_[j];
      const Word d2 = d1 - borrow;
      borrow = static_cast<Word>((d1 > t[j]) || (d2 > d1));
      t[j] = d2;
    }
  }
  t.resize(s);
  counters().mont_modmuls.fetch_add(1, std::memory_order_relaxed);
  return t;
}

BigInt Montgomery::to_mont(const BigInt& x) const {
  return unpack(mont_mul(pad(x), rr_));
}

BigInt Montgomery::from_mont(const BigInt& x) const {
  Limbs one(n_limbs_.size(), 0);
  one[0] = 1;
  return unpack(mont_mul(pad(x), one));
}

BigInt Montgomery::mul(const BigInt& a, const BigInt& b) const {
  return unpack(mont_mul(pad(a), pad(b)));
}

BigInt Montgomery::pow(const BigInt& base, const BigInt& exp) const {
  if (exp.is_negative()) {
    throw CryptoError("Montgomery::pow: negative exponent");
  }
  if (exp.is_zero()) return BigInt(1);
  const BigInt reduced = base.mod(n_);
  const Limbs base_m = mont_mul(pad(reduced), rr_);
  const std::size_t bits = exp.bit_length();
  Limbs acc;
  if (bits <= 20) {
    // Small exponents (every verify: e = 65537) — left-to-right binary; a
    // window table would cost more than the ladder saves.
    acc = base_m;
    for (std::size_t i = bits - 1; i-- > 0;) {
      acc = mont_mul(acc, acc);
      if (exp.bit(i)) acc = mont_mul(acc, base_m);
    }
  } else {
    // 4-bit fixed window, the same shape as the classic ladder.
    Limbs one_m(n_limbs_.size(), 0);
    one_m[0] = 1;
    one_m = mont_mul(one_m, rr_);  // R mod n == to_mont(1)
    std::vector<Limbs> table(16);
    table[0] = one_m;
    table[1] = base_m;
    for (std::size_t i = 2; i < 16; ++i) {
      table[i] = mont_mul(table[i - 1], base_m);
    }
    const std::size_t windows = (bits + 3) / 4;
    acc = one_m;
    for (std::size_t w = windows; w-- > 0;) {
      for (int i = 0; i < 4; ++i) acc = mont_mul(acc, acc);
      std::uint32_t nibble = 0;
      for (int i = 3; i >= 0; --i) {
        nibble = (nibble << 1) |
                 static_cast<std::uint32_t>(
                     exp.bit(4 * w + static_cast<std::size_t>(i)) ? 1 : 0);
      }
      if (nibble != 0) acc = mont_mul(acc, table[nibble]);
    }
  }
  Limbs one(n_limbs_.size(), 0);
  one[0] = 1;
  return unpack(mont_mul(acc, one));
}

}  // namespace tpnr::crypto
