// Arbitrary-precision integers for RSA. Sign-magnitude over 32-bit limbs
// (little-endian limb order), with Karatsuba multiplication, Knuth
// Algorithm-D division, sliding-window modular exponentiation, extended
// Euclid inverse, and Miller-Rabin primality.
//
// Values are normalized: no trailing zero limbs; zero is an empty limb vector
// with positive sign.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "crypto/drbg.h"

namespace tpnr::crypto {

using common::Bytes;
using common::BytesView;

class BigInt {
 public:
  BigInt() = default;
  BigInt(std::int64_t v);  // NOLINT(google-explicit-constructor): numeric literal interop is intended
  BigInt(const BigInt&) = default;
  BigInt(BigInt&&) noexcept = default;
  BigInt& operator=(const BigInt&) = default;
  BigInt& operator=(BigInt&&) noexcept = default;

  /// Big-endian unsigned bytes -> non-negative value.
  static BigInt from_bytes(BytesView data);
  /// Hex string (no 0x prefix, optional leading '-').
  static BigInt from_hex(std::string_view hex);
  /// Decimal string (optional leading '-').
  static BigInt from_decimal(std::string_view dec);
  /// Uniform value in [0, bound) — bound must be positive.
  static BigInt random_below(const BigInt& bound, Drbg& rng);
  /// Uniform value with exactly `bits` bits (msb set).
  static BigInt random_bits(std::size_t bits, Drbg& rng);

  /// Minimal big-endian encoding ("" for zero), or left-zero-padded to
  /// `min_len` when given.
  [[nodiscard]] Bytes to_bytes(std::size_t min_len = 0) const;
  [[nodiscard]] std::string to_hex() const;
  [[nodiscard]] std::string to_decimal() const;

  [[nodiscard]] bool is_zero() const noexcept { return limbs_.empty(); }
  [[nodiscard]] bool is_negative() const noexcept { return negative_; }
  [[nodiscard]] bool is_odd() const noexcept {
    return !limbs_.empty() && (limbs_[0] & 1u);
  }
  /// Number of significant bits; 0 for zero.
  [[nodiscard]] std::size_t bit_length() const noexcept;
  [[nodiscard]] bool bit(std::size_t i) const noexcept;

  // Comparisons (total order).
  [[nodiscard]] int compare(const BigInt& other) const noexcept;
  friend bool operator==(const BigInt& a, const BigInt& b) noexcept {
    return a.compare(b) == 0;
  }
  friend auto operator<=>(const BigInt& a, const BigInt& b) noexcept {
    const int c = a.compare(b);
    return c <=> 0;
  }

  // Arithmetic.
  friend BigInt operator+(const BigInt& a, const BigInt& b);
  friend BigInt operator-(const BigInt& a, const BigInt& b);
  friend BigInt operator*(const BigInt& a, const BigInt& b);
  /// Truncated division (C semantics). Throws CryptoError on division by 0.
  friend BigInt operator/(const BigInt& a, const BigInt& b);
  friend BigInt operator%(const BigInt& a, const BigInt& b);
  BigInt operator-() const;

  BigInt& operator+=(const BigInt& b) { return *this = *this + b; }
  BigInt& operator-=(const BigInt& b) { return *this = *this - b; }
  BigInt& operator*=(const BigInt& b) { return *this = *this * b; }

  /// Quotient and remainder in one pass.
  static void div_mod(const BigInt& a, const BigInt& b, BigInt& quotient,
                      BigInt& remainder);

  [[nodiscard]] BigInt shifted_left(std::size_t bits) const;
  [[nodiscard]] BigInt shifted_right(std::size_t bits) const;

  /// Non-negative residue in [0, m).
  [[nodiscard]] BigInt mod(const BigInt& m) const;
  /// (this ^ exp) mod m, exp >= 0, m > 1. 4-bit fixed-window exponentiation.
  [[nodiscard]] BigInt mod_pow(const BigInt& exp, const BigInt& m) const;
  /// Multiplicative inverse mod m; throws CryptoError if gcd != 1.
  [[nodiscard]] BigInt mod_inverse(const BigInt& m) const;

  static BigInt gcd(BigInt a, BigInt b);

  /// Miller-Rabin with `rounds` random bases (plus base-2 first).
  [[nodiscard]] bool is_probable_prime(Drbg& rng, int rounds = 32) const;
  /// Random prime with exactly `bits` bits.
  static BigInt generate_prime(std::size_t bits, Drbg& rng);

 private:
  void normalize() noexcept;
  [[nodiscard]] int compare_magnitude(const BigInt& other) const noexcept;

  static std::vector<std::uint32_t> add_mag(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  /// Requires |a| >= |b|.
  static std::vector<std::uint32_t> sub_mag(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> mul_mag(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> mul_school(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  static void div_mag(const std::vector<std::uint32_t>& a,
                      const std::vector<std::uint32_t>& b,
                      std::vector<std::uint32_t>& quotient,
                      std::vector<std::uint32_t>& remainder);

  std::vector<std::uint32_t> limbs_;  // little-endian, normalized
  bool negative_ = false;             // never true for zero
};

}  // namespace tpnr::crypto
