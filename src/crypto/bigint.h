// Arbitrary-precision integers for RSA. Sign-magnitude over 32-bit limbs
// (little-endian limb order), with Karatsuba multiplication, Knuth
// Algorithm-D division, sliding-window modular exponentiation, extended
// Euclid inverse, and Miller-Rabin primality.
//
// Values are normalized: no trailing zero limbs; zero is an empty limb vector
// with positive sign.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "crypto/drbg.h"

namespace tpnr::crypto {

using common::Bytes;
using common::BytesView;

class BigInt {
 public:
  BigInt() = default;
  BigInt(std::int64_t v);  // NOLINT(google-explicit-constructor): numeric literal interop is intended
  BigInt(const BigInt&) = default;
  BigInt(BigInt&&) noexcept = default;
  BigInt& operator=(const BigInt&) = default;
  BigInt& operator=(BigInt&&) noexcept = default;

  /// Big-endian unsigned bytes -> non-negative value.
  static BigInt from_bytes(BytesView data);
  /// Hex string (no 0x prefix, optional leading '-').
  static BigInt from_hex(std::string_view hex);
  /// Decimal string (optional leading '-').
  static BigInt from_decimal(std::string_view dec);
  /// Uniform value in [0, bound) — bound must be positive.
  static BigInt random_below(const BigInt& bound, Drbg& rng);
  /// Uniform value with exactly `bits` bits (msb set).
  static BigInt random_bits(std::size_t bits, Drbg& rng);

  /// Minimal big-endian encoding ("" for zero), or left-zero-padded to
  /// `min_len` when given.
  [[nodiscard]] Bytes to_bytes(std::size_t min_len = 0) const;
  [[nodiscard]] std::string to_hex() const;
  [[nodiscard]] std::string to_decimal() const;

  [[nodiscard]] bool is_zero() const noexcept { return limbs_.empty(); }
  [[nodiscard]] bool is_negative() const noexcept { return negative_; }
  [[nodiscard]] bool is_odd() const noexcept {
    return !limbs_.empty() && (limbs_[0] & 1u);
  }
  /// Number of significant bits; 0 for zero.
  [[nodiscard]] std::size_t bit_length() const noexcept;
  [[nodiscard]] bool bit(std::size_t i) const noexcept;

  // Comparisons (total order).
  [[nodiscard]] int compare(const BigInt& other) const noexcept;
  friend bool operator==(const BigInt& a, const BigInt& b) noexcept {
    return a.compare(b) == 0;
  }
  friend auto operator<=>(const BigInt& a, const BigInt& b) noexcept {
    const int c = a.compare(b);
    return c <=> 0;
  }

  // Arithmetic.
  friend BigInt operator+(const BigInt& a, const BigInt& b);
  friend BigInt operator-(const BigInt& a, const BigInt& b);
  friend BigInt operator*(const BigInt& a, const BigInt& b);
  /// Truncated division (C semantics). Throws CryptoError on division by 0.
  friend BigInt operator/(const BigInt& a, const BigInt& b);
  friend BigInt operator%(const BigInt& a, const BigInt& b);
  BigInt operator-() const;

  BigInt& operator+=(const BigInt& b) { return *this = *this + b; }
  BigInt& operator-=(const BigInt& b) { return *this = *this - b; }
  BigInt& operator*=(const BigInt& b) { return *this = *this * b; }

  /// Quotient and remainder in one pass.
  static void div_mod(const BigInt& a, const BigInt& b, BigInt& quotient,
                      BigInt& remainder);

  [[nodiscard]] BigInt shifted_left(std::size_t bits) const;
  [[nodiscard]] BigInt shifted_right(std::size_t bits) const;

  /// Non-negative residue in [0, m).
  [[nodiscard]] BigInt mod(const BigInt& m) const;
  /// (this ^ exp) mod m, exp >= 0, m > 1. Dispatches to the Montgomery/CIOS
  /// fast path when accel().rsa_fast is on and the modulus is odd; falls
  /// back to mod_pow_classic otherwise. Results are bit-identical.
  [[nodiscard]] BigInt mod_pow(const BigInt& exp, const BigInt& m) const;
  /// The reference path: 4-bit fixed-window exponentiation with schoolbook
  /// multiply-then-reduce steps. Kept reachable for equivalence tests and
  /// the TPNR_CRYPTO_ACCEL=0 A/B baseline.
  [[nodiscard]] BigInt mod_pow_classic(const BigInt& exp,
                                       const BigInt& m) const;
  /// Multiplicative inverse mod m; throws CryptoError if gcd != 1.
  [[nodiscard]] BigInt mod_inverse(const BigInt& m) const;

  static BigInt gcd(BigInt a, BigInt b);

  /// Miller-Rabin with `rounds` random bases (plus base-2 first).
  [[nodiscard]] bool is_probable_prime(Drbg& rng, int rounds = 32) const;
  /// Random prime with exactly `bits` bits.
  static BigInt generate_prime(std::size_t bits, Drbg& rng);

 private:
  friend class Montgomery;

  void normalize() noexcept;
  [[nodiscard]] int compare_magnitude(const BigInt& other) const noexcept;

  static std::vector<std::uint32_t> add_mag(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  /// Requires |a| >= |b|.
  static std::vector<std::uint32_t> sub_mag(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> mul_mag(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> mul_school(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  static void div_mag(const std::vector<std::uint32_t>& a,
                      const std::vector<std::uint32_t>& b,
                      std::vector<std::uint32_t>& quotient,
                      std::vector<std::uint32_t>& remainder);

  std::vector<std::uint32_t> limbs_;  // little-endian, normalized
  bool negative_ = false;             // never true for zero
};

/// Precomputed Montgomery-reduction context for one odd modulus n: holds
/// n0' = -n^{-1} mod 2^w and R^2 mod n (R = 2^(w·limbs)), so repeated
/// modular multiplications run as word-level CIOS loops (one fused
/// multiply-and-reduce pass with double-width accumulators) instead of
/// full-width multiply + Knuth division. The word size w is 64 where the
/// compiler provides __int128 (one quarter the multiply-accumulate count of
/// the 32-bit fallback). Building the context costs one division; amortize
/// it across an exponentiation or a batch of verifies under the same key.
/// Immutable after construction — safe to share across threads.
class Montgomery {
 public:
  /// Throws CryptoError unless `modulus` is odd and > 1.
  explicit Montgomery(const BigInt& modulus);

  [[nodiscard]] const BigInt& modulus() const noexcept { return n_; }

  /// x (plain) -> x·R mod n. Requires 0 <= x < n.
  [[nodiscard]] BigInt to_mont(const BigInt& x) const;
  /// x (Montgomery form) -> x·R^{-1} mod n.
  [[nodiscard]] BigInt from_mont(const BigInt& x) const;
  /// Montgomery product: a·b·R^{-1} mod n, both operands in Montgomery form.
  [[nodiscard]] BigInt mul(const BigInt& a, const BigInt& b) const;
  /// (base ^ exp) mod n for plain (non-Montgomery) base; exp >= 0. 4-bit
  /// fixed-window ladder over Montgomery products, bit-identical to
  /// BigInt::mod_pow_classic with this modulus.
  [[nodiscard]] BigInt pow(const BigInt& base, const BigInt& exp) const;

 private:
#if defined(__SIZEOF_INT128__)
  using Word = std::uint64_t;
#else
  using Word = std::uint32_t;
#endif
  using Limbs = std::vector<Word>;

  /// CIOS multiply-and-reduce on limb vectors padded to the modulus width.
  [[nodiscard]] Limbs mont_mul(const Limbs& a, const Limbs& b) const;
  [[nodiscard]] Limbs pad(const BigInt& x) const;
  [[nodiscard]] static BigInt unpack(const Limbs& limbs);

  BigInt n_;
  Limbs n_limbs_;  ///< modulus limbs, unpadded length s
  Limbs rr_;       ///< R^2 mod n, padded to s limbs
  Word n0_ = 0;    ///< -n^{-1} mod 2^w
};

}  // namespace tpnr::crypto
