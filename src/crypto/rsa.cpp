#include "crypto/rsa.h"

#include <mutex>

#include "common/error.h"
#include "common/serial.h"
#include "crypto/aead.h"
#include "crypto/counters.h"
#include "crypto/hmac.h"
#include "crypto/verify_memo.h"

namespace tpnr::crypto {

using common::CryptoError;

namespace {
/// Guards the per-key lazy caches (fingerprint, CRT context). Both are
/// computed once per key object and then only read, so a single process-wide
/// mutex sees no meaningful contention.
std::mutex g_key_cache_mu;
}  // namespace

Bytes RsaPublicKey::encode() const {
  common::BinaryWriter w;
  w.bytes(n.to_bytes());
  w.bytes(e.to_bytes());
  return w.take();
}

RsaPublicKey RsaPublicKey::decode(BytesView data) {
  common::BinaryReader r(data);
  RsaPublicKey key;
  key.n = BigInt::from_bytes(r.bytes());
  key.e = BigInt::from_bytes(r.bytes());
  r.expect_done();
  return key;
}

Bytes RsaPublicKey::fingerprint() const {
  std::lock_guard<std::mutex> lock(g_key_cache_mu);
  if (!fp_cache_) {
    fp_cache_ = std::make_shared<const Bytes>(sha256(encode()));
  }
  return *fp_cache_;
}

std::shared_ptr<const Montgomery> RsaPublicKey::mont_context() const {
  std::lock_guard<std::mutex> lock(g_key_cache_mu);
  if (!mont_cache_) {
    if (!n.is_odd() || n.compare(BigInt(1)) <= 0) {
      return nullptr;  // degenerate modulus: classic path only
    }
    mont_cache_ = std::make_shared<const Montgomery>(n);
  }
  return mont_cache_;
}

/// The expensive pieces of a CRT private op, computed once per key: the
/// reduced exponents, Garner's coefficient, and one Montgomery context per
/// prime (each context costs a division to set up).
struct RsaCrtContext {
  explicit RsaCrtContext(const RsaPrivateKey& key)
      : dp(key.d.mod(key.p - BigInt(1))),
        dq(key.d.mod(key.q - BigInt(1))),
        qinv(key.q.mod_inverse(key.p)),
        mp(key.p),
        mq(key.q) {}

  BigInt dp;
  BigInt dq;
  BigInt qinv;
  Montgomery mp;
  Montgomery mq;
};

std::shared_ptr<const RsaCrtContext> RsaPrivateKey::crt_context() const {
  std::lock_guard<std::mutex> lock(g_key_cache_mu);
  if (!crt_cache_) {
    if (p.is_zero() || q.is_zero() || !p.is_odd() || !q.is_odd() ||
        (p * q).compare(n) != 0) {
      return nullptr;  // factors absent or inconsistent: no CRT for this key
    }
    try {
      crt_cache_ = std::make_shared<const RsaCrtContext>(*this);
    } catch (const CryptoError&) {
      return nullptr;  // degenerate factors (q not invertible mod p)
    }
  }
  return crt_cache_;
}

RsaKeyPair rsa_generate(std::size_t bits, Drbg& rng) {
  if (bits < 256) throw CryptoError("rsa_generate: modulus too small");
  const BigInt e(65537);
  while (true) {
    const BigInt p = BigInt::generate_prime(bits / 2, rng);
    const BigInt q = BigInt::generate_prime(bits - bits / 2, rng);
    if (p.compare(q) == 0) continue;
    const BigInt n = p * q;
    if (n.bit_length() != bits) continue;
    const BigInt phi = (p - BigInt(1)) * (q - BigInt(1));
    if (!(BigInt::gcd(e, phi).compare(BigInt(1)) == 0)) continue;
    const BigInt d = e.mod_inverse(phi);
    RsaKeyPair pair;
    pair.priv = RsaPrivateKey{n, e, d, p, q};
    pair.pub = RsaPublicKey{n, e};
    return pair;
  }
}

namespace {

// DigestInfo prefixes per RFC 8017 §9.2 for EMSA-PKCS1-v1_5.
Bytes digest_info_prefix(HashKind kind) {
  switch (kind) {
    case HashKind::kMd5:
      return common::from_hex("3020300c06082a864886f70d020505000410");
    case HashKind::kSha1:
      return common::from_hex("3021300906052b0e03021a05000414");
    case HashKind::kSha224:
      return common::from_hex("302d300d06096086480165030402040500041c");
    case HashKind::kSha256:
      return common::from_hex("3031300d060960864801650304020105000420");
    case HashKind::kSha384:
      return common::from_hex("3041300d060960864801650304020205000430");
    case HashKind::kSha512:
      return common::from_hex("3051300d060960864801650304020305000440");
  }
  throw CryptoError("digest_info_prefix: unknown hash");
}

// EMSA-PKCS1-v1_5: 00 01 FF..FF 00 || DigestInfo || H(m)
Bytes emsa_pkcs1_encode(HashKind kind, BytesView message, std::size_t em_len) {
  const Bytes h = digest(kind, message);
  const Bytes prefix = digest_info_prefix(kind);
  const std::size_t t_len = prefix.size() + h.size();
  if (em_len < t_len + 11) {
    throw CryptoError("emsa_pkcs1_encode: modulus too small for hash");
  }
  Bytes em(em_len, 0xff);
  em[0] = 0x00;
  em[1] = 0x01;
  em[em_len - t_len - 1] = 0x00;
  std::copy(prefix.begin(), prefix.end(),
            em.begin() + static_cast<std::ptrdiff_t>(em_len - t_len));
  std::copy(h.begin(), h.end(),
            em.begin() + static_cast<std::ptrdiff_t>(em_len - h.size()));
  return em;
}

// MGF1 with SHA-256 (RFC 8017 §B.2.1) for the OAEP-like key wrap.
Bytes mgf1(BytesView seed, std::size_t out_len) {
  Bytes out;
  std::uint32_t counter = 0;
  while (out.size() < out_len) {
    Bytes input(seed.begin(), seed.end());
    for (int i = 3; i >= 0; --i) {
      input.push_back(static_cast<std::uint8_t>(counter >> (8 * i)));
    }
    common::append(out, sha256(input));
    ++counter;
  }
  out.resize(out_len);
  return out;
}

constexpr std::size_t kWrapKeySize = 32;
constexpr std::size_t kOaepSeedSize = 32;

// c^d mod n. With accel().rsa_fast and valid factors this runs as two
// half-width Montgomery exponentiations recombined with Garner's formula —
// bit-identical to the full-width exponentiation, ~4x cheaper (each half is
// half the iterations over a quarter-cost multiply).
BigInt rsa_private_op(const RsaPrivateKey& key, const BigInt& c) {
  if (accel().rsa_fast) {
    if (const auto crt = key.crt_context()) {
      const BigInt m1 = crt->mp.pow(c, crt->dp);
      const BigInt m2 = crt->mq.pow(c, crt->dq);
      const BigInt h = ((m1 - m2) * crt->qinv).mod(key.p);
      counters().crt_signs.fetch_add(1, std::memory_order_relaxed);
      return m2 + h * key.q;
    }
  }
  counters().classic_signs.fetch_add(1, std::memory_order_relaxed);
  return c.mod_pow(key.d, key.n);
}

// Shared verify core: the public-key operation via an optional pre-built
// Montgomery context (batch callers amortize the context across a key
// group; nullptr dispatches through BigInt::mod_pow, which builds its own).
bool rsa_verify_core(const RsaPublicKey& key, HashKind kind, BytesView message,
                     BytesView signature, const Montgomery* ctx) {
  const std::size_t k = key.modulus_bytes();
  if (signature.size() != k) return false;
  const BigInt s = BigInt::from_bytes(signature);
  if (s.compare(key.n) >= 0) return false;
  const BigInt m = ctx != nullptr ? ctx->pow(s, key.e) : s.mod_pow(key.e, key.n);
  Bytes expected;
  try {
    expected = emsa_pkcs1_encode(kind, message, k);
  } catch (const CryptoError&) {
    return false;
  }
  return common::constant_time_equal(m.to_bytes(k), expected);
}

// OAEP-like wrap of a 32-byte key: EM = 00 || maskedSeed || maskedDB where
// DB = lHash || PS(00..) || 01 || key. Requires modulus >= 96 bytes + 2.
Bytes oaep_wrap(const RsaPublicKey& pub, BytesView key_material, Drbg& rng) {
  const std::size_t k = pub.modulus_bytes();
  const std::size_t db_len = k - kOaepSeedSize - 1;
  if (db_len < kWrapKeySize + 33) {
    throw CryptoError("rsa_encrypt: modulus too small for OAEP wrap");
  }
  const Bytes lhash = sha256(Bytes{});
  Bytes db(db_len, 0);
  std::copy(lhash.begin(), lhash.end(), db.begin());
  db[db_len - key_material.size() - 1] = 0x01;
  std::copy(key_material.begin(), key_material.end(),
            db.end() - static_cast<std::ptrdiff_t>(key_material.size()));

  const Bytes seed = rng.bytes(kOaepSeedSize);
  Bytes masked_db = db;
  common::xor_into(masked_db, mgf1(seed, db_len));
  Bytes masked_seed(seed.begin(), seed.end());
  common::xor_into(masked_seed, mgf1(masked_db, kOaepSeedSize));

  Bytes em;
  em.reserve(k);
  em.push_back(0x00);
  common::append(em, masked_seed);
  common::append(em, masked_db);

  const BigInt m = BigInt::from_bytes(em);
  const BigInt c = m.mod_pow(pub.e, pub.n);
  return c.to_bytes(k);
}

Bytes oaep_unwrap(const RsaPrivateKey& priv, BytesView wrapped) {
  const std::size_t k = (priv.n.bit_length() + 7) / 8;
  if (wrapped.size() != k) {
    throw CryptoError("rsa_decrypt: wrapped key has wrong length");
  }
  const BigInt c = BigInt::from_bytes(wrapped);
  if (c.compare(priv.n) >= 0) {
    throw CryptoError("rsa_decrypt: ciphertext out of range");
  }
  const BigInt m = rsa_private_op(priv, c);
  const Bytes em = m.to_bytes(k);
  if (em[0] != 0x00) throw CryptoError("rsa_decrypt: bad padding");

  Bytes masked_seed(em.begin() + 1,
                    em.begin() + 1 + static_cast<std::ptrdiff_t>(kOaepSeedSize));
  Bytes masked_db(em.begin() + 1 + static_cast<std::ptrdiff_t>(kOaepSeedSize),
                  em.end());
  Bytes seed = masked_seed;
  common::xor_into(seed, mgf1(masked_db, kOaepSeedSize));
  Bytes db = masked_db;
  common::xor_into(db, mgf1(seed, db.size()));

  const Bytes lhash = sha256(Bytes{});
  if (!common::constant_time_equal(BytesView(db).subspan(0, lhash.size()),
                                   lhash)) {
    throw CryptoError("rsa_decrypt: bad padding");
  }
  // Find the 0x01 separator after lHash.
  std::size_t sep = lhash.size();
  while (sep < db.size() && db[sep] == 0x00) ++sep;
  if (sep == db.size() || db[sep] != 0x01) {
    throw CryptoError("rsa_decrypt: bad padding");
  }
  return Bytes(db.begin() + static_cast<std::ptrdiff_t>(sep + 1), db.end());
}

}  // namespace

Bytes rsa_sign(const RsaPrivateKey& key, HashKind kind, BytesView message) {
  const std::size_t k = (key.n.bit_length() + 7) / 8;
  const Bytes em = emsa_pkcs1_encode(kind, message, k);
  const BigInt m = BigInt::from_bytes(em);
  const BigInt s = rsa_private_op(key, m);
  return s.to_bytes(k);
}

bool rsa_verify(const RsaPublicKey& key, HashKind kind, BytesView message,
                BytesView signature) {
  const std::shared_ptr<const Montgomery> ctx =
      accel().rsa_fast ? key.mont_context() : nullptr;
  return rsa_verify_core(key, kind, message, signature, ctx.get());
}

std::vector<bool> rsa_verify_many(const RsaPublicKey& key,
                                  std::span<const RsaVerifyItem> items) {
  std::vector<bool> out(items.size(), false);
  if (items.empty()) return out;
  counters().batch_verify_groups.fetch_add(1, std::memory_order_relaxed);
  counters().batch_verify_items.fetch_add(items.size(),
                                          std::memory_order_relaxed);
  // The key's shared Montgomery context serves the whole group; only fetched
  // when at least one item misses the memo (an all-hit group costs nothing).
  std::shared_ptr<const Montgomery> ctx;
  const bool fast = accel().rsa_fast;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const RsaVerifyItem& item = items[i];
    bool memoized = false;
    if (verify_memo_lookup(key, item.kind, item.message, item.signature,
                           memoized)) {
      out[i] = memoized;
      continue;
    }
    if (fast && !ctx) ctx = key.mont_context();
    const bool ok = rsa_verify_core(key, item.kind, item.message,
                                    item.signature, ctx.get());
    verify_memo_store(key, item.kind, item.message, item.signature, ok);
    out[i] = ok;
  }
  return out;
}

Bytes rsa_encrypt(const RsaPublicKey& key, BytesView plaintext, Drbg& rng) {
  const Bytes session_key = rng.bytes(kWrapKeySize);
  const Bytes wrapped = oaep_wrap(key, session_key, rng);
  const Aead aead(session_key);
  const Bytes sealed = aead.seal(plaintext, Bytes{}, rng);

  common::BinaryWriter w;
  w.bytes(wrapped);
  w.bytes(sealed);
  return w.take();
}

Bytes rsa_decrypt(const RsaPrivateKey& key, BytesView ciphertext) {
  common::BinaryReader r(ciphertext);
  Bytes wrapped;
  Bytes sealed;
  try {
    wrapped = r.bytes();
    sealed = r.bytes();
    r.expect_done();
  } catch (const common::SerialError&) {
    throw CryptoError("rsa_decrypt: malformed ciphertext envelope");
  }
  const Bytes session_key = oaep_unwrap(key, wrapped);
  if (session_key.size() != kWrapKeySize) {
    throw CryptoError("rsa_decrypt: bad session key size");
  }
  const Aead aead(session_key);
  return aead.open(sealed, Bytes{});
}

}  // namespace tpnr::crypto
