// Process-wide crypto acceleration accounting and the switch that turns the
// acceleration layer off for A/B runs. Every mechanism (multi-lane SHA-256,
// HMAC key-state caching, Merkle tree reuse, RSA verify memoization) bumps
// its own counters so a benchmark can attribute a speedup per mechanism.
//
// The counters are monotonic atomics: safe to bump from sharded runtime
// worker threads. They are NOT part of any protocol outcome — acceleration
// may never change a digest, only how fast it is computed — so none of these
// values may ever be folded into a determinism-gated JsonLine record.
#pragma once

#include <atomic>
#include <cstdint>

namespace tpnr::crypto {

/// Snapshot of the acceleration counters (plain integers, copyable).
struct CounterSnapshot {
  std::uint64_t scalar_blocks = 0;       ///< SHA-256 blocks hashed one-lane
  std::uint64_t mb_lane_blocks = 0;      ///< lane-blocks hashed multi-lane
  std::uint64_t mb_batches = 0;          ///< multi-lane compression batches
  std::uint64_t mb_dispatch_jobs = 0;    ///< messages carried by those batches
  std::uint64_t hmac_midstate_hits = 0;  ///< HMACs served from a key state
  std::uint64_t hmac_midstate_misses = 0;  ///< key states derived from scratch
  std::uint64_t tree_builds = 0;           ///< Merkle trees built in full
  std::uint64_t tree_rebuilds_avoided = 0;  ///< proofs served from a cached tree
  std::uint64_t verify_memo_hits = 0;       ///< RSA verifies answered by memo
  std::uint64_t verify_memo_misses = 0;     ///< RSA verifies done in full
  std::uint64_t mont_modmuls = 0;     ///< Montgomery CIOS modular multiplies
  std::uint64_t classic_modmuls = 0;  ///< schoolbook multiply-then-divide muls
  std::uint64_t crt_signs = 0;        ///< RSA private ops done via CRT halves
  std::uint64_t classic_signs = 0;    ///< RSA private ops done full-width
  std::uint64_t batch_verify_groups = 0;  ///< rsa_verify_many key groups
  std::uint64_t batch_verify_items = 0;   ///< signatures verified in groups
  std::uint64_t service_jobs = 0;     ///< jobs deferred into CryptoService
  std::uint64_t service_flushes = 0;  ///< CryptoService batch flushes
  std::uint64_t service_inline_jobs = 0;  ///< jobs executed inline (no defer)

  /// Mean messages per multi-lane dispatch (the lane fill-rate; 0 when no
  /// multi-lane batch ran). A full 8-lane engine tops out at 8.0.
  [[nodiscard]] double lane_fill_rate() const noexcept {
    return mb_batches == 0
               ? 0.0
               : static_cast<double>(mb_dispatch_jobs) /
                     static_cast<double>(mb_batches);
  }
};

/// The live counters. Access through counters().
struct Counters {
  std::atomic<std::uint64_t> scalar_blocks{0};
  std::atomic<std::uint64_t> mb_lane_blocks{0};
  std::atomic<std::uint64_t> mb_batches{0};
  std::atomic<std::uint64_t> mb_dispatch_jobs{0};
  std::atomic<std::uint64_t> hmac_midstate_hits{0};
  std::atomic<std::uint64_t> hmac_midstate_misses{0};
  std::atomic<std::uint64_t> tree_builds{0};
  std::atomic<std::uint64_t> tree_rebuilds_avoided{0};
  std::atomic<std::uint64_t> verify_memo_hits{0};
  std::atomic<std::uint64_t> verify_memo_misses{0};
  std::atomic<std::uint64_t> mont_modmuls{0};
  std::atomic<std::uint64_t> classic_modmuls{0};
  std::atomic<std::uint64_t> crt_signs{0};
  std::atomic<std::uint64_t> classic_signs{0};
  std::atomic<std::uint64_t> batch_verify_groups{0};
  std::atomic<std::uint64_t> batch_verify_items{0};
  std::atomic<std::uint64_t> service_jobs{0};
  std::atomic<std::uint64_t> service_flushes{0};
  std::atomic<std::uint64_t> service_inline_jobs{0};

  [[nodiscard]] CounterSnapshot snapshot() const noexcept;
  void reset() noexcept;
};

/// The process-wide instance.
Counters& counters() noexcept;

/// Which acceleration mechanisms are live. All default to on; the
/// environment variable TPNR_CRYPTO_ACCEL=0 turns everything off at process
/// start (the unaccelerated baseline CI diffs digests against).
struct AccelConfig {
  bool multi_lane = true;    ///< batch SHA-256 uses the lane engine
  bool hmac_midstate = true; ///< HMAC ipad/opad midstate caching
  bool merkle_cache = true;  ///< per-object Merkle tree reuse
  bool verify_memo = true;   ///< RSA verify result memoization
  bool rsa_fast = true;      ///< Montgomery/CIOS modexp + CRT private ops
  bool crypto_service = true;  ///< runtime::CryptoService cross-actor batching
};

/// Current configuration (initialized from the environment on first use).
[[nodiscard]] AccelConfig accel() noexcept;

/// Replaces the configuration — benchmarks and tests sweep mechanisms
/// on/off. Not intended to be raced against in-flight crypto calls.
void set_accel(AccelConfig config) noexcept;

/// Convenience: everything on (true) / everything off (false).
void set_accel_enabled(bool enabled) noexcept;

}  // namespace tpnr::crypto
