// Memoized RSA signature verification. Verification is a pure function of
// (public key, hash kind, message, signature), so its result — true OR
// false — can be cached and replayed. The NR protocol re-verifies the same
// evidence signatures at every hop (provider, TTP, arbitrator, auditor);
// the memo turns each repeat into one SHA-256 pass and a map lookup instead
// of a modular exponentiation.
#pragma once

#include "crypto/hash.h"
#include "crypto/rsa.h"

namespace tpnr::crypto {

/// rsa_verify with a process-wide memo keyed by
/// SHA-256(pubkey-fingerprint || kind || SHA-256(message) || SHA-256(signature)).
/// The fingerprint is cached on the key, so a lookup never re-encodes n||e.
/// Bit-identical results to rsa_verify; falls back to it when
/// accel().verify_memo is off. Thread-safe.
bool rsa_verify_memo(const RsaPublicKey& key, HashKind kind, BytesView message,
                     BytesView signature);

/// Memo probe without computing anything on a miss: on a hit sets `result`
/// and returns true (counted as a memo hit). Always misses when
/// accel().verify_memo is off. rsa_verify_many uses this pair to fold the
/// memo into batch verification.
bool verify_memo_lookup(const RsaPublicKey& key, HashKind kind,
                        BytesView message, BytesView signature, bool& result);

/// Records a verdict computed elsewhere (counted as a memo miss). No-op when
/// accel().verify_memo is off.
void verify_memo_store(const RsaPublicKey& key, HashKind kind,
                       BytesView message, BytesView signature, bool result);

/// Drops every memoized verdict (tests and the ablation sweep).
void verify_memo_clear();

}  // namespace tpnr::crypto
