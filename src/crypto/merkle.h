// Merkle hash tree over fixed-size chunks with thread-parallel leaf hashing.
// Large uploads (the paper's >1 TB Import/Export jobs) are integrity-checked
// per chunk; the root stands in for the whole-object digest in evidence, and
// inclusion proofs let a reader verify a single chunk without the rest.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "crypto/hash.h"

namespace tpnr::crypto {

struct MerkleProof {
  std::size_t leaf_index = 0;
  std::size_t leaf_count = 0;
  /// Sibling hashes from leaf level to just below the root.
  std::vector<Bytes> siblings;
};

class MerkleTree {
 public:
  /// Builds the tree over `data` split into `chunk_size`-byte chunks,
  /// hashing leaves with `kind`. `threads` = 0 picks the hardware count.
  /// Leaf and interior nodes are domain-separated (0x00 / 0x01 prefixes) so
  /// an interior hash cannot be replayed as a leaf.
  MerkleTree(BytesView data, std::size_t chunk_size,
             HashKind kind = HashKind::kSha256, unsigned threads = 0);

  [[nodiscard]] const Bytes& root() const noexcept { return levels_.back()[0]; }
  [[nodiscard]] std::size_t leaf_count() const noexcept {
    return levels_.front().size();
  }
  [[nodiscard]] std::size_t chunk_size() const noexcept { return chunk_size_; }

  /// Inclusion proof for chunk `index`. Throws std::out_of_range.
  [[nodiscard]] MerkleProof prove(std::size_t index) const;

  /// Verifies that `chunk` is chunk `proof.leaf_index` of the object whose
  /// Merkle root is `root`.
  static bool verify(BytesView chunk, const MerkleProof& proof,
                     BytesView root, HashKind kind = HashKind::kSha256);

  /// verify() with the leaf hash already computed — for callers that batch
  /// the leaf hash with other digests of the same pass (the auditor fuses a
  /// chunk's evidence digest and its leaf hash into one lane dispatch).
  static bool verify_from_leaf(BytesView leaf_digest, const MerkleProof& proof,
                               BytesView root,
                               HashKind kind = HashKind::kSha256);

  /// Batch verification: out[i] says whether chunks[i] is leaf
  /// proofs[i].leaf_index of the object rooted at roots[i]. Leaf hashes and
  /// each fold level run through the multi-lane engine across the whole
  /// batch. Throws CryptoError on span size mismatch.
  static std::vector<std::uint8_t> verify_many(
      std::span<const BytesView> chunks, std::span<const MerkleProof> proofs,
      std::span<const BytesView> roots, HashKind kind = HashKind::kSha256);

 private:
  static Bytes leaf_hash(HashKind kind, BytesView chunk);
  static Bytes node_hash(HashKind kind, BytesView left, BytesView right);

  std::size_t chunk_size_;
  HashKind kind_;
  /// levels_[0] = leaves, levels_.back() = {root}.
  std::vector<std::vector<Bytes>> levels_;
};

}  // namespace tpnr::crypto
