// RSA keypairs, PKCS#1 v1.5 signatures (the paper's Sign(·)), and a hybrid
// public-key encryption envelope (the paper's Encrypt{·} over evidence). The
// envelope is RSA-KEM-style: a fresh AEAD key is RSA-encrypted with OAEP-like
// padding and the payload travels under the AEAD — required because evidence
// payloads exceed the RSA block size.
#pragma once

#include <cstdint>
#include <string>

#include "crypto/bigint.h"
#include "crypto/drbg.h"
#include "crypto/hash.h"

namespace tpnr::crypto {

struct RsaPublicKey {
  BigInt n;  ///< modulus
  BigInt e;  ///< public exponent

  [[nodiscard]] std::size_t modulus_bytes() const {
    return (n.bit_length() + 7) / 8;
  }
  /// Canonical encoding for fingerprints and transport.
  [[nodiscard]] Bytes encode() const;
  static RsaPublicKey decode(BytesView data);
  /// SHA-256 of the canonical encoding; identifies the key in certificates.
  [[nodiscard]] Bytes fingerprint() const;
};

struct RsaPrivateKey {
  BigInt n;
  BigInt e;
  BigInt d;  ///< private exponent
  BigInt p;
  BigInt q;

  [[nodiscard]] RsaPublicKey public_key() const { return {n, e}; }
};

struct RsaKeyPair {
  RsaPublicKey pub;
  RsaPrivateKey priv;
};

/// Generates an RSA keypair with modulus of `bits` bits (e = 65537).
RsaKeyPair rsa_generate(std::size_t bits, Drbg& rng);

/// PKCS#1 v1.5 signature over `message` (the message is hashed with `kind`).
Bytes rsa_sign(const RsaPrivateKey& key, HashKind kind, BytesView message);

/// Verifies a PKCS#1 v1.5 signature; returns false on any mismatch (never
/// throws for malformed signatures).
bool rsa_verify(const RsaPublicKey& key, HashKind kind, BytesView message,
                BytesView signature);

/// Hybrid encryption: RSA(OAEP-like) wraps a random 32-byte AEAD key, the
/// payload is sealed under that key. Output: u16 len || wrapped key || sealed.
Bytes rsa_encrypt(const RsaPublicKey& key, BytesView plaintext, Drbg& rng);

/// Inverse of rsa_encrypt. Throws CryptoError on any failure.
Bytes rsa_decrypt(const RsaPrivateKey& key, BytesView ciphertext);

}  // namespace tpnr::crypto
