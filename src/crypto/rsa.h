// RSA keypairs, PKCS#1 v1.5 signatures (the paper's Sign(·)), and a hybrid
// public-key encryption envelope (the paper's Encrypt{·} over evidence). The
// envelope is RSA-KEM-style: a fresh AEAD key is RSA-encrypted with OAEP-like
// padding and the payload travels under the AEAD — required because evidence
// payloads exceed the RSA block size.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "crypto/bigint.h"
#include "crypto/drbg.h"
#include "crypto/hash.h"

namespace tpnr::crypto {

/// Cached CRT + Montgomery state for one private key (built in rsa.cpp).
struct RsaCrtContext;

struct RsaPublicKey {
  BigInt n;  ///< modulus
  BigInt e;  ///< public exponent

  RsaPublicKey() = default;
  RsaPublicKey(BigInt n_in, BigInt e_in)
      : n(std::move(n_in)), e(std::move(e_in)) {}

  [[nodiscard]] std::size_t modulus_bytes() const {
    return (n.bit_length() + 7) / 8;
  }
  /// Canonical encoding for fingerprints and transport.
  [[nodiscard]] Bytes encode() const;
  static RsaPublicKey decode(BytesView data);
  /// SHA-256 of the canonical encoding; identifies the key in certificates.
  /// Cached after the first call (copies share the cache), so hot lookups —
  /// the verify memo keys on this — never re-encode n||e. Treat n/e as
  /// immutable once a fingerprint has been taken.
  [[nodiscard]] Bytes fingerprint() const;

  /// Shared Montgomery context for n, built on first use and cached (copies
  /// share it) — the per-key R^2-mod-n division is paid once, not per
  /// verify. Returns nullptr for degenerate moduli (even or < 2), which
  /// routes verification to the classic exponentiation. Thread-safe.
  [[nodiscard]] std::shared_ptr<const Montgomery> mont_context() const;

 private:
  mutable std::shared_ptr<const Bytes> fp_cache_;
  mutable std::shared_ptr<const Montgomery> mont_cache_;
};

struct RsaPrivateKey {
  BigInt n;
  BigInt e;
  BigInt d;  ///< private exponent
  BigInt p;
  BigInt q;

  RsaPrivateKey() = default;
  RsaPrivateKey(BigInt n_in, BigInt e_in, BigInt d_in, BigInt p_in,
                BigInt q_in)
      : n(std::move(n_in)),
        e(std::move(e_in)),
        d(std::move(d_in)),
        p(std::move(p_in)),
        q(std::move(q_in)) {}

  [[nodiscard]] RsaPublicKey public_key() const { return {n, e}; }

  /// CRT state (d mod p-1, d mod q-1, q^{-1} mod p, per-prime Montgomery
  /// contexts), built on first use and cached; copies share it. Returns
  /// nullptr for keys without valid factors (hand-built test keys), which
  /// routes private ops to the full-width exponentiation. Thread-safe.
  [[nodiscard]] std::shared_ptr<const RsaCrtContext> crt_context() const;

 private:
  mutable std::shared_ptr<const RsaCrtContext> crt_cache_;
};

struct RsaKeyPair {
  RsaPublicKey pub;
  RsaPrivateKey priv;
};

/// Generates an RSA keypair with modulus of `bits` bits (e = 65537).
RsaKeyPair rsa_generate(std::size_t bits, Drbg& rng);

/// PKCS#1 v1.5 signature over `message` (the message is hashed with `kind`).
Bytes rsa_sign(const RsaPrivateKey& key, HashKind kind, BytesView message);

/// Verifies a PKCS#1 v1.5 signature; returns false on any mismatch (never
/// throws for malformed signatures).
bool rsa_verify(const RsaPublicKey& key, HashKind kind, BytesView message,
                BytesView signature);

/// One signature in a same-key batch for rsa_verify_many. The views must
/// stay valid for the duration of the call.
struct RsaVerifyItem {
  HashKind kind = HashKind::kSha256;
  BytesView message;
  BytesView signature;
};

/// Verifies a batch of signatures under ONE public key, sharing a single
/// Montgomery context across the whole group (the per-key setup — one
/// division for R^2 mod n — is paid once instead of per signature). Each
/// verdict is bit-identical to rsa_verify; the memo is consulted and fed
/// per item when accel().verify_memo is on. This is the entry point for an
/// auditor's evidence stream, TTP Resolve and fork-arbitration walks.
std::vector<bool> rsa_verify_many(const RsaPublicKey& key,
                                  std::span<const RsaVerifyItem> items);

/// Hybrid encryption: RSA(OAEP-like) wraps a random 32-byte AEAD key, the
/// payload is sealed under that key. Output: u16 len || wrapped key || sealed.
Bytes rsa_encrypt(const RsaPublicKey& key, BytesView plaintext, Drbg& rng);

/// Inverse of rsa_encrypt. Throws CryptoError on any failure.
Bytes rsa_decrypt(const RsaPrivateKey& key, BytesView ciphertext);

}  // namespace tpnr::crypto
