#include "crypto/aead.h"

#include "common/error.h"
#include "crypto/aes.h"
#include "crypto/hmac.h"

namespace tpnr::crypto {

namespace {

Bytes checked_subkey(BytesView key, const char* label) {
  if (key.size() != Aead::kKeySize) {
    throw common::CryptoError("Aead: key must be 32 bytes");
  }
  return hmac_sha256(key, common::to_bytes(label));
}

}  // namespace

// Derive independent subkeys so a flaw in one primitive cannot leak the
// other's key: K_enc = HMAC(K, "enc"), K_mac = HMAC(K, "mac").
Aead::Aead(BytesView key)
    : enc_key_(checked_subkey(key, "tpnr-aead-enc")),
      mac_state_(HashKind::kSha256, checked_subkey(key, "tpnr-aead-mac")) {}

Bytes Aead::mac_input(BytesView nonce, BytesView aad,
                      BytesView ciphertext) const {
  Bytes input;
  input.reserve(nonce.size() + 8 + aad.size() + ciphertext.size());
  common::append(input, nonce);
  const std::uint64_t aad_len = aad.size();
  for (int i = 7; i >= 0; --i) {
    input.push_back(static_cast<std::uint8_t>(aad_len >> (8 * i)));
  }
  common::append(input, aad);
  common::append(input, ciphertext);
  return input;
}

Bytes Aead::seal(BytesView plaintext, BytesView aad, Drbg& rng) const {
  const Bytes nonce = rng.bytes(kNonceSize);
  Bytes ciphertext(plaintext.begin(), plaintext.end());
  AesCtr ctr(enc_key_, nonce);
  ctr.apply(ciphertext);

  const Bytes tag = mac_state_.mac(mac_input(nonce, aad, ciphertext));

  Bytes out;
  out.reserve(kNonceSize + ciphertext.size() + kTagSize);
  common::append(out, nonce);
  common::append(out, ciphertext);
  common::append(out, tag);
  return out;
}

Bytes Aead::open(BytesView sealed, BytesView aad) const {
  if (sealed.size() < kOverhead) {
    throw common::CryptoError("Aead::open: input too short");
  }
  const BytesView nonce = sealed.subspan(0, kNonceSize);
  const BytesView ciphertext =
      sealed.subspan(kNonceSize, sealed.size() - kOverhead);
  const BytesView tag = sealed.subspan(sealed.size() - kTagSize);

  const Bytes expected = mac_state_.mac(mac_input(nonce, aad, ciphertext));
  if (!common::constant_time_equal(expected, tag)) {
    throw common::CryptoError("Aead::open: authentication failed");
  }

  Bytes plaintext(ciphertext.begin(), ciphertext.end());
  AesCtr ctr(enc_key_, nonce);
  ctr.apply(plaintext);
  return plaintext;
}

}  // namespace tpnr::crypto
