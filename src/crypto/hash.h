// Incremental hash interface shared by MD5/SHA-1/SHA-2, plus one-shot
// helpers. HMAC and Merkle are generic over this interface.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/bytes.h"

namespace tpnr::crypto {

using common::Bytes;
using common::BytesView;

enum class HashKind {
  kMd5,
  kSha1,
  kSha224,
  kSha256,
  kSha384,
  kSha512,
};

/// Returns the canonical lowercase name ("md5", "sha256", ...).
std::string hash_name(HashKind kind);

/// Streaming hash. Not thread-safe per instance; instances are cheap.
class Hash {
 public:
  virtual ~Hash() = default;

  /// Absorbs more input.
  virtual void update(BytesView data) = 0;
  /// Finalizes and returns the digest; the instance must be reset() before
  /// reuse.
  virtual Bytes finish() = 0;
  /// Returns to the initial state.
  virtual void reset() = 0;

  /// Digest size in bytes (16 for MD5, 32 for SHA-256, ...).
  [[nodiscard]] virtual std::size_t digest_size() const noexcept = 0;
  /// Internal block size in bytes (64 for MD5/SHA-1/SHA-256, 128 for
  /// SHA-384/512); HMAC keys are padded to this.
  [[nodiscard]] virtual std::size_t block_size() const noexcept = 0;
  [[nodiscard]] virtual HashKind kind() const noexcept = 0;

  /// Fresh instance of the same algorithm in its initial state.
  [[nodiscard]] virtual std::unique_ptr<Hash> fresh() const = 0;
};

/// Factory for any supported algorithm.
std::unique_ptr<Hash> make_hash(HashKind kind);

/// One-shot convenience: digest(kind, data).
Bytes digest(HashKind kind, BytesView data);

/// One-shot MD5 — the checksum used throughout the paper's platforms.
Bytes md5(BytesView data);

/// One-shot SHA-256 — used by evidence hashes and SharedKey signatures.
Bytes sha256(BytesView data);

}  // namespace tpnr::crypto
