#include "crypto/hash.h"

#include "common/error.h"
#include "crypto/md5.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"
#include "crypto/sha512.h"

namespace tpnr::crypto {

std::string hash_name(HashKind kind) {
  switch (kind) {
    case HashKind::kMd5:
      return "md5";
    case HashKind::kSha1:
      return "sha1";
    case HashKind::kSha224:
      return "sha224";
    case HashKind::kSha256:
      return "sha256";
    case HashKind::kSha384:
      return "sha384";
    case HashKind::kSha512:
      return "sha512";
  }
  throw common::CryptoError("hash_name: unknown kind");
}

std::unique_ptr<Hash> make_hash(HashKind kind) {
  switch (kind) {
    case HashKind::kMd5:
      return std::make_unique<Md5>();
    case HashKind::kSha1:
      return std::make_unique<Sha1>();
    case HashKind::kSha224:
      return std::make_unique<Sha224>();
    case HashKind::kSha256:
      return std::make_unique<Sha256>();
    case HashKind::kSha384:
      return std::make_unique<Sha384>();
    case HashKind::kSha512:
      return std::make_unique<Sha512>();
  }
  throw common::CryptoError("make_hash: unknown kind");
}

Bytes digest(HashKind kind, BytesView data) {
  auto h = make_hash(kind);
  h->update(data);
  return h->finish();
}

Bytes md5(BytesView data) { return digest(HashKind::kMd5, data); }

Bytes sha256(BytesView data) { return digest(HashKind::kSha256, data); }

}  // namespace tpnr::crypto
