// Shamir secret sharing over GF(2^8), byte-wise. This is the paper's "secret
// key sharing technique (SKS)" used by the §3.2 and §3.4 bridging schemes:
// the agreed MD5/SHA digest is split so that neither the user nor the
// provider alone can alter or reconstruct it; a dispute reconstructs it from
// any `threshold` shares.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "crypto/drbg.h"

namespace tpnr::crypto {

using common::Bytes;
using common::BytesView;

struct ShamirShare {
  std::uint8_t index = 0;  ///< x-coordinate, never 0
  Bytes data;              ///< y-coordinates, one byte per secret byte
};

/// Splits `secret` into `share_count` shares such that any `threshold` of
/// them reconstruct it and fewer reveal nothing. Requires
/// 1 <= threshold <= share_count <= 255. Throws CryptoError on bad
/// parameters.
std::vector<ShamirShare> shamir_split(BytesView secret, int threshold,
                                      int share_count, Drbg& rng);

/// Reconstructs the secret from at least `threshold` distinct shares (extra
/// shares are ignored beyond consistency of length). Throws CryptoError on
/// malformed input. Reconstruction from fewer shares than the original
/// threshold yields garbage, not an error — secrecy, not integrity.
Bytes shamir_combine(const std::vector<ShamirShare>& shares);

}  // namespace tpnr::crypto
