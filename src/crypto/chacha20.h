// ChaCha20 stream cipher (RFC 8439). Used as the core of the deterministic
// random generator and available as an alternative channel cipher.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace tpnr::crypto {

using common::Bytes;
using common::BytesView;

class ChaCha20 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;

  /// Throws CryptoError on wrong key/nonce sizes.
  ChaCha20(BytesView key, BytesView nonce, std::uint32_t counter = 0);

  /// XORs the keystream into `data` in place (encrypt == decrypt).
  void apply(Bytes& data);

  /// Produces `n` keystream bytes (consumes cipher state).
  Bytes keystream(std::size_t n);

 private:
  void refill() noexcept;

  std::array<std::uint32_t, 16> state_{};
  std::array<std::uint8_t, 64> block_{};
  std::size_t block_pos_ = 64;  // empty
};

}  // namespace tpnr::crypto
