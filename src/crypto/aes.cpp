#include "crypto/aes.h"

#include <cstring>

#include "common/error.h"

namespace tpnr::crypto {

namespace {

// S-box and inverse computed from the AES definition (multiplicative inverse
// in GF(2^8) followed by the affine map) at static initialization.
struct SboxTables {
  std::array<std::uint8_t, 256> fwd{};
  std::array<std::uint8_t, 256> inv{};

  SboxTables() {
    // Build GF(2^8) log/antilog tables with generator 3.
    std::array<std::uint8_t, 256> exp{};
    std::array<std::uint8_t, 256> log{};
    std::uint8_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[static_cast<std::size_t>(i)] = x;
      log[x] = static_cast<std::uint8_t>(i);
      // multiply x by 3 in GF(2^8)
      const std::uint8_t x2 =
          static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0));
      x = static_cast<std::uint8_t>(x2 ^ x);
    }
    for (int i = 0; i < 256; ++i) {
      std::uint8_t inv_i = 0;
      // (255 - log) mod 255: log[1] == 0 must map back to exp[0] == 1.
      if (i != 0) inv_i = exp[static_cast<std::size_t>((255 - log[static_cast<std::size_t>(i)]) % 255)];
      // Affine transform.
      std::uint8_t s = inv_i;
      std::uint8_t result = 0x63;
      for (int b = 0; b < 8; ++b) {
        const std::uint8_t bit =
            static_cast<std::uint8_t>(((s >> b) ^ (s >> ((b + 4) & 7)) ^
                                       (s >> ((b + 5) & 7)) ^
                                       (s >> ((b + 6) & 7)) ^
                                       (s >> ((b + 7) & 7))) & 1);
        result = static_cast<std::uint8_t>(result ^ (bit << b));
      }
      fwd[static_cast<std::size_t>(i)] = result;
      inv[result] = static_cast<std::uint8_t>(i);
    }
  }
};

const SboxTables& tables() {
  static const SboxTables t;
  return t;
}

inline std::uint8_t xtime(std::uint8_t a) noexcept {
  return static_cast<std::uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1b : 0));
}

inline std::uint8_t gmul(std::uint8_t a, std::uint8_t b) noexcept {
  std::uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return p;
}

inline std::uint32_t sub_word(std::uint32_t w) noexcept {
  const auto& sbox = tables().fwd;
  return (static_cast<std::uint32_t>(sbox[(w >> 24) & 0xff]) << 24) |
         (static_cast<std::uint32_t>(sbox[(w >> 16) & 0xff]) << 16) |
         (static_cast<std::uint32_t>(sbox[(w >> 8) & 0xff]) << 8) |
         static_cast<std::uint32_t>(sbox[w & 0xff]);
}

inline std::uint32_t rot_word(std::uint32_t w) noexcept {
  return (w << 8) | (w >> 24);
}

}  // namespace

Aes::Aes(BytesView key) {
  if (key.size() != 16 && key.size() != 24 && key.size() != 32) {
    throw common::CryptoError("Aes: key must be 16/24/32 bytes");
  }
  expand_key(key);
}

void Aes::expand_key(BytesView key) {
  const int nk = static_cast<int>(key.size() / 4);
  rounds_ = nk + 6;
  const int total_words = 4 * (rounds_ + 1);

  for (int i = 0; i < nk; ++i) {
    round_keys_[static_cast<std::size_t>(i)] =
        (static_cast<std::uint32_t>(key[static_cast<std::size_t>(4 * i)]) << 24) |
        (static_cast<std::uint32_t>(key[static_cast<std::size_t>(4 * i + 1)]) << 16) |
        (static_cast<std::uint32_t>(key[static_cast<std::size_t>(4 * i + 2)]) << 8) |
        static_cast<std::uint32_t>(key[static_cast<std::size_t>(4 * i + 3)]);
  }
  std::uint32_t rcon = 0x01000000u;
  for (int i = nk; i < total_words; ++i) {
    std::uint32_t temp = round_keys_[static_cast<std::size_t>(i - 1)];
    if (i % nk == 0) {
      temp = sub_word(rot_word(temp)) ^ rcon;
      rcon = static_cast<std::uint32_t>(xtime(static_cast<std::uint8_t>(rcon >> 24))) << 24;
    } else if (nk > 6 && i % nk == 4) {
      temp = sub_word(temp);
    }
    round_keys_[static_cast<std::size_t>(i)] =
        round_keys_[static_cast<std::size_t>(i - nk)] ^ temp;
  }

  // Decryption schedule: same keys; InvMixColumns is applied to the state in
  // decrypt_block, so we keep a plain copy (equivalent straightforward
  // implementation rather than the transformed-key optimization).
  dec_keys_ = round_keys_;
}

namespace {

void add_round_key(std::uint8_t state[16], const std::uint32_t* rk) noexcept {
  for (int c = 0; c < 4; ++c) {
    const std::uint32_t w = rk[c];
    state[4 * c + 0] ^= static_cast<std::uint8_t>(w >> 24);
    state[4 * c + 1] ^= static_cast<std::uint8_t>(w >> 16);
    state[4 * c + 2] ^= static_cast<std::uint8_t>(w >> 8);
    state[4 * c + 3] ^= static_cast<std::uint8_t>(w);
  }
}

void sub_bytes(std::uint8_t state[16]) noexcept {
  const auto& sbox = tables().fwd;
  for (int i = 0; i < 16; ++i) state[i] = sbox[state[i]];
}

void inv_sub_bytes(std::uint8_t state[16]) noexcept {
  const auto& sbox = tables().inv;
  for (int i = 0; i < 16; ++i) state[i] = sbox[state[i]];
}

void shift_rows(std::uint8_t state[16]) noexcept {
  // state is column-major: state[4*c + r].
  std::uint8_t tmp[16];
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      tmp[4 * c + r] = state[4 * ((c + r) & 3) + r];
    }
  }
  std::memcpy(state, tmp, 16);
}

void inv_shift_rows(std::uint8_t state[16]) noexcept {
  std::uint8_t tmp[16];
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      tmp[4 * ((c + r) & 3) + r] = state[4 * c + r];
    }
  }
  std::memcpy(state, tmp, 16);
}

void mix_columns(std::uint8_t state[16]) noexcept {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = state + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
    col[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
    col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
    col[3] = static_cast<std::uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
  }
}

void inv_mix_columns(std::uint8_t state[16]) noexcept {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = state + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(gmul(a0, 14) ^ gmul(a1, 11) ^
                                       gmul(a2, 13) ^ gmul(a3, 9));
    col[1] = static_cast<std::uint8_t>(gmul(a0, 9) ^ gmul(a1, 14) ^
                                       gmul(a2, 11) ^ gmul(a3, 13));
    col[2] = static_cast<std::uint8_t>(gmul(a0, 13) ^ gmul(a1, 9) ^
                                       gmul(a2, 14) ^ gmul(a3, 11));
    col[3] = static_cast<std::uint8_t>(gmul(a0, 11) ^ gmul(a1, 13) ^
                                       gmul(a2, 9) ^ gmul(a3, 14));
  }
}

}  // namespace

void Aes::encrypt_block(std::uint8_t* block) const noexcept {
  add_round_key(block, round_keys_.data());
  for (int round = 1; round < rounds_; ++round) {
    sub_bytes(block);
    shift_rows(block);
    mix_columns(block);
    add_round_key(block, round_keys_.data() + 4 * round);
  }
  sub_bytes(block);
  shift_rows(block);
  add_round_key(block, round_keys_.data() + 4 * rounds_);
}

void Aes::decrypt_block(std::uint8_t* block) const noexcept {
  add_round_key(block, dec_keys_.data() + 4 * rounds_);
  for (int round = rounds_ - 1; round >= 1; --round) {
    inv_shift_rows(block);
    inv_sub_bytes(block);
    add_round_key(block, dec_keys_.data() + 4 * round);
    inv_mix_columns(block);
  }
  inv_shift_rows(block);
  inv_sub_bytes(block);
  add_round_key(block, dec_keys_.data());
}

AesCtr::AesCtr(BytesView key, BytesView nonce12) : aes_(key) {
  if (nonce12.size() != 12) {
    throw common::CryptoError("AesCtr: nonce must be 12 bytes");
  }
  std::memcpy(counter_block_.data(), nonce12.data(), 12);
  // Low 4 bytes are the big-endian block counter, starting at 0.
}

void AesCtr::bump() noexcept {
  for (int i = 15; i >= 12; --i) {
    if (++counter_block_[static_cast<std::size_t>(i)] != 0) break;
  }
}

void AesCtr::apply(Bytes& data) {
  for (auto& byte : data) {
    if (pos_ == 16) {
      keystream_ = counter_block_;
      aes_.encrypt_block(keystream_.data());
      bump();
      pos_ = 0;
    }
    byte ^= keystream_[pos_++];
  }
}

}  // namespace tpnr::crypto
