// SHA-1 (FIPS 180-4). Included for completeness of the platform simulations;
// the NR protocol uses SHA-256.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/hash.h"

namespace tpnr::crypto {

class Sha1 final : public Hash {
 public:
  Sha1() noexcept { reset(); }

  void update(BytesView data) override;
  Bytes finish() override;
  void reset() override;

  [[nodiscard]] std::size_t digest_size() const noexcept override { return 20; }
  [[nodiscard]] std::size_t block_size() const noexcept override { return 64; }
  [[nodiscard]] HashKind kind() const noexcept override {
    return HashKind::kSha1;
  }
  [[nodiscard]] std::unique_ptr<Hash> fresh() const override {
    return std::make_unique<Sha1>();
  }

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 5> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace tpnr::crypto
