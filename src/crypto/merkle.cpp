#include "crypto/merkle.h"

#include <stdexcept>
#include <thread>

#include "common/error.h"
#include "crypto/sha256_mb.h"

namespace tpnr::crypto {

namespace {

constexpr std::uint8_t kLeafTag = 0x00;
constexpr std::uint8_t kNodeTag = 0x01;

/// True when this kind's hashing should go through the multi-lane SHA-256
/// engine (same digests, lanes-at-a-time throughput).
bool use_lanes(HashKind kind) {
  return kind == HashKind::kSha256 && sha256_mb_lanes() > 1;
}

}  // namespace

Bytes MerkleTree::leaf_hash(HashKind kind, BytesView chunk) {
  auto h = make_hash(kind);
  h->update(BytesView(&kLeafTag, 1));
  h->update(chunk);
  return h->finish();
}

Bytes MerkleTree::node_hash(HashKind kind, BytesView left, BytesView right) {
  auto h = make_hash(kind);
  h->update(BytesView(&kNodeTag, 1));
  h->update(left);
  h->update(right);
  return h->finish();
}

MerkleTree::MerkleTree(BytesView data, std::size_t chunk_size, HashKind kind,
                       unsigned threads)
    : chunk_size_(chunk_size), kind_(kind) {
  if (chunk_size == 0) {
    throw common::CryptoError("MerkleTree: chunk_size must be > 0");
  }
  const std::size_t leaf_count =
      data.empty() ? 1 : (data.size() + chunk_size - 1) / chunk_size;

  std::vector<Bytes> leaves(leaf_count);
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, leaf_count));

  const bool lanes = use_lanes(kind);
  auto hash_range = [&](std::size_t begin, std::size_t end) {
    auto chunk_at = [&](std::size_t i) {
      const std::size_t offset = i * chunk_size;
      const std::size_t len =
          data.empty() ? 0 : std::min(chunk_size, data.size() - offset);
      return data.subspan(offset, len);
    };
    if (lanes) {
      // Each worker feeds its whole range to the lane engine in one call;
      // SIMD breadth multiplies with thread breadth.
      std::vector<BytesView> views;
      views.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i) views.push_back(chunk_at(i));
      auto digests = sha256_many_tagged(kLeafTag, views);
      for (std::size_t i = begin; i < end; ++i) {
        leaves[i] = std::move(digests[i - begin]);
      }
      return;
    }
    for (std::size_t i = begin; i < end; ++i) {
      leaves[i] = leaf_hash(kind, chunk_at(i));
    }
  };

  if (threads <= 1) {
    hash_range(0, leaf_count);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    const std::size_t per = (leaf_count + threads - 1) / threads;
    for (unsigned t = 0; t < threads; ++t) {
      const std::size_t begin = t * per;
      const std::size_t end = std::min(leaf_count, begin + per);
      if (begin >= end) break;
      pool.emplace_back(hash_range, begin, end);
    }
    for (auto& th : pool) th.join();
  }

  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    const auto& below = levels_.back();
    std::vector<Bytes> level((below.size() + 1) / 2);
    if (use_lanes(kind_) && level.size() > 1) {
      // Interior level in one lane dispatch: concatenate each left||right
      // pair into a scratch row and batch-hash the rows.
      const std::size_t digest_len = below[0].size();
      std::vector<std::uint8_t> scratch(level.size() * 2 * digest_len);
      std::vector<BytesView> rows(level.size());
      for (std::size_t i = 0; i < level.size(); ++i) {
        const Bytes& left = below[2 * i];
        // Odd node is paired with itself (Bitcoin-style duplication).
        const Bytes& right =
            (2 * i + 1 < below.size()) ? below[2 * i + 1] : below[2 * i];
        std::uint8_t* row = scratch.data() + i * 2 * digest_len;
        std::copy(left.begin(), left.end(), row);
        std::copy(right.begin(), right.end(), row + digest_len);
        rows[i] = BytesView(row, 2 * digest_len);
      }
      level = sha256_many_tagged(kNodeTag, rows);
    } else {
      for (std::size_t i = 0; i < level.size(); ++i) {
        const Bytes& left = below[2 * i];
        // Odd node is paired with itself (Bitcoin-style duplication).
        const Bytes& right =
            (2 * i + 1 < below.size()) ? below[2 * i + 1] : below[2 * i];
        level[i] = node_hash(kind_, left, right);
      }
    }
    levels_.push_back(std::move(level));
  }
}

MerkleProof MerkleTree::prove(std::size_t index) const {
  if (index >= leaf_count()) {
    throw std::out_of_range("MerkleTree::prove: leaf index out of range");
  }
  MerkleProof proof;
  proof.leaf_index = index;
  proof.leaf_count = leaf_count();
  std::size_t i = index;
  for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
    const auto& nodes = levels_[level];
    const std::size_t sibling = (i % 2 == 0) ? i + 1 : i - 1;
    proof.siblings.push_back(sibling < nodes.size() ? nodes[sibling]
                                                    : nodes[i]);
    i /= 2;
  }
  return proof;
}

bool MerkleTree::verify(BytesView chunk, const MerkleProof& proof,
                        BytesView root, HashKind kind) {
  return verify_from_leaf(leaf_hash(kind, chunk), proof, root, kind);
}

bool MerkleTree::verify_from_leaf(BytesView leaf_digest,
                                  const MerkleProof& proof, BytesView root,
                                  HashKind kind) {
  Bytes acc(leaf_digest.begin(), leaf_digest.end());
  std::size_t i = proof.leaf_index;
  std::size_t width = proof.leaf_count;
  for (const Bytes& sibling : proof.siblings) {
    if (i % 2 == 0) {
      acc = node_hash(kind, acc, sibling);
    } else {
      acc = node_hash(kind, sibling, acc);
    }
    i /= 2;
    width = (width + 1) / 2;
  }
  if (width != 1) return false;
  return common::constant_time_equal(acc, root);
}

std::vector<std::uint8_t> MerkleTree::verify_many(
    std::span<const BytesView> chunks, std::span<const MerkleProof> proofs,
    std::span<const BytesView> roots, HashKind kind) {
  if (chunks.size() != proofs.size() || chunks.size() != roots.size()) {
    throw common::CryptoError("MerkleTree::verify_many: span size mismatch");
  }
  const std::size_t n = chunks.size();
  if (!use_lanes(kind)) {
    std::vector<std::uint8_t> ok(n);
    for (std::size_t i = 0; i < n; ++i) {
      ok[i] = verify(chunks[i], proofs[i], roots[i], kind) ? 1 : 0;
    }
    return ok;
  }

  // Leaf hashes for the whole batch in one dispatch, then fold all proofs
  // upward in lock-step: level k of every still-open proof goes through the
  // engine together.
  std::vector<Bytes> acc = sha256_many_tagged(kLeafTag, chunks);
  std::vector<std::size_t> idx(n);
  std::vector<std::size_t> width(n);
  std::size_t max_depth = 0;
  for (std::size_t i = 0; i < n; ++i) {
    idx[i] = proofs[i].leaf_index;
    width[i] = proofs[i].leaf_count;
    max_depth = std::max(max_depth, proofs[i].siblings.size());
  }
  const std::size_t digest_len = 32;
  for (std::size_t level = 0; level < max_depth; ++level) {
    std::vector<std::size_t> active;
    for (std::size_t i = 0; i < n; ++i) {
      if (level < proofs[i].siblings.size()) active.push_back(i);
    }
    std::vector<std::uint8_t> scratch(active.size() * 2 * digest_len);
    std::vector<BytesView> rows(active.size());
    for (std::size_t a = 0; a < active.size(); ++a) {
      const std::size_t i = active[a];
      const Bytes& sibling = proofs[i].siblings[level];
      std::uint8_t* row = scratch.data() + a * 2 * digest_len;
      const Bytes& left = (idx[i] % 2 == 0) ? acc[i] : sibling;
      const Bytes& right = (idx[i] % 2 == 0) ? sibling : acc[i];
      std::copy(left.begin(), left.end(), row);
      std::copy(right.begin(), right.end(), row + digest_len);
      rows[a] = BytesView(row, 2 * digest_len);
    }
    std::vector<Bytes> parents = sha256_many_tagged(kNodeTag, rows);
    for (std::size_t a = 0; a < active.size(); ++a) {
      const std::size_t i = active[a];
      acc[i] = std::move(parents[a]);
      idx[i] /= 2;
      width[i] = (width[i] + 1) / 2;
    }
  }
  std::vector<std::uint8_t> ok(n);
  for (std::size_t i = 0; i < n; ++i) {
    ok[i] = (width[i] == 1 && common::constant_time_equal(acc[i], roots[i]))
                ? 1
                : 0;
  }
  return ok;
}

}  // namespace tpnr::crypto
