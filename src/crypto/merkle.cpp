#include "crypto/merkle.h"

#include <stdexcept>
#include <thread>

#include "common/error.h"

namespace tpnr::crypto {

Bytes MerkleTree::leaf_hash(HashKind kind, BytesView chunk) {
  auto h = make_hash(kind);
  const std::uint8_t tag = 0x00;
  h->update(BytesView(&tag, 1));
  h->update(chunk);
  return h->finish();
}

Bytes MerkleTree::node_hash(HashKind kind, BytesView left, BytesView right) {
  auto h = make_hash(kind);
  const std::uint8_t tag = 0x01;
  h->update(BytesView(&tag, 1));
  h->update(left);
  h->update(right);
  return h->finish();
}

MerkleTree::MerkleTree(BytesView data, std::size_t chunk_size, HashKind kind,
                       unsigned threads)
    : chunk_size_(chunk_size), kind_(kind) {
  if (chunk_size == 0) {
    throw common::CryptoError("MerkleTree: chunk_size must be > 0");
  }
  const std::size_t leaf_count =
      data.empty() ? 1 : (data.size() + chunk_size - 1) / chunk_size;

  std::vector<Bytes> leaves(leaf_count);
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, leaf_count));

  auto hash_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t offset = i * chunk_size;
      const std::size_t len =
          data.empty() ? 0 : std::min(chunk_size, data.size() - offset);
      leaves[i] = leaf_hash(kind, data.subspan(offset, len));
    }
  };

  if (threads <= 1) {
    hash_range(0, leaf_count);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    const std::size_t per = (leaf_count + threads - 1) / threads;
    for (unsigned t = 0; t < threads; ++t) {
      const std::size_t begin = t * per;
      const std::size_t end = std::min(leaf_count, begin + per);
      if (begin >= end) break;
      pool.emplace_back(hash_range, begin, end);
    }
    for (auto& th : pool) th.join();
  }

  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    const auto& below = levels_.back();
    std::vector<Bytes> level((below.size() + 1) / 2);
    for (std::size_t i = 0; i < level.size(); ++i) {
      const Bytes& left = below[2 * i];
      // Odd node is paired with itself (Bitcoin-style duplication).
      const Bytes& right =
          (2 * i + 1 < below.size()) ? below[2 * i + 1] : below[2 * i];
      level[i] = node_hash(kind_, left, right);
    }
    levels_.push_back(std::move(level));
  }
}

MerkleProof MerkleTree::prove(std::size_t index) const {
  if (index >= leaf_count()) {
    throw std::out_of_range("MerkleTree::prove: leaf index out of range");
  }
  MerkleProof proof;
  proof.leaf_index = index;
  proof.leaf_count = leaf_count();
  std::size_t i = index;
  for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
    const auto& nodes = levels_[level];
    const std::size_t sibling = (i % 2 == 0) ? i + 1 : i - 1;
    proof.siblings.push_back(sibling < nodes.size() ? nodes[sibling]
                                                    : nodes[i]);
    i /= 2;
  }
  return proof;
}

bool MerkleTree::verify(BytesView chunk, const MerkleProof& proof,
                        BytesView root, HashKind kind) {
  Bytes acc = leaf_hash(kind, chunk);
  std::size_t i = proof.leaf_index;
  std::size_t width = proof.leaf_count;
  for (const Bytes& sibling : proof.siblings) {
    if (i % 2 == 0) {
      acc = node_hash(kind, acc, sibling);
    } else {
      acc = node_hash(kind, sibling, acc);
    }
    i /= 2;
    width = (width + 1) / 2;
  }
  if (width != 1) return false;
  return common::constant_time_equal(acc, root);
}

}  // namespace tpnr::crypto
