// Lane-parallel SHA-256 compression: TPNR_MB_LANES independent messages
// advance through the FIPS 180-4 rounds simultaneously, one message per
// SIMD lane. Word layout is struct-of-arrays — every working variable is a
// vector whose element l belongs to message l — so the 64 rounds are pure
// element-wise vector arithmetic; only the big-endian block loads gather
// lane-by-lane.
//
// This file is included (not compiled) by exactly one translation unit per
// lane width; the TU defines, before inclusion:
//   TPNR_MB_LANES  lane count (vector width = 4*TPNR_MB_LANES bytes)
//   TPNR_MB_FN     name of the emitted compression function
// The including TU controls the target flags (e.g. -mavx2 for the 8-lane
// build); the code itself is plain GNU vector extensions, portable across
// GCC/Clang and legalized by the compiler on any target.
//
// Emitted signature:
//   void TPNR_MB_FN(std::uint32_t* state,              // [8][LANES] word-major
//                   const std::uint8_t* const* blocks, // LANES buffers
//                   std::size_t nblocks);              // blocks per lane
// Every lane buffer must hold nblocks * 64 readable bytes.

#ifndef TPNR_MB_LANES
#error "define TPNR_MB_LANES before including sha256_mb_lanes.inl"
#endif
#ifndef TPNR_MB_FN
#error "define TPNR_MB_FN before including sha256_mb_lanes.inl"
#endif

namespace tpnr::crypto::detail {

namespace {

typedef std::uint32_t MbVec __attribute__((vector_size(4 * TPNR_MB_LANES)));

inline MbVec mb_rotr(MbVec x, int n) { return (x >> n) | (x << (32 - n)); }

/// FIPS 180-4 §4.2.2 round constants (same table as the scalar core).
constexpr std::uint32_t kMbK[64] = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu,
    0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u,
    0x243185beu, 0x550c7dc3u, 0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u,
    0xc19bf174u, 0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
    0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau, 0x983e5152u,
    0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
    0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu,
    0x53380d13u, 0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
    0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u, 0xd192e819u,
    0xd6990624u, 0xf40e3585u, 0x106aa070u, 0x19a4c116u, 0x1e376c08u,
    0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu,
    0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u};

}  // namespace

void TPNR_MB_FN(std::uint32_t* state, const std::uint8_t* const* blocks,
                std::size_t nblocks) {
  constexpr int kW = TPNR_MB_LANES;
  MbVec h[8];
  for (int i = 0; i < 8; ++i) {
    std::memcpy(&h[i], state + static_cast<std::size_t>(i) * kW,
                sizeof(MbVec));
  }

  for (std::size_t block = 0; block < nblocks; ++block) {
    const std::size_t offset = block * 64;
    MbVec w[64];
    for (int t = 0; t < 16; ++t) {
      MbVec v{};
      for (int l = 0; l < kW; ++l) {
        const std::uint8_t* p = blocks[l] + offset + 4 * t;
        v[l] = (static_cast<std::uint32_t>(p[0]) << 24) |
               (static_cast<std::uint32_t>(p[1]) << 16) |
               (static_cast<std::uint32_t>(p[2]) << 8) |
               static_cast<std::uint32_t>(p[3]);
      }
      w[t] = v;
    }
    for (int t = 16; t < 64; ++t) {
      const MbVec s0 =
          mb_rotr(w[t - 15], 7) ^ mb_rotr(w[t - 15], 18) ^ (w[t - 15] >> 3);
      const MbVec s1 =
          mb_rotr(w[t - 2], 17) ^ mb_rotr(w[t - 2], 19) ^ (w[t - 2] >> 10);
      w[t] = w[t - 16] + s0 + w[t - 7] + s1;
    }

    MbVec a = h[0], b = h[1], c = h[2], d = h[3], e = h[4], f = h[5],
          g = h[6], hh = h[7];
    for (int t = 0; t < 64; ++t) {
      const MbVec s1 = mb_rotr(e, 6) ^ mb_rotr(e, 11) ^ mb_rotr(e, 25);
      const MbVec ch = (e & f) ^ (~e & g);
      const MbVec t1 = hh + s1 + ch + kMbK[t] + w[t];
      const MbVec s0 = mb_rotr(a, 2) ^ mb_rotr(a, 13) ^ mb_rotr(a, 22);
      const MbVec maj = (a & b) ^ (a & c) ^ (b & c);
      const MbVec t2 = s0 + maj;
      hh = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
    h[5] += f;
    h[6] += g;
    h[7] += hh;
  }

  for (int i = 0; i < 8; ++i) {
    std::memcpy(state + static_cast<std::size_t>(i) * kW, &h[i],
                sizeof(MbVec));
  }
}

}  // namespace tpnr::crypto::detail

#undef TPNR_MB_LANES
#undef TPNR_MB_FN
