// Deterministic random bit generator built on ChaCha20 with forward-secure
// rekeying (fast-key-erasure construction). All protocol randomness — nonces,
// RSA prime search, Shamir coefficients — flows through this, so a seeded
// Drbg makes complete protocol runs reproducible.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace tpnr::crypto {

using common::Bytes;
using common::BytesView;

class Drbg {
 public:
  /// Deterministic instance from an explicit 32-byte-or-shorter seed (the
  /// seed is hashed to 32 bytes).
  explicit Drbg(BytesView seed);

  /// Convenience: deterministic instance from a 64-bit seed.
  explicit Drbg(std::uint64_t seed);

  /// Instance seeded from the operating system entropy source.
  static Drbg from_system_entropy();

  /// Fills `out` with random bytes.
  void fill(Bytes& out);

  /// Returns `n` random bytes.
  Bytes bytes(std::size_t n);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform value in [0, bound) via rejection sampling; bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p);

 private:
  void rekey();

  Bytes key_;       // 32 bytes
  std::uint64_t counter_ = 0;
};

}  // namespace tpnr::crypto
