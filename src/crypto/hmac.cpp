#include "crypto/hmac.h"

namespace tpnr::crypto {

Hmac::Hmac(HashKind kind, BytesView key)
    : inner_(make_hash(kind)), outer_(make_hash(kind)) {
  const std::size_t block = inner_->block_size();
  Bytes k(key.begin(), key.end());
  if (k.size() > block) {
    k = digest(kind, k);
  }
  k.resize(block, 0);

  ipad_.assign(block, 0x36);
  opad_.assign(block, 0x5c);
  for (std::size_t i = 0; i < block; ++i) {
    ipad_[i] ^= k[i];
    opad_[i] ^= k[i];
  }
  common::secure_wipe(k);
  start();
}

void Hmac::start() {
  inner_->reset();
  inner_->update(ipad_);
}

void Hmac::update(BytesView data) { inner_->update(data); }

Bytes Hmac::finish() {
  const Bytes inner_digest = inner_->finish();
  outer_->reset();
  outer_->update(opad_);
  outer_->update(inner_digest);
  Bytes tag = outer_->finish();
  start();
  return tag;
}

Bytes hmac(HashKind kind, BytesView key, BytesView data) {
  Hmac mac(kind, key);
  mac.update(data);
  return mac.finish();
}

Bytes hmac_sha256(BytesView key, BytesView data) {
  return hmac(HashKind::kSha256, key, data);
}

bool hmac_verify(HashKind kind, BytesView key, BytesView data, BytesView tag) {
  return common::constant_time_equal(hmac(kind, key, data), tag);
}

}  // namespace tpnr::crypto
