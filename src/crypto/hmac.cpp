#include "crypto/hmac.h"

#include <map>
#include <mutex>
#include <utility>

#include "common/error.h"
#include "crypto/counters.h"

namespace tpnr::crypto {

namespace {

/// Key-padding step shared by both HMAC flavors: hash long keys, pad to the
/// block size, XOR into fresh ipad/opad blocks.
void derive_pads(HashKind kind, BytesView key, std::size_t block, Bytes& ipad,
                 Bytes& opad) {
  Bytes k(key.begin(), key.end());
  if (k.size() > block) {
    k = digest(kind, k);
  }
  k.resize(block, 0);

  ipad.assign(block, 0x36);
  opad.assign(block, 0x5c);
  for (std::size_t i = 0; i < block; ++i) {
    ipad[i] ^= k[i];
    opad[i] ^= k[i];
  }
  common::secure_wipe(k);
}

}  // namespace

Hmac::Hmac(HashKind kind, BytesView key)
    : inner_(make_hash(kind)), outer_(make_hash(kind)) {
  derive_pads(kind, key, inner_->block_size(), ipad_, opad_);
  if (accel().hmac_midstate) {
    if (auto* inner_core = dynamic_cast<Sha256Core*>(inner_.get())) {
      auto* outer_core = static_cast<Sha256Core*>(outer_.get());
      inner_core->reset();
      inner_core->update(ipad_);
      inner_mid_ = inner_core->midstate();
      outer_core->reset();
      outer_core->update(opad_);
      outer_mid_ = outer_core->midstate();
      use_midstate_ = true;
    }
  }
  start();
}

void Hmac::start() {
  if (use_midstate_) {
    static_cast<Sha256Core*>(inner_.get())->restore(inner_mid_);
    return;
  }
  inner_->reset();
  inner_->update(ipad_);
}

void Hmac::update(BytesView data) { inner_->update(data); }

Bytes Hmac::finish() {
  const Bytes inner_digest = inner_->finish();
  if (use_midstate_) {
    static_cast<Sha256Core*>(outer_.get())->restore(outer_mid_);
  } else {
    outer_->reset();
    outer_->update(opad_);
  }
  outer_->update(inner_digest);
  Bytes tag = outer_->finish();
  start();
  return tag;
}

HmacKeyState::HmacKeyState(HashKind kind, BytesView key) : kind_(kind) {
  if (kind != HashKind::kSha224 && kind != HashKind::kSha256) {
    throw common::CryptoError("HmacKeyState: only the SHA-256 family");
  }
  Bytes ipad;
  Bytes opad;
  derive_pads(kind, key, 64, ipad, opad);
  if (kind == HashKind::kSha224) {
    Sha224 h;
    h.update(ipad);
    inner_mid_ = h.midstate();
    h.reset();
    h.update(opad);
    outer_mid_ = h.midstate();
  } else {
    Sha256 h;
    h.update(ipad);
    inner_mid_ = h.midstate();
    h.reset();
    h.update(opad);
    outer_mid_ = h.midstate();
  }
  common::secure_wipe(ipad);
  common::secure_wipe(opad);
  counters().hmac_midstate_misses.fetch_add(1, std::memory_order_relaxed);
}

namespace {

template <typename H>
Bytes keyed_mac(const Sha256Midstate& inner_mid,
                const Sha256Midstate& outer_mid, BytesView data) {
  H h;
  h.restore(inner_mid);
  h.update(data);
  const Bytes inner_digest = h.finish();
  h.restore(outer_mid);
  h.update(inner_digest);
  return h.finish();
}

}  // namespace

Bytes HmacKeyState::mac(BytesView data) const {
  counters().hmac_midstate_hits.fetch_add(1, std::memory_order_relaxed);
  if (kind_ == HashKind::kSha224) {
    return keyed_mac<Sha224>(inner_mid_, outer_mid_, data);
  }
  return keyed_mac<Sha256>(inner_mid_, outer_mid_, data);
}

bool HmacKeyState::verify(BytesView data, BytesView tag) const {
  return common::constant_time_equal(mac(data), tag);
}

Bytes hmac(HashKind kind, BytesView key, BytesView data) {
  Hmac mac(kind, key);
  mac.update(data);
  return mac.finish();
}

Bytes hmac_sha256(BytesView key, BytesView data) {
  return hmac(HashKind::kSha256, key, data);
}

namespace {

// Process-wide key-state cache. Keys are identified by their SHA-256 digest
// so raw key bytes never sit in the map. Bounded: recurring keys (account
// keys, session MACs) number in the dozens; a runaway caller just cycles
// the cache instead of growing it.
constexpr std::size_t kHmacCacheCap = 256;
std::mutex g_hmac_cache_mu;
std::map<Bytes, HmacKeyState>& hmac_cache() {
  static std::map<Bytes, HmacKeyState> cache;
  return cache;
}

}  // namespace

Bytes hmac_sha256_cached(BytesView key, BytesView data) {
  if (!accel().hmac_midstate) {
    return hmac_sha256(key, data);
  }
  Bytes id = sha256(key);
  std::lock_guard<std::mutex> lock(g_hmac_cache_mu);
  auto& cache = hmac_cache();
  auto it = cache.find(id);
  if (it == cache.end()) {
    if (cache.size() >= kHmacCacheCap) cache.clear();
    it = cache.emplace(std::move(id), HmacKeyState(HashKind::kSha256, key))
             .first;
  }
  return it->second.mac(data);
}

void hmac_cache_clear() {
  std::lock_guard<std::mutex> lock(g_hmac_cache_mu);
  hmac_cache().clear();
}

bool hmac_verify(HashKind kind, BytesView key, BytesView data, BytesView tag) {
  return common::constant_time_equal(hmac(kind, key, data), tag);
}

}  // namespace tpnr::crypto
