// Authenticated encryption with associated data, built as
// AES-256-CTR + HMAC-SHA256 encrypt-then-MAC. This is the record protection
// of the simulated SSL channel and of NR evidence envelopes.
//
// Wire format: nonce(12) || ciphertext || tag(32)
// MAC input:   nonce || be64(|aad|) || aad || ciphertext
#pragma once

#include "common/bytes.h"
#include "crypto/drbg.h"
#include "crypto/hmac.h"

namespace tpnr::crypto {

class Aead {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;
  static constexpr std::size_t kTagSize = 32;
  static constexpr std::size_t kOverhead = kNonceSize + kTagSize;

  /// Throws CryptoError unless the key is 32 bytes. Internally derives
  /// independent encryption and MAC keys from it.
  explicit Aead(BytesView key);

  /// Encrypts and authenticates; the nonce is drawn from `rng`.
  Bytes seal(BytesView plaintext, BytesView aad, Drbg& rng) const;

  /// Verifies and decrypts. Throws CryptoError on any authentication
  /// failure (wrong key, tampered ciphertext, tampered aad, truncation).
  Bytes open(BytesView sealed, BytesView aad) const;

 private:
  Bytes mac_input(BytesView nonce, BytesView aad, BytesView ciphertext) const;

  Bytes enc_key_;
  // Per-instance key state, not the global cache: session keys are random
  // one-shots and would only churn a shared cache. The pad midstates are
  // still computed once here instead of once per seal/open.
  HmacKeyState mac_state_;
};

}  // namespace tpnr::crypto
