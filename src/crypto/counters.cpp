#include "crypto/counters.h"

#include <cstdlib>

namespace tpnr::crypto {

CounterSnapshot Counters::snapshot() const noexcept {
  CounterSnapshot s;
  s.scalar_blocks = scalar_blocks.load(std::memory_order_relaxed);
  s.mb_lane_blocks = mb_lane_blocks.load(std::memory_order_relaxed);
  s.mb_batches = mb_batches.load(std::memory_order_relaxed);
  s.mb_dispatch_jobs = mb_dispatch_jobs.load(std::memory_order_relaxed);
  s.hmac_midstate_hits = hmac_midstate_hits.load(std::memory_order_relaxed);
  s.hmac_midstate_misses =
      hmac_midstate_misses.load(std::memory_order_relaxed);
  s.tree_builds = tree_builds.load(std::memory_order_relaxed);
  s.tree_rebuilds_avoided =
      tree_rebuilds_avoided.load(std::memory_order_relaxed);
  s.verify_memo_hits = verify_memo_hits.load(std::memory_order_relaxed);
  s.verify_memo_misses = verify_memo_misses.load(std::memory_order_relaxed);
  s.mont_modmuls = mont_modmuls.load(std::memory_order_relaxed);
  s.classic_modmuls = classic_modmuls.load(std::memory_order_relaxed);
  s.crt_signs = crt_signs.load(std::memory_order_relaxed);
  s.classic_signs = classic_signs.load(std::memory_order_relaxed);
  s.batch_verify_groups = batch_verify_groups.load(std::memory_order_relaxed);
  s.batch_verify_items = batch_verify_items.load(std::memory_order_relaxed);
  s.service_jobs = service_jobs.load(std::memory_order_relaxed);
  s.service_flushes = service_flushes.load(std::memory_order_relaxed);
  s.service_inline_jobs = service_inline_jobs.load(std::memory_order_relaxed);
  return s;
}

void Counters::reset() noexcept {
  scalar_blocks.store(0, std::memory_order_relaxed);
  mb_lane_blocks.store(0, std::memory_order_relaxed);
  mb_batches.store(0, std::memory_order_relaxed);
  mb_dispatch_jobs.store(0, std::memory_order_relaxed);
  hmac_midstate_hits.store(0, std::memory_order_relaxed);
  hmac_midstate_misses.store(0, std::memory_order_relaxed);
  tree_builds.store(0, std::memory_order_relaxed);
  tree_rebuilds_avoided.store(0, std::memory_order_relaxed);
  verify_memo_hits.store(0, std::memory_order_relaxed);
  verify_memo_misses.store(0, std::memory_order_relaxed);
  mont_modmuls.store(0, std::memory_order_relaxed);
  classic_modmuls.store(0, std::memory_order_relaxed);
  crt_signs.store(0, std::memory_order_relaxed);
  classic_signs.store(0, std::memory_order_relaxed);
  batch_verify_groups.store(0, std::memory_order_relaxed);
  batch_verify_items.store(0, std::memory_order_relaxed);
  service_jobs.store(0, std::memory_order_relaxed);
  service_flushes.store(0, std::memory_order_relaxed);
  service_inline_jobs.store(0, std::memory_order_relaxed);
}

Counters& counters() noexcept {
  static Counters instance;
  return instance;
}

namespace {

AccelConfig initial_config() noexcept {
  AccelConfig config;
  const char* env = std::getenv("TPNR_CRYPTO_ACCEL");
  if (env != nullptr && env[0] == '0' && env[1] == '\0') {
    config.multi_lane = false;
    config.hmac_midstate = false;
    config.merkle_cache = false;
    config.verify_memo = false;
    config.rsa_fast = false;
    config.crypto_service = false;
  }
  return config;
}

AccelConfig& config_storage() noexcept {
  static AccelConfig config = initial_config();
  return config;
}

}  // namespace

AccelConfig accel() noexcept { return config_storage(); }

void set_accel(AccelConfig config) noexcept { config_storage() = config; }

void set_accel_enabled(bool enabled) noexcept {
  AccelConfig config;
  config.multi_lane = enabled;
  config.hmac_midstate = enabled;
  config.merkle_cache = enabled;
  config.verify_memo = enabled;
  config.rsa_fast = enabled;
  config.crypto_service = enabled;
  set_accel(config);
}

}  // namespace tpnr::crypto
