#include "crypto/counters.h"

#include <cstdlib>

namespace tpnr::crypto {

CounterSnapshot Counters::snapshot() const noexcept {
  CounterSnapshot s;
  s.scalar_blocks = scalar_blocks.load(std::memory_order_relaxed);
  s.mb_lane_blocks = mb_lane_blocks.load(std::memory_order_relaxed);
  s.mb_batches = mb_batches.load(std::memory_order_relaxed);
  s.hmac_midstate_hits = hmac_midstate_hits.load(std::memory_order_relaxed);
  s.hmac_midstate_misses =
      hmac_midstate_misses.load(std::memory_order_relaxed);
  s.tree_builds = tree_builds.load(std::memory_order_relaxed);
  s.tree_rebuilds_avoided =
      tree_rebuilds_avoided.load(std::memory_order_relaxed);
  s.verify_memo_hits = verify_memo_hits.load(std::memory_order_relaxed);
  s.verify_memo_misses = verify_memo_misses.load(std::memory_order_relaxed);
  return s;
}

void Counters::reset() noexcept {
  scalar_blocks.store(0, std::memory_order_relaxed);
  mb_lane_blocks.store(0, std::memory_order_relaxed);
  mb_batches.store(0, std::memory_order_relaxed);
  hmac_midstate_hits.store(0, std::memory_order_relaxed);
  hmac_midstate_misses.store(0, std::memory_order_relaxed);
  tree_builds.store(0, std::memory_order_relaxed);
  tree_rebuilds_avoided.store(0, std::memory_order_relaxed);
  verify_memo_hits.store(0, std::memory_order_relaxed);
  verify_memo_misses.store(0, std::memory_order_relaxed);
}

Counters& counters() noexcept {
  static Counters instance;
  return instance;
}

namespace {

AccelConfig initial_config() noexcept {
  AccelConfig config;
  const char* env = std::getenv("TPNR_CRYPTO_ACCEL");
  if (env != nullptr && env[0] == '0' && env[1] == '\0') {
    config.multi_lane = false;
    config.hmac_midstate = false;
    config.merkle_cache = false;
    config.verify_memo = false;
  }
  return config;
}

AccelConfig& config_storage() noexcept {
  static AccelConfig config = initial_config();
  return config;
}

}  // namespace

AccelConfig accel() noexcept { return config_storage(); }

void set_accel(AccelConfig config) noexcept { config_storage() = config; }

void set_accel_enabled(bool enabled) noexcept {
  set_accel(AccelConfig{enabled, enabled, enabled, enabled});
}

}  // namespace tpnr::crypto
