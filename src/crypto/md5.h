// MD5 (RFC 1321). Present because the platforms under study (S3 Import/
// Export, Azure Content-MD5) use MD5 checksums; the NR protocol itself uses
// SHA-2. Do not use MD5 for new designs.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/hash.h"

namespace tpnr::crypto {

class Md5 final : public Hash {
 public:
  Md5() noexcept { reset(); }

  void update(BytesView data) override;
  Bytes finish() override;
  void reset() override;

  [[nodiscard]] std::size_t digest_size() const noexcept override { return 16; }
  [[nodiscard]] std::size_t block_size() const noexcept override { return 64; }
  [[nodiscard]] HashKind kind() const noexcept override {
    return HashKind::kMd5;
  }
  [[nodiscard]] std::unique_ptr<Hash> fresh() const override {
    return std::make_unique<Md5>();
  }

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 4> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace tpnr::crypto
