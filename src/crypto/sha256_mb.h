// Multi-buffer SHA-256: hashes batches of independent messages 4 or 8 at a
// time by interleaving them across SIMD lanes (GNU vector extensions, with
// an AVX2-targeted 8-lane build selected by runtime CPU dispatch and a
// scalar fallback everywhere else). Digests are bit-identical to the scalar
// core for every engine — acceleration may never change a digest.
//
// This is the engine under the protocol's hash-dominated hot paths: Merkle
// leaf/interior hashing, batch audit-proof verification, and evidence-hash
// checks all feed independent messages and are throughput-, not latency-,
// bound.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/hash.h"

namespace tpnr::crypto {

/// The implementations a batch call can run on.
enum class Sha256MbEngine {
  kScalar,  ///< one message at a time through the scalar core
  kX4,      ///< 4 lanes, baseline vector ISA (SSE2 on x86-64)
  kX8Avx2,  ///< 8 lanes, AVX2 (only where compiled in and CPU-supported)
};

/// True if `engine` can run in this process (kScalar and kX4 always can on
/// GCC/Clang builds; kX8Avx2 needs the AVX2 TU plus CPU support).
[[nodiscard]] bool sha256_mb_available(Sha256MbEngine engine) noexcept;

/// The engine dispatch would pick right now (honors accel().multi_lane).
[[nodiscard]] Sha256MbEngine sha256_mb_best_engine() noexcept;

/// Lane count of the best engine (1, 4 or 8).
[[nodiscard]] unsigned sha256_mb_lanes() noexcept;

/// out[i] = SHA-256(messages[i]). Batch of any size, any lengths.
std::vector<Bytes> sha256_many(std::span<const BytesView> messages);

/// out[i] = SHA-256(tag || messages[i]) — the domain-separated form Merkle
/// leaf (0x00) and interior (0x01) hashing use.
std::vector<Bytes> sha256_many_tagged(std::uint8_t tag,
                                      std::span<const BytesView> messages);

/// One message of a mixed batch: an optional single-byte domain tag plus the
/// body. tag < 0 means no prefix.
struct TaggedMessage {
  BytesView msg;
  int tag = -1;
};

/// Batch with a per-message tag — lets a caller fuse differently-tagged
/// hashes of the same pass (e.g. a chunk's evidence digest and its Merkle
/// leaf hash) into one lane dispatch.
std::vector<Bytes> sha256_many_mixed(std::span<const TaggedMessage> messages);

/// Same, pinned to a specific engine (for equivalence tests and the lane
/// ablation). `tag` is nullptr for untagged hashing. Throws CryptoError if
/// the engine is not available.
std::vector<Bytes> sha256_many_engine(Sha256MbEngine engine,
                                      const std::uint8_t* tag,
                                      std::span<const BytesView> messages);

}  // namespace tpnr::crypto
