#include "crypto/sha256.h"

#include <cstring>

#include "common/error.h"

namespace tpnr::crypto {

namespace {

constexpr std::array<std::uint32_t, 64> kK = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu,
    0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u,
    0x243185beu, 0x550c7dc3u, 0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u,
    0xc19bf174u, 0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
    0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau, 0x983e5152u,
    0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
    0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu,
    0x53380d13u, 0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
    0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u, 0xd192e819u,
    0xd6990624u, 0xf40e3585u, 0x106aa070u, 0x19a4c116u, 0x1e376c08u,
    0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu,
    0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u};

inline std::uint32_t rotr(std::uint32_t x, std::uint32_t n) noexcept {
  return (x >> n) | (x << (32 - n));
}

inline std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

}  // namespace

Sha256Midstate Sha256Core::midstate() const {
  if (buffered_ != 0) {
    throw common::CryptoError("Sha256: midstate requires a block boundary");
  }
  return {state_, total_bytes_};
}

void Sha256Core::restore(const Sha256Midstate& mid) {
  if (mid.total_bytes % 64 != 0) {
    throw common::CryptoError("Sha256: midstate byte count not block-aligned");
  }
  state_ = mid.state;
  total_bytes_ = mid.total_bytes;
  buffered_ = 0;
}

void Sha256Core::reset() {
  state_ = iv();
  buffered_ = 0;
  total_bytes_ = 0;
  buffer_.fill(0);
}

void Sha256Core::process_block(const std::uint8_t* block) noexcept {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) w[i] = load_be32(block + 4 * i);
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kK[static_cast<std::size_t>(i)] +
                             w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256Core::update(BytesView data) {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset += take;
    if (buffered_ == 64) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

Bytes Sha256Core::finish() {
  const std::uint64_t bit_len = total_bytes_ * 8;
  const std::uint8_t pad_byte = 0x80;
  update(BytesView(&pad_byte, 1));
  static constexpr std::uint8_t kZero[64] = {};
  while (buffered_ != 56) {
    const std::size_t gap = buffered_ < 56 ? 56 - buffered_ : 64 - buffered_;
    update(BytesView(kZero, gap));
  }
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
  }
  update(BytesView(len_be, 8));

  Bytes out(digest_size());
  for (std::size_t i = 0; i < digest_size() / 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      out[4 * i + j] = static_cast<std::uint8_t>(state_[i] >> (8 * (3 - j)));
    }
  }
  reset();
  return out;
}

}  // namespace tpnr::crypto
