// The four §3 "bridging the missing link" solutions. All four make the
// user and the provider agree on the uploaded object's digest in a way that
// can be re-examined when a dispute arises; they differ on whether a third
// authority certified (TAC) escrow and/or secret key sharing (SKS) is used:
//
//   §3.1 kPlain  — signatures exchanged directly (MSU to provider, MSP to user)
//   §3.2 kSks    — the agreed digest is Shamir-split between the two parties
//   §3.3 kTac    — MSU and MSP are deposited with the TAC
//   §3.4 kTacSks — both digests go to the TAC, which verifies and
//                  redistributes SKS shares
//
// Every operation is cost-metered (messages, bytes, crypto ops) so the
// bench can compare the schemes quantitatively.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "crypto/shamir.h"
#include "pki/identity.h"
#include "providers/platform.h"

namespace tpnr::bridge {

using common::Bytes;
using common::BytesView;

enum class SchemeKind { kPlain, kSks, kTac, kTacSks };
std::string scheme_name(SchemeKind kind);

/// Accumulated protocol cost of an operation or a whole session.
struct Costs {
  std::uint64_t messages = 0;       ///< direct user<->provider messages
  std::uint64_t tac_messages = 0;   ///< messages involving the TAC
  std::uint64_t bytes = 0;          ///< payload bytes moved
  std::uint64_t signatures = 0;     ///< RSA signatures created
  std::uint64_t verifications = 0;  ///< RSA verifications performed
  std::uint64_t hashes = 0;         ///< digest computations
  std::uint64_t sks_ops = 0;        ///< Shamir split/combine calls

  Costs& operator+=(const Costs& other);
};

struct BridgeUploadResult {
  bool accepted = false;
  std::string detail;
  Costs costs;
};

struct BridgeDownloadResult {
  bool ok = false;            ///< transport-level success
  bool integrity_ok = false;  ///< digest check passed
  Bytes data;
  std::string detail;
  Costs costs;
};

enum class Verdict {
  kDataIntact,     ///< served data matches the agreed digest
  kProviderFault,  ///< provider cannot produce data matching the agreement
  kUserFault,      ///< user's claim contradicts valid evidence
  kInconclusive,   ///< evidence missing or unverifiable (the §3.1 gap)
};
std::string verdict_name(Verdict verdict);

struct DisputeOutcome {
  Verdict verdict = Verdict::kInconclusive;
  std::string rationale;
  Costs costs;
};

/// Base: wires a user, a provider identity and a platform together and
/// keeps per-party evidence stores.
class BridgingScheme {
 public:
  BridgingScheme(pki::Identity& user, pki::Identity& provider,
                 providers::CloudPlatform& platform, crypto::Drbg& rng);
  virtual ~BridgingScheme() = default;

  [[nodiscard]] virtual SchemeKind kind() const = 0;

  /// Uploading session per the scheme's step list.
  virtual BridgeUploadResult upload(const std::string& key,
                                    BytesView data) = 0;

  /// Downloading session: fetch + scheme-specific integrity verdict.
  virtual BridgeDownloadResult download(const std::string& key) = 0;

  /// Dispute: an arbitrator examines the evidence both sides (and the TAC,
  /// where present) can produce, re-fetches the object, and rules.
  /// `user_claims_tamper` distinguishes honest dispute from the §2.4
  /// blackmail scenario in the rationale.
  virtual DisputeOutcome dispute(const std::string& key,
                                 bool user_claims_tamper) = 0;

 protected:
  pki::Identity* user_;
  pki::Identity* provider_;
  providers::CloudPlatform* platform_;
  crypto::Drbg* rng_;
};

/// Factory covering all four schemes. `tac` may be nullptr for kPlain/kSks.
std::unique_ptr<BridgingScheme> make_scheme(
    SchemeKind kind, pki::Identity& user, pki::Identity& provider,
    providers::CloudPlatform& platform, crypto::Drbg& rng,
    pki::Identity* tac);

}  // namespace tpnr::bridge
