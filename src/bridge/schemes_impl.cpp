#include "bridge/schemes_impl.h"

#include "common/error.h"
#include "crypto/hash.h"

namespace tpnr::bridge {

namespace {

/// Arbitration core shared by all schemes once the agreed digest has been
/// established from evidence: re-fetch and compare.
DisputeOutcome rule_on_digest(providers::CloudPlatform& platform,
                              const std::string& user, const std::string& key,
                              const Bytes& agreed_md5,
                              bool user_claims_tamper, Costs costs) {
  auto fetched = platform.download(user, key);
  costs.messages += 2;  // arbitrator's request + provider's response
  costs.hashes += 1;
  DisputeOutcome outcome;
  if (!fetched.ok) {
    outcome.verdict = Verdict::kProviderFault;
    outcome.rationale = "provider cannot produce the object: " +
                        fetched.detail;
    outcome.costs = costs;
    return outcome;
  }
  const Bytes current_md5 = crypto::md5(fetched.data);
  if (current_md5 == agreed_md5) {
    outcome.verdict =
        user_claims_tamper ? Verdict::kUserFault : Verdict::kDataIntact;
    outcome.rationale = user_claims_tamper
                            ? "served data matches the agreed digest; the "
                              "tamper claim is false (blackmail attempt)"
                            : "served data matches the agreed digest";
  } else {
    outcome.verdict = Verdict::kProviderFault;
    outcome.rationale =
        "served data does not match the digest both parties agreed on";
  }
  outcome.costs = costs;
  return outcome;
}

}  // namespace

// ---------------------------------------------------------------- §3.1 ----

BridgeUploadResult PlainSignatureScheme::upload(const std::string& key,
                                                BytesView data) {
  BridgeUploadResult result;
  Costs& c = result.costs;

  // 1: user sends data + MD5 + MD5-Signature-by-User (MSU).
  const Bytes digest = crypto::md5(data);
  c.hashes += 1;
  const Bytes msu = user_->sign(digest);
  c.signatures += 1;
  c.messages += 1;
  c.bytes += data.size() + digest.size() + msu.size();

  // 2: provider verifies the data against the MD5...
  const auto receipt = platform_->upload(user_->id(), key, data, digest);
  c.hashes += 1;
  if (!receipt.accepted) {
    result.detail = receipt.detail;
    return result;
  }
  // ...and verifies MSU before accepting it as evidence.
  if (!pki::Identity::verify(user_->public_key(), digest, msu)) {
    result.detail = "provider rejected MSU signature";
    return result;
  }
  c.verifications += 1;

  // Provider answers with MD5 + MD5-Signature-by-Provider (MSP).
  const Bytes msp = provider_->sign(digest);
  c.signatures += 1;
  c.messages += 1;
  c.bytes += digest.size() + msp.size();
  if (!pki::Identity::verify(provider_->public_key(), digest, msp)) {
    result.detail = "user rejected MSP signature";
    return result;
  }
  c.verifications += 1;

  // 3: MSU stays at the provider side, MSP at the user side.
  user_evidence_[key] = Evidence{digest, msp};
  provider_evidence_[key] = Evidence{digest, msu};
  result.accepted = true;
  return result;
}

BridgeDownloadResult PlainSignatureScheme::download(const std::string& key) {
  BridgeDownloadResult result;
  Costs& c = result.costs;

  // 1: request with authentication code; 2: provider returns data + MD5 +
  // MSP (the platform's own auth plays the authentication-code role).
  c.messages += 2;
  auto fetched = platform_->download(user_->id(), key);
  if (!fetched.ok) {
    result.detail = fetched.detail;
    return result;
  }
  c.bytes += fetched.data.size() + fetched.md5_returned.size();

  // 3: user verifies the data through the MD5 — against the digest they
  // remember agreeing on, which is the whole point of keeping evidence.
  const auto evidence = user_evidence_.find(key);
  const Bytes current = crypto::md5(fetched.data);
  c.hashes += 1;
  result.ok = true;
  result.integrity_ok =
      evidence != user_evidence_.end() && current == evidence->second.md5;
  if (!result.integrity_ok) {
    result.detail = evidence == user_evidence_.end()
                        ? "no local evidence for this object"
                        : "digest mismatch against agreed MD5";
  }
  result.data = std::move(fetched.data);
  return result;
}

DisputeOutcome PlainSignatureScheme::dispute(const std::string& key,
                                             bool user_claims_tamper) {
  Costs costs;
  const auto user_side = user_evidence_.find(key);
  const auto provider_side = provider_evidence_.find(key);

  // Each side presents the digest + the opposite party's signature over it.
  const bool user_ok =
      user_side != user_evidence_.end() &&
      pki::Identity::verify(provider_->public_key(), user_side->second.md5,
                            user_side->second.peer_signature);
  const bool provider_ok =
      provider_side != provider_evidence_.end() &&
      pki::Identity::verify(user_->public_key(), provider_side->second.md5,
                            provider_side->second.peer_signature);
  costs.verifications += 2;
  costs.messages += 2;

  if (!user_ok && !provider_ok) {
    return {Verdict::kInconclusive,
            "neither side can produce verifiable evidence", costs};
  }
  if (user_ok && provider_ok &&
      user_side->second.md5 != provider_side->second.md5) {
    return {Verdict::kInconclusive,
            "both signatures verify but over different digests", costs};
  }
  const Bytes& agreed =
      user_ok ? user_side->second.md5 : provider_side->second.md5;
  return rule_on_digest(*platform_, user_->id(), key, agreed,
                        user_claims_tamper, costs);
}

// ---------------------------------------------------------------- §3.2 ----

BridgeUploadResult SksScheme::upload(const std::string& key, BytesView data) {
  BridgeUploadResult result;
  Costs& c = result.costs;

  // 1: user sends data with MD5; 2: provider verifies and echoes the MD5.
  const Bytes digest = crypto::md5(data);
  c.hashes += 1;
  c.messages += 1;
  c.bytes += data.size() + digest.size();
  const auto receipt = platform_->upload(user_->id(), key, data, digest);
  c.hashes += 1;
  if (!receipt.accepted) {
    result.detail = receipt.detail;
    return result;
  }
  c.messages += 1;
  c.bytes += digest.size();

  // 3: the parties share the MD5 with SKS (2-of-2).
  auto shares = crypto::shamir_split(digest, 2, 2, *rng_);
  c.sks_ops += 1;
  c.messages += 1;  // share hand-off
  user_shares_[key] = shares[0];
  provider_shares_[key] = shares[1];
  user_digest_cache_[key] = digest;
  result.accepted = true;
  return result;
}

BridgeDownloadResult SksScheme::download(const std::string& key) {
  BridgeDownloadResult result;
  Costs& c = result.costs;
  c.messages += 2;
  auto fetched = platform_->download(user_->id(), key);
  if (!fetched.ok) {
    result.detail = fetched.detail;
    return result;
  }
  c.bytes += fetched.data.size() + fetched.md5_returned.size();
  const auto cached = user_digest_cache_.find(key);
  const Bytes current = crypto::md5(fetched.data);
  c.hashes += 1;
  result.ok = true;
  result.integrity_ok =
      cached != user_digest_cache_.end() && current == cached->second;
  if (!result.integrity_ok) result.detail = "digest mismatch";
  result.data = std::move(fetched.data);
  return result;
}

void SksScheme::corrupt_provider_share(const std::string& key) {
  const auto it = provider_shares_.find(key);
  if (it != provider_shares_.end() && !it->second.data.empty()) {
    it->second.data[0] ^= 0x55;
  }
}

DisputeOutcome SksScheme::dispute(const std::string& key,
                                  bool user_claims_tamper) {
  Costs costs;
  const auto user_share = user_shares_.find(key);
  const auto provider_share = provider_shares_.find(key);
  costs.messages += 2;
  if (user_share == user_shares_.end() ||
      provider_share == provider_shares_.end()) {
    return {Verdict::kInconclusive,
            "a party cannot produce its SKS share; the digest cannot be "
            "recovered",
            costs};
  }
  // "take the shared MD5 together, recover it".
  Bytes agreed;
  try {
    agreed = crypto::shamir_combine(
        {user_share->second, provider_share->second});
  } catch (const common::CryptoError& e) {
    return {Verdict::kInconclusive,
            std::string("share reconstruction failed: ") + e.what(), costs};
  }
  costs.sks_ops += 1;
  return rule_on_digest(*platform_, user_->id(), key, agreed,
                        user_claims_tamper, costs);
}

// ---------------------------------------------------------------- §3.3 ----

BridgeUploadResult TacScheme::upload(const std::string& key, BytesView data) {
  BridgeUploadResult result;
  Costs& c = result.costs;

  // 1: user sends data + MD5 + MSU.
  const Bytes digest = crypto::md5(data);
  c.hashes += 1;
  const Bytes msu = user_->sign(digest);
  c.signatures += 1;
  c.messages += 1;
  c.bytes += data.size() + digest.size() + msu.size();

  // 2: provider verifies and replies with MD5 + MSP.
  const auto receipt = platform_->upload(user_->id(), key, data, digest);
  c.hashes += 1;
  if (!receipt.accepted) {
    result.detail = receipt.detail;
    return result;
  }
  const Bytes msp = provider_->sign(digest);
  c.signatures += 1;
  c.messages += 1;
  c.bytes += digest.size() + msp.size();

  // 3: MSU and MSP are sent to the TAC, which verifies before escrowing.
  c.tac_messages += 2;
  if (!pki::Identity::verify(user_->public_key(), digest, msu) ||
      !pki::Identity::verify(provider_->public_key(), digest, msp)) {
    result.detail = "TAC rejected the signatures";
    return result;
  }
  c.verifications += 2;
  escrow_[key] = EscrowRecord{digest, msu, msp};
  user_digest_cache_[key] = digest;
  result.accepted = true;
  return result;
}

BridgeDownloadResult TacScheme::download(const std::string& key) {
  BridgeDownloadResult result;
  Costs& c = result.costs;
  c.messages += 2;
  auto fetched = platform_->download(user_->id(), key);
  if (!fetched.ok) {
    result.detail = fetched.detail;
    return result;
  }
  c.bytes += fetched.data.size() + fetched.md5_returned.size();
  const auto cached = user_digest_cache_.find(key);
  const Bytes current = crypto::md5(fetched.data);
  c.hashes += 1;
  result.ok = true;
  result.integrity_ok =
      cached != user_digest_cache_.end() && current == cached->second;
  if (!result.integrity_ok) result.detail = "digest mismatch";
  result.data = std::move(fetched.data);
  return result;
}

DisputeOutcome TacScheme::dispute(const std::string& key,
                                  bool user_claims_tamper) {
  Costs costs;
  costs.tac_messages += 2;  // both parties query the TAC
  const auto record = escrow_.find(key);
  if (record == escrow_.end()) {
    return {Verdict::kInconclusive, "TAC holds no record for this object",
            costs};
  }
  // The TAC's record is self-certifying: both signatures over the digest.
  const bool msu_ok = pki::Identity::verify(user_->public_key(),
                                            record->second.md5,
                                            record->second.msu);
  const bool msp_ok = pki::Identity::verify(provider_->public_key(),
                                            record->second.md5,
                                            record->second.msp);
  costs.verifications += 2;
  if (!msu_ok || !msp_ok) {
    return {Verdict::kInconclusive, "TAC record fails verification", costs};
  }
  return rule_on_digest(*platform_, user_->id(), key, record->second.md5,
                        user_claims_tamper, costs);
}

// ---------------------------------------------------------------- §3.4 ----

BridgeUploadResult TacSksScheme::upload(const std::string& key,
                                        BytesView data) {
  BridgeUploadResult result;
  Costs& c = result.costs;

  // 1: user sends data with MD5; 2: provider verifies.
  const Bytes digest = crypto::md5(data);
  c.hashes += 1;
  c.messages += 1;
  c.bytes += data.size() + digest.size();
  const auto receipt = platform_->upload(user_->id(), key, data, digest);
  c.hashes += 1;
  if (!receipt.accepted) {
    result.detail = receipt.detail;
    return result;
  }

  // 3: both the user and the provider send their MD5 to the TAC.
  c.tac_messages += 2;
  const Bytes user_md5 = digest;
  const Bytes provider_md5 = crypto::md5(data);  // provider's own computation
  c.hashes += 1;

  // 4: TAC verifies the two values match, then distributes shares by SKS.
  if (user_md5 != provider_md5) {
    result.detail = "TAC: digests from the two parties do not match";
    return result;
  }
  auto shares = crypto::shamir_split(digest, 2, 2, *rng_);
  c.sks_ops += 1;
  c.tac_messages += 2;  // share distribution
  user_shares_[key] = shares[0];
  provider_shares_[key] = shares[1];
  tac_records_[key] = digest;
  user_digest_cache_[key] = digest;
  result.accepted = true;
  return result;
}

BridgeDownloadResult TacSksScheme::download(const std::string& key) {
  BridgeDownloadResult result;
  Costs& c = result.costs;
  c.messages += 2;
  auto fetched = platform_->download(user_->id(), key);
  if (!fetched.ok) {
    result.detail = fetched.detail;
    return result;
  }
  c.bytes += fetched.data.size() + fetched.md5_returned.size();
  const auto cached = user_digest_cache_.find(key);
  const Bytes current = crypto::md5(fetched.data);
  c.hashes += 1;
  result.ok = true;
  result.integrity_ok =
      cached != user_digest_cache_.end() && current == cached->second;
  if (!result.integrity_ok) result.detail = "digest mismatch";
  result.data = std::move(fetched.data);
  return result;
}

DisputeOutcome TacSksScheme::dispute(const std::string& key,
                                     bool user_claims_tamper) {
  Costs costs;
  costs.messages += 2;
  const auto user_share = user_shares_.find(key);
  const auto provider_share = provider_shares_.find(key);

  // First try the two-party path: check the shared MD5 together.
  if (user_share != user_shares_.end() &&
      provider_share != provider_shares_.end()) {
    try {
      const Bytes agreed = crypto::shamir_combine(
          {user_share->second, provider_share->second});
      costs.sks_ops += 1;
      return rule_on_digest(*platform_, user_->id(), key, agreed,
                            user_claims_tamper, costs);
    } catch (const common::CryptoError&) {
      // fall through to the TAC
    }
  }
  // "If the disputation cannot be resolved, they can seek further help from
  // the TAC for the MD5."
  costs.tac_messages += 2;
  const auto record = tac_records_.find(key);
  if (record == tac_records_.end()) {
    return {Verdict::kInconclusive,
            "shares unavailable and TAC holds no record", costs};
  }
  return rule_on_digest(*platform_, user_->id(), key, record->second,
                        user_claims_tamper, costs);
}

}  // namespace tpnr::bridge
