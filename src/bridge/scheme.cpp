#include "bridge/scheme.h"

#include "bridge/schemes_impl.h"

#include "common/error.h"

namespace tpnr::bridge {

std::string scheme_name(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kPlain:
      return "3.1-plain-signatures";
    case SchemeKind::kSks:
      return "3.2-sks-only";
    case SchemeKind::kTac:
      return "3.3-tac-only";
    case SchemeKind::kTacSks:
      return "3.4-tac+sks";
  }
  return "unknown";
}

std::string verdict_name(Verdict verdict) {
  switch (verdict) {
    case Verdict::kDataIntact:
      return "data-intact";
    case Verdict::kProviderFault:
      return "provider-fault";
    case Verdict::kUserFault:
      return "user-fault";
    case Verdict::kInconclusive:
      return "inconclusive";
  }
  return "unknown";
}

Costs& Costs::operator+=(const Costs& other) {
  messages += other.messages;
  tac_messages += other.tac_messages;
  bytes += other.bytes;
  signatures += other.signatures;
  verifications += other.verifications;
  hashes += other.hashes;
  sks_ops += other.sks_ops;
  return *this;
}

BridgingScheme::BridgingScheme(pki::Identity& user, pki::Identity& provider,
                               providers::CloudPlatform& platform,
                               crypto::Drbg& rng)
    : user_(&user), provider_(&provider), platform_(&platform), rng_(&rng) {}

std::unique_ptr<BridgingScheme> make_scheme(SchemeKind kind,
                                            pki::Identity& user,
                                            pki::Identity& provider,
                                            providers::CloudPlatform& platform,
                                            crypto::Drbg& rng,
                                            pki::Identity* tac) {
  switch (kind) {
    case SchemeKind::kPlain:
      return std::make_unique<PlainSignatureScheme>(user, provider, platform,
                                                    rng);
    case SchemeKind::kSks:
      return std::make_unique<SksScheme>(user, provider, platform, rng);
    case SchemeKind::kTac:
      if (tac == nullptr) {
        throw common::ProtocolError("make_scheme: kTac needs a TAC identity");
      }
      return std::make_unique<TacScheme>(user, provider, platform, rng, *tac);
    case SchemeKind::kTacSks:
      if (tac == nullptr) {
        throw common::ProtocolError(
            "make_scheme: kTacSks needs a TAC identity");
      }
      return std::make_unique<TacSksScheme>(user, provider, platform, rng,
                                            *tac);
  }
  throw common::ProtocolError("make_scheme: unknown kind");
}

}  // namespace tpnr::bridge
