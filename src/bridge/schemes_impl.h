// Concrete implementations of the four §3 bridging schemes. Split from
// scheme.h so the public surface stays small; tests may include this header
// to poke at evidence stores directly (e.g. to model a party destroying its
// evidence).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "bridge/scheme.h"
#include "crypto/shamir.h"

namespace tpnr::bridge {

/// §3.1: neither TAC nor SKS — user keeps MSP, provider keeps MSU.
class PlainSignatureScheme final : public BridgingScheme {
 public:
  using BridgingScheme::BridgingScheme;

  [[nodiscard]] SchemeKind kind() const override { return SchemeKind::kPlain; }
  BridgeUploadResult upload(const std::string& key, BytesView data) override;
  BridgeDownloadResult download(const std::string& key) override;
  DisputeOutcome dispute(const std::string& key,
                         bool user_claims_tamper) override;

  /// Evidence a party holds: agreed digest + the OTHER party's signature.
  struct Evidence {
    Bytes md5;
    Bytes peer_signature;
  };
  /// Test hook: simulate a party losing/destroying its evidence.
  void erase_user_evidence(const std::string& key) {
    user_evidence_.erase(key);
  }
  void erase_provider_evidence(const std::string& key) {
    provider_evidence_.erase(key);
  }

 private:
  std::map<std::string, Evidence> user_evidence_;      // holds MSP
  std::map<std::string, Evidence> provider_evidence_;  // holds MSU
};

/// §3.2: SKS without TAC — the agreed digest is 2-of-2 Shamir-split.
class SksScheme final : public BridgingScheme {
 public:
  using BridgingScheme::BridgingScheme;

  [[nodiscard]] SchemeKind kind() const override { return SchemeKind::kSks; }
  BridgeUploadResult upload(const std::string& key, BytesView data) override;
  BridgeDownloadResult download(const std::string& key) override;
  DisputeOutcome dispute(const std::string& key,
                         bool user_claims_tamper) override;

  void erase_user_share(const std::string& key) { user_shares_.erase(key); }
  /// Test hook: a malicious party presenting a doctored share.
  void corrupt_provider_share(const std::string& key);

 private:
  std::map<std::string, crypto::ShamirShare> user_shares_;
  std::map<std::string, crypto::ShamirShare> provider_shares_;
  // The downloading session still needs the plain digest for the integrity
  // check; each party may cache it, but dispute resolution uses shares only.
  std::map<std::string, Bytes> user_digest_cache_;
};

/// §3.3: TAC without SKS — MSU and MSP are escrowed with the TAC.
class TacScheme final : public BridgingScheme {
 public:
  TacScheme(pki::Identity& user, pki::Identity& provider,
            providers::CloudPlatform& platform, crypto::Drbg& rng,
            pki::Identity& tac)
      : BridgingScheme(user, provider, platform, rng), tac_(&tac) {}

  [[nodiscard]] SchemeKind kind() const override { return SchemeKind::kTac; }
  BridgeUploadResult upload(const std::string& key, BytesView data) override;
  BridgeDownloadResult download(const std::string& key) override;
  DisputeOutcome dispute(const std::string& key,
                         bool user_claims_tamper) override;

 private:
  struct EscrowRecord {
    Bytes md5;
    Bytes msu;  ///< user's signature over the digest
    Bytes msp;  ///< provider's signature over the digest
  };
  pki::Identity* tac_;
  std::map<std::string, EscrowRecord> escrow_;
  std::map<std::string, Bytes> user_digest_cache_;
};

/// §3.4: both — TAC verifies the two digests match, then distributes SKS
/// shares back to the parties and keeps the agreement on file.
class TacSksScheme final : public BridgingScheme {
 public:
  TacSksScheme(pki::Identity& user, pki::Identity& provider,
               providers::CloudPlatform& platform, crypto::Drbg& rng,
               pki::Identity& tac)
      : BridgingScheme(user, provider, platform, rng), tac_(&tac) {}

  [[nodiscard]] SchemeKind kind() const override {
    return SchemeKind::kTacSks;
  }
  BridgeUploadResult upload(const std::string& key, BytesView data) override;
  BridgeDownloadResult download(const std::string& key) override;
  DisputeOutcome dispute(const std::string& key,
                         bool user_claims_tamper) override;

  void erase_user_share(const std::string& key) { user_shares_.erase(key); }
  void erase_provider_share(const std::string& key) {
    provider_shares_.erase(key);
  }

 private:
  pki::Identity* tac_;
  std::map<std::string, Bytes> tac_records_;  ///< agreed digest on file
  std::map<std::string, crypto::ShamirShare> user_shares_;
  std::map<std::string, crypto::ShamirShare> provider_shares_;
  std::map<std::string, Bytes> user_digest_cache_;
};

}  // namespace tpnr::bridge
