#include "nr/message.h"

#include "common/error.h"
#include "common/serial.h"

namespace tpnr::nr {

std::string msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::kStoreRequest:
      return "store-request";
    case MsgType::kStoreReceipt:
      return "store-receipt";
    case MsgType::kFetchRequest:
      return "fetch-request";
    case MsgType::kFetchResponse:
      return "fetch-response";
    case MsgType::kChunkRequest:
      return "chunk-request";
    case MsgType::kChunkResponse:
      return "chunk-response";
    case MsgType::kAbortRequest:
      return "abort-request";
    case MsgType::kAbortAccept:
      return "abort-accept";
    case MsgType::kAbortReject:
      return "abort-reject";
    case MsgType::kAbortError:
      return "abort-error";
    case MsgType::kResolveRequest:
      return "resolve-request";
    case MsgType::kResolveQuery:
      return "resolve-query";
    case MsgType::kResolveResponse:
      return "resolve-response";
    case MsgType::kResolveVerdict:
      return "resolve-verdict";
    case MsgType::kDynStoreRequest:
      return "dyn-store-request";
    case MsgType::kDynStoreReceipt:
      return "dyn-store-receipt";
    case MsgType::kMutateRequest:
      return "mutate-request";
    case MsgType::kMutateReceipt:
      return "mutate-receipt";
    case MsgType::kMutateError:
      return "mutate-error";
    case MsgType::kAggChallenge:
      return "agg-challenge";
    case MsgType::kAggResponse:
      return "agg-response";
    case MsgType::kConsOpRequest:
      return "cons-op-request";
    case MsgType::kConsCommit:
      return "cons-commit";
    case MsgType::kConsOpError:
      return "cons-op-error";
    case MsgType::kViewQuery:
      return "view-query";
    case MsgType::kViewUpdate:
      return "view-update";
    case MsgType::kGossipViews:
      return "gossip-views";
    case MsgType::kForkReport:
      return "fork-report";
    case MsgType::kDirLookup:
      return "dir-lookup";
    case MsgType::kDirReply:
      return "dir-reply";
  }
  return "unknown";
}

Bytes MessageHeader::encode() const {
  common::BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(flag));
  w.str(sender);
  w.str(recipient);
  w.str(ttp);
  w.str(txn_id);
  w.u64(seq_no);
  w.bytes(nonce);
  w.i64(time_limit);
  w.bytes(data_hash);
  return w.take();
}

MessageHeader MessageHeader::decode(BytesView data) {
  common::BinaryReader r(data);
  MessageHeader h;
  h.flag = static_cast<MsgType>(r.u8());
  h.sender = r.str();
  h.recipient = r.str();
  h.ttp = r.str();
  h.txn_id = r.str();
  h.seq_no = r.u64();
  h.nonce = r.bytes();
  h.time_limit = r.i64();
  h.data_hash = r.bytes();
  r.expect_done();
  return h;
}

Bytes NrMessage::encode() const {
  common::BinaryWriter w;
  w.bytes(header.encode());
  w.bytes(payload);
  w.bytes(evidence);
  return w.take();
}

NrMessage NrMessage::decode(BytesView data) {
  common::BinaryReader r(data);
  NrMessage m;
  m.header = MessageHeader::decode(r.bytes());
  m.payload = r.bytes();
  m.evidence = r.bytes();
  r.expect_done();
  return m;
}

}  // namespace tpnr::nr
