#include "nr/directory.h"

#include "common/serial.h"

namespace tpnr::nr {

DirectoryActor::DirectoryActor(std::string id, net::Network& network,
                               pki::Identity& identity, crypto::Drbg& rng,
                               const runtime::Placement& placement)
    : NrActor(std::move(id), network, identity, rng),
      placement_(&placement) {}

void DirectoryActor::register_provider_key(const std::string& provider,
                                           crypto::RsaPublicKey key) {
  provider_keys_[provider] = std::move(key);
}

void DirectoryActor::on_message(const NrMessage& message) {
  if (message.header.flag != MsgType::kDirLookup) return;
  std::string object_key;
  try {
    common::BinaryReader r(message.payload);
    object_key = r.str();
    r.expect_done();
  } catch (const common::SerialError&) {
    ++stats_.rejected_bad_hash;
    return;
  }
  if (placement_->empty()) {
    ++lookups_unroutable_;
    return;
  }
  const std::string& owner = placement_->owner(object_key);
  const auto key_it = provider_keys_.find(owner);
  if (key_it == provider_keys_.end()) {
    ++lookups_unroutable_;
    return;
  }
  ++lookups_served_;

  common::BinaryWriter payload;
  payload.str(object_key);
  payload.str(owner);
  payload.bytes(key_it->second.encode());
  payload.u64(placement_->version());

  const MessageHeader& h = message.header;
  NrMessage reply;
  reply.header = next_header(MsgType::kDirReply, h.sender, /*ttp=*/"",
                             h.txn_id, h.data_hash,
                             network_->now() + 10 * common::kSecond);
  reply.payload = payload.take();
  send(h.sender, std::move(reply));
}

}  // namespace tpnr::nr
