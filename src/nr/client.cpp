#include "nr/client.h"

#include <algorithm>

#include "common/serial.h"
#include "nr/ttp.h"
#include "runtime/crypto_service.h"

namespace tpnr::nr {

namespace {

/// Packed history entry: (at << 8) | state. SimTime is microseconds, so the
/// 55 usable bits cover ~1100 years of sim time.
std::int64_t pack_history(common::SimTime at, TxnState state) {
  return (at << 8) | static_cast<std::int64_t>(state);
}

}  // namespace

std::string txn_state_name(TxnState state) {
  switch (state) {
    case TxnState::kStorePending:
      return "store-pending";
    case TxnState::kCompleted:
      return "completed";
    case TxnState::kAbortPending:
      return "abort-pending";
    case TxnState::kAborted:
      return "aborted";
    case TxnState::kAbortRejected:
      return "abort-rejected";
    case TxnState::kAbortErrored:
      return "abort-errored";
    case TxnState::kResolvePending:
      return "resolve-pending";
    case TxnState::kResolveRetrying:
      return "resolve-retrying";
    case TxnState::kResolvedCompleted:
      return "resolved-completed";
    case TxnState::kResolvedFailed:
      return "resolved-failed";
    case TxnState::kTtpUnreachable:
      return "ttp-unreachable";
    case TxnState::kTimedOut:
      return "timed-out";
  }
  return "unknown";
}

ClientActor::ClientActor(std::string id, net::Network& network,
                         pki::Identity& identity, crypto::Drbg& rng,
                         ClientOptions options)
    : NrActor(std::move(id), network, identity, rng),
      options_(options),
      txn_ids_(rng.next_u64()) {}

const ClientActor::Txn* ClientActor::transaction(
    const std::string& txn_id) const {
  const auto it = txns_.find(txn_id);
  return it == txns_.end() ? nullptr : &it->second;
}

std::optional<std::pair<MessageHeader, OpenedEvidence>>
ClientActor::present_nrr(const std::string& txn_id) const {
  const auto it = txns_.find(txn_id);
  if (it == txns_.end() || !it->second.nrr || !it->second.nrr_header) {
    return std::nullopt;
  }
  return std::make_pair(*it->second.nrr_header, *it->second.nrr);
}

std::string ClientActor::store(const std::string& provider,
                               const std::string& ttp,
                               const std::string& object_key, BytesView data) {
  return store_impl(provider, ttp, object_key, data, /*chunk_size=*/0);
}

std::string ClientActor::store_chunked(const std::string& provider,
                                       const std::string& ttp,
                                       const std::string& object_key,
                                       BytesView data,
                                       std::size_t chunk_size) {
  if (chunk_size == 0) {
    throw common::ProtocolError(
        "ClientActor::store_chunked: chunk_size must be > 0");
  }
  return store_impl(provider, ttp, object_key, data, chunk_size);
}

void ClientActor::set_state(Txn& txn, TxnState state) {
  txn.state = state;
  txn.history.push_back(pack_history(network_->now(), state));
  if (txn_state_terminal(state)) txn.finished_at = network_->now();
}

std::string ClientActor::store_impl(const std::string& provider,
                                    const std::string& ttp,
                                    const std::string& object_key,
                                    BytesView data, std::size_t chunk_size) {
  const crypto::RsaPublicKey* provider_key = peer_key(provider);
  if (provider_key == nullptr) {
    throw common::ProtocolError("ClientActor::store: provider key unknown");
  }
  const std::string txn_id = txn_ids_.next_id("txn");
  // Partitioned-TTP override: the adjudicating instance is a deterministic
  // function of the txn id, so the respondent and the arbitrator derive the
  // same partition without coordination.
  const std::string& ttp_eff =
      ttp_partitions_.empty()
          ? ttp
          : ttp_partitions_[ttp_partition_of(
                txn_id,
                static_cast<std::uint32_t>(ttp_partitions_.size()))];
  // The agreed hash: flat digest, or the Merkle root for chunked objects.
  // The flat digest goes through the crypto batching service below; the
  // Merkle build stays inline (the tree also yields the chunk count).
  std::size_t chunk_count = 0;
  Bytes data_hash;
  if (chunk_size != 0) {
    const crypto::MerkleTree tree(data, chunk_size);
    data_hash = tree.root();
    chunk_count = tree.leaf_count();
  }

  Txn txn;
  txn.provider = provider;
  txn.ttp = ttp_eff;
  txn.object_key = object_key;
  txn.data_hash = data_hash;
  txn.chunk_size = chunk_size;
  txn.chunk_count = chunk_count;
  txn.started_at = network_->now();
  txn.history.push_back(
      pack_history(network_->now(), TxnState::kStorePending));
  // Keep the object bytes only if re-sending the NRO is allowed — the
  // retry path must rebuild the exact payload.
  if (options_.store_retries > 0) {
    txn.retry_data = common::Payload::copy_of(data);
  }
  txns_[txn_id] = std::move(txn);

  if (chunk_size == 0) {
    // Defer the agreed hash: stores submitted across the shard in the same
    // window coalesce into full SHA-256 lane dispatches. The completion
    // fills the hash and transmits; from driver code the service completes
    // before submit returns, so store() keeps its synchronous semantics.
    common::Payload object = !txns_[txn_id].retry_data.empty()
                                 ? txns_[txn_id].retry_data
                                 : common::Payload::copy_of(data);
    std::vector<runtime::DigestJob> jobs(1);
    jobs[0].message = object;
    crypto_service().submit_digests(
        std::move(jobs), [this, txn_id, object](std::vector<Bytes> digests) {
          const auto it = txns_.find(txn_id);
          if (it == txns_.end()) return;
          it->second.data_hash = std::move(digests[0]);
          transmit_store(txn_id, object);
        });
  } else {
    transmit_store(txn_id, data);
  }
  return txn_id;
}

void ClientActor::transmit_store(const std::string& txn_id, BytesView data) {
  const auto it = txns_.find(txn_id);
  if (it == txns_.end()) return;
  Txn& txn = it->second;
  const crypto::RsaPublicKey* provider_key = peer_key(txn.provider);
  if (provider_key == nullptr) return;

  // Every (re-)send carries a fresh header: new nonce/seq so the replay
  // defence stays intact, new time_limit so the deadline is live. The
  // txn_id and data_hash bind it to the same transaction; the provider
  // treats a repeated NRO for a known transaction idempotently.
  MessageHeader header =
      next_header(MsgType::kStoreRequest, txn.provider, txn.ttp, txn_id,
                  txn.data_hash, network_->now() + options_.reply_window);
  // Wrap the evidence once; the txn record and the outgoing message share
  // the same buffer.
  common::Payload evidence(make_evidence(*identity_, *provider_key, header,
                                         *rng_));
  txn.store_header = header;
  txn.store_evidence = evidence;
  ++txn.store_attempts;

  common::BinaryWriter payload;
  payload.str(txn.object_key);
  payload.bytes(data);
  payload.u32(static_cast<std::uint32_t>(txn.chunk_size));

  NrMessage message;
  message.header = std::move(header);
  message.payload = payload.take();
  message.evidence = std::move(evidence);
  send(txn.provider, std::move(message));
  arm_receipt_timer(txn_id, txn.store_attempts);
}

void ClientActor::send_store(const std::string& txn_id) {
  const auto it = txns_.find(txn_id);
  if (it == txns_.end() || it->second.retry_data.empty()) return;
  if (it->second.state != TxnState::kStorePending) {
    set_state(it->second, TxnState::kStorePending);
  }
  transmit_store(txn_id, it->second.retry_data);
}

void ClientActor::arm_receipt_timer(const std::string& txn_id,
                                    std::size_t attempt) {
  // §4.3: "if Alice has sent the NRO and has not received the NRR before
  // the time out, she can initiate the Resolve mode." With retries
  // configured she first re-sends the NRO (linear backoff) and escalates
  // only once the budget is spent.
  const common::SimTime wait =
      options_.receipt_timeout +
      options_.store_retry_backoff * static_cast<common::SimTime>(attempt - 1);
  network_->schedule(wait, [this, txn_id, attempt] {
    const auto it = txns_.find(txn_id);
    // Guard on state AND attempt: a timer firing after the NRR arrived (or
    // the txn aborted/resolved) must do nothing, and a stale timer from a
    // superseded attempt must not double-fire the escalation.
    if (it == txns_.end() || it->second.state != TxnState::kStorePending ||
        it->second.store_attempts != attempt) {
      return;
    }
    if (attempt <= options_.store_retries) {
      send_store(txn_id);
      return;
    }
    if (options_.auto_resolve && !it->second.ttp.empty()) {
      resolve(txn_id, "no NRR before timeout");
    } else {
      set_state(it->second, TxnState::kTimedOut);
    }
  });
}

void ClientActor::abort(const std::string& txn_id) {
  const auto it = txns_.find(txn_id);
  if (it == txns_.end()) return;
  Txn& txn = it->second;
  set_state(txn, TxnState::kAbortPending);

  // "Alice is only required to send Bob the transaction ID with the NRO."
  common::BinaryWriter payload;
  payload.bytes(txn.store_header.encode());
  payload.bytes(txn.store_evidence);

  NrMessage message;
  message.header =
      next_header(MsgType::kAbortRequest, txn.provider, txn.ttp, txn_id,
                  txn.data_hash, network_->now() + options_.reply_window);
  message.payload = payload.take();
  send(txn.provider, std::move(message));
}

void ClientActor::fetch(const std::string& txn_id) {
  const auto it = txns_.find(txn_id);
  if (it == txns_.end()) return;
  Txn& txn = it->second;

  common::BinaryWriter payload;
  payload.str(txn.object_key);

  NrMessage message;
  message.header =
      next_header(MsgType::kFetchRequest, txn.provider, txn.ttp, txn_id,
                  txn.data_hash, network_->now() + options_.reply_window);
  message.payload = payload.take();
  send(txn.provider, std::move(message));
}

void ClientActor::audit(const std::string& txn_id, std::size_t chunk_index) {
  const auto it = txns_.find(txn_id);
  if (it == txns_.end() || it->second.chunk_size == 0) return;
  Txn& txn = it->second;

  common::BinaryWriter payload;
  payload.u64(chunk_index);

  NrMessage message;
  message.header =
      next_header(MsgType::kChunkRequest, txn.provider, txn.ttp, txn_id,
                  txn.data_hash, network_->now() + options_.reply_window);
  message.payload = payload.take();
  send(txn.provider, std::move(message));
}

void ClientActor::audit_sample(const std::string& txn_id, std::size_t count) {
  const auto it = txns_.find(txn_id);
  if (it == txns_.end() || it->second.chunk_count == 0) return;
  for (std::size_t i = 0; i < count; ++i) {
    audit(txn_id, static_cast<std::size_t>(
                      rng_->uniform(it->second.chunk_count)));
  }
}

void ClientActor::resolve(const std::string& txn_id,
                          const std::string& report) {
  const auto it = txns_.find(txn_id);
  if (it == txns_.end()) return;
  Txn& txn = it->second;
  if (txn.ttp.empty()) return;

  // "Alice sends the transaction ID, the NRO, and a report of anomalies to
  // TTP." The original header travels too, plus Alice's signature over it
  // so the TTP can check genuineness without opening the (Bob-encrypted)
  // NRO.
  common::BinaryWriter payload;
  payload.str(txn.provider);
  payload.str(report);
  payload.bytes(txn.store_header.encode());
  payload.bytes(identity_->sign(txn.store_header.encode()));
  payload.bytes(txn.store_evidence);

  NrMessage message;
  message.header =
      next_header(MsgType::kResolveRequest, txn.ttp, txn.ttp, txn_id,
                  txn.data_hash, network_->now() + options_.reply_window);
  message.payload = payload.take();

  // Only an UNSETTLED transaction escalates: a resolve of a transaction
  // that already completed or aborted still sends the request (the TTP
  // will answer and log it), but must not un-settle local state — a late
  // verdict for it is ignored by the state guard in
  // handle_resolve_verdict. This is what keeps a stray timer or caller
  // from turning held evidence into a contradictory outcome.
  switch (txn.state) {
    case TxnState::kStorePending:
    case TxnState::kResolvePending:
    case TxnState::kResolveRetrying:
    case TxnState::kTimedOut:
      if (txn.state != TxnState::kResolvePending) {
        set_state(txn, TxnState::kResolvePending);
      }
      ++txn.resolve_attempts;
      send(txn.ttp, std::move(message));
      arm_verdict_timer(txn_id, txn.resolve_attempts);
      break;
    default:
      send(txn.ttp, std::move(message));
      break;
  }
}

void ClientActor::arm_verdict_timer(const std::string& txn_id,
                                    std::size_t attempt) {
  if (options_.resolve_retries == 0) return;  // paper mode: wait forever
  const common::SimTime wait =
      options_.resolve_timeout +
      options_.resolve_backoff * static_cast<common::SimTime>(attempt - 1);
  network_->schedule(wait, [this, txn_id, attempt] {
    const auto it = txns_.find(txn_id);
    if (it == txns_.end() || it->second.state != TxnState::kResolvePending ||
        it->second.resolve_attempts != attempt) {
      return;
    }
    Txn& txn = it->second;
    if (attempt > options_.resolve_retries) {
      // Every attempt went unanswered — the TTP is unreachable. The txn is
      // parked in a degraded terminal state the caller can account for.
      set_state(txn, TxnState::kTtpUnreachable);
      return;
    }
    // Back off and re-resolve — this is what rides out a TTP down-window.
    set_state(txn, TxnState::kResolveRetrying);
    resolve(txn_id, "re-resolve: no verdict before timeout");
  });
}

void ClientActor::on_message(const NrMessage& message) {
  switch (message.header.flag) {
    case MsgType::kStoreReceipt:
      handle_store_receipt(message);
      break;
    case MsgType::kFetchResponse:
      handle_fetch_response(message);
      break;
    case MsgType::kChunkResponse:
      handle_chunk_response(message);
      break;
    case MsgType::kAbortAccept:
    case MsgType::kAbortReject:
    case MsgType::kAbortError:
      handle_abort_reply(message);
      break;
    case MsgType::kResolveVerdict:
      handle_resolve_verdict(message);
      break;
    case MsgType::kResolveQuery:
      handle_resolve_query(message);
      break;
    case MsgType::kDirReply:
      handle_dir_reply(message);
      break;
    default:
      break;
  }
}

std::string ClientActor::store_routed(const std::string& ttp,
                                      const std::string& object_key,
                                      BytesView data) {
  // Owner by the shared ring if we hold one; else by the lookup-miss cache.
  const std::string* owner = nullptr;
  if (placement_ != nullptr && !placement_->empty()) {
    owner = &placement_->owner(object_key);
  } else {
    const auto it = owner_cache_.find(object_key);
    if (it != owner_cache_.end()) owner = &it->second;
  }
  // A usable route needs the owner's authenticated key, too: knowing the
  // name without the key cannot build the NRO's sealed evidence.
  if (owner == nullptr || peer_key(*owner) == nullptr) {
    defer_store(ttp, object_key, data);
    return "";
  }
  const std::string txn_id = store_impl(*owner, ttp, object_key, data,
                                        /*chunk_size=*/0);
  routed_txns_.push_back(txn_id);
  return txn_id;
}

void ClientActor::defer_store(const std::string& ttp,
                              const std::string& object_key, BytesView data) {
  if (directory_.empty()) {
    throw common::ProtocolError(
        "ClientActor::store_routed: owner unknown and no directory set");
  }
  PendingStore pending;
  pending.ttp = ttp;
  pending.object_key = object_key;
  pending.data = common::Payload::copy_of(data);
  pending_stores_.push_back(std::move(pending));

  common::BinaryWriter payload;
  payload.str(object_key);

  NrMessage message;
  // All of one client's lookups share the pseudo-txn "dir": the per-txn
  // sequence check still sees a strictly increasing stream per sender.
  message.header =
      next_header(MsgType::kDirLookup, directory_, /*ttp=*/"", "dir",
                  crypto::sha256(common::BytesView{}),
                  network_->now() + options_.reply_window);
  message.payload = payload.take();
  send(directory_, std::move(message));
}

void ClientActor::handle_dir_reply(const NrMessage& message) {
  std::string object_key;
  std::string owner;
  crypto::RsaPublicKey owner_key;
  try {
    common::BinaryReader r(message.payload);
    object_key = r.str();
    owner = r.str();
    owner_key = crypto::RsaPublicKey::decode(r.bytes());
    r.u64();  // ring version (informational; a later reply may re-route)
    r.expect_done();
  } catch (const common::SerialError&) {
    ++stats_.rejected_bad_hash;
    return;
  }
  // The reply came through screen(), so it is from the trusted directory —
  // adopting the key it vouches for is the §5.1 out-of-band key channel.
  owner_cache_[object_key] = owner;
  trust_peer(owner, std::move(owner_key));

  // Issue every store parked on this key, in original call order.
  auto parked = std::stable_partition(
      pending_stores_.begin(), pending_stores_.end(),
      [&](const PendingStore& p) { return p.object_key != object_key; });
  std::vector<PendingStore> ready(std::make_move_iterator(parked),
                                  std::make_move_iterator(
                                      pending_stores_.end()));
  pending_stores_.erase(parked, pending_stores_.end());
  for (PendingStore& p : ready) {
    const std::string txn_id =
        store_impl(owner, p.ttp, p.object_key, p.data, /*chunk_size=*/0);
    routed_txns_.push_back(txn_id);
  }
}

void ClientActor::handle_resolve_query(const NrMessage& message) {
  // Bob-initiated Resolve (§4.3): the TTP asks whether we received Bob's
  // receipt. If we hold the NRR for that exact header, acknowledge it by
  // signing the header; otherwise ask for a restart.
  const MessageHeader& h = message.header;  // sender == TTP
  MessageHeader queried_header;
  try {
    common::BinaryReader r(message.payload);
    queried_header = MessageHeader::decode(r.bytes());
    r.expect_done();
  } catch (const common::SerialError&) {
    return;
  }

  const auto it = txns_.find(h.txn_id);
  const bool acknowledged =
      it != txns_.end() && it->second.nrr_header.has_value() &&
      it->second.nrr_header->encode() == queried_header.encode();

  common::BinaryWriter payload;
  payload.str(acknowledged ? "continue" : "restart");
  payload.bytes(queried_header.encode());
  payload.bytes(acknowledged ? identity_->sign(queried_header.encode())
                             : Bytes{});

  NrMessage reply;
  reply.header =
      next_header(MsgType::kResolveResponse, h.sender, h.ttp, h.txn_id,
                  queried_header.data_hash,
                  network_->now() + options_.reply_window);
  reply.payload = payload.take();
  send(h.sender, std::move(reply));
}

void ClientActor::handle_store_receipt(const NrMessage& message) {
  const MessageHeader& h = message.header;
  const auto it = txns_.find(h.txn_id);
  if (it == txns_.end()) return;
  Txn& txn = it->second;
  // A receipt settles the txn from any still-waiting state — including
  // mid-escalation, when a delayed NRR overtakes the TTP verdict. Any
  // other state (already completed, aborted, settled by verdict) makes
  // this a duplicate or a straggler: drop it without touching state or the
  // journal.
  if (txn.state != TxnState::kStorePending &&
      txn.state != TxnState::kResolvePending &&
      txn.state != TxnState::kResolveRetrying) {
    return;
  }
  if (h.sender != txn.provider || h.data_hash != txn.data_hash) {
    ++stats_.rejected_bad_hash;
    return;
  }
  std::shared_ptr<const crypto::RsaPublicKey> provider_key =
      peer_key_shared(txn.provider);
  const auto nrr =
      open_evidence_unverified(*identity_, h, message.evidence);
  if (!nrr) {
    ++stats_.rejected_bad_evidence;
    return;
  }
  // Defer the two NRR signature checks to the crypto service: receipts
  // land across the shard in the same latency window, so their verifies
  // batch under each provider's key (one Montgomery context per provider).
  // The flush rules guarantee no event at this endpoint can observe the
  // txn before the completion settles it.
  std::vector<runtime::VerifyJob> jobs(2);
  jobs[0].key = provider_key;
  jobs[0].message = h.data_hash;
  jobs[0].signature = nrr->data_hash_signature;
  jobs[1].key = provider_key;
  jobs[1].message = h.encode();
  jobs[1].signature = nrr->header_signature;
  crypto_service().submit_verifies(
      std::move(jobs),
      [this, h, opened = *nrr](std::vector<bool> verdicts) {
        const auto txn_it = txns_.find(h.txn_id);
        if (txn_it == txns_.end()) return;
        Txn& pending_txn = txn_it->second;
        if (!verdicts[0] || !verdicts[1]) {
          ++stats_.rejected_bad_evidence;
          return;
        }
        pending_txn.nrr_header = h;
        pending_txn.nrr = opened;
        set_state(pending_txn, TxnState::kCompleted);
        // The NRR is the artifact §4.4 arbitration depends on: journal it
        // the moment it is verified so it survives a crash.
        journal_evidence("nrr", h.txn_id, pending_txn.provider,
                         pending_txn.object_key, pending_txn.chunk_size, h,
                         opened);
      });
}

void ClientActor::handle_fetch_response(const NrMessage& message) {
  const MessageHeader& h = message.header;
  const auto it = txns_.find(h.txn_id);
  if (it == txns_.end()) return;
  Txn& txn = it->second;
  const crypto::RsaPublicKey* provider_key = peer_key(txn.provider);

  // The response header's data_hash covers what Bob serves NOW; his
  // evidence must verify over it (he cannot deny serving these bytes).
  if (crypto::sha256(message.payload) != h.data_hash) {
    ++stats_.rejected_bad_hash;
    return;
  }
  if (!open_evidence(*identity_, *provider_key, h, message.evidence)) {
    ++stats_.rejected_bad_evidence;
    return;
  }
  txn.fetched = true;
  txn.fetched_data = message.payload;
  // The upload-to-download integrity link: what was served vs the hash both
  // parties signed at store time. For chunked objects the signed hash is
  // the Merkle root, so recompute the root over the served bytes.
  if (txn.chunk_size == 0) {
    txn.fetch_integrity_ok = (h.data_hash == txn.data_hash);
  } else {
    const crypto::MerkleTree tree(txn.fetched_data, txn.chunk_size);
    txn.fetch_integrity_ok = (tree.root() == txn.data_hash);
  }
}

void ClientActor::handle_chunk_response(const NrMessage& message) {
  const MessageHeader& h = message.header;
  const auto it = txns_.find(h.txn_id);
  if (it == txns_.end() || it->second.chunk_size == 0) return;
  Txn& txn = it->second;

  ChunkAuditResult result;
  Bytes chunk;
  crypto::MerkleProof proof;
  try {
    common::BinaryReader r(message.payload);
    result.chunk_index = r.u64();
    chunk = r.bytes();
    proof = decode_proof(r.bytes());
    r.expect_done();
  } catch (const common::SerialError&) {
    result.verified = false;
    result.detail = "malformed chunk response";
    txn.audits.push_back(std::move(result));
    return;
  }

  // The provider signed the hash of the chunk it served.
  const crypto::RsaPublicKey* provider_key = peer_key(txn.provider);
  if (crypto::sha256(chunk) != h.data_hash ||
      !open_evidence(*identity_, *provider_key, h, message.evidence)) {
    ++stats_.rejected_bad_evidence;
    result.verified = false;
    result.detail = "chunk evidence failed verification";
    txn.audits.push_back(std::move(result));
    return;
  }

  // The audit proper: does the served chunk chain to the Merkle root both
  // parties signed at store time?
  result.verified = proof.leaf_index == result.chunk_index &&
                    crypto::MerkleTree::verify(chunk, proof, txn.data_hash);
  result.detail = result.verified
                      ? "chunk verified against the signed root"
                      : "proof does not chain to the signed root: chunk "
                        "tampered or substituted";
  txn.audits.push_back(std::move(result));
}

void ClientActor::handle_abort_reply(const NrMessage& message) {
  const MessageHeader& h = message.header;
  const auto it = txns_.find(h.txn_id);
  if (it == txns_.end()) return;
  Txn& txn = it->second;
  if (txn.state != TxnState::kAbortPending) return;

  if (h.flag == MsgType::kAbortError) {
    set_state(txn, TxnState::kAbortErrored);
    return;
  }
  const crypto::RsaPublicKey* provider_key = peer_key(txn.provider);
  const auto receipt =
      open_evidence(*identity_, *provider_key, h, message.evidence);
  if (!receipt) {
    ++stats_.rejected_bad_evidence;
    return;
  }
  txn.abort_receipt_header = h;
  txn.abort_receipt = *receipt;
  set_state(txn, h.flag == MsgType::kAbortAccept ? TxnState::kAborted
                                                 : TxnState::kAbortRejected);
  journal_evidence("abort-receipt", h.txn_id, txn.provider, txn.object_key,
                   txn.chunk_size, h, *receipt);
}

void ClientActor::handle_resolve_verdict(const NrMessage& message) {
  const MessageHeader& h = message.header;
  const auto it = txns_.find(h.txn_id);
  if (it == txns_.end()) return;
  Txn& txn = it->second;
  // Only a txn still waiting on the TTP may be settled by a verdict. A
  // duplicate (or a verdict overtaken by the real NRR, or one provoked by
  // a post-settlement resolve call) must not move the state or append
  // evidence again.
  if (txn.state != TxnState::kResolvePending &&
      txn.state != TxnState::kResolveRetrying) {
    return;
  }

  std::string outcome;
  Bytes receipt_header_bytes;
  Bytes receipt_evidence;
  Bytes ttp_statement;
  Bytes ttp_signature;
  try {
    common::BinaryReader r(message.payload);
    outcome = r.str();
    receipt_header_bytes = r.bytes();
    receipt_evidence = r.bytes();
    ttp_statement = r.bytes();
    ttp_signature = r.bytes();
    r.expect_done();
  } catch (const common::SerialError&) {
    return;
  }

  if (outcome == "continued" && !receipt_evidence.empty()) {
    const crypto::RsaPublicKey* provider_key = peer_key(txn.provider);
    MessageHeader receipt_header;
    try {
      receipt_header = MessageHeader::decode(receipt_header_bytes);
    } catch (const common::SerialError&) {
      return;
    }
    const auto nrr = open_evidence(*identity_, *provider_key, receipt_header,
                                   receipt_evidence);
    if (nrr) {
      txn.nrr_header = receipt_header;
      txn.nrr = *nrr;
      set_state(txn, TxnState::kResolvedCompleted);
      journal_evidence("nrr", h.txn_id, txn.provider, txn.object_key,
                       txn.chunk_size, receipt_header, *nrr);
      return;
    }
  }
  // "If Bob does not reply the Resolve query ... the TTP will respond to
  // Alice by telling her that this session is failed and Bob did not
  // respond." The TTP statement is itself signed evidence.
  const crypto::RsaPublicKey* ttp_key = peer_key(txn.ttp);
  if (ttp_key != nullptr && !ttp_statement.empty() &&
      pki::Identity::verify(*ttp_key, ttp_statement, ttp_signature)) {
    txn.ttp_statement = ttp_statement;
    txn.ttp_statement_signature = ttp_signature;
  }
  // A "restart" verdict means the provider asked to redo the exchange
  // (§4.3). If the retry budget still has room and the object bytes were
  // kept, re-send the NRO instead of failing the session.
  if (outcome == "restart" && !txn.retry_data.empty() &&
      txn.store_attempts < 1 + options_.store_retries) {
    send_store(h.txn_id);
    return;
  }
  set_state(txn, TxnState::kResolvedFailed);
}

}  // namespace tpnr::nr
