// Bob — the cloud storage provider in the TPNR protocol. Handles the Normal
// store/fetch steps, the Abort sub-protocol, and Resolve queries from the
// TTP. Behaviour knobs model the malicious provider of the paper's threat
// analysis (withholding receipts, tampering with stored data, ignoring the
// TTP).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "nr/actor.h"
#include "storage/merkle_cache.h"
#include "storage/object_store.h"

namespace tpnr::nr {

/// How Bob (mis)behaves — the experiment dial.
struct ProviderBehavior {
  bool send_store_receipts = true;   ///< false: withholds NRR (unfair Bob)
  bool respond_to_resolve = true;    ///< false: ignores the TTP
  bool respond_to_abort = true;
  bool respond_to_fetch = true;      ///< false: dead/unresponsive replica
  /// If set, silently rewrites stored bytes after accepting them — the Eve
  /// of §2.4.
  bool tamper_after_store = false;
  Bytes tamper_replacement;
  /// Chunk-audit equivocation: serve Merkle proofs computed over the
  /// ORIGINAL object (cached at store time) so audits of untampered chunks
  /// still pass — the strongest audit adversary. Tampered chunks still fail
  /// (their bytes no longer match any proof), which is what makes random
  /// sampling meaningful.
  bool equivocate_chunk_proofs = false;
};

class ProviderActor final : public NrActor {
 public:
  ProviderActor(std::string id, net::Network& network, pki::Identity& identity,
                crypto::Drbg& rng);

  void set_behavior(ProviderBehavior behavior) {
    behavior_ = std::move(behavior);
  }
  [[nodiscard]] const ProviderBehavior& behavior() const noexcept {
    return behavior_;
  }

  /// Per-transaction record Bob keeps: the object, its agreed hash (flat
  /// SHA-256, or a Merkle root for chunked objects), and the NRO that
  /// proves Alice sent it.
  struct TxnRecord {
    enum class State { kStored, kAborted };
    State state = State::kStored;
    std::string object_key;
    Bytes data_hash;
    std::size_t chunk_size = 0;  ///< 0 = flat object; else Merkle chunking
    common::Payload original_data;  ///< chunked txns (equivocation); shared
    MessageHeader nro_header;
    OpenedEvidence nro;
    /// The receipt header Bob signed (basis for Bob-initiated Resolve).
    std::optional<MessageHeader> receipt_header;
    /// Set when Alice acknowledged the receipt through the TTP (§4.3:
    /// "Bob can initial a resolve procedure at the TTP").
    bool client_acknowledged = false;
    /// The client's signature over the receipt header (the acknowledgment).
    Bytes ack_signature;
    /// TTP statement when Alice failed to respond to Bob's resolve.
    Bytes ttp_statement;
    Bytes ttp_statement_signature;
  };

  [[nodiscard]] const TxnRecord* transaction(const std::string& txn_id) const;
  [[nodiscard]] storage::ObjectStore& store() noexcept { return store_; }
  [[nodiscard]] const storage::MerkleCache& merkle_cache() const noexcept {
    return merkle_cache_;
  }

  /// How many store receipts were re-issued for retried NROs without
  /// touching the store or the journal (idempotence accounting).
  [[nodiscard]] std::uint64_t receipts_resent() const noexcept {
    return receipts_resent_;
  }

  /// Administrator tamper: rewrite the object behind a transaction.
  bool tamper(const std::string& txn_id, BytesView new_data);

  /// Pre-sizes the transaction table for an expected fleet workload.
  void reserve_txns(std::size_t count) { txns_.reserve(count); }

  /// Evidence Bob would present to an arbitrator (his NRO for the txn).
  [[nodiscard]] std::optional<std::pair<MessageHeader, OpenedEvidence>>
  present_nro(const std::string& txn_id) const;

  /// The object bytes Bob can currently produce for the arbitrator.
  [[nodiscard]] std::optional<Bytes> produce_object(
      const std::string& txn_id);

  /// Bob-initiated Resolve (§4.3): asks the TTP to obtain the client's
  /// acknowledgment of the receipt Bob sent. Outcome lands in the
  /// transaction record (client_acknowledged or a signed TTP statement).
  void resolve(const std::string& txn_id, const std::string& ttp);

 protected:
  void on_message(const NrMessage& message) override;

 private:
  void handle_store(const NrMessage& message);
  void handle_fetch(const NrMessage& message);
  void handle_chunk_request(const NrMessage& message);
  void handle_abort(const NrMessage& message);
  void handle_resolve_query(const NrMessage& message);
  void handle_resolve_verdict(const NrMessage& message);

  /// Builds Bob's receipt evidence (NRR) for a transaction and the header
  /// it covers.
  std::pair<MessageHeader, Bytes> make_receipt(const std::string& txn_id,
                                               const std::string& for_whom,
                                               MsgType flag,
                                               BytesView data_hash,
                                               common::SimTime time_limit);

  ProviderBehavior behavior_;
  storage::ObjectStore store_;
  /// Each stored object's tree is built once (at store-time validation) and
  /// every chunk proof afterwards is served from the cached tree. Entries
  /// self-invalidate on any byte change via Payload buffer identity.
  storage::MerkleCache merkle_cache_;
  std::unordered_map<std::string, TxnRecord> txns_;
  std::uint64_t receipts_resent_ = 0;
};

}  // namespace tpnr::nr
