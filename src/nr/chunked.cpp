#include "nr/chunked.h"

#include "common/serial.h"

namespace tpnr::nr {

Bytes encode_proof(const crypto::MerkleProof& proof) {
  common::BinaryWriter w;
  w.u64(proof.leaf_index);
  w.u64(proof.leaf_count);
  w.u32(static_cast<std::uint32_t>(proof.siblings.size()));
  for (const Bytes& sibling : proof.siblings) w.bytes(sibling);
  return w.take();
}

crypto::MerkleProof decode_proof(BytesView data) {
  common::BinaryReader r(data);
  crypto::MerkleProof proof;
  proof.leaf_index = r.u64();
  proof.leaf_count = r.u64();
  const std::uint32_t count = r.u32();
  proof.siblings.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) proof.siblings.push_back(r.bytes());
  r.expect_done();
  return proof;
}

}  // namespace tpnr::nr
