// Placement directory: answers "which provider owns this object key?" for
// clients that miss in their local ring or lack the owner's authenticated
// key. One lookup round-trip (kDirLookup -> kDirReply) returns the owner's
// name, its public key (the directory vouches for keys it was handed out of
// band, the §5.1 channel), and the ring version so cached answers can be
// aged out after membership changes.
//
// The directory is a read-only view over a driver-owned runtime::Placement;
// it never mutates the ring.
#pragma once

#include <string>
#include <unordered_map>

#include "nr/actor.h"
#include "runtime/placement.h"

namespace tpnr::nr {

class DirectoryActor final : public NrActor {
 public:
  DirectoryActor(std::string id, net::Network& network,
                 pki::Identity& identity, crypto::Drbg& rng,
                 const runtime::Placement& placement);

  /// Registers a provider's public key for inclusion in replies. Providers
  /// without a registered key resolve on the ring but cannot be vouched
  /// for; their lookups are dropped (and counted).
  void register_provider_key(const std::string& provider,
                             crypto::RsaPublicKey key);

  [[nodiscard]] std::uint64_t lookups_served() const noexcept {
    return lookups_served_;
  }
  [[nodiscard]] std::uint64_t lookups_unroutable() const noexcept {
    return lookups_unroutable_;
  }

 protected:
  void on_message(const NrMessage& message) override;

 private:
  const runtime::Placement* placement_;
  std::unordered_map<std::string, crypto::RsaPublicKey> provider_keys_;
  std::uint64_t lookups_served_ = 0;
  std::uint64_t lookups_unroutable_ = 0;
};

}  // namespace tpnr::nr
