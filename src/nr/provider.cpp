#include "nr/provider.h"

#include "common/serial.h"
#include "consistency/view_identity.h"
#include "nr/chunked.h"

namespace tpnr::nr {

namespace {
constexpr common::SimTime kReplyWindow = 30 * common::kSecond;

// The cache key proofs for `object_key` are served under. Equivocating
// service keeps its pre-tamper snapshot in a separate view (the shared
// "<key>#orig" convention from consistency/view_identity.h) so the
// original tree and the honest current-bytes tree don't evict each other.
std::string proof_cache_key(const std::string& object_key,
                            bool equivocating) {
  return consistency::view_key(
      object_key, equivocating ? consistency::kEquivocationSnapshotView
                               : consistency::kPrimaryView);
}

}  // namespace

ProviderActor::ProviderActor(std::string id, net::Network& network,
                             pki::Identity& identity, crypto::Drbg& rng)
    : NrActor(std::move(id), network, identity, rng),
      store_(std::make_unique<storage::MemoryBackend>()) {
  // Fault events in the store carry simulated injection times, which is
  // what lets an auditor's detection latency be measured.
  store_.bind_clock(&network.clock());
}

const ProviderActor::TxnRecord* ProviderActor::transaction(
    const std::string& txn_id) const {
  const auto it = txns_.find(txn_id);
  return it == txns_.end() ? nullptr : &it->second;
}

bool ProviderActor::tamper(const std::string& txn_id, BytesView new_data) {
  const auto it = txns_.find(txn_id);
  if (it == txns_.end()) return false;
  // Alias validation already forces a rebuild on the next proof request;
  // dropping the entry also releases the pinned pre-tamper buffer.
  merkle_cache_.invalidate(proof_cache_key(it->second.object_key, false));
  return store_.tamper(it->second.object_key, new_data);
}

std::optional<std::pair<MessageHeader, OpenedEvidence>>
ProviderActor::present_nro(const std::string& txn_id) const {
  const auto it = txns_.find(txn_id);
  if (it == txns_.end()) return std::nullopt;
  return std::make_pair(it->second.nro_header, it->second.nro);
}

std::optional<Bytes> ProviderActor::produce_object(const std::string& txn_id) {
  const auto it = txns_.find(txn_id);
  if (it == txns_.end()) return std::nullopt;
  auto record = store_.get(it->second.object_key);
  if (!record) return std::nullopt;
  return record->data.to_bytes();
}

std::pair<MessageHeader, Bytes> ProviderActor::make_receipt(
    const std::string& txn_id, const std::string& for_whom, MsgType flag,
    BytesView data_hash, common::SimTime time_limit) {
  const crypto::RsaPublicKey* recipient = peer_key(for_whom);
  MessageHeader header =
      next_header(flag, for_whom, /*ttp=*/"", txn_id, data_hash, time_limit);
  Bytes evidence;
  if (recipient != nullptr) {
    evidence = make_evidence(*identity_, *recipient, header, *rng_);
  }
  return {std::move(header), std::move(evidence)};
}

void ProviderActor::on_message(const NrMessage& message) {
  switch (message.header.flag) {
    case MsgType::kStoreRequest:
      handle_store(message);
      break;
    case MsgType::kFetchRequest:
      handle_fetch(message);
      break;
    case MsgType::kChunkRequest:
      handle_chunk_request(message);
      break;
    case MsgType::kAbortRequest:
      handle_abort(message);
      break;
    case MsgType::kResolveQuery:
      handle_resolve_query(message);
      break;
    case MsgType::kResolveVerdict:
      handle_resolve_verdict(message);
      break;
    default:
      break;  // not addressed to the provider role
  }
}

void ProviderActor::handle_store(const NrMessage& message) {
  const MessageHeader& h = message.header;
  const crypto::RsaPublicKey* sender_key = peer_key(h.sender);

  // Payload: object key + object bytes + chunk size (0 = flat object).
  std::string object_key;
  Bytes data;
  std::uint32_t chunk_size = 0;
  try {
    common::BinaryReader r(message.payload);
    object_key = r.str();
    data = r.bytes();
    chunk_size = r.u32();
    r.expect_done();
  } catch (const common::SerialError&) {
    ++stats_.rejected_bad_hash;
    return;
  }
  // Wrap the decoded bytes once, up front: hash validation, the txn
  // record's equivocation snapshot and the store's current version all
  // alias this single buffer — and the Merkle tree built for validation is
  // cached against it, so later chunk proofs are served without a rebuild.
  common::Payload stored(std::move(data));
  // "The peers should check the consistency between the hash of the
  // plaintext and the plaintext at first." For chunked objects the agreed
  // hash is the Merkle root over the declared chunking.
  if (chunk_size == 0) {
    if (crypto::sha256(stored) != h.data_hash) {
      ++stats_.rejected_bad_hash;
      return;
    }
  } else {
    // Primed under the version put() is about to assign, so later proof
    // requests (which pass the record's version) hit this entry.
    const auto tree =
        merkle_cache_.get_or_build(proof_cache_key(object_key, false), stored,
                                   chunk_size, store_.version_of(object_key) + 1);
    if (tree->root() != h.data_hash) {
      merkle_cache_.invalidate(proof_cache_key(object_key, false));
      ++stats_.rejected_bad_hash;
      return;
    }
  }
  const auto nro = open_evidence(*identity_, *sender_key, h, message.evidence);
  if (!nro) {
    ++stats_.rejected_bad_evidence;
    return;
  }

  // Idempotent re-store (§5.5 fault tolerance): a client that lost the
  // receipt re-sends the NRO under a fresh header. Same txn + same agreed
  // hash → nothing is re-stored or re-journalled; only the receipt is
  // re-issued. A different hash under a known txn id is an attack, not a
  // retry.
  const auto existing = txns_.find(h.txn_id);
  if (existing != txns_.end()) {
    TxnRecord& known = existing->second;
    if (h.data_hash != known.data_hash) {
      ++stats_.rejected_bad_hash;
      return;
    }
    if (known.state == TxnRecord::State::kAborted) return;  // stays aborted
    ++receipts_resent_;
    if (!behavior_.send_store_receipts) return;
    auto [receipt_header, evidence] =
        make_receipt(h.txn_id, h.sender, MsgType::kStoreReceipt, h.data_hash,
                     network_->now() + kReplyWindow);
    known.receipt_header = receipt_header;
    NrMessage reply;
    reply.header = std::move(receipt_header);
    reply.evidence = std::move(evidence);
    send(h.sender, std::move(reply));
    return;
  }

  TxnRecord record;
  record.object_key = object_key;
  record.data_hash = h.data_hash;
  record.chunk_size = chunk_size;
  record.nro_header = h;
  record.nro = *nro;
  const Bytes data_md5 = crypto::md5(stored);
  if (chunk_size > 0) record.original_data = stored;
  store_.put(object_key, stored, data_md5, network_->now());
  txns_[h.txn_id] = std::move(record);
  // The NRO is Bob's proof Alice sent these bytes: journal it with the
  // transaction facts before acknowledging anything.
  journal_evidence("nro", h.txn_id, h.sender, object_key, chunk_size, h,
                   *nro);

  if (behavior_.tamper_after_store) {
    store_.tamper(object_key, behavior_.tamper_replacement);
  }
  if (!behavior_.send_store_receipts) return;  // the unfair Bob of §4.3

  auto [receipt_header, evidence] =
      make_receipt(h.txn_id, h.sender, MsgType::kStoreReceipt, h.data_hash,
                   network_->now() + kReplyWindow);
  txns_[h.txn_id].receipt_header = receipt_header;
  NrMessage reply;
  reply.header = std::move(receipt_header);
  reply.evidence = std::move(evidence);
  send(h.sender, std::move(reply));
}

void ProviderActor::resolve(const std::string& txn_id,
                            const std::string& ttp) {
  const auto it = txns_.find(txn_id);
  if (it == txns_.end() || !it->second.receipt_header) return;
  const MessageHeader& receipt = *it->second.receipt_header;

  // Same request shape the client uses: the TTP verifies the initiator's
  // signature over the header the resolve concerns.
  common::BinaryWriter payload;
  payload.str(receipt.recipient);  // respondent: the client
  payload.str("no acknowledgment of the NRR before timeout");
  payload.bytes(receipt.encode());
  payload.bytes(identity_->sign(receipt.encode()));
  payload.bytes(Bytes{});

  NrMessage message;
  message.header = next_header(MsgType::kResolveRequest, ttp, ttp, txn_id,
                               receipt.data_hash,
                               network_->now() + kReplyWindow);
  message.payload = payload.take();
  send(ttp, std::move(message));
}

void ProviderActor::handle_resolve_verdict(const NrMessage& message) {
  const MessageHeader& h = message.header;
  const auto it = txns_.find(h.txn_id);
  if (it == txns_.end()) return;
  TxnRecord& record = it->second;

  std::string outcome;
  Bytes acked_header_bytes;
  Bytes ack_signature;
  Bytes ttp_statement;
  Bytes ttp_signature;
  try {
    common::BinaryReader r(message.payload);
    outcome = r.str();
    acked_header_bytes = r.bytes();
    ack_signature = r.bytes();
    ttp_statement = r.bytes();
    ttp_signature = r.bytes();
    r.expect_done();
  } catch (const common::SerialError&) {
    return;
  }

  if (outcome == "continued" && record.receipt_header) {
    // The acknowledgment: the client's signature over Bob's receipt header.
    const crypto::RsaPublicKey* client_key =
        peer_key(record.receipt_header->recipient);
    if (client_key != nullptr &&
        acked_header_bytes == record.receipt_header->encode() &&
        pki::Identity::verify(*client_key, acked_header_bytes,
                              ack_signature)) {
      record.client_acknowledged = true;
      record.ack_signature = ack_signature;
      return;
    }
  }
  // Otherwise keep the TTP's signed statement — Bob's protection when the
  // client goes silent.
  const crypto::RsaPublicKey* ttp_key = peer_key(h.sender);
  if (ttp_key != nullptr && !ttp_statement.empty() &&
      pki::Identity::verify(*ttp_key, ttp_statement, ttp_signature)) {
    record.ttp_statement = ttp_statement;
    record.ttp_statement_signature = ttp_signature;
  }
}

void ProviderActor::handle_fetch(const NrMessage& message) {
  if (!behavior_.respond_to_fetch) return;
  const MessageHeader& h = message.header;
  const auto it = txns_.find(h.txn_id);
  if (it == txns_.end() || it->second.state != TxnRecord::State::kStored) {
    return;  // nothing to serve
  }
  auto record = store_.get(it->second.object_key);
  if (!record) return;

  // The response evidence signs the hash of what is being served NOW: Bob
  // cannot later deny having served these exact bytes.
  const Bytes served_hash = crypto::sha256(record->data);
  auto [response_header, evidence] =
      make_receipt(h.txn_id, h.sender, MsgType::kFetchResponse, served_hash,
                   network_->now() + kReplyWindow);
  NrMessage reply;
  reply.header = std::move(response_header);
  reply.payload = std::move(record->data);
  reply.evidence = std::move(evidence);
  send(h.sender, std::move(reply));
}

void ProviderActor::handle_chunk_request(const NrMessage& message) {
  if (!behavior_.respond_to_fetch) return;  // dead/unresponsive replica
  const MessageHeader& h = message.header;
  const auto it = txns_.find(h.txn_id);
  if (it == txns_.end() || it->second.state != TxnRecord::State::kStored ||
      it->second.chunk_size == 0) {
    return;  // unknown or not a chunked object
  }
  std::uint64_t chunk_index = 0;
  try {
    common::BinaryReader r(message.payload);
    chunk_index = r.u64();
    r.expect_done();
  } catch (const common::SerialError&) {
    return;
  }
  auto record = store_.get(it->second.object_key);
  if (!record) return;

  // Honest provider: the tree covers what is in the store NOW — any tamper
  // anywhere makes every recomputed proof fail against the signed root.
  // Equivocating provider: serve proofs from the ORIGINAL tree so audits of
  // clean chunks pass; only the tampered chunks themselves fail. Either way
  // the tree comes from the cache, which validates by buffer identity: a
  // cache hit proves the bytes are the exact bytes the tree was built over,
  // so cached service can never hide a modification.
  const bool equivocating = behavior_.equivocate_chunk_proofs;
  const common::Payload& proof_source =
      equivocating ? it->second.original_data : record->data;
  // Keyed on (object, version): a tree primed before a mutation can never
  // serve a proof for the successor version, even if a buffer were reused.
  // The equivocation snapshot is pinned to the version it was stored at.
  const auto tree = merkle_cache_.get_or_build(
      proof_cache_key(it->second.object_key, equivocating), proof_source,
      it->second.chunk_size, equivocating ? 1 : record->version);
  if (chunk_index >= tree->leaf_count()) return;
  const std::size_t offset = chunk_index * it->second.chunk_size;
  if (offset >= record->data.size()) return;
  const std::size_t len = std::min(it->second.chunk_size,
                                   record->data.size() - offset);
  const Bytes chunk(record->data.begin() + static_cast<std::ptrdiff_t>(offset),
                    record->data.begin() +
                        static_cast<std::ptrdiff_t>(offset + len));

  // Evidence signs the served chunk's hash: Bob cannot later deny what he
  // served for this audit.
  auto [response_header, evidence] = make_receipt(
      h.txn_id, h.sender, MsgType::kChunkResponse, crypto::sha256(chunk),
      network_->now() + kReplyWindow);
  common::BinaryWriter payload;
  payload.u64(chunk_index);
  payload.bytes(chunk);
  payload.bytes(encode_proof(tree->prove(chunk_index)));

  NrMessage reply;
  reply.header = std::move(response_header);
  reply.payload = payload.take();
  reply.evidence = std::move(evidence);
  send(h.sender, std::move(reply));
}

void ProviderActor::handle_abort(const NrMessage& message) {
  if (!behavior_.respond_to_abort) return;
  const MessageHeader& h = message.header;
  const crypto::RsaPublicKey* sender_key = peer_key(h.sender);

  // Payload: the original store header + the NRO evidence, so consistency
  // can be verified even if the store request itself never arrived.
  MessageHeader original_header;
  Bytes nro_evidence;
  bool well_formed = true;
  try {
    common::BinaryReader r(message.payload);
    original_header = MessageHeader::decode(r.bytes());
    nro_evidence = r.bytes();
    r.expect_done();
  } catch (const common::SerialError&) {
    well_formed = false;
  }
  if (well_formed) {
    well_formed = original_header.txn_id == h.txn_id &&
                  original_header.sender == h.sender &&
                  open_evidence(*identity_, *sender_key, original_header,
                                nro_evidence)
                      .has_value();
  }
  if (!well_formed) {
    // "Bob will send an Error message that requests Alice double check the
    // parameters ... regenerate it, and re-submit the request."
    MessageHeader error_header =
        next_header(MsgType::kAbortError, h.sender, "", h.txn_id, {},
                    network_->now() + kReplyWindow);
    NrMessage reply;
    reply.header = std::move(error_header);
    send(h.sender, std::move(reply));
    return;
  }

  const auto it = txns_.find(h.txn_id);
  const bool can_abort =
      it == txns_.end() || it->second.state == TxnRecord::State::kStored;
  MsgType verdict = can_abort ? MsgType::kAbortAccept : MsgType::kAbortReject;
  if (can_abort && it != txns_.end()) {
    it->second.state = TxnRecord::State::kAborted;
    store_.remove(it->second.object_key);
    merkle_cache_.invalidate(proof_cache_key(it->second.object_key, false));
    merkle_cache_.invalidate(proof_cache_key(it->second.object_key, true));
  }
  auto [reply_header, evidence] =
      make_receipt(h.txn_id, h.sender, verdict, original_header.data_hash,
                   network_->now() + kReplyWindow);
  NrMessage reply;
  reply.header = std::move(reply_header);
  reply.evidence = std::move(evidence);
  send(h.sender, std::move(reply));
}

void ProviderActor::handle_resolve_query(const NrMessage& message) {
  if (!behavior_.respond_to_resolve) return;  // malicious silence
  const MessageHeader& h = message.header;  // sender == TTP

  MessageHeader original_header;
  try {
    common::BinaryReader r(message.payload);
    original_header = MessageHeader::decode(r.bytes());
    r.expect_done();
  } catch (const common::SerialError&) {
    return;
  }
  const auto it = txns_.find(h.txn_id);
  const std::string action =
      it != txns_.end() ? "continue" : "restart";  // §4.3's two outcomes

  // Bob's receipt travels to Alice through the TTP; it is encrypted for
  // Alice (the initiator), not for the TTP.
  const std::string initiator = original_header.sender;
  auto [receipt_header, evidence] =
      make_receipt(h.txn_id, initiator, MsgType::kStoreReceipt,
                   original_header.data_hash,
                   network_->now() + kReplyWindow);
  // If Bob never saw the transaction he still answers, but with no receipt
  // evidence — the TTP reports "restart".
  common::BinaryWriter payload;
  payload.str(action);
  payload.bytes(receipt_header.encode());
  payload.bytes(it != txns_.end() ? evidence : Bytes{});

  MessageHeader reply_header =
      next_header(MsgType::kResolveResponse, h.sender, h.ttp, h.txn_id,
                  original_header.data_hash, network_->now() + kReplyWindow);
  NrMessage reply;
  reply.header = std::move(reply_header);
  reply.payload = payload.take();
  send(h.sender, std::move(reply));
}

}  // namespace tpnr::nr
