// Base machinery shared by the TPNR actors (client Alice, provider Bob,
// TTP): authenticated peer-key directory, replay/uniqueness bookkeeping,
// send helpers and counters. Actors are endpoints on the simulated network;
// every message is an encoded NrMessage on topic "nr".
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "crypto/drbg.h"
#include "crypto/hash.h"
#include "net/network.h"
#include "net/reliable.h"
#include "nr/evidence.h"
#include "nr/message.h"
#include "persist/journal.h"
#include "pki/identity.h"

namespace tpnr::runtime {
class CryptoService;
}  // namespace tpnr::runtime

namespace tpnr::nr {

/// Why an inbound message was rejected (accumulated per actor; the attack
/// benches read these to show WHICH defence fired).
struct ActorStats {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_unknown_sender = 0;
  std::uint64_t rejected_expired = 0;       ///< past the time limit (§5.5)
  std::uint64_t rejected_replay = 0;        ///< nonce or stale seq (§5.4)
  std::uint64_t rejected_bad_sequence = 0;  ///< out-of-order seq (§5.3)
  std::uint64_t rejected_bad_hash = 0;      ///< payload/hash inconsistency
  std::uint64_t rejected_bad_evidence = 0;  ///< decryption/signature failure
  std::uint64_t rejected_wrong_addressee = 0;  ///< reflected message (§5.2)
};

/// Which of the generic §5 defences are active. All on by default; the
/// attack benches switch individual ones off to demonstrate that each
/// defence is load-bearing.
struct ScreeningPolicy {
  bool check_addressee = true;  ///< §5.2 reflection
  bool check_nonce = true;      ///< §5.4 replay
  bool check_sequence = true;   ///< §5.3 interleaving
  bool check_time_limit = true; ///< §5.5 timeliness
};

class NrActor {
 public:
  NrActor(std::string id, net::Network& network, pki::Identity& identity,
          crypto::Drbg& rng);
  virtual ~NrActor() = default;

  NrActor(const NrActor&) = delete;
  NrActor& operator=(const NrActor&) = delete;

  [[nodiscard]] const std::string& id() const noexcept { return id_; }
  [[nodiscard]] const ActorStats& stats() const noexcept { return stats_; }
  [[nodiscard]] pki::Identity& identity() noexcept { return *identity_; }

  /// Records an authenticated peer key (obtained via certificates out of
  /// band; §5.1 requires keys to be authenticated before use).
  void trust_peer(const std::string& peer_id, crypto::RsaPublicKey key);

  void set_screening_policy(ScreeningPolicy policy) noexcept {
    policy_ = policy;
  }
  [[nodiscard]] const ScreeningPolicy& screening_policy() const noexcept {
    return policy_;
  }

  /// Journals the evidence this actor accepts (NRO/NRR/abort receipts)
  /// through the durability seam, so it survives to arbitration across a
  /// crash. nullptr (the default) keeps the actor memory-only.
  void set_journal(persist::Journal* journal) noexcept { journal_ = journal; }
  [[nodiscard]] persist::Journal* journal() const noexcept {
    return journal_;
  }

  /// Puts this actor's traffic behind a ReliableChannel: everything it
  /// sends is sequenced/acked/retransmitted, and inbound duplicates are
  /// suppressed below the protocol layer. Raw inbound traffic from peers
  /// without a channel still gets through (frame passthrough).
  void use_reliable(std::uint64_t seed,
                    net::ReliableOptions options = net::ReliableOptions{});
  [[nodiscard]] net::ReliableChannel* reliable_channel() noexcept {
    return channel_.get();
  }

 protected:
  /// Subclass dispatch for an already-screened message.
  virtual void on_message(const NrMessage& message) = 0;

  /// Generic screening every inbound message passes first: addressee check
  /// (reflection), sender known, time limit, nonce freshness, per-txn
  /// monotone sequence. Returns false (and bumps a counter) on violation.
  bool screen(const NrMessage& message);

  void send(const std::string& to, NrMessage message);

  /// send() with an explicit topic, overriding the default/reply topic.
  /// Out-of-band conversations (the consistency layer's client↔client
  /// gossip on "cons.gossip") use this so their traffic never masquerades
  /// as protocol traffic in the per-topic stats.
  void send_on_topic(const std::string& to, const std::string& topic,
                     NrMessage message);

  /// Topic for messages this actor ORIGINATES. Replies sent while handling
  /// an inbound message inherit that message's topic instead, so an entire
  /// challenge/response conversation lands on one topic and
  /// net::TopicStats can attribute its traffic (protocol "nr" vs audit
  /// "nr.audit").
  void set_default_topic(std::string topic) {
    default_topic_ = std::move(topic);
  }

  [[nodiscard]] const crypto::RsaPublicKey* peer_key(
      const std::string& peer_id) const;

  /// The interned shared key for `peer_id` (nullptr when untrusted). A
  /// deferred CryptoService verify job holds this, keeping the key — and
  /// its cached Montgomery context — alive past the submitting handler.
  [[nodiscard]] std::shared_ptr<const crypto::RsaPublicKey> peer_key_shared(
      const std::string& peer_id) const;

  /// The engine's crypto batching service (digest/verify submission).
  [[nodiscard]] runtime::CryptoService& crypto_service();

  /// Builds a header with fresh nonce and next sequence number for `txn`.
  MessageHeader next_header(MsgType flag, const std::string& recipient,
                            const std::string& ttp, const std::string& txn_id,
                            BytesView data_hash, common::SimTime time_limit);

  /// Encodes and journals one piece of accepted evidence; no-op without a
  /// bound journal. Defined in actor.cpp.
  void journal_evidence(const std::string& role, const std::string& txn_id,
                        const std::string& signer,
                        const std::string& object_key, std::size_t chunk_size,
                        const MessageHeader& header,
                        const OpenedEvidence& opened);

  net::Network* network_;
  pki::Identity* identity_;
  crypto::Drbg* rng_;
  ActorStats stats_;
  persist::Journal* journal_ = nullptr;

 private:
  /// The shared inbound path (decode, screen, dispatch) — reached directly
  /// from the network, or through the reliable channel's dedup when one is
  /// installed.
  void receive(const net::Envelope& envelope);

  std::unique_ptr<net::ReliableChannel> channel_;
  std::string id_;
  net::EndpointId self_id_ = 0;  ///< interned once; sends skip string hashing
  std::string default_topic_ = "nr";
  std::string reply_topic_;  ///< topic of the message currently being handled
  ScreeningPolicy policy_;
  /// Peer keys are interned process-wide (pki/key_intern.h): a fleet's
  /// (actor, peer) trust edges share one immutable copy per distinct key
  /// instead of duplicating BigInts per actor.
  std::unordered_map<std::string, std::shared_ptr<const crypto::RsaPublicKey>>
      peers_;
  std::unordered_set<Bytes, common::BytesHash> seen_nonces_;
  /// Highest sequence seen, keyed "txn|sender".
  std::unordered_map<std::string, std::uint64_t> txn_last_seq_;
  /// Next sequence to emit, keyed by txn (advanced past anything received).
  std::unordered_map<std::string, std::uint64_t> txn_next_seq_;
};

}  // namespace tpnr::nr
