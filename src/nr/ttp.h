// The Trusted Third Party (§4.3, Fig. 6(c)): invoked only when the two-party
// exchange stalls ("initiated as the last course"). On a resolve request it
// verifies genuineness, queries the respondent with a timestamped query, and
// either relays the receipt back or — on timeout — issues a signed
// "session failed, respondent did not respond" statement. All verdicts are
// logged for the arbitrator.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "nr/actor.h"

namespace tpnr::nr {

/// A logged TTP decision, queryable by the arbitrator.
struct TtpVerdictRecord {
  std::string txn_id;
  std::string initiator;
  std::string respondent;
  std::string outcome;  ///< "continued" / "restart" / "no-response" / "invalid-request"
  common::SimTime decided_at = 0;
  Bytes statement;            ///< canonical statement bytes
  Bytes statement_signature;  ///< Sign_TTP(statement)
};

struct TtpOptions {
  common::SimTime respondent_timeout = 10 * common::kSecond;
  common::SimTime reply_window = 10 * common::kSecond;
};

/// Which of `partitions` TTP instances adjudicates `txn_id` (FNV-1a 64 of
/// the id, mod the partition count). Every party — the client escalating,
/// the provider resolving, the arbitrator replaying — computes the same
/// partition from the txn id alone, so a fleet's resolve traffic spreads
/// over N independent signers without any coordination message.
[[nodiscard]] std::uint32_t ttp_partition_of(const std::string& txn_id,
                                             std::uint32_t partitions);

/// Canonical name of partition `index` of the TTP fleet rooted at `base`
/// ("ttp" -> "ttp.p0", "ttp.p1", ...). One name per independent PKI
/// identity/signer.
[[nodiscard]] std::string ttp_partition_name(const std::string& base,
                                             std::uint32_t index);

class TtpActor final : public NrActor {
 public:
  TtpActor(std::string id, net::Network& network, pki::Identity& identity,
           crypto::Drbg& rng, TtpOptions options = TtpOptions{});

  [[nodiscard]] const std::vector<TtpVerdictRecord>& log() const noexcept {
    return log_;
  }
  /// Latest verdict for a transaction, if any.
  [[nodiscard]] std::optional<TtpVerdictRecord> verdict_for(
      const std::string& txn_id) const;
  /// How many duplicate resolve requests were answered from the cached
  /// verdict instead of being re-adjudicated (idempotence accounting).
  [[nodiscard]] std::uint64_t verdicts_resent() const noexcept {
    return verdicts_resent_;
  }

 protected:
  void on_message(const NrMessage& message) override;

 private:
  struct PendingResolve {
    std::string initiator;
    std::string respondent;
    MessageHeader original_header;
    std::string report;
    bool settled = false;
    // Cached verdict material, kept so a duplicate resolve request (client
    // retry after a lost verdict) gets the SAME decision re-sent — same
    // statement bytes, same signature — instead of being re-adjudicated.
    std::string outcome;
    Bytes receipt_header;
    Bytes receipt_evidence;
    Bytes statement;
    Bytes statement_signature;
  };

  void handle_resolve_request(const NrMessage& message);
  /// Continuation of handle_resolve_request after the initiator-signature
  /// check (which runs through the crypto batching service).
  void finish_resolve_request(const MessageHeader& h,
                              const std::string& respondent,
                              const std::string& report,
                              const Bytes& original_header_bytes, bool sig_ok);
  void handle_resolve_response(const NrMessage& message);
  void deliver_verdict(const std::string& txn_id, const std::string& outcome,
                       BytesView receipt_header, BytesView receipt_evidence);
  /// Re-sends the cached verdict under a fresh header; no new log entry.
  void resend_verdict(const std::string& txn_id);

  TtpOptions options_;
  std::map<std::string, PendingResolve> pending_;
  std::vector<TtpVerdictRecord> log_;
  std::uint64_t verdicts_resent_ = 0;
};

}  // namespace tpnr::nr
