#include "nr/arbitrator.h"

#include "crypto/hash.h"

namespace tpnr::nr {

std::string ruling_name(RulingKind kind) {
  switch (kind) {
    case RulingKind::kDataIntact:
      return "data-intact";
    case RulingKind::kProviderFault:
      return "provider-fault";
    case RulingKind::kUserFault:
      return "user-fault";
    case RulingKind::kInconclusive:
      return "inconclusive";
  }
  return "unknown";
}

Ruling Arbitrator::arbitrate(const DisputeCase& dispute) {
  // 1. Validate whatever evidence each side presents. Presenting evidence
  //    that fails verification is counted against the presenter.
  bool alice_evidence_valid = false;
  if (dispute.alice_nrr) {
    const auto& [header, opened] = *dispute.alice_nrr;
    alice_evidence_valid =
        header.txn_id == dispute.txn_id &&
        verify_evidence_signatures(dispute.bob_key, header, opened);
  }
  bool bob_evidence_valid = false;
  if (dispute.bob_nro) {
    const auto& [header, opened] = *dispute.bob_nro;
    bob_evidence_valid =
        header.txn_id == dispute.txn_id &&
        verify_evidence_signatures(dispute.alice_key, header, opened);
  }
  bool ttp_verdict_valid = false;
  if (dispute.ttp_verdict && dispute.ttp_key) {
    ttp_verdict_valid = pki::Identity::verify(
        *dispute.ttp_key, dispute.ttp_verdict->statement,
        dispute.ttp_verdict->statement_signature);
  }

  // 2. A signed TTP "no-response" statement means the provider stonewalled
  //    the Resolve procedure: the honest party must not suffer (§4.3).
  if (ttp_verdict_valid && dispute.ttp_verdict->outcome == "no-response") {
    return {RulingKind::kProviderFault,
            "TTP attests the provider ignored the Resolve query"};
  }

  // 3. No verifiable digest agreement from either side: nothing to rule on.
  if (!alice_evidence_valid && !bob_evidence_valid) {
    return {RulingKind::kInconclusive,
            "neither party presents verifiable evidence"};
  }

  // 4. Establish the agreed data hash. If both sides hold valid evidence
  //    the hashes must concur — they were produced over the same exchange.
  common::Bytes agreed_hash;
  if (alice_evidence_valid && bob_evidence_valid) {
    if (dispute.alice_nrr->first.data_hash !=
        dispute.bob_nro->first.data_hash) {
      return {RulingKind::kInconclusive,
              "valid evidence on both sides but over different hashes"};
    }
    agreed_hash = dispute.alice_nrr->first.data_hash;
  } else if (alice_evidence_valid) {
    agreed_hash = dispute.alice_nrr->first.data_hash;
  } else {
    agreed_hash = dispute.bob_nro->first.data_hash;
  }

  // 5. The provider must produce the object.
  if (!dispute.current_data) {
    // With only Bob's NRO and no Alice complaint there is nothing against
    // the provider... but an NRO proves he accepted custody of the object.
    return {RulingKind::kProviderFault,
            "provider cannot produce the object it holds evidence for"};
  }

  // 6. Compare the produced bytes against the agreement.
  const common::Bytes current_hash = crypto::sha256(*dispute.current_data);
  if (current_hash == agreed_hash) {
    if (dispute.user_claims_tamper) {
      return {RulingKind::kUserFault,
              "served data matches the signed agreement; the tamper claim "
              "is false (blackmail attempt)"};
    }
    return {RulingKind::kDataIntact,
            "served data matches the signed agreement"};
  }
  return {RulingKind::kProviderFault,
          "provider's data does not match the hash it signed in the NRR"};
}

}  // namespace tpnr::nr
