// Multi-provider replication (extension, after the paper's reference to
// secure MULTI-party non-repudiation). One client stores the same object at
// N providers, holding an independent NRR from each; fetches compare every
// replica against the signed hash, so a tampering replica is not merely
// detected but IDENTIFIED (its own receipt convicts it), and the object is
// repaired from any healthy replica.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "nr/client.h"

namespace tpnr::nr {

/// Health of one replica after a fetch round.
struct ReplicaReport {
  std::string provider;
  std::string txn_id;
  bool receipt_held = false;   ///< NRR obtained at store time
  bool fetched = false;
  bool integrity_ok = false;   ///< served data matches the signed hash
};

/// Aggregate state of one replicated object.
struct GroupStatus {
  std::size_t replicas = 0;
  std::size_t acknowledged = 0;  ///< replicas whose NRR the client holds
  std::size_t healthy = 0;       ///< fetched + integrity ok
  std::size_t faulty = 0;        ///< fetched but integrity violated
  std::size_t unresponsive = 0;  ///< no usable fetch
};

/// Thin orchestration over a ClientActor: one store()/fetch() per provider,
/// plus cross-replica bookkeeping. Drive the network between calls.
class ReplicationCoordinator {
 public:
  ReplicationCoordinator(ClientActor& client, std::vector<std::string>
                             providers,
                         std::string ttp);

  /// Stores `data` at every provider. Returns a group id.
  std::string store_replicated(const std::string& object_key, BytesView data);

  /// Issues a fetch to every replica of the group.
  void fetch_all(const std::string& group_id);

  /// Per-replica health, computed from the client's transaction states.
  [[nodiscard]] std::vector<ReplicaReport> report(
      const std::string& group_id) const;
  [[nodiscard]] GroupStatus status(const std::string& group_id) const;

  /// Returns data from any replica that fetched with integrity intact, or
  /// nullopt when every replica failed.
  [[nodiscard]] std::optional<Bytes> healthy_copy(
      const std::string& group_id) const;

  /// Re-stores a healthy copy at every faulty/unresponsive replica (new
  /// transactions). Returns the number of repairs issued; run the network
  /// afterwards. Throws ProtocolError if no healthy copy exists.
  std::size_t repair(const std::string& group_id);

  /// The provider -> txn map of a group (for dispute preparation).
  [[nodiscard]] const std::map<std::string, std::string>* transactions(
      const std::string& group_id) const;

 private:
  struct Group {
    std::string object_key;
    std::map<std::string, std::string> txns;  ///< provider -> txn id
  };

  ClientActor* client_;
  std::vector<std::string> providers_;
  std::string ttp_;
  std::map<std::string, Group> groups_;
  std::uint64_t next_group_ = 1;
};

}  // namespace tpnr::nr
