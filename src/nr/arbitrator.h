// The Arbitrator (Fig. 6(d)): asks Alice and Bob for their evidence, pulls
// any TTP verdicts, re-examines the object the provider can produce, and
// rules. Pure evidence evaluation — it is not a network actor, mirroring the
// figure where arbitration sits outside the protocol proper.
#pragma once

#include <optional>
#include <string>

#include "crypto/rsa.h"
#include "nr/evidence.h"
#include "nr/ttp.h"

namespace tpnr::nr {

enum class RulingKind {
  kDataIntact,     ///< provider serves bytes matching the agreed hash
  kProviderFault,  ///< provider signed a receipt it cannot honour
  kUserFault,      ///< user's claim contradicts valid evidence (blackmail)
  kInconclusive,   ///< evidence insufficient on both sides
};
std::string ruling_name(RulingKind kind);

/// Everything laid before the arbitrator for one transaction.
struct DisputeCase {
  std::string txn_id;
  crypto::RsaPublicKey alice_key;
  crypto::RsaPublicKey bob_key;
  std::optional<crypto::RsaPublicKey> ttp_key;

  /// Alice presents her NRR (Bob's signed receipt) if she has one.
  std::optional<std::pair<MessageHeader, OpenedEvidence>> alice_nrr;
  /// Bob presents his NRO (Alice's signed origin) if he has one.
  std::optional<std::pair<MessageHeader, OpenedEvidence>> bob_nro;
  /// TTP verdict on record, if the Resolve mode ran.
  std::optional<TtpVerdictRecord> ttp_verdict;
  /// The object bytes Bob produces on demand (nullopt: cannot produce).
  std::optional<common::Bytes> current_data;
  /// Whether the user is alleging tampering (vs. a routine audit).
  bool user_claims_tamper = false;
};

struct Ruling {
  RulingKind kind = RulingKind::kInconclusive;
  std::string rationale;
};

class Arbitrator {
 public:
  /// Evaluates the evidence per the §4 decision rules. Deterministic; the
  /// same case always yields the same ruling.
  [[nodiscard]] static Ruling arbitrate(const DisputeCase& dispute);
};

}  // namespace tpnr::nr
