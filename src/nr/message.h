// TPNR wire format (§4.1).
//
// Every message carries, in plaintext "for convenience": a flag labelling
// the process, the sender / recipient / TTP ids, the transaction id, a
// sequence number that increases one by one, a random nonce, a time limit
// (§5.5), and the hash of the data. The evidence is
//     Encrypt_recipient{ Sign_sender(H(data)), Sign_sender(header) }
// (§4.1: "Encrypt{Sign(HashofData), Sign(Plaintext)}").
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/payload.h"

namespace tpnr::nr {

using common::Bytes;
using common::BytesView;
using common::SimTime;

/// The flag field: which step of which sub-protocol this message is.
enum class MsgType : std::uint8_t {
  // Normal mode (off-line TTP, 2 steps).
  kStoreRequest = 1,   ///< Alice -> Bob: data + NRO
  kStoreReceipt = 2,   ///< Bob -> Alice: NRR
  kFetchRequest = 3,   ///< Alice -> Bob: download request (presents NRR)
  kFetchResponse = 4,  ///< Bob -> Alice: data + evidence
  kChunkRequest = 5,   ///< Alice -> Bob: audit one chunk of a chunked object
  kChunkResponse = 6,  ///< Bob -> Alice: chunk + Merkle proof + evidence

  // Abort mode (§4.2, still off-line).
  kAbortRequest = 10,  ///< Alice -> Bob: txn id + NRO
  kAbortAccept = 11,   ///< Bob -> Alice: accept + NRR
  kAbortReject = 12,   ///< Bob -> Alice: reject + NRR
  kAbortError = 13,    ///< Bob -> Alice: malformed request, regenerate

  // Resolve mode (§4.3, in-line TTP).
  kResolveRequest = 20,   ///< initiator -> TTP: txn id + evidence + report
  kResolveQuery = 21,     ///< TTP -> respondent: resolve query + timestamp
  kResolveResponse = 22,  ///< respondent -> TTP: NRR/NRO + chosen action
  kResolveVerdict = 23,   ///< TTP -> initiator: outcome (incl. "no response")

  // Dynamic-data extension (src/dyn/): versioned mutations + compact audits.
  kDynStoreRequest = 30,  ///< client -> provider: chunks + tags + version rec
  kDynStoreReceipt = 31,  ///< provider -> client: countersigned version rec
  kMutateRequest = 32,    ///< client -> provider: one chunk op + version rec
  kMutateReceipt = 33,    ///< provider -> client: countersigned version rec
  kMutateError = 34,      ///< provider -> client: rejected (bad base version)
  kAggChallenge = 35,     ///< auditor -> provider: (seed, count) PoR challenge
  kAggResponse = 36,      ///< provider -> auditor: (σ, μ, batch proof)

  // Fork-consistency extension (src/consistency/): multi-client shared
  // objects under one provider-signed global operation order.
  kConsOpRequest = 40,  ///< client -> provider: op + record + observed head
  kConsCommit = 41,     ///< provider -> every client of the object: the
                        ///< countersigned record + signed view commitment
  kConsOpError = 42,    ///< provider -> client: stale view + missing suffix
  kViewQuery = 43,      ///< client -> provider: send me the full op log
  kViewUpdate = 44,     ///< provider -> client: replayable op log
  kGossipViews = 45,    ///< client -> client: commitment tail (cons.gossip)
  kForkReport = 46,     ///< client -> auditor/TTP: equivocation proof

  // Fleet placement (runtime/placement.h): object->provider routing over a
  // consistent-hash ring, with a directory for lookup misses.
  kDirLookup = 50,  ///< client -> directory: which provider owns this key?
  kDirReply = 51,   ///< directory -> client: owner name + key + ring version
};

std::string msg_type_name(MsgType type);

/// The plaintext header — the exact bytes Sign_sender(header) covers.
struct MessageHeader {
  MsgType flag = MsgType::kStoreRequest;
  std::string sender;
  std::string recipient;
  std::string ttp;
  std::string txn_id;
  std::uint64_t seq_no = 0;
  Bytes nonce;             ///< 16 random bytes, unique per message
  SimTime time_limit = 0;  ///< absolute deadline for acting on this message
  Bytes data_hash;         ///< SHA-256 of the object under discussion

  /// Canonical encoding (what gets signed).
  [[nodiscard]] Bytes encode() const;
  static MessageHeader decode(BytesView data);
};

/// A full protocol message as it crosses the (simulated SSL) channel.
/// Payload and evidence are COW buffers: an actor that stores, retransmits,
/// and forwards the same object shares one allocation throughout.
struct NrMessage {
  MessageHeader header;
  common::Payload payload;   ///< object bytes on store/fetch, reports elsewhere
  common::Payload evidence;  ///< Encrypt_recipient{Sign(H(data)), Sign(header)}

  [[nodiscard]] Bytes encode() const;
  static NrMessage decode(BytesView data);
};

}  // namespace tpnr::nr
