#include "nr/evidence.h"

#include "common/error.h"
#include "common/serial.h"

namespace tpnr::nr {

Bytes make_evidence(const pki::Identity& sender,
                    const crypto::RsaPublicKey& recipient_key,
                    const MessageHeader& header, crypto::Drbg& rng) {
  const Bytes sig_hash = sender.sign(header.data_hash);
  const Bytes sig_header = sender.sign(header.encode());

  common::BinaryWriter inner;
  inner.bytes(sig_hash);
  inner.bytes(sig_header);
  return pki::Identity::seal_for(recipient_key, inner.data(), rng);
}

std::optional<OpenedEvidence> open_evidence(
    const pki::Identity& recipient, const crypto::RsaPublicKey& sender_key,
    const MessageHeader& claimed_header, BytesView evidence) {
  std::optional<OpenedEvidence> opened =
      open_evidence_unverified(recipient, claimed_header, evidence);
  if (!opened) return std::nullopt;
  if (!verify_evidence_signatures(sender_key, claimed_header, *opened)) {
    return std::nullopt;
  }
  return opened;
}

std::optional<OpenedEvidence> open_evidence_unverified(
    const pki::Identity& recipient, const MessageHeader& claimed_header,
    BytesView evidence) {
  Bytes inner;
  try {
    inner = recipient.unseal(evidence);
  } catch (const common::CryptoError&) {
    return std::nullopt;
  }

  OpenedEvidence opened;
  try {
    common::BinaryReader r(inner);
    opened.data_hash_signature = r.bytes();
    opened.header_signature = r.bytes();
    r.expect_done();
  } catch (const common::SerialError&) {
    return std::nullopt;
  }
  opened.header = claimed_header;
  return opened;
}

bool verify_evidence_signatures(const crypto::RsaPublicKey& sender_key,
                                const MessageHeader& header,
                                const OpenedEvidence& opened) {
  return pki::Identity::verify(sender_key, header.data_hash,
                               opened.data_hash_signature) &&
         pki::Identity::verify(sender_key, header.encode(),
                               opened.header_signature);
}

}  // namespace tpnr::nr
