#include "nr/baseline.h"

#include "common/serial.h"
#include "crypto/hash.h"

namespace tpnr::nr {

namespace {

Bytes sign_triple(const pki::Identity& signer, const std::string& tag,
                  const std::string& peer, const std::string& label,
                  BytesView digest) {
  common::BinaryWriter w;
  w.str(tag);
  w.str(peer);
  w.str(label);
  w.bytes(digest);
  return signer.sign(w.data());
}

bool verify_triple(const crypto::RsaPublicKey& key, const std::string& tag,
                   const std::string& peer, const std::string& label,
                   BytesView digest, BytesView signature) {
  common::BinaryWriter w;
  w.str(tag);
  w.str(peer);
  w.str(label);
  w.bytes(digest);
  return pki::Identity::verify(key, w.data(), signature);
}

}  // namespace

TraditionalNrProtocol::TraditionalNrProtocol(net::Network& network,
                                             pki::Identity& alice,
                                             pki::Identity& bob,
                                             pki::Identity& ttp,
                                             crypto::Drbg& rng)
    : network_(&network), alice_(&alice), bob_(&bob), ttp_(&ttp), rng_(&rng) {
  network_->attach(alice_ep(),
                   [this](const net::Envelope& e) { on_alice(e); });
  network_->attach(bob_ep(), [this](const net::Envelope& e) { on_bob(e); });
  network_->attach(ttp_ep(), [this](const net::Envelope& e) { on_ttp(e); });
}

std::string TraditionalNrProtocol::exchange(BytesView message) {
  const std::string label = "zg-" + std::to_string(next_label_++);
  Session session;
  session.result.started_at = network_->now();
  session.plaintext = Bytes(message.begin(), message.end());
  session.key = rng_->bytes(32);

  const crypto::Aead aead(session.key);
  session.ciphertext = aead.seal(message, common::to_bytes(label), *rng_);

  // Step 1: A -> B : c, NRO.
  common::BinaryWriter w;
  w.str("msg1");
  w.str(label);
  w.bytes(session.ciphertext);
  w.bytes(sign_triple(*alice_, "NRO", bob_->id(), label,
                      crypto::sha256(session.ciphertext)));
  session.result.messages = 1;
  session.result.steps = 1;
  sessions_[label] = std::move(session);
  network_->send(alice_ep(), bob_ep(), "zg", w.take());
  return label;
}

void TraditionalNrProtocol::on_bob(const net::Envelope& envelope) {
  common::BinaryReader r(envelope.payload);
  const std::string kind = r.str();
  const std::string label = r.str();
  const auto it = sessions_.find(label);
  if (it == sessions_.end()) return;
  Session& session = it->second;

  if (kind == "msg1" && !session.b_sent_nrr) {
    const Bytes ciphertext = r.bytes();
    const Bytes nro = r.bytes();
    if (!verify_triple(alice_->public_key(), "NRO", bob_->id(), label,
                       crypto::sha256(ciphertext), nro)) {
      return;
    }
    session.b_sent_nrr = true;
    // Step 2: B -> A : NRR.
    common::BinaryWriter w;
    w.str("msg2");
    w.str(label);
    w.bytes(sign_triple(*bob_, "NRR", alice_->id(), label,
                        crypto::sha256(ciphertext)));
    ++session.result.messages;
    session.result.steps = 2;
    network_->send(bob_ep(), alice_ep(), "zg", w.take());
    // Step 4b: B polls the TTP for con_k (modelled as one fetch issued as
    // soon as B has sent the NRR; the TTP answers once the key arrives).
    common::BinaryWriter fetch;
    fetch.str("fetch");
    fetch.str(label);
    fetch.str(bob_->id());
    ++session.result.messages;
    network_->send(bob_ep(), ttp_ep(), "zg", fetch.take());
  } else if (kind == "con") {
    const Bytes key = r.bytes();
    const Bytes con = r.bytes();
    if (!verify_triple(ttp_->public_key(), "CON", label, label,
                       crypto::sha256(key), con)) {
      return;
    }
    session.b_has_con = true;
    const crypto::Aead aead(key);
    try {
      session.result.recovered_plaintext =
          aead.open(session.ciphertext, common::to_bytes(label));
    } catch (const common::CryptoError&) {
      return;
    }
    maybe_finish(session);
  }
}

void TraditionalNrProtocol::on_alice(const net::Envelope& envelope) {
  common::BinaryReader r(envelope.payload);
  const std::string kind = r.str();
  const std::string label = r.str();
  const auto it = sessions_.find(label);
  if (it == sessions_.end()) return;
  Session& session = it->second;

  if (kind == "msg2") {
    const Bytes nrr = r.bytes();
    if (!verify_triple(bob_->public_key(), "NRR", alice_->id(), label,
                       crypto::sha256(session.ciphertext), nrr)) {
      return;
    }
    // Step 3: A -> TTP : k, sub_k.
    common::BinaryWriter w;
    w.str("submit");
    w.str(label);
    w.bytes(session.key);
    w.bytes(sign_triple(*alice_, "SUB", bob_->id(), label,
                        crypto::sha256(session.key)));
    ++session.result.messages;
    session.result.steps = 3;
    network_->send(alice_ep(), ttp_ep(), "zg", w.take());
    // Step 4a: A fetches con_k.
    common::BinaryWriter fetch;
    fetch.str("fetch");
    fetch.str(label);
    fetch.str(alice_->id());
    ++session.result.messages;
    network_->send(alice_ep(), ttp_ep(), "zg", fetch.take());
  } else if (kind == "con") {
    session.a_has_con = true;
    session.result.steps = 4;
    maybe_finish(session);
  }
}

void TraditionalNrProtocol::on_ttp(const net::Envelope& envelope) {
  common::BinaryReader r(envelope.payload);
  const std::string kind = r.str();
  const std::string label = r.str();
  const auto it = sessions_.find(label);
  if (it == sessions_.end()) return;
  Session& session = it->second;

  if (kind == "submit") {
    const Bytes key = r.bytes();
    const Bytes sub = r.bytes();
    if (!verify_triple(alice_->public_key(), "SUB", bob_->id(), label,
                       crypto::sha256(key), sub)) {
      return;
    }
    ttp_escrow_[label] = key;
  } else if (kind == "fetch") {
    const std::string who = r.str();
    // If the key is not escrowed yet, re-poll shortly (in-line TTP latency
    // — this is precisely the cost the TPNR design avoids).
    if (!ttp_escrow_.contains(label)) {
      const Bytes payload(envelope.payload.begin(), envelope.payload.end());
      const std::string from = envelope.from;
      ++session.result.messages;  // the re-poll is real protocol traffic
      network_->schedule(500 * common::kMillisecond,
                         [this, from, payload]() mutable {
                           network_->send(from, ttp_ep(), "zg",
                                          Bytes(payload));
                         });
      return;
    }
    const Bytes& key = ttp_escrow_[label];
    common::BinaryWriter w;
    w.str("con");
    w.str(label);
    w.bytes(key);
    w.bytes(sign_triple(*ttp_, "CON", label, label, crypto::sha256(key)));
    ++session.result.messages;
    network_->send(ttp_ep(), who == alice_->id() ? alice_ep() : bob_ep(),
                   "zg", w.take());
  }
}

void TraditionalNrProtocol::maybe_finish(Session& session) {
  if (session.a_has_con && session.b_has_con && !session.result.completed) {
    session.result.completed = true;
    session.result.completed_at = network_->now();
  }
}

std::optional<BaselineOutcome> TraditionalNrProtocol::outcome(
    const std::string& label) const {
  const auto it = sessions_.find(label);
  if (it == sessions_.end()) return std::nullopt;
  return it->second.result;
}

}  // namespace tpnr::nr
