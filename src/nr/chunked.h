// Chunked large-object support (extension).
//
// §6 notes that cloud storage is only attractive for TB-scale backup. For
// such objects, whole-object hashing makes every integrity check a full
// download. This extension stores an object under a Merkle root: the root
// (not the flat hash) is what both parties sign into the NRO/NRR, so any
// single chunk can later be verified — or audited at random — against the
// signed agreement with one chunk + one logarithmic proof on the wire.
//
// Wire additions: MsgType::kChunkRequest / kChunkResponse, and a serialized
// MerkleProof.
#pragma once

#include "crypto/merkle.h"
#include "nr/message.h"

namespace tpnr::nr {

/// Canonical MerkleProof encoding used inside chunk responses.
Bytes encode_proof(const crypto::MerkleProof& proof);
crypto::MerkleProof decode_proof(BytesView data);

/// Outcome of one chunk audit, recorded on the client transaction.
struct ChunkAuditResult {
  std::size_t chunk_index = 0;
  bool verified = false;   ///< proof chains to the signed root
  std::string detail;
};

}  // namespace tpnr::nr
