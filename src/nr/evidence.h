// Evidence construction and verification (§4.1).
//
//   evidence = Encrypt_recipient{ Sign_sender(H(data)), Sign_sender(header) }
//
// Properties delivered (and tested):
//  * non-repudiation: only the sender's private key can have produced the
//    inner signatures;
//  * confidentiality: only the recipient can open the envelope;
//  * binding: the signed header carries ids, txn, seq, nonce, time limit and
//    the data hash, so evidence cannot be replayed into another context.
#pragma once

#include <optional>
#include <string>

#include "crypto/drbg.h"
#include "nr/message.h"
#include "pki/identity.h"

namespace tpnr::nr {

/// What a successfully opened evidence envelope proves.
struct OpenedEvidence {
  Bytes data_hash_signature;  ///< Sign_sender(H(data))
  Bytes header_signature;     ///< Sign_sender(header)
  MessageHeader header;       ///< the header the signatures were checked against
};

/// Builds the evidence envelope for `header` (whose data_hash field must
/// already be set) addressed to `recipient_key`.
Bytes make_evidence(const pki::Identity& sender,
                    const crypto::RsaPublicKey& recipient_key,
                    const MessageHeader& header, crypto::Drbg& rng);

/// Decrypts with `recipient`'s private key and verifies both signatures
/// against `sender_key` and the claimed `header`. Returns nullopt on ANY
/// failure (wrong recipient, bad signature, header mismatch).
std::optional<OpenedEvidence> open_evidence(
    const pki::Identity& recipient, const crypto::RsaPublicKey& sender_key,
    const MessageHeader& claimed_header, BytesView evidence);

/// Decrypts and parses WITHOUT checking the signatures. Callers that defer
/// verification to the runtime's crypto batching service split the open
/// from the check; the evidence proves nothing until BOTH signatures pass
/// verify_evidence_signatures (or the batched equivalent over the same
/// header.data_hash / header.encode() messages).
std::optional<OpenedEvidence> open_evidence_unverified(
    const pki::Identity& recipient, const MessageHeader& claimed_header,
    BytesView evidence);

/// Verifies an already-opened evidence record against a (possibly different)
/// header/hash — used by the arbitrator, who receives evidence from the
/// parties rather than off the wire.
bool verify_evidence_signatures(const crypto::RsaPublicKey& sender_key,
                                const MessageHeader& header,
                                const OpenedEvidence& opened);

}  // namespace tpnr::nr
