// The traditional non-repudiation baseline the paper compares against
// (§4.4, §6): a Zhou–Gollmann-style protocol where the message key is
// escrowed with an IN-LINE TTP, so one store takes four protocol steps
// (six messages once both parties fetch the key confirmation):
//
//   1. A -> B   : c = Enc_k(m), NRO = Sign_A(B, L, H(c))
//   2. B -> A   : NRR = Sign_B(A, L, H(c))
//   3. A -> TTP : k,  sub = Sign_A(B, L, H(k))
//   4. A <- TTP : con = Sign_TTP(A, B, L, H(k))   (A fetches)
//      B <- TTP : con                              (B fetches)
//
// Implemented over the same simulated network as TPNR so step counts,
// message counts and completion latency are directly comparable
// (bench_fig6_tpnr_modes).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "crypto/aead.h"
#include "crypto/drbg.h"
#include "net/network.h"
#include "pki/identity.h"

namespace tpnr::nr {

using common::Bytes;
using common::BytesView;

/// Observable result of one baseline exchange.
struct BaselineOutcome {
  bool completed = false;
  std::uint64_t messages = 0;        ///< total protocol messages
  std::uint64_t steps = 0;           ///< protocol steps (paper's metric)
  common::SimTime started_at = 0;
  common::SimTime completed_at = 0;
  Bytes recovered_plaintext;         ///< what B decrypted after con_k
};

/// Runs Zhou–Gollmann exchanges between fixed parties over a Network.
class TraditionalNrProtocol {
 public:
  TraditionalNrProtocol(net::Network& network, pki::Identity& alice,
                        pki::Identity& bob, pki::Identity& ttp,
                        crypto::Drbg& rng);

  /// Starts one exchange of `message`; returns the label (key) identifying
  /// it. Drive network.run() to completion, then read outcome().
  std::string exchange(BytesView message);

  [[nodiscard]] std::optional<BaselineOutcome> outcome(
      const std::string& label) const;

 private:
  struct Session {
    BaselineOutcome result;
    Bytes key;         // k
    Bytes ciphertext;  // c
    Bytes plaintext;
    bool a_has_con = false;
    bool b_has_con = false;
    bool b_sent_nrr = false;
  };

  void on_alice(const net::Envelope& envelope);
  void on_bob(const net::Envelope& envelope);
  void on_ttp(const net::Envelope& envelope);
  void maybe_finish(Session& session);

  [[nodiscard]] std::string alice_ep() const { return alice_->id() + ".zg"; }
  [[nodiscard]] std::string bob_ep() const { return bob_->id() + ".zg"; }
  [[nodiscard]] std::string ttp_ep() const { return ttp_->id() + ".zg"; }

  net::Network* network_;
  pki::Identity* alice_;
  pki::Identity* bob_;
  pki::Identity* ttp_;
  crypto::Drbg* rng_;
  std::map<std::string, Session> sessions_;
  std::map<std::string, Bytes> ttp_escrow_;  ///< label -> (k, con)
  std::uint64_t next_label_ = 1;
};

}  // namespace tpnr::nr
