#include "nr/actor.h"

#include "persist/records.h"
#include "pki/key_intern.h"
#include "runtime/crypto_service.h"
#include "runtime/engine.h"

namespace tpnr::nr {

NrActor::NrActor(std::string id, net::Network& network,
                 pki::Identity& identity, crypto::Drbg& rng)
    : network_(&network), identity_(&identity), rng_(&rng),
      id_(std::move(id)) {
  network_->attach(id_, [this](const net::Envelope& envelope) {
    receive(envelope);
  });
  self_id_ = network_->endpoint_id(id_);
}

void NrActor::receive(const net::Envelope& envelope) {
  ++stats_.received;
  NrMessage message;
  try {
    message = NrMessage::decode(envelope.payload);
  } catch (const common::SerialError&) {
    ++stats_.rejected_bad_hash;
    return;
  }
  if (!screen(message)) return;
  ++stats_.accepted;
  // Replies sent from inside on_message stay on the inbound topic, so a
  // whole conversation is accounted under one topic.
  reply_topic_ = envelope.topic;
  on_message(message);
  reply_topic_.clear();
}

void NrActor::use_reliable(std::uint64_t seed, net::ReliableOptions options) {
  channel_ = std::make_unique<net::ReliableChannel>(*network_, id_, seed,
                                                    options);
  // The channel takes over the network endpoint; deduped app payloads come
  // back through the same screening path.
  channel_->attach([this](const net::Envelope& envelope) {
    receive(envelope);
  });
}

void NrActor::trust_peer(const std::string& peer_id,
                         crypto::RsaPublicKey key) {
  peers_[peer_id] = pki::intern_public_key(std::move(key));
}

const crypto::RsaPublicKey* NrActor::peer_key(
    const std::string& peer_id) const {
  const auto it = peers_.find(peer_id);
  return it == peers_.end() ? nullptr : it->second.get();
}

std::shared_ptr<const crypto::RsaPublicKey> NrActor::peer_key_shared(
    const std::string& peer_id) const {
  const auto it = peers_.find(peer_id);
  return it == peers_.end() ? nullptr : it->second;
}

runtime::CryptoService& NrActor::crypto_service() {
  return network_->engine().crypto_service();
}

bool NrActor::screen(const NrMessage& message) {
  const MessageHeader& h = message.header;
  // Reflection defence (§5.2): a message must name this actor as its
  // recipient; our own messages bounced back are rejected here.
  if (policy_.check_addressee && h.recipient != id_) {
    ++stats_.rejected_wrong_addressee;
    return false;
  }
  if (peer_key(h.sender) == nullptr) {
    ++stats_.rejected_unknown_sender;
    return false;
  }
  // Timeliness (§5.5): each message carries an absolute deadline.
  if (policy_.check_time_limit && h.time_limit != 0 &&
      network_->now() > h.time_limit) {
    ++stats_.rejected_expired;
    return false;
  }
  // Replay defence (§5.4): nonces are single-use.
  if (policy_.check_nonce && !h.nonce.empty() &&
      !seen_nonces_.insert(h.nonce).second) {
    ++stats_.rejected_replay;
    return false;
  }
  // Interleaving defence (§5.3): the sequence number must strictly increase
  // per (transaction, sender) — per sender, because a lost message must not
  // burn a number the peer will use (e.g. a dropped receipt followed by an
  // abort request).
  auto [it, inserted] =
      txn_last_seq_.try_emplace(h.txn_id + "|" + h.sender, 0);
  if (policy_.check_sequence && h.seq_no <= it->second) {
    ++stats_.rejected_bad_sequence;
    return false;
  }
  if (it->second < h.seq_no) it->second = h.seq_no;
  // Keep our emit counter ahead of whatever we have now seen.
  auto& next = txn_next_seq_[h.txn_id];
  if (next < h.seq_no) next = h.seq_no;
  return true;
}

void NrActor::send(const std::string& to, NrMessage message) {
  send_on_topic(to, reply_topic_.empty() ? default_topic_ : reply_topic_,
                std::move(message));
}

void NrActor::send_on_topic(const std::string& to, const std::string& topic,
                            NrMessage message) {
  ++stats_.sent;
  if (channel_ != nullptr) {
    channel_->send(to, topic, message.encode());
  } else {
    network_->send(self_id_, network_->endpoint_id(to),
                   network_->topic_id(topic), message.encode());
  }
}

void NrActor::journal_evidence(const std::string& role,
                               const std::string& txn_id,
                               const std::string& signer,
                               const std::string& object_key,
                               std::size_t chunk_size,
                               const MessageHeader& header,
                               const OpenedEvidence& opened) {
  if (journal_ == nullptr) return;
  persist::EvidenceRecord record;
  record.owner = id_;
  record.role = role;
  record.txn_id = txn_id;
  record.signer = signer;
  record.object_key = object_key;
  record.chunk_size = chunk_size;
  record.header = header;
  record.data_hash_signature = opened.data_hash_signature;
  record.header_signature = opened.header_signature;
  journal_->record(persist::RecordType::kEvidence, record.encode());
}

MessageHeader NrActor::next_header(MsgType flag, const std::string& recipient,
                                   const std::string& ttp,
                                   const std::string& txn_id,
                                   BytesView data_hash,
                                   common::SimTime time_limit) {
  MessageHeader h;
  h.flag = flag;
  h.sender = id_;
  h.recipient = recipient;
  h.ttp = ttp;
  h.txn_id = txn_id;
  h.seq_no = ++txn_next_seq_[txn_id];
  h.nonce = rng_->bytes(16);
  h.time_limit = time_limit;
  h.data_hash = Bytes(data_hash.begin(), data_hash.end());
  return h;
}

}  // namespace tpnr::nr
