#include "nr/replication.h"

#include "common/error.h"

namespace tpnr::nr {

ReplicationCoordinator::ReplicationCoordinator(
    ClientActor& client, std::vector<std::string> providers, std::string ttp)
    : client_(&client), providers_(std::move(providers)),
      ttp_(std::move(ttp)) {
  if (providers_.empty()) {
    throw common::ProtocolError("ReplicationCoordinator: no providers");
  }
}

std::string ReplicationCoordinator::store_replicated(
    const std::string& object_key, BytesView data) {
  Group group;
  group.object_key = object_key;
  for (const std::string& provider : providers_) {
    group.txns[provider] = client_->store(provider, ttp_, object_key, data);
  }
  const std::string group_id = "grp-" + std::to_string(next_group_++);
  groups_[group_id] = std::move(group);
  return group_id;
}

void ReplicationCoordinator::fetch_all(const std::string& group_id) {
  const auto it = groups_.find(group_id);
  if (it == groups_.end()) return;
  for (const auto& [provider, txn] : it->second.txns) {
    client_->fetch(txn);
  }
}

std::vector<ReplicaReport> ReplicationCoordinator::report(
    const std::string& group_id) const {
  std::vector<ReplicaReport> reports;
  const auto it = groups_.find(group_id);
  if (it == groups_.end()) return reports;
  for (const auto& [provider, txn_id] : it->second.txns) {
    ReplicaReport report;
    report.provider = provider;
    report.txn_id = txn_id;
    if (const ClientActor::Txn* txn = client_->transaction(txn_id)) {
      report.receipt_held = txn->nrr.has_value();
      report.fetched = txn->fetched;
      report.integrity_ok = txn->fetched && txn->fetch_integrity_ok;
    }
    reports.push_back(std::move(report));
  }
  return reports;
}

GroupStatus ReplicationCoordinator::status(const std::string& group_id) const {
  GroupStatus aggregate;
  for (const ReplicaReport& replica : report(group_id)) {
    ++aggregate.replicas;
    if (replica.receipt_held) ++aggregate.acknowledged;
    if (replica.integrity_ok) {
      ++aggregate.healthy;
    } else if (replica.fetched) {
      ++aggregate.faulty;
    } else {
      ++aggregate.unresponsive;
    }
  }
  return aggregate;
}

std::optional<Bytes> ReplicationCoordinator::healthy_copy(
    const std::string& group_id) const {
  const auto it = groups_.find(group_id);
  if (it == groups_.end()) return std::nullopt;
  for (const auto& [provider, txn_id] : it->second.txns) {
    const ClientActor::Txn* txn = client_->transaction(txn_id);
    if (txn != nullptr && txn->fetched && txn->fetch_integrity_ok) {
      return txn->fetched_data.to_bytes();
    }
  }
  return std::nullopt;
}

std::size_t ReplicationCoordinator::repair(const std::string& group_id) {
  const auto copy = healthy_copy(group_id);
  if (!copy) {
    throw common::ProtocolError(
        "ReplicationCoordinator::repair: no healthy replica to repair from");
  }
  auto it = groups_.find(group_id);
  std::size_t repairs = 0;
  for (auto& [provider, txn_id] : it->second.txns) {
    const ClientActor::Txn* txn = client_->transaction(txn_id);
    const bool healthy =
        txn != nullptr && txn->fetched && txn->fetch_integrity_ok;
    if (healthy) continue;
    // A fresh transaction (and fresh evidence) replaces the bad replica.
    txn_id = client_->store(provider, ttp_, it->second.object_key, *copy);
    ++repairs;
  }
  return repairs;
}

const std::map<std::string, std::string>* ReplicationCoordinator::transactions(
    const std::string& group_id) const {
  const auto it = groups_.find(group_id);
  return it == groups_.end() ? nullptr : &it->second.txns;
}

}  // namespace tpnr::nr
