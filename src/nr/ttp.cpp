#include "nr/ttp.h"

#include "common/serial.h"
#include "runtime/crypto_service.h"

namespace tpnr::nr {

std::uint32_t ttp_partition_of(const std::string& txn_id,
                               std::uint32_t partitions) {
  if (partitions <= 1) return 0;
  // FNV-1a 64. Not a crypto hash — it only needs to be a fixed, documented
  // function every party computes identically; an adversary steering txns
  // to one partition gains nothing (partitions are equally trusted).
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : txn_id) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return static_cast<std::uint32_t>(h % partitions);
}

std::string ttp_partition_name(const std::string& base, std::uint32_t index) {
  return base + ".p" + std::to_string(index);
}

TtpActor::TtpActor(std::string id, net::Network& network,
                   pki::Identity& identity, crypto::Drbg& rng,
                   TtpOptions options)
    : NrActor(std::move(id), network, identity, rng), options_(options) {}

std::optional<TtpVerdictRecord> TtpActor::verdict_for(
    const std::string& txn_id) const {
  // Search from the back: the most recent verdict governs.
  for (auto it = log_.rbegin(); it != log_.rend(); ++it) {
    if (it->txn_id == txn_id) return *it;
  }
  return std::nullopt;
}

void TtpActor::on_message(const NrMessage& message) {
  switch (message.header.flag) {
    case MsgType::kResolveRequest:
      handle_resolve_request(message);
      break;
    case MsgType::kResolveResponse:
      handle_resolve_response(message);
      break;
    default:
      break;
  }
}

void TtpActor::handle_resolve_request(const NrMessage& message) {
  const MessageHeader& h = message.header;

  std::string respondent;
  std::string report;
  Bytes original_header_bytes;
  Bytes header_signature;
  Bytes nro_evidence;
  try {
    common::BinaryReader r(message.payload);
    respondent = r.str();
    report = r.str();
    original_header_bytes = r.bytes();
    header_signature = r.bytes();
    nro_evidence = r.bytes();
    r.expect_done();
  } catch (const common::SerialError&) {
    return;
  }

  // Genuineness: the initiator must prove the original header is theirs.
  // The signature check runs through the crypto batching service — resolve
  // bursts (every client escalating after a provider failure) batch under
  // one initiator-key group per flush — and the rest of the handler is the
  // completion.
  std::shared_ptr<const crypto::RsaPublicKey> initiator_key =
      peer_key_shared(h.sender);
  auto continue_resolve = [this, h, respondent, report,
                           original_header_bytes](bool sig_ok) {
    finish_resolve_request(h, respondent, report, original_header_bytes,
                           sig_ok);
  };
  if (initiator_key == nullptr) {
    continue_resolve(false);
    return;
  }
  std::vector<runtime::VerifyJob> jobs(1);
  jobs[0].key = std::move(initiator_key);
  jobs[0].message = original_header_bytes;
  jobs[0].signature = std::move(header_signature);
  crypto_service().submit_verifies(
      std::move(jobs),
      [cont = std::move(continue_resolve)](std::vector<bool> verdicts) {
        cont(verdicts[0]);
      });
}

void TtpActor::finish_resolve_request(const MessageHeader& h,
                                      const std::string& respondent,
                                      const std::string& report,
                                      const Bytes& original_header_bytes,
                                      bool sig_ok) {
  MessageHeader original_header;
  bool genuine = sig_ok;
  if (genuine) {
    try {
      original_header = MessageHeader::decode(original_header_bytes);
    } catch (const common::SerialError&) {
      genuine = false;
    }
  }
  // Consistency: the resolve must concern a transaction between the
  // initiator and the named respondent.
  if (genuine) {
    genuine = original_header.txn_id == h.txn_id &&
              original_header.sender == h.sender &&
              original_header.recipient == respondent &&
              peer_key(respondent) != nullptr;
  }
  // Idempotence: a repeated genuine request for a transaction we already
  // handled does not re-open the case. Settled → re-send the cached
  // verdict (the client's retry means the first copy was lost); still
  // in-flight → the respondent query and its timer are already armed, so
  // the duplicate is simply dropped.
  const auto existing = pending_.find(h.txn_id);
  if (genuine && existing != pending_.end() &&
      existing->second.initiator == h.sender) {
    if (existing->second.settled) resend_verdict(h.txn_id);
    return;
  }
  if (!genuine) {
    PendingResolve bad;
    bad.initiator = h.sender;
    bad.respondent = respondent;
    bad.settled = false;
    pending_[h.txn_id] = bad;
    deliver_verdict(h.txn_id, "invalid-request", {}, {});
    return;
  }

  PendingResolve pending;
  pending.initiator = h.sender;
  pending.respondent = respondent;
  pending.original_header = original_header;
  pending.report = report;
  pending_[h.txn_id] = std::move(pending);

  // "the TTP will generate the Resolve request to the recipient along with
  // a time stamp" — the header's time_limit carries the deadline.
  common::BinaryWriter payload;
  payload.bytes(original_header_bytes);

  NrMessage query;
  query.header = next_header(MsgType::kResolveQuery, respondent, id(),
                             h.txn_id, original_header.data_hash,
                             network_->now() + options_.reply_window);
  query.payload = payload.take();
  send(respondent, std::move(query));

  const std::string txn_id = h.txn_id;
  network_->schedule(options_.respondent_timeout, [this, txn_id] {
    const auto it = pending_.find(txn_id);
    if (it == pending_.end() || it->second.settled) return;
    deliver_verdict(txn_id, "no-response", {}, {});
  });
}

void TtpActor::handle_resolve_response(const NrMessage& message) {
  const MessageHeader& h = message.header;
  const auto it = pending_.find(h.txn_id);
  if (it == pending_.end() || it->second.settled) return;
  if (h.sender != it->second.respondent) return;

  std::string action;
  Bytes receipt_header;
  Bytes receipt_evidence;
  try {
    common::BinaryReader r(message.payload);
    action = r.str();
    receipt_header = r.bytes();
    receipt_evidence = r.bytes();
    r.expect_done();
  } catch (const common::SerialError&) {
    return;
  }
  const std::string outcome =
      (action == "continue" && !receipt_evidence.empty()) ? "continued"
                                                          : "restart";
  deliver_verdict(h.txn_id, outcome, receipt_header, receipt_evidence);
}

void TtpActor::deliver_verdict(const std::string& txn_id,
                               const std::string& outcome,
                               BytesView receipt_header,
                               BytesView receipt_evidence) {
  auto it = pending_.find(txn_id);
  if (it == pending_.end() || it->second.settled) return;
  it->second.settled = true;

  // The signed statement: outcome bound to txn, parties and time.
  common::BinaryWriter statement;
  statement.str(outcome);
  statement.str(txn_id);
  statement.str(it->second.initiator);
  statement.str(it->second.respondent);
  statement.i64(network_->now());
  const Bytes statement_bytes = statement.take();
  const Bytes signature = identity_->sign(statement_bytes);

  TtpVerdictRecord record;
  record.txn_id = txn_id;
  record.initiator = it->second.initiator;
  record.respondent = it->second.respondent;
  record.outcome = outcome;
  record.decided_at = network_->now();
  record.statement = statement_bytes;
  record.statement_signature = signature;
  log_.push_back(record);

  // Cache everything a duplicate request needs answered verbatim. The
  // statement embeds the decision time, so re-signing on resend would
  // produce a DIFFERENT statement for the same verdict — the cache keeps
  // the evidence canonical.
  it->second.outcome = outcome;
  it->second.receipt_header = Bytes(receipt_header.begin(),
                                    receipt_header.end());
  it->second.receipt_evidence = Bytes(receipt_evidence.begin(),
                                      receipt_evidence.end());
  it->second.statement = statement_bytes;
  it->second.statement_signature = signature;

  common::BinaryWriter payload;
  payload.str(outcome);
  payload.bytes(receipt_header);
  payload.bytes(receipt_evidence);
  payload.bytes(statement_bytes);
  payload.bytes(signature);

  NrMessage verdict;
  verdict.header = next_header(
      MsgType::kResolveVerdict, it->second.initiator, id(), txn_id,
      it->second.original_header.data_hash,
      network_->now() + options_.reply_window);
  verdict.payload = payload.take();
  send(it->second.initiator, std::move(verdict));
}

void TtpActor::resend_verdict(const std::string& txn_id) {
  const auto it = pending_.find(txn_id);
  if (it == pending_.end() || !it->second.settled) return;
  ++verdicts_resent_;

  common::BinaryWriter payload;
  payload.str(it->second.outcome);
  payload.bytes(it->second.receipt_header);
  payload.bytes(it->second.receipt_evidence);
  payload.bytes(it->second.statement);
  payload.bytes(it->second.statement_signature);

  // Fresh header (new nonce/seq, live deadline) over the CACHED verdict
  // bytes — the peer's replay screen accepts it, the decision is unchanged.
  NrMessage verdict;
  verdict.header = next_header(
      MsgType::kResolveVerdict, it->second.initiator, id(), txn_id,
      it->second.original_header.data_hash,
      network_->now() + options_.reply_window);
  verdict.payload = payload.take();
  send(it->second.initiator, std::move(verdict));
}

}  // namespace tpnr::nr
