// Alice — the client in the TPNR protocol. Drives the Normal, Abort and
// Resolve flows, keeps the NRR evidence she collects, and verifies fetched
// data against the hash the provider signed for.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/id.h"
#include "nr/actor.h"
#include "nr/chunked.h"
#include "runtime/placement.h"

namespace tpnr::nr {

/// Client-side view of one transaction's life.
enum class TxnState {
  kStorePending,       ///< NRO sent, waiting for NRR
  kCompleted,          ///< NRR held
  kAbortPending,
  kAborted,            ///< abort accepted (NRR-of-abort held)
  kAbortRejected,
  kAbortErrored,       ///< provider asked for a regenerated request
  kResolvePending,     ///< TTP involved, waiting for verdict
  kResolveRetrying,    ///< verdict overdue (TTP down?), backing off to retry
  kResolvedCompleted,  ///< NRR arrived through the TTP
  kResolvedFailed,     ///< TTP attests the provider did not respond
  kTtpUnreachable,     ///< every resolve attempt went unanswered (degraded)
  kTimedOut,           ///< no receipt and resolve disabled
};

std::string txn_state_name(TxnState state);

/// True for states no further message or timer may advance.
[[nodiscard]] constexpr bool txn_state_terminal(TxnState state) noexcept {
  switch (state) {
    case TxnState::kCompleted:
    case TxnState::kAborted:
    case TxnState::kAbortRejected:
    case TxnState::kResolvedCompleted:
    case TxnState::kResolvedFailed:
    case TxnState::kTtpUnreachable:
      return true;
    default:
      return false;
  }
}

struct ClientOptions {
  common::SimTime reply_window = 10 * common::kSecond;  ///< header time limit
  common::SimTime receipt_timeout = 15 * common::kSecond;
  bool auto_resolve = true;  ///< on timeout, escalate to the TTP
  /// §5.5 fault tolerance: re-send the store request (fresh header, same
  /// txn/data) this many times BEFORE escalating to the TTP. 0 keeps the
  /// paper's single-shot behaviour. Also spent on "restart" verdicts.
  std::size_t store_retries = 0;
  /// Extra receipt wait added per successive store attempt (linear backoff).
  common::SimTime store_retry_backoff = 5 * common::kSecond;
  /// Re-send the resolve request this many times when no verdict arrives —
  /// this is what rides out a TTP down-window. 0 = wait forever (paper).
  std::size_t resolve_retries = 0;
  common::SimTime resolve_timeout = 20 * common::kSecond;
  /// Extra verdict wait added per successive resolve attempt.
  common::SimTime resolve_backoff = 10 * common::kSecond;
};

class ClientActor final : public NrActor {
 public:
  struct Txn {
    TxnState state = TxnState::kStorePending;
    std::string provider;
    std::string ttp;
    std::string object_key;
    Bytes data_hash;
    MessageHeader store_header;       ///< the header the NRO covered
    common::Payload store_evidence;   ///< raw NRO (replayable toward Bob/TTP)
    std::optional<MessageHeader> nrr_header;
    std::optional<OpenedEvidence> nrr;
    std::optional<MessageHeader> abort_receipt_header;
    std::optional<OpenedEvidence> abort_receipt;
    // TTP attestation when the provider went silent.
    Bytes ttp_statement;
    Bytes ttp_statement_signature;
    // Fetch results.
    bool fetched = false;
    bool fetch_integrity_ok = false;
    common::Payload fetched_data;  ///< shares the response payload's buffer
    // Chunked-object bookkeeping (extension; see nr/chunked.h).
    std::size_t chunk_size = 0;   ///< 0 = flat object
    std::size_t chunk_count = 0;
    std::vector<ChunkAuditResult> audits;
    // Fault-tolerance bookkeeping.
    common::SimTime started_at = 0;
    common::SimTime finished_at = 0;  ///< set on entering a terminal state
    std::size_t store_attempts = 0;   ///< store transmissions incl. first
    std::size_t resolve_attempts = 0;
    common::Payload retry_data;  ///< object bytes, iff store_retries > 0
    /// Every state transition with its sim time, packed (at << 8) | state —
    /// 8 bytes per entry instead of 16 keeps a fleet's millions of
    /// histories compact. Decode with history_entry()/history_size().
    std::vector<std::int64_t> history;

    [[nodiscard]] std::size_t history_size() const noexcept {
      return history.size();
    }
    /// Entry `i` of the packed timeline (index 0 = kStorePending).
    [[nodiscard]] std::pair<common::SimTime, TxnState> history_entry(
        std::size_t i) const {
      return {history[i] >> 8,
              static_cast<TxnState>(history[i] & 0xff)};
    }
  };

  ClientActor(std::string id, net::Network& network, pki::Identity& identity,
              crypto::Drbg& rng, ClientOptions options = ClientOptions{});

  /// Normal-mode store: sends data + NRO, arms the receipt timer. Returns
  /// the transaction id.
  std::string store(const std::string& provider, const std::string& ttp,
                    const std::string& object_key, BytesView data);

  /// Chunked store: the evidence binds the Merkle root over
  /// `chunk_size`-byte chunks instead of the flat hash, enabling audit()
  /// without a full download. Throws ProtocolError on chunk_size == 0.
  std::string store_chunked(const std::string& provider,
                            const std::string& ttp,
                            const std::string& object_key, BytesView data,
                            std::size_t chunk_size);

  // --- Fleet routing (runtime/placement.h) -------------------------------

  /// Routes stores by object key over a shared consistent-hash ring instead
  /// of a caller-chosen provider. The ring is owned by the driver; it must
  /// outlive the actor.
  void set_placement(const runtime::Placement* placement) noexcept {
    placement_ = placement;
  }
  /// Directory endpoint consulted on lookup misses (owner unknown, or the
  /// owner's key not yet trusted). The directory must be a trusted peer.
  void set_directory(std::string directory) {
    directory_ = std::move(directory);
  }
  /// Shards this client's resolve traffic over a partitioned TTP fleet:
  /// store_* calls override their `ttp` argument with
  /// names[ttp_partition_of(txn_id, names.size())]. Empty list = single-TTP
  /// behaviour (the argument is used as-is).
  void set_ttp_partitions(std::vector<std::string> names) {
    ttp_partitions_ = std::move(names);
  }

  /// Placement-routed store: the provider is owner(object_key) on the ring
  /// (or the cached directory answer). Returns the txn id when the store
  /// was issued immediately; returns "" when the owner (or its key) is
  /// unknown and a kDirLookup round-trip was started — the deferred store
  /// is issued on the kDirReply and its txn id appended to routed_txns().
  std::string store_routed(const std::string& ttp,
                           const std::string& object_key, BytesView data);

  /// Txn ids minted by store_routed, in issue order (deferred stores appear
  /// when their directory reply lands).
  [[nodiscard]] const std::vector<std::string>& routed_txns() const noexcept {
    return routed_txns_;
  }

  /// Pre-sizes the transaction tables for an expected fleet workload so a
  /// million-txn run does not pay incremental rehashes.
  void reserve_txns(std::size_t count) { txns_.reserve(count); }

  /// Requests chunk `chunk_index` of a chunked transaction; the response is
  /// verified against the SIGNED root and recorded in Txn::audits.
  void audit(const std::string& txn_id, std::size_t chunk_index);

  /// Audits `count` uniformly random chunks (with replacement).
  void audit_sample(const std::string& txn_id, std::size_t count);

  /// Abort an in-flight transaction (§4.2; two-party, no TTP).
  void abort(const std::string& txn_id);

  /// Fetch the object back; on response the data hash is checked against
  /// the agreed hash from the store transaction.
  void fetch(const std::string& txn_id);

  /// Escalate to the TTP immediately (normally driven by the timer).
  void resolve(const std::string& txn_id, const std::string& report);

  [[nodiscard]] const Txn* transaction(const std::string& txn_id) const;

  /// Evidence Alice presents to an arbitrator (her NRR).
  [[nodiscard]] std::optional<std::pair<MessageHeader, OpenedEvidence>>
  present_nrr(const std::string& txn_id) const;

 protected:
  void on_message(const NrMessage& message) override;

 private:
  std::string store_impl(const std::string& provider, const std::string& ttp,
                         const std::string& object_key, BytesView data,
                         std::size_t chunk_size);
  /// Single point every state change goes through: appends to the history
  /// timeline and stamps finished_at on terminal states.
  void set_state(Txn& txn, TxnState state);
  /// (Re-)sends the store request with a fresh header over the same
  /// txn/data and re-arms the receipt timer.
  void send_store(const std::string& txn_id);
  void transmit_store(const std::string& txn_id, BytesView data);
  void arm_receipt_timer(const std::string& txn_id, std::size_t attempt);
  void arm_verdict_timer(const std::string& txn_id, std::size_t attempt);
  void handle_store_receipt(const NrMessage& message);
  void handle_fetch_response(const NrMessage& message);
  void handle_chunk_response(const NrMessage& message);
  void handle_abort_reply(const NrMessage& message);
  void handle_resolve_verdict(const NrMessage& message);
  void handle_resolve_query(const NrMessage& message);
  void handle_dir_reply(const NrMessage& message);
  /// Sends a kDirLookup for `object_key` and parks the store until the
  /// reply names (and keys) the owner.
  void defer_store(const std::string& ttp, const std::string& object_key,
                   BytesView data);

  /// A store parked on a directory lookup.
  struct PendingStore {
    std::string ttp;
    std::string object_key;
    common::Payload data;
  };

  ClientOptions options_;
  std::unordered_map<std::string, Txn> txns_;
  common::IdGenerator txn_ids_;
  const runtime::Placement* placement_ = nullptr;
  std::string directory_;
  std::vector<std::string> ttp_partitions_;
  std::vector<PendingStore> pending_stores_;
  /// object_key -> owner, filled from directory replies (lookup-miss cache).
  std::unordered_map<std::string, std::string> owner_cache_;
  std::vector<std::string> routed_txns_;
};

}  // namespace tpnr::nr
