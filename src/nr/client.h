// Alice — the client in the TPNR protocol. Drives the Normal, Abort and
// Resolve flows, keeps the NRR evidence she collects, and verifies fetched
// data against the hash the provider signed for.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/id.h"
#include "nr/actor.h"
#include "nr/chunked.h"

namespace tpnr::nr {

/// Client-side view of one transaction's life.
enum class TxnState {
  kStorePending,       ///< NRO sent, waiting for NRR
  kCompleted,          ///< NRR held
  kAbortPending,
  kAborted,            ///< abort accepted (NRR-of-abort held)
  kAbortRejected,
  kAbortErrored,       ///< provider asked for a regenerated request
  kResolvePending,     ///< TTP involved, waiting for verdict
  kResolvedCompleted,  ///< NRR arrived through the TTP
  kResolvedFailed,     ///< TTP attests the provider did not respond
  kTimedOut,           ///< no receipt and resolve disabled
};

std::string txn_state_name(TxnState state);

struct ClientOptions {
  common::SimTime reply_window = 10 * common::kSecond;  ///< header time limit
  common::SimTime receipt_timeout = 15 * common::kSecond;
  bool auto_resolve = true;  ///< on timeout, escalate to the TTP
};

class ClientActor final : public NrActor {
 public:
  struct Txn {
    TxnState state = TxnState::kStorePending;
    std::string provider;
    std::string ttp;
    std::string object_key;
    Bytes data_hash;
    MessageHeader store_header;   ///< the header the NRO covered
    Bytes store_evidence;         ///< raw NRO (replayable toward Bob/TTP)
    std::optional<MessageHeader> nrr_header;
    std::optional<OpenedEvidence> nrr;
    std::optional<MessageHeader> abort_receipt_header;
    std::optional<OpenedEvidence> abort_receipt;
    // TTP attestation when the provider went silent.
    Bytes ttp_statement;
    Bytes ttp_statement_signature;
    // Fetch results.
    bool fetched = false;
    bool fetch_integrity_ok = false;
    Bytes fetched_data;
    // Chunked-object bookkeeping (extension; see nr/chunked.h).
    std::size_t chunk_size = 0;   ///< 0 = flat object
    std::size_t chunk_count = 0;
    std::vector<ChunkAuditResult> audits;
  };

  ClientActor(std::string id, net::Network& network, pki::Identity& identity,
              crypto::Drbg& rng, ClientOptions options = ClientOptions{});

  /// Normal-mode store: sends data + NRO, arms the receipt timer. Returns
  /// the transaction id.
  std::string store(const std::string& provider, const std::string& ttp,
                    const std::string& object_key, BytesView data);

  /// Chunked store: the evidence binds the Merkle root over
  /// `chunk_size`-byte chunks instead of the flat hash, enabling audit()
  /// without a full download. Throws ProtocolError on chunk_size == 0.
  std::string store_chunked(const std::string& provider,
                            const std::string& ttp,
                            const std::string& object_key, BytesView data,
                            std::size_t chunk_size);

  /// Requests chunk `chunk_index` of a chunked transaction; the response is
  /// verified against the SIGNED root and recorded in Txn::audits.
  void audit(const std::string& txn_id, std::size_t chunk_index);

  /// Audits `count` uniformly random chunks (with replacement).
  void audit_sample(const std::string& txn_id, std::size_t count);

  /// Abort an in-flight transaction (§4.2; two-party, no TTP).
  void abort(const std::string& txn_id);

  /// Fetch the object back; on response the data hash is checked against
  /// the agreed hash from the store transaction.
  void fetch(const std::string& txn_id);

  /// Escalate to the TTP immediately (normally driven by the timer).
  void resolve(const std::string& txn_id, const std::string& report);

  [[nodiscard]] const Txn* transaction(const std::string& txn_id) const;

  /// Evidence Alice presents to an arbitrator (her NRR).
  [[nodiscard]] std::optional<std::pair<MessageHeader, OpenedEvidence>>
  present_nrr(const std::string& txn_id) const;

 protected:
  void on_message(const NrMessage& message) override;

 private:
  std::string store_impl(const std::string& provider, const std::string& ttp,
                         const std::string& object_key, BytesView data,
                         std::size_t chunk_size);
  void handle_store_receipt(const NrMessage& message);
  void handle_fetch_response(const NrMessage& message);
  void handle_chunk_response(const NrMessage& message);
  void handle_abort_reply(const NrMessage& message);
  void handle_resolve_verdict(const NrMessage& message);
  void handle_resolve_query(const NrMessage& message);

  ClientOptions options_;
  std::map<std::string, Txn> txns_;
  common::IdGenerator txn_ids_;
};

}  // namespace tpnr::nr
