// Payload: an immutable, copy-on-write shared byte buffer.
//
// The simulator used to pass object bytes by value: every duplicate
// delivery, retransmission and audit fan-out memcpy'd the whole object.
// Payload replaces that with a shared_ptr-backed buffer — copying a Payload
// shares the allocation; only mutation (or an explicit to_bytes()) pays for
// a private copy. Process-wide counters record every deep copy performed
// and every copy AVOIDED by sharing, so benchmarks can report "bytes copied
// vs the by-value baseline" directly (the baseline would have copied on
// every share).
//
// Wiping: secure_wipe(Payload&) zeroes the underlying storage even when it
// is shared — key material must be destroyed, so every alias observes zeros
// afterwards. This is deliberate and tested.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/bytes.h"

namespace tpnr::common {

/// Process-wide accounting of deep copies vs shares. All counters are
/// monotonic; reset_payload_counters() zeroes them between experiments.
struct PayloadCounters {
  std::uint64_t copies = 0;       ///< deep copies actually performed
  std::uint64_t copy_bytes = 0;   ///< bytes memcpy'd by those copies
  std::uint64_t shares = 0;       ///< copies avoided by sharing the buffer
  std::uint64_t share_bytes = 0;  ///< bytes NOT copied thanks to sharing
};

class Payload {
 public:
  Payload() = default;

  /// Takes ownership of `data` — no copy, nothing counted.
  Payload(Bytes data);  // NOLINT(google-explicit-constructor): migration aid
  static Payload wrap(Bytes data) { return Payload(std::move(data)); }

  /// Deep copy of a view (counted as a copy).
  static Payload copy_of(BytesView data);

  /// Sharing copy: bumps the refcount, never the bytes. In eager-copy mode
  /// (see set_eager_copy_mode) this performs — and counts — a deep copy
  /// instead, emulating the by-value baseline for A/B measurements.
  Payload(const Payload& other);
  Payload& operator=(const Payload& other);
  Payload(Payload&& other) noexcept = default;
  Payload& operator=(Payload&& other) noexcept = default;

  [[nodiscard]] std::size_t size() const noexcept {
    return buf_ ? buf_->size() : 0;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] const std::uint8_t* data() const noexcept {
    return buf_ ? buf_->data() : nullptr;
  }
  [[nodiscard]] BytesView view() const noexcept {
    return buf_ ? BytesView(*buf_) : BytesView();
  }
  // NOLINTNEXTLINE(google-explicit-constructor): reads flow into BytesView APIs
  operator BytesView() const noexcept { return view(); }
  std::uint8_t operator[](std::size_t i) const { return (*buf_)[i]; }
  [[nodiscard]] const std::uint8_t* begin() const noexcept { return data(); }
  [[nodiscard]] const std::uint8_t* end() const noexcept {
    return data() + size();
  }

  /// The underlying buffer (an empty static for a null payload).
  [[nodiscard]] const Bytes& bytes() const noexcept;

  /// Materializes an owned copy (counted as a copy).
  [[nodiscard]] Bytes to_bytes() const;

  /// Mutable access. Unique owner: mutates in place, free. Shared: detaches
  /// onto a private copy first (counted). Always leaves this Payload as the
  /// sole owner of the buffer it returns.
  Bytes& mutate();

  /// True if both payloads alias the same underlying buffer.
  [[nodiscard]] bool aliases(const Payload& other) const noexcept {
    return buf_ != nullptr && buf_ == other.buf_;
  }
  [[nodiscard]] long use_count() const noexcept { return buf_.use_count(); }

  friend bool operator==(const Payload& a, const Payload& b) noexcept {
    return a.view().size() == b.view().size() &&
           std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const Payload& a, const Bytes& b) noexcept {
    return a.view().size() == b.size() &&
           std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const Bytes& a, const Payload& b) noexcept {
    return b == a;
  }

  /// Zeroes the underlying storage through secure_wipe — ALL aliases observe
  /// zeros (key material must die everywhere) — then drops this reference.
  void wipe() noexcept;

  /// Eager-copy mode: every sharing copy performs a real deep copy instead,
  /// emulating the pre-Payload by-value behaviour. For baseline benchmarks.
  static void set_eager_copy_mode(bool eager) noexcept;
  [[nodiscard]] static bool eager_copy_mode() noexcept;

  [[nodiscard]] static PayloadCounters counters() noexcept;
  static void reset_counters() noexcept;

 private:
  std::shared_ptr<Bytes> buf_;
};

/// Wipes the shared storage (all aliases see zeros) and clears the handle.
void secure_wipe(Payload& payload) noexcept;

}  // namespace tpnr::common
