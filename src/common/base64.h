// RFC 4648 base64 codec. Azure's SharedKey header and Content-MD5 values are
// base64, so the providers module depends on an exact implementation.
#pragma once

#include <string>
#include <string_view>

#include "common/bytes.h"

namespace tpnr::common {

/// Standard alphabet with '=' padding.
std::string base64_encode(BytesView data);

/// Decodes standard-alphabet base64. Whitespace is not tolerated. Throws
/// std::invalid_argument on bad characters, bad length or bad padding.
Bytes base64_decode(std::string_view text);

}  // namespace tpnr::common
