// Identifier generation for transactions, sessions and simulated entities.
// Deterministic when seeded, which keeps protocol traces reproducible.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace tpnr::common {

/// splitmix64-based id generator: fast, seedable, well distributed. NOT
/// cryptographic — protocol nonces come from crypto::Drbg instead.
class IdGenerator {
 public:
  explicit IdGenerator(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept
      : state_(seed) {}

  /// Next raw 64-bit identifier.
  std::uint64_t next_u64() noexcept;

  /// Identifier rendered as a 16-hex-digit string with a prefix, e.g.
  /// "txn-0011223344556677".
  std::string next_id(const std::string& prefix);

 private:
  std::uint64_t state_;
};

}  // namespace tpnr::common
