#include "common/payload.h"

namespace tpnr::common {

namespace {

struct AtomicCounters {
  std::atomic<std::uint64_t> copies{0};
  std::atomic<std::uint64_t> copy_bytes{0};
  std::atomic<std::uint64_t> shares{0};
  std::atomic<std::uint64_t> share_bytes{0};
};

AtomicCounters& counters_ref() noexcept {
  static AtomicCounters counters;
  return counters;
}

std::atomic<bool>& eager_mode_ref() noexcept {
  static std::atomic<bool> eager{false};
  return eager;
}

void count_copy(std::size_t bytes) noexcept {
  counters_ref().copies.fetch_add(1, std::memory_order_relaxed);
  counters_ref().copy_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void count_share(std::size_t bytes) noexcept {
  counters_ref().shares.fetch_add(1, std::memory_order_relaxed);
  counters_ref().share_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

}  // namespace

Payload::Payload(Bytes data) {
  if (!data.empty()) {
    buf_ = std::make_shared<Bytes>(std::move(data));
  }
}

Payload Payload::copy_of(BytesView data) {
  if (data.empty()) return Payload();
  count_copy(data.size());
  return Payload(Bytes(data.begin(), data.end()));
}

Payload::Payload(const Payload& other) {
  if (!other.buf_) return;
  if (eager_copy_mode()) {
    count_copy(other.buf_->size());
    buf_ = std::make_shared<Bytes>(*other.buf_);
  } else {
    count_share(other.buf_->size());
    buf_ = other.buf_;
  }
}

Payload& Payload::operator=(const Payload& other) {
  if (this == &other || buf_ == other.buf_) return *this;
  Payload copy(other);  // funnels through the counting copy constructor
  buf_ = std::move(copy.buf_);
  return *this;
}

const Bytes& Payload::bytes() const noexcept {
  static const Bytes empty;
  return buf_ ? *buf_ : empty;
}

Bytes Payload::to_bytes() const {
  if (!buf_) return Bytes();
  count_copy(buf_->size());
  return *buf_;
}

Bytes& Payload::mutate() {
  if (!buf_) {
    buf_ = std::make_shared<Bytes>();
  } else if (buf_.use_count() > 1) {
    count_copy(buf_->size());
    buf_ = std::make_shared<Bytes>(*buf_);
  }
  return *buf_;
}

void Payload::wipe() noexcept {
  if (buf_) secure_wipe(*buf_);
  buf_.reset();
}

void Payload::set_eager_copy_mode(bool eager) noexcept {
  eager_mode_ref().store(eager, std::memory_order_relaxed);
}

bool Payload::eager_copy_mode() noexcept {
  return eager_mode_ref().load(std::memory_order_relaxed);
}

PayloadCounters Payload::counters() noexcept {
  const AtomicCounters& c = counters_ref();
  PayloadCounters out;
  out.copies = c.copies.load(std::memory_order_relaxed);
  out.copy_bytes = c.copy_bytes.load(std::memory_order_relaxed);
  out.shares = c.shares.load(std::memory_order_relaxed);
  out.share_bytes = c.share_bytes.load(std::memory_order_relaxed);
  return out;
}

void Payload::reset_counters() noexcept {
  AtomicCounters& c = counters_ref();
  c.copies.store(0, std::memory_order_relaxed);
  c.copy_bytes.store(0, std::memory_order_relaxed);
  c.shares.store(0, std::memory_order_relaxed);
  c.share_bytes.store(0, std::memory_order_relaxed);
}

void secure_wipe(Payload& payload) noexcept { payload.wipe(); }

}  // namespace tpnr::common
