// Simulated time. The whole system — network delivery, protocol time limits
// (§5.5 timeliness), shipping delays (Fig. 2) — runs on one logical clock so
// every test and benchmark is deterministic and can compress hours of
// simulated time into microseconds of wall time.
#pragma once

#include <cstdint>
#include <atomic>

namespace tpnr::common {

/// Microseconds since simulation start.
using SimTime = std::int64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;

/// Monotonic logical clock. Thread-safe: advancing and reading are atomic.
class SimClock {
 public:
  SimClock() = default;

  [[nodiscard]] SimTime now() const noexcept {
    return now_.load(std::memory_order_acquire);
  }

  /// Moves time forward by `delta` (negative deltas are ignored).
  void advance(SimTime delta) noexcept {
    if (delta > 0) now_.fetch_add(delta, std::memory_order_acq_rel);
  }

  /// Jumps to an absolute time if it is in the future.
  void advance_to(SimTime t) noexcept {
    SimTime cur = now_.load(std::memory_order_acquire);
    while (t > cur &&
           !now_.compare_exchange_weak(cur, t, std::memory_order_acq_rel)) {
    }
  }

 private:
  std::atomic<SimTime> now_{0};
};

}  // namespace tpnr::common
