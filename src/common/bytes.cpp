#include "common/bytes.h"

#include <stdexcept>

namespace tpnr::common {

Bytes to_bytes(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

std::string to_string(BytesView data) {
  return std::string(data.begin(), data.end());
}

std::string to_hex(BytesView data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0f]);
  }
  return out;
}

namespace {

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw std::invalid_argument("from_hex: non-hex character");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool constant_time_equal(BytesView a, BytesView b) noexcept {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = static_cast<std::uint8_t>(acc | (a[i] ^ b[i]));
  }
  return acc == 0;
}

void secure_wipe(Bytes& data) noexcept {
  volatile std::uint8_t* p = data.data();
  for (std::size_t i = 0; i < data.size(); ++i) p[i] = 0;
  data.clear();
}

void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

Bytes concat(std::initializer_list<BytesView> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) append(out, p);
  return out;
}

void xor_into(Bytes& a, BytesView b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("xor_into: size mismatch");
  }
  for (std::size_t i = 0; i < a.size(); ++i) a[i] ^= b[i];
}

}  // namespace tpnr::common
