#include "common/logging.h"

#include <iostream>

namespace tpnr::common {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel level, const std::string& module,
                 const std::string& msg) {
  if (level < level_) return;
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  const auto idx = static_cast<int>(level);
  std::lock_guard<std::mutex> lock(mu_);
  std::clog << "[" << kNames[idx] << "] [" << module << "] " << msg << '\n';
}

}  // namespace tpnr::common
