#include "common/clock.h"

// Header-only today; the translation unit anchors the library target and
// keeps a stable place for future out-of-line members.
