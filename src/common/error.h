// Exception hierarchy for the library. Every subsystem throws a subclass of
// Error so callers can catch per-layer or catch-all.
#pragma once

#include <stdexcept>
#include <string>

namespace tpnr::common {

/// Root of all tpnr exceptions.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Canonical-encoding violations (truncated/overlong buffers).
class SerialError : public Error {
 public:
  using Error::Error;
};

/// Cryptographic failures: bad key sizes, verification failures surfaced as
/// exceptions, malformed ciphertext.
class CryptoError : public Error {
 public:
  using Error::Error;
};

/// Authentication/authorization failures in provider front-ends.
class AuthError : public Error {
 public:
  using Error::Error;
};

/// Storage backend failures (missing objects, backend I/O).
class StorageError : public Error {
 public:
  using Error::Error;
};

/// Simulated network failures (unknown endpoint, link down).
class NetError : public Error {
 public:
  using Error::Error;
};

/// Non-repudiation protocol violations (bad state transitions, malformed or
/// inconsistent evidence).
class ProtocolError : public Error {
 public:
  using Error::Error;
};

/// Durability-layer failures (WAL/snapshot framing, simulated device crashes).
class PersistError : public Error {
 public:
  using Error::Error;
};

}  // namespace tpnr::common
