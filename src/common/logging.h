// Minimal leveled, thread-safe logger. Default level is Warn so tests and
// benches stay quiet; examples raise it to Info to narrate protocol flows.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace tpnr::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  /// Process-wide singleton.
  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }

  /// Writes one line (module + message) if `level` is enabled.
  void log(LogLevel level, const std::string& module, const std::string& msg);

 private:
  Logger() = default;
  std::mutex mu_;
  LogLevel level_ = LogLevel::kWarn;
};

namespace detail {
template <typename... Args>
std::string format_parts(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(const std::string& module, Args&&... args) {
  Logger::instance().log(LogLevel::kDebug, module,
                         detail::format_parts(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(const std::string& module, Args&&... args) {
  Logger::instance().log(LogLevel::kInfo, module,
                         detail::format_parts(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(const std::string& module, Args&&... args) {
  Logger::instance().log(LogLevel::kWarn, module,
                         detail::format_parts(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(const std::string& module, Args&&... args) {
  Logger::instance().log(LogLevel::kError, module,
                         detail::format_parts(std::forward<Args>(args)...));
}

}  // namespace tpnr::common
