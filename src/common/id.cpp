#include "common/id.h"

#include <array>
#include <cstdio>

namespace tpnr::common {

std::uint64_t IdGenerator::next_u64() noexcept {
  // splitmix64 (Steele, Lea, Flood 2014): one round per output.
  state_ += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::string IdGenerator::next_id(const std::string& prefix) {
  std::array<char, 17> hex{};
  std::snprintf(hex.data(), hex.size(), "%016llx",
                static_cast<unsigned long long>(next_u64()));
  return prefix + "-" + hex.data();
}

}  // namespace tpnr::common
