// Deterministic little-endian binary serialization. Protocol evidence is
// hashed and signed over these encodings, so they must be canonical: one and
// only one encoding per value.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/error.h"

namespace tpnr::common {

/// Append-only canonical encoder.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  /// Length-prefixed (u32) raw bytes.
  void bytes(BytesView v);
  /// Length-prefixed (u32) UTF-8/ASCII string.
  void str(std::string_view v);
  void boolean(bool v);

  [[nodiscard]] const Bytes& data() const noexcept { return buf_; }
  [[nodiscard]] Bytes take() noexcept { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Bounds-checked decoder over a non-owning view. Throws SerialError on
/// truncation or overlong lengths.
class BinaryReader {
 public:
  explicit BinaryReader(BytesView data) noexcept : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  Bytes bytes();
  std::string str();
  bool boolean();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }
  /// Throws SerialError unless every byte was consumed.
  void expect_done() const;

 private:
  void need(std::size_t n) const;

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace tpnr::common
