#include "common/serial.h"

namespace tpnr::common {

namespace {
constexpr std::size_t kMaxLength = 1u << 30;  // 1 GiB sanity bound
}

void BinaryWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void BinaryWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void BinaryWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void BinaryWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void BinaryWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void BinaryWriter::bytes(BytesView v) {
  if (v.size() > kMaxLength) throw SerialError("BinaryWriter: buffer too large");
  u32(static_cast<std::uint32_t>(v.size()));
  append(buf_, v);
}

void BinaryWriter::str(std::string_view v) {
  if (v.size() > kMaxLength) throw SerialError("BinaryWriter: string too large");
  u32(static_cast<std::uint32_t>(v.size()));
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void BinaryWriter::boolean(bool v) { u8(v ? 1 : 0); }

void BinaryReader::need(std::size_t n) const {
  if (remaining() < n) throw SerialError("BinaryReader: truncated input");
}

std::uint8_t BinaryReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t BinaryReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1] << 8);
  pos_ += 2;
  return v;
}

std::uint32_t BinaryReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t BinaryReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::int64_t BinaryReader::i64() { return static_cast<std::int64_t>(u64()); }

Bytes BinaryReader::bytes() {
  const std::uint32_t len = u32();
  if (len > kMaxLength) throw SerialError("BinaryReader: overlong length");
  need(len);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return out;
}

std::string BinaryReader::str() {
  const std::uint32_t len = u32();
  if (len > kMaxLength) throw SerialError("BinaryReader: overlong length");
  need(len);
  std::string out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return out;
}

bool BinaryReader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) throw SerialError("BinaryReader: non-canonical bool");
  return v == 1;
}

void BinaryReader::expect_done() const {
  if (!done()) throw SerialError("BinaryReader: trailing bytes");
}

}  // namespace tpnr::common
