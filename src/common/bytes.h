// Byte-buffer utilities shared by every module: hex codecs, constant-time
// comparison, secure wiping and small helpers over std::vector<uint8_t>.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace tpnr::common {

/// The canonical owning byte buffer used across the library.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning view over immutable bytes.
using BytesView = std::span<const std::uint8_t>;

/// Builds a buffer from a text string (no encoding transformation).
Bytes to_bytes(std::string_view text);

/// Interprets a buffer as text (no validation; intended for ASCII payloads).
std::string to_string(BytesView data);

/// Lower-case hexadecimal encoding ("deadbeef").
std::string to_hex(BytesView data);

/// Decodes hexadecimal input (upper or lower case). Throws std::invalid_argument
/// on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Constant-time equality: runtime depends only on the lengths, never on the
/// position of the first mismatch. Use for MACs, digests and signatures.
bool constant_time_equal(BytesView a, BytesView b) noexcept;

/// Overwrites the buffer with zeros through a volatile pointer so the store
/// cannot be elided, then clears it. For key material.
void secure_wipe(Bytes& data) noexcept;

/// Appends `src` to `dst`.
void append(Bytes& dst, BytesView src);

/// Concatenates any number of buffers.
Bytes concat(std::initializer_list<BytesView> parts);

/// XORs `b` into `a` (sizes must match; throws std::invalid_argument otherwise).
void xor_into(Bytes& a, BytesView b);

/// FNV-1a hash functor for Bytes keys in unordered containers (std::hash has
/// no std::vector<uint8_t> specialization). Not collision-resistant against
/// adversarial keys by itself — callers hashing attacker-controlled bytes
/// (e.g. nonces) rely on those bytes being fixed-length randomness.
struct BytesHash {
  std::size_t operator()(BytesView data) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const std::uint8_t b : data) {
      h ^= b;
      h *= 0x100000001b3ull;
    }
    return static_cast<std::size_t>(h);
  }
  std::size_t operator()(const Bytes& data) const noexcept {
    return operator()(BytesView(data));
  }
};

}  // namespace tpnr::common
