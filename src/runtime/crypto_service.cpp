#include "runtime/crypto_service.h"

#include <iterator>
#include <map>
#include <utility>

#include "crypto/counters.h"
#include "crypto/sha256_mb.h"
#include "runtime/engine.h"

namespace tpnr::runtime {

namespace {

using common::Bytes;
using common::BytesView;

struct JobRef {
  std::size_t batch = 0;
  std::size_t item = 0;
};

}  // namespace

/// Hashes every digest job across `work` through one lane-engine call per
/// flush and scatters the results back per batch.
std::vector<std::vector<Bytes>> CryptoService::hash_batches(
    const std::vector<PendingBatch>& work) {
  std::vector<std::vector<Bytes>> results(work.size());
  std::vector<crypto::TaggedMessage> msgs;
  std::vector<JobRef> refs;
  for (std::size_t b = 0; b < work.size(); ++b) {
    if (!work[b].digest_done) continue;
    results[b].resize(work[b].digests.size());
    for (std::size_t i = 0; i < work[b].digests.size(); ++i) {
      const DigestJob& job = work[b].digests[i];
      msgs.push_back({job.message.view(), job.tag});
      refs.push_back({b, i});
    }
  }
  if (msgs.empty()) return results;
  std::vector<Bytes> digests = crypto::sha256_many_mixed(msgs);
  for (std::size_t k = 0; k < refs.size(); ++k) {
    results[refs[k].batch][refs[k].item] = std::move(digests[k]);
  }
  return results;
}

/// Regroups every verify job across `work` by key fingerprint (first-seen
/// order) so each group runs through rsa_verify_many under one shared
/// Montgomery context, then scatters the verdicts back per batch.
std::vector<std::vector<bool>> CryptoService::verify_batches(
    const std::vector<PendingBatch>& work) {
  std::vector<std::vector<bool>> results(work.size());
  struct Group {
    const crypto::RsaPublicKey* key = nullptr;
    std::vector<crypto::RsaVerifyItem> items;
    std::vector<JobRef> refs;
  };
  std::vector<Group> groups;
  std::map<Bytes, std::size_t> group_of;  // fingerprint -> groups index
  for (std::size_t b = 0; b < work.size(); ++b) {
    if (!work[b].verify_done) continue;
    results[b].resize(work[b].verifies.size(), false);
    for (std::size_t i = 0; i < work[b].verifies.size(); ++i) {
      const VerifyJob& job = work[b].verifies[i];
      auto [it, fresh] =
          group_of.try_emplace(job.key->fingerprint(), groups.size());
      if (fresh) {
        groups.emplace_back();
        groups.back().key = job.key.get();
      }
      Group& group = groups[it->second];
      group.items.push_back(
          {job.kind, BytesView(job.message), BytesView(job.signature)});
      group.refs.push_back({b, i});
    }
  }
  for (const Group& group : groups) {
    const std::vector<bool> verdicts =
        crypto::rsa_verify_many(*group.key, group.items);
    for (std::size_t k = 0; k < verdicts.size(); ++k) {
      results[group.refs[k].batch][group.refs[k].item] = verdicts[k];
    }
  }
  return results;
}

CryptoService::CryptoService(Engine& engine) : engine_(engine) {
  buckets_.resize(engine.shard_count());
}

bool CryptoService::deferrable() const {
  return crypto::accel().crypto_service &&
         engine_.current_bucket() < engine_.shard_count();
}

void CryptoService::submit_digests(std::vector<DigestJob> jobs,
                                   DigestCompletion done) {
  if (jobs.empty()) {
    done({});
    return;
  }
  if (!deferrable()) {
    crypto::counters().service_inline_jobs.fetch_add(
        jobs.size(), std::memory_order_relaxed);
    std::vector<crypto::TaggedMessage> msgs;
    msgs.reserve(jobs.size());
    for (const DigestJob& job : jobs) {
      msgs.push_back({job.message.view(), job.tag});
    }
    done(crypto::sha256_many_mixed(msgs));
    return;
  }
  crypto::counters().service_jobs.fetch_add(jobs.size(),
                                            std::memory_order_relaxed);
  Bucket& bucket = buckets_[engine_.current_bucket()];
  PendingBatch batch;
  batch.endpoint = engine_.current_endpoint();
  batch.submitted = engine_.now();
  batch.digests = std::move(jobs);
  batch.digest_done = std::move(done);
  bucket.endpoints.insert(batch.endpoint);
  bucket.fifo.push_back(std::move(batch));
}

void CryptoService::submit_verifies(std::vector<VerifyJob> jobs,
                                    VerifyCompletion done) {
  if (jobs.empty()) {
    done({});
    return;
  }
  if (!deferrable()) {
    crypto::counters().service_inline_jobs.fetch_add(
        jobs.size(), std::memory_order_relaxed);
    std::vector<PendingBatch> work(1);
    work[0].verifies = std::move(jobs);
    work[0].verify_done = [](std::vector<bool>) {};
    std::vector<std::vector<bool>> verdicts = verify_batches(work);
    done(std::move(verdicts[0]));
    return;
  }
  crypto::counters().service_jobs.fetch_add(jobs.size(),
                                            std::memory_order_relaxed);
  Bucket& bucket = buckets_[engine_.current_bucket()];
  PendingBatch batch;
  batch.endpoint = engine_.current_endpoint();
  batch.submitted = engine_.now();
  batch.verifies = std::move(jobs);
  batch.verify_done = std::move(done);
  bucket.endpoints.insert(batch.endpoint);
  bucket.fifo.push_back(std::move(batch));
}

bool CryptoService::pending() const {
  for (const Bucket& bucket : buckets_) {
    if (!bucket.fifo.empty()) return true;
  }
  return false;
}

bool CryptoService::pending_in(std::uint32_t bucket) const {
  return !buckets_[bucket].fifo.empty();
}

bool CryptoService::must_flush_before(std::uint32_t bucket, EndpointId target,
                                      common::SimTime at) const {
  const Bucket& q = buckets_[bucket];
  if (q.fifo.empty()) return false;
  return at > q.fifo.front().submitted || q.endpoints.count(target) > 0;
}

bool CryptoService::must_flush_before_any(EndpointId target,
                                          common::SimTime at) const {
  for (std::uint32_t b = 0; b < buckets_.size(); ++b) {
    if (must_flush_before(b, target, at)) return true;
  }
  return false;
}

void CryptoService::flush(std::uint32_t bucket) {
  Bucket& q = buckets_[bucket];
  if (q.fifo.empty()) return;
  std::vector<PendingBatch> work(std::make_move_iterator(q.fifo.begin()),
                                 std::make_move_iterator(q.fifo.end()));
  q.fifo.clear();
  q.endpoints.clear();
  crypto::counters().service_flushes.fetch_add(1, std::memory_order_relaxed);

  // All crypto runs before any completion: a completion may resubmit, and
  // its jobs must land in the next flush, not this one's batch.
  std::vector<std::vector<Bytes>> digests = hash_batches(work);
  std::vector<std::vector<bool>> verdicts = verify_batches(work);

  for (std::size_t b = 0; b < work.size(); ++b) {
    PendingBatch& batch = work[b];
    engine_.run_in_context(
        bucket, batch.endpoint, batch.submitted, [&] {
          if (batch.digest_done) {
            batch.digest_done(std::move(digests[b]));
          } else {
            batch.verify_done(std::move(verdicts[b]));
          }
        });
  }
}

void CryptoService::flush_all() {
  for (std::uint32_t b = 0; b < buckets_.size(); ++b) flush(b);
}

}  // namespace tpnr::runtime
