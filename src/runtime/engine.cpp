#include "runtime/engine.h"

#include <algorithm>
#include <cassert>

#include "common/serial.h"
#include "crypto/hash.h"
#include "runtime/crypto_service.h"

namespace tpnr::runtime {

namespace {

/// Thread-local execution context: which engine/shard/endpoint the event
/// currently running on this thread belongs to, and its timestamp. Lets
/// Engine::now() / post_timer() resolve the right shard without any API
/// surface in actor code.
struct ExecContext {
  const Engine* engine = nullptr;
  std::uint32_t shard = 0;
  EndpointId endpoint = kNoEndpoint;
  SimTime now = 0;
};

thread_local ExecContext t_ctx;

}  // namespace

NameId NameInterner::intern(std::string_view name) {
  std::string key(name);
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = ids_.find(key);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = ids_.find(key);  // re-check: another thread may have won the race
  if (it != ids_.end()) return it->second;
  const NameId id = static_cast<NameId>(names_.size());
  auto [inserted, ok] = ids_.emplace(std::move(key), id);
  (void)ok;
  names_.push_back(&inserted->first);
  return id;
}

std::optional<NameId> NameInterner::find(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& NameInterner::name(NameId id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return *names_[id];
}

std::size_t NameInterner::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return names_.size();
}

Engine::Engine(std::uint64_t seed, EngineOptions options)
    : seed_(seed), options_(options) {
  if (options_.shards == 0) options_.shards = 1;
  if (options_.workers == 0) options_.workers = 1;
  shards_.resize(options_.shards);
  for (Shard& shard : shards_) {
    shard.queue = EventStore(options_.use_timer_wheel);
    shard.outbox.resize(options_.shards);
  }
  external_ = EventStore(options_.use_timer_wheel);
  crypto_service_ = std::make_unique<CryptoService>(*this);
}

Engine::~Engine() { stop_workers(); }

EndpointId Engine::endpoint(std::string_view name) {
  const EndpointId id = endpoints_.intern(name);
  if (id == endpoint_state_.size()) {
    EndpointState state;
    state.shard = id % static_cast<std::uint32_t>(shards_.size());
    endpoint_state_.push_back(std::move(state));
  }
  return id;
}

const std::string& Engine::endpoint_name(EndpointId id) const {
  return endpoints_.name(id);
}

std::uint32_t Engine::shard_of(EndpointId id) const {
  return endpoint_state_[id].shard;
}

crypto::Drbg& Engine::rng(EndpointId id) {
  EndpointState& state = endpoint_state_[id];
  if (!state.rng) {
    // Derive the stream from (seed, name) so it does not depend on the
    // endpoint's registration rank or on consumption interleaving.
    common::BinaryWriter w;
    w.u64(seed_);
    w.str(endpoints_.name(id));
    state.rng = std::make_unique<crypto::Drbg>(
        common::BytesView(crypto::sha256(w.take())));
  }
  return *state.rng;
}

std::uint64_t Engine::next_counter(EndpointId id) {
  return ++endpoint_state_[id].counter;
}

void Engine::post(EndpointId target, EndpointId origin, SimTime at,
                  Task task) {
  Event event;
  event.target = target;
  event.origin = origin;
  event.task = std::move(task);
  SimTime floor = 0;
  if (t_ctx.engine == this) {
    floor = t_ctx.now;
    // Conservative-window safety: anything that crosses shards must land at
    // or after the current window's end. The transport's delay model already
    // guarantees this (delays are clamped to >= lookahead for remote hops);
    // the clamp here is a backstop so a misbehaving caller degrades to a
    // slightly-later delivery instead of a determinism violation. Applied in
    // serial mode too, so serial and parallel runs stay bit-identical.
    if (target != kNoEndpoint && origin != kNoEndpoint &&
        shard_of(target) != shard_of(origin)) {
      floor = t_ctx.now + lookahead_;
    }
  }
  event.at = std::max(at, floor);
  if (origin == kNoEndpoint) {
    event.seq = ++external_seq_;
  } else {
    event.seq = ++endpoint_state_[origin].event_seq;
  }
  push_event(std::move(event));
}

void Engine::post_timer(SimTime delay, Task task) {
  if (delay < 0) delay = 0;
  if (t_ctx.engine == this && t_ctx.endpoint != kNoEndpoint) {
    post(t_ctx.endpoint, t_ctx.endpoint, t_ctx.now + delay, std::move(task));
  } else {
    post(kNoEndpoint, kNoEndpoint, clock_.now() + delay, std::move(task));
  }
}

void Engine::push_event(Event event) {
  if (event.target == kNoEndpoint) {
    external_.push(std::move(event));
    return;
  }
  const std::uint32_t target_shard = shard_of(event.target);
  if (fanout_active_ && t_ctx.engine == this && t_ctx.shard != target_shard &&
      t_ctx.endpoint != kNoEndpoint) {
    // Inside a worker-fanned-out round on a different shard: pushing into
    // the target queue directly would race with the thread executing that
    // shard, so stage in the outbox; the round barrier merges it. The
    // full-key comparator makes merge order independent of arrival order,
    // so this is determinism-neutral. Outside fanned-out rounds (serial
    // mode, single-busy-shard windows) the direct push is safe — and
    // REQUIRED in serial mode, which has no barrier to drain outboxes. The
    // cross-shard clamp in post() keeps the event out of the current window
    // either way.
    shards_[t_ctx.shard].outbox[target_shard].push_back(std::move(event));
    return;
  }
  shards_[target_shard].queue.push(std::move(event));
}

SimTime Engine::now() const {
  if (t_ctx.engine == this) return t_ctx.now;
  return clock_.now();
}

EndpointId Engine::current_endpoint() const {
  return t_ctx.engine == this ? t_ctx.endpoint : kNoEndpoint;
}

std::uint32_t Engine::current_bucket() const {
  if (t_ctx.engine == this && t_ctx.endpoint != kNoEndpoint) {
    return t_ctx.shard;
  }
  return shard_count();
}

const Event* Engine::peek_min() {
  const Event* best = external_.peek();
  EventLater later;
  for (Shard& shard : shards_) {
    const Event* top = shard.queue.peek();
    if (top == nullptr) continue;
    if (best == nullptr || later(*best, *top)) best = top;
  }
  return best;
}

void Engine::execute(Event event, std::uint32_t shard_index) {
  ExecContext saved = t_ctx;
  t_ctx.engine = this;
  t_ctx.shard = shard_index;
  t_ctx.endpoint = event.target;
  t_ctx.now = event.at;
  event.task();
  t_ctx = saved;
}

void Engine::run_in_context(std::uint32_t shard, EndpointId endpoint,
                            SimTime now, const std::function<void()>& fn) {
  ExecContext saved = t_ctx;
  t_ctx.engine = this;
  t_ctx.shard = shard;
  t_ctx.endpoint = endpoint;
  t_ctx.now = now;
  fn();
  t_ctx = saved;
}

bool Engine::serial_step() {
  for (;;) {
    const Event* min = peek_min();
    if (min == nullptr) {
      if (!crypto_service_->pending()) return false;
      crypto_service_->flush_all();
      continue;  // completions post new events
    }
    // Batched crypto must complete before any event that could observe its
    // effects: one targeting an endpoint with pending work, or any event
    // later than the oldest pending submission (a completion may post
    // events that sort before `min`). Re-peek after flushing.
    if (crypto_service_->must_flush_before_any(min->target, min->at)) {
      crypto_service_->flush_all();
      continue;
    }
    if (external_.peek() == min) {
      Event event = external_.pop();
      clock_.advance_to(event.at);
      execute(std::move(event), shard_count());
    } else {
      for (std::uint32_t s = 0; s < shards_.size(); ++s) {
        if (shards_[s].queue.peek() == min) {
          Event event = shards_[s].queue.pop();
          clock_.advance_to(event.at);
          shards_[s].local_now = event.at;
          execute(std::move(event), s);
          break;
        }
      }
    }
    ++stats_.events_executed;
    return true;
  }
}

std::size_t Engine::run(std::size_t max_events) {
  if (options_.workers > 1 && shards_.size() > 1) {
    return run_parallel(max_events);
  }
  std::size_t processed = 0;
  while (processed < max_events && serial_step()) ++processed;
  return processed;
}

void Engine::process_shard_window(std::uint32_t shard_index,
                                  SimTime window_end) {
  Shard& shard = shards_[shard_index];
  CryptoService& service = *crypto_service_;
  for (;;) {
    const Event* head = shard.queue.peek();
    if (head == nullptr || head->at >= window_end) {
      // End of window: batched work must complete before the round barrier.
      // Completions post at >= submission + lookahead — never back into
      // this window — and may resubmit, so loop until the queue is dry.
      if (!service.pending_in(shard_index)) break;
      service.flush(shard_index);
      continue;
    }
    if (service.must_flush_before(shard_index, head->target, head->at)) {
      service.flush(shard_index);
      continue;  // re-peek: completions may post earlier in-window events
    }
    Event event = shard.queue.pop();
    shard.local_now = event.at;
    execute(std::move(event), shard_index);
    ++shard.executed;
  }
}

std::size_t Engine::run_parallel(std::size_t max_events) {
  start_workers();
  std::size_t processed = 0;
  while (processed < max_events) {
    const Event* min = peek_min();
    if (min == nullptr) {
      if (!crypto_service_->pending()) break;
      crypto_service_->flush_all();
      continue;  // completions post new events
    }
    // Work left pending by a serially-executed window (the external-event
    // path below can exit mid-window) must flush before a later round, for
    // the same reason serial_step flushes: completions may post events that
    // sort before `min`. Workers are idle here, so flush_all is safe.
    if (crypto_service_->must_flush_before_any(min->target, min->at)) {
      crypto_service_->flush_all();
      continue;
    }
    const SimTime window_end = min->at + lookahead_;
    ++stats_.rounds;

    // Driver-originated events have no shard affinity: execute their window
    // serially (the global merge), which is always safe.
    const Event* external_head = external_.peek();
    if (external_head != nullptr && external_head->at < window_end) {
      while (processed < max_events) {
        const Event* head = peek_min();
        if (head == nullptr || head->at >= window_end) break;
        serial_step();
        ++processed;
      }
      continue;
    }

    std::uint32_t busy = 0;
    std::uint32_t only_shard = 0;
    for (std::uint32_t s = 0; s < shards_.size(); ++s) {
      const Event* head = shards_[s].queue.peek();
      if (head != nullptr && head->at < window_end) {
        ++busy;
        only_shard = s;
      }
    }
    if (busy <= 1) {
      // One shard active: run its window inline, no synchronization.
      shards_[only_shard].executed = 0;
      process_shard_window(only_shard, window_end);
      processed += shards_[only_shard].executed;
      stats_.events_executed += shards_[only_shard].executed;
    } else {
      ++stats_.parallel_rounds;
      for (Shard& shard : shards_) shard.executed = 0;
      {
        std::unique_lock<std::mutex> lock(pool_mutex_);
        round_window_end_ = window_end;
        round_next_shard_.store(0, std::memory_order_relaxed);
        round_busy_ = static_cast<std::uint32_t>(workers_.size());
        fanout_active_ = true;  // workers observe it via the mutex handoff
        ++round_id_;
        round_start_.notify_all();
        round_done_.wait(lock, [this] { return round_busy_ == 0; });
        fanout_active_ = false;
      }
      for (Shard& shard : shards_) {
        processed += shard.executed;
        stats_.events_executed += shard.executed;
      }
    }

    // Round barrier: merge cross-shard mailboxes into target queues and
    // advance the watermark. Merge order is irrelevant (full-key comparator).
    for (Shard& shard : shards_) {
      for (std::uint32_t target = 0; target < shard.outbox.size(); ++target) {
        stats_.cross_shard_events += shard.outbox[target].size();
        for (Event& event : shard.outbox[target]) {
          shards_[target].queue.push(std::move(event));
        }
        shard.outbox[target].clear();
      }
    }
    SimTime watermark = clock_.now();
    for (const Shard& shard : shards_) {
      watermark = std::max(watermark, shard.local_now);
    }
    clock_.advance_to(watermark);
  }
  return processed;
}

void Engine::start_workers() {
  if (!workers_.empty()) return;
  const std::uint32_t count = std::min<std::uint32_t>(
      options_.workers, static_cast<std::uint32_t>(shards_.size()));
  workers_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Engine::stop_workers() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    shutdown_ = true;
    round_start_.notify_all();
  }
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

void Engine::worker_loop() {
  std::uint64_t seen_round = 0;
  for (;;) {
    SimTime window_end;
    {
      std::unique_lock<std::mutex> lock(pool_mutex_);
      round_start_.wait(lock, [this, seen_round] {
        return shutdown_ || round_id_ != seen_round;
      });
      if (shutdown_) return;
      seen_round = round_id_;
      window_end = round_window_end_;
    }
    // Claim shards until none remain. Shard state is only touched by the
    // claiming thread this round; the pool mutex orders rounds.
    const std::uint32_t shard_count_u =
        static_cast<std::uint32_t>(shards_.size());
    for (;;) {
      const std::uint32_t s =
          round_next_shard_.fetch_add(1, std::memory_order_relaxed);
      if (s >= shard_count_u) break;
      // process_shard_window peeks (and so may cascade wheel buckets), but
      // only this thread touches shard s during the round.
      process_shard_window(s, window_end);
    }
    {
      std::lock_guard<std::mutex> lock(pool_mutex_);
      if (--round_busy_ == 0) round_done_.notify_all();
    }
  }
}

bool Engine::idle() const {
  if (crypto_service_->pending()) return false;
  if (!external_.empty()) return false;
  for (const Shard& shard : shards_) {
    if (!shard.queue.empty()) return false;
  }
  return true;
}

}  // namespace tpnr::runtime
