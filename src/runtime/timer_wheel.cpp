#include "runtime/timer_wheel.h"

#include <algorithm>
#include <limits>

namespace tpnr::runtime {

namespace {

constexpr SimTime kEmptySlot = std::numeric_limits<SimTime>::max();

/// Level for a positive delta: the highest 6-bit digit in use. Level L
/// covers deltas in [2^(6L), 2^(6(L+1))).
int level_for(SimTime delta) {
  int level = 0;
  while (delta >> (TimerWheel::kLevelBits * (level + 1)) != 0) ++level;
  return level;
}

}  // namespace

TimerWheel::TimerWheel() {
  for (auto& level : slot_min_) level.fill(kEmptySlot);
}

void TimerWheel::push(Event event) {
  ++size_;
  // At or before the floor: the event belongs to the batch currently being
  // drained (a same-timestamp push — e.g. an actor posting a zero-delay
  // follow-up — must interleave exactly as the heap would). Insert in
  // comparator position; EventLater sorts descending here, so upper_bound
  // keeps the vector pop_back()-minimal.
  if (event.at <= origin_ && (!ready_.empty() || event.at <= ready_time_)) {
    if (ready_.empty()) ready_time_ = event.at;
    auto pos = std::upper_bound(ready_.begin(), ready_.end(), event,
                                EventLater{});
    ready_.insert(pos, std::move(event));
    return;
  }
  place(std::move(event));
}

void TimerWheel::place(Event event) {
  const SimTime delta = event.at > origin_ ? event.at - origin_ : 0;
  if (delta >= kHorizon) {
    overflow_.push(std::move(event));
    return;
  }
  if (delta == 0) {
    // at == origin_ with no active batch (first event ever, or pushed right
    // after the batch drained): seed/extend the ready batch.
    ready_time_ = event.at;
    auto pos = std::upper_bound(ready_.begin(), ready_.end(), event,
                                EventLater{});
    ready_.insert(pos, std::move(event));
    return;
  }
  const int level = level_for(delta);
  // Slot index from the absolute timestamp's level-L digit: within one
  // level, equal indices imply timestamps within one slot width, so a
  // level-0 slot holds exactly one timestamp.
  const int slot = static_cast<int>(
      (event.at >> (kLevelBits * level)) & (kSlotsPerLevel - 1));
  SimTime& cached = slot_min_[level][slot];
  if (event.at < cached) cached = event.at;
  slots_[level][slot].push_back(std::move(event));
}

void TimerWheel::advance() {
  // Find the minimal pending timestamp across slot caches + overflow.
  SimTime best = kEmptySlot;
  for (int level = 0; level < kLevels; ++level) {
    for (int slot = 0; slot < kSlotsPerLevel; ++slot) {
      best = std::min(best, slot_min_[level][slot]);
    }
  }
  if (!overflow_.empty()) best = std::min(best, overflow_.top().at);
  if (best == kEmptySlot) return;  // wheel is empty

  // Advance the floor FIRST so re-bucketed events compute deltas against
  // the new origin (smaller deltas -> lower levels; that is the cascade).
  origin_ = best;
  ready_time_ = best;

  // Drain every slot that might hold the minimal timestamp. Equal minima
  // can coexist at several levels (an event pushed from far away lands at a
  // high level and stays there even as the floor approaches), hence the
  // full scan rather than a single-slot drain.
  for (int level = 0; level < kLevels; ++level) {
    for (int slot = 0; slot < kSlotsPerLevel; ++slot) {
      if (slot_min_[level][slot] != best) continue;
      std::vector<Event> bucket = std::move(slots_[level][slot]);
      slots_[level][slot].clear();
      slot_min_[level][slot] = kEmptySlot;
      for (Event& event : bucket) {
        if (event.at == best) {
          ready_.push_back(std::move(event));
        } else {
          place(std::move(event));  // re-buckets relative to the new floor
        }
      }
    }
  }
  while (!overflow_.empty() && overflow_.top().at == best) {
    ready_.push_back(std::move(const_cast<Event&>(overflow_.top())));
    overflow_.pop();
  }
  std::sort(ready_.begin(), ready_.end(), EventLater{});
}

const Event* TimerWheel::peek() {
  if (ready_.empty()) advance();
  return ready_.empty() ? nullptr : &ready_.back();
}

Event TimerWheel::pop() {
  if (ready_.empty()) advance();
  Event event = std::move(ready_.back());
  ready_.pop_back();
  --size_;
  return event;
}

}  // namespace tpnr::runtime
