// Fleet-wide crypto batching service. Actors inside the deterministic
// runtime submit digest and signature-verification work to a per-shard
// queue instead of computing inline; the engine flushes each queue at the
// points where results become observable, so jobs from MANY actors coalesce
// into full multi-buffer SHA-256 dispatches and per-key grouped RSA
// verifications (one Montgomery context per key group).
//
// Determinism contract. A flush runs each batch's completion under the
// submitting endpoint's execution context (same endpoint, same sim-time as
// the submission), in per-shard submission order. Because
//  * an endpoint's per-origin event sequence numbers are allocated only by
//    that endpoint's own executions and completions, in a fixed relative
//    order, and
//  * the engine flushes a queue before (a) executing any event that targets
//    an endpoint with pending work and (b) executing any event with a later
//    timestamp than the oldest pending submission,
// every event posted by a completion carries the identical (at, origin,
// seq) merge key it would have had if the work had run inline — so
// experiment records are byte-identical to TPNR_CRYPTO_ACCEL=0 at any shard
// and worker count.
//
// Completions must observe two rules: touch only the submitting endpoint's
// own state, and post events only at `submit time + engine lookahead` or
// later (every transport send satisfies this — latencies are clamped to the
// lookahead — and protocol timers are far coarser). The second rule keeps
// end-of-window flushes in parallel rounds from back-dating events into a
// window the shard already drained.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/payload.h"
#include "crypto/hash.h"
#include "crypto/rsa.h"
#include "runtime/event.h"

namespace tpnr::runtime {

class Engine;

/// One message to digest. tag < 0 hashes `message` as-is; otherwise the
/// single tag byte is prefixed (domain separation), matching
/// crypto::TaggedMessage.
struct DigestJob {
  common::Payload message;  ///< shared COW buffer: deferral never deep-copies
  int tag = -1;
};

/// One signature to check. The key is shared so a deferred job keeps the
/// actor's interned key (and its cached Montgomery context) alive.
struct VerifyJob {
  std::shared_ptr<const crypto::RsaPublicKey> key;
  crypto::HashKind kind = crypto::HashKind::kSha256;
  common::Bytes message;
  common::Bytes signature;
};

class CryptoService {
 public:
  /// Results arrive in job order, one digest / verdict per submitted job.
  using DigestCompletion = std::function<void(std::vector<common::Bytes>)>;
  using VerifyCompletion = std::function<void(std::vector<bool>)>;

  explicit CryptoService(Engine& engine);

  CryptoService(const CryptoService&) = delete;
  CryptoService& operator=(const CryptoService&) = delete;

  /// True when a submit_* made right now would be queued for a batched
  /// flush: the service is enabled and the caller is executing a shard
  /// event. Driver code (tests, benchmark setup) always runs inline, so
  /// direct calls into actor methods keep their synchronous semantics.
  [[nodiscard]] bool deferrable() const;

  /// Hashes `jobs` and hands the digests to `done`. Deferred when
  /// deferrable(), else computed and completed before returning (still
  /// through the lane engine, batched within this call).
  void submit_digests(std::vector<DigestJob> jobs, DigestCompletion done);

  /// Verifies `jobs` (each under its own key) and hands the verdicts to
  /// `done`. Deferral as for submit_digests; deferred jobs from all actors
  /// in the shard are regrouped by key fingerprint so each group shares one
  /// Montgomery context and the verify memo.
  void submit_verifies(std::vector<VerifyJob> jobs, VerifyCompletion done);

  /// Pending work anywhere / in one shard's queue.
  [[nodiscard]] bool pending() const;
  [[nodiscard]] bool pending_in(std::uint32_t bucket) const;

  /// True when the event (target, at) about to execute on `bucket`'s shard
  /// must wait for that queue to flush first: it targets an endpoint with
  /// pending work, or it is later than the oldest pending submission.
  [[nodiscard]] bool must_flush_before(std::uint32_t bucket, EndpointId target,
                                       common::SimTime at) const;
  /// Serial-mode variant: the same test against every queue at once.
  [[nodiscard]] bool must_flush_before_any(EndpointId target,
                                           common::SimTime at) const;

  /// Drains one shard's queue: batch-hash, batch-verify, then run the
  /// completions in submission order under their endpoints' contexts.
  /// Completions may submit again; the new work lands in the (now empty)
  /// queue for a later flush. No-op on an empty queue.
  void flush(std::uint32_t bucket);
  void flush_all();

 private:
  struct PendingBatch {
    EndpointId endpoint = kNoEndpoint;
    common::SimTime submitted = 0;
    std::vector<DigestJob> digests;
    DigestCompletion digest_done;  // set iff this is a digest batch
    std::vector<VerifyJob> verifies;
    VerifyCompletion verify_done;  // set iff this is a verify batch
  };

  struct Bucket {
    /// FIFO; submission times are non-decreasing because a shard executes
    /// its events in time order, so the oldest submission is front().
    std::deque<PendingBatch> fifo;
    std::unordered_set<EndpointId> endpoints;  ///< with pending work
  };

  [[nodiscard]] static std::vector<std::vector<common::Bytes>> hash_batches(
      const std::vector<PendingBatch>& work);
  [[nodiscard]] static std::vector<std::vector<bool>> verify_batches(
      const std::vector<PendingBatch>& work);

  Engine& engine_;
  std::vector<Bucket> buckets_;  ///< one per shard; touched only by the
                                 ///< thread executing that shard's events
};

}  // namespace tpnr::runtime
