// Sharded deterministic discrete-event runtime.
//
// The engine owns N logical shards, each with its own event queue. Every
// endpoint (an actor, a network host) is registered once and pinned to a
// shard; events that target an endpoint execute on its shard. Cross-shard
// traffic flows through per-shard mailboxes that are merged at round
// barriers.
//
// Determinism is the design center: every event carries a content-derived
// merge key (timestamp, origin endpoint, per-origin sequence number), so the
// execution order observed by any endpoint is a pure function of the seed
// and the program — independent of the shard count and of whether worker
// threads are enabled. Randomness is never drawn from a global stream
// consumed in arrival order; each endpoint owns a Drbg derived from
// (engine seed, endpoint name), so sampling order is also shard-invariant.
//
// Parallel execution uses conservative windows: a round executes, on every
// shard concurrently, all events in [T, T + lookahead), where `lookahead`
// is the transport's minimum cross-endpoint delay. Any event created during
// the round lands at or after the window end, so shards cannot affect each
// other mid-round; per-endpoint observable order therefore matches the
// serial merge exactly.
//
// Rules for parallel runs (serial runs have no such constraints):
//  * a task may only originate events (sends, timers) from endpoints on the
//    shard it is executing on — normally itself;
//  * endpoints must be registered before run();
//  * driver-originated timers force their round to execute serially.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "crypto/drbg.h"
#include "runtime/event.h"
#include "runtime/timer_wheel.h"

namespace tpnr::runtime {

using common::SimTime;

class CryptoService;

/// String -> dense id interner. Lookup is one hash probe; the reverse
/// mapping is an index into a vector, so the hot path never compares or
/// copies strings. Internally synchronized (reader/writer lock) because new
/// topics can be interned from handler code running on worker threads; the
/// common case — the name already exists — takes only the shared lock.
class NameInterner {
 public:
  NameId intern(std::string_view name);
  [[nodiscard]] std::optional<NameId> find(std::string_view name) const;
  /// The returned reference stays valid for the interner's lifetime (it
  /// points into a node-stable map key).
  [[nodiscard]] const std::string& name(NameId id) const;
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, NameId> ids_;
  std::vector<const std::string*> names_;  // points into ids_ keys (stable)
};

struct EngineOptions {
  std::uint32_t shards = 1;   ///< logical shards; endpoints are round-robined
  std::uint32_t workers = 1;  ///< worker threads; > 1 enables parallel rounds
  /// Per-shard pending-event container: hierarchical timer wheel (default)
  /// or the legacy binary heap. Both produce the identical (at, origin, seq)
  /// pop order; the heap is kept for A/B runs (TPNR_TIMER_WHEEL=0) and the
  /// equivalence tests.
  bool use_timer_wheel = true;
};

struct EngineStats {
  std::uint64_t events_executed = 0;
  std::uint64_t rounds = 0;           ///< parallel-mode windows processed
  std::uint64_t parallel_rounds = 0;  ///< rounds fanned out to workers
  std::uint64_t cross_shard_events = 0;
};

class Engine {
 public:
  using Task = std::function<void()>;

  explicit Engine(std::uint64_t seed, EngineOptions options = EngineOptions{});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Interns `name` and registers it as an endpoint (idempotent). Endpoints
  /// are assigned to shards round-robin in registration order, which is
  /// program order — the assignment is deterministic.
  EndpointId endpoint(std::string_view name);
  [[nodiscard]] const std::string& endpoint_name(EndpointId id) const;
  [[nodiscard]] std::uint32_t shard_of(EndpointId id) const;
  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] std::uint32_t worker_count() const noexcept {
    return options_.workers;
  }

  /// Per-endpoint deterministic random stream, derived from
  /// (engine seed, endpoint name) — NOT from consumption order.
  crypto::Drbg& rng(EndpointId id);

  /// Per-endpoint monotone counter (envelope ids and similar), deterministic
  /// for the same reason the rng is.
  std::uint64_t next_counter(EndpointId id);

  /// Posts `task` to run at absolute sim-time `at` on `target`'s shard.
  /// `origin` (the causal sender; kNoEndpoint for driver code) and a
  /// per-origin sequence number form the deterministic merge key. Cross-
  /// shard posts are clamped to at least now() + lookahead so conservative
  /// windows stay safe; same-shard posts are clamped only to now().
  void post(EndpointId target, EndpointId origin, SimTime at, Task task);

  /// Schedules `task` at now() + delay on the shard of the endpoint whose
  /// event is currently executing (the timer binds to that endpoint). From
  /// driver code it lands on the external queue, which is always executed
  /// serially.
  void post_timer(SimTime delay, Task task);

  /// Current sim-time: the executing event's timestamp inside a task, the
  /// global high-watermark outside.
  [[nodiscard]] SimTime now() const;

  /// Global high-watermark clock (advanced as events execute). Prefer
  /// now(): during parallel rounds the watermark lags shard-local time by
  /// up to one lookahead window.
  [[nodiscard]] common::SimClock& clock() noexcept { return clock_; }

  /// Endpoint whose event is currently executing (kNoEndpoint outside).
  [[nodiscard]] EndpointId current_endpoint() const;
  /// Shard currently executing on this thread (for per-shard accounting);
  /// shard_count() when called outside any event (the external bucket).
  [[nodiscard]] std::uint32_t current_bucket() const;

  /// Minimum cross-endpoint event delay the transport guarantees; also the
  /// width of a parallel round window. Clamped to >= 1 microsecond.
  void set_lookahead(SimTime lookahead) noexcept {
    lookahead_ = lookahead < 1 ? 1 : lookahead;
  }
  [[nodiscard]] SimTime lookahead() const noexcept { return lookahead_; }

  /// Executes events until the queues drain or ~max_events were processed
  /// (exact in serial mode; checked at window boundaries in parallel mode).
  std::size_t run(std::size_t max_events);

  [[nodiscard]] bool idle() const;
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }

  /// The per-shard crypto batching service (see crypto_service.h). The
  /// engine flushes it at the observability points its determinism contract
  /// requires; actors reach it through this accessor to submit work.
  [[nodiscard]] CryptoService& crypto_service() noexcept {
    return *crypto_service_;
  }

 private:
  friend class CryptoService;

  /// Runs `fn` as if inside an event executing at (`shard`, `endpoint`,
  /// `now`): CryptoService completions use this so everything they post
  /// carries the same merge keys as inline execution would have produced.
  void run_in_context(std::uint32_t shard, EndpointId endpoint, SimTime now,
                      const std::function<void()>& fn);
  struct EndpointState {
    std::uint32_t shard = 0;
    std::unique_ptr<crypto::Drbg> rng;  ///< lazily derived from (seed, name)
    std::uint64_t counter = 0;
    std::uint64_t event_seq = 0;
  };

  struct Shard {
    EventStore queue;
    SimTime local_now = 0;
    std::uint64_t executed = 0;  ///< events executed in the current round
    /// Cross-shard events produced during a parallel round, keyed by target
    /// shard; merged into target queues at the round barrier.
    std::vector<std::vector<Event>> outbox;
  };

  void execute(Event event, std::uint32_t shard_index);
  void push_event(Event event);
  /// Pops and executes the globally-minimal event. Returns false when idle.
  bool serial_step();
  /// Not const: peeking a timer wheel may cascade buckets internally.
  [[nodiscard]] const Event* peek_min();
  void process_shard_window(std::uint32_t shard_index, SimTime window_end);
  std::size_t run_parallel(std::size_t max_events);
  void start_workers();
  void stop_workers();
  void worker_loop();

  std::uint64_t seed_;
  EngineOptions options_;
  std::unique_ptr<CryptoService> crypto_service_;
  common::SimClock clock_;
  NameInterner endpoints_;
  std::vector<EndpointState> endpoint_state_;
  std::vector<Shard> shards_;
  EventStore external_;  ///< driver-originated timers, executed serially
  std::uint64_t external_seq_ = 0;
  SimTime lookahead_ = 1;
  EngineStats stats_;

  // Worker pool (parallel mode only).
  std::vector<std::thread> workers_;
  std::mutex pool_mutex_;
  std::condition_variable round_start_;
  std::condition_variable round_done_;
  std::uint64_t round_id_ = 0;
  SimTime round_window_end_ = 0;
  std::uint32_t round_busy_ = 0;
  /// True only while a round is fanned out to workers: cross-shard events
  /// must then go through outboxes instead of pushing into queues another
  /// thread may be draining. Written under pool_mutex_ before/after each
  /// round; the round handshake orders workers' reads.
  bool fanout_active_ = false;
  bool shutdown_ = false;
  std::atomic<std::uint32_t> round_next_shard_{0};
};

}  // namespace tpnr::runtime
