// Consistent-hash object->provider placement.
//
// A fleet of providers is arranged on a 64-bit hash ring, each contributing
// `vnodes` virtual points; an object key is owned by the first provider
// point at or clockwise of the key's hash. Both sides of the mapping are
// SHA-256-derived, so placement is a pure function of the membership set —
// every client, auditor and directory that holds the same ring computes the
// same owner without coordination, and adding/removing one provider moves
// only ~1/N of the keyspace.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tpnr::runtime {

class Placement {
 public:
  explicit Placement(std::uint32_t vnodes = 64);

  /// Adds a provider's vnodes to the ring (idempotent). Bumps version().
  void add_provider(const std::string& name);
  /// Removes a provider and its vnodes; no-op if absent. Bumps version().
  void remove_provider(const std::string& name);

  /// The provider owning `object_key`. Throws std::runtime_error on an
  /// empty ring.
  [[nodiscard]] const std::string& owner(std::string_view object_key) const;

  /// The first `count` DISTINCT providers clockwise of the key's point —
  /// the natural replica set for `object_key`.
  [[nodiscard]] std::vector<std::string> owners(std::string_view object_key,
                                               std::size_t count) const;

  [[nodiscard]] std::size_t provider_count() const noexcept {
    return providers_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return providers_.empty(); }
  /// Monotone membership-change counter; lets a cached lookup (a client's
  /// owner cache, a directory reply) be invalidated on ring changes.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }
  [[nodiscard]] const std::vector<std::string>& providers() const noexcept {
    return providers_;
  }

 private:
  [[nodiscard]] std::size_t ring_successor(std::string_view object_key) const;

  std::uint32_t vnodes_;
  std::uint64_t version_ = 0;
  std::vector<std::string> providers_;  ///< insertion order (deterministic)
  /// (point, provider index), sorted by point. Point collisions between
  /// different providers break ties by provider name via the stored index
  /// ordering — vanishingly unlikely with 64-bit SHA-256 points, but the
  /// ring must stay a deterministic function of membership regardless.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
};

}  // namespace tpnr::runtime
