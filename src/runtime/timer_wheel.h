// Hierarchical timer wheel: the per-shard event container behind the
// engine's fleet-scale mode.
//
// The legacy per-shard std::priority_queue costs O(log n) per push/pop with
// n = every pending event on the shard — at fleet scale that is hundreds of
// thousands of armed receipt/verdict timers, most of which fire far in the
// future (or never, their guards having been settled long before). The
// wheel buckets events by time instead: 6 levels of 64 slots, level L slots
// spanning 2^(6L) microseconds, so schedule is O(1) and pop touches only
// the slots whose cached minimum is the global minimum. Events beyond the
// ~19-hour horizon (2^36 us) overflow into a small heap.
//
// Determinism: pops leave the wheel in EXACTLY the (at, origin, seq) order
// of runtime/event.h — the same total order the legacy heap produces. Two
// mechanisms make that hold:
//   * all events sharing the minimal timestamp are collected into one
//     sorted `ready_` batch before anything pops. Equal timestamps can be
//     buried in DIFFERENT slots (and different levels — a level-1 slot and
//     the overflow heap can both hold t_min), so the collection pass drains
//     every slot whose cached min equals t_min, keeps the equal events and
//     re-buckets the rest relative to the new origin;
//   * a push AT the currently-draining timestamp inserts into the sorted
//     batch in comparator position, exactly as a heap push would interleave.
//
// There is no cancel: the engine never revokes an event (actor timers carry
// their own state/attempt guards and fire as no-ops), so a slot is a plain
// vector and schedule stays allocation-amortized O(1).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/event.h"

namespace tpnr::runtime {

class TimerWheel {
 public:
  static constexpr int kLevelBits = 6;
  static constexpr int kSlotsPerLevel = 1 << kLevelBits;  // 64
  static constexpr int kLevels = 6;
  /// Deltas at or past this land in the overflow heap (2^36 us ~ 19.1 h).
  static constexpr SimTime kHorizon = SimTime{1}
                                      << (kLevelBits * kLevels);

  TimerWheel();

  void push(Event event);

  /// The next event in (at, origin, seq) order, or nullptr when empty. May
  /// cascade internally (moves buckets, never reorders), which is why it is
  /// not const.
  [[nodiscard]] const Event* peek();

  /// Pops the event peek() points at. Undefined when empty.
  Event pop();

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  /// Ensures ready_ holds the full batch for the minimal timestamp.
  void advance();
  void place(Event event);

  /// origin_ is the wheel's time floor: the timestamp of the current ready
  /// batch. Slot/level geometry is computed from (at - origin_); events at
  /// or before the floor live in ready_.
  SimTime origin_ = 0;
  SimTime ready_time_ = 0;
  /// Current-timestamp batch, sorted DESCENDING by EventLater so pop_back()
  /// yields the (origin, seq) minimum.
  std::vector<Event> ready_;

  std::array<std::array<std::vector<Event>, kSlotsPerLevel>, kLevels> slots_;
  /// Cached minimum timestamp per slot (kEmptySlot when vacant) — the pop
  /// path scans these 384 values instead of the events themselves.
  std::array<std::array<SimTime, kSlotsPerLevel>, kLevels> slot_min_;
  EventQueue overflow_;
  std::size_t size_ = 0;
};

/// A shard's pending-event set: the timer wheel or the legacy binary heap,
/// selected once at engine construction (EngineOptions::use_timer_wheel /
/// TPNR_TIMER_WHEEL). Both sides expose the same peek/pop contract and the
/// same total order, which the wheel-vs-heap equivalence tests pin down.
class EventStore {
 public:
  explicit EventStore(bool use_wheel = true) : use_wheel_(use_wheel) {}

  void push(Event event) {
    if (use_wheel_) {
      wheel_.push(std::move(event));
    } else {
      heap_.push(std::move(event));
    }
  }

  [[nodiscard]] const Event* peek() {
    if (use_wheel_) return wheel_.peek();
    return heap_.empty() ? nullptr : &heap_.top();
  }

  Event pop() {
    if (use_wheel_) return wheel_.pop();
    // priority_queue::top() is const; moving out before pop avoids copying
    // the std::function (safe: the pop discards the moved-from slot).
    Event event = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    return event;
  }

  [[nodiscard]] bool empty() const noexcept {
    return use_wheel_ ? wheel_.empty() : heap_.empty();
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return use_wheel_ ? wheel_.size() : heap_.size();
  }

 private:
  bool use_wheel_;
  TimerWheel wheel_;
  EventQueue heap_;
};

}  // namespace tpnr::runtime
