#include "runtime/placement.h"

#include <algorithm>
#include <stdexcept>

#include "crypto/hash.h"

namespace tpnr::runtime {

namespace {

/// First 8 bytes of SHA-256(label), big-endian — the ring coordinate.
std::uint64_t ring_point(std::string_view label) {
  const auto digest = crypto::sha256(common::BytesView(
      reinterpret_cast<const std::uint8_t*>(label.data()), label.size()));
  std::uint64_t point = 0;
  for (int i = 0; i < 8; ++i) {
    point = (point << 8) | digest[static_cast<std::size_t>(i)];
  }
  return point;
}

}  // namespace

Placement::Placement(std::uint32_t vnodes)
    : vnodes_(vnodes == 0 ? 1 : vnodes) {}

void Placement::add_provider(const std::string& name) {
  if (std::find(providers_.begin(), providers_.end(), name) !=
      providers_.end()) {
    return;
  }
  const auto index = static_cast<std::uint32_t>(providers_.size());
  providers_.push_back(name);
  ring_.reserve(ring_.size() + vnodes_);
  for (std::uint32_t v = 0; v < vnodes_; ++v) {
    ring_.emplace_back(ring_point(name + "#" + std::to_string(v)), index);
  }
  std::sort(ring_.begin(), ring_.end());
  ++version_;
}

void Placement::remove_provider(const std::string& name) {
  const auto it = std::find(providers_.begin(), providers_.end(), name);
  if (it == providers_.end()) return;
  const auto index = static_cast<std::uint32_t>(it - providers_.begin());
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [index](const auto& entry) {
                               return entry.second == index;
                             }),
              ring_.end());
  // Keep provider indices stable for the survivors: tombstone instead of
  // compacting would leak; re-index the tail instead.
  providers_.erase(it);
  for (auto& entry : ring_) {
    if (entry.second > index) --entry.second;
  }
  ++version_;
}

std::size_t Placement::ring_successor(std::string_view object_key) const {
  if (ring_.empty()) {
    throw std::runtime_error("Placement: empty ring");
  }
  const std::uint64_t point = ring_point(object_key);
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const auto& entry, std::uint64_t p) { return entry.first < p; });
  return it == ring_.end() ? 0 : static_cast<std::size_t>(it - ring_.begin());
}

const std::string& Placement::owner(std::string_view object_key) const {
  return providers_[ring_[ring_successor(object_key)].second];
}

std::vector<std::string> Placement::owners(std::string_view object_key,
                                           std::size_t count) const {
  std::vector<std::string> result;
  if (ring_.empty() || count == 0) return result;
  count = std::min(count, providers_.size());
  std::vector<bool> taken(providers_.size(), false);
  std::size_t at = ring_successor(object_key);
  for (std::size_t step = 0; step < ring_.size() && result.size() < count;
       ++step, at = (at + 1) % ring_.size()) {
    const std::uint32_t index = ring_[at].second;
    if (taken[index]) continue;
    taken[index] = true;
    result.push_back(providers_[index]);
  }
  return result;
}

}  // namespace tpnr::runtime
