// The engine's event record and its deterministic total order, shared by
// the legacy binary-heap queue and the hierarchical timer wheel
// (runtime/timer_wheel.h). Extracted from engine.h so both containers agree
// on one comparator — the determinism contract hangs off this ordering.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/clock.h"

namespace tpnr::runtime {

using common::SimTime;

/// Compact id for an interned name (endpoint or topic).
using NameId = std::uint32_t;
using EndpointId = NameId;

/// Origin/context marker for events not tied to any endpoint (driver code).
inline constexpr EndpointId kNoEndpoint = 0xffffffffu;

struct Event {
  SimTime at = 0;
  EndpointId origin = kNoEndpoint;  ///< merge-key component
  std::uint64_t seq = 0;            ///< per-origin sequence
  EndpointId target = kNoEndpoint;  ///< execution context endpoint
  std::function<void()> task;
};

/// Full deterministic order: (at, origin, seq). kNoEndpoint sorts last at
/// equal timestamps. (origin, seq) pairs are unique, so ties cannot occur.
struct EventLater {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.at != b.at) return a.at > b.at;
    if (a.origin != b.origin) return a.origin > b.origin;
    return a.seq > b.seq;
  }
};

using EventQueue = std::priority_queue<Event, std::vector<Event>, EventLater>;

}  // namespace tpnr::runtime
