// Segmented write-ahead log over simulated BlockFiles (ARIES-style redo
// logging, scoped to this system's needs: evidence, ledger entries and
// object metadata are journaled before they are acknowledged).
//
// On-device layout, all integers little-endian (common/serial.h):
//
//   segment := header frame*
//   header  := u32 magic "TWL1" | u32 segment_seq | u64 first_lsn
//   frame   := u32 payload_len | u32 crc32c(type‖lsn‖payload)
//            | u16 type | u64 lsn | payload
//
// The reader consumes frames until the first torn/corrupt one and stops
// cleanly there: everything before it is trustworthy (CRC-verified,
// contiguous LSNs), everything after is the crash-damaged tail.
//
// Group commit: kEveryRecord flushes per append (commit = returned),
// kEveryN amortizes the flush over n appends, kEveryInterval over a
// SimClock window — the classic durability/throughput dial the
// bench_persist_recovery sweep quantifies.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "persist/block_file.h"
#include "persist/journal.h"

namespace tpnr::persist {

enum class FlushPolicy : std::uint8_t {
  kEveryRecord = 0,
  kEveryN = 1,
  kEveryInterval = 2,
};

std::string flush_policy_name(FlushPolicy policy);

struct WalOptions {
  std::size_t segment_bytes = 64 * 1024;  ///< rotate past this size
  FlushPolicy policy = FlushPolicy::kEveryRecord;
  std::size_t flush_every_n = 8;                          ///< kEveryN
  common::SimTime flush_interval = 10 * common::kMillisecond;
  const common::SimClock* clock = nullptr;  ///< required for kEveryInterval
};

struct WalRecord {
  std::uint64_t lsn = 0;
  RecordType type = RecordType::kOpaque;
  Bytes payload;
};

/// What a post-crash scan of the durable segment images yields.
struct WalReadResult {
  std::vector<WalRecord> records;
  /// True iff every durable byte parsed as a whole, CRC-valid frame.
  bool clean = true;
  std::string stop_reason = "end-of-log";
  /// Durable bytes at and after the stop point (the damaged tail).
  std::uint64_t dropped_bytes = 0;
};

class Wal final : public Journal {
 public:
  explicit Wal(WalOptions options = {},
               std::shared_ptr<FaultInjector> faults = nullptr);

  /// Appends one record and applies the flush policy. Returns the record's
  /// LSN (1-based). Throws DeviceCrashed if the fault model fires; the WAL
  /// is dead afterwards and only the durable accessors stay meaningful.
  std::uint64_t record(RecordType type, BytesView payload) override;

  /// Forces a group-commit flush (no-op when nothing is pending).
  void sync();

  [[nodiscard]] std::uint64_t last_lsn() const noexcept { return last_lsn_; }
  /// Highest LSN guaranteed on the media (the commit watermark).
  [[nodiscard]] std::uint64_t durable_lsn() const noexcept {
    return durable_lsn_;
  }
  [[nodiscard]] bool crashed() const noexcept { return crashed_; }

  /// Drops fully-flushed, non-active segments whose records are all covered
  /// by a snapshot at `lsn` (compaction after Snapshotter::write). Returns
  /// the number of segments freed.
  std::size_t truncate_upto(std::uint64_t lsn);

  /// Durable media image of every live segment, oldest first — what
  /// Recovery::replay reads after a crash.
  [[nodiscard]] std::vector<Bytes> durable_images() const;

  // I/O accounting (write amplification = device_bytes / payload_bytes).
  [[nodiscard]] std::uint64_t payload_bytes() const noexcept {
    return payload_bytes_;
  }
  [[nodiscard]] std::uint64_t device_bytes() const noexcept;
  [[nodiscard]] std::uint64_t device_writes() const noexcept;
  [[nodiscard]] std::uint64_t device_flushes() const noexcept;
  [[nodiscard]] std::size_t segment_count() const noexcept {
    return segments_.size();
  }

  /// Scans durable segment images; stops at the first corrupt/torn frame.
  static WalReadResult read(const std::vector<Bytes>& images);

  static constexpr std::uint32_t kSegmentMagic = 0x314C5754;  // "TWL1"
  static constexpr std::size_t kSegmentHeaderBytes = 16;
  static constexpr std::size_t kFrameHeaderBytes = 18;
  /// Sanity bound on one record; larger declared lengths are corruption.
  static constexpr std::size_t kMaxRecordBytes = 1u << 26;

 private:
  struct Segment {
    std::unique_ptr<BlockFile> file;
    std::uint32_t seq = 0;
    std::uint64_t first_lsn = 0;
    std::uint64_t last_lsn = 0;   ///< 0 = no records yet
    bool sealed = false;          ///< rotated away, fully flushed
  };

  void open_segment();
  void flush_now();
  void maybe_flush();
  Segment& active() { return segments_.back(); }

  WalOptions options_;
  std::shared_ptr<FaultInjector> faults_;
  std::vector<Segment> segments_;
  std::uint32_t next_segment_seq_ = 0;
  std::uint64_t last_lsn_ = 0;
  std::uint64_t durable_lsn_ = 0;
  std::uint64_t payload_bytes_ = 0;
  std::uint64_t retired_device_bytes_ = 0;
  std::uint64_t retired_device_writes_ = 0;
  std::uint64_t retired_device_flushes_ = 0;
  std::size_t appends_since_flush_ = 0;
  common::SimTime last_flush_at_ = 0;
  bool crashed_ = false;
};

}  // namespace tpnr::persist
