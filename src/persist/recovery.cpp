#include "persist/recovery.h"

#include <algorithm>

#include "common/serial.h"
#include "nr/evidence.h"

namespace tpnr::persist {

DurableImage capture_durable(const Snapshotter* snapshotter, const Wal& wal) {
  DurableImage image;
  if (snapshotter != nullptr) image.snapshot = snapshotter->durable_image();
  image.wal_segments = wal.durable_images();
  return image;
}

RecoveredState Recovery::replay(const DurableImage& image,
                                const RecoveryOptions& options) {
  RecoveredState state;
  RecoveryReport& report = state.report;

  // 1. Snapshot: the base image. A damaged snapshot is ignored wholesale
  // (decode validates CRC); recovery then degrades to whatever the WAL
  // retains, and the report says so.
  std::uint64_t replay_from = 1;
  if (!image.snapshot.empty()) {
    report.snapshot_present = true;
    if (auto snapshot = Snapshotter::decode(image.snapshot)) {
      report.snapshot_ok = true;
      report.snapshot_lsn = snapshot->wal_lsn;
      replay_from = snapshot->wal_lsn + 1;
      state.ledger.raw_entries() = std::move(snapshot->ledger);
      state.evidence = std::move(snapshot->evidence);
      for (ObjectMeta& meta : snapshot->objects) {
        std::string key = meta.key;
        state.objects[std::move(key)] = std::move(meta);
      }
    }
  }

  // 2. WAL redo: apply every record past the snapshot watermark, stopping
  // where the reader stopped (first torn/corrupt frame).
  const WalReadResult scan = Wal::read(image.wal_segments);
  report.wal_clean = scan.clean;
  report.wal_stop_reason = scan.stop_reason;
  report.wal_dropped_bytes = scan.dropped_bytes;
  std::uint64_t last_scanned_lsn = 0;
  for (const WalRecord& record : scan.records) {
    last_scanned_lsn = record.lsn;
    if (record.lsn < replay_from) continue;  // folded into the snapshot
    try {
      switch (record.type) {
        case RecordType::kAuditEntry:
          state.ledger.raw_entries().push_back(
              audit::AuditEntry::decode_full(record.payload));
          break;
        case RecordType::kEvidence:
          state.evidence.push_back(EvidenceRecord::decode(record.payload));
          break;
        case RecordType::kObjectPut: {
          ObjectMeta meta = ObjectMeta::decode(record.payload);
          std::string key = meta.key;
          state.objects[std::move(key)] = std::move(meta);
          break;
        }
        case RecordType::kObjectMutate: {
          // Chunk-level mutation: roll the object's meta forward to the
          // post-mutation facts. The key is created if the base put was
          // lost (degraded snapshot) so the version watermark survives.
          const MutationRecord mutation =
              MutationRecord::decode(record.payload);
          ObjectMeta& meta = state.objects[mutation.key];
          meta.key = mutation.key;
          meta.version = mutation.version;
          meta.stored_at = mutation.stored_at;
          meta.size = mutation.size;
          meta.sha256 = mutation.sha256;
          break;
        }
        case RecordType::kObjectRemove: {
          common::BinaryReader r(record.payload);
          const std::string key = r.str();
          r.expect_done();
          state.objects.erase(key);
          break;
        }
        case RecordType::kOpaque:
          break;
      }
    } catch (const common::SerialError&) {
      // CRC-valid but undecodable: treat like a corrupt frame — stop the
      // redo here rather than apply a half-understood suffix.
      report.wal_clean = false;
      report.wal_stop_reason = "undecodable-record";
      last_scanned_lsn = record.lsn > 0 ? record.lsn - 1 : 0;
      break;
    }
    ++report.wal_records_replayed;
  }
  report.last_recovered_lsn = std::max(report.snapshot_lsn, last_scanned_lsn);

  // 3. Loss accounting: committed-but-missing is the unforgivable bucket;
  // the un-flushed suffix is what the flush policy consciously risked.
  if (options.durable_lsn > report.last_recovered_lsn) {
    report.lost_committed = options.durable_lsn - report.last_recovered_lsn;
  }
  const std::uint64_t recovered_or_committed =
      std::max(report.last_recovered_lsn, options.durable_lsn);
  if (options.last_lsn > recovered_or_committed) {
    report.lost_unflushed = options.last_lsn - recovered_or_committed;
  }

  // 4. Cross-check the rebuilt ledger: recompute the whole hash chain, and
  // make sure the chain still reaches any externally published head.
  report.ledger_entries = state.ledger.size();
  report.ledger_first_invalid = state.ledger.first_invalid();
  report.ledger_chain_ok =
      report.ledger_first_invalid == state.ledger.size();
  if (options.published_ledger_head) {
    const Bytes& published = *options.published_ledger_head;
    bool covered = published == audit::AuditLedger::genesis_hash();
    for (const audit::AuditEntry& entry : state.ledger.entries()) {
      if (entry.entry_hash == published) {
        covered = true;
        break;
      }
    }
    report.ledger_covers_published_head = covered;
  }

  // 5. Cross-check recovered evidence: signatures must still verify against
  // the signer keys the caller trusts.
  for (const EvidenceRecord& record : state.evidence) {
    ++report.evidence_total;
    const auto it = options.signer_keys.find(record.signer);
    if (it == options.signer_keys.end()) {
      ++report.evidence_unverifiable;
      continue;
    }
    nr::OpenedEvidence opened;
    opened.data_hash_signature = record.data_hash_signature;
    opened.header_signature = record.header_signature;
    opened.header = record.header;
    if (nr::verify_evidence_signatures(it->second, record.header, opened)) {
      ++report.evidence_verified;
    } else {
      ++report.evidence_failed;
    }
  }

  report.objects_recovered = state.objects.size();
  return state;
}

SnapshotState to_snapshot_state(const RecoveredState& state,
                                std::uint64_t wal_lsn) {
  SnapshotState snapshot;
  snapshot.wal_lsn = wal_lsn;
  snapshot.ledger = state.ledger.entries();
  snapshot.evidence = state.evidence;
  snapshot.objects.reserve(state.objects.size());
  for (const auto& [key, meta] : state.objects) {
    snapshot.objects.push_back(meta);
  }
  return snapshot;
}

}  // namespace tpnr::persist
