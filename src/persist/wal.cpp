#include "persist/wal.h"

#include "common/serial.h"
#include "persist/crc32c.h"

namespace tpnr::persist {

std::string flush_policy_name(FlushPolicy policy) {
  switch (policy) {
    case FlushPolicy::kEveryRecord:
      return "every-record";
    case FlushPolicy::kEveryN:
      return "every-n";
    case FlushPolicy::kEveryInterval:
      return "every-interval";
  }
  return "unknown";
}

Wal::Wal(WalOptions options, std::shared_ptr<FaultInjector> faults)
    : options_(options), faults_(std::move(faults)) {
  if (options_.policy == FlushPolicy::kEveryInterval &&
      options_.clock == nullptr) {
    throw common::PersistError("Wal: kEveryInterval requires a SimClock");
  }
  if (options_.clock != nullptr) last_flush_at_ = options_.clock->now();
  open_segment();
}

void Wal::open_segment() {
  Segment segment;
  segment.seq = next_segment_seq_++;
  segment.first_lsn = last_lsn_ + 1;
  segment.file = std::make_unique<BlockFile>(
      "wal-seg-" + std::to_string(segment.seq), faults_);
  common::BinaryWriter header;
  header.u32(kSegmentMagic);
  header.u32(segment.seq);
  header.u64(segment.first_lsn);
  auto* file = segment.file.get();
  segments_.push_back(std::move(segment));
  try {
    file->append(header.data());
  } catch (const DeviceCrashed&) {
    crashed_ = true;
    throw;
  }
}

std::uint64_t Wal::record(RecordType type, BytesView payload) {
  if (crashed_) throw DeviceCrashed("Wal: record after crash");

  const std::size_t frame_bytes = kFrameHeaderBytes + payload.size();
  // Rotate before the append would push the active segment past its bound.
  if (active().last_lsn != 0 &&
      active().file->size() + frame_bytes > options_.segment_bytes) {
    flush_now();  // a sealed segment is durable by definition
    active().sealed = true;
    open_segment();
  }

  const std::uint64_t lsn = ++last_lsn_;
  common::BinaryWriter body;
  body.u16(static_cast<std::uint16_t>(type));
  body.u64(lsn);
  Bytes frame_body = body.take();
  common::append(frame_body, payload);

  common::BinaryWriter frame;
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.u32(crc32c(frame_body));
  Bytes encoded = frame.take();
  common::append(encoded, frame_body);

  Segment& segment = active();
  try {
    segment.file->append(encoded);
  } catch (const DeviceCrashed&) {
    crashed_ = true;
    throw;
  }
  segment.last_lsn = lsn;
  payload_bytes_ += payload.size();
  ++appends_since_flush_;
  maybe_flush();
  return lsn;
}

void Wal::maybe_flush() {
  switch (options_.policy) {
    case FlushPolicy::kEveryRecord:
      flush_now();
      break;
    case FlushPolicy::kEveryN:
      if (appends_since_flush_ >= options_.flush_every_n) flush_now();
      break;
    case FlushPolicy::kEveryInterval:
      if (options_.clock->now() - last_flush_at_ >= options_.flush_interval) {
        flush_now();
      }
      break;
  }
}

void Wal::flush_now() {
  if (appends_since_flush_ == 0 && durable_lsn_ == last_lsn_) return;
  try {
    active().file->flush();
  } catch (const DeviceCrashed&) {
    crashed_ = true;
    throw;
  }
  durable_lsn_ = last_lsn_;
  appends_since_flush_ = 0;
  if (options_.clock != nullptr) last_flush_at_ = options_.clock->now();
}

void Wal::sync() {
  if (crashed_) throw DeviceCrashed("Wal: sync after crash");
  flush_now();
}

std::size_t Wal::truncate_upto(std::uint64_t lsn) {
  std::size_t freed = 0;
  while (segments_.size() > 1 && segments_.front().sealed &&
         segments_.front().last_lsn != 0 &&
         segments_.front().last_lsn <= lsn &&
         segments_.front().last_lsn <= durable_lsn_) {
    const Segment& segment = segments_.front();
    retired_device_bytes_ += segment.file->bytes_written();
    retired_device_writes_ += segment.file->writes();
    retired_device_flushes_ += segment.file->flushes();
    segments_.erase(segments_.begin());
    ++freed;
  }
  return freed;
}

std::vector<Bytes> Wal::durable_images() const {
  std::vector<Bytes> images;
  images.reserve(segments_.size());
  for (const Segment& segment : segments_) {
    images.push_back(segment.file->durable_image());
  }
  return images;
}

std::uint64_t Wal::device_bytes() const noexcept {
  std::uint64_t total = retired_device_bytes_;
  for (const Segment& segment : segments_) {
    total += segment.file->bytes_written();
  }
  return total;
}

std::uint64_t Wal::device_writes() const noexcept {
  std::uint64_t total = retired_device_writes_;
  for (const Segment& segment : segments_) total += segment.file->writes();
  return total;
}

std::uint64_t Wal::device_flushes() const noexcept {
  std::uint64_t total = retired_device_flushes_;
  for (const Segment& segment : segments_) total += segment.file->flushes();
  return total;
}

WalReadResult Wal::read(const std::vector<Bytes>& images) {
  WalReadResult result;
  std::uint64_t next_lsn = 0;  // 0 = not yet pinned

  const auto stop = [&](std::string reason, std::size_t image_index,
                        std::size_t pos) {
    result.clean = false;
    result.stop_reason = std::move(reason);
    result.dropped_bytes = images[image_index].size() - pos;
    for (std::size_t i = image_index + 1; i < images.size(); ++i) {
      result.dropped_bytes += images[i].size();
    }
  };

  for (std::size_t i = 0; i < images.size(); ++i) {
    const Bytes& image = images[i];
    // An all-lost segment (header never flushed) holds nothing durable;
    // nothing after it can hold anything either.
    if (image.empty()) continue;
    if (image.size() < kSegmentHeaderBytes) {
      stop("torn-segment-header", i, 0);
      return result;
    }
    common::BinaryReader header(
        BytesView(image).subspan(0, kSegmentHeaderBytes));
    const std::uint32_t magic = header.u32();
    header.u32();  // segment seq (informational)
    const std::uint64_t first_lsn = header.u64();
    if (magic != kSegmentMagic) {
      stop("bad-segment-header", i, 0);
      return result;
    }
    if (next_lsn != 0 && first_lsn != next_lsn) {
      stop("segment-gap", i, 0);
      return result;
    }

    std::size_t pos = kSegmentHeaderBytes;
    while (pos < image.size()) {
      const std::size_t remaining = image.size() - pos;
      if (remaining < kFrameHeaderBytes) {
        stop("torn-frame", i, pos);
        return result;
      }
      common::BinaryReader prefix(BytesView(image).subspan(pos, 8));
      const std::uint32_t payload_len = prefix.u32();
      const std::uint32_t stored_crc = prefix.u32();
      if (payload_len > kMaxRecordBytes) {
        stop("bad-frame", i, pos);
        return result;
      }
      if (remaining < kFrameHeaderBytes + payload_len) {
        stop("torn-frame", i, pos);
        return result;
      }
      const BytesView frame_body =
          BytesView(image).subspan(pos + 8, 10 + payload_len);
      if (crc32c(frame_body) != stored_crc) {
        stop("bad-crc", i, pos);
        return result;
      }
      common::BinaryReader body(frame_body.subspan(0, 10));
      WalRecord record;
      record.type = static_cast<RecordType>(body.u16());
      record.lsn = body.u64();
      if (next_lsn == 0) {
        if (record.lsn != first_lsn) {
          stop("lsn-gap", i, pos);
          return result;
        }
      } else if (record.lsn != next_lsn) {
        stop("lsn-gap", i, pos);
        return result;
      }
      record.payload = Bytes(frame_body.begin() + 10, frame_body.end());
      next_lsn = record.lsn + 1;
      result.records.push_back(std::move(record));
      pos += kFrameHeaderBytes + payload_len;
    }
  }
  return result;
}

}  // namespace tpnr::persist
