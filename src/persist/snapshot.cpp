#include "persist/snapshot.h"

#include "common/serial.h"
#include "persist/crc32c.h"

namespace tpnr::persist {

Bytes Snapshotter::encode(const SnapshotState& state) {
  common::BinaryWriter body;
  body.u64(state.wal_lsn);
  body.u32(static_cast<std::uint32_t>(state.ledger.size()));
  for (const audit::AuditEntry& entry : state.ledger) {
    body.bytes(entry.encode_full());
  }
  body.u32(static_cast<std::uint32_t>(state.evidence.size()));
  for (const EvidenceRecord& record : state.evidence) {
    body.bytes(record.encode());
  }
  body.u32(static_cast<std::uint32_t>(state.objects.size()));
  for (const ObjectMeta& meta : state.objects) {
    body.bytes(meta.encode());
  }
  const Bytes body_bytes = body.take();

  common::BinaryWriter image;
  image.u32(kMagic);
  image.u32(kVersion);
  image.u32(static_cast<std::uint32_t>(body_bytes.size()));
  image.u32(crc32c(body_bytes));
  Bytes encoded = image.take();
  common::append(encoded, body_bytes);
  return encoded;
}

std::optional<SnapshotState> Snapshotter::decode(BytesView image) {
  try {
    common::BinaryReader r(image);
    if (r.u32() != kMagic) return std::nullopt;
    if (r.u32() != kVersion) return std::nullopt;
    const std::uint32_t body_len = r.u32();
    const std::uint32_t stored_crc = r.u32();
    if (r.remaining() != body_len) return std::nullopt;  // torn or padded
    const BytesView body = image.subspan(16, body_len);
    if (crc32c(body) != stored_crc) return std::nullopt;

    common::BinaryReader b(body);
    SnapshotState state;
    state.wal_lsn = b.u64();
    const std::uint32_t ledger_count = b.u32();
    state.ledger.reserve(ledger_count);
    for (std::uint32_t i = 0; i < ledger_count; ++i) {
      state.ledger.push_back(audit::AuditEntry::decode_full(b.bytes()));
    }
    const std::uint32_t evidence_count = b.u32();
    state.evidence.reserve(evidence_count);
    for (std::uint32_t i = 0; i < evidence_count; ++i) {
      state.evidence.push_back(EvidenceRecord::decode(b.bytes()));
    }
    const std::uint32_t object_count = b.u32();
    state.objects.reserve(object_count);
    for (std::uint32_t i = 0; i < object_count; ++i) {
      state.objects.push_back(ObjectMeta::decode(b.bytes()));
    }
    b.expect_done();
    return state;
  } catch (const common::SerialError&) {
    return std::nullopt;
  }
}

void Snapshotter::write(const SnapshotState& state) {
  const Bytes image = encode(state);
  // Write-new-then-swap: the old snapshot is replaced only once the new one
  // is durable, so a crash here costs the snapshot attempt, never the
  // previous image.
  auto fresh = std::make_unique<BlockFile>("snapshot", faults_);
  fresh->append(image);
  fresh->flush();
  device_bytes_ += fresh->bytes_written();
  file_ = std::move(fresh);
}

}  // namespace tpnr::persist
