// Crash recovery: rebuild state from snapshot + WAL, then PROVE the rebuilt
// state rather than trusting the media — the recovered AuditLedger must
// re-verify its hash chain (and cover the published head, catching tail
// truncation), and every recovered evidence record is re-checked against
// the signer's public key. The report says exactly what was lost, split
// into committed (must be zero under every-record flushing) and the
// un-flushed suffix the chosen group-commit policy knowingly risked.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "audit/ledger.h"
#include "crypto/rsa.h"
#include "persist/records.h"
#include "persist/snapshot.h"
#include "persist/wal.h"

namespace tpnr::persist {

/// The durable bytes a restarted process finds.
struct DurableImage {
  Bytes snapshot;                     ///< empty = no snapshot device
  std::vector<Bytes> wal_segments;    ///< oldest first
};

/// Collects the post-crash durable state of one machine's devices.
/// `snapshotter` may be null (WAL-only deployments).
DurableImage capture_durable(const Snapshotter* snapshotter, const Wal& wal);

struct RecoveryOptions {
  /// signer id -> public key, to re-verify recovered evidence signatures.
  std::map<std::string, crypto::RsaPublicKey> signer_keys;
  /// AuditLedger head published (countersigned) before the crash; recovery
  /// flags a rebuilt ledger that no longer reaches it (tail truncation).
  std::optional<Bytes> published_ledger_head;
  /// Commit watermark at crash time (Wal::durable_lsn); 0 = unknown.
  std::uint64_t durable_lsn = 0;
  /// Highest LSN ever appended (Wal::last_lsn); 0 = unknown.
  std::uint64_t last_lsn = 0;
};

struct RecoveryReport {
  // Snapshot.
  bool snapshot_present = false;
  bool snapshot_ok = false;
  std::uint64_t snapshot_lsn = 0;
  // WAL scan.
  std::uint64_t wal_records_replayed = 0;
  std::uint64_t last_recovered_lsn = 0;
  bool wal_clean = true;
  std::string wal_stop_reason = "end-of-log";
  std::uint64_t wal_dropped_bytes = 0;
  // Loss accounting (needs durable_lsn / last_lsn in the options).
  std::uint64_t lost_committed = 0;  ///< acknowledged records missing: MUST be 0
  std::uint64_t lost_unflushed = 0;  ///< the un-flushed suffix the policy risked
  // Ledger cross-check.
  std::size_t ledger_entries = 0;
  bool ledger_chain_ok = true;
  std::size_t ledger_first_invalid = 0;   ///< == ledger_entries when intact
  /// False when a published head exists but the rebuilt chain never reaches
  /// it: the durable ledger lost entries an external party already anchored.
  bool ledger_covers_published_head = true;
  // Evidence cross-check.
  std::size_t evidence_total = 0;
  std::size_t evidence_verified = 0;
  std::size_t evidence_failed = 0;        ///< signature no longer verifies
  std::size_t evidence_unverifiable = 0;  ///< no key supplied for the signer
  // Objects.
  std::size_t objects_recovered = 0;

  /// Committed state fully recovered and every cross-check passed.
  [[nodiscard]] bool sound() const noexcept {
    return lost_committed == 0 && ledger_chain_ok &&
           ledger_covers_published_head && evidence_failed == 0;
  }
};

struct RecoveredState {
  audit::AuditLedger ledger;
  std::vector<EvidenceRecord> evidence;
  std::map<std::string, ObjectMeta> objects;  ///< latest version per key
  RecoveryReport report;
};

class Recovery {
 public:
  static RecoveredState replay(const DurableImage& image,
                               const RecoveryOptions& options = {});
};

/// Checkpoint helper: repackages a replayed durable state as the next
/// snapshot image. The canonical compaction loop is
///   replay(capture_durable(...)) -> to_snapshot_state(..., wal.durable_lsn())
///   -> Snapshotter::write -> Wal::truncate_upto(wal_lsn)
/// which checkpoints exactly what is DURABLE (never un-flushed memory).
SnapshotState to_snapshot_state(const RecoveredState& state,
                                std::uint64_t wal_lsn);

}  // namespace tpnr::persist
