#include "persist/crc32c.h"

#include <array>

namespace tpnr::persist {

namespace {

// Reflected Castagnoli polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t crc32c(common::BytesView data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_table();
  std::uint32_t crc = ~seed;
  for (const std::uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace tpnr::persist
