#include "persist/block_file.h"

#include <algorithm>

namespace tpnr::persist {

std::optional<std::size_t> FaultInjector::on_write(std::size_t len) {
  ++writes_;
  if (fired_ || point_.at_write == 0 || writes_ != point_.at_write) {
    return std::nullopt;
  }
  fired_ = true;
  if (point_.torn_prefix >= 0) {
    return std::min<std::size_t>(static_cast<std::size_t>(point_.torn_prefix),
                                 len);
  }
  // Uniform over [0, len]: both the nothing-landed and the fully-landed
  // boundary cases occur.
  return static_cast<std::size_t>(rng_.uniform(len + 1));
}

namespace {

void apply_at(Bytes& target, std::uint64_t offset, BytesView data) {
  const std::size_t end = static_cast<std::size_t>(offset) + data.size();
  if (target.size() < end) target.resize(end, 0);  // gap = unwritten blocks
  std::copy(data.begin(), data.end(),
            target.begin() + static_cast<std::ptrdiff_t>(offset));
}

}  // namespace

void BlockFile::write(std::uint64_t offset, BytesView data) {
  if (crashed_) {
    throw DeviceCrashed("BlockFile " + name_ + ": write after crash");
  }
  if (faults_) {
    if (const auto torn = faults_->on_write(data.size())) {
      // The machine dies applying THIS write: a prefix reaches the media,
      // every other un-flushed write (the volatile view) is lost.
      apply_at(media_, offset, data.subspan(0, *torn));
      view_ = media_;
      crashed_ = true;
      throw DeviceCrashed("BlockFile " + name_ + ": crash at write " +
                          std::to_string(faults_->writes_issued()) +
                          ", torn prefix " + std::to_string(*torn) + "/" +
                          std::to_string(data.size()));
    }
  }
  ++writes_;
  bytes_written_ += data.size();
  apply_at(view_, offset, data);
}

void BlockFile::flush() {
  if (crashed_) {
    throw DeviceCrashed("BlockFile " + name_ + ": flush after crash");
  }
  ++flushes_;
  media_ = view_;
}

Bytes BlockFile::read(std::uint64_t offset, std::size_t n) const {
  if (offset > view_.size()) return {};
  const std::size_t avail = view_.size() - static_cast<std::size_t>(offset);
  const std::size_t take = std::min(n, avail);
  return Bytes(view_.begin() + static_cast<std::ptrdiff_t>(offset),
               view_.begin() + static_cast<std::ptrdiff_t>(offset + take));
}

}  // namespace tpnr::persist
