// CRC32C (Castagnoli) — the checksum framing every WAL record and snapshot
// image. Chosen over the crypto hashes because frame integrity is an
// error-detection problem, not an adversarial one: SHA-256 per 30-byte frame
// would dominate the write path for no security benefit (the tamper-evident
// layer is the hash-chained AuditLedger above).
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace tpnr::persist {

/// CRC32C over `data`. `seed` chains incremental computations: pass the
/// previous return value to extend a running checksum.
std::uint32_t crc32c(common::BytesView data, std::uint32_t seed = 0);

}  // namespace tpnr::persist
