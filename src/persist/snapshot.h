// Snapshot + compaction. A snapshot is one CRC-framed, canonical image of
// everything the journal would otherwise replay — audit ledger entries,
// evidence records, object metadata — stamped with the WAL LSN it covers.
// Writing goes to a FRESH device and the previous snapshot is only replaced
// after a successful flush (write-new-then-swap), so a crash mid-snapshot
// leaves the old image intact; afterwards Wal::truncate_upto(state.wal_lsn)
// retires the covered segments.
//
// Image layout: u32 magic "TNSP" | u32 version | u32 body_len
//             | u32 crc32c(body) | body
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "audit/ledger.h"
#include "persist/block_file.h"
#include "persist/records.h"

namespace tpnr::persist {

/// The consistent image a snapshot serializes.
struct SnapshotState {
  /// Every journal record with lsn <= wal_lsn is folded into this image.
  std::uint64_t wal_lsn = 0;
  std::vector<audit::AuditEntry> ledger;
  std::vector<EvidenceRecord> evidence;
  std::vector<ObjectMeta> objects;
};

class Snapshotter {
 public:
  explicit Snapshotter(std::shared_ptr<FaultInjector> faults = nullptr)
      : faults_(std::move(faults)) {}

  /// Serializes `state` to a fresh device and flushes. On success the new
  /// image replaces the previous one; on DeviceCrashed the previous image
  /// survives (and the exception propagates).
  void write(const SnapshotState& state);

  [[nodiscard]] bool has_snapshot() const noexcept { return file_ != nullptr; }
  /// Durable bytes of the current snapshot (empty when none was ever
  /// completed) — what Recovery::replay reads after a crash.
  [[nodiscard]] Bytes durable_image() const {
    return file_ ? file_->durable_image() : Bytes{};
  }

  [[nodiscard]] std::uint64_t device_bytes() const noexcept {
    return device_bytes_;
  }

  static Bytes encode(const SnapshotState& state);
  /// Validates magic/version/CRC and decodes. nullopt on ANY damage — a
  /// torn or corrupt snapshot is ignored, never partially applied.
  static std::optional<SnapshotState> decode(BytesView image);

  static constexpr std::uint32_t kMagic = 0x50534E54;  // "TNSP"
  static constexpr std::uint32_t kVersion = 1;

 private:
  std::shared_ptr<FaultInjector> faults_;
  std::unique_ptr<BlockFile> file_;
  std::uint64_t device_bytes_ = 0;
};

}  // namespace tpnr::persist
