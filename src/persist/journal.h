// The Journal seam between the protocol/audit/storage layers and the
// durability layer. Actors that hold evidence (nr::ClientActor,
// nr::ProviderActor), the audit::AuditLedger and storage::ObjectStore emit
// their durable facts through this interface; in-memory operation stays the
// default (null journal = no-op), and persist::Wal is the production
// implementation.
//
// This header is intentionally self-contained (no persist link dependency):
// lower layers include it and call through the pointer, only code that
// CREATES a journal links tpnr_persist.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace tpnr::persist {

/// What a journal record carries. Payload encodings live next to their
/// owners: audit::AuditEntry::encode_full, persist::EvidenceRecord,
/// persist::ObjectMeta.
enum class RecordType : std::uint16_t {
  kAuditEntry = 1,   ///< audit::AuditEntry::encode_full
  kEvidence = 2,     ///< persist::EvidenceRecord (NRO/NRR/abort receipts)
  kObjectPut = 3,    ///< persist::ObjectMeta — one accepted object version
  kObjectRemove = 4, ///< str object key
  kObjectMutate = 5, ///< persist::MutationRecord — one chunk-level mutation
  kOpaque = 100,     ///< free-form payload (tests, experiments)
};

/// Append-only durable record sink. Implementations return the record's
/// log sequence number (1-based, strictly increasing); the null
/// implementation returns 0.
class Journal {
 public:
  virtual ~Journal() = default;
  virtual std::uint64_t record(RecordType type, common::BytesView payload) = 0;
};

}  // namespace tpnr::persist
