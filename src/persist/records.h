// Payload encodings for journal records whose owners span layers. These are
// header-only (implicitly inline) on purpose: nr:: and storage:: encode them
// while journaling without linking tpnr_persist; Recovery decodes them.
// All encodings ride on common/serial.h, so the snapshot/WAL round-trip is
// canonical and the truncated-input behaviour is the tested SerialError one.
#pragma once

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/serial.h"
#include "nr/message.h"

namespace tpnr::persist {

/// One unit of non-repudiation evidence as an actor holds it after
/// verification: the signed header plus the two inner signatures from the
/// opened envelope. Enough to re-verify against the signer's public key at
/// recovery time — which is exactly what Recovery::replay does.
struct EvidenceRecord {
  std::string owner;       ///< actor id that holds the evidence
  std::string role;        ///< "nro" | "nrr" | "abort-receipt"
  std::string txn_id;
  std::string signer;      ///< whose signatures the record carries
  std::string object_key;
  std::uint64_t chunk_size = 0;  ///< 0 = flat object
  nr::MessageHeader header;      ///< the header the signatures cover
  common::Bytes data_hash_signature;
  common::Bytes header_signature;

  [[nodiscard]] common::Bytes encode() const {
    common::BinaryWriter w;
    w.str(owner);
    w.str(role);
    w.str(txn_id);
    w.str(signer);
    w.str(object_key);
    w.u64(chunk_size);
    w.bytes(header.encode());
    w.bytes(data_hash_signature);
    w.bytes(header_signature);
    return w.take();
  }

  static EvidenceRecord decode(common::BytesView data) {
    common::BinaryReader r(data);
    EvidenceRecord record;
    record.owner = r.str();
    record.role = r.str();
    record.txn_id = r.str();
    record.signer = r.str();
    record.object_key = r.str();
    record.chunk_size = r.u64();
    record.header = nr::MessageHeader::decode(r.bytes());
    record.data_hash_signature = r.bytes();
    record.header_signature = r.bytes();
    r.expect_done();
    return record;
  }
};

/// Metadata of one accepted object version — what the ObjectStore journals
/// per put (the bytes themselves are the provider's problem; the integrity
/// link recovery needs is the content hash).
struct ObjectMeta {
  std::string key;
  std::uint64_t version = 0;
  common::Bytes stored_md5;
  common::SimTime stored_at = 0;
  std::uint64_t size = 0;
  common::Bytes sha256;

  [[nodiscard]] common::Bytes encode() const {
    common::BinaryWriter w;
    w.str(key);
    w.u64(version);
    w.bytes(stored_md5);
    w.i64(stored_at);
    w.u64(size);
    w.bytes(sha256);
    return w.take();
  }

  static ObjectMeta decode(common::BytesView data) {
    common::BinaryReader r(data);
    ObjectMeta meta;
    meta.key = r.str();
    meta.version = r.u64();
    meta.stored_md5 = r.bytes();
    meta.stored_at = r.i64();
    meta.size = r.u64();
    meta.sha256 = r.bytes();
    r.expect_done();
    return meta;
  }
};

/// One chunk-level mutation of a dynamic object — what the ObjectStore
/// journals per mutate(). `op` carries the dyn::MutateOp value as a raw
/// byte so this header stays linkable without tpnr_dyn; the roots tie the
/// WAL entry to the version chain's (old_root, new_root) transition.
struct MutationRecord {
  std::string key;
  std::uint64_t version = 0;  ///< version AFTER the mutation
  std::uint8_t op = 0;        ///< dyn::MutateOp value
  std::uint64_t chunk_index = 0;
  std::uint64_t chunk_count = 0;  ///< chunk count AFTER the mutation
  common::Bytes old_root;
  common::Bytes new_root;
  common::SimTime stored_at = 0;
  std::uint64_t size = 0;  ///< object bytes after the mutation
  common::Bytes sha256;    ///< content hash after the mutation

  [[nodiscard]] common::Bytes encode() const {
    common::BinaryWriter w;
    w.str(key);
    w.u64(version);
    w.u8(op);
    w.u64(chunk_index);
    w.u64(chunk_count);
    w.bytes(old_root);
    w.bytes(new_root);
    w.i64(stored_at);
    w.u64(size);
    w.bytes(sha256);
    return w.take();
  }

  static MutationRecord decode(common::BytesView data) {
    common::BinaryReader r(data);
    MutationRecord record;
    record.key = r.str();
    record.version = r.u64();
    record.op = r.u8();
    record.chunk_index = r.u64();
    record.chunk_count = r.u64();
    record.old_root = r.bytes();
    record.new_root = r.bytes();
    record.stored_at = r.i64();
    record.size = r.u64();
    record.sha256 = r.bytes();
    r.expect_done();
    return record;
  }
};

}  // namespace tpnr::persist
