// Simulated block device. A BlockFile separates the VOLATILE view (every
// write applied, what a running process reads back) from the DURABLE media
// image (what survives a crash: only flushed writes, plus — for the write in
// flight when the crash fires — a torn prefix). The fault model is injected
// via a FaultInjector shared by every device of one "machine", so a single
// armed CrashPoint counts writes globally across WAL segments and the
// snapshot device, and the seeded crypto::Drbg makes every torn offset
// bit-reproducible.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"
#include "crypto/drbg.h"

namespace tpnr::persist {

using common::Bytes;
using common::BytesView;

/// Thrown when the armed crash point fires, and by every write/flush issued
/// against a device that has already crashed.
class DeviceCrashed : public common::PersistError {
 public:
  using common::PersistError::PersistError;
};

/// Where (and how raggedly) the simulated machine dies.
struct CrashPoint {
  /// 1-based count of device writes across all BlockFiles sharing the
  /// injector; the crash fires as that write is being applied. 0 = disarmed.
  std::uint64_t at_write = 0;
  /// Bytes of the failing write that still reach the media (a torn write).
  /// -1 samples uniformly in [0, write size] from the injector's Drbg.
  std::int64_t torn_prefix = -1;
};

/// Deterministic crash scheduling shared by a set of BlockFiles.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}

  void arm(CrashPoint point) {
    point_ = point;
    fired_ = false;
  }
  void disarm() { point_ = CrashPoint{}; }

  [[nodiscard]] bool fired() const noexcept { return fired_; }
  [[nodiscard]] std::uint64_t writes_issued() const noexcept {
    return writes_;
  }

  /// Accounts one device write of `len` bytes. Returns the torn prefix
  /// length if the crash fires on this write, nullopt otherwise.
  std::optional<std::size_t> on_write(std::size_t len);

 private:
  crypto::Drbg rng_;
  CrashPoint point_;
  std::uint64_t writes_ = 0;
  bool fired_ = false;
};

class BlockFile {
 public:
  explicit BlockFile(std::string name,
                     std::shared_ptr<FaultInjector> faults = nullptr)
      : name_(std::move(name)), faults_(std::move(faults)) {}

  /// Applies `data` at `offset` to the volatile view (zero-filling any gap).
  /// If the shared injector fires, a torn prefix lands on the media, every
  /// other un-flushed write is lost, and DeviceCrashed is thrown.
  void write(std::uint64_t offset, BytesView data);
  void append(BytesView data) { write(size(), data); }

  /// Makes everything written so far durable (fsync). Throws DeviceCrashed
  /// if the device already crashed.
  void flush();

  /// Volatile size/read — what the running process observes.
  [[nodiscard]] std::uint64_t size() const noexcept { return view_.size(); }
  [[nodiscard]] Bytes read(std::uint64_t offset, std::size_t n) const;

  /// The media content as a post-crash reader (Recovery) would find it.
  [[nodiscard]] const Bytes& durable_image() const noexcept { return media_; }

  [[nodiscard]] bool crashed() const noexcept { return crashed_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  // I/O accounting (write amplification = bytes_written vs useful payload).
  [[nodiscard]] std::uint64_t writes() const noexcept { return writes_; }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_written_;
  }
  [[nodiscard]] std::uint64_t flushes() const noexcept { return flushes_; }

 private:
  std::string name_;
  std::shared_ptr<FaultInjector> faults_;
  Bytes media_;  ///< durable: flushed content (+ torn prefix after a crash)
  Bytes view_;   ///< volatile: media + un-flushed writes
  bool crashed_ = false;
  std::uint64_t writes_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t flushes_ = 0;
};

}  // namespace tpnr::persist
