#include "storage/merkle_cache.h"

#include "crypto/counters.h"

namespace tpnr::storage {

std::shared_ptr<const crypto::MerkleTree> MerkleCache::get_or_build(
    const std::string& key, const common::Payload& data,
    std::size_t chunk_size, std::uint64_t version) {
  if (!crypto::accel().merkle_cache) {
    crypto::counters().tree_builds.fetch_add(1, std::memory_order_relaxed);
    return std::make_shared<const crypto::MerkleTree>(data, chunk_size);
  }
  const auto it = entries_.find(key);
  if (it != entries_.end() && it->second.chunk_size == chunk_size &&
      it->second.version == version && it->second.source.aliases(data)) {
    ++hits_;
    crypto::counters().tree_rebuilds_avoided.fetch_add(
        1, std::memory_order_relaxed);
    return it->second.tree;
  }
  ++misses_;
  crypto::counters().tree_builds.fetch_add(1, std::memory_order_relaxed);
  auto tree = std::make_shared<const crypto::MerkleTree>(data, chunk_size);
  if (it == entries_.end() && entries_.size() >= capacity_) {
    entries_.clear();
  }
  entries_[key] = Entry{data, chunk_size, version, tree};
  return tree;
}

void MerkleCache::invalidate(const std::string& key) { entries_.erase(key); }

void MerkleCache::clear() { entries_.clear(); }

}  // namespace tpnr::storage
