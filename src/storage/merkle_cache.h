// MerkleCache: build each object's Merkle tree once and serve every later
// proof from the cached tree. Entries are validated by BUFFER IDENTITY, not
// by key or version: an entry holds a Payload share of the exact bytes the
// tree was built over, and a lookup hits only when the caller's payload
// aliases that same buffer (common::Payload::aliases).
//
// That makes stale service structurally impossible. Every mutation path in
// the store — administrator tamper, fault injection, backend corruption —
// goes through Payload's copy-on-write detach, so changed bytes always live
// in a NEW buffer; the lookup misses and the tree is rebuilt over what the
// caller actually holds. A cached tree can therefore never mask a tamper:
// the cache returns a tree for precisely the bytes passed in, never for the
// bytes the object used to have.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>

#include "common/payload.h"
#include "crypto/merkle.h"

namespace tpnr::storage {

class MerkleCache {
 public:
  /// `capacity`: max cached entries; on overflow the cache drops everything
  /// (objects under audit recur immediately, so a cold restart is cheap).
  explicit MerkleCache(std::size_t capacity = 64) : capacity_(capacity) {}

  /// The tree over `data` with `chunk_size` chunking. Hit: `data` aliases
  /// the cached entry's buffer, the chunking matches AND the object version
  /// matches — entries are keyed on (object, version), so a tree primed
  /// before a mutation can never serve a post-mutation proof even if a
  /// buffer is recycled. Miss: builds, caches under `key` (replacing any
  /// previous entry), returns. With crypto::accel().merkle_cache off every
  /// call builds fresh and nothing is cached.
  std::shared_ptr<const crypto::MerkleTree> get_or_build(
      const std::string& key, const common::Payload& data,
      std::size_t chunk_size, std::uint64_t version = 0);

  /// Drops `key`'s entry (explicit invalidation on tamper/abort; alias
  /// validation already protects correctness, this frees the pinned buffer).
  void invalidate(const std::string& key);

  void clear();

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

 private:
  struct Entry {
    common::Payload source;  ///< pins the buffer the tree was built over
    std::size_t chunk_size = 0;
    std::uint64_t version = 0;  ///< object version the tree was built at
    std::shared_ptr<const crypto::MerkleTree> tree;
  };

  std::map<std::string, Entry> entries_;
  std::size_t capacity_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace tpnr::storage
