#include "storage/object_store.h"

#include "common/error.h"
#include "common/serial.h"
#include "consistency/view_identity.h"
#include "crypto/hash.h"
#include "persist/records.h"

namespace tpnr::storage {

std::string fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kBitFlip:
      return "bit-flip";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kOverwrite:
      return "overwrite";
    case FaultKind::kStaleVersion:
      return "stale-version";
    case FaultKind::kLoss:
      return "loss";
    case FaultKind::kAdminTamper:
      return "admin-tamper";
    case FaultKind::kRollbackAttack:
      return "rollback-attack";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kTornWrite:
      return "torn-write";
    case FaultKind::kEquivocation:
      return "equivocation";
  }
  return "unknown";
}

ObjectStore::ObjectStore(std::unique_ptr<StorageBackend> backend,
                         std::uint64_t fault_seed)
    : backend_(std::move(backend)), fault_rng_(fault_seed) {
  if (!backend_) {
    throw common::StorageError("ObjectStore: null backend");
  }
}

std::uint64_t ObjectStore::put(const std::string& key, common::Payload data,
                               BytesView client_md5, SimTime now) {
  ObjectRecord& record = index_[key];
  if (record.version > 0) {
    history_[key].push_back(record.data);  // share, not a byte copy
  }
  record.data = std::move(data);
  record.stored_md5 = Bytes(client_md5.begin(), client_md5.end());
  record.stored_at = now;
  ++record.version;
  backend_->put(key, record.data);  // backend aliases the same buffer
  if (journal_ != nullptr) {
    persist::ObjectMeta meta;
    meta.key = key;
    meta.version = record.version;
    meta.stored_md5 = record.stored_md5;
    meta.stored_at = now;
    meta.size = record.data.size();
    meta.sha256 = crypto::sha256(record.data);
    journal_->record(persist::RecordType::kObjectPut, meta.encode());
  }
  return record.version;
}

std::uint64_t ObjectStore::mutate(const std::string& key, common::Payload data,
                                  BytesView client_md5, SimTime now,
                                  const MutationInfo& info) {
  const auto it = index_.find(key);
  if (it == index_.end()) return 0;
  ObjectRecord& record = it->second;
  if (stale_mutations_armed_ > 0) {
    // kStaleVersion-on-mutation: acknowledge the bump the caller will put
    // in its receipt, but commit nothing — reads keep serving the old
    // version under its old number.
    --stale_mutations_armed_;
    log_fault(key, FaultKind::kStaleVersion, record.version);
    return record.version + 1;
  }
  history_[key].push_back(record.data);  // share, not a byte copy
  record.data = std::move(data);
  record.stored_md5 = Bytes(client_md5.begin(), client_md5.end());
  record.stored_at = now;
  ++record.version;
  backend_->put(key, record.data);
  if (journal_ != nullptr) {
    persist::MutationRecord mutation;
    mutation.key = key;
    mutation.version = record.version;
    mutation.op = info.op;
    mutation.chunk_index = info.chunk_index;
    mutation.chunk_count = info.chunk_count;
    mutation.old_root = info.old_root;
    mutation.new_root = info.new_root;
    mutation.stored_at = now;
    mutation.size = record.data.size();
    mutation.sha256 = crypto::sha256(record.data);
    journal_->record(persist::RecordType::kObjectMutate, mutation.encode());
  }
  return record.version;
}

std::uint64_t ObjectStore::version_of(const std::string& key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? 0 : it->second.version;
}

bool ObjectStore::rollback_attack(const std::string& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  const auto hist = history_.find(key);
  if (hist == history_.end() || hist->second.empty()) return false;
  // Version number deliberately untouched: the provider keeps CLAIMING the
  // current version while serving yesterday's bytes — the revert only the
  // version chain's root comparison can expose.
  it->second.data = hist->second.back();
  backend_->put(key, it->second.data);
  log_fault(key, FaultKind::kRollbackAttack, it->second.version);
  return true;
}

std::optional<ObjectRecord> ObjectStore::get(const std::string& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  // Serve from the backend so out-of-band backend corruption is visible.
  auto raw = backend_->get(key);
  if (!raw) return std::nullopt;
  // Build the served record field by field: the data comes from the backend
  // (so out-of-band backend corruption is visible) and is a share of the
  // stored buffer, not a copy.
  ObjectRecord record;
  record.stored_md5 = it->second.stored_md5;
  record.version = it->second.version;
  record.stored_at = it->second.stored_at;
  record.metadata = it->second.metadata;
  record.data = std::move(*raw);
  apply_fault(key, record);
  if (record.version == 0) return std::nullopt;  // kLoss marker
  return record;
}

bool ObjectStore::arm_equivocation(
    const std::string& key, const std::map<std::string, ClientView>& views) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  // Replace any previous arming wholesale: the fork's branches evolve and
  // each re-arm is the new per-client truth.
  disarm_equivocation(key);
  equivocating_keys_.insert(key);
  for (const auto& [client, view] : views) {
    equivocation_views_[consistency::view_key(key, client)] = view;
    // A view matching the real current state is not a divergence — only
    // clients actually lied to get a fault event.
    if (view.version != it->second.version ||
        !(it->second.data == view.data)) {
      log_fault(key, FaultKind::kEquivocation, view.version);
    }
  }
  return true;
}

void ObjectStore::disarm_equivocation(const std::string& key) {
  if (equivocating_keys_.erase(key) == 0) return;
  // view_key(key, client) == key + '#' + client: erase the contiguous range.
  const auto first = equivocation_views_.lower_bound(key + "#");
  auto last = first;
  while (last != equivocation_views_.end() &&
         last->first.compare(0, key.size() + 1, key + "#") == 0) {
    ++last;
  }
  equivocation_views_.erase(first, last);
}

bool ObjectStore::equivocation_armed(const std::string& key) const {
  return equivocating_keys_.contains(key);
}

std::optional<ObjectRecord> ObjectStore::get_as(const std::string& key,
                                                const std::string& client) {
  if (equivocation_armed(key)) {
    const auto it = equivocation_views_.find(consistency::view_key(key, client));
    if (it != equivocation_views_.end()) {
      ObjectRecord record;
      record.version = it->second.version;
      record.data = common::Payload::copy_of(it->second.data);
      record.stored_md5 = crypto::md5(it->second.data);
      const auto idx = index_.find(key);
      record.stored_at = idx != index_.end() ? idx->second.stored_at : 0;
      return record;
    }
  }
  return get(key);
}

std::vector<FaultEvent> ObjectStore::fault_log_for(
    const std::string& key) const {
  std::vector<FaultEvent> events;
  for (const FaultEvent& event : fault_log_) {
    if (event.key == key) events.push_back(event);
  }
  return events;
}

void ObjectStore::log_fault(const std::string& key, FaultKind kind,
                            std::uint64_t version) {
  ++faults_injected_;
  FaultEvent event;
  event.key = key;
  event.kind = kind;
  event.version = version;
  event.at = clock_ != nullptr ? clock_->now() : 0;
  fault_log_.push_back(std::move(event));
}

void ObjectStore::apply_fault(const std::string& key, ObjectRecord& record) {
  if (policy_.kind == FaultKind::kNone ||
      !fault_rng_.chance(policy_.probability)) {
    return;
  }
  log_fault(key, policy_.kind, record.version);
  switch (policy_.kind) {
    case FaultKind::kNone:
    case FaultKind::kAdminTamper:     // never produced by a policy
    case FaultKind::kRollbackAttack:  // explicit rollback_attack() only
    case FaultKind::kCrash:           // logged by the persistence harness
    case FaultKind::kTornWrite:
      break;
    case FaultKind::kBitFlip: {
      if (record.data.empty()) break;
      const std::size_t pos = static_cast<std::size_t>(
          fault_rng_.uniform(record.data.size()));
      const auto mask =
          static_cast<std::uint8_t>(1u << fault_rng_.uniform(8));
      // mutate() detaches the served record from the stored buffer first:
      // the fault corrupts what the reader sees, not the store's copy.
      record.data.mutate()[pos] ^= mask;
      break;
    }
    case FaultKind::kTruncate: {
      if (record.data.size() < 2) break;
      record.data.mutate().resize(record.data.size() / 2);
      break;
    }
    case FaultKind::kOverwrite: {
      if (record.data.empty()) break;
      const std::size_t start = static_cast<std::size_t>(
          fault_rng_.uniform(record.data.size()));
      const std::size_t len = std::min<std::size_t>(
          record.data.size() - start, 16);
      const Bytes junk = fault_rng_.bytes(len);
      Bytes& bytes = record.data.mutate();
      std::copy(junk.begin(), junk.end(),
                bytes.begin() + static_cast<std::ptrdiff_t>(start));
      break;
    }
    case FaultKind::kStaleVersion: {
      const auto hist = history_.find(key);
      if (hist != history_.end() && !hist->second.empty()) {
        record.data = hist->second.back();
      }
      break;
    }
    case FaultKind::kLoss: {
      record.version = 0;  // sentinel consumed by get()
      break;
    }
  }
}

bool ObjectStore::tamper(const std::string& key, BytesView new_data) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  // Deliberately leave stored_md5, version, metadata untouched: the
  // administrator rewrites bytes behind the bookkeeping's back. The fault
  // log still records it — the log belongs to the experiment harness, not
  // to the provider's (fooled) bookkeeping.
  it->second.data = common::Payload::copy_of(new_data);
  backend_->put(key, it->second.data);  // share the tampered buffer
  log_fault(key, FaultKind::kAdminTamper, it->second.version);
  return true;
}

bool ObjectStore::remove(const std::string& key) {
  history_.erase(key);
  const bool had_index = index_.erase(key) > 0;
  const bool had_bytes = backend_->remove(key);
  if (journal_ != nullptr && (had_index || had_bytes)) {
    common::BinaryWriter w;
    w.str(key);
    journal_->record(persist::RecordType::kObjectRemove, w.data());
  }
  return had_index || had_bytes;
}

bool ObjectStore::exists(const std::string& key) const {
  return index_.contains(key);
}

std::vector<std::string> ObjectStore::list() const {
  std::vector<std::string> keys;
  keys.reserve(index_.size());
  for (const auto& [key, record] : index_) keys.push_back(key);
  return keys;
}

}  // namespace tpnr::storage
