// Storage backends: the raw byte-keeping layer underneath the provider
// simulations. Memory- and disk-backed implementations share one interface
// so tests run in memory and examples can persist.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/payload.h"

namespace tpnr::storage {

using common::Bytes;
using common::BytesView;

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Stores (replaces) the object bytes at `key`. The backend shares the
  /// payload's buffer; callers keep aliasing it for free.
  virtual void put(const std::string& key, common::Payload data) = 0;
  /// Returns the stored payload (a share for in-memory backends — no byte
  /// copy), or nullopt if absent.
  [[nodiscard]] virtual std::optional<common::Payload> get(
      const std::string& key) const = 0;
  /// Removes the object; returns false if it did not exist.
  virtual bool remove(const std::string& key) = 0;
  [[nodiscard]] virtual bool exists(const std::string& key) const = 0;
  /// All keys in lexicographic order.
  [[nodiscard]] virtual std::vector<std::string> list() const = 0;
  /// Number of stored objects.
  [[nodiscard]] virtual std::size_t size() const = 0;

  // Out-of-band mutation used by fault injection: modifies stored bytes
  // WITHOUT any bookkeeping, modeling silent at-rest corruption or a
  // malicious administrator. Returns false if the key is absent.
  virtual bool corrupt(const std::string& key, std::size_t offset,
                       std::uint8_t xor_mask) = 0;
};

/// std::map-backed store.
class MemoryBackend final : public StorageBackend {
 public:
  void put(const std::string& key, common::Payload data) override;
  [[nodiscard]] std::optional<common::Payload> get(
      const std::string& key) const override;
  bool remove(const std::string& key) override;
  [[nodiscard]] bool exists(const std::string& key) const override;
  [[nodiscard]] std::vector<std::string> list() const override;
  [[nodiscard]] std::size_t size() const override;
  bool corrupt(const std::string& key, std::size_t offset,
               std::uint8_t xor_mask) override;

 private:
  std::map<std::string, common::Payload> objects_;
};

/// Filesystem-backed store rooted at a directory; keys are hex-encoded into
/// file names so arbitrary key strings are safe.
class DiskBackend final : public StorageBackend {
 public:
  /// Creates the directory if needed. Throws StorageError on I/O failure.
  explicit DiskBackend(std::string root);

  void put(const std::string& key, common::Payload data) override;
  [[nodiscard]] std::optional<common::Payload> get(
      const std::string& key) const override;
  bool remove(const std::string& key) override;
  [[nodiscard]] bool exists(const std::string& key) const override;
  [[nodiscard]] std::vector<std::string> list() const override;
  [[nodiscard]] std::size_t size() const override;
  bool corrupt(const std::string& key, std::size_t offset,
               std::uint8_t xor_mask) override;

 private:
  [[nodiscard]] std::string path_for(const std::string& key) const;
  std::string root_;
};

}  // namespace tpnr::storage
