// ObjectStore: the provider-visible storage layer — versioned objects with
// metadata and per-upload checksums — plus the FaultInjector that models
// Fig. 5's threat: data silently changing INSIDE the store, between the
// (individually secure) upload and download sessions.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "crypto/drbg.h"
#include "persist/journal.h"
#include "storage/backend.h"

namespace tpnr::storage {

using common::SimTime;

/// Everything the provider records about one object. `data` is a COW
/// common::Payload: the index, the backend, and records handed to readers
/// all alias one buffer until somebody (a fault injector) mutates it.
struct ObjectRecord {
  common::Payload data;
  Bytes stored_md5;        ///< MD5 recorded at upload time (Azure keeps this)
  std::uint64_t version = 0;
  SimTime stored_at = 0;
  std::map<std::string, std::string> metadata;
};

/// What can silently go wrong at rest.
enum class FaultKind {
  kNone,
  kBitFlip,        ///< one random byte XORed
  kTruncate,       ///< object loses its tail
  kOverwrite,      ///< a range replaced with attacker bytes
  kStaleVersion,   ///< reads serve a previous version (rollback)
  kLoss,           ///< object disappears
  kAdminTamper,    ///< explicit tamper() by "the administrator" (Eve)
  kRollbackAttack, ///< silent revert to an older committed version, version
                   ///< number left claiming currency (rollback_attack())
  // Persistence faults (src/persist/): logged via log_external_fault by the
  // crash/recovery harness so durability losses land in the same per-key
  // log the audit report reads.
  kCrash,          ///< object (or its latest version) lost to a crash
  kTornWrite,      ///< a torn device write damaged the object's durable state
  kEquivocation,   ///< per-client divergent serving armed (fork attack)
};

std::string fault_kind_name(FaultKind kind);

/// One observed fault, recorded when it is injected. Detection latency for
/// an auditor is (time the audit flags the key) − (`at` of the injection).
struct FaultEvent {
  std::string key;
  FaultKind kind = FaultKind::kNone;
  std::uint64_t version = 0;  ///< version the fault was applied against
  SimTime at = 0;             ///< injection time (0 if no clock is bound)
};

/// Deterministic fault injection driven by a seeded Drbg. `probability`
/// applies independently per read.
struct FaultPolicy {
  FaultKind kind = FaultKind::kNone;
  double probability = 0.0;
};

/// One client's divergent view of an equivocating object: what the store
/// serves THAT client while other clients see other (version, bytes) pairs.
struct ClientView {
  std::uint64_t version = 0;
  Bytes data;
};

/// Descriptor of one chunk-level mutation, journalled with the new version
/// (persist::MutationRecord). `op` carries the dyn::MutateOp value as a raw
/// byte so storage stays independent of tpnr_dyn.
struct MutationInfo {
  std::uint8_t op = 0;
  std::uint64_t chunk_index = 0;
  std::uint64_t chunk_count = 0;  ///< chunk count AFTER the mutation
  Bytes old_root;
  Bytes new_root;
};

class ObjectStore {
 public:
  explicit ObjectStore(std::unique_ptr<StorageBackend> backend,
                       std::uint64_t fault_seed = 7);

  /// Stores a new version; records the MD5 the client supplied (the Azure
  /// behaviour) and returns the assigned version.
  std::uint64_t put(const std::string& key, common::Payload data,
                    BytesView client_md5, SimTime now);

  /// In-place mutation of an EXISTING object: archives the previous payload,
  /// bumps the version and journals a persist::MutationRecord. Returns the
  /// acknowledged version, or 0 if the key does not exist.
  ///
  /// If arm_stale_mutations() is pending, the mutation is ACKNOWLEDGED (the
  /// returned version is the bump the caller expects) but never applied —
  /// the kStaleVersion-on-mutation fault: reads keep serving the old version
  /// under its old version number, which the version chain exposes.
  std::uint64_t mutate(const std::string& key, common::Payload data,
                       BytesView client_md5, SimTime now,
                       const MutationInfo& info);

  /// Current committed version of `key` (0 if absent).
  [[nodiscard]] std::uint64_t version_of(const std::string& key) const;

  /// The next `count` mutate() calls are acknowledged but silently dropped
  /// (kStaleVersion logged per drop).
  void arm_stale_mutations(std::uint64_t count = 1) noexcept {
    stale_mutations_armed_ += count;
  }

  /// The rollback attack: silently restores the newest ARCHIVED payload as
  /// the current bytes while leaving the version number claiming currency.
  /// Returns false if the key has no archived history. Logs kRollbackAttack.
  bool rollback_attack(const std::string& key);

  /// Plain read (fault injection applies).
  [[nodiscard]] std::optional<ObjectRecord> get(const std::string& key);

  /// THE EQUIVOCATION FAULT: from now on, reads through get_as() serve each
  /// client in `views` its own (version, bytes) pair instead of the real
  /// object. Re-arming replaces the previous views (the fork evolves).
  /// Logs one kEquivocation event per divergent client view through the
  /// per-key fault log. Returns false if the key does not exist.
  bool arm_equivocation(const std::string& key,
                        const std::map<std::string, ClientView>& views);
  /// Drops the per-client views; get_as() falls back to get().
  void disarm_equivocation(const std::string& key);
  [[nodiscard]] bool equivocation_armed(const std::string& key) const;

  /// The read path a consistency-layer provider serves `client` from: the
  /// client's armed divergent view when the object is equivocating,
  /// otherwise a plain get(). Policy faults do not stack on armed views —
  /// the equivocation IS the fault.
  [[nodiscard]] std::optional<ObjectRecord> get_as(const std::string& key,
                                                   const std::string& client);

  /// Direct tamper by "the administrator" (the paper's Eve): replaces the
  /// object bytes without touching stored_md5 or version — exactly the
  /// silent-modification the upload/download integrity checks miss.
  bool tamper(const std::string& key, BytesView new_data);

  bool remove(const std::string& key);
  [[nodiscard]] bool exists(const std::string& key) const;
  [[nodiscard]] std::vector<std::string> list() const;

  void set_fault_policy(FaultPolicy policy) { policy_ = policy; }
  [[nodiscard]] const FaultPolicy& fault_policy() const noexcept {
    return policy_;
  }
  /// Number of faults actually injected so far.
  [[nodiscard]] std::uint64_t faults_injected() const noexcept {
    return faults_injected_;
  }

  /// Binds the simulation clock so fault events carry injection times.
  /// The store does not own the clock; nullptr unbinds.
  void bind_clock(const common::SimClock* clock) noexcept { clock_ = clock; }

  /// Every fault injected so far (policy faults and tamper() calls), in
  /// injection order.
  [[nodiscard]] const std::vector<FaultEvent>& fault_log() const noexcept {
    return fault_log_;
  }
  /// The injections that hit `key`.
  [[nodiscard]] std::vector<FaultEvent> fault_log_for(
      const std::string& key) const;

  /// Records a fault observed OUTSIDE the read path — the crash/recovery
  /// harness logs kCrash/kTornWrite here so persistence losses show up in
  /// the same per-key log audit reports consume.
  void log_external_fault(const std::string& key, FaultKind kind,
                          std::uint64_t version = 0) {
    log_fault(key, kind, version);
  }

  /// Journals accepted object versions (persist::ObjectMeta per put) through
  /// the durability seam. nullptr (the default) keeps the store memory-only.
  void bind_journal(persist::Journal* journal) noexcept {
    journal_ = journal;
  }

 private:
  void apply_fault(const std::string& key, ObjectRecord& record);
  void log_fault(const std::string& key, FaultKind kind,
                 std::uint64_t version);

  std::unique_ptr<StorageBackend> backend_;
  std::map<std::string, ObjectRecord> index_;          // metadata + current
  std::map<std::string, std::vector<common::Payload>> history_;  // kStaleVersion
  /// Armed divergent views, keyed consistency::view_key(key, client) — the
  /// shared "same object, different view" identity convention.
  std::map<std::string, ClientView> equivocation_views_;
  std::set<std::string> equivocating_keys_;
  FaultPolicy policy_;
  crypto::Drbg fault_rng_;
  std::uint64_t faults_injected_ = 0;
  std::uint64_t stale_mutations_armed_ = 0;
  const common::SimClock* clock_ = nullptr;
  std::vector<FaultEvent> fault_log_;
  persist::Journal* journal_ = nullptr;
};

}  // namespace tpnr::storage
