#include "storage/backend.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/error.h"

namespace tpnr::storage {

namespace fs = std::filesystem;

void MemoryBackend::put(const std::string& key, common::Payload data) {
  objects_[key] = std::move(data);
}

std::optional<common::Payload> MemoryBackend::get(
    const std::string& key) const {
  const auto it = objects_.find(key);
  if (it == objects_.end()) return std::nullopt;
  return it->second;
}

bool MemoryBackend::remove(const std::string& key) {
  return objects_.erase(key) > 0;
}

bool MemoryBackend::exists(const std::string& key) const {
  return objects_.contains(key);
}

std::vector<std::string> MemoryBackend::list() const {
  std::vector<std::string> keys;
  keys.reserve(objects_.size());
  for (const auto& [key, value] : objects_) keys.push_back(key);
  return keys;
}

std::size_t MemoryBackend::size() const { return objects_.size(); }

bool MemoryBackend::corrupt(const std::string& key, std::size_t offset,
                            std::uint8_t xor_mask) {
  const auto it = objects_.find(key);
  if (it == objects_.end() || it->second.empty()) return false;
  // mutate() detaches from any outstanding shares first: corruption hits the
  // STORED copy, exactly like the old by-value behaviour.
  Bytes& bytes = it->second.mutate();
  bytes[offset % bytes.size()] ^= xor_mask;
  return true;
}

DiskBackend::DiskBackend(std::string root) : root_(std::move(root)) {
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec) {
    throw common::StorageError("DiskBackend: cannot create root " + root_ +
                               ": " + ec.message());
  }
}

std::string DiskBackend::path_for(const std::string& key) const {
  return root_ + "/" +
         common::to_hex(common::to_bytes(key)) + ".obj";
}

void DiskBackend::put(const std::string& key, common::Payload data) {
  std::ofstream out(path_for(key), std::ios::binary | std::ios::trunc);
  if (!out) throw common::StorageError("DiskBackend: cannot open for write");
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw common::StorageError("DiskBackend: write failed");
}

std::optional<common::Payload> DiskBackend::get(const std::string& key) const {
  std::ifstream in(path_for(key), std::ios::binary | std::ios::ate);
  if (!in) return std::nullopt;
  const std::streamsize size = in.tellg();
  in.seekg(0);
  Bytes data(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()), size);
  if (!in) throw common::StorageError("DiskBackend: read failed");
  return common::Payload(std::move(data));
}

bool DiskBackend::remove(const std::string& key) {
  std::error_code ec;
  return fs::remove(path_for(key), ec) && !ec;
}

bool DiskBackend::exists(const std::string& key) const {
  std::error_code ec;
  return fs::exists(path_for(key), ec);
}

std::vector<std::string> DiskBackend::list() const {
  std::vector<std::string> keys;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.ends_with(".obj")) {
      keys.push_back(
          common::to_string(common::from_hex(name.substr(0, name.size() - 4))));
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::size_t DiskBackend::size() const { return list().size(); }

bool DiskBackend::corrupt(const std::string& key, std::size_t offset,
                          std::uint8_t xor_mask) {
  auto data = get(key);
  if (!data || data->empty()) return false;
  Bytes& bytes = data->mutate();
  bytes[offset % bytes.size()] ^= xor_mask;
  put(key, std::move(*data));
  return true;
}

}  // namespace tpnr::storage
