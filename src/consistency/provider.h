// The shared-object provider — one provider, N clients, ONE promised
// global operation order per object (until it decides to equivocate).
//
// Every committed operation is (a) countersigned as a SignedVersionRecord,
// exactly like the dynamic-data layer, and (b) bound into the object's
// ViewHistory by a provider-signed ViewCommitment naming the submitting
// client and the head it observed. Commits are broadcast to every client
// of the object, so each participant's mirror advances through the same
// totally ordered log.
//
// The equivocation attack is a first-class provider mode: fork_object()
// splits an object's state into per-victim-group branches that evolve
// independently — each branch keeps countersigning perfectly valid
// records and commitments, which is exactly what makes the attack
// invisible to any single client and provable the moment two clients
// compare notes. The per-client divergence is mirrored into the
// ObjectStore through arm_equivocation(), so the storage layer's fault
// log records the attack alongside every other at-rest fault.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "consistency/op_log.h"
#include "consistency/view_history.h"
#include "dyn/dyn_merkle.h"
#include "dyn/version_chain.h"
#include "nr/actor.h"
#include "storage/object_store.h"

namespace tpnr::consistency {

/// Misbehaviour dials for the shared-object provider.
struct ConsProviderBehavior {
  bool send_commits = true;          ///< false: commits are withheld
  bool respond_to_view_query = true; ///< false: joins/resyncs go unanswered
};

class ConsProviderActor final : public nr::NrActor {
 public:
  /// One branch of an object's history. Honest objects have exactly one;
  /// fork_object() clones more.
  struct Branch {
    dyn::VersionChain chain;
    ViewHistory views;
    std::vector<CommittedOp> log;
    std::vector<Bytes> chunks;  ///< committed mirror of this branch
    dyn::DynMerkleTree tree;
  };

  /// Provider-side state of one shared object.
  struct SharedObjectState {
    std::string txn_id;   ///< the creating store's txn (commit fan-out key)
    std::string creator;
    std::size_t chunk_size = 0;
    std::vector<std::string> participants;        ///< registration order
    std::map<std::string, std::size_t> branch_of; ///< client -> branch index
    std::vector<Branch> branches;                 ///< [0] is the main branch
  };

  ConsProviderActor(std::string id, net::Network& network,
                    pki::Identity& identity, crypto::Drbg& rng);

  void set_behavior(ConsProviderBehavior behavior) { behavior_ = behavior; }
  [[nodiscard]] const ConsProviderBehavior& behavior() const noexcept {
    return behavior_;
  }

  /// THE EQUIVOCATION ATTACK: split `object_key`'s state into
  /// `branch_count` identical branches and serve each client the branch
  /// `assignment` maps it to (unmapped clients stay on branch 0). From now
  /// on each branch's history evolves independently — same global
  /// positions, different provider-signed contents. Also arms the object
  /// store's per-client divergent serving. Returns false on an unknown
  /// object, branch_count < 2, or an out-of-range assignment.
  bool fork_object(const std::string& object_key,
                   const std::map<std::string, std::size_t>& assignment,
                   std::size_t branch_count = 2);
  [[nodiscard]] bool forked(const std::string& object_key) const;

  [[nodiscard]] storage::ObjectStore& store() noexcept { return store_; }
  [[nodiscard]] const SharedObjectState* object_state(
      const std::string& object_key) const;

  /// Receipts (commits) re-issued for retried requests without re-applying.
  [[nodiscard]] std::uint64_t receipts_resent() const noexcept {
    return receipts_resent_;
  }
  /// Operations rejected with kConsOpError (stale views included).
  [[nodiscard]] std::uint64_t ops_rejected() const noexcept {
    return ops_rejected_;
  }
  /// Commits fanned out (one per participant per committed op).
  [[nodiscard]] std::uint64_t commits_sent() const noexcept {
    return commits_sent_;
  }

 protected:
  void on_message(const nr::NrMessage& message) override;

 private:
  void handle_op_request(const nr::NrMessage& message);
  void handle_view_query(const nr::NrMessage& message);

  /// Validates a well-formed next-version record against `branch`'s mirror,
  /// applies it, and verifies the claimed new_root. Returns false (mirror
  /// untouched) with an explanation otherwise.
  bool apply_op(Branch& branch, std::size_t chunk_size,
                const dyn::VersionRecord& record, BytesView chunk,
                std::string* why);

  /// Countersigns and commits a validated op onto `branch`, updates the
  /// store (main branch: real write; forked: re-armed equivocation views),
  /// and fans the commit out to the branch's clients.
  void commit_op(const std::string& object_key, SharedObjectState& state,
                 std::size_t branch_index, const std::string& submitter,
                 dyn::SignedVersionRecord record, Bytes op_bytes);

  /// The log entries a client on `observed_head` is missing (the catch-up
  /// suffix a stale-view error carries).
  [[nodiscard]] std::span<const CommittedOp> suffix_from(
      const Branch& branch, const Bytes& observed_head) const;

  void send_commit(const std::string& client, const std::string& txn_id,
                   const std::string& object_key, std::size_t chunk_size,
                   const CommittedOp& op);
  void send_op_error(const std::string& client, const std::string& txn_id,
                     const std::string& object_key, std::uint64_t version,
                     const std::string& reason,
                     std::span<const CommittedOp> suffix);

  /// Pushes every branch's current (version, bytes) into the store's
  /// per-client equivocation views.
  void sync_store_views(const std::string& object_key,
                        const SharedObjectState& state);

  ConsProviderBehavior behavior_;
  storage::ObjectStore store_;
  std::map<std::string, SharedObjectState> objects_;  ///< by object key
  std::uint64_t receipts_resent_ = 0;
  std::uint64_t ops_rejected_ = 0;
  std::uint64_t commits_sent_ = 0;
};

}  // namespace tpnr::consistency
