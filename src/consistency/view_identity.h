// The single source of truth for "same object, seen through a different
// view" identity.
//
// Several layers need to keep per-view state for ONE logical object without
// the views colliding or evicting each other: the static provider's
// MerkleCache keeps the honest current-bytes tree next to the equivocation
// snapshot it serves stale proofs from, the ObjectStore indexes per-client
// divergent views armed by arm_equivocation(), and the fork-consistency
// provider keeps one branch of history per victim group. All of them key
// that state with view_key() so the identity convention lives in exactly
// one place — an object's primary view is the bare key; every other view
// hangs off it as "<key>#<label>".
//
// Header-only on purpose: lower layers (tpnr_storage, tpnr_nr) use it
// without linking tpnr_consistency.
#pragma once

#include <string>
#include <string_view>

namespace tpnr::consistency {

/// The label of an object's primary (honest, canonical) view.
inline constexpr std::string_view kPrimaryView = "";

/// The label the static provider files its pre-tamper equivocation
/// snapshot under (the tree it keeps serving audit proofs from while the
/// stored bytes have silently changed).
inline constexpr std::string_view kEquivocationSnapshotView = "orig";

/// Canonical identity of `object_key` seen through `view`. The primary
/// view maps to the bare object key, so existing single-view state keeps
/// its keys; any other view gets the unambiguous "<key>#<view>" form.
inline std::string view_key(const std::string& object_key,
                            std::string_view view = kPrimaryView) {
  if (view.empty()) return object_key;
  std::string key;
  key.reserve(object_key.size() + 1 + view.size());
  key.append(object_key);
  key.push_back('#');
  key.append(view);
  return key;
}

}  // namespace tpnr::consistency
