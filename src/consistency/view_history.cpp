#include "consistency/view_history.h"

#include <cstddef>
#include <utility>
#include <vector>

#include "common/serial.h"
#include "crypto/hash.h"
#include "crypto/rsa.h"
#include "pki/identity.h"

namespace tpnr::consistency {

namespace {

bool fail(std::string* why, const char* reason) {
  if (why != nullptr) *why = reason;
  return false;
}

}  // namespace

Bytes ViewCommitment::encode() const {
  common::BinaryWriter w;
  w.str("tpnr.cons.view.v1");  // domain separation from other signed blobs
  w.str(object_key);
  w.u64(global_seq);
  w.str(client);
  w.bytes(op_record_hash);
  w.u64(head_version);
  w.bytes(head_root);
  w.bytes(observed_head);
  w.bytes(prev_commit_hash);
  return w.take();
}

ViewCommitment ViewCommitment::decode(BytesView data) {
  common::BinaryReader r(data);
  if (r.str() != "tpnr.cons.view.v1") {
    throw common::SerialError("ViewCommitment: bad magic");
  }
  ViewCommitment v;
  v.object_key = r.str();
  v.global_seq = r.u64();
  v.client = r.str();
  v.op_record_hash = r.bytes();
  v.head_version = r.u64();
  v.head_root = r.bytes();
  v.observed_head = r.bytes();
  v.prev_commit_hash = r.bytes();
  r.expect_done();
  return v;
}

Bytes ViewCommitment::hash() const { return crypto::sha256(encode()); }

const Bytes& ViewCommitment::genesis_link() {
  static const Bytes zero(32, 0);
  return zero;
}

Bytes SignedViewCommitment::encode() const {
  common::BinaryWriter w;
  w.bytes(view.encode());
  w.bytes(provider_sig);
  return w.take();
}

SignedViewCommitment SignedViewCommitment::decode(BytesView data) {
  common::BinaryReader r(data);
  SignedViewCommitment signed_commit;
  signed_commit.view = ViewCommitment::decode(r.bytes());
  signed_commit.provider_sig = r.bytes();
  r.expect_done();
  return signed_commit;
}

bool SignedViewCommitment::verify(const crypto::RsaPublicKey& provider) const {
  return pki::Identity::verify(provider, view.encode(), provider_sig);
}

Bytes EquivocationProof::encode() const {
  common::BinaryWriter w;
  w.str("tpnr.cons.equiv.v1");
  w.str(object_key);
  w.bytes(a.encode());
  w.bytes(b.encode());
  return w.take();
}

EquivocationProof EquivocationProof::decode(BytesView data) {
  common::BinaryReader r(data);
  if (r.str() != "tpnr.cons.equiv.v1") {
    throw common::SerialError("EquivocationProof: bad magic");
  }
  EquivocationProof proof;
  proof.object_key = r.str();
  proof.a = SignedViewCommitment::decode(r.bytes());
  proof.b = SignedViewCommitment::decode(r.bytes());
  r.expect_done();
  return proof;
}

bool EquivocationProof::valid(const crypto::RsaPublicKey& provider,
                              std::string* why) const {
  if (a.view.object_key != object_key || b.view.object_key != object_key) {
    return fail(why, "commitments name a different object");
  }
  if (a.view.global_seq != b.view.global_seq) {
    return fail(why, "commitments claim different positions");
  }
  if (a.view.encode() == b.view.encode()) {
    return fail(why, "commitments are identical (no conflict)");
  }
  // Both signatures are under the provider's key: one rsa_verify_many
  // group shares the key's Montgomery context (and the verify memo).
  const Bytes message_a = a.view.encode();
  const Bytes message_b = b.view.encode();
  const std::vector<crypto::RsaVerifyItem> items = {
      {crypto::HashKind::kSha256, BytesView(message_a),
       BytesView(a.provider_sig)},
      {crypto::HashKind::kSha256, BytesView(message_b),
       BytesView(b.provider_sig)},
  };
  const std::vector<bool> ok = crypto::rsa_verify_many(provider, items);
  if (!ok[0]) {
    return fail(why, "provider signature fails on commitment A");
  }
  if (!ok[1]) {
    return fail(why, "provider signature fails on commitment B");
  }
  return true;
}

std::string EquivocationProof::describe() const {
  return "object '" + object_key + "' position " +
         std::to_string(a.view.global_seq) + ": provider signed '" +
         a.view.client + "' op (v" + std::to_string(a.view.head_version) +
         ") AND '" + b.view.client + "' op (v" +
         std::to_string(b.view.head_version) + ") as the same history slot";
}

bool ViewHistory::append(SignedViewCommitment commit, std::string* why) {
  const ViewCommitment& v = commit.view;
  if (v.global_seq != head_seq() + 1) {
    return fail(why, "global_seq does not extend the head");
  }
  if (!commitments_.empty() &&
      v.object_key != commitments_.front().view.object_key) {
    return fail(why, "object key differs from the history's");
  }
  if (v.prev_commit_hash != head_hash()) {
    return fail(why, "prev_commit_hash does not link to the head");
  }
  // The fork-join rule: a commitment is only valid if the submitter's
  // declared head WAS the head it got committed on top of. A provider that
  // commits an op whose observed head belongs to another branch signs the
  // cross-branch link that later convicts it.
  if (v.observed_head != v.prev_commit_hash) {
    return fail(why, "observed_head disagrees with prev_commit_hash");
  }
  commitments_.push_back(std::move(commit));
  return true;
}

std::uint64_t ViewHistory::head_seq() const noexcept {
  return commitments_.empty() ? 0 : commitments_.back().view.global_seq;
}

Bytes ViewHistory::head_hash() const {
  return commitments_.empty() ? ViewCommitment::genesis_link()
                              : commitments_.back().view.hash();
}

const SignedViewCommitment* ViewHistory::at(std::uint64_t global_seq) const {
  if (global_seq == 0 || global_seq > commitments_.size()) return nullptr;
  return &commitments_[global_seq - 1];
}

std::string view_walk_status_name(ViewWalkStatus status) {
  switch (status) {
    case ViewWalkStatus::kValid: return "valid";
    case ViewWalkStatus::kEmpty: return "empty";
    case ViewWalkStatus::kBrokenLink: return "broken-link";
    case ViewWalkStatus::kBadSignature: return "bad-signature";
  }
  return "unknown";
}

ViewWalkResult walk_view(std::span<const SignedViewCommitment> commits,
                         const crypto::RsaPublicKey& provider_key) {
  ViewWalkResult result;
  if (commits.empty()) return result;

  // Structural pass first: replay the hash links up to the first break.
  // Every linked commitment's signature then runs as ONE rsa_verify_many
  // group under the provider key's shared Montgomery context. The verdict
  // is the earliest failure of either kind in original walk order — a
  // signature failure before the break preempts the break, exactly as the
  // per-commit walk reported it.
  ViewHistory replay;
  std::string why;
  std::size_t linked = commits.size();  // commits that extend the chain
  for (std::size_t i = 0; i < commits.size(); ++i) {
    if (!replay.append(commits[i], &why)) {
      linked = i;
      break;
    }
  }
  std::vector<Bytes> messages(linked);
  std::vector<crypto::RsaVerifyItem> items(linked);
  for (std::size_t i = 0; i < linked; ++i) {
    messages[i] = commits[i].view.encode();
    items[i] = {crypto::HashKind::kSha256, BytesView(messages[i]),
                BytesView(commits[i].provider_sig)};
  }
  const std::vector<bool> ok = crypto::rsa_verify_many(provider_key, items);
  for (std::size_t i = 0; i < linked; ++i) {
    if (!ok[i]) {
      result.status = ViewWalkStatus::kBadSignature;
      result.at_seq = commits[i].view.global_seq;
      result.detail = "provider signature fails at position " +
                      std::to_string(commits[i].view.global_seq);
      return result;
    }
  }
  if (linked < commits.size()) {
    result.status = ViewWalkStatus::kBrokenLink;
    result.at_seq = commits[linked].view.global_seq;
    result.detail = why;
    return result;
  }
  result.status = ViewWalkStatus::kValid;
  return result;
}

}  // namespace tpnr::consistency
