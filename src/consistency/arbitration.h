// Multi-party TTP arbitration for fork-consistency disputes — the §2.4
// decision table extended to the case where the two parties disagreeing
// are CLIENTS and the accused is the provider.
//
// The asymmetry the table encodes: an EquivocationProof is self-certifying
// (two provider signatures over incompatible histories), so it convicts
// the provider no matter which client presents it or why; every weaker
// claim — "my peer gossiped me a view that doesn't match mine" — only
// escalates, because a lying accuser could fabricate exactly that story.
// The TTP trusts signatures, never testimony. Like nr::arbitrate and
// dyn::resolve_dyn_dispute, this is a pure function of the evidence: no
// network, no clock, deterministic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "consistency/view_history.h"

namespace tpnr::consistency {

/// Everything the parties put in front of the TTP.
struct ForkDisputeCase {
  std::string object_key;
  crypto::RsaPublicKey provider_key;

  /// A ready-made proof, if the accuser holds one.
  std::optional<EquivocationProof> proof;

  /// The accuser's witnessed view (may be empty when a proof is supplied).
  std::vector<SignedViewCommitment> accuser_view;
  /// The view the OTHER party (the defending client, or the provider
  /// itself) presents. Empty when nobody answered the TTP's query.
  std::vector<SignedViewCommitment> counter_view;
};

/// The rows of the extended decision table.
enum class ForkRulingKind : std::uint8_t {
  /// A valid EquivocationProof — presented, or synthesized by the TTP from
  /// two conflicting valid views. The provider signed both histories.
  kProviderConvicted = 1,
  /// The presented evidence fails verification (forged proof, or an
  /// accuser view whose signatures/links do not hold). The claim dies; the
  /// accuser convicts nobody with bad evidence.
  kClaimRejected = 2,
  /// Both presented views verify and one is a prefix of the other: the
  /// histories agree, there is no fork. Zero false accusations by
  /// construction — consistent views can never convict.
  kViewsConsistent = 3,
  /// The accusation cannot be decided on the evidence (valid accuser view
  /// but no counter-view and no proof): the TTP escalates — queries the
  /// provider, widens the gossip — rather than convicting on testimony.
  kEscalate = 4,
};
std::string fork_ruling_name(ForkRulingKind kind);

struct ForkRuling {
  ForkRulingKind kind = ForkRulingKind::kEscalate;
  std::string rationale;
  /// Set when kind == kProviderConvicted: the proof that did it (the
  /// presented one, or the one the TTP synthesized from the two views).
  std::optional<EquivocationProof> proof;
};

/// Walks the evidence through the decision table. Deterministic; same
/// case, same ruling.
ForkRuling resolve_fork_dispute(const ForkDisputeCase& dispute);

}  // namespace tpnr::consistency
