// The replayable unit of shared-object history: one committed operation,
// carrying everything a late-joining (or lagging) client needs to advance
// its mirror by exactly one step and to fork-check the step it advanced by.
//
// DynMerkleTree shapes are history-dependent (an insert/erase leaves a
// different structure than a canonical rebuild over the same bytes), so a
// client cannot reconstruct the provider's tree from the current bytes —
// it must replay the operations from genesis, verifying each record's
// new_root as it goes. kViewUpdate and the kConsOpError catch-up suffix
// are therefore logs of CommittedOps, not snapshots.
#pragma once

#include <span>
#include <vector>

#include "common/serial.h"
#include "consistency/view_history.h"
#include "dyn/version_chain.h"

namespace tpnr::consistency {

/// One globally ordered, committed operation on a shared object.
struct CommittedOp {
  dyn::SignedVersionRecord record;  ///< client-signed, provider-countersigned
  SignedViewCommitment commit;      ///< the provider's global-order promise
  Bytes op_bytes;  ///< chunk payload (full object for kStore, empty for erase)

  [[nodiscard]] Bytes encode() const;
  /// Throws common::SerialError on malformed input.
  static CommittedOp decode(BytesView data);
};

/// Appends `log` to `w` as a u32-counted sequence of encoded entries.
void write_op_log(common::BinaryWriter& w, std::span<const CommittedOp> log);
/// Reads a u32-counted sequence written by write_op_log. Throws
/// common::SerialError on malformed input.
std::vector<CommittedOp> read_op_log(common::BinaryReader& r);

}  // namespace tpnr::consistency
