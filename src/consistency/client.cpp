#include "consistency/client.h"

#include <utility>

#include "common/error.h"
#include "common/serial.h"
#include "crypto/hash.h"
#include "nr/evidence.h"

namespace tpnr::consistency {

using dyn::MutateOp;
using dyn::VersionRecord;

ConsClientActor::ConsClientActor(std::string id, net::Network& network,
                                 pki::Identity& identity, crypto::Drbg& rng,
                                 ConsClientOptions options)
    : NrActor(std::move(id), network, identity, rng),
      options_(options),
      txn_ids_(rng.next_u64()) {}

const ConsClientActor::SharedObject* ConsClientActor::object(
    const std::string& object_key) const {
  const auto it = objects_.find(object_key);
  return it == objects_.end() ? nullptr : &it->second;
}

const EquivocationProof* ConsClientActor::fork_proof(
    const std::string& object_key) const {
  const SharedObject* obj = object(object_key);
  if (obj == nullptr || !obj->checker || !obj->checker->proof()) {
    return nullptr;
  }
  return &*obj->checker->proof();
}

ConsClientActor::SharedObject* ConsClientActor::mutable_object(
    const std::string& object_key) {
  const auto it = objects_.find(object_key);
  return it == objects_.end() ? nullptr : &it->second;
}

std::string ConsClientActor::store_shared(const std::string& provider,
                                          const std::string& ttp,
                                          const std::string& object_key,
                                          BytesView data,
                                          std::size_t chunk_size) {
  const crypto::RsaPublicKey* provider_key = peer_key(provider);
  if (provider_key == nullptr) {
    throw common::ProtocolError(
        "ConsClientActor::store_shared: provider key unknown");
  }
  if (chunk_size == 0) {
    throw common::ProtocolError(
        "ConsClientActor::store_shared: chunk_size must be > 0");
  }
  if (data.empty()) {
    throw common::ProtocolError("ConsClientActor::store_shared: empty object");
  }
  if (objects_.count(object_key) != 0) {
    throw common::ProtocolError(
        "ConsClientActor::store_shared: object already tracked");
  }

  SharedObject obj;
  obj.provider = provider;
  obj.ttp = ttp;
  obj.object_key = object_key;
  obj.txn_id = txn_ids_.next_id("cons");
  obj.chunk_size = chunk_size;
  obj.checker.emplace(object_key, *provider_key);

  // The record commits to the post-store mirror, but the mirror itself
  // stays empty until the provider's commit comes back — the consistency
  // client is never optimistic.
  const std::vector<Bytes> chunks = dyn::split_chunks(data, chunk_size);
  const dyn::DynMerkleTree tree =
      dyn::DynMerkleTree::build(dyn::chunk_views(chunks));
  VersionRecord record;
  record.object_key = object_key;
  record.version = 1;
  record.op = MutateOp::kStore;
  record.chunk_index = 0;
  record.chunk_count = tree.leaf_count();
  record.old_root = dyn::DynMerkleTree::empty_root();
  record.new_root = tree.root();
  record.chunk_tag = 0;
  record.prev_record_hash = VersionRecord::genesis_link();

  SharedObject::PendingOp pending;
  pending.op = MutateOp::kStore;
  pending.chunk = Bytes(data.begin(), data.end());
  pending.client_sig = identity_->sign(record.encode());
  pending.record = std::move(record);
  obj.pending = std::move(pending);

  const std::string txn_id = obj.txn_id;
  objects_.emplace(object_key, std::move(obj));
  transmit_pending(object_key);
  return txn_id;
}

bool ConsClientActor::open_shared(const std::string& provider,
                                  const std::string& ttp,
                                  const std::string& object_key) {
  const crypto::RsaPublicKey* provider_key = peer_key(provider);
  if (provider_key == nullptr || objects_.count(object_key) != 0) {
    return false;
  }
  SharedObject obj;
  obj.provider = provider;
  obj.ttp = ttp;
  obj.object_key = object_key;
  obj.txn_id = txn_ids_.next_id("cons");
  obj.checker.emplace(object_key, *provider_key);
  auto it = objects_.emplace(object_key, std::move(obj)).first;
  request_view(it->second);
  return true;
}

void ConsClientActor::request_view(SharedObject& obj) {
  const crypto::RsaPublicKey* provider_key = peer_key(obj.provider);
  if (provider_key == nullptr) return;
  nr::MessageHeader header =
      next_header(nr::MsgType::kViewQuery, obj.provider, obj.ttp, obj.txn_id,
                  Bytes{}, network_->now() + options_.reply_window);
  Bytes evidence = nr::make_evidence(*identity_, *provider_key, header, *rng_);

  common::BinaryWriter payload;
  payload.str(obj.object_key);

  nr::NrMessage message;
  message.header = std::move(header);
  message.payload = payload.take();
  message.evidence = std::move(evidence);
  send(obj.provider, std::move(message));
}

bool ConsClientActor::update(const std::string& object_key,
                             std::uint64_t index, BytesView chunk) {
  SharedObject* obj = mutable_object(object_key);
  return obj != nullptr && begin_op(*obj, MutateOp::kUpdate, index, chunk);
}

bool ConsClientActor::insert(const std::string& object_key,
                             std::uint64_t index, BytesView chunk) {
  SharedObject* obj = mutable_object(object_key);
  return obj != nullptr && begin_op(*obj, MutateOp::kInsert, index, chunk);
}

bool ConsClientActor::append_chunk(const std::string& object_key,
                                   BytesView chunk) {
  SharedObject* obj = mutable_object(object_key);
  return obj != nullptr &&
         begin_op(*obj, MutateOp::kAppend, obj->tree.leaf_count(), chunk);
}

bool ConsClientActor::erase(const std::string& object_key,
                            std::uint64_t index) {
  SharedObject* obj = mutable_object(object_key);
  return obj != nullptr && begin_op(*obj, MutateOp::kErase, index, BytesView{});
}

bool ConsClientActor::begin_op(SharedObject& obj, MutateOp op,
                               std::uint64_t index, BytesView chunk) {
  if (!obj.opened || obj.pending) return false;
  SharedObject::PendingOp pending;
  pending.op = op;
  pending.index = index;
  pending.chunk = Bytes(chunk.begin(), chunk.end());
  obj.pending = std::move(pending);
  if (!build_pending_record(obj)) {
    obj.pending.reset();
    return false;
  }
  transmit_pending(obj.object_key);
  return true;
}

bool ConsClientActor::build_pending_record(SharedObject& obj) {
  SharedObject::PendingOp& pending = *obj.pending;
  if (pending.op == MutateOp::kStore) return false;  // store never rebuilds
  const std::uint64_t count = obj.tree.leaf_count();
  const bool inserting =
      pending.op == MutateOp::kInsert || pending.op == MutateOp::kAppend;
  if (pending.op == MutateOp::kAppend) pending.index = count;
  const std::uint64_t index = pending.index;
  if (inserting ? index > count : index >= count) return false;
  if (pending.op == MutateOp::kErase) {
    if (!pending.chunk.empty()) return false;
  } else {
    if (pending.chunk.empty() || pending.chunk.size() > obj.chunk_size) {
      return false;
    }
    const bool at_tail = inserting ? index == count : index + 1 == count;
    if (!at_tail && pending.chunk.size() != obj.chunk_size) return false;
  }
  if (inserting && index == count && count > 0 &&
      obj.chunks[count - 1].size() != obj.chunk_size) {
    return false;  // appending after a short tail would break the stride
  }

  // Compute the post-op root on a scratch copy; the real mirror only moves
  // when the provider's commit comes back.
  dyn::DynMerkleTree scratch = obj.tree.clone();
  switch (pending.op) {
    case MutateOp::kUpdate:
      scratch.update(index, pending.chunk);
      break;
    case MutateOp::kInsert:
    case MutateOp::kAppend:
      scratch.insert(index, pending.chunk);
      break;
    case MutateOp::kErase:
      scratch.erase(index);
      break;
    case MutateOp::kStore:
      return false;
  }

  VersionRecord record;
  record.object_key = obj.object_key;
  record.version = obj.chain.head_version() + 1;
  record.op = pending.op;
  record.chunk_index = index;
  record.chunk_count = scratch.leaf_count();
  record.old_root = obj.chain.head_root();
  record.new_root = scratch.root();
  record.chunk_tag = 0;
  record.prev_record_hash = obj.chain.head_hash();
  pending.client_sig = identity_->sign(record.encode());
  pending.record = std::move(record);
  pending.attempts = 0;
  return true;
}

void ConsClientActor::transmit_pending(const std::string& object_key) {
  SharedObject* obj = mutable_object(object_key);
  if (obj == nullptr || !obj->pending) return;
  const crypto::RsaPublicKey* provider_key = peer_key(obj->provider);
  if (provider_key == nullptr) return;
  SharedObject::PendingOp& pending = *obj->pending;

  // The declared observed head: the commitment under which the base
  // version was committed. The provider refuses to commit an op whose
  // observed head is not ITS head — the fork-join rule.
  Bytes observed = ViewCommitment::genesis_link();
  if (const SignedViewCommitment* at =
          obj->checker->view().at(obj->chain.head_version())) {
    observed = at->view.hash();
  }

  nr::MessageHeader header = next_header(
      nr::MsgType::kConsOpRequest, obj->provider, obj->ttp, obj->txn_id,
      pending.record.new_root, network_->now() + options_.reply_window);
  Bytes evidence = nr::make_evidence(*identity_, *provider_key, header, *rng_);
  ++pending.attempts;

  common::BinaryWriter payload;
  payload.str(obj->object_key);
  payload.u8(static_cast<std::uint8_t>(pending.record.op));
  payload.u64(pending.record.chunk_index);
  payload.bytes(pending.chunk);
  payload.u32(static_cast<std::uint32_t>(obj->chunk_size));
  payload.bytes(pending.record.encode());
  payload.bytes(pending.client_sig);
  payload.bytes(observed);

  nr::NrMessage message;
  message.header = std::move(header);
  message.payload = payload.take();
  message.evidence = std::move(evidence);
  send(obj->provider, std::move(message));
  arm_receipt_timer(object_key, pending.record.version, pending.attempts);
}

void ConsClientActor::arm_receipt_timer(const std::string& object_key,
                                        std::uint64_t version,
                                        std::size_t attempt) {
  const common::SimTime wait =
      options_.receipt_timeout +
      options_.retry_backoff * static_cast<common::SimTime>(attempt - 1);
  network_->schedule(wait, [this, object_key, version, attempt] {
    SharedObject* obj = mutable_object(object_key);
    // Guard on version AND attempt: a timer firing after the commit landed
    // (or after a superseding re-send) must do nothing.
    if (obj == nullptr || !obj->pending ||
        obj->pending->record.version != version ||
        obj->pending->attempts != attempt) {
      return;
    }
    if (attempt <= options_.op_retries) {
      transmit_pending(object_key);
      return;
    }
    ++obj->timeouts;
    if (obj->pending->op == MutateOp::kStore) {
      objects_.erase(object_key);  // version 1 never committed
      return;
    }
    obj->pending.reset();
  });
}

void ConsClientActor::on_message(const nr::NrMessage& message) {
  switch (message.header.flag) {
    case nr::MsgType::kConsCommit:
      handle_commit(message);
      break;
    case nr::MsgType::kViewUpdate:
      handle_view_update(message);
      break;
    case nr::MsgType::kConsOpError:
      handle_op_error(message);
      break;
    case nr::MsgType::kGossipViews:
      handle_gossip(message);
      break;
    default:
      break;
  }
}

bool ConsClientActor::advance_mirror(SharedObject& obj,
                                     const CommittedOp& op) {
  const VersionRecord& rec = op.record.record;
  const ViewCommitment& view = op.commit.view;
  // Bind the record to the commitment it rode in on, then check the
  // provider's countersignature (the commitment's own signature was
  // already checked by the fork checker).
  if (crypto::sha256(op.record.encode()) != view.op_record_hash ||
      rec.version != view.head_version || rec.new_root != view.head_root) {
    ++obj.rejected;
    return false;
  }
  const crypto::RsaPublicKey* provider_key = peer_key(obj.provider);
  if (provider_key == nullptr ||
      !op.record.verify_provider(*provider_key)) {
    ++obj.rejected;
    return false;
  }
  // When the submitting client's key is known, its signature must hold
  // too; unknown co-clients are covered by the provider's promise alone.
  if (const crypto::RsaPublicKey* client_key = peer_key(view.client);
      client_key != nullptr && !op.record.verify_client(*client_key)) {
    ++obj.rejected;
    return false;
  }
  std::string why;
  dyn::VersionChain chain_probe = obj.chain;  // append validates links
  if (!chain_probe.append(op.record, &why)) {
    ++obj.rejected;
    return false;
  }

  // Apply on scratch state so a record that misdescribes its op (a
  // byzantine provider) leaves the mirror untouched.
  std::vector<Bytes> chunks = obj.chunks;
  dyn::DynMerkleTree tree = obj.tree.clone();
  if (rec.op == MutateOp::kStore) {
    chunks = dyn::split_chunks(op.op_bytes, obj.chunk_size);
    tree = dyn::DynMerkleTree::build(dyn::chunk_views(chunks));
  } else {
    const auto at = static_cast<std::ptrdiff_t>(rec.chunk_index);
    if (rec.op == MutateOp::kErase
            ? rec.chunk_index >= tree.leaf_count()
            : rec.chunk_index > tree.leaf_count()) {
      ++obj.rejected;
      return false;
    }
    switch (rec.op) {
      case MutateOp::kUpdate:
        if (rec.chunk_index >= tree.leaf_count()) {
          ++obj.rejected;
          return false;
        }
        tree.update(rec.chunk_index, op.op_bytes);
        chunks[rec.chunk_index] = op.op_bytes;
        break;
      case MutateOp::kInsert:
      case MutateOp::kAppend:
        tree.insert(rec.chunk_index, op.op_bytes);
        chunks.insert(chunks.begin() + at, op.op_bytes);
        break;
      case MutateOp::kErase:
        tree.erase(rec.chunk_index);
        chunks.erase(chunks.begin() + at);
        break;
      case MutateOp::kStore:
        break;
    }
  }
  if (tree.root() != rec.new_root || tree.leaf_count() != rec.chunk_count) {
    ++obj.rejected;
    return false;
  }
  obj.chunks = std::move(chunks);
  obj.tree = std::move(tree);
  obj.chain = std::move(chain_probe);
  ++obj.commits_applied;
  obj.opened = true;
  return true;
}

bool ConsClientActor::absorb_committed_op(SharedObject& obj,
                                          const CommittedOp& op) {
  const ObserveOutcome outcome = obj.checker->observe(op.commit);
  switch (outcome) {
    case ObserveOutcome::kRejected:
      ++stats_.rejected_bad_evidence;
      return false;
    case ObserveOutcome::kConflict:
      maybe_report_fork(obj);
      return true;
    case ObserveOutcome::kGap:
    case ObserveOutcome::kUnlinked:
      request_view(obj);
      return true;
    case ObserveOutcome::kExtended:
    case ObserveOutcome::kDuplicate:
      break;
  }
  const std::uint64_t next = obj.chain.head_version() + 1;
  if (op.record.record.version == next) {
    if (!advance_mirror(obj, op)) return false;
  } else if (op.record.record.version < next) {
    ++obj.duplicate_commits;
  }
  // Our own submission coming back committed IS the receipt.
  if (obj.pending && op.commit.view.client == id() &&
      op.record.record.version == obj.pending->record.version &&
      op.record.record.encode() == obj.pending->record.encode()) {
    ++obj.receipts;
    obj.pending.reset();
  }
  return true;
}

void ConsClientActor::handle_commit(const nr::NrMessage& message) {
  const nr::MessageHeader& h = message.header;
  std::string object_key;
  std::uint32_t chunk_size = 0;
  CommittedOp op;
  try {
    common::BinaryReader r(message.payload);
    object_key = r.str();
    chunk_size = r.u32();
    op = CommittedOp::decode(r.bytes());
    r.expect_done();
  } catch (const common::SerialError&) {
    ++stats_.rejected_bad_hash;
    return;
  }
  SharedObject* obj = mutable_object(object_key);
  if (obj == nullptr || h.sender != obj->provider) return;
  if (op.commit.view.object_key != object_key) {
    ++stats_.rejected_bad_hash;
    return;
  }
  if (obj->chunk_size == 0) obj->chunk_size = chunk_size;
  absorb_committed_op(*obj, op);
}

void ConsClientActor::handle_view_update(const nr::NrMessage& message) {
  const nr::MessageHeader& h = message.header;
  std::string object_key;
  std::uint32_t chunk_size = 0;
  std::vector<CommittedOp> log;
  try {
    common::BinaryReader r(message.payload);
    object_key = r.str();
    chunk_size = r.u32();
    log = read_op_log(r);
    r.expect_done();
  } catch (const common::SerialError&) {
    ++stats_.rejected_bad_hash;
    return;
  }
  SharedObject* obj = mutable_object(object_key);
  if (obj == nullptr || h.sender != obj->provider) return;
  if (obj->chunk_size == 0) {
    obj->chunk_size = chunk_size;
  } else if (obj->chunk_size != chunk_size) {
    ++stats_.rejected_bad_hash;
    return;
  }
  for (const CommittedOp& op : log) absorb_committed_op(*obj, op);
}

void ConsClientActor::handle_op_error(const nr::NrMessage& message) {
  const nr::MessageHeader& h = message.header;
  std::string object_key;
  std::uint64_t version = 0;
  std::string reason;
  std::vector<CommittedOp> suffix;
  try {
    common::BinaryReader r(message.payload);
    object_key = r.str();
    version = r.u64();
    reason = r.str();
    suffix = read_op_log(r);
    r.expect_done();
  } catch (const common::SerialError&) {
    ++stats_.rejected_bad_hash;
    return;
  }
  SharedObject* obj = mutable_object(object_key);
  if (obj == nullptr || h.sender != obj->provider) return;

  // First catch up on whatever the provider says we missed; the suffix is
  // made of full CommittedOps, so the mirror advances (and the checker
  // fork-checks) exactly as if the commits had arrived live.
  for (const CommittedOp& op : suffix) absorb_committed_op(*obj, op);

  if (!obj->pending || obj->pending->record.version != version) return;
  SharedObject::PendingOp& pending = *obj->pending;
  if (pending.op == MutateOp::kStore) {
    // A bounced store is permanent (the key exists, or the record was
    // malformed): there is no head to rebuild against.
    ++obj->rejected;
    objects_.erase(object_key);
    return;
  }
  ++pending.resubmits;
  if (pending.resubmits > options_.max_resubmits ||
      !build_pending_record(*obj)) {
    ++obj->rejected;
    obj->pending.reset();
    return;
  }
  ++obj->stale_resubmits;
  transmit_pending(object_key);
}

void ConsClientActor::handle_gossip(const nr::NrMessage& message) {
  std::string object_key;
  std::vector<SignedViewCommitment> commits;
  try {
    common::BinaryReader r(message.payload);
    object_key = r.str();
    const std::uint32_t count = r.u32();
    commits.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      commits.push_back(SignedViewCommitment::decode(r.bytes()));
    }
    r.expect_done();
  } catch (const common::SerialError&) {
    ++stats_.rejected_bad_hash;
    return;
  }
  SharedObject* obj = mutable_object(object_key);
  if (obj == nullptr) return;  // not our object: nothing to compare against
  const ObserveOutcome outcome = obj->checker->merge(commits);
  switch (outcome) {
    case ObserveOutcome::kConflict:
      maybe_report_fork(*obj);
      break;
    case ObserveOutcome::kGap:
    case ObserveOutcome::kUnlinked:
      // A peer knows commitments we cannot link — packet loss or worse.
      // Re-sync with the provider; never accuse on a gap.
      request_view(*obj);
      break;
    default:
      break;
  }
}

void ConsClientActor::maybe_report_fork(SharedObject& obj) {
  if (!obj.checker->forked() || obj.fork_reported) return;
  obj.fork_reported = true;
  ++forks_detected_;
  if (!gossip_ || gossip_->arbiter.empty()) return;
  const crypto::RsaPublicKey* arbiter_key = peer_key(gossip_->arbiter);
  if (arbiter_key == nullptr) return;
  const EquivocationProof& proof = *obj.checker->proof();
  const Bytes proof_bytes = proof.encode();

  nr::MessageHeader header = next_header(
      nr::MsgType::kForkReport, gossip_->arbiter, obj.ttp, obj.txn_id,
      crypto::sha256(proof_bytes), network_->now() + options_.reply_window);
  Bytes evidence = nr::make_evidence(*identity_, *arbiter_key, header, *rng_);

  common::BinaryWriter payload;
  payload.str(obj.provider);
  payload.str(obj.object_key);
  payload.str(obj.txn_id);
  payload.bytes(proof_bytes);

  nr::NrMessage message;
  message.header = std::move(header);
  message.payload = payload.take();
  message.evidence = std::move(evidence);
  send(gossip_->arbiter, std::move(message));
}

void ConsClientActor::enable_gossip(GossipOptions options) {
  gossip_ = std::move(options);
  if (gossip_->rounds == 0 || gossip_timer_armed_) return;
  gossip_timer_armed_ = true;
  network_->schedule(gossip_->period, [this] { gossip_tick(); });
}

void ConsClientActor::add_gossip_peer(const std::string& peer_id) {
  for (const std::string& peer : gossip_peers_) {
    if (peer == peer_id) return;
  }
  gossip_peers_.push_back(peer_id);
}

void ConsClientActor::gossip_now() {
  ++gossip_rounds_;
  for (auto& [object_key, obj] : objects_) {
    if (!obj.checker || obj.checker->view().empty()) continue;
    const auto& commits = obj.checker->view().commitments();
    for (const std::string& peer : gossip_peers_) {
      const crypto::RsaPublicKey* peer_pub = peer_key(peer);
      if (peer_pub == nullptr) continue;
      // Full witnessed view, not a bounded tail: detection must not hinge
      // on the victim being within a window of the speaker (histories in
      // these experiments are short; see docs/PROTOCOL.md).
      nr::MessageHeader header = next_header(
          nr::MsgType::kGossipViews, peer, /*ttp=*/"",
          "gossip|" + id() + "|" + object_key, obj.checker->view().head_hash(),
          network_->now() + options_.reply_window);
      Bytes evidence = nr::make_evidence(*identity_, *peer_pub, header, *rng_);

      common::BinaryWriter payload;
      payload.str(object_key);
      payload.u32(static_cast<std::uint32_t>(commits.size()));
      for (const SignedViewCommitment& commit : commits) {
        payload.bytes(commit.encode());
      }

      nr::NrMessage message;
      message.header = std::move(header);
      message.payload = payload.take();
      message.evidence = std::move(evidence);
      send_on_topic(peer, "cons.gossip", std::move(message));
    }
  }
}

void ConsClientActor::gossip_tick() {
  if (!gossip_ || gossip_->rounds == 0) {
    gossip_timer_armed_ = false;
    return;
  }
  --gossip_->rounds;
  gossip_now();
  if (gossip_->rounds == 0) {
    gossip_timer_armed_ = false;
    return;
  }
  network_->schedule(gossip_->period, [this] { gossip_tick(); });
}

}  // namespace tpnr::consistency
