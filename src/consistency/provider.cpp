#include "consistency/provider.h"

#include <utility>

#include "common/serial.h"
#include "crypto/hash.h"
#include "nr/evidence.h"
#include "storage/backend.h"

namespace tpnr::consistency {

using dyn::MutateOp;
using dyn::VersionRecord;

namespace {

constexpr common::SimTime kReplyWindow = 30 * common::kSecond;

bool fail(std::string* why, std::string reason) {
  if (why != nullptr) *why = std::move(reason);
  return false;
}

common::Bytes concat_chunks(const std::vector<common::Bytes>& chunks) {
  common::Bytes out;
  std::size_t total = 0;
  for (const auto& chunk : chunks) total += chunk.size();
  out.reserve(total);
  for (const auto& chunk : chunks) {
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  return out;
}

ConsProviderActor::Branch clone_branch(const ConsProviderActor::Branch& b) {
  ConsProviderActor::Branch c;
  c.chain = b.chain;
  c.views = b.views;
  c.log = b.log;
  c.chunks = b.chunks;
  c.tree = b.tree.clone();
  return c;
}

}  // namespace

ConsProviderActor::ConsProviderActor(std::string id, net::Network& network,
                                     pki::Identity& identity,
                                     crypto::Drbg& rng)
    : NrActor(std::move(id), network, identity, rng),
      store_(std::make_unique<storage::MemoryBackend>()) {
  store_.bind_clock(&network.clock());
}

const ConsProviderActor::SharedObjectState* ConsProviderActor::object_state(
    const std::string& object_key) const {
  const auto it = objects_.find(object_key);
  return it == objects_.end() ? nullptr : &it->second;
}

bool ConsProviderActor::forked(const std::string& object_key) const {
  const SharedObjectState* state = object_state(object_key);
  return state != nullptr && state->branches.size() > 1;
}

bool ConsProviderActor::fork_object(
    const std::string& object_key,
    const std::map<std::string, std::size_t>& assignment,
    std::size_t branch_count) {
  const auto it = objects_.find(object_key);
  if (it == objects_.end() || branch_count < 2) return false;
  SharedObjectState& state = it->second;
  if (state.branches.size() != 1) return false;  // already forked
  for (const auto& [client, branch] : assignment) {
    if (branch >= branch_count) return false;
  }
  state.branches.reserve(branch_count);
  for (std::size_t i = 1; i < branch_count; ++i) {
    state.branches.push_back(clone_branch(state.branches.front()));
  }
  for (const auto& [client, branch] : assignment) {
    state.branch_of[client] = branch;
  }
  // Mirror the fork into the storage layer from the first moment: every
  // client now has a per-client view, logged as a kEquivocation fault.
  sync_store_views(object_key, state);
  return true;
}

void ConsProviderActor::sync_store_views(const std::string& object_key,
                                         const SharedObjectState& state) {
  std::map<std::string, storage::ClientView> views;
  for (const std::string& client : state.participants) {
    const auto branch_it = state.branch_of.find(client);
    const std::size_t branch_index =
        branch_it == state.branch_of.end() ? 0 : branch_it->second;
    const Branch& branch = state.branches[branch_index];
    storage::ClientView view;
    view.version = branch.chain.head_version();
    view.data = concat_chunks(branch.chunks);
    views.emplace(client, std::move(view));
  }
  store_.arm_equivocation(object_key, std::move(views));
}

void ConsProviderActor::on_message(const nr::NrMessage& message) {
  switch (message.header.flag) {
    case nr::MsgType::kConsOpRequest:
      handle_op_request(message);
      break;
    case nr::MsgType::kViewQuery:
      handle_view_query(message);
      break;
    default:
      break;
  }
}

bool ConsProviderActor::apply_op(Branch& branch, std::size_t chunk_size,
                                 const VersionRecord& record, BytesView chunk,
                                 std::string* why) {
  const std::uint64_t count = branch.tree.leaf_count();
  const std::uint64_t index = record.chunk_index;
  const bool inserting =
      record.op == MutateOp::kInsert || record.op == MutateOp::kAppend;
  const bool erasing = record.op == MutateOp::kErase;
  if (record.op == MutateOp::kStore) {
    return fail(why, "store op on an existing object");
  }
  if (inserting ? index > count : index >= count) {
    return fail(why, "chunk index out of range");
  }
  if (erasing) {
    if (!chunk.empty()) return fail(why, "erase carries chunk bytes");
  } else if (chunk.empty()) {
    return fail(why, "mutation carries no chunk bytes");
  }
  const std::uint64_t expected_count =
      inserting ? count + 1 : (erasing ? count - 1 : count);
  if (record.chunk_count != expected_count) {
    return fail(why, "chunk_count does not match the op");
  }

  // Same stride rule the dynamic layer enforces: the store serves reads at
  // a fixed chunk_size stride, so only the LAST chunk may be short.
  if (!erasing) {
    if (chunk.size() > chunk_size) {
      return fail(why, "chunk exceeds the object's chunk size");
    }
    const bool at_tail = inserting ? index == count : index + 1 == count;
    if (!at_tail && chunk.size() != chunk_size) {
      return fail(why, "interior chunk must be full stride");
    }
    if (inserting && index == count && count > 0 &&
        branch.chunks[count - 1].size() != chunk_size) {
      return fail(why, "append after a short tail breaks the stride");
    }
  }

  dyn::DynMerkleTree backup = branch.tree.clone();
  std::vector<Bytes> chunks_backup = branch.chunks;
  const auto at = static_cast<std::ptrdiff_t>(index);
  switch (record.op) {
    case MutateOp::kUpdate:
      branch.tree.update(index, chunk);
      branch.chunks[index] = Bytes(chunk.begin(), chunk.end());
      break;
    case MutateOp::kInsert:
    case MutateOp::kAppend:
      branch.tree.insert(index, chunk);
      branch.chunks.insert(branch.chunks.begin() + at,
                           Bytes(chunk.begin(), chunk.end()));
      break;
    case MutateOp::kErase:
      branch.tree.erase(index);
      branch.chunks.erase(branch.chunks.begin() + at);
      break;
    case MutateOp::kStore:
      return fail(why, "unreachable");
  }
  if (branch.tree.leaf_count() != record.chunk_count ||
      branch.tree.root() != record.new_root) {
    branch.tree = std::move(backup);
    branch.chunks = std::move(chunks_backup);
    return fail(why, "claimed new_root does not match the applied op");
  }
  return true;
}

void ConsProviderActor::handle_op_request(const nr::NrMessage& message) {
  const nr::MessageHeader& h = message.header;
  const crypto::RsaPublicKey* sender_key = peer_key(h.sender);

  std::string object_key;
  std::uint8_t op_byte = 0;
  std::uint64_t index = 0;
  Bytes chunk;
  std::uint32_t chunk_size = 0;
  VersionRecord record;
  Bytes client_sig;
  Bytes observed_head;
  try {
    common::BinaryReader r(message.payload);
    object_key = r.str();
    op_byte = r.u8();
    index = r.u64();
    chunk = r.bytes();
    chunk_size = r.u32();
    record = VersionRecord::decode(r.bytes());
    client_sig = r.bytes();
    observed_head = r.bytes();
    r.expect_done();
  } catch (const common::SerialError&) {
    ++stats_.rejected_bad_hash;
    return;
  }

  // Envelope consistency before any state is touched: the loose fields
  // must restate the signed record and the header must bind its new_root.
  if (record.object_key != object_key ||
      static_cast<std::uint8_t>(record.op) != op_byte ||
      record.chunk_index != index ||
      !common::constant_time_equal(h.data_hash, record.new_root)) {
    ++stats_.rejected_bad_hash;
    return;
  }
  dyn::SignedVersionRecord signed_record;
  signed_record.record = std::move(record);
  signed_record.client_sig = std::move(client_sig);
  if (!signed_record.verify_client(*sender_key)) {
    ++stats_.rejected_bad_evidence;
    return;
  }
  const VersionRecord& rec = signed_record.record;

  const auto it = objects_.find(object_key);

  if (rec.op == MutateOp::kStore) {
    if (it != objects_.end()) {
      SharedObjectState& state = it->second;
      // Idempotent store retry: same creator, same signed v1 record.
      const Branch& main = state.branches.front();
      if (h.sender == state.creator && rec.version == 1 && !main.log.empty() &&
          common::constant_time_equal(
              main.log.front().record.record.encode(), rec.encode()) &&
          common::constant_time_equal(main.log.front().record.client_sig,
                                      signed_record.client_sig)) {
        ++receipts_resent_;
        if (behavior_.send_commits) {
          send_commit(h.sender, state.txn_id, object_key, state.chunk_size,
                      main.log.front());
        }
        return;
      }
      send_op_error(h.sender, h.txn_id, object_key, rec.version,
                    "object already exists", {});
      return;
    }
    if (chunk_size == 0 || chunk.empty() || rec.version != 1 ||
        rec.old_root != dyn::DynMerkleTree::empty_root() ||
        rec.prev_record_hash != VersionRecord::genesis_link() ||
        observed_head != ViewCommitment::genesis_link()) {
      send_op_error(h.sender, h.txn_id, object_key, rec.version,
                    "malformed store record", {});
      return;
    }
    Branch branch;
    branch.chunks = dyn::split_chunks(chunk, chunk_size);
    branch.tree = dyn::DynMerkleTree::build(dyn::chunk_views(branch.chunks));
    if (branch.tree.leaf_count() != rec.chunk_count ||
        branch.tree.root() != rec.new_root) {
      send_op_error(h.sender, h.txn_id, object_key, rec.version,
                    "store record root does not match the data", {});
      return;
    }
    SharedObjectState state;
    state.txn_id = h.txn_id;
    state.creator = h.sender;
    state.chunk_size = chunk_size;
    state.participants.push_back(h.sender);
    state.branches.push_back(std::move(branch));
    const auto inserted = objects_.emplace(object_key, std::move(state)).first;
    commit_op(object_key, inserted->second, 0, h.sender,
              std::move(signed_record), std::move(chunk));
    return;
  }

  // Mutation path.
  if (it == objects_.end()) {
    send_op_error(h.sender, h.txn_id, object_key, rec.version,
                  "unknown object", {});
    return;
  }
  SharedObjectState& state = it->second;
  bool registered = false;
  for (const std::string& p : state.participants) {
    registered = registered || p == h.sender;
  }
  if (!registered) state.participants.push_back(h.sender);
  const auto branch_it = state.branch_of.find(h.sender);
  const std::size_t branch_index =
      branch_it == state.branch_of.end() ? 0 : branch_it->second;
  Branch& branch = state.branches[branch_index];

  // Version-number idempotency: an already-committed version re-issues its
  // commit verbatim. A DIFFERENT record under a committed version is a
  // conflict the client resolves by catching up on the suffix.
  const std::uint64_t head = branch.chain.head_version();
  if (rec.version >= 1 && rec.version <= head) {
    const CommittedOp& committed = branch.log[rec.version - 1];
    if (common::constant_time_equal(committed.record.record.encode(),
                                    rec.encode()) &&
        common::constant_time_equal(committed.record.client_sig,
                                    signed_record.client_sig)) {
      ++receipts_resent_;
      if (behavior_.send_commits) {
        send_commit(h.sender, state.txn_id, object_key, state.chunk_size,
                    committed);
      }
    } else {
      send_op_error(h.sender, h.txn_id, object_key, rec.version,
                    "version already committed to a different record",
                    suffix_from(branch, observed_head));
    }
    return;
  }

  // The fork-join rule: the provider only commits an op whose declared
  // observed head IS the branch head. A stale client gets the missing
  // suffix and re-submits against the new head.
  if (observed_head != branch.views.head_hash() || rec.version != head + 1) {
    send_op_error(h.sender, h.txn_id, object_key, rec.version, "stale view",
                  suffix_from(branch, observed_head));
    return;
  }
  if (!common::constant_time_equal(rec.old_root, branch.chain.head_root()) ||
      !common::constant_time_equal(rec.prev_record_hash,
                                   branch.chain.head_hash())) {
    send_op_error(h.sender, h.txn_id, object_key, rec.version,
                  "record does not link to the committed head", {});
    return;
  }
  std::string why;
  if (!apply_op(branch, state.chunk_size, rec, chunk, &why)) {
    send_op_error(h.sender, h.txn_id, object_key, rec.version, why, {});
    return;
  }
  commit_op(object_key, state, branch_index, h.sender,
            std::move(signed_record), std::move(chunk));
}

std::span<const CommittedOp> ConsProviderActor::suffix_from(
    const Branch& branch, const Bytes& observed_head) const {
  std::span<const CommittedOp> log(branch.log);
  if (observed_head == ViewCommitment::genesis_link()) return log;
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (log[i].commit.view.hash() == observed_head) {
      return log.subspan(i + 1);
    }
  }
  // Unrecognized head (possibly another branch's): send everything — the
  // client's fork checker decides what the overlap means.
  return log;
}

void ConsProviderActor::commit_op(const std::string& object_key,
                                  SharedObjectState& state,
                                  std::size_t branch_index,
                                  const std::string& submitter,
                                  dyn::SignedVersionRecord record,
                                  Bytes op_bytes) {
  Branch& branch = state.branches[branch_index];

  Bytes countersigned = record.record.encode();
  countersigned.insert(countersigned.end(), record.client_sig.begin(),
                       record.client_sig.end());
  record.provider_sig = identity_->sign(countersigned);

  ViewCommitment view;
  view.object_key = object_key;
  view.global_seq = branch.views.head_seq() + 1;
  view.client = submitter;
  view.op_record_hash = crypto::sha256(record.encode());
  view.head_version = record.record.version;
  view.head_root = record.record.new_root;
  view.observed_head = branch.views.head_hash();
  view.prev_commit_hash = branch.views.head_hash();
  SignedViewCommitment commit;
  commit.provider_sig = identity_->sign(view.encode());
  commit.view = std::move(view);

  branch.chain.append(record);
  branch.views.append(commit);
  CommittedOp op;
  op.record = std::move(record);
  op.commit = std::move(commit);
  op.op_bytes = std::move(op_bytes);
  branch.log.push_back(op);

  // Storage effects: the main branch is what the store "really" holds;
  // fork branches exist as armed per-client views on top of it.
  if (branch_index == 0) {
    common::Payload stored(concat_chunks(branch.chunks));
    const Bytes data_md5 = crypto::md5(stored);
    const VersionRecord& rec = op.record.record;
    if (rec.op == MutateOp::kStore) {
      store_.put(object_key, std::move(stored), data_md5, network_->now());
    } else {
      storage::MutationInfo info;
      info.op = static_cast<std::uint8_t>(rec.op);
      info.chunk_index = rec.chunk_index;
      info.chunk_count = rec.chunk_count;
      info.old_root = rec.old_root;
      info.new_root = rec.new_root;
      store_.mutate(object_key, std::move(stored), data_md5, network_->now(),
                    info);
    }
  }
  if (state.branches.size() > 1) sync_store_views(object_key, state);

  // Fan the commit out to every client of THIS branch — the submitter's
  // copy doubles as its receipt.
  if (!behavior_.send_commits) return;
  for (const std::string& client : state.participants) {
    const auto client_branch = state.branch_of.find(client);
    const std::size_t assigned =
        client_branch == state.branch_of.end() ? 0 : client_branch->second;
    if (assigned != branch_index) continue;
    send_commit(client, state.txn_id, object_key, state.chunk_size, op);
    ++commits_sent_;
  }
}

void ConsProviderActor::send_commit(const std::string& client,
                                    const std::string& txn_id,
                                    const std::string& object_key,
                                    std::size_t chunk_size,
                                    const CommittedOp& op) {
  const crypto::RsaPublicKey* client_key = peer_key(client);
  if (client_key == nullptr) return;
  nr::MessageHeader header =
      next_header(nr::MsgType::kConsCommit, client, /*ttp=*/"", txn_id,
                  op.commit.view.hash(), network_->now() + kReplyWindow);
  Bytes evidence = nr::make_evidence(*identity_, *client_key, header, *rng_);

  common::BinaryWriter payload;
  payload.str(object_key);
  payload.u32(static_cast<std::uint32_t>(chunk_size));
  payload.bytes(op.encode());

  nr::NrMessage reply;
  reply.header = std::move(header);
  reply.payload = payload.take();
  reply.evidence = std::move(evidence);
  send(client, std::move(reply));
}

void ConsProviderActor::send_op_error(const std::string& client,
                                      const std::string& txn_id,
                                      const std::string& object_key,
                                      std::uint64_t version,
                                      const std::string& reason,
                                      std::span<const CommittedOp> suffix) {
  ++ops_rejected_;
  common::BinaryWriter payload;
  payload.str(object_key);
  payload.u64(version);
  payload.str(reason);
  write_op_log(payload, suffix);

  nr::NrMessage reply;
  reply.header = next_header(nr::MsgType::kConsOpError, client, /*ttp=*/"",
                             txn_id, Bytes{}, network_->now() + kReplyWindow);
  reply.payload = payload.take();
  send(client, std::move(reply));
}

void ConsProviderActor::handle_view_query(const nr::NrMessage& message) {
  if (!behavior_.respond_to_view_query) return;
  const nr::MessageHeader& h = message.header;
  std::string object_key;
  try {
    common::BinaryReader r(message.payload);
    object_key = r.str();
    r.expect_done();
  } catch (const common::SerialError&) {
    ++stats_.rejected_bad_hash;
    return;
  }
  const auto it = objects_.find(object_key);
  if (it == objects_.end()) return;
  SharedObjectState& state = it->second;
  bool registered = false;
  for (const std::string& p : state.participants) {
    registered = registered || p == h.sender;
  }
  if (!registered) {
    state.participants.push_back(h.sender);
    if (state.branches.size() > 1) sync_store_views(object_key, state);
  }
  const auto branch_it = state.branch_of.find(h.sender);
  const Branch& branch =
      state.branches[branch_it == state.branch_of.end() ? 0
                                                        : branch_it->second];

  const crypto::RsaPublicKey* client_key = peer_key(h.sender);
  if (client_key == nullptr) return;
  nr::MessageHeader header = next_header(
      nr::MsgType::kViewUpdate, h.sender, /*ttp=*/"", h.txn_id,
      branch.views.head_hash(), network_->now() + kReplyWindow);
  Bytes evidence = nr::make_evidence(*identity_, *client_key, header, *rng_);

  common::BinaryWriter payload;
  payload.str(object_key);
  payload.u32(static_cast<std::uint32_t>(state.chunk_size));
  write_op_log(payload, branch.log);

  nr::NrMessage reply;
  reply.header = std::move(header);
  reply.payload = payload.take();
  reply.evidence = std::move(evidence);
  send(h.sender, std::move(reply));
}

}  // namespace tpnr::consistency
