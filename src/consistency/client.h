// The shared-object client — a fork-checking participant in a multi-client
// object.
//
// Unlike the dynamic-data client, the mirror here is NOT optimistic: other
// clients' operations interleave with ours in the provider's global order,
// so the local mirror only advances when a provider-signed kConsCommit
// arrives (our own submissions included — the broadcast commit doubles as
// the receipt). Every commitment the client witnesses, from any source,
// funnels through its per-object ForkChecker:
//
//   * kConsCommit   — the provider's broadcast for each committed op;
//   * kViewUpdate   — the replayable log answering open_shared()/re-syncs;
//   * kConsOpError  — a stale submission bounced with the missing suffix
//                     (the client catches up, re-signs, re-submits);
//   * kGossipViews  — commitment tails exchanged client↔client on the
//                     "cons.gossip" topic, which is what makes a fork
//                     detectable even when the provider forever partitions
//                     the victim groups.
//
// The moment the checker latches an EquivocationProof the client reports
// it (kForkReport) to its configured arbiter and stops trusting the
// object. Gossip that merely LAGS never accuses: unlinked or gapped
// observations count as suspicions and trigger a re-sync, keeping the
// false-accusation rate at zero by construction.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/id.h"
#include "consistency/fork_checker.h"
#include "consistency/op_log.h"
#include "dyn/dyn_merkle.h"
#include "dyn/version_chain.h"
#include "nr/actor.h"

namespace tpnr::consistency {

struct ConsClientOptions {
  common::SimTime reply_window = 10 * common::kSecond;  ///< header time limit
  common::SimTime receipt_timeout = 15 * common::kSecond;
  /// Re-send an unacknowledged submission this many times (same signed
  /// record, fresh header) before giving up.
  std::size_t op_retries = 2;
  /// Extra receipt wait added per successive attempt (linear backoff).
  common::SimTime retry_backoff = 5 * common::kSecond;
  /// How many times a stale-view bounce may rebuild + re-submit an op
  /// against the caught-up head before the op is dropped.
  std::size_t max_resubmits = 4;
};

/// Out-of-band client↔client exchange of witnessed views.
struct GossipOptions {
  common::SimTime period = 2 * common::kSecond;
  /// Timer rounds to run (the deterministic network drains its event queue,
  /// so the gossip timer must be bounded; re-enable for more).
  std::size_t rounds = 8;
  /// Where to send kForkReport when a proof latches ("" keeps it local).
  std::string arbiter;
};

class ConsClientActor final : public nr::NrActor {
 public:
  /// Client-side state of one shared object.
  struct SharedObject {
    std::string provider;
    std::string ttp;
    std::string object_key;
    std::string txn_id;  ///< this client's request transaction
    std::size_t chunk_size = 0;
    std::vector<Bytes> chunks;  ///< committed mirror (commit-driven only)
    dyn::DynMerkleTree tree;
    dyn::VersionChain chain;
    std::optional<ForkChecker> checker;
    bool opened = false;  ///< view update (or own store commit) arrived

    /// The in-flight client-signed submission.
    struct PendingOp {
      dyn::MutateOp op = dyn::MutateOp::kUpdate;
      std::uint64_t index = 0;
      Bytes chunk;
      dyn::VersionRecord record;
      Bytes client_sig;
      std::size_t attempts = 0;   ///< transmissions of the current record
      std::size_t resubmits = 0;  ///< stale-view rebuilds of the record
    };
    std::optional<PendingOp> pending;

    // Outcome counters.
    std::uint64_t commits_applied = 0;   ///< mirror advanced (any submitter)
    std::uint64_t receipts = 0;          ///< own submissions committed
    std::uint64_t duplicate_commits = 0;
    std::uint64_t rejected = 0;          ///< ops dropped (error/exhausted)
    std::uint64_t stale_resubmits = 0;   ///< caught up and re-signed
    std::uint64_t timeouts = 0;          ///< retries exhausted
    bool fork_reported = false;
  };

  ConsClientActor(std::string id, net::Network& network,
                  pki::Identity& identity, crypto::Drbg& rng,
                  ConsClientOptions options = ConsClientOptions{});

  /// Creates the shared object (version 1, global position 1). Returns the
  /// txn id. Throws ProtocolError on unknown provider key, zero chunk
  /// size, empty data, or a key this client already tracks.
  std::string store_shared(const std::string& provider,
                           const std::string& ttp,
                           const std::string& object_key, BytesView data,
                           std::size_t chunk_size);

  /// Joins an object another client created: sends kViewQuery and replays
  /// the returned op log from genesis. Returns false on unknown provider
  /// key or a key this client already tracks.
  bool open_shared(const std::string& provider, const std::string& ttp,
                   const std::string& object_key);

  // One submission may be in flight per object; these return false while
  // one is pending, before the object is opened, or on a bad index.
  bool update(const std::string& object_key, std::uint64_t index,
              BytesView chunk);
  bool insert(const std::string& object_key, std::uint64_t index,
              BytesView chunk);
  bool append_chunk(const std::string& object_key, BytesView chunk);
  bool erase(const std::string& object_key, std::uint64_t index);

  /// Starts the periodic gossip timer. Peers are added with
  /// add_gossip_peer() (each must also be a trusted peer).
  void enable_gossip(GossipOptions options);
  /// One immediate gossip round, outside the timer cadence.
  void gossip_now();
  void add_gossip_peer(const std::string& peer_id);
  [[nodiscard]] const std::vector<std::string>& gossip_peers() const noexcept {
    return gossip_peers_;
  }

  [[nodiscard]] const SharedObject* object(
      const std::string& object_key) const;
  /// The first latched equivocation proof across all objects, if any.
  [[nodiscard]] const EquivocationProof* fork_proof(
      const std::string& object_key) const;
  [[nodiscard]] std::uint64_t forks_detected() const noexcept {
    return forks_detected_;
  }
  [[nodiscard]] std::uint64_t gossip_rounds() const noexcept {
    return gossip_rounds_;
  }

 protected:
  void on_message(const nr::NrMessage& message) override;

 private:
  SharedObject* mutable_object(const std::string& object_key);
  bool begin_op(SharedObject& obj, dyn::MutateOp op, std::uint64_t index,
                BytesView chunk);
  /// Builds (or rebuilds, after catch-up) pending's record against the
  /// current head. Returns false if the op no longer applies.
  bool build_pending_record(SharedObject& obj);
  void transmit_pending(const std::string& object_key);
  void arm_receipt_timer(const std::string& object_key, std::uint64_t version,
                         std::size_t attempt);
  /// Runs one committed op through the checker and (if it extends the
  /// mirror) applies it. Returns false only on a verification failure.
  bool absorb_committed_op(SharedObject& obj, const CommittedOp& op);
  /// Applies a verified next-version op to the mirror.
  bool advance_mirror(SharedObject& obj, const CommittedOp& op);
  void maybe_report_fork(SharedObject& obj);
  void request_view(SharedObject& obj);
  void gossip_tick();

  void handle_commit(const nr::NrMessage& message);
  void handle_view_update(const nr::NrMessage& message);
  void handle_op_error(const nr::NrMessage& message);
  void handle_gossip(const nr::NrMessage& message);

  ConsClientOptions options_;
  std::optional<GossipOptions> gossip_;
  std::vector<std::string> gossip_peers_;
  bool gossip_timer_armed_ = false;
  std::map<std::string, SharedObject> objects_;  ///< by object key
  common::IdGenerator txn_ids_;
  std::uint64_t forks_detected_ = 0;
  std::uint64_t gossip_rounds_ = 0;
};

}  // namespace tpnr::consistency
