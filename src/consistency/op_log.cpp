#include "consistency/op_log.h"

namespace tpnr::consistency {

Bytes CommittedOp::encode() const {
  common::BinaryWriter w;
  w.bytes(record.encode());
  w.bytes(commit.encode());
  w.bytes(op_bytes);
  return w.take();
}

CommittedOp CommittedOp::decode(BytesView data) {
  common::BinaryReader r(data);
  CommittedOp op;
  op.record = dyn::SignedVersionRecord::decode(r.bytes());
  op.commit = SignedViewCommitment::decode(r.bytes());
  op.op_bytes = r.bytes();
  r.expect_done();
  return op;
}

void write_op_log(common::BinaryWriter& w, std::span<const CommittedOp> log) {
  w.u32(static_cast<std::uint32_t>(log.size()));
  for (const CommittedOp& op : log) w.bytes(op.encode());
}

std::vector<CommittedOp> read_op_log(common::BinaryReader& r) {
  const std::uint32_t count = r.u32();
  std::vector<CommittedOp> log;
  log.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    log.push_back(CommittedOp::decode(r.bytes()));
  }
  return log;
}

}  // namespace tpnr::consistency
