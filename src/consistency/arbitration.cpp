#include "consistency/arbitration.h"

#include <algorithm>

namespace tpnr::consistency {

std::string fork_ruling_name(ForkRulingKind kind) {
  switch (kind) {
    case ForkRulingKind::kProviderConvicted: return "provider-convicted";
    case ForkRulingKind::kClaimRejected: return "claim-rejected";
    case ForkRulingKind::kViewsConsistent: return "views-consistent";
    case ForkRulingKind::kEscalate: return "escalate";
  }
  return "unknown";
}

namespace {

ForkRuling ruled(ForkRulingKind kind, std::string rationale,
                 std::optional<EquivocationProof> proof = std::nullopt) {
  ForkRuling ruling;
  ruling.kind = kind;
  ruling.rationale = std::move(rationale);
  ruling.proof = std::move(proof);
  return ruling;
}

}  // namespace

ForkRuling resolve_fork_dispute(const ForkDisputeCase& dispute) {
  // Row 1/2 — a presented proof decides by itself: valid convicts, invalid
  // kills the claim (a forged proof must never count as "no evidence" and
  // fall through to escalation, or forging would be free).
  if (dispute.proof) {
    std::string why;
    if (dispute.proof->object_key != dispute.object_key) {
      return ruled(ForkRulingKind::kClaimRejected,
                   "presented proof names a different object");
    }
    if (dispute.proof->valid(dispute.provider_key, &why)) {
      return ruled(ForkRulingKind::kProviderConvicted,
                   "valid equivocation proof: " + dispute.proof->describe(),
                   dispute.proof);
    }
    return ruled(ForkRulingKind::kClaimRejected,
                 "presented proof fails verification: " + why);
  }

  // Row 3 — without a proof the accuser's own view must hold up end to
  // end; a view with bad links or signatures proves nothing about the
  // provider and rejects the claim.
  if (dispute.accuser_view.empty()) {
    return ruled(ForkRulingKind::kClaimRejected,
                 "no proof and no accuser view: nothing to decide on");
  }
  const ViewWalkResult accuser_walk =
      walk_view(dispute.accuser_view, dispute.provider_key);
  if (accuser_walk.status != ViewWalkStatus::kValid) {
    return ruled(ForkRulingKind::kClaimRejected,
                 "accuser view fails verification at position " +
                     std::to_string(accuser_walk.at_seq) + " (" +
                     view_walk_status_name(accuser_walk.status) + ": " +
                     accuser_walk.detail + ")");
  }

  // Row 6 — a valid accuser view ALONE is a stale-gossip claim: real forks
  // look like this, but so does a victim of packet loss. Escalate.
  if (dispute.counter_view.empty()) {
    return ruled(ForkRulingKind::kEscalate,
                 "accuser view verifies but no counter-view was presented: "
                 "query the provider before judging");
  }
  const ViewWalkResult counter_walk =
      walk_view(dispute.counter_view, dispute.provider_key);
  if (counter_walk.status != ViewWalkStatus::kValid) {
    // The DEFENCE collapsed, not the accusation — but a broken counter-view
    // still is not a second signed history, so there is nothing to convict
    // with. Escalate and let the provider be re-queried.
    return ruled(ForkRulingKind::kEscalate,
                 "counter-view fails verification at position " +
                     std::to_string(counter_walk.at_seq) +
                     "; no second signed history to compare yet");
  }

  // Rows 4/5 — two valid provider-signed views: compare position by
  // position. The first divergent position yields a TTP-synthesized
  // EquivocationProof; full prefix agreement means no fork.
  const std::size_t overlap =
      std::min(dispute.accuser_view.size(), dispute.counter_view.size());
  for (std::size_t i = 0; i < overlap; ++i) {
    const SignedViewCommitment& a = dispute.accuser_view[i];
    const SignedViewCommitment& b = dispute.counter_view[i];
    if (a.view.encode() == b.view.encode()) continue;
    EquivocationProof proof;
    proof.object_key = dispute.object_key;
    proof.a = a;
    proof.b = b;
    std::string why;
    if (proof.valid(dispute.provider_key, &why)) {
      // Build the rationale before handing the proof over: argument
      // evaluation order is unspecified, and a moved-from proof would
      // describe() as empty.
      std::string rationale = "views diverge at position " +
                              std::to_string(a.view.global_seq) +
                              "; synthesized proof: " + proof.describe();
      return ruled(ForkRulingKind::kProviderConvicted, std::move(rationale),
                   std::move(proof));
    }
    // Both views walked as valid, so a non-proof divergence here can only
    // be a malformed pairing (e.g. different objects slipped in).
    return ruled(ForkRulingKind::kClaimRejected,
                 "divergent positions do not form a proof: " + why);
  }
  return ruled(ForkRulingKind::kViewsConsistent,
               "one view is a verified prefix of the other (" +
                   std::to_string(overlap) + " shared positions): no fork");
}

}  // namespace tpnr::consistency
