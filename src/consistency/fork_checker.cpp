#include "consistency/fork_checker.h"

namespace tpnr::consistency {

std::string observe_outcome_name(ObserveOutcome outcome) {
  switch (outcome) {
    case ObserveOutcome::kExtended: return "extended";
    case ObserveOutcome::kDuplicate: return "duplicate";
    case ObserveOutcome::kConflict: return "conflict";
    case ObserveOutcome::kUnlinked: return "unlinked";
    case ObserveOutcome::kGap: return "gap";
    case ObserveOutcome::kRejected: return "rejected";
  }
  return "unknown";
}

ObserveOutcome ForkChecker::observe(const SignedViewCommitment& commit) {
  const ViewCommitment& v = commit.view;
  if (v.object_key != object_key_ || v.global_seq == 0 ||
      !commit.verify(provider_key_)) {
    return ObserveOutcome::kRejected;
  }

  const std::uint64_t head = view_.head_seq();
  if (v.global_seq <= head) {
    const SignedViewCommitment* held = view_.at(v.global_seq);
    if (held->view.encode() == v.encode()) {
      return ObserveOutcome::kDuplicate;
    }
    // Both the held and the incoming commitment carry a verified provider
    // signature over the same position with different contents — that pair
    // IS the equivocation proof, no further context needed.
    if (!proof_) {
      proof_ = EquivocationProof{object_key_, *held, commit};
    }
    return ObserveOutcome::kConflict;
  }

  if (v.global_seq > head + 1) {
    ++suspicions_;
    return ObserveOutcome::kGap;
  }
  if (!view_.append(commit)) {
    ++suspicions_;
    return ObserveOutcome::kUnlinked;
  }
  return ObserveOutcome::kExtended;
}

ObserveOutcome ForkChecker::merge(
    std::span<const SignedViewCommitment> commits) {
  // Severity order for the batch verdict: a proven conflict dominates,
  // then irreconcilable-but-unproven observations, then outright rejects;
  // clean extends/duplicates only win when nothing worse happened.
  const auto rank = [](ObserveOutcome outcome) {
    switch (outcome) {
      case ObserveOutcome::kConflict: return 4;
      case ObserveOutcome::kUnlinked:
      case ObserveOutcome::kGap: return 3;
      case ObserveOutcome::kRejected: return 2;
      case ObserveOutcome::kExtended:
      case ObserveOutcome::kDuplicate: return 1;
    }
    return 0;
  };
  ObserveOutcome worst = ObserveOutcome::kDuplicate;
  int worst_rank = 0;
  for (const SignedViewCommitment& commit : commits) {
    const ObserveOutcome outcome = observe(commit);
    if (rank(outcome) > worst_rank) {
      worst = outcome;
      worst_rank = rank(outcome);
    }
  }
  return worst;
}

}  // namespace tpnr::consistency
