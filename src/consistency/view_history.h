// View commitments: the provider's signed, hash-chained promise of ONE
// global operation order per shared object.
//
// The dynamic-data layer's SignedVersionRecord binds a single client's
// history — nothing stops a malicious provider from maintaining one
// perfectly countersigned chain PER CLIENT and serving each victim its own
// fork (the gap VICOS-style fork-linearizability closes; see PAPERS.md).
// The consistency layer therefore makes the provider countersign, for
// every committed operation, a ViewCommitment that extends the version
// record with the two fields a fork cannot survive:
//
//   * `client`        — WHO submitted the operation at this global position,
//   * `observed_head` — the commitment-chain head that client had seen when
//                       it submitted (the provider may only commit an op
//                       whose observed head IS the current head).
//
// Commitments are hash-chained by `prev_commit_hash`, so position
// `global_seq` of an object's history has exactly one valid commitment.
// Two provider-signed commitments for the same (object, global_seq) with
// different contents are therefore a self-contained EquivocationProof: the
// provider signed two incompatible histories, and no statement from any
// client needs to be believed to convict it.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "crypto/rsa.h"

namespace tpnr::consistency {

using common::Bytes;
using common::BytesView;

/// One link of an object's global view chain. `global_seq` counts ALL
/// committed operations on the object across every client, starting at 1.
struct ViewCommitment {
  std::string object_key;
  std::uint64_t global_seq = 0;
  std::string client;        ///< who submitted the op at this position
  Bytes op_record_hash;      ///< SHA-256 of the op's SignedVersionRecord
  std::uint64_t head_version = 0;  ///< object version AFTER the op
  Bytes head_root;                 ///< tree root AFTER the op
  Bytes observed_head;       ///< chain head the submitter declared it saw
  Bytes prev_commit_hash;    ///< hash link; 32 zero bytes for seq 1

  [[nodiscard]] Bytes encode() const;
  /// Throws common::SerialError on malformed input.
  static ViewCommitment decode(BytesView data);
  /// SHA-256 over encode() — what the next commitment links to.
  [[nodiscard]] Bytes hash() const;

  /// The 32-zero-byte link the first commitment carries.
  static const Bytes& genesis_link();
};

/// A view commitment carrying the provider's signature over encode().
struct SignedViewCommitment {
  ViewCommitment view;
  Bytes provider_sig;  ///< Sign_provider(view.encode())

  [[nodiscard]] Bytes encode() const;
  static SignedViewCommitment decode(BytesView data);

  [[nodiscard]] bool verify(const crypto::RsaPublicKey& provider) const;
};

/// Two provider-signed commitments claiming the SAME position of the SAME
/// object's history with DIFFERENT contents. Self-contained: valid() needs
/// only the provider's public key, so the TTP can convict without trusting
/// either client's account of events.
struct EquivocationProof {
  std::string object_key;
  SignedViewCommitment a;
  SignedViewCommitment b;

  [[nodiscard]] Bytes encode() const;
  static EquivocationProof decode(BytesView data);

  /// True iff both signatures verify under `provider` and the two
  /// commitments claim the same (object, global_seq) with different
  /// encodings. `why` (if non-null) explains a failure.
  [[nodiscard]] bool valid(const crypto::RsaPublicKey& provider,
                           std::string* why = nullptr) const;

  /// One-line human summary for narrated runs and ledger details.
  [[nodiscard]] std::string describe() const;
};

/// An append-only, structurally validated commitment sequence — the
/// consistency analogue of dyn::VersionChain. append() enforces sequence,
/// hash-link and observed-head continuity; signatures are the checker's
/// and the TTP's job.
class ViewHistory {
 public:
  /// Appends if the commitment extends the head consistently; otherwise
  /// returns false and (if non-null) explains in `why`.
  bool append(SignedViewCommitment commit, std::string* why = nullptr);

  [[nodiscard]] const std::vector<SignedViewCommitment>& commitments()
      const noexcept {
    return commitments_;
  }
  [[nodiscard]] bool empty() const noexcept { return commitments_.empty(); }

  /// 0 for an empty history.
  [[nodiscard]] std::uint64_t head_seq() const noexcept;
  /// genesis_link() for an empty history.
  [[nodiscard]] Bytes head_hash() const;

  /// The commitment at `global_seq` (1-based), nullptr if absent.
  [[nodiscard]] const SignedViewCommitment* at(std::uint64_t global_seq) const;

 private:
  std::vector<SignedViewCommitment> commitments_;
};

/// What a full history walk concluded.
enum class ViewWalkStatus : std::uint8_t {
  kValid = 1,
  kEmpty = 2,
  kBrokenLink = 3,   ///< seq/hash-link/observed-head discontinuity
  kBadSignature = 4, ///< some commitment's provider signature fails
};
std::string view_walk_status_name(ViewWalkStatus status);

struct ViewWalkResult {
  ViewWalkStatus status = ViewWalkStatus::kEmpty;
  std::uint64_t at_seq = 0;  ///< first offending position (0: none)
  std::string detail;
};

/// The TTP's full validation of a presented view: structural continuity
/// plus the provider's signature on every commitment. Deterministic.
ViewWalkResult walk_view(std::span<const SignedViewCommitment> commits,
                         const crypto::RsaPublicKey& provider_key);

}  // namespace tpnr::consistency
