// Client-side fork-linearizability checking.
//
// Every commitment a client sees — its own receipts, broadcast commits
// from the provider, and commitment tails gossiped by other clients — goes
// through its per-object ForkChecker. The checker maintains the longest
// provider-signed ViewHistory it has witnessed and classifies each new
// commitment against it:
//
//   * extends the head            -> accepted, history grows;
//   * already known, byte-equal   -> duplicate (retries/gossip overlap);
//   * claims an OCCUPIED position
//     with different contents     -> FORK: both commitments are provider-
//                                    signed, so the pair is a complete
//                                    EquivocationProof;
//   * skips ahead / fails to link -> suspicion: the checker cannot tell a
//                                    fork from packet loss yet, so it
//                                    counts the observation and lets the
//                                    caller re-sync (never an accusation —
//                                    the no-false-accusation property).
//
// Bad provider signatures are rejected outright: an unsigned "commitment"
// proves nothing and must not pollute the witnessed history.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>

#include "consistency/view_history.h"

namespace tpnr::consistency {

/// How one observed commitment relates to the witnessed history.
enum class ObserveOutcome : std::uint8_t {
  kExtended = 1,   ///< appended; the witnessed history grew
  kDuplicate = 2,  ///< position already held this exact commitment
  kConflict = 3,   ///< position held a DIFFERENT commitment — fork proven
  kUnlinked = 4,   ///< next position but the hash links disagree (suspicion)
  kGap = 5,        ///< skips positions the checker has not seen (suspicion)
  kRejected = 6,   ///< wrong object or provider signature fails
};
std::string observe_outcome_name(ObserveOutcome outcome);

class ForkChecker {
 public:
  ForkChecker(std::string object_key, crypto::RsaPublicKey provider_key)
      : object_key_(std::move(object_key)),
        provider_key_(std::move(provider_key)) {}

  /// Classifies one commitment and (when it extends cleanly) absorbs it.
  /// The first kConflict latches proof(); later observations still classify
  /// but the proof is never overwritten.
  ObserveOutcome observe(const SignedViewCommitment& commit);

  /// Absorbs a batch (a gossiped tail or a view update) in ascending
  /// sequence order. Returns the worst outcome seen, where conflict >
  /// unlinked/gap > rejected > extended/duplicate — one conflict anywhere
  /// makes the batch a fork.
  ObserveOutcome merge(std::span<const SignedViewCommitment> commits);

  [[nodiscard]] const ViewHistory& view() const noexcept { return view_; }
  [[nodiscard]] const std::string& object_key() const noexcept {
    return object_key_;
  }

  [[nodiscard]] bool forked() const noexcept { return proof_.has_value(); }
  /// The latched equivocation proof, once a conflict has been observed.
  [[nodiscard]] const std::optional<EquivocationProof>& proof()
      const noexcept {
    return proof_;
  }

  /// Observations that could not be reconciled but prove nothing (gaps and
  /// unlinked commitments). A client escalates these by re-syncing, never
  /// by accusing.
  [[nodiscard]] std::uint64_t suspicions() const noexcept {
    return suspicions_;
  }

 private:
  std::string object_key_;
  crypto::RsaPublicKey provider_key_;
  ViewHistory view_;
  std::optional<EquivocationProof> proof_;
  std::uint64_t suspicions_ = 0;
};

}  // namespace tpnr::consistency
