#include "net/tls_gateway.h"

#include "common/error.h"

namespace tpnr::net {

TlsGateway::TlsGateway(pki::Identity& server,
                       const pki::CertificateAuthority& ca,
                       AppHandler handler)
    : server_(&server), ca_(&ca), handler_(std::move(handler)) {
  if (!handler_) {
    throw common::NetError("TlsGateway: null application handler");
  }
}

std::uint64_t TlsGateway::connect(const pki::Identity& client,
                                  common::SimTime now, crypto::Drbg& rng) {
  auto pair = SecureChannel::establish(client, *server_, *ca_, now, rng);
  Connection connection;
  connection.client_side = std::move(pair.client);
  connection.server_side = std::move(pair.server);
  const std::uint64_t id = next_connection_++;
  connections_[id] = std::move(connection);
  return id;
}

Bytes TlsGateway::client_seal(std::uint64_t connection_id, BytesView plaintext,
                              crypto::Drbg& rng) {
  const auto it = connections_.find(connection_id);
  if (it == connections_.end()) {
    throw common::NetError("TlsGateway: unknown connection");
  }
  return it->second.client_side->seal(plaintext, rng);
}

Bytes TlsGateway::gateway_process(std::uint64_t connection_id,
                                  BytesView record, crypto::Drbg& rng) {
  const auto it = connections_.find(connection_id);
  if (it == connections_.end()) {
    throw common::NetError("TlsGateway: unknown connection");
  }
  const Bytes plaintext = it->second.server_side->open(record);
  const Bytes response = handler_(plaintext);
  return it->second.server_side->seal(response, rng);
}

Bytes TlsGateway::client_open(std::uint64_t connection_id, BytesView record) {
  const auto it = connections_.find(connection_id);
  if (it == connections_.end()) {
    throw common::NetError("TlsGateway: unknown connection");
  }
  return it->second.client_side->open(record);
}

Bytes TlsGateway::round_trip(std::uint64_t connection_id,
                             BytesView plaintext_request, crypto::Drbg& rng) {
  const Bytes request_record =
      client_seal(connection_id, plaintext_request, rng);
  const Bytes response_record =
      gateway_process(connection_id, request_record, rng);
  return client_open(connection_id, response_record);
}

}  // namespace tpnr::net
