#include "net/secure_channel.h"

#include "common/error.h"
#include "common/serial.h"
#include "crypto/hmac.h"

namespace tpnr::net {

namespace {

Bytes derive_master(BytesView pre_master, BytesView nonce_c,
                    BytesView nonce_s) {
  Bytes label = common::to_bytes("tpnr-ssl-master");
  common::append(label, nonce_c);
  common::append(label, nonce_s);
  return crypto::hmac_sha256(pre_master, label);
}

}  // namespace

SecureChannel::SecureChannel(Role role, BytesView master_secret)
    : role_(role), aead_(master_secret) {}

SecureChannel::Pair SecureChannel::establish(
    const pki::Identity& client, const pki::Identity& server,
    const pki::CertificateAuthority& ca, common::SimTime now,
    crypto::Drbg& rng) {
  if (!client.certificate() || !server.certificate()) {
    throw common::AuthError("SecureChannel: both parties need certificates");
  }
  // Mutual certificate validation — §5.1's "authenticate the validity" step.
  if (ca.check(*client.certificate(), now) != pki::CertStatus::kValid) {
    throw common::AuthError("SecureChannel: client certificate invalid");
  }
  if (ca.check(*server.certificate(), now) != pki::CertStatus::kValid) {
    throw common::AuthError("SecureChannel: server certificate invalid");
  }

  const Bytes nonce_c = rng.bytes(32);
  const Bytes nonce_s = rng.bytes(32);

  common::BinaryWriter hello_c;
  hello_c.bytes(nonce_c);
  hello_c.bytes(client.certificate()->encode());

  // Server generates and wraps the pre-master secret for the client's
  // authenticated key, then signs the transcript.
  const Bytes pre_master = rng.bytes(32);
  const Bytes wrapped =
      pki::Identity::seal_for(client.public_key(), pre_master, rng);

  common::BinaryWriter transcript;
  transcript.bytes(nonce_c);
  transcript.bytes(nonce_s);
  transcript.bytes(wrapped);
  const Bytes server_sig = server.sign(transcript.data());

  common::BinaryWriter hello_s;
  hello_s.bytes(nonce_s);
  hello_s.bytes(server.certificate()->encode());
  hello_s.bytes(wrapped);
  hello_s.bytes(server_sig);

  // Client side: verify the server's signature under its certified key.
  if (!pki::Identity::verify(server.public_key(), transcript.data(),
                             server_sig)) {
    throw common::AuthError("SecureChannel: bad server handshake signature");
  }
  const Bytes pre_master_client = client.unseal(wrapped);
  const Bytes master = derive_master(pre_master_client, nonce_c, nonce_s);

  Pair pair;
  pair.client.reset(new SecureChannel(Role::kClient, master));
  pair.server.reset(new SecureChannel(Role::kServer, master));
  pair.client_hello = hello_c.take();
  pair.server_hello = hello_s.take();
  return pair;
}

Bytes SecureChannel::aad(bool client_to_server, std::uint64_t seq) const {
  common::BinaryWriter w;
  w.str(client_to_server ? "c2s" : "s2c");
  w.u64(seq);
  return w.take();
}

Bytes SecureChannel::seal(BytesView plaintext, crypto::Drbg& rng) {
  const bool c2s = role_ == Role::kClient;
  const Bytes sealed = aead_.seal(plaintext, aad(c2s, send_seq_), rng);
  ++send_seq_;
  return sealed;
}

Bytes SecureChannel::open(BytesView record) {
  const bool c2s = role_ == Role::kServer;  // peer's direction
  const Bytes plaintext = aead_.open(record, aad(c2s, recv_seq_));
  ++recv_seq_;
  return plaintext;
}

}  // namespace tpnr::net
