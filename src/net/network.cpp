#include "net/network.h"

namespace tpnr::net {

void Network::attach(const std::string& endpoint, Handler handler) {
  handlers_[endpoint] = std::move(handler);
}

void Network::set_link(const std::string& from, const std::string& to,
                       LinkConfig config) {
  links_[{from, to}] = config;
}

void Network::set_adversary(const std::string& from, const std::string& to,
                            Adversary adversary) {
  adversaries_[{from, to}] = std::move(adversary);
}

void Network::clear_adversary(const std::string& from, const std::string& to) {
  adversaries_.erase({from, to});
}

void Network::partition(const std::string& a, const std::string& b,
                        SimTime from, SimTime until) {
  partitions_.push_back({a, b, from, until});
}

bool Network::partitioned(const std::string& a, const std::string& b,
                          SimTime at) const {
  for (const PartitionWindow& w : partitions_) {
    const bool matches = (w.a == a && w.b == b) || (w.a == b && w.b == a);
    if (matches && at >= w.from && at < w.until) return true;
  }
  return false;
}

void Network::set_endpoint_down(const std::string& endpoint, SimTime from,
                                SimTime until) {
  down_windows_[endpoint].emplace_back(from, until);
}

bool Network::endpoint_down(const std::string& endpoint, SimTime at) const {
  const auto it = down_windows_.find(endpoint);
  if (it == down_windows_.end()) return false;
  for (const auto& [from, until] : it->second) {
    if (at >= from && at < until) return true;
  }
  return false;
}

const LinkConfig& Network::link_for(const std::string& from,
                                    const std::string& to) const {
  const auto it = links_.find({from, to});
  return it == links_.end() ? default_link_ : it->second;
}

SimTime Network::sample_delay(const LinkConfig& link,
                              std::size_t payload_bytes, bool& reordered) {
  SimTime delay = link.latency;
  if (link.jitter > 0) {
    delay += static_cast<SimTime>(
        rng_.uniform(static_cast<std::uint64_t>(link.jitter) + 1));
  }
  if (link.bandwidth_bytes_per_sec > 0) {
    delay += static_cast<SimTime>(payload_bytes) * common::kSecond /
             static_cast<SimTime>(link.bandwidth_bytes_per_sec);
  }
  if (link.delay_spike_probability > 0.0 &&
      rng_.chance(link.delay_spike_probability)) {
    delay += link.delay_spike;
  }
  reordered = false;
  if (link.reorder_probability > 0.0 && link.reorder_window > 0 &&
      rng_.chance(link.reorder_probability)) {
    delay += 1 + static_cast<SimTime>(rng_.uniform(
                     static_cast<std::uint64_t>(link.reorder_window)));
    reordered = true;
  }
  return delay;
}

void Network::enqueue_delivery(Envelope envelope, SimTime at) {
  envelope.delivered_at = at;
  Event event;
  event.at = at;
  event.seq = next_event_seq_++;
  event.is_timer = false;
  event.envelope = std::move(envelope);
  events_.push(std::move(event));
}

std::uint64_t Network::send(const std::string& from, const std::string& to,
                            const std::string& topic, Bytes payload) {
  if (!handlers_.contains(to)) {
    throw common::NetError("Network::send: unknown endpoint '" + to + "'");
  }
  Envelope env;
  env.id = next_envelope_id_++;
  env.from = from;
  env.to = to;
  env.topic = topic;
  env.payload = std::move(payload);
  env.sent_at = clock_.now();

  ++stats_.messages_sent;
  stats_.bytes_sent += env.payload.size();
  TopicStats& topic_stats = stats_.by_topic[env.topic];
  ++topic_stats.messages_sent;
  topic_stats.bytes_sent += env.payload.size();

  // Adversary sees the message before channel effects.
  if (const auto adv = adversaries_.find({from, to});
      adv != adversaries_.end()) {
    AdversaryAction action = adv->second(env);
    switch (action.kind) {
      case AdversaryAction::Kind::kDrop:
        ++stats_.messages_dropped_adversary;
        ++topic_stats.messages_dropped_adversary;
        return env.id;
      case AdversaryAction::Kind::kModify:
        env.payload = std::move(action.modified_payload);
        ++stats_.messages_modified;
        break;
      case AdversaryAction::Kind::kPass:
        break;
    }
  }

  // A cut link swallows anything entering it during the window.
  if (partitioned(from, to, clock_.now())) {
    ++stats_.messages_dropped_partition;
    ++topic_stats.messages_dropped_partition;
    return env.id;
  }

  const LinkConfig& link = link_for(from, to);
  if (link.loss_probability > 0.0 && rng_.chance(link.loss_probability)) {
    ++stats_.messages_dropped_loss;
    ++topic_stats.messages_dropped_loss;
    return env.id;
  }

  bool reordered = false;
  const SimTime delay = sample_delay(link, env.payload.size(), reordered);
  if (reordered) {
    ++stats_.messages_reordered;
    ++topic_stats.messages_reordered;
  }
  const std::uint64_t id = env.id;

  // Duplication: a second, independently delayed copy of the same envelope
  // (same id — the duplicate is indistinguishable on the wire).
  if (link.duplicate_probability > 0.0 &&
      rng_.chance(link.duplicate_probability)) {
    ++stats_.messages_duplicated;
    ++topic_stats.messages_duplicated;
    bool copy_reordered = false;
    const SimTime copy_delay =
        sample_delay(link, env.payload.size(), copy_reordered);
    if (copy_reordered) {
      ++stats_.messages_reordered;
      ++topic_stats.messages_reordered;
    }
    enqueue_delivery(env, clock_.now() + copy_delay);
  }
  enqueue_delivery(std::move(env), clock_.now() + delay);
  return id;
}

void Network::schedule(SimTime delay, TimerCallback callback) {
  Event event;
  event.at = clock_.now() + delay;
  event.seq = next_event_seq_++;
  event.is_timer = true;
  event.callback = std::move(callback);
  events_.push(std::move(event));
}

std::size_t Network::run(std::size_t max_events) {
  std::size_t processed = 0;
  while (!events_.empty() && processed < max_events) {
    Event event = events_.top();
    events_.pop();
    clock_.advance_to(event.at);
    if (event.is_timer) {
      event.callback();
    } else if (endpoint_down(event.envelope.to, event.at)) {
      // The host is down when the message arrives: lost, like a connection
      // refused. Timers keep firing — only traffic dies.
      ++stats_.messages_dropped_endpoint_down;
      ++stats_.by_topic[event.envelope.topic].messages_dropped_endpoint_down;
    } else {
      const auto it = handlers_.find(event.envelope.to);
      if (it != handlers_.end()) {
        ++stats_.messages_delivered;
        stats_.bytes_delivered += event.envelope.payload.size();
        TopicStats& topic = stats_.by_topic[event.envelope.topic];
        ++topic.messages_delivered;
        topic.bytes_delivered += event.envelope.payload.size();
        it->second(event.envelope);
      }
    }
    ++processed;
  }
  return processed;
}

}  // namespace tpnr::net
