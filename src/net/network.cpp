#include "net/network.h"

#include <algorithm>

namespace tpnr::net {

Network::Network(std::uint64_t seed, NetworkOptions options)
    : engine_(seed, runtime::EngineOptions{options.shards, options.workers,
                                           options.use_timer_wheel}) {
  stats_buckets_.resize(engine_.shard_count() + 1);
  recompute_lookahead();
}

void Network::attach(const std::string& endpoint, Handler handler) {
  const EndpointId id = engine_.endpoint(endpoint);
  if (handlers_.size() <= id) handlers_.resize(id + 1);
  handlers_[id] = std::move(handler);
}

void Network::set_link(const std::string& from, const std::string& to,
                       LinkConfig config) {
  links_[link_key(engine_.endpoint(from), engine_.endpoint(to))] = config;
  recompute_lookahead();
}

void Network::set_default_link(LinkConfig config) {
  default_link_ = config;
  recompute_lookahead();
}

void Network::recompute_lookahead() {
  // The engine may run shards in parallel over windows of this width: it
  // must be a lower bound on every cross-endpoint delivery delay. Latency
  // is the floor of sample_delay (jitter/bandwidth/spike/reorder only add),
  // and deliveries are clamped to >= 1us in send().
  SimTime min_latency = default_link_.latency;
  for (const auto& [key, link] : links_) {
    min_latency = std::min(min_latency, link.latency);
  }
  engine_.set_lookahead(std::max<SimTime>(1, min_latency));
}

void Network::set_adversary(const std::string& from, const std::string& to,
                            Adversary adversary) {
  adversaries_[link_key(engine_.endpoint(from), engine_.endpoint(to))] =
      std::move(adversary);
}

void Network::clear_adversary(const std::string& from, const std::string& to) {
  adversaries_.erase(link_key(engine_.endpoint(from), engine_.endpoint(to)));
}

void Network::partition(const std::string& a, const std::string& b,
                        SimTime from, SimTime until) {
  partitions_.push_back(
      {engine_.endpoint(a), engine_.endpoint(b), from, until});
}

bool Network::partitioned_ids(EndpointId a, EndpointId b, SimTime at) const {
  for (const PartitionWindow& w : partitions_) {
    const bool matches = (w.a == a && w.b == b) || (w.a == b && w.b == a);
    if (matches && at >= w.from && at < w.until) return true;
  }
  return false;
}

bool Network::partitioned(const std::string& a, const std::string& b,
                          SimTime at) const {
  // Names never seen by the network cannot be partitioned.
  Network* self = const_cast<Network*>(this);
  return partitioned_ids(self->engine_.endpoint(a), self->engine_.endpoint(b),
                         at);
}

void Network::set_endpoint_down(const std::string& endpoint, SimTime from,
                                SimTime until) {
  const EndpointId id = engine_.endpoint(endpoint);
  if (down_windows_.size() <= id) down_windows_.resize(id + 1);
  down_windows_[id].emplace_back(from, until);
}

bool Network::endpoint_down_id(EndpointId endpoint, SimTime at) const {
  if (endpoint >= down_windows_.size()) return false;
  for (const auto& [from, until] : down_windows_[endpoint]) {
    if (at >= from && at < until) return true;
  }
  return false;
}

bool Network::endpoint_down(const std::string& endpoint, SimTime at) const {
  Network* self = const_cast<Network*>(this);
  return endpoint_down_id(self->engine_.endpoint(endpoint), at);
}

const LinkConfig& Network::link_for(EndpointId from, EndpointId to) const {
  const auto it = links_.find(link_key(from, to));
  return it == links_.end() ? default_link_ : it->second;
}

SimTime Network::sample_delay(const LinkConfig& link,
                              std::size_t payload_bytes, crypto::Drbg& rng,
                              bool& reordered) {
  SimTime delay = link.latency;
  if (link.jitter > 0) {
    delay += static_cast<SimTime>(
        rng.uniform(static_cast<std::uint64_t>(link.jitter) + 1));
  }
  if (link.bandwidth_bytes_per_sec > 0) {
    delay += static_cast<SimTime>(payload_bytes) * common::kSecond /
             static_cast<SimTime>(link.bandwidth_bytes_per_sec);
  }
  if (link.delay_spike_probability > 0.0 &&
      rng.chance(link.delay_spike_probability)) {
    delay += link.delay_spike;
  }
  reordered = false;
  if (link.reorder_probability > 0.0 && link.reorder_window > 0 &&
      rng.chance(link.reorder_probability)) {
    delay += 1 + static_cast<SimTime>(rng.uniform(
                     static_cast<std::uint64_t>(link.reorder_window)));
    reordered = true;
  }
  return delay;
}

TopicStats& Network::topic_slot(StatsBucket& bucket, TopicId topic) const {
  if (bucket.by_topic.size() <= topic) bucket.by_topic.resize(topic + 1);
  return bucket.by_topic[topic];
}

Network::StatsBucket& Network::bucket() {
  return stats_buckets_[engine_.current_bucket()];
}

std::uint64_t Network::send(const std::string& from, const std::string& to,
                            const std::string& topic,
                            common::Payload payload) {
  const auto to_id = engine_.endpoint(to);
  return send(engine_.endpoint(from), to_id, topics_.intern(topic),
              std::move(payload));
}

std::uint64_t Network::send(EndpointId from, EndpointId to, TopicId topic,
                            common::Payload payload) {
  if (to >= handlers_.size() || !handlers_[to]) {
    throw common::NetError("Network::send: unknown endpoint '" +
                           engine_.endpoint_name(to) + "'");
  }
  Envelope env;
  // Per-sender id: (sender rank, per-sender counter) — deterministic for
  // any shard/worker count, unlike a globally ordered counter.
  env.id = ((static_cast<std::uint64_t>(from) + 1) << 32) |
           engine_.next_counter(from);
  env.from = engine_.endpoint_name(from);
  env.to = engine_.endpoint_name(to);
  env.topic = topics_.name(topic);
  env.payload = std::move(payload);
  env.sent_at = engine_.now();

  StatsBucket& bkt = bucket();
  ++bkt.totals.messages_sent;
  bkt.totals.bytes_sent += env.payload.size();
  TopicStats& topic_stats = topic_slot(bkt, topic);
  ++topic_stats.messages_sent;
  topic_stats.bytes_sent += env.payload.size();

  // Adversary sees the message before channel effects.
  if (!adversaries_.empty()) {
    if (const auto adv = adversaries_.find(link_key(from, to));
        adv != adversaries_.end()) {
      AdversaryAction action = adv->second(env);
      switch (action.kind) {
        case AdversaryAction::Kind::kDrop:
          ++bkt.totals.messages_dropped_adversary;
          ++topic_stats.messages_dropped_adversary;
          return env.id;
        case AdversaryAction::Kind::kModify:
          env.payload = common::Payload(std::move(action.modified_payload));
          ++bkt.totals.messages_modified;
          break;
        case AdversaryAction::Kind::kPass:
          break;
      }
    }
  }

  // A cut link swallows anything entering it during the window.
  if (!partitions_.empty() && partitioned_ids(from, to, env.sent_at)) {
    ++bkt.totals.messages_dropped_partition;
    ++topic_stats.messages_dropped_partition;
    return env.id;
  }

  const LinkConfig& link = link_for(from, to);
  crypto::Drbg& rng = engine_.rng(from);
  if (link.loss_probability > 0.0 && rng.chance(link.loss_probability)) {
    ++bkt.totals.messages_dropped_loss;
    ++topic_stats.messages_dropped_loss;
    return env.id;
  }

  bool reordered = false;
  SimTime delay = sample_delay(link, env.payload.size(), rng, reordered);
  if (reordered) {
    ++bkt.totals.messages_reordered;
    ++topic_stats.messages_reordered;
  }
  if (delay < 1) delay = 1;  // lookahead floor: no zero-delay deliveries
  const std::uint64_t id = env.id;

  // Duplication: a second, independently delayed copy of the same envelope
  // (same id — the duplicate is indistinguishable on the wire). Copying the
  // envelope shares the payload buffer; no bytes are copied.
  if (link.duplicate_probability > 0.0 &&
      rng.chance(link.duplicate_probability)) {
    ++bkt.totals.messages_duplicated;
    ++topic_stats.messages_duplicated;
    bool copy_reordered = false;
    SimTime copy_delay =
        sample_delay(link, env.payload.size(), rng, copy_reordered);
    if (copy_reordered) {
      ++bkt.totals.messages_reordered;
      ++topic_stats.messages_reordered;
    }
    if (copy_delay < 1) copy_delay = 1;
    Envelope copy = env;
    copy.delivered_at = env.sent_at + copy_delay;
    engine_.post(to, from, copy.delivered_at,
                 [this, to, topic, e = std::move(copy)]() mutable {
                   deliver(to, topic, std::move(e));
                 });
  }
  env.delivered_at = env.sent_at + delay;
  engine_.post(to, from, env.delivered_at,
               [this, to, topic, e = std::move(env)]() mutable {
                 deliver(to, topic, std::move(e));
               });
  return id;
}

void Network::deliver(EndpointId to, TopicId topic, Envelope env) {
  StatsBucket& bkt = bucket();
  if (endpoint_down_id(to, env.delivered_at)) {
    // The host is down when the message arrives: lost, like a connection
    // refused. Timers keep firing — only traffic dies.
    ++bkt.totals.messages_dropped_endpoint_down;
    ++topic_slot(bkt, topic).messages_dropped_endpoint_down;
    return;
  }
  const Handler& handler = handlers_[to];
  if (!handler) return;
  ++bkt.totals.messages_delivered;
  bkt.totals.bytes_delivered += env.payload.size();
  TopicStats& topic_stats = topic_slot(bkt, topic);
  ++topic_stats.messages_delivered;
  topic_stats.bytes_delivered += env.payload.size();
  handler(env);
}

void Network::schedule(SimTime delay, TimerCallback callback) {
  engine_.post_timer(delay, std::move(callback));
}

void Network::post(const std::string& endpoint, SimTime delay,
                   TimerCallback callback) {
  if (delay < 0) delay = 0;
  const EndpointId id = engine_.endpoint(endpoint);
  engine_.post(id, runtime::kNoEndpoint, engine_.now() + delay,
               std::move(callback));
}

std::size_t Network::run(std::size_t max_events) {
  return engine_.run(max_events);
}

const NetworkStats& Network::stats() const {
  // Per-shard buckets are summed into one view; summation is commutative,
  // so the merge is deterministic regardless of which thread ran what.
  merged_stats_ = NetworkStats{};
  for (const StatsBucket& bkt : stats_buckets_) {
    const NetworkStats& t = bkt.totals;
    merged_stats_.messages_sent += t.messages_sent;
    merged_stats_.messages_delivered += t.messages_delivered;
    merged_stats_.messages_dropped_loss += t.messages_dropped_loss;
    merged_stats_.messages_dropped_adversary += t.messages_dropped_adversary;
    merged_stats_.messages_dropped_partition += t.messages_dropped_partition;
    merged_stats_.messages_dropped_endpoint_down +=
        t.messages_dropped_endpoint_down;
    merged_stats_.messages_duplicated += t.messages_duplicated;
    merged_stats_.messages_reordered += t.messages_reordered;
    merged_stats_.messages_modified += t.messages_modified;
    merged_stats_.bytes_sent += t.bytes_sent;
    merged_stats_.bytes_delivered += t.bytes_delivered;
  }
  const std::size_t topic_count = topics_.size();
  for (TopicId id = 0; id < topic_count; ++id) {
    TopicStats sum;
    for (const StatsBucket& bkt : stats_buckets_) {
      if (bkt.by_topic.size() <= id) continue;
      const TopicStats& t = bkt.by_topic[id];
      sum.messages_sent += t.messages_sent;
      sum.bytes_sent += t.bytes_sent;
      sum.messages_delivered += t.messages_delivered;
      sum.bytes_delivered += t.bytes_delivered;
      sum.messages_duplicated += t.messages_duplicated;
      sum.messages_reordered += t.messages_reordered;
      sum.messages_dropped_loss += t.messages_dropped_loss;
      sum.messages_dropped_adversary += t.messages_dropped_adversary;
      sum.messages_dropped_partition += t.messages_dropped_partition;
      sum.messages_dropped_endpoint_down += t.messages_dropped_endpoint_down;
    }
    const bool touched =
        sum.messages_sent || sum.messages_delivered ||
        sum.messages_duplicated || sum.messages_reordered ||
        sum.messages_dropped_loss || sum.messages_dropped_adversary ||
        sum.messages_dropped_partition || sum.messages_dropped_endpoint_down;
    if (touched) merged_stats_.by_topic[topics_.name(id)] = sum;
  }
  return merged_stats_;
}

}  // namespace tpnr::net
