#include "net/network.h"

namespace tpnr::net {

void Network::attach(const std::string& endpoint, Handler handler) {
  handlers_[endpoint] = std::move(handler);
}

void Network::set_link(const std::string& from, const std::string& to,
                       LinkConfig config) {
  links_[{from, to}] = config;
}

void Network::set_adversary(const std::string& from, const std::string& to,
                            Adversary adversary) {
  adversaries_[{from, to}] = std::move(adversary);
}

void Network::clear_adversary(const std::string& from, const std::string& to) {
  adversaries_.erase({from, to});
}

const LinkConfig& Network::link_for(const std::string& from,
                                    const std::string& to) const {
  const auto it = links_.find({from, to});
  return it == links_.end() ? default_link_ : it->second;
}

std::uint64_t Network::send(const std::string& from, const std::string& to,
                            const std::string& topic, Bytes payload) {
  if (!handlers_.contains(to)) {
    throw common::NetError("Network::send: unknown endpoint '" + to + "'");
  }
  Envelope env;
  env.id = next_envelope_id_++;
  env.from = from;
  env.to = to;
  env.topic = topic;
  env.payload = std::move(payload);
  env.sent_at = clock_.now();

  ++stats_.messages_sent;
  stats_.bytes_sent += env.payload.size();
  TopicStats& topic_stats = stats_.by_topic[env.topic];
  ++topic_stats.messages_sent;
  topic_stats.bytes_sent += env.payload.size();

  // Adversary sees the message before channel effects.
  if (const auto adv = adversaries_.find({from, to});
      adv != adversaries_.end()) {
    AdversaryAction action = adv->second(env);
    switch (action.kind) {
      case AdversaryAction::Kind::kDrop:
        ++stats_.messages_dropped_adversary;
        return env.id;
      case AdversaryAction::Kind::kModify:
        env.payload = std::move(action.modified_payload);
        ++stats_.messages_modified;
        break;
      case AdversaryAction::Kind::kPass:
        break;
    }
  }

  const LinkConfig& link = link_for(from, to);
  if (link.loss_probability > 0.0 && rng_.chance(link.loss_probability)) {
    ++stats_.messages_dropped_loss;
    return env.id;
  }

  SimTime delay = link.latency;
  if (link.jitter > 0) {
    delay += static_cast<SimTime>(
        rng_.uniform(static_cast<std::uint64_t>(link.jitter) + 1));
  }
  if (link.bandwidth_bytes_per_sec > 0) {
    delay += static_cast<SimTime>(env.payload.size()) * common::kSecond /
             static_cast<SimTime>(link.bandwidth_bytes_per_sec);
  }
  env.delivered_at = clock_.now() + delay;
  const std::uint64_t id = env.id;

  Event event;
  event.at = env.delivered_at;
  event.seq = next_event_seq_++;
  event.is_timer = false;
  event.envelope = std::move(env);
  events_.push(std::move(event));
  return id;
}

void Network::schedule(SimTime delay, TimerCallback callback) {
  Event event;
  event.at = clock_.now() + delay;
  event.seq = next_event_seq_++;
  event.is_timer = true;
  event.callback = std::move(callback);
  events_.push(std::move(event));
}

std::size_t Network::run(std::size_t max_events) {
  std::size_t processed = 0;
  while (!events_.empty() && processed < max_events) {
    Event event = events_.top();
    events_.pop();
    clock_.advance_to(event.at);
    if (event.is_timer) {
      event.callback();
    } else {
      const auto it = handlers_.find(event.envelope.to);
      if (it != handlers_.end()) {
        ++stats_.messages_delivered;
        stats_.bytes_delivered += event.envelope.payload.size();
        TopicStats& topic = stats_.by_topic[event.envelope.topic];
        ++topic.messages_delivered;
        topic.bytes_delivered += event.envelope.payload.size();
        it->second(event.envelope);
      }
    }
    ++processed;
  }
  return processed;
}

}  // namespace tpnr::net
