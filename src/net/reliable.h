// Reliable delivery over the lossy simulated network.
//
// A ReliableChannel wraps one endpoint's traffic with sequence numbers,
// positive acks, RTO-based retransmission (exponential backoff + jitter, a
// max-attempt cap that surfaces kUnreachable) and receiver-side dedup, so
// the layers above see at-most-once delivery of each message no matter how
// the link below loses, duplicates or reorders frames. Retransmission
// timers ride the network's event queue; all jitter comes from a seeded
// Drbg, so runs are bit-reproducible.
//
// Wire framing (common/serial canonical encoding):
//   data := u8(1) u64(seq) bytes(app_payload)   — on the caller's topic
//   ack  := u8(2) u64(seq)                      — on topic "rel.ack"
// Inbound envelopes that do not parse as either frame are handed to the
// delivery handler untouched, so a channel-using endpoint still interops
// with peers sending raw (unreliable) traffic.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "crypto/drbg.h"
#include "net/network.h"

namespace tpnr::net {

/// Retransmission policy. Defaults suit the simulator's millisecond links.
struct ReliableOptions {
  common::SimTime initial_rto = 200 * common::kMillisecond;
  double backoff = 2.0;  ///< RTO multiplier per retransmission
  common::SimTime max_rto = 8 * common::kSecond;
  /// Uniform extra in [0, rto_jitter] added to every armed timer, so
  /// synchronized senders do not retransmit in lockstep.
  common::SimTime rto_jitter = 25 * common::kMillisecond;
  std::size_t max_attempts = 8;  ///< total transmissions including the first
  /// Per-peer count of remembered received seqs; duplicates inside the
  /// window are suppressed exactly, older ones conservatively (seqs at or
  /// below the compaction floor count as seen).
  std::size_t dedup_window = 1024;
  bool trace = false;  ///< record a ChannelEvent timeline (examples, tests)
};

/// Fate of one send() as observable through status().
enum class DeliveryStatus : std::uint8_t {
  kPending = 0,   ///< in flight (or never submitted)
  kAcked,         ///< positively acknowledged by the peer
  kUnreachable,   ///< gave up after max_attempts transmissions
};

/// Per-channel delivery/retry accounting.
struct RetryStats {
  std::uint64_t accepted = 0;         ///< app messages submitted to send()
  std::uint64_t transmissions = 0;    ///< data frames put on the wire
  std::uint64_t retransmissions = 0;  ///< transmissions beyond each first
  std::uint64_t bytes_retransmitted = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t dup_acks = 0;  ///< acks for already-settled seqs
  /// Dup acks for seqs this sender had retransmitted: the retransmission
  /// was unnecessary (the original — or an earlier copy — got through).
  std::uint64_t spurious_retransmissions = 0;
  std::uint64_t dups_suppressed = 0;  ///< receiver-side duplicate data frames
  std::uint64_t unreachable = 0;      ///< sends that exhausted max_attempts
};

/// One entry of the optional channel timeline (ReliableOptions::trace).
struct ChannelEvent {
  enum class Kind : std::uint8_t {
    kSend = 1,
    kRetransmit,
    kAckSent,
    kAckReceived,
    kDupSuppressed,
    kUnreachable,
  };
  Kind kind = Kind::kSend;
  common::SimTime at = 0;
  std::string peer;
  std::uint64_t seq = 0;
  std::uint32_t attempt = 0;  ///< transmissions so far for this seq
};

std::string channel_event_name(ChannelEvent::Kind kind);

class ReliableChannel {
 public:
  using DeliverHandler = std::function<void(const Envelope&)>;
  /// Called once when a send exhausts max_attempts (peer, topic, seq).
  using UnreachableHandler = std::function<void(
      const std::string&, const std::string&, std::uint64_t)>;

  /// Does NOT attach to the network yet — call attach() with the upstream
  /// delivery handler first.
  ReliableChannel(Network& network, std::string endpoint, std::uint64_t seed,
                  ReliableOptions options = ReliableOptions{});

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  /// Registers this channel as the network handler for the endpoint; data
  /// frames are deduped, acked, unwrapped and passed to `handler` (with the
  /// envelope's payload replaced by the app payload).
  void attach(DeliverHandler handler);

  void set_unreachable_handler(UnreachableHandler handler) {
    unreachable_handler_ = std::move(handler);
  }

  /// Queues `payload` for reliable delivery; returns the channel sequence
  /// number (use with status()).
  std::uint64_t send(const std::string& to, const std::string& topic,
                     BytesView payload);

  [[nodiscard]] DeliveryStatus status(std::uint64_t seq) const;
  [[nodiscard]] const RetryStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<ChannelEvent>& trace() const noexcept {
    return trace_;
  }
  [[nodiscard]] const ReliableOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const std::string& endpoint() const noexcept {
    return endpoint_;
  }

  /// Topic acks travel on, so retransmit/ack overhead is attributable via
  /// net::TopicStats separately from app traffic.
  static constexpr const char* kAckTopic = "rel.ack";

 private:
  struct Pending {
    std::string to;             ///< peer name (events, unreachable handler)
    std::string topic;
    EndpointId to_id = 0;       ///< interned once; retransmits skip strings
    TopicId topic_id = 0;
    /// Encoded data frame, retransmitted byte-identically. COW: every
    /// transmission shares this buffer with the in-flight envelope.
    common::Payload frame;
    std::uint32_t attempts = 0;
    common::SimTime rto = 0;  ///< next backoff step
  };
  /// Receiver-side per-peer dedup state: `floor` plus the set of seen seqs
  /// above it; the set is compacted into the floor as it becomes contiguous
  /// and capped at dedup_window by raising the floor.
  struct PeerRecv {
    std::uint64_t floor = 0;  ///< every seq <= floor counts as seen
    std::set<std::uint64_t> seen;
  };

  void on_envelope(const Envelope& envelope);
  void transmit(std::uint64_t seq);
  void arm_timer(std::uint64_t seq, common::SimTime delay);
  void record(ChannelEvent::Kind kind, const std::string& peer,
              std::uint64_t seq, std::uint32_t attempt);
  bool note_received(const std::string& peer, std::uint64_t seq);

  Network* network_;
  std::string endpoint_;
  EndpointId self_id_;      ///< interned once in the constructor
  TopicId ack_topic_id_;
  crypto::Drbg rng_;
  ReliableOptions options_;
  DeliverHandler handler_;
  UnreachableHandler unreachable_handler_;
  RetryStats stats_;
  std::vector<ChannelEvent> trace_;
  std::map<std::uint64_t, Pending> pending_;
  /// Recently settled seqs -> whether they had been retransmitted (for
  /// dup-ack / spurious-retransmission accounting); bounded by dedup_window.
  std::map<std::uint64_t, bool> settled_;
  std::map<std::string, PeerRecv> recv_;
  std::set<std::uint64_t> unreachable_seqs_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace tpnr::net
