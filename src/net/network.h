// Discrete-event simulated network.
//
// Endpoints register handlers; send() stamps the message with link latency
// (plus size/bandwidth serialization delay and optional jitter) and enqueues
// a delivery event; run() drains events in timestamp order, advancing the
// shared SimClock. Timers share the same event queue, which is how protocol
// time limits (§5.5) are driven.
//
// An adversary can be interposed on any link: it sees every traversing
// envelope and may pass, drop, modify, or inject — the basis of the §5
// attack harness. All randomness is drawn from a seeded Drbg, so runs are
// bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/error.h"
#include "crypto/drbg.h"

namespace tpnr::net {

using common::Bytes;
using common::BytesView;
using common::SimTime;

/// A message in flight or delivered.
struct Envelope {
  std::uint64_t id = 0;
  std::string from;
  std::string to;
  std::string topic;  ///< free-form dispatch hint ("nr.msg", "rest.req", ...)
  Bytes payload;
  SimTime sent_at = 0;
  SimTime delivered_at = 0;
};

/// Per-link quality parameters. All probabilistic faults are sampled from
/// the network's seeded Drbg, in a fixed order per send (loss, jitter,
/// spike, reorder, duplicate), so runs are bit-reproducible.
struct LinkConfig {
  SimTime latency = 5 * common::kMillisecond;
  SimTime jitter = 0;                      ///< uniform extra in [0, jitter]
  double loss_probability = 0.0;           ///< independent per message
  std::uint64_t bandwidth_bytes_per_sec = 0;  ///< 0 = infinite
  /// Independent per message: deliver a second copy of the envelope, with
  /// its own freshly sampled delay.
  double duplicate_probability = 0.0;
  /// Independent per message: add a uniform extra delay in
  /// [1, reorder_window], which can violate FIFO relative to later sends.
  double reorder_probability = 0.0;
  SimTime reorder_window = 50 * common::kMillisecond;
  /// Independent per message: add `delay_spike` to the delivery delay
  /// (models a congestion burst / bufferbloat event).
  double delay_spike_probability = 0.0;
  SimTime delay_spike = 0;
};

/// Decision returned by an adversary for each observed envelope.
struct AdversaryAction {
  enum class Kind { kPass, kDrop, kModify } kind = Kind::kPass;
  Bytes modified_payload;  ///< used when kind == kModify
};

/// Interposed man-in-the-link. `on_message` is consulted for every envelope
/// crossing the link it is attached to; `inject` (via Network::send) can add
/// wholly new traffic.
using Adversary = std::function<AdversaryAction(const Envelope&)>;

/// Per-topic traffic counters: experiments that mix workloads on one network
/// (e.g. protocol traffic on "nr" vs audit traffic on "nr.audit") read these
/// to attribute overhead to the right subsystem.
struct TopicStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t messages_reordered = 0;
  std::uint64_t messages_dropped_loss = 0;
  std::uint64_t messages_dropped_adversary = 0;
  std::uint64_t messages_dropped_partition = 0;
  std::uint64_t messages_dropped_endpoint_down = 0;
};

/// Statistics for experiments. Conservation invariant (asserted in tests):
///   sent + duplicated ==
///       delivered + dropped_loss + dropped_adversary
///                 + dropped_partition + dropped_endpoint_down
/// once the event queue has drained (duplicates are extra deliveries that
/// were never counted as sent; every copy either lands or hits exactly one
/// drop bucket).
struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped_loss = 0;
  std::uint64_t messages_dropped_adversary = 0;
  std::uint64_t messages_dropped_partition = 0;
  std::uint64_t messages_dropped_endpoint_down = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t messages_reordered = 0;
  std::uint64_t messages_modified = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
  std::map<std::string, TopicStats> by_topic;

  /// Counters for `topic` (zeros if the topic never carried traffic).
  [[nodiscard]] TopicStats topic(const std::string& name) const {
    const auto it = by_topic.find(name);
    return it == by_topic.end() ? TopicStats{} : it->second;
  }
};

class Network {
 public:
  using Handler = std::function<void(const Envelope&)>;
  using TimerCallback = std::function<void()>;

  explicit Network(std::uint64_t seed = 1)
      : rng_(seed) {}

  common::SimClock& clock() noexcept { return clock_; }
  [[nodiscard]] SimTime now() const noexcept { return clock_.now(); }
  [[nodiscard]] const NetworkStats& stats() const noexcept { return stats_; }

  /// Registers an endpoint; replaces the handler if it already exists.
  void attach(const std::string& endpoint, Handler handler);

  /// Configures the directed link from -> to (default link otherwise).
  void set_link(const std::string& from, const std::string& to,
                LinkConfig config);

  /// Default config for links without an explicit entry.
  void set_default_link(LinkConfig config) { default_link_ = config; }

  /// Interposes an adversary on the directed link from -> to.
  void set_adversary(const std::string& from, const std::string& to,
                     Adversary adversary);
  void clear_adversary(const std::string& from, const std::string& to);

  /// Cuts the (bidirectional) a <-> b link for absolute sim-time window
  /// [from, until): messages ENTERING either direction during the window
  /// are dropped (counted as messages_dropped_partition). Windows may
  /// overlap; each call adds one.
  void partition(const std::string& a, const std::string& b, SimTime from,
                 SimTime until);
  [[nodiscard]] bool partitioned(const std::string& a, const std::string& b,
                                 SimTime at) const;

  /// Marks `endpoint` down for absolute sim-time window [from, until):
  /// messages ARRIVING at a down endpoint are dropped (counted as
  /// messages_dropped_endpoint_down). `schedule` timers are unaffected —
  /// an outage loses traffic, not the simulation's clockwork.
  void set_endpoint_down(const std::string& endpoint, SimTime from,
                         SimTime until);
  [[nodiscard]] bool endpoint_down(const std::string& endpoint,
                                   SimTime at) const;

  /// Queues a message; throws NetError if `to` was never attached.
  /// Returns the envelope id (also when the message will later be dropped).
  std::uint64_t send(const std::string& from, const std::string& to,
                     const std::string& topic, Bytes payload);

  /// Schedules `callback` to fire at now() + delay.
  void schedule(SimTime delay, TimerCallback callback);

  /// Processes events until the queue is empty (or `max_events` is hit).
  /// Returns the number of events processed.
  std::size_t run(std::size_t max_events = 1 << 20);

  /// True if no events are pending.
  [[nodiscard]] bool idle() const noexcept { return events_.empty(); }

 private:
  struct Event {
    SimTime at = 0;
    std::uint64_t seq = 0;  ///< FIFO tie-break
    bool is_timer = false;
    Envelope envelope;       // valid when !is_timer
    TimerCallback callback;  // valid when is_timer
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  struct PartitionWindow {
    std::string a;
    std::string b;
    SimTime from = 0;
    SimTime until = 0;
  };

  [[nodiscard]] const LinkConfig& link_for(const std::string& from,
                                           const std::string& to) const;
  /// Samples one delivery delay for `link` (jitter + spike + reorder extra);
  /// sets `reordered` when the reorder extra was applied.
  [[nodiscard]] SimTime sample_delay(const LinkConfig& link,
                                     std::size_t payload_bytes,
                                     bool& reordered);
  void enqueue_delivery(Envelope envelope, SimTime at);

  common::SimClock clock_;
  crypto::Drbg rng_;
  NetworkStats stats_;
  LinkConfig default_link_;
  std::map<std::string, Handler> handlers_;
  std::map<std::pair<std::string, std::string>, LinkConfig> links_;
  std::map<std::pair<std::string, std::string>, Adversary> adversaries_;
  std::vector<PartitionWindow> partitions_;
  std::map<std::string, std::vector<std::pair<SimTime, SimTime>>>
      down_windows_;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::uint64_t next_envelope_id_ = 1;
  std::uint64_t next_event_seq_ = 1;
};

}  // namespace tpnr::net
