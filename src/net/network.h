// Simulated network: a transport *policy* layer over the sharded
// deterministic runtime (runtime::Engine).
//
// The engine owns event queues, timers, shards, worker threads and
// per-endpoint random streams; this layer owns everything that makes a
// network a network — link quality (latency, jitter, bandwidth, loss,
// duplication, reordering, delay spikes), partitions, endpoint down
// windows, interposed adversaries, and traffic statistics.
//
// Endpoints register handlers; send() samples the link's fault model from
// the SENDER's deterministic Drbg stream and posts a delivery event on the
// receiver's shard; run() drains events in deterministic merge order,
// advancing the shared SimClock. Timers share the same event loop, which is
// how protocol time limits (§5.5) are driven.
//
// An adversary can be interposed on any link: it sees every traversing
// envelope and may pass, drop, modify, or inject — the basis of the §5
// attack harness. All randomness is seeded, so runs are bit-reproducible —
// for ANY shard count and worker count (see runtime/engine.h).
//
// Hot path: endpoint and topic names are interned to dense ids once;
// per-send work is id-indexed vector/flat-hash access, never a
// std::map<std::string, ...> probe. Latency-critical callers can cache ids
// (endpoint_id(), topic_id()) and use the id-based send() overload to skip
// string hashing entirely.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/error.h"
#include "common/payload.h"
#include "runtime/engine.h"

namespace tpnr::net {

using common::Bytes;
using common::BytesView;
using common::SimTime;
using EndpointId = runtime::EndpointId;
using TopicId = runtime::NameId;

/// A message in flight or delivered. The payload is a copy-on-write
/// common::Payload: duplicates, retransmissions, and fan-outs share one
/// allocation instead of copying the bytes.
struct Envelope {
  std::uint64_t id = 0;
  std::string from;
  std::string to;
  std::string topic;  ///< free-form dispatch hint ("nr.msg", "rest.req", ...)
  common::Payload payload;
  SimTime sent_at = 0;
  SimTime delivered_at = 0;
};

/// Per-link quality parameters. All probabilistic faults are sampled from
/// the sending endpoint's seeded Drbg stream, in a fixed order per send
/// (loss, jitter, spike, reorder, duplicate), so runs are bit-reproducible
/// regardless of shard or worker count.
struct LinkConfig {
  SimTime latency = 5 * common::kMillisecond;
  SimTime jitter = 0;                      ///< uniform extra in [0, jitter]
  double loss_probability = 0.0;           ///< independent per message
  std::uint64_t bandwidth_bytes_per_sec = 0;  ///< 0 = infinite
  /// Independent per message: deliver a second copy of the envelope, with
  /// its own freshly sampled delay.
  double duplicate_probability = 0.0;
  /// Independent per message: add a uniform extra delay in
  /// [1, reorder_window], which can violate FIFO relative to later sends.
  double reorder_probability = 0.0;
  SimTime reorder_window = 50 * common::kMillisecond;
  /// Independent per message: add `delay_spike` to the delivery delay
  /// (models a congestion burst / bufferbloat event).
  double delay_spike_probability = 0.0;
  SimTime delay_spike = 0;
};

/// Decision returned by an adversary for each observed envelope.
struct AdversaryAction {
  enum class Kind { kPass, kDrop, kModify } kind = Kind::kPass;
  Bytes modified_payload;  ///< used when kind == kModify
};

/// Interposed man-in-the-link. `on_message` is consulted for every envelope
/// crossing the link it is attached to; `inject` (via Network::send) can add
/// wholly new traffic.
using Adversary = std::function<AdversaryAction(const Envelope&)>;

/// Per-topic traffic counters: experiments that mix workloads on one network
/// (e.g. protocol traffic on "nr" vs audit traffic on "nr.audit") read these
/// to attribute overhead to the right subsystem.
struct TopicStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t messages_reordered = 0;
  std::uint64_t messages_dropped_loss = 0;
  std::uint64_t messages_dropped_adversary = 0;
  std::uint64_t messages_dropped_partition = 0;
  std::uint64_t messages_dropped_endpoint_down = 0;
};

/// Statistics for experiments. Conservation invariant (asserted in tests):
///   sent + duplicated ==
///       delivered + dropped_loss + dropped_adversary
///                 + dropped_partition + dropped_endpoint_down
/// once the event queue has drained (duplicates are extra deliveries that
/// were never counted as sent; every copy either lands or hits exactly one
/// drop bucket).
struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped_loss = 0;
  std::uint64_t messages_dropped_adversary = 0;
  std::uint64_t messages_dropped_partition = 0;
  std::uint64_t messages_dropped_endpoint_down = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t messages_reordered = 0;
  std::uint64_t messages_modified = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
  std::map<std::string, TopicStats> by_topic;

  /// Counters for `topic` (zeros if the topic never carried traffic).
  [[nodiscard]] TopicStats topic(const std::string& name) const {
    const auto it = by_topic.find(name);
    return it == by_topic.end() ? TopicStats{} : it->second;
  }
};

/// Sharding/threading knobs, forwarded to the runtime engine. The default
/// (1 shard, 1 worker) is the classic serial simulator; any combination
/// produces bit-identical protocol outcomes for the same seed.
struct NetworkOptions {
  std::uint32_t shards = 1;
  std::uint32_t workers = 1;
  /// Forwarded to EngineOptions::use_timer_wheel: hierarchical timer wheel
  /// (default) vs the legacy per-shard binary heap. Same pop order either
  /// way; the knob exists for A/B runs (TPNR_TIMER_WHEEL=0) and tests.
  bool use_timer_wheel = true;
};

class Network {
 public:
  using Handler = std::function<void(const Envelope&)>;
  using TimerCallback = std::function<void()>;

  explicit Network(std::uint64_t seed = 1,
                   NetworkOptions options = NetworkOptions{});

  common::SimClock& clock() noexcept { return engine_.clock(); }
  /// Current sim-time: the executing event's timestamp inside a handler or
  /// timer, the global high-watermark outside.
  [[nodiscard]] SimTime now() const { return engine_.now(); }
  /// Merged view of per-shard counters. Call from driver code (between
  /// run()s), not from inside handlers running on worker threads.
  [[nodiscard]] const NetworkStats& stats() const;

  /// The underlying sharded runtime (shard/worker introspection).
  [[nodiscard]] runtime::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] const runtime::Engine& engine() const noexcept {
    return engine_;
  }

  /// Registers an endpoint; replaces the handler if it already exists.
  void attach(const std::string& endpoint, Handler handler);

  /// Dense id for an endpoint name (registers it if new). Cache it to skip
  /// string hashing on the send hot path.
  EndpointId endpoint_id(const std::string& endpoint) {
    return engine_.endpoint(endpoint);
  }
  /// Dense id for a topic name (interns it if new).
  TopicId topic_id(const std::string& topic) { return topics_.intern(topic); }

  /// Configures the directed link from -> to (default link otherwise).
  void set_link(const std::string& from, const std::string& to,
                LinkConfig config);

  /// Default config for links without an explicit entry.
  void set_default_link(LinkConfig config);

  /// Interposes an adversary on the directed link from -> to.
  void set_adversary(const std::string& from, const std::string& to,
                     Adversary adversary);
  void clear_adversary(const std::string& from, const std::string& to);

  /// Cuts the (bidirectional) a <-> b link for absolute sim-time window
  /// [from, until): messages ENTERING either direction during the window
  /// are dropped (counted as messages_dropped_partition). Windows may
  /// overlap; each call adds one.
  void partition(const std::string& a, const std::string& b, SimTime from,
                 SimTime until);
  [[nodiscard]] bool partitioned(const std::string& a, const std::string& b,
                                 SimTime at) const;

  /// Marks `endpoint` down for absolute sim-time window [from, until):
  /// messages ARRIVING at a down endpoint are dropped (counted as
  /// messages_dropped_endpoint_down). `schedule` timers are unaffected —
  /// an outage loses traffic, not the simulation's clockwork.
  void set_endpoint_down(const std::string& endpoint, SimTime from,
                         SimTime until);
  [[nodiscard]] bool endpoint_down(const std::string& endpoint,
                                   SimTime at) const;

  /// Queues a message; throws NetError if `to` was never attached.
  /// Returns the envelope id (also when the message will later be dropped).
  /// Envelope ids are per-sender deterministic: (sender rank, counter).
  std::uint64_t send(const std::string& from, const std::string& to,
                     const std::string& topic, common::Payload payload);

  /// Hot-path overload: ids were interned up front, the payload is shared.
  std::uint64_t send(EndpointId from, EndpointId to, TopicId topic,
                     common::Payload payload);

  /// Schedules `callback` to fire at now() + delay. Inside a handler or
  /// timer the new timer binds to the executing endpoint's shard; from
  /// driver code it runs serially between rounds.
  void schedule(SimTime delay, TimerCallback callback);

  /// Schedules `callback` to fire at now() + delay in `endpoint`'s execution
  /// context — on its shard, with now()/sends/timers bound to it. This is
  /// how drivers inject per-endpoint work (e.g. a client submitting
  /// transactions) so it parallelizes across shards instead of executing
  /// serially between rounds like schedule(). Ordering is deterministic:
  /// same-time posts run in call order, independent of shard count.
  void post(const std::string& endpoint, SimTime delay,
            TimerCallback callback);

  /// Processes events until the queue is empty (or `max_events` is hit).
  /// Returns the number of events processed (exact in serial mode, checked
  /// at round boundaries when worker threads are enabled).
  std::size_t run(std::size_t max_events = 1 << 20);

  /// True if no events are pending.
  [[nodiscard]] bool idle() const { return engine_.idle(); }

 private:
  struct PartitionWindow {
    EndpointId a = 0;
    EndpointId b = 0;
    SimTime from = 0;
    SimTime until = 0;
  };

  /// Per-shard statistics bucket (+1 external bucket for driver context).
  /// Each bucket is only written by the thread executing that shard, then
  /// summed in stats() — order-independent, so merging is deterministic.
  struct StatsBucket {
    NetworkStats totals;                ///< by_topic left empty
    std::vector<TopicStats> by_topic;   ///< indexed by TopicId
  };

  static std::uint64_t link_key(EndpointId from, EndpointId to) noexcept {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }
  [[nodiscard]] const LinkConfig& link_for(EndpointId from,
                                           EndpointId to) const;
  [[nodiscard]] bool partitioned_ids(EndpointId a, EndpointId b,
                                     SimTime at) const;
  [[nodiscard]] bool endpoint_down_id(EndpointId endpoint, SimTime at) const;
  /// Samples one delivery delay for `link` (jitter + spike + reorder extra)
  /// from `rng`; sets `reordered` when the reorder extra was applied.
  [[nodiscard]] static SimTime sample_delay(const LinkConfig& link,
                                            std::size_t payload_bytes,
                                            crypto::Drbg& rng,
                                            bool& reordered);
  TopicStats& topic_slot(StatsBucket& bucket, TopicId topic) const;
  StatsBucket& bucket();
  void deliver(EndpointId to, TopicId topic, Envelope env);
  void recompute_lookahead();

  runtime::Engine engine_;
  runtime::NameInterner topics_;
  LinkConfig default_link_;
  std::vector<Handler> handlers_;  ///< indexed by EndpointId
  std::unordered_map<std::uint64_t, LinkConfig> links_;
  std::unordered_map<std::uint64_t, Adversary> adversaries_;
  std::vector<PartitionWindow> partitions_;
  std::vector<std::vector<std::pair<SimTime, SimTime>>> down_windows_;
  std::vector<StatsBucket> stats_buckets_;  ///< shards + 1 external
  mutable NetworkStats merged_stats_;
};

}  // namespace tpnr::net
