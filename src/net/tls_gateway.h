// TlsGateway — the "secure HTTP connection" of §2.2, as a composable piece:
// clients establish a SecureChannel to the gateway (certificate-checked on
// both sides) and exchange application messages as sealed records; the
// gateway decrypts, hands the plaintext to an application handler (e.g. an
// AzureRestService), and seals the response back.
//
// The point of modelling this explicitly is the paper's: the channel gives
// per-session confidentiality and integrity, and precisely nothing about
// what the application does with the bytes at rest afterwards.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "net/secure_channel.h"

namespace tpnr::net {

class TlsGateway {
 public:
  /// Application handler: plaintext request in, plaintext response out.
  using AppHandler = std::function<Bytes(BytesView)>;

  TlsGateway(pki::Identity& server, const pki::CertificateAuthority& ca,
             AppHandler handler);

  /// Performs the handshake for a new client connection; returns the
  /// connection id. Throws AuthError on certificate failure.
  std::uint64_t connect(const pki::Identity& client, common::SimTime now,
                        crypto::Drbg& rng);

  /// One round trip over the connection: the request is sealed client-side,
  /// opened at the gateway, answered by the handler, sealed server-side and
  /// opened client-side. Throws CryptoError if any record fails.
  Bytes round_trip(std::uint64_t connection_id, BytesView plaintext_request,
                   crypto::Drbg& rng);

  /// Raw record interface, for tests that tamper in flight: produce the
  /// client's sealed record...
  Bytes client_seal(std::uint64_t connection_id, BytesView plaintext,
                    crypto::Drbg& rng);
  /// ...deliver (a possibly modified copy of) it to the gateway and get the
  /// sealed response...
  Bytes gateway_process(std::uint64_t connection_id, BytesView record,
                        crypto::Drbg& rng);
  /// ...and open the response client-side.
  Bytes client_open(std::uint64_t connection_id, BytesView record);

  [[nodiscard]] std::size_t connection_count() const noexcept {
    return connections_.size();
  }

 private:
  struct Connection {
    std::unique_ptr<SecureChannel> client_side;
    std::unique_ptr<SecureChannel> server_side;
  };

  pki::Identity* server_;
  const pki::CertificateAuthority* ca_;
  AppHandler handler_;
  std::map<std::uint64_t, Connection> connections_;
  std::uint64_t next_connection_ = 1;
};

}  // namespace tpnr::net
