// SecureChannel — the library's stand-in for the SSL sessions the paper
// says today's platforms rely on (§1, §2). It provides exactly what SSL
// provides and nothing more: per-session confidentiality + integrity between
// two authenticated endpoints. The whole point of the reproduction (Fig. 5)
// is that this per-session guarantee does NOT protect data at rest between
// sessions.
//
// Handshake (signed ephemeral exchange, one round trip):
//   client -> server: client_hello  = nonce_c || cert_c
//   server -> client: server_hello  = nonce_s || cert_s ||
//                                     Enc_c{pre_master} || Sign_s(transcript)
//   both derive: master = HMAC(pre_master, "master" || nonce_c || nonce_s)
// Records: AEAD(master) with direction + per-direction sequence number bound
// into the associated data, so in-channel replay and reflection are
// detected.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "crypto/aead.h"
#include "crypto/drbg.h"
#include "pki/identity.h"

namespace tpnr::net {

using common::Bytes;
using common::BytesView;

/// One side of an established channel.
class SecureChannel {
 public:
  enum class Role { kClient, kServer };

  /// Runs the full handshake locally (the network hop is simulated by the
  /// caller passing the hello blobs through whatever transport it models).
  /// Throws CryptoError / AuthError if certificate validation or any
  /// signature fails.
  struct Pair {
    std::unique_ptr<SecureChannel> client;
    std::unique_ptr<SecureChannel> server;
    Bytes client_hello;  ///< transcript artifacts, for inspection/attack tests
    Bytes server_hello;
  };
  static Pair establish(const pki::Identity& client,
                        const pki::Identity& server,
                        const pki::CertificateAuthority& ca,
                        common::SimTime now, crypto::Drbg& rng);

  /// Encrypts one record in this direction.
  Bytes seal(BytesView plaintext, crypto::Drbg& rng);

  /// Decrypts and verifies the peer's next record; enforces the sequence
  /// number (throws CryptoError on replay, reorder or tamper).
  Bytes open(BytesView record);

  [[nodiscard]] Role role() const noexcept { return role_; }
  [[nodiscard]] std::uint64_t send_seq() const noexcept { return send_seq_; }
  [[nodiscard]] std::uint64_t recv_seq() const noexcept { return recv_seq_; }

 private:
  SecureChannel(Role role, BytesView master_secret);

  [[nodiscard]] Bytes aad(bool client_to_server, std::uint64_t seq) const;

  Role role_;
  crypto::Aead aead_;
  std::uint64_t send_seq_ = 0;
  std::uint64_t recv_seq_ = 0;
};

}  // namespace tpnr::net
