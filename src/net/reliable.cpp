#include "net/reliable.h"

#include "common/serial.h"

namespace tpnr::net {

namespace {
constexpr std::uint8_t kDataFrame = 1;
constexpr std::uint8_t kAckFrame = 2;
}  // namespace

std::string channel_event_name(ChannelEvent::Kind kind) {
  switch (kind) {
    case ChannelEvent::Kind::kSend:
      return "send";
    case ChannelEvent::Kind::kRetransmit:
      return "retransmit";
    case ChannelEvent::Kind::kAckSent:
      return "ack-sent";
    case ChannelEvent::Kind::kAckReceived:
      return "ack-received";
    case ChannelEvent::Kind::kDupSuppressed:
      return "dup-suppressed";
    case ChannelEvent::Kind::kUnreachable:
      return "unreachable";
  }
  return "unknown";
}

ReliableChannel::ReliableChannel(Network& network, std::string endpoint,
                                 std::uint64_t seed, ReliableOptions options)
    : network_(&network),
      endpoint_(std::move(endpoint)),
      self_id_(network.endpoint_id(endpoint_)),
      ack_topic_id_(network.topic_id(kAckTopic)),
      rng_(seed),
      options_(options) {}

void ReliableChannel::attach(DeliverHandler handler) {
  handler_ = std::move(handler);
  network_->attach(endpoint_, [this](const Envelope& envelope) {
    on_envelope(envelope);
  });
}

std::uint64_t ReliableChannel::send(const std::string& to,
                                    const std::string& topic,
                                    BytesView payload) {
  const std::uint64_t seq = next_seq_++;
  common::BinaryWriter frame;
  frame.u8(kDataFrame);
  frame.u64(seq);
  frame.bytes(payload);

  Pending pending;
  pending.to = to;
  pending.topic = topic;
  pending.to_id = network_->endpoint_id(to);
  pending.topic_id = network_->topic_id(topic);
  pending.frame = frame.take();
  pending.rto = options_.initial_rto;
  pending_[seq] = std::move(pending);
  ++stats_.accepted;
  transmit(seq);
  return seq;
}

DeliveryStatus ReliableChannel::status(std::uint64_t seq) const {
  if (settled_.contains(seq)) return DeliveryStatus::kAcked;
  if (unreachable_seqs_.contains(seq)) return DeliveryStatus::kUnreachable;
  return DeliveryStatus::kPending;
}

void ReliableChannel::transmit(std::uint64_t seq) {
  const auto it = pending_.find(seq);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  ++p.attempts;
  ++stats_.transmissions;
  if (p.attempts > 1) {
    ++stats_.retransmissions;
    stats_.bytes_retransmitted += p.frame.size();
  }
  record(p.attempts > 1 ? ChannelEvent::Kind::kRetransmit
                        : ChannelEvent::Kind::kSend,
         p.to, seq, p.attempts);
  network_->send(self_id_, p.to_id, p.topic_id, p.frame);

  common::SimTime delay = p.rto;
  if (options_.rto_jitter > 0) {
    delay += static_cast<common::SimTime>(rng_.uniform(
        static_cast<std::uint64_t>(options_.rto_jitter) + 1));
  }
  p.rto = static_cast<common::SimTime>(static_cast<double>(p.rto) *
                                       options_.backoff);
  if (p.rto > options_.max_rto) p.rto = options_.max_rto;
  arm_timer(seq, delay);
}

void ReliableChannel::arm_timer(std::uint64_t seq, common::SimTime delay) {
  network_->schedule(delay, [this, seq] {
    const auto it = pending_.find(seq);
    if (it == pending_.end()) return;  // acked meanwhile
    if (it->second.attempts >= static_cast<std::uint32_t>(
                                   options_.max_attempts)) {
      ++stats_.unreachable;
      record(ChannelEvent::Kind::kUnreachable, it->second.to, seq,
             it->second.attempts);
      Pending dead = std::move(it->second);
      pending_.erase(it);
      unreachable_seqs_.insert(seq);
      if (unreachable_handler_) {
        unreachable_handler_(dead.to, dead.topic, seq);
      }
      return;
    }
    transmit(seq);
  });
}

bool ReliableChannel::note_received(const std::string& peer,
                                    std::uint64_t seq) {
  PeerRecv& state = recv_[peer];
  if (seq <= state.floor || state.seen.contains(seq)) return false;
  state.seen.insert(seq);
  // Compact contiguous prefixes into the floor, then cap the window.
  while (state.seen.contains(state.floor + 1)) {
    ++state.floor;
    state.seen.erase(state.floor);
  }
  while (state.seen.size() > options_.dedup_window) {
    const std::uint64_t lowest = *state.seen.begin();
    if (lowest > state.floor) state.floor = lowest;
    state.seen.erase(state.seen.begin());
  }
  return true;
}

void ReliableChannel::on_envelope(const Envelope& envelope) {
  std::uint8_t kind = 0;
  std::uint64_t seq = 0;
  Bytes app_payload;
  bool framed = true;
  try {
    common::BinaryReader r(envelope.payload);
    kind = r.u8();
    seq = r.u64();
    if (kind == kDataFrame) {
      app_payload = r.bytes();
      r.expect_done();
    } else if (kind == kAckFrame) {
      r.expect_done();
    } else {
      framed = false;
    }
  } catch (const common::SerialError&) {
    framed = false;
  }
  if (!framed) {
    // Raw traffic from a peer without a channel: pass through untouched.
    if (handler_) handler_(envelope);
    return;
  }

  if (kind == kAckFrame) {
    ++stats_.acks_received;
    record(ChannelEvent::Kind::kAckReceived, envelope.from, seq, 0);
    const auto it = pending_.find(seq);
    if (it == pending_.end()) {
      ++stats_.dup_acks;
      const auto settled = settled_.find(seq);
      if (settled != settled_.end() && settled->second) {
        ++stats_.spurious_retransmissions;
      }
      return;
    }
    settled_[seq] = it->second.attempts > 1;
    while (settled_.size() > options_.dedup_window) {
      settled_.erase(settled_.begin());
    }
    pending_.erase(it);
    return;
  }

  // Data frame: ack EVERY copy (our previous ack may have been lost), but
  // deliver at most once.
  common::BinaryWriter ack;
  ack.u8(kAckFrame);
  ack.u64(seq);
  ++stats_.acks_sent;
  record(ChannelEvent::Kind::kAckSent, envelope.from, seq, 0);
  network_->send(self_id_, network_->endpoint_id(envelope.from),
                 ack_topic_id_, ack.take());

  if (!note_received(envelope.from, seq)) {
    ++stats_.dups_suppressed;
    record(ChannelEvent::Kind::kDupSuppressed, envelope.from, seq, 0);
    return;
  }
  if (handler_) {
    // Field-by-field: copying the whole envelope would pointlessly alias the
    // framed payload we are about to replace.
    Envelope unwrapped;
    unwrapped.id = envelope.id;
    unwrapped.from = envelope.from;
    unwrapped.to = envelope.to;
    unwrapped.topic = envelope.topic;
    unwrapped.sent_at = envelope.sent_at;
    unwrapped.delivered_at = envelope.delivered_at;
    unwrapped.payload = std::move(app_payload);
    handler_(unwrapped);
  }
}

void ReliableChannel::record(ChannelEvent::Kind kind, const std::string& peer,
                             std::uint64_t seq, std::uint32_t attempt) {
  if (!options_.trace) return;
  ChannelEvent event;
  event.kind = kind;
  event.at = network_->now();
  event.peer = peer;
  event.seq = seq;
  event.attempt = attempt;
  trace_.push_back(std::move(event));
}

}  // namespace tpnr::net
