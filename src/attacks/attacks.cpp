#include "attacks/attacks.h"

#include <memory>

#include "common/serial.h"
#include "consistency/arbitration.h"
#include "consistency/client.h"
#include "consistency/provider.h"
#include "crypto/hash.h"
#include "net/network.h"
#include "nr/client.h"
#include "nr/evidence.h"
#include "nr/provider.h"
#include "pki/authority.h"
#include "pki/identity.h"

namespace tpnr::attacks {

namespace {

using common::Bytes;
using common::BytesView;

std::string attack_name_impl(AttackKind kind) {
  switch (kind) {
    case AttackKind::kManInTheMiddle:
      return "man-in-the-middle";
    case AttackKind::kReflection:
      return "reflection";
    case AttackKind::kInterleaving:
      return "interleaving";
    case AttackKind::kReplay:
      return "replay";
    case AttackKind::kTimeliness:
      return "timeliness";
    case AttackKind::kEquivocation:
      return "equivocation";
  }
  return "unknown";
}

/// RSA keygen dominates scenario setup; share one deterministic key pool
/// across all scenarios (fresh protocol state is rebuilt per run).
const pki::Identity& pooled_identity(const std::string& name) {
  static const auto* pool = [] {
    auto* identities = new std::map<std::string, pki::Identity>();
    crypto::Drbg rng(std::uint64_t{0xa77acc});
    for (const char* id : {"alice", "bob", "ttp", "mallory", "carol"}) {
      identities->emplace(id, pki::Identity(id, 1024, rng));
    }
    return identities;
  }();
  return pool->at(name);
}

/// One disposable protocol world.
struct World {
  explicit World(std::uint64_t seed)
      : network(seed),
        rng(seed ^ 0x5eedf00dull),
        alice_id(pooled_identity("alice")),
        bob_id(pooled_identity("bob")),
        mallory_id(pooled_identity("mallory")) {}

  net::Network network;
  crypto::Drbg rng;
  pki::Identity alice_id;
  pki::Identity bob_id;
  pki::Identity mallory_id;
  std::unique_ptr<nr::ClientActor> alice;
  std::unique_ptr<nr::ProviderActor> bob;

  void spawn_actors(nr::ClientOptions client_options = nr::ClientOptions{}) {
    alice = std::make_unique<nr::ClientActor>("alice", network, alice_id, rng,
                                              client_options);
    bob = std::make_unique<nr::ProviderActor>("bob", network, bob_id, rng);
    bob->trust_peer("alice", alice_id.public_key());
  }
};

Bytes sample_data(crypto::Drbg& rng) { return rng.bytes(512); }

// ----------------------------------------------------------------- replay --

AttackReport run_replay(bool defended, std::uint64_t seed) {
  AttackReport report;
  report.kind = AttackKind::kReplay;
  report.defended = defended;

  World world(seed);
  nr::ClientOptions options;
  options.auto_resolve = false;
  // A generous window keeps the timeliness defence (§5.5) out of the way:
  // this scenario isolates the replay defences.
  options.reply_window = 10 * common::kMinute;
  world.spawn_actors(options);
  world.alice->trust_peer("bob", world.bob_id.public_key());
  if (!defended) {
    // §5.4 names the nonce as the defence; the sequence check would also
    // catch a verbatim replay, so both go off in the weakened run.
    nr::ScreeningPolicy weak;
    weak.check_nonce = false;
    weak.check_sequence = false;
    world.bob->set_screening_policy(weak);
  }

  // Record the store request off the wire.
  Bytes recorded;
  world.network.set_adversary(
      "alice", "bob", [&recorded](const net::Envelope& envelope) {
        if (recorded.empty()) recorded = envelope.payload.to_bytes();
        return net::AdversaryAction{};
      });

  const Bytes data = sample_data(world.rng);
  world.alice->store("bob", "", "obj", data);
  world.network.run();
  const std::uint64_t receipts_before = world.bob->stats().sent;

  // Attack 1: verbatim replay.
  world.network.send("mallory", "bob", "nr", recorded);
  ++report.adversary_messages;
  world.network.run();

  // Attack 2 (§5.4's stronger claim): bump the plaintext sequence number so
  // the replay looks fresh — the signed evidence must catch it.
  nr::NrMessage doctored = nr::NrMessage::decode(recorded);
  doctored.header.seq_no += 100;
  doctored.header.nonce = world.rng.bytes(16);
  world.network.send("mallory", "bob", "nr", doctored.encode());
  ++report.adversary_messages;
  world.network.run();

  const std::uint64_t extra_receipts = world.bob->stats().sent -
                                       receipts_before;
  report.attack_succeeded = extra_receipts > 0;
  report.victim_stats = world.bob->stats();
  report.detail = defended
                      ? "verbatim replay stopped by the nonce cache (" +
                            std::to_string(report.victim_stats.rejected_replay) +
                            " rejections); seq-bumped replay stopped by the "
                            "signed header (" +
                            std::to_string(
                                report.victim_stats.rejected_bad_evidence) +
                            " evidence rejections)"
                      : "with nonce/seq screening off, the provider issued " +
                            std::to_string(extra_receipts) +
                            " duplicate receipt(s) for replayed traffic";
  return report;
}

// ------------------------------------------------------------- reflection --

AttackReport run_reflection(bool defended, std::uint64_t seed) {
  AttackReport report;
  report.kind = AttackKind::kReflection;
  report.defended = defended;

  World world(seed);
  nr::ClientOptions options;
  options.auto_resolve = false;
  options.reply_window = 10 * common::kMinute;  // isolate from §5.5
  world.spawn_actors(options);
  world.alice->trust_peer("bob", world.bob_id.public_key());
  // Reflection needs the victim to trust itself as a possible sender.
  world.alice->trust_peer("alice", world.alice_id.public_key());
  if (!defended) {
    nr::ScreeningPolicy weak;
    weak.check_addressee = false;
    weak.check_nonce = false;     // the reflected copy reuses the nonce
    weak.check_sequence = false;  // and the original sequence number
    world.alice->set_screening_policy(weak);
  }

  Bytes recorded;
  world.network.set_adversary(
      "alice", "bob", [&recorded](const net::Envelope& envelope) {
        recorded = envelope.payload.to_bytes();
        net::AdversaryAction action;
        action.kind = net::AdversaryAction::Kind::kDrop;
        return action;
      });

  const Bytes data = sample_data(world.rng);
  world.alice->store("bob", "", "obj", data);
  world.network.run();
  const std::uint64_t accepted_before = world.alice->stats().accepted;

  // Bounce Alice's own message back at her.
  world.network.send("mallory", "alice", "nr", recorded);
  ++report.adversary_messages;
  world.network.run();

  report.victim_stats = world.alice->stats();
  const bool penetrated =
      world.alice->stats().accepted > accepted_before;
  report.attack_succeeded = penetrated;
  report.detail =
      defended
          ? "reflected message rejected by the addressee check (" +
                std::to_string(report.victim_stats.rejected_wrong_addressee) +
                " rejections); the protocol is not a symmetric "
                "challenge-response, so nothing to reflect into"
          : (penetrated
                 ? "with the addressee check off the reflected message "
                   "reached the handler (no state change: flags are "
                   "asymmetric, but screening was penetrated)"
                 : "reflected message had no effect even unscreened");
  return report;
}

// ----------------------------------------------------------- interleaving --

AttackReport run_interleaving(bool defended, std::uint64_t seed) {
  AttackReport report;
  report.kind = AttackKind::kInterleaving;
  report.defended = defended;

  World world(seed);
  nr::ClientOptions options;
  options.auto_resolve = false;
  world.spawn_actors(options);
  world.alice->trust_peer("bob", world.bob_id.public_key());
  if (!defended) {
    nr::ScreeningPolicy weak;
    weak.check_sequence = false;
    weak.check_nonce = false;
    world.alice->set_screening_policy(weak);
  }

  // Session 1 completes normally; record Bob's receipt.
  Bytes recorded_receipt;
  world.network.set_adversary(
      "bob", "alice", [&recorded_receipt](const net::Envelope& envelope) {
        if (recorded_receipt.empty()) recorded_receipt = envelope.payload.to_bytes();
        return net::AdversaryAction{};
      });
  const Bytes data1 = sample_data(world.rng);
  const std::string txn1 = world.alice->store("bob", "", "obj1", data1);
  world.network.run();

  // Session 2: drop Bob's genuine receipt...
  world.network.set_adversary("bob", "alice", [](const net::Envelope&) {
    net::AdversaryAction action;
    action.kind = net::AdversaryAction::Kind::kDrop;
    return action;
  });
  const Bytes data2 = sample_data(world.rng);
  const std::string txn2 = world.alice->store("bob", "", "obj2", data2);

  // ...and splice session 1's receipt in, re-labelled for session 2. The
  // injection is scheduled ahead of Alice's own receipt timeout so the
  // transaction is still pending when it lands.
  nr::NrMessage spliced = nr::NrMessage::decode(recorded_receipt);
  spliced.header.txn_id = txn2;
  spliced.header.seq_no = 2;
  spliced.header.nonce = world.rng.bytes(16);
  const Bytes spliced_bytes = spliced.encode();
  world.network.schedule(common::kSecond, [&world, spliced_bytes] {
    world.network.send("mallory", "alice", "nr", spliced_bytes);
  });
  ++report.adversary_messages;
  world.network.run();

  const auto* txn2_state = world.alice->transaction(txn2);
  report.attack_succeeded =
      txn2_state != nullptr && txn2_state->state == nr::TxnState::kCompleted;
  report.victim_stats = world.alice->stats();
  report.detail =
      report.attack_succeeded
          ? "session-1 receipt was accepted for session 2"
          : std::string("spliced receipt rejected (") +
                (defended ? "header re-binding broke the signature; " : "") +
                std::to_string(report.victim_stats.rejected_bad_evidence) +
                " evidence rejections, " +
                std::to_string(report.victim_stats.rejected_bad_hash) +
                " hash mismatches)";
  return report;
}

// ------------------------------------------------------------- timeliness --

AttackReport run_timeliness(bool defended, std::uint64_t seed) {
  AttackReport report;
  report.kind = AttackKind::kTimeliness;
  report.defended = defended;

  World world(seed);
  nr::ClientOptions options;
  options.auto_resolve = false;
  options.reply_window = 5 * common::kSecond;
  world.spawn_actors(options);
  world.alice->trust_peer("bob", world.bob_id.public_key());
  if (!defended) {
    nr::ScreeningPolicy weak;
    weak.check_time_limit = false;
    world.bob->set_screening_policy(weak);
  }

  // The adversary holds the store request past its deadline.
  Bytes held;
  world.network.set_adversary("alice", "bob",
                              [&held](const net::Envelope& envelope) {
                                held = envelope.payload.to_bytes();
                                net::AdversaryAction action;
                                action.kind =
                                    net::AdversaryAction::Kind::kDrop;
                                return action;
                              });
  const Bytes data = sample_data(world.rng);
  world.alice->store("bob", "", "obj", data);
  world.network.run();

  const std::uint64_t receipts_before = world.bob->stats().sent;
  // Re-deliver well past the 5 s window.
  world.network.clear_adversary("alice", "bob");
  world.network.schedule(60 * common::kSecond, [&world, &held] {
    world.network.send("mallory", "bob", "nr", held);
  });
  ++report.adversary_messages;
  world.network.run();

  report.attack_succeeded = world.bob->stats().sent > receipts_before;
  report.victim_stats = world.bob->stats();
  report.detail =
      defended
          ? "stale message rejected by the time-limit field (" +
                std::to_string(report.victim_stats.rejected_expired) +
                " expirations); the sender regained liveness via its own "
                "timeout"
          : "without the time limit the provider accepted and receipted a "
            "message delivered 55 s late";
  return report;
}

// -------------------------------------------------------------------- mitm --

AttackReport run_mitm(bool defended, std::uint64_t seed) {
  AttackReport report;
  report.kind = AttackKind::kManInTheMiddle;
  report.defended = defended;

  World world(seed);
  nr::ClientOptions options;
  options.auto_resolve = false;
  world.spawn_actors(options);

  // The defence (§5.1): authenticate the peer key through the TAC before
  // use. Defended Alice obtains Bob's key from a CA-backed registry;
  // undefended Alice accepts the key Mallory hands her.
  crypto::Drbg ca_rng(seed ^ 0xcau);
  pki::CertificateAuthority ca("root-ca", 1024, ca_rng);
  pki::KeyRegistry registry(ca);
  registry.enroll(ca.issue("bob", world.bob_id.public_key(),
                           world.network.now(), common::kHour));
  // Mallory forges a certificate for "bob" over HIS key, signed by himself.
  crypto::Drbg mallory_rng(seed ^ 0xbadu);
  pki::CertificateAuthority mallory_ca("root-ca", 1024, mallory_rng);
  const pki::Certificate forged = mallory_ca.issue(
      "bob", world.mallory_id.public_key(), world.network.now(),
      common::kHour);

  if (defended) {
    // Alice checks the certificate against the real CA: the forgery fails,
    // so she uses the registry's authentic key.
    const bool forged_ok =
        ca.check(forged, world.network.now()) == pki::CertStatus::kValid;
    const auto authentic = registry.authenticated_key("bob",
                                                      world.network.now());
    world.alice->trust_peer("bob", *authentic);
    report.detail = forged_ok ? "FORGERY ACCEPTED (bug)"
                              : "forged certificate rejected; ";
  } else {
    // No authentication: Mallory's key is taken at face value.
    world.alice->trust_peer("bob", forged.subject_key);
  }

  // Mallory relays on the alice->bob link.
  std::vector<Bytes> captured;
  world.network.set_adversary(
      "alice", "bob", [&captured](const net::Envelope& envelope) {
        captured.push_back(envelope.payload.to_bytes());
        net::AdversaryAction action;
        action.kind = net::AdversaryAction::Kind::kDrop;
        return action;
      });

  const Bytes data = sample_data(world.rng);
  const std::string txn = world.alice->store("bob", "", "obj", data);
  // The adversary runs synchronously inside send(), so the capture is
  // already populated; Mallory reacts immediately, well before Alice's
  // receipt timeout.

  bool mallory_read_evidence = false;
  if (!captured.empty()) {
    nr::NrMessage intercepted = nr::NrMessage::decode(captured.front());
    // Mallory tries to open the NRO with his own key (it was encrypted for
    // whoever Alice believes is Bob).
    const auto opened =
        nr::open_evidence(world.mallory_id, world.alice_id.public_key(),
                          intercepted.header, intercepted.evidence);
    mallory_read_evidence = opened.has_value();
    if (mallory_read_evidence) {
      // Impersonate Bob: forge a receipt signed with Mallory's key.
      nr::MessageHeader receipt = intercepted.header;
      receipt.flag = nr::MsgType::kStoreReceipt;
      receipt.sender = "bob";
      receipt.recipient = "alice";
      receipt.seq_no += 1;
      receipt.nonce = world.rng.bytes(16);
      nr::NrMessage fake;
      fake.header = receipt;
      fake.evidence = nr::make_evidence(world.mallory_id,
                                        world.alice_id.public_key(), receipt,
                                        world.rng);
      world.network.send("mallory", "alice", "nr", fake.encode());
      ++report.adversary_messages;
      world.network.run();
    }
  }

  const auto* txn_state = world.alice->transaction(txn);
  const bool alice_deceived =
      txn_state != nullptr && txn_state->state == nr::TxnState::kCompleted;
  report.attack_succeeded = mallory_read_evidence && alice_deceived;
  report.victim_stats = world.alice->stats();
  report.detail +=
      report.attack_succeeded
          ? "Mallory decrypted the NRO and Alice accepted a receipt signed "
            "by Mallory's key — full impersonation"
          : "Mallory could neither decrypt the NRO (wrong key) nor forge an "
            "acceptable receipt (" +
                std::to_string(report.victim_stats.rejected_bad_evidence) +
                " evidence rejections)";
  return report;
}

// ----------------------------------------------------------- equivocation --

AttackReport run_equivocation(bool defended, std::uint64_t seed) {
  AttackReport report;
  report.kind = AttackKind::kEquivocation;
  report.defended = defended;

  net::Network network(seed);
  crypto::Drbg rng(seed ^ 0x5eedf00dull);
  pki::Identity alice_id = pooled_identity("alice");
  pki::Identity carol_id = pooled_identity("carol");
  pki::Identity bob_id = pooled_identity("bob");

  consistency::ConsClientActor alice("alice", network, alice_id, rng);
  consistency::ConsClientActor carol("carol", network, carol_id, rng);
  consistency::ConsProviderActor bob("bob", network, bob_id, rng);
  alice.trust_peer("bob", bob_id.public_key());
  alice.trust_peer("carol", carol_id.public_key());
  carol.trust_peer("bob", bob_id.public_key());
  carol.trust_peer("alice", alice_id.public_key());
  bob.trust_peer("alice", alice_id.public_key());
  bob.trust_peer("carol", carol_id.public_key());

  // The shared object: alice creates it, carol joins.
  const Bytes data = rng.bytes(256);
  alice.store_shared("bob", "ttp", "obj", data, 64);
  network.run();
  carol.open_shared("bob", "ttp", "obj");
  network.run();

  // THE ATTACK: bob forks "obj" and serves alice branch 0, carol branch 1.
  // From here every commit either victim receives is perfectly signed and
  // perfectly consistent — with ITS OWN branch.
  bob.fork_object("obj", {{"alice", 0}, {"carol", 1}});
  const Bytes a_chunk = rng.bytes(64);
  const Bytes c_chunk = rng.bytes(64);
  alice.update("obj", 0, a_chunk);
  network.run();
  carol.update("obj", 0, c_chunk);
  network.run();
  // Both saw their op commit at the SAME global position (2) with different
  // contents; the divergence itself is invisible so far.
  report.adversary_messages = bob.commits_sent();

  if (defended) {
    // The defence: out-of-band client↔client gossip on "cons.gossip".
    alice.add_gossip_peer("carol");
    carol.add_gossip_peer("alice");
    alice.gossip_now();
    carol.gossip_now();
    network.run();
  }

  const consistency::EquivocationProof* proof =
      alice.fork_proof("obj") != nullptr ? alice.fork_proof("obj")
                                         : carol.fork_proof("obj");
  bool convicted = false;
  if (proof != nullptr) {
    // Close the loop through arbitration: the self-contained proof must
    // convict the provider with no client testimony.
    consistency::ForkDisputeCase dispute;
    dispute.object_key = "obj";
    dispute.provider_key = bob_id.public_key();
    dispute.proof = *proof;
    convicted = consistency::resolve_fork_dispute(dispute).kind ==
                consistency::ForkRulingKind::kProviderConvicted;
  }
  report.attack_succeeded = !convicted;
  report.victim_stats = alice.stats();
  report.detail =
      convicted
          ? "gossip exposed the fork: " + proof->describe() +
                " — arbitration convicted the provider"
          : (defended ? "fork went undetected despite gossip"
                      : "no gossip channel: both victims saw a perfectly "
                        "signed, internally consistent history");
  return report;
}

}  // namespace

std::string attack_name(AttackKind kind) { return attack_name_impl(kind); }

std::vector<AttackKind> all_attacks() {
  return {AttackKind::kManInTheMiddle, AttackKind::kReflection,
          AttackKind::kInterleaving, AttackKind::kReplay,
          AttackKind::kTimeliness,    AttackKind::kEquivocation};
}

AttackReport run_attack(AttackKind kind, bool defended, std::uint64_t seed) {
  switch (kind) {
    case AttackKind::kManInTheMiddle:
      return run_mitm(defended, seed);
    case AttackKind::kReflection:
      return run_reflection(defended, seed);
    case AttackKind::kInterleaving:
      return run_interleaving(defended, seed);
    case AttackKind::kReplay:
      return run_replay(defended, seed);
    case AttackKind::kTimeliness:
      return run_timeliness(defended, seed);
    case AttackKind::kEquivocation:
      return run_equivocation(defended, seed);
  }
  throw common::Error("run_attack: unknown kind");
}

}  // namespace tpnr::attacks
