// §5 robustness harness: the five classic attacks, each run against the
// full TPNR stack on the simulated network. Every scenario can also run
// with the corresponding defence DISABLED, demonstrating that (a) the
// attack is real, and (b) the protocol feature defeats it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nr/actor.h"

namespace tpnr::attacks {

enum class AttackKind {
  kManInTheMiddle,  ///< §5.1 — key substitution + relay
  kReflection,      ///< §5.2 — messages bounced back to their sender
  kInterleaving,    ///< §5.3 — evidence spliced across sessions
  kReplay,          ///< §5.4 — recorded messages re-delivered
  kTimeliness,      ///< §5.5 — messages delayed past their deadline
  kEquivocation,    ///< fork attack — per-client divergent signed histories
};

std::string attack_name(AttackKind kind);

/// All six, for sweeping.
std::vector<AttackKind> all_attacks();

struct AttackReport {
  AttackKind kind = AttackKind::kReplay;
  bool defended = true;       ///< protocol ran with the defence on?
  bool attack_succeeded = false;
  std::string detail;         ///< what happened / which defence fired
  std::uint64_t adversary_messages = 0;  ///< traffic the attacker generated
  nr::ActorStats victim_stats;           ///< the targeted actor's counters
};

/// Runs one attack scenario in a fresh, deterministic world.
/// `defended == false` switches off exactly the defence §5 credits with
/// stopping this attack (the attack is then expected to succeed).
AttackReport run_attack(AttackKind kind, bool defended, std::uint64_t seed);

}  // namespace tpnr::attacks
