#include "common/bytes.h"

#include <gtest/gtest.h>

namespace tpnr::common {
namespace {

TEST(BytesTest, RoundTripText) {
  const Bytes b = to_bytes("hello cloud");
  EXPECT_EQ(to_string(b), "hello cloud");
}

TEST(BytesTest, HexEncodeKnown) {
  EXPECT_EQ(to_hex(Bytes{0xde, 0xad, 0xbe, 0xef}), "deadbeef");
  EXPECT_EQ(to_hex(Bytes{}), "");
  EXPECT_EQ(to_hex(Bytes{0x00, 0x01, 0xff}), "0001ff");
}

TEST(BytesTest, HexDecodeKnown) {
  EXPECT_EQ(from_hex("deadbeef"), (Bytes{0xde, 0xad, 0xbe, 0xef}));
  EXPECT_EQ(from_hex("DEADBEEF"), (Bytes{0xde, 0xad, 0xbe, 0xef}));
  EXPECT_TRUE(from_hex("").empty());
}

TEST(BytesTest, HexDecodeRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(BytesTest, HexDecodeRejectsBadChars) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
  EXPECT_THROW(from_hex("0g"), std::invalid_argument);
}

TEST(BytesTest, HexRoundTrip) {
  Bytes all(256);
  for (int i = 0; i < 256; ++i) all[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(i);
  EXPECT_EQ(from_hex(to_hex(all)), all);
}

TEST(BytesTest, ConstantTimeEqualBasics) {
  EXPECT_TRUE(constant_time_equal(Bytes{1, 2, 3}, Bytes{1, 2, 3}));
  EXPECT_FALSE(constant_time_equal(Bytes{1, 2, 3}, Bytes{1, 2, 4}));
  EXPECT_FALSE(constant_time_equal(Bytes{1, 2, 3}, Bytes{1, 2}));
  EXPECT_TRUE(constant_time_equal(Bytes{}, Bytes{}));
}

TEST(BytesTest, SecureWipeClears) {
  Bytes secret = to_bytes("top secret key material");
  secure_wipe(secret);
  EXPECT_TRUE(secret.empty());
}

TEST(BytesTest, AppendAndConcat) {
  Bytes a = to_bytes("ab");
  append(a, to_bytes("cd"));
  EXPECT_EQ(to_string(a), "abcd");

  const Bytes x = to_bytes("x"), y = to_bytes("y"), z = to_bytes("z");
  EXPECT_EQ(to_string(concat({x, y, z})), "xyz");
  EXPECT_TRUE(concat({}).empty());
}

TEST(BytesTest, XorInto) {
  Bytes a{0xff, 0x00, 0x0f};
  xor_into(a, Bytes{0x0f, 0xf0, 0x0f});
  EXPECT_EQ(a, (Bytes{0xf0, 0xf0, 0x00}));
}

TEST(BytesTest, XorIntoRejectsSizeMismatch) {
  Bytes a{1, 2};
  EXPECT_THROW(xor_into(a, Bytes{1}), std::invalid_argument);
}

}  // namespace
}  // namespace tpnr::common
