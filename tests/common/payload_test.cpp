// common::Payload semantics: aliasing, copy-on-write detachment, counter
// accounting, secure wiping through shared aliases, and the eager-copy
// baseline mode the benchmarks use for A/B comparisons.
#include "common/payload.h"

#include <gtest/gtest.h>

#include "common/bytes.h"

namespace tpnr::common {
namespace {

Bytes sample(std::size_t n, std::uint8_t start = 1) {
  Bytes data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::uint8_t>(start + i);
  }
  return data;
}

class PayloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Payload::set_eager_copy_mode(false);
    Payload::reset_counters();
  }
  void TearDown() override {
    Payload::set_eager_copy_mode(false);
    Payload::reset_counters();
  }
};

TEST_F(PayloadTest, DefaultIsEmpty) {
  const Payload p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.size(), 0u);
  EXPECT_EQ(p.data(), nullptr);
  EXPECT_TRUE(p.view().empty());
  EXPECT_TRUE(p.to_bytes().empty());
}

TEST_F(PayloadTest, WrapTakesOwnershipWithoutCounting) {
  const Payload p(sample(64));
  EXPECT_EQ(p.size(), 64u);
  const PayloadCounters c = Payload::counters();
  EXPECT_EQ(c.copies, 0u);
  EXPECT_EQ(c.shares, 0u);
}

TEST_F(PayloadTest, CopyConstructionSharesTheBuffer) {
  const Payload a(sample(128));
  const Payload b(a);  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_TRUE(a.aliases(b));
  EXPECT_EQ(a.data(), b.data());  // same allocation, not equal content only
  EXPECT_EQ(a.use_count(), 2);
  const PayloadCounters c = Payload::counters();
  EXPECT_EQ(c.copies, 0u);
  EXPECT_EQ(c.shares, 1u);
  EXPECT_EQ(c.share_bytes, 128u);
}

TEST_F(PayloadTest, CopyAssignmentSharesTheBuffer) {
  const Payload a(sample(32));
  Payload b;
  b = a;
  EXPECT_TRUE(b.aliases(a));
  EXPECT_EQ(Payload::counters().shares, 1u);
  EXPECT_EQ(Payload::counters().copies, 0u);
}

TEST_F(PayloadTest, MoveTransfersWithoutCounting) {
  Payload a(sample(16));
  const std::uint8_t* raw = a.data();
  const Payload b(std::move(a));
  EXPECT_EQ(b.data(), raw);
  const PayloadCounters c = Payload::counters();
  EXPECT_EQ(c.copies, 0u);
  EXPECT_EQ(c.shares, 0u);
}

TEST_F(PayloadTest, CopyOfPerformsACountedDeepCopy) {
  const Bytes source = sample(100);
  const Payload p = Payload::copy_of(source);
  EXPECT_EQ(p, source);
  EXPECT_NE(p.data(), source.data());
  const PayloadCounters c = Payload::counters();
  EXPECT_EQ(c.copies, 1u);
  EXPECT_EQ(c.copy_bytes, 100u);
}

TEST_F(PayloadTest, ToBytesIsACountedCopy) {
  const Payload p(sample(48));
  const Bytes out = p.to_bytes();
  EXPECT_EQ(p, out);
  EXPECT_NE(static_cast<const void*>(out.data()),
            static_cast<const void*>(p.data()));
  EXPECT_EQ(Payload::counters().copies, 1u);
  EXPECT_EQ(Payload::counters().copy_bytes, 48u);
}

TEST_F(PayloadTest, MutateUniqueOwnerIsFree) {
  Payload p(sample(8));
  const std::uint8_t* raw = p.data();
  Bytes& bytes = p.mutate();
  bytes[0] = 0xff;
  EXPECT_EQ(p.data(), raw);  // no reallocation for the sole owner
  EXPECT_EQ(p[0], 0xff);
  EXPECT_EQ(Payload::counters().copies, 0u);
}

TEST_F(PayloadTest, MutateSharedDetachesAndLeavesAliasIntact) {
  Payload a(sample(8));
  const Payload b(a);
  Payload::reset_counters();  // isolate the detach accounting

  a.mutate()[0] = 0xee;

  EXPECT_FALSE(a.aliases(b));
  EXPECT_EQ(a[0], 0xee);
  EXPECT_EQ(b[0], 1);  // the alias still sees the original content
  EXPECT_EQ(a.use_count(), 1);
  EXPECT_EQ(b.use_count(), 1);
  const PayloadCounters c = Payload::counters();
  EXPECT_EQ(c.copies, 1u);  // exactly one detach copy
  EXPECT_EQ(c.copy_bytes, 8u);
}

TEST_F(PayloadTest, FanOutSharesCountEachAvoidedCopy) {
  const Payload original(sample(256));
  std::vector<Payload> copies(5, original);
  for (const Payload& copy : copies) EXPECT_TRUE(copy.aliases(original));
  EXPECT_EQ(original.use_count(), 6);
  const PayloadCounters c = Payload::counters();
  EXPECT_EQ(c.shares, 5u);
  EXPECT_EQ(c.share_bytes, 5u * 256u);
  EXPECT_EQ(c.copies, 0u);
}

TEST_F(PayloadTest, WipeDestroysContentForAllAliases) {
  Payload a(sample(32));
  const Payload b(a);
  ASSERT_TRUE(b.aliases(a));
  const std::uint8_t* storage = b.data();
  ASSERT_NE(storage, nullptr);

  a.wipe();

  // The wiped handle dropped its reference; the alias still holds the shared
  // buffer, but its content has been zeroed and cleared — the secret is gone
  // from every alias, which is the point of wiping THROUGH the sharing.
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.view().empty());
}

TEST_F(PayloadTest, SecureWipeFreeFunctionMatchesMemberWipe) {
  Payload a(sample(16));
  const Payload alias(a);
  secure_wipe(a);
  EXPECT_TRUE(a.empty());
  EXPECT_TRUE(alias.empty());
}

TEST_F(PayloadTest, EagerCopyModeTurnsSharesIntoCopies) {
  Payload::set_eager_copy_mode(true);
  const Payload a(sample(64));
  const Payload b(a);  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_FALSE(b.aliases(a));  // by-value emulation: private buffer
  EXPECT_EQ(b, a);
  const PayloadCounters c = Payload::counters();
  EXPECT_EQ(c.copies, 1u);
  EXPECT_EQ(c.copy_bytes, 64u);
  EXPECT_EQ(c.shares, 0u);
}

TEST_F(PayloadTest, EqualityComparesContentNotIdentity) {
  const Payload a(sample(10));
  const Payload b = Payload::copy_of(a.view());
  EXPECT_FALSE(a.aliases(b));
  EXPECT_TRUE(a == b);
  const Bytes raw = sample(10);
  EXPECT_TRUE(a == raw);
  EXPECT_TRUE(raw == a);
  const Payload shorter(sample(9));
  EXPECT_FALSE(a == shorter);
}

TEST_F(PayloadTest, ViewAndConversionAliasTheBuffer) {
  const Payload p(sample(24));
  const BytesView view = p;  // implicit conversion used by crypto/hash APIs
  EXPECT_EQ(view.data(), p.data());
  EXPECT_EQ(view.size(), p.size());
}

TEST_F(PayloadTest, ResetCountersZeroesEverything) {
  const Payload a(sample(8));
  const Payload b(a);       // a share
  (void)a.to_bytes();       // a copy
  (void)b;
  Payload::reset_counters();
  const PayloadCounters c = Payload::counters();
  EXPECT_EQ(c.copies, 0u);
  EXPECT_EQ(c.copy_bytes, 0u);
  EXPECT_EQ(c.shares, 0u);
  EXPECT_EQ(c.share_bytes, 0u);
}

}  // namespace
}  // namespace tpnr::common
