#include "common/logging.h"

#include <gtest/gtest.h>

#include <sstream>

namespace tpnr::common {
namespace {

/// Captures std::clog for the duration of a scope.
class ClogCapture {
 public:
  ClogCapture() : old_(std::clog.rdbuf(buffer_.rdbuf())) {}
  ~ClogCapture() { std::clog.rdbuf(old_); }
  [[nodiscard]] std::string text() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = Logger::instance().level(); }
  void TearDown() override { Logger::instance().set_level(previous_); }
  LogLevel previous_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, RespectsLevelThreshold) {
  Logger::instance().set_level(LogLevel::kWarn);
  ClogCapture capture;
  log_debug("mod", "invisible");
  log_info("mod", "also invisible");
  log_warn("mod", "visible warning");
  log_error("mod", "visible error");
  const std::string out = capture.text();
  EXPECT_EQ(out.find("invisible"), std::string::npos);
  EXPECT_NE(out.find("visible warning"), std::string::npos);
  EXPECT_NE(out.find("visible error"), std::string::npos);
}

TEST_F(LoggingTest, FormatsModuleAndLevel) {
  Logger::instance().set_level(LogLevel::kInfo);
  ClogCapture capture;
  log_info("nr.client", "txn ", 42, " completed");
  const std::string out = capture.text();
  EXPECT_NE(out.find("[INFO]"), std::string::npos);
  EXPECT_NE(out.find("[nr.client]"), std::string::npos);
  EXPECT_NE(out.find("txn 42 completed"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  Logger::instance().set_level(LogLevel::kOff);
  ClogCapture capture;
  log_error("mod", "even errors");
  EXPECT_TRUE(capture.text().empty());
}

TEST_F(LoggingTest, SingletonIsStable) {
  EXPECT_EQ(&Logger::instance(), &Logger::instance());
}

}  // namespace
}  // namespace tpnr::common
