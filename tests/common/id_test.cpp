#include "common/id.h"

#include <gtest/gtest.h>

#include <set>

namespace tpnr::common {
namespace {

TEST(IdGeneratorTest, DeterministicForSameSeed) {
  IdGenerator a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(IdGeneratorTest, DifferentSeedsDiverge) {
  IdGenerator a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(IdGeneratorTest, NoShortCycleCollisions) {
  IdGenerator gen(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(gen.next_u64()).second) << "collision at " << i;
  }
}

TEST(IdGeneratorTest, FormattedIdHasPrefixAndHex) {
  IdGenerator gen(3);
  const std::string id = gen.next_id("txn");
  ASSERT_EQ(id.size(), 3 + 1 + 16u);
  EXPECT_EQ(id.substr(0, 4), "txn-");
  for (char c : id.substr(4)) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
}

}  // namespace
}  // namespace tpnr::common
