#include "common/clock.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace tpnr::common {
namespace {

TEST(SimClockTest, StartsAtZero) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0);
}

TEST(SimClockTest, AdvanceAccumulates) {
  SimClock clock;
  clock.advance(5 * kMillisecond);
  clock.advance(2 * kSecond);
  EXPECT_EQ(clock.now(), 5 * kMillisecond + 2 * kSecond);
}

TEST(SimClockTest, NegativeAdvanceIgnored) {
  SimClock clock;
  clock.advance(kSecond);
  clock.advance(-kSecond);
  EXPECT_EQ(clock.now(), kSecond);
}

TEST(SimClockTest, AdvanceToIsMonotonic) {
  SimClock clock;
  clock.advance_to(kMinute);
  EXPECT_EQ(clock.now(), kMinute);
  clock.advance_to(kSecond);  // in the past: no-op
  EXPECT_EQ(clock.now(), kMinute);
}

TEST(SimClockTest, UnitsAreConsistent) {
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
}

TEST(SimClockTest, ConcurrentAdvanceIsLossless) {
  SimClock clock;
  constexpr int kThreads = 8;
  constexpr int kIters = 1000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&clock] {
      for (int i = 0; i < kIters; ++i) clock.advance(1);
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(clock.now(), kThreads * kIters);
}

}  // namespace
}  // namespace tpnr::common
