#include "common/base64.h"

#include <gtest/gtest.h>

namespace tpnr::common {
namespace {

// RFC 4648 §10 test vectors.
TEST(Base64Test, Rfc4648Vectors) {
  EXPECT_EQ(base64_encode(to_bytes("")), "");
  EXPECT_EQ(base64_encode(to_bytes("f")), "Zg==");
  EXPECT_EQ(base64_encode(to_bytes("fo")), "Zm8=");
  EXPECT_EQ(base64_encode(to_bytes("foo")), "Zm9v");
  EXPECT_EQ(base64_encode(to_bytes("foob")), "Zm9vYg==");
  EXPECT_EQ(base64_encode(to_bytes("fooba")), "Zm9vYmE=");
  EXPECT_EQ(base64_encode(to_bytes("foobar")), "Zm9vYmFy");
}

TEST(Base64Test, Rfc4648Decode) {
  EXPECT_EQ(to_string(base64_decode("Zm9vYmFy")), "foobar");
  EXPECT_EQ(to_string(base64_decode("Zm9vYg==")), "foob");
  EXPECT_EQ(to_string(base64_decode("Zg==")), "f");
  EXPECT_TRUE(base64_decode("").empty());
}

// Table 1 of the paper carries base64 values like
// "FJXZLUNMuI/KZ5KDcJPcOA==" (a Content-MD5); they must round-trip.
TEST(Base64Test, PaperTable1ContentMd5RoundTrips) {
  const std::string content_md5 = "FJXZLUNMuI/KZ5KDcJPcOA==";
  const Bytes raw = base64_decode(content_md5);
  EXPECT_EQ(raw.size(), 16u);  // an MD5 digest
  EXPECT_EQ(base64_encode(raw), content_md5);
}

TEST(Base64Test, BinaryRoundTrip) {
  Bytes all(256);
  for (int i = 0; i < 256; ++i) all[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(i);
  EXPECT_EQ(base64_decode(base64_encode(all)), all);
}

TEST(Base64Test, RejectsBadLength) {
  EXPECT_THROW(base64_decode("Zg="), std::invalid_argument);
  EXPECT_THROW(base64_decode("Z"), std::invalid_argument);
}

TEST(Base64Test, RejectsBadCharacters) {
  EXPECT_THROW(base64_decode("Zm9v!mFy"), std::invalid_argument);
  EXPECT_THROW(base64_decode("Zm 9"), std::invalid_argument);
}

TEST(Base64Test, RejectsMisplacedPadding) {
  EXPECT_THROW(base64_decode("=m9v"), std::invalid_argument);
  EXPECT_THROW(base64_decode("Zm=v"), std::invalid_argument);
  EXPECT_THROW(base64_decode("Zg==Zg=="), std::invalid_argument);
}

}  // namespace
}  // namespace tpnr::common
