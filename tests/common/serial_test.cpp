#include "common/serial.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "common/error.h"

namespace tpnr::common {
namespace {

TEST(SerialTest, ScalarRoundTrip) {
  BinaryWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.i64(-42);
  w.boolean(true);
  w.boolean(false);

  BinaryReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
}

TEST(SerialTest, BytesAndStringRoundTrip) {
  BinaryWriter w;
  w.bytes(Bytes{1, 2, 3});
  w.str("cloud storage");
  w.bytes(Bytes{});
  w.str("");

  BinaryReader r(w.data());
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.str(), "cloud storage");
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.str().empty());
  r.expect_done();
}

TEST(SerialTest, EncodingIsLittleEndianAndDeterministic) {
  BinaryWriter w;
  w.u32(0x01020304u);
  EXPECT_EQ(w.data(), (Bytes{0x04, 0x03, 0x02, 0x01}));
}

TEST(SerialTest, TruncatedScalarThrows) {
  const Bytes short_buf{0x01, 0x02};
  BinaryReader r(short_buf);
  EXPECT_THROW(r.u32(), SerialError);
}

TEST(SerialTest, TruncatedBytesThrows) {
  BinaryWriter w;
  w.u32(100);  // claims 100 bytes follow
  BinaryReader r(w.data());
  EXPECT_THROW(r.bytes(), SerialError);
}

TEST(SerialTest, NonCanonicalBoolThrows) {
  const Bytes buf{0x02};
  BinaryReader r(buf);
  EXPECT_THROW(r.boolean(), SerialError);
}

TEST(SerialTest, TrailingBytesDetected) {
  const Bytes buf{0x00, 0x01};
  BinaryReader r(buf);
  r.u8();
  EXPECT_THROW(r.expect_done(), SerialError);
  r.u8();
  EXPECT_NO_THROW(r.expect_done());
}

TEST(SerialTest, RemainingTracksPosition) {
  const Bytes buf{0, 0, 0, 0, 0};
  BinaryReader r(buf);
  EXPECT_EQ(r.remaining(), 5u);
  r.u32();
  EXPECT_EQ(r.remaining(), 1u);
}

// --- Systematic per-encoder coverage: the durability layer snapshots and
// --- journals through these, so each must (a) encode deterministically,
// --- (b) round-trip exactly, (c) reject EVERY strictly truncated input.

/// One encoder under test: how to write a sample value, read it back,
/// and check the value survived.
struct EncoderCase {
  const char* name;
  std::size_t encoded_size;  ///< expected canonical size of the sample
  void (*write)(BinaryWriter&);
  void (*read_and_check)(BinaryReader&);
};

const EncoderCase kEncoderCases[] = {
    {"u8", 1, [](BinaryWriter& w) { w.u8(0x7E); },
     [](BinaryReader& r) { EXPECT_EQ(r.u8(), 0x7E); }},
    {"u16", 2, [](BinaryWriter& w) { w.u16(0xA55A); },
     [](BinaryReader& r) { EXPECT_EQ(r.u16(), 0xA55A); }},
    {"u32", 4, [](BinaryWriter& w) { w.u32(0xDEADBEEFu); },
     [](BinaryReader& r) { EXPECT_EQ(r.u32(), 0xDEADBEEFu); }},
    {"u64", 8, [](BinaryWriter& w) { w.u64(0x0123456789ABCDEFull); },
     [](BinaryReader& r) { EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull); }},
    {"i64-negative", 8, [](BinaryWriter& w) { w.i64(-987654321); },
     [](BinaryReader& r) { EXPECT_EQ(r.i64(), -987654321); }},
    {"i64-min", 8,
     [](BinaryWriter& w) { w.i64(std::numeric_limits<std::int64_t>::min()); },
     [](BinaryReader& r) {
       EXPECT_EQ(r.i64(), std::numeric_limits<std::int64_t>::min());
     }},
    {"boolean", 1, [](BinaryWriter& w) { w.boolean(true); },
     [](BinaryReader& r) { EXPECT_TRUE(r.boolean()); }},
    {"bytes", 4 + 5, [](BinaryWriter& w) { w.bytes(Bytes{9, 8, 7, 6, 5}); },
     [](BinaryReader& r) { EXPECT_EQ(r.bytes(), (Bytes{9, 8, 7, 6, 5})); }},
    {"bytes-empty", 4, [](BinaryWriter& w) { w.bytes(Bytes{}); },
     [](BinaryReader& r) { EXPECT_TRUE(r.bytes().empty()); }},
    {"str", 4 + 9, [](BinaryWriter& w) { w.str("evidence!"); },
     [](BinaryReader& r) { EXPECT_EQ(r.str(), "evidence!"); }},
    {"str-empty", 4, [](BinaryWriter& w) { w.str(""); },
     [](BinaryReader& r) { EXPECT_TRUE(r.str().empty()); }},
};

TEST(SerialTest, EveryEncoderIsDeterministic) {
  for (const EncoderCase& c : kEncoderCases) {
    SCOPED_TRACE(c.name);
    BinaryWriter a;
    BinaryWriter b;
    c.write(a);
    c.write(b);
    EXPECT_EQ(a.data(), b.data());
    EXPECT_EQ(a.data().size(), c.encoded_size);
  }
}

TEST(SerialTest, EveryEncoderRoundTripsAndConsumesExactly) {
  for (const EncoderCase& c : kEncoderCases) {
    SCOPED_TRACE(c.name);
    BinaryWriter w;
    c.write(w);
    BinaryReader r(w.data());
    c.read_and_check(r);
    EXPECT_NO_THROW(r.expect_done());
  }
}

TEST(SerialTest, EveryEncoderRejectsEveryTruncatedPrefix) {
  for (const EncoderCase& c : kEncoderCases) {
    BinaryWriter w;
    c.write(w);
    const Bytes& full = w.data();
    // Every strict prefix of a single encoding must throw on read — the
    // reader never fabricates data past the end of a torn buffer.
    for (std::size_t len = 0; len < full.size(); ++len) {
      SCOPED_TRACE(std::string(c.name) + " truncated to " +
                   std::to_string(len));
      BinaryReader r(BytesView(full).subspan(0, len));
      EXPECT_THROW(c.read_and_check(r), SerialError);
    }
  }
}

TEST(SerialTest, MixedSequenceRejectsEveryTruncatedPrefix) {
  // A composite record (the shape journal payloads actually take).
  BinaryWriter w;
  w.u64(42);
  w.str("obj-key");
  w.bytes(Bytes{1, 2, 3, 4});
  w.boolean(false);
  w.i64(-7);
  const Bytes full = w.take();

  const auto read_all = [](BinaryReader& r) {
    r.u64();
    r.str();
    r.bytes();
    r.boolean();
    r.i64();
    r.expect_done();
  };
  {
    BinaryReader r(full);
    EXPECT_NO_THROW(read_all(r));
  }
  for (std::size_t len = 0; len < full.size(); ++len) {
    SCOPED_TRACE("truncated to " + std::to_string(len));
    BinaryReader r(BytesView(full).subspan(0, len));
    EXPECT_THROW(read_all(r), SerialError);
  }
}

}  // namespace
}  // namespace tpnr::common
