#include "common/serial.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace tpnr::common {
namespace {

TEST(SerialTest, ScalarRoundTrip) {
  BinaryWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.i64(-42);
  w.boolean(true);
  w.boolean(false);

  BinaryReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
}

TEST(SerialTest, BytesAndStringRoundTrip) {
  BinaryWriter w;
  w.bytes(Bytes{1, 2, 3});
  w.str("cloud storage");
  w.bytes(Bytes{});
  w.str("");

  BinaryReader r(w.data());
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.str(), "cloud storage");
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.str().empty());
  r.expect_done();
}

TEST(SerialTest, EncodingIsLittleEndianAndDeterministic) {
  BinaryWriter w;
  w.u32(0x01020304u);
  EXPECT_EQ(w.data(), (Bytes{0x04, 0x03, 0x02, 0x01}));
}

TEST(SerialTest, TruncatedScalarThrows) {
  const Bytes short_buf{0x01, 0x02};
  BinaryReader r(short_buf);
  EXPECT_THROW(r.u32(), SerialError);
}

TEST(SerialTest, TruncatedBytesThrows) {
  BinaryWriter w;
  w.u32(100);  // claims 100 bytes follow
  BinaryReader r(w.data());
  EXPECT_THROW(r.bytes(), SerialError);
}

TEST(SerialTest, NonCanonicalBoolThrows) {
  const Bytes buf{0x02};
  BinaryReader r(buf);
  EXPECT_THROW(r.boolean(), SerialError);
}

TEST(SerialTest, TrailingBytesDetected) {
  const Bytes buf{0x00, 0x01};
  BinaryReader r(buf);
  r.u8();
  EXPECT_THROW(r.expect_done(), SerialError);
  r.u8();
  EXPECT_NO_THROW(r.expect_done());
}

TEST(SerialTest, RemainingTracksPosition) {
  const Bytes buf{0, 0, 0, 0, 0};
  BinaryReader r(buf);
  EXPECT_EQ(r.remaining(), 5u);
  r.u32();
  EXPECT_EQ(r.remaining(), 1u);
}

}  // namespace
}  // namespace tpnr::common
