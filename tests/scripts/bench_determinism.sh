#!/usr/bin/env bash
# Determinism regression for the sharded runtime.
#
# The experiment benches emit one JsonLine record per protocol experiment;
# every field in those records is a protocol outcome (completion counts,
# simulated latencies, evidence checks) — nothing wall-clock. The runtime's
# contract says those outcomes are a pure function of the seed, so the
# emitted records must be BYTE-IDENTICAL:
#   * across repeated runs of the same binary (no hidden global state), and
#   * across shard/worker configurations TPNR_SHARDS=1,2,4 x TPNR_WORKERS=1,4
#     (shard-count and thread-count invariance).
#
# Usage: bench_determinism.sh <dir-with-bench-binaries>
set -euo pipefail

BENCH_DIR="${1:?usage: bench_determinism.sh <bench-dir>}"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

# Small instances: determinism does not depend on workload size.
export TPNR_CHAOS_TRIALS=6
export TPNR_DYN_MAX_CHUNKS=64
export TPNR_FORK_SWEEP=small

run_bench() { # <binary> <tag> <shards> <workers> -> path of captured JsonLine
  local binary="$1" tag="$2" shards="$3" workers="$4"
  local out="$WORKDIR/${binary}.${tag}.jsonl"
  TPNR_BENCH_JSON="$out.raw" TPNR_SHARDS="$shards" TPNR_WORKERS="$workers" \
    "$BENCH_DIR/$binary" --benchmark_filter=NONE >/dev/null
  # process_meta records carry the config itself (shards/workers/RSS) and
  # are config-dependent BY DESIGN; everything else must be byte-identical.
  grep -v '"record":"process_meta"' "$out.raw" > "$out" || true
  echo "$out"
}

status=0
for binary in bench_fig6_tpnr_modes bench_chaos bench_dyn_audit bench_fork_detection; do
  if [[ ! -x "$BENCH_DIR/$binary" ]]; then
    echo "SKIP: $BENCH_DIR/$binary not built" >&2
    continue
  fi
  baseline="$(run_bench "$binary" baseline 1 1)"
  for config in repeat:1:1 s2w1:2:1 s4w1:4:1 s4w4:4:4; do
    IFS=: read -r tag shards workers <<< "$config"
    candidate="$(run_bench "$binary" "$tag" "$shards" "$workers")"
    if diff -u "$baseline" "$candidate" >/dev/null; then
      echo "OK:   $binary $tag (shards=$shards workers=$workers) matches baseline"
    else
      echo "FAIL: $binary $tag (shards=$shards workers=$workers) diverged:" >&2
      diff -u "$baseline" "$candidate" >&2 || true
      status=1
    fi
  done
done

if [[ "$status" -eq 0 ]]; then
  echo "bench determinism: all runs byte-identical"
else
  echo "bench determinism: DIVERGENCE DETECTED" >&2
fi
exit "$status"
