// Integration: ObjectStore fault kinds exercised end-to-end through a TPNR
// fetch — the at-rest faults of Fig. 5 surfacing as integrity failures (or
// silence) at the protocol layer, with the injection recorded in the
// store's fault log.
#include <gtest/gtest.h>

#include "net/network.h"
#include "nr/client.h"
#include "nr/provider.h"
#include "nr/ttp.h"
#include "storage/object_store.h"

namespace tpnr {
namespace {

using storage::FaultKind;

const pki::Identity& pooled(const std::string& name) {
  static const auto* pool = [] {
    auto* identities = new std::map<std::string, pki::Identity>();
    crypto::Drbg rng(std::uint64_t{90909});
    for (const char* id : {"alice", "bob", "ttp"}) {
      identities->emplace(id, pki::Identity(id, 1024, rng));
    }
    return identities;
  }();
  return pool->at(name);
}

class FaultKindsTest : public ::testing::Test {
 protected:
  FaultKindsTest()
      : network_(2024),
        rng_(std::uint64_t{17}),
        alice_id_(pooled("alice")),
        bob_id_(pooled("bob")),
        ttp_id_(pooled("ttp")),
        alice_("alice", network_, alice_id_, rng_),
        bob_("bob", network_, bob_id_, rng_),
        ttp_("ttp", network_, ttp_id_, rng_) {
    alice_.trust_peer("bob", bob_id_.public_key());
    alice_.trust_peer("ttp", ttp_id_.public_key());
    bob_.trust_peer("alice", alice_id_.public_key());
    ttp_.trust_peer("alice", alice_id_.public_key());
    ttp_.trust_peer("bob", bob_id_.public_key());
  }

  /// Completes a store of `data` under `key`; returns the transaction id.
  std::string stored(const std::string& key, const common::Bytes& data) {
    const std::string txn = alice_.store("bob", "ttp", key, data);
    network_.run();
    EXPECT_EQ(alice_.transaction(txn)->state, nr::TxnState::kCompleted);
    return txn;
  }

  net::Network network_;
  crypto::Drbg rng_;
  pki::Identity alice_id_;
  pki::Identity bob_id_;
  pki::Identity ttp_id_;
  nr::ClientActor alice_;
  nr::ProviderActor bob_;
  nr::TtpActor ttp_;
};

// kStaleVersion: the store silently serves a rolled-back version. The TPNR
// fetch catches it — the served bytes no longer hash to the value the
// evidence binds — where the naive MD5 check of Fig. 5 would not.
TEST_F(FaultKindsTest, StaleVersionFaultCaughtByTpnrFetch) {
  crypto::Drbg data_rng(std::uint64_t{1});
  const common::Bytes v1 = data_rng.bytes(600);
  const common::Bytes v2 = data_rng.bytes(600);
  stored("rollback-object", v1);
  const std::string txn2 = stored("rollback-object", v2);

  bob_.store().set_fault_policy({FaultKind::kStaleVersion, 1.0});
  alice_.fetch(txn2);
  network_.run();

  const auto* state = alice_.transaction(txn2);
  ASSERT_TRUE(state->fetched);
  EXPECT_FALSE(state->fetch_integrity_ok);
  EXPECT_EQ(state->fetched_data, v1);  // the rollback really was served

  const auto faults = bob_.store().fault_log_for("rollback-object");
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].kind, FaultKind::kStaleVersion);
  EXPECT_EQ(faults[0].version, 2u);
  EXPECT_GT(faults[0].at, 0);
}

// kLoss: the object disappears at rest. The provider has nothing to serve,
// so the fetch never completes — distinguishable from a tampered response.
TEST_F(FaultKindsTest, LossFaultLeavesFetchUnanswered) {
  crypto::Drbg data_rng(std::uint64_t{2});
  const std::string txn = stored("doomed-object", data_rng.bytes(500));

  bob_.store().set_fault_policy({FaultKind::kLoss, 1.0});
  alice_.fetch(txn);
  network_.run();

  const auto* state = alice_.transaction(txn);
  EXPECT_FALSE(state->fetched);
  // Loss is a read-path fault: the index still lists the key, but every
  // read comes back empty — the provider cannot produce the bytes.
  EXPECT_TRUE(bob_.store().exists("doomed-object"));

  const auto faults = bob_.store().fault_log_for("doomed-object");
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].kind, FaultKind::kLoss);
  EXPECT_GT(faults[0].at, 0);
}

// Contrast case: a fault policy that never fires leaves the fetch clean and
// the fault log empty.
TEST_F(FaultKindsTest, ZeroProbabilityPolicyInjectsNothing) {
  crypto::Drbg data_rng(std::uint64_t{3});
  const common::Bytes data = data_rng.bytes(400);
  const std::string txn = stored("safe-object", data);

  bob_.store().set_fault_policy({FaultKind::kLoss, 0.0});
  alice_.fetch(txn);
  network_.run();

  const auto* state = alice_.transaction(txn);
  ASSERT_TRUE(state->fetched);
  EXPECT_TRUE(state->fetch_integrity_ok);
  EXPECT_EQ(state->fetched_data, data);
  EXPECT_TRUE(bob_.store().fault_log().empty());
}

}  // namespace
}  // namespace tpnr
