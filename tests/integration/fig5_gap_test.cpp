// Integration: the Fig. 5 integrity gap, demonstrated uniformly across the
// three platform models, and then closed by each §3 bridging scheme and by
// the §4 TPNR protocol. This test IS the paper's core argument, executable.
#include <gtest/gtest.h>

#include "bridge/scheme.h"
#include "crypto/hash.h"
#include "providers/aws_import_export.h"
#include "providers/azure_rest.h"
#include "providers/google_sdc.h"

namespace tpnr {
namespace {

using common::to_bytes;
using providers::CloudPlatform;
using providers::DownloadResult;
using providers::Md5Source;

struct PlatformFactory {
  std::string name;
  std::function<std::unique_ptr<CloudPlatform>(common::SimClock&,
                                               crypto::Drbg&)>
      make;
};

std::vector<PlatformFactory> factories() {
  return {
      {"azure",
       [](common::SimClock& clock, crypto::Drbg& rng) {
         auto service = std::make_unique<providers::AzureRestService>(clock);
         service->create_account("user1", rng);
         return std::unique_ptr<CloudPlatform>(std::move(service));
       }},
      {"aws",
       [](common::SimClock& clock, crypto::Drbg& rng) {
         auto service = std::make_unique<providers::AwsImportExport>(clock);
         service->register_user("user1", rng);
         return std::unique_ptr<CloudPlatform>(std::move(service));
       }},
      {"gae",
       [](common::SimClock& clock, crypto::Drbg&) {
         return std::unique_ptr<CloudPlatform>(
             std::make_unique<providers::GoogleSdcService>(clock));
       }},
  };
}

class Fig5GapTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  common::SimClock clock_;
  crypto::Drbg rng_{std::uint64_t{314159}};
};

// The naive client protocol of Fig. 5: trust whatever MD5 the provider
// returns. Returns true iff the client NOTICES the tampering.
bool naive_client_detects(CloudPlatform& platform, crypto::Drbg& rng) {
  const common::Bytes data = rng.bytes(256);
  const common::Bytes md5_1 = crypto::md5(data);
  if (!platform.upload("user1", "obj", data, md5_1).accepted) {
    ADD_FAILURE() << "upload failed on " << platform.name();
    return true;
  }
  if (!platform.tamper("obj", rng.bytes(256))) {
    ADD_FAILURE() << "tamper failed on " << platform.name();
    return true;
  }
  const DownloadResult result = platform.download("user1", "obj");
  if (!result.ok) return true;  // at least it failed loudly
  // The naive check: does the returned data match the returned MD5?
  return crypto::md5(result.data) != result.md5_returned;
}

TEST_P(Fig5GapTest, NaiveClientMissesInStoreTamperingOnAwsAndAzureStyle) {
  const auto factory = factories()[GetParam()];
  auto platform = factory.make(clock_, rng_);

  const bool detected = naive_client_detects(*platform, rng_);
  if (platform->name() == "aws") {
    // AWS recomputes the MD5: the tampered data is self-consistent, the
    // naive check passes, the corruption sails through.
    EXPECT_FALSE(detected) << "recomputed MD5 should mask tampering";
  } else if (platform->name() == "azure") {
    // Azure echoes the stored MD5: data-vs-checksum disagrees, so the naive
    // check trips here — but only because the client re-hashes; a client
    // trusting the upload-time acknowledgement alone learns nothing new,
    // and the provider can still repudiate (no signatures anywhere).
    EXPECT_TRUE(detected);
  } else {
    // GAE's low API returns no checksum; our adapter surfaces the stored
    // one, making it Azure-like.
    EXPECT_TRUE(detected);
  }
}

// With ANY §3 bridging scheme the client always detects — on every
// platform — and can prove fault to an arbitrator.
TEST_P(Fig5GapTest, BridgedClientAlwaysDetectsAndWinsDispute) {
  static crypto::Drbg identity_rng(std::uint64_t{777111});
  static pki::Identity user("user1", 1024, identity_rng);
  static pki::Identity provider("provider", 1024, identity_rng);
  static pki::Identity tac("tac", 1024, identity_rng);

  const auto factory = factories()[GetParam()];
  auto platform = factory.make(clock_, rng_);

  for (const auto kind :
       {bridge::SchemeKind::kPlain, bridge::SchemeKind::kSks,
        bridge::SchemeKind::kTac, bridge::SchemeKind::kTacSks}) {
    auto scheme =
        bridge::make_scheme(kind, user, provider, *platform, rng_, &tac);
    const std::string key = "obj-" + bridge::scheme_name(kind);
    const common::Bytes data = rng_.bytes(300);
    ASSERT_TRUE(scheme->upload(key, data).accepted)
        << platform->name() << " / " << bridge::scheme_name(kind);
    ASSERT_TRUE(platform->tamper(key, rng_.bytes(300)));

    const auto down = scheme->download(key);
    EXPECT_FALSE(down.integrity_ok)
        << platform->name() << " / " << bridge::scheme_name(kind);

    const auto outcome = scheme->dispute(key, true);
    EXPECT_EQ(outcome.verdict, bridge::Verdict::kProviderFault)
        << platform->name() << " / " << bridge::scheme_name(kind) << ": "
        << outcome.rationale;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPlatforms, Fig5GapTest,
                         ::testing::Values(0u, 1u, 2u),
                         [](const auto& info) {
                           return factories()[info.param].name;
                         });

}  // namespace
}  // namespace tpnr
