// runtime::TimerWheel and runtime::EventStore: the wheel must be an exact
// drop-in for the binary-heap event queue — identical pop order under every
// interleaving of pushes and pops, including same-instant events spread
// across wheel levels, pushes landing mid-drain at the current instant, and
// events beyond the 2^36-tick horizon (overflow heap).
#include "runtime/timer_wheel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <tuple>
#include <vector>

#include "runtime/event.h"

namespace tpnr::runtime {
namespace {

using Key = std::tuple<common::SimTime, EndpointId, std::uint64_t>;

Event make_event(common::SimTime at, EndpointId origin, std::uint64_t seq) {
  Event event;
  event.at = at;
  event.origin = origin;
  event.seq = seq;
  event.target = 0;
  return event;
}

Key key_of(const Event& event) {
  return {event.at, event.origin, event.seq};
}

/// Drains a store completely, returning the pop order as merge keys.
std::vector<Key> drain(EventStore& store) {
  std::vector<Key> keys;
  while (!store.empty()) keys.push_back(key_of(store.pop()));
  return keys;
}

TEST(TimerWheel, PopsInMergeKeyOrder) {
  // Shuffled pushes with duplicate timestamps: pops must come back sorted
  // by the full (at, origin, seq) merge key, same as the heap's comparator.
  std::vector<Event> events;
  std::uint64_t seq = 0;
  for (const common::SimTime at : {5, 5, 5, 70, 70, 4096, 4096, 0, 1}) {
    events.push_back(make_event(at, static_cast<EndpointId>(seq % 3), ++seq));
  }
  std::mt19937 shuffle_rng(7);
  std::shuffle(events.begin(), events.end(), shuffle_rng);

  EventStore wheel(/*use_wheel=*/true);
  for (const Event& event : events) wheel.push(event);
  std::vector<Key> expected;
  for (const Event& event : events) expected.push_back(key_of(event));
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(drain(wheel), expected);
}

TEST(TimerWheel, MatchesHeapUnderRandomizedInterleaving) {
  // Property check: a wheel-backed and a heap-backed store fed the exact
  // same interleaved push/pop sequence must agree on every popped key.
  // Timestamps cluster (many duplicates), occasionally jump levels, and
  // occasionally land below the current floor (the engine never does this,
  // but the wheel keeps heap semantics there too).
  std::mt19937_64 rng(20260809);
  EventStore wheel(true);
  EventStore heap(false);
  common::SimTime floor = 0;
  std::uint64_t seq = 0;
  std::size_t pending = 0;
  for (int step = 0; step < 20000; ++step) {
    const bool push = pending == 0 || (rng() % 3) != 0;
    if (push) {
      common::SimTime at = floor;
      switch (rng() % 5) {
        case 0: break;                          // exactly the current floor
        case 1: at += rng() % 4; break;         // same level-0 neighborhood
        case 2: at += rng() % 4096; break;      // a level or two up
        case 3: at += rng() % (1 << 22); break; // high levels
        default:
          at = floor > 2 ? floor - 1 - (rng() % 2) : 0;  // below the floor
          break;
      }
      const Event event =
          make_event(at, static_cast<EndpointId>(rng() % 8), ++seq);
      wheel.push(event);
      heap.push(event);
      ++pending;
    } else {
      const Event* wheel_head = wheel.peek();
      const Event* heap_head = heap.peek();
      ASSERT_NE(wheel_head, nullptr);
      ASSERT_NE(heap_head, nullptr);
      EXPECT_EQ(key_of(*wheel_head), key_of(*heap_head)) << "at step " << step;
      const Event popped = wheel.pop();
      EXPECT_EQ(key_of(popped), key_of(heap.pop()));
      floor = popped.at;
      --pending;
    }
  }
  EXPECT_EQ(drain(wheel), drain(heap));
}

TEST(TimerWheel, SameInstantEventsPushedAtDifferentFloors) {
  // Two events at the same instant can sit in DIFFERENT wheel levels when
  // they were pushed at different floors; advancing must drain both.
  EventStore wheel(true);
  wheel.push(make_event(5000, 0, 1));  // pushed at floor 0: a high level
  wheel.push(make_event(10, 0, 2));
  EXPECT_EQ(key_of(wheel.pop()), (Key{10, 0, 2}));  // floor is now 10
  wheel.push(make_event(5000, 0, 3));  // delta 4990: possibly another level
  wheel.push(make_event(5000, 1, 4));
  EXPECT_EQ(key_of(wheel.pop()), (Key{5000, 0, 1}));
  EXPECT_EQ(key_of(wheel.pop()), (Key{5000, 0, 3}));
  EXPECT_EQ(key_of(wheel.pop()), (Key{5000, 1, 4}));
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheel, PushAtCurrentInstantDuringDrainKeepsOrder) {
  // The engine may post a same-shard event at `now` while draining a tick.
  // A heap would interleave it by merge key; the wheel must do the same.
  EventStore wheel(true);
  wheel.push(make_event(10, 0, 1));
  wheel.push(make_event(10, 0, 3));
  EXPECT_EQ(key_of(wheel.pop()), (Key{10, 0, 1}));
  wheel.push(make_event(10, 0, 2));  // lands between the drained and pending
  EXPECT_EQ(key_of(wheel.pop()), (Key{10, 0, 2}));
  EXPECT_EQ(key_of(wheel.pop()), (Key{10, 0, 3}));
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheel, OverflowBeyondHorizonIsOrderedWithNearEvents) {
  // Events past the 2^36-tick horizon park in the overflow heap and must
  // still pop in global order after every near event.
  constexpr common::SimTime kHorizon = common::SimTime{1} << 36;
  EventStore wheel(true);
  wheel.push(make_event(kHorizon + 7, 0, 1));
  wheel.push(make_event(kHorizon, 0, 2));
  wheel.push(make_event(3, 0, 3));
  wheel.push(make_event(kHorizon * 3, 0, 4));
  EXPECT_EQ(key_of(wheel.pop()), (Key{3, 0, 3}));
  EXPECT_EQ(key_of(wheel.pop()), (Key{kHorizon, 0, 2}));
  EXPECT_EQ(key_of(wheel.pop()), (Key{kHorizon + 7, 0, 1}));
  EXPECT_EQ(key_of(wheel.pop()), (Key{kHorizon * 3, 0, 4}));
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheel, PeekIsStableAndNonConsuming) {
  EventStore wheel(true);
  wheel.push(make_event(42, 1, 9));
  wheel.push(make_event(7, 2, 5));
  const Event* head = wheel.peek();
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(key_of(*head), (Key{7, 2, 5}));
  EXPECT_EQ(key_of(*wheel.peek()), (Key{7, 2, 5}));  // idempotent
  EXPECT_EQ(wheel.size(), 2u);
}

TEST(EventStore, EmptyStoreBehaviour) {
  for (const bool use_wheel : {true, false}) {
    EventStore store(use_wheel);
    EXPECT_TRUE(store.empty());
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(store.peek(), nullptr);
  }
}

}  // namespace
}  // namespace tpnr::runtime
