// runtime::Engine: the determinism contract (same seed => identical
// per-endpoint traces for ANY shard count and worker count), per-endpoint
// random streams, timer binding, and the name interner.
//
// The shard sweep here is the unit-level regression for the engine's one
// hard promise; bench_scale re-checks the same property end to end through
// the full TPNR protocol stack.
#include "runtime/engine.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/clock.h"

namespace tpnr::runtime {
namespace {

using common::SimTime;

constexpr SimTime kLatency = 10;  // also the lookahead in the ring workload

/// Runs a token-ring workload: E endpoints, one token starting at each, H
/// hops per token; every hop records (token, sim-time, one rng byte,
/// counter) into the OWNING endpoint's trace. Per-endpoint traces are the
/// engine's observable behaviour — the determinism contract says they must
/// not depend on shards/workers.
std::vector<std::vector<std::string>> run_ring(std::uint64_t seed,
                                               EngineOptions options,
                                               std::size_t endpoints = 5,
                                               std::size_t hops = 8) {
  Engine engine(seed, options);
  engine.set_lookahead(kLatency);
  std::vector<EndpointId> ids;
  ids.reserve(endpoints);
  for (std::size_t e = 0; e < endpoints; ++e) {
    ids.push_back(engine.endpoint("ep-" + std::to_string(e)));
  }
  // Each endpoint executes serially, so per-endpoint traces need no locks
  // even with worker threads.
  std::vector<std::vector<std::string>> traces(endpoints);

  // hop() re-posts itself around the ring until the token dies. Hops always
  // travel at now + kLatency — at or past the conservative-window bound, the
  // same guarantee a real transport provides.
  std::function<void(std::size_t, std::size_t, std::size_t)> hop =
      [&](std::size_t token, std::size_t at_endpoint, std::size_t remaining) {
        const EndpointId self = ids[at_endpoint];
        const std::uint8_t draw = engine.rng(self).bytes(1)[0];
        traces[at_endpoint].push_back(
            "t" + std::to_string(token) + "@" + std::to_string(engine.now()) +
            ":" + std::to_string(draw) + ":" +
            std::to_string(engine.next_counter(self)));
        if (remaining == 0) return;
        const std::size_t next = (at_endpoint + 1) % ids.size();
        engine.post(ids[next], self, engine.now() + kLatency,
                    [&hop, token, next, remaining] {
                      hop(token, next, remaining - 1);
                    });
      };
  for (std::size_t token = 0; token < endpoints; ++token) {
    const std::size_t start = token;
    engine.post(ids[start], kNoEndpoint, 0,
                [&hop, token, start, hops] { hop(token, start, hops); });
  }
  engine.run(1 << 20);
  EXPECT_TRUE(engine.idle());
  return traces;
}

TEST(EngineDeterminism, TraceInvariantAcrossShardAndWorkerCounts) {
  const auto baseline = run_ring(7, {1, 1});
  // {2,1} and {4,1} are the serial multi-shard paths; {2,4}/{4,4} fan rounds
  // out to worker threads. All must reproduce the single-shard trace.
  for (const EngineOptions options :
       {EngineOptions{2, 1}, EngineOptions{4, 1}, EngineOptions{2, 4},
        EngineOptions{4, 4}, EngineOptions{3, 2}}) {
    const auto trace = run_ring(7, options);
    EXPECT_EQ(trace, baseline)
        << "divergence at shards=" << options.shards
        << " workers=" << options.workers;
  }
}

TEST(EngineDeterminism, TimerWheelMatchesLegacyHeapTraces) {
  // The timer wheel (default) and the legacy heap must produce byte-
  // identical event traces for the same seed at every shard/worker shape —
  // the wheel is a pure representation change, never an ordering change.
  for (const auto& [shards, workers] :
       {std::pair<std::uint32_t, std::uint32_t>{1, 1}, {4, 1}, {4, 4}}) {
    EngineOptions wheel{shards, workers};
    wheel.use_timer_wheel = true;
    EngineOptions heap{shards, workers};
    heap.use_timer_wheel = false;
    EXPECT_EQ(run_ring(23, wheel, 6, 12), run_ring(23, heap, 6, 12))
        << "wheel/heap divergence at shards=" << shards
        << " workers=" << workers;
  }
}

TEST(EngineDeterminism, SameConfigIsReproducible) {
  EXPECT_EQ(run_ring(11, {4, 4}), run_ring(11, {4, 4}));
}

TEST(EngineDeterminism, DifferentSeedsDiverge) {
  EXPECT_NE(run_ring(1, {1, 1}), run_ring(2, {1, 1}));
}

TEST(EngineDeterminism, RngStreamDependsOnNameNotRegistrationOrder) {
  Engine forward(99);
  Engine reversed(99);
  const EndpointId a1 = forward.endpoint("alpha");
  const EndpointId b1 = forward.endpoint("beta");
  const EndpointId b2 = reversed.endpoint("beta");
  const EndpointId a2 = reversed.endpoint("alpha");
  EXPECT_EQ(forward.rng(a1).bytes(16), reversed.rng(a2).bytes(16));
  EXPECT_EQ(forward.rng(b1).bytes(16), reversed.rng(b2).bytes(16));
}

TEST(Engine, EndpointRegistrationIsIdempotent) {
  Engine engine(1);
  const EndpointId first = engine.endpoint("node");
  const EndpointId second = engine.endpoint("node");
  EXPECT_EQ(first, second);
  EXPECT_EQ(engine.endpoint_name(first), "node");
}

TEST(Engine, ShardAssignmentIsRoundRobinInRegistrationOrder) {
  Engine engine(1, {3, 1});
  EXPECT_EQ(engine.shard_count(), 3u);
  for (std::uint32_t i = 0; i < 7; ++i) {
    const EndpointId id = engine.endpoint("n" + std::to_string(i));
    EXPECT_EQ(engine.shard_of(id), i % 3);
  }
}

TEST(Engine, NextCounterIsMonotonePerEndpoint) {
  Engine engine(1);
  const EndpointId a = engine.endpoint("a");
  const EndpointId b = engine.endpoint("b");
  EXPECT_EQ(engine.next_counter(a), 1u);
  EXPECT_EQ(engine.next_counter(a), 2u);
  EXPECT_EQ(engine.next_counter(b), 1u);  // independent streams
  EXPECT_EQ(engine.next_counter(a), 3u);
}

TEST(Engine, TimerBindsToExecutingEndpoint) {
  Engine engine(1, {2, 1});
  const EndpointId a = engine.endpoint("a");
  const EndpointId b = engine.endpoint("b");
  (void)b;
  std::vector<std::pair<EndpointId, SimTime>> fired;
  engine.post(a, kNoEndpoint, 5, [&] {
    engine.post_timer(7, [&] {
      fired.emplace_back(engine.current_endpoint(), engine.now());
    });
  });
  engine.run(100);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].first, a);  // the timer stayed on endpoint a
  EXPECT_EQ(fired[0].second, 12);
}

TEST(Engine, DriverTimersExecuteInScheduleOrder) {
  Engine engine(1);
  std::vector<int> order;
  engine.post_timer(5, [&] { order.push_back(1); });
  engine.post_timer(5, [&] { order.push_back(2); });  // same instant: FIFO
  engine.post_timer(3, [&] { order.push_back(0); });
  engine.run(100);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Engine, CrossShardPostsAreClampedToLookahead) {
  Engine engine(1, {2, 1});
  engine.set_lookahead(50);
  const EndpointId a = engine.endpoint("a");  // shard 0
  const EndpointId b = engine.endpoint("b");  // shard 1
  ASSERT_NE(engine.shard_of(a), engine.shard_of(b));
  SimTime delivered = -1;
  engine.post(a, kNoEndpoint, 10, [&] {
    // Misbehaving caller: cross-shard post at "now". The backstop defers it
    // to now + lookahead instead of tearing a conservative window.
    engine.post(b, a, engine.now(), [&] { delivered = engine.now(); });
  });
  engine.run(100);
  EXPECT_EQ(delivered, 60);
}

TEST(Engine, SameShardPostsAreNotClamped) {
  Engine engine(1, {1, 1});
  engine.set_lookahead(50);
  const EndpointId a = engine.endpoint("a");
  const EndpointId b = engine.endpoint("b");  // same (only) shard
  SimTime delivered = -1;
  engine.post(a, kNoEndpoint, 10, [&] {
    engine.post(b, a, engine.now() + 1, [&] { delivered = engine.now(); });
  });
  engine.run(100);
  EXPECT_EQ(delivered, 11);
}

TEST(Engine, RunRespectsMaxEventsInSerialMode) {
  Engine engine(1);
  const EndpointId a = engine.endpoint("a");
  int executed = 0;
  for (int i = 0; i < 10; ++i) {
    engine.post(a, kNoEndpoint, i, [&] { ++executed; });
  }
  EXPECT_EQ(engine.run(4), 4u);
  EXPECT_EQ(executed, 4);
  EXPECT_FALSE(engine.idle());
  EXPECT_EQ(engine.run(100), 6u);
  EXPECT_TRUE(engine.idle());
}

TEST(Engine, StatsCountExecutedEvents) {
  Engine engine(1, {2, 2});
  const auto trace = [&] {
    const EndpointId a = engine.endpoint("a");
    const EndpointId b = engine.endpoint("b");
    engine.set_lookahead(5);
    engine.post(a, kNoEndpoint, 0, [&engine, a, b] {
      engine.post(b, a, engine.now() + 5, [] {});
    });
    engine.run(100);
  };
  trace();
  EXPECT_EQ(engine.stats().events_executed, 2u);
}

TEST(NameInterner, InternAndLookupRoundTrip) {
  NameInterner interner;
  const NameId a = interner.intern("alpha");
  const NameId b = interner.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.intern("alpha"), a);  // idempotent
  EXPECT_EQ(interner.name(a), "alpha");
  EXPECT_EQ(interner.name(b), "beta");
  EXPECT_EQ(interner.size(), 2u);
  ASSERT_TRUE(interner.find("alpha").has_value());
  EXPECT_EQ(*interner.find("alpha"), a);
  EXPECT_FALSE(interner.find("gamma").has_value());
}

TEST(NameInterner, IdsAreDenseInInternOrder) {
  NameInterner interner;
  for (NameId i = 0; i < 100; ++i) {
    EXPECT_EQ(interner.intern("name-" + std::to_string(i)), i);
  }
}

}  // namespace
}  // namespace tpnr::runtime
