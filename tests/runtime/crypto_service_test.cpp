// runtime::CryptoService: deferred digest/verify completions must leave
// every per-endpoint trace byte-identical to inline execution — for ANY
// shard and worker count. This is the unit-level regression for the
// batching service's determinism contract; bench_determinism re-checks the
// same property end to end through the full protocol stack.
#include "runtime/crypto_service.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/payload.h"
#include "crypto/counters.h"
#include "crypto/drbg.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "runtime/engine.h"

namespace tpnr::runtime {
namespace {

using common::Bytes;
using common::SimTime;
using common::to_bytes;

constexpr SimTime kLatency = 10;

/// Forces accel().crypto_service for one scope, restoring the prior config.
class ServiceGuard {
 public:
  explicit ServiceGuard(bool service_on) : saved_(crypto::accel()) {
    crypto::AccelConfig config = saved_;
    config.crypto_service = service_on;
    crypto::set_accel(config);
  }
  ~ServiceGuard() { crypto::set_accel(saved_); }
  ServiceGuard(const ServiceGuard&) = delete;
  ServiceGuard& operator=(const ServiceGuard&) = delete;

 private:
  crypto::AccelConfig saved_;
};

/// Shared signing key — generation is the slow part, do it once.
struct Fixture {
  crypto::RsaKeyPair pair;
  std::shared_ptr<const crypto::RsaPublicKey> pub;
  std::vector<Bytes> msgs;
  std::vector<Bytes> sigs;  // sigs[2] deliberately corrupted
};

const Fixture& fixture() {
  static const Fixture* f = [] {
    auto* out = new Fixture;
    crypto::Drbg rng(std::uint64_t{424242});
    out->pair = crypto::rsa_generate(512, rng);
    out->pub = std::make_shared<const crypto::RsaPublicKey>(out->pair.pub);
    for (int i = 0; i < 4; ++i) {
      out->msgs.push_back(to_bytes("service message " + std::to_string(i)));
      out->sigs.push_back(crypto::rsa_sign(
          out->pair.priv, crypto::HashKind::kSha256, out->msgs.back()));
    }
    out->sigs[2][3] ^= 0x20;
    return out;
  }();
  return *f;
}

/// Token-ring workload where every hop runs through the crypto service:
/// hop -> submit digests (chunk text + tagged variant) -> completion submits
/// verifies (one valid + one corrupted signature) -> completion records the
/// trace line and posts the next hop. Each trace line folds in sim-time, an
/// rng draw, the per-endpoint counter, a digest prefix and both verdicts —
/// so any reordering, re-timing or cross-talk between deferred completions
/// shows up as a trace diff.
std::vector<std::vector<std::string>> run_ring(std::uint64_t seed,
                                               EngineOptions options,
                                               std::size_t endpoints = 4,
                                               std::size_t hops = 6) {
  const Fixture& fx = fixture();
  Engine engine(seed, options);
  engine.set_lookahead(kLatency);
  std::vector<EndpointId> ids;
  ids.reserve(endpoints);
  for (std::size_t e = 0; e < endpoints; ++e) {
    ids.push_back(engine.endpoint("svc-" + std::to_string(e)));
  }
  std::vector<std::vector<std::string>> traces(endpoints);

  std::function<void(std::size_t, std::size_t, std::size_t)> hop =
      [&](std::size_t token, std::size_t at_endpoint, std::size_t remaining) {
        const EndpointId self = ids[at_endpoint];
        const Bytes payload = to_bytes(
            "tok" + std::to_string(token) + "#" + std::to_string(remaining));
        std::vector<DigestJob> digest_jobs(2);
        digest_jobs[0].message = common::Payload::copy_of(payload);
        digest_jobs[1].message = common::Payload::copy_of(payload);
        digest_jobs[1].tag = 0x00;
        engine.crypto_service().submit_digests(
            std::move(digest_jobs),
            [&, token, at_endpoint, remaining, self](std::vector<Bytes> dgs) {
              const std::size_t which = (token + remaining) % fx.msgs.size();
              std::vector<VerifyJob> verify_jobs(2);
              verify_jobs[0].key = fx.pub;
              verify_jobs[0].message = fx.msgs[which];
              verify_jobs[0].signature = fx.sigs[which];
              verify_jobs[1].key = fx.pub;
              verify_jobs[1].message = fx.msgs[2];
              verify_jobs[1].signature = fx.sigs[2];  // always rejected
              engine.crypto_service().submit_verifies(
                  std::move(verify_jobs),
                  [&, token, at_endpoint, remaining, self,
                   prefix = static_cast<int>(dgs[0][0]) * 256 +
                            static_cast<int>(dgs[1][0])](
                      std::vector<bool> ok) {
                    const std::uint8_t draw = engine.rng(self).bytes(1)[0];
                    traces[at_endpoint].push_back(
                        "t" + std::to_string(token) + "@" +
                        std::to_string(engine.now()) + ":" +
                        std::to_string(draw) + ":" +
                        std::to_string(engine.next_counter(self)) + ":" +
                        std::to_string(prefix) + ":" +
                        std::to_string(static_cast<int>(ok[0])) +
                        std::to_string(static_cast<int>(ok[1])));
                    if (remaining == 0) return;
                    const std::size_t next = (at_endpoint + 1) % ids.size();
                    engine.post(ids[next], self, engine.now() + kLatency,
                                [&hop, token, next, remaining] {
                                  hop(token, next, remaining - 1);
                                });
                  });
            });
      };
  for (std::size_t token = 0; token < endpoints; ++token) {
    const std::size_t start = token;
    engine.post(ids[start], kNoEndpoint, 0,
                [&hop, token, start, hops] { hop(token, start, hops); });
  }
  engine.run(1 << 20);
  EXPECT_TRUE(engine.idle());
  return traces;
}

TEST(CryptoServiceDeterminism, TraceMatchesInlineAcrossShardsAndWorkers) {
  // Inline baseline: the service disabled, every submit completes
  // synchronously inside the submitting event.
  std::vector<std::vector<std::string>> baseline;
  {
    ServiceGuard off(false);
    baseline = run_ring(13, {1, 1});
  }
  ASSERT_FALSE(baseline.empty());
  ASSERT_FALSE(baseline[0].empty());

  ServiceGuard on(true);
  for (const EngineOptions options :
       {EngineOptions{1, 1}, EngineOptions{2, 1}, EngineOptions{4, 1},
        EngineOptions{1, 2}, EngineOptions{2, 2}, EngineOptions{2, 4},
        EngineOptions{4, 2}, EngineOptions{4, 4}}) {
    const std::uint64_t deferred_before =
        crypto::counters().service_jobs.load();
    const auto trace = run_ring(13, options);
    EXPECT_EQ(trace, baseline)
        << "divergence at shards=" << options.shards
        << " workers=" << options.workers;
    // The equality must be earned by actual deferral, not by the service
    // quietly running everything inline.
    EXPECT_GT(crypto::counters().service_jobs.load(), deferred_before)
        << "no jobs were deferred at shards=" << options.shards;
  }
}

TEST(CryptoServiceDeterminism, ServiceRunsAreReproducible) {
  ServiceGuard on(true);
  EXPECT_EQ(run_ring(77, {4, 4}), run_ring(77, {4, 4}));
}

TEST(CryptoService, DriverContextCompletesSynchronously) {
  ServiceGuard on(true);
  Engine engine(1);
  const Fixture& fx = fixture();

  // Outside any endpoint event the service may not defer: tests and bench
  // drivers rely on synchronous semantics.
  bool digest_ran = false;
  std::vector<DigestJob> jobs(1);
  jobs[0].message = common::Payload::copy_of(to_bytes("inline digest"));
  engine.crypto_service().submit_digests(
      std::move(jobs), [&](std::vector<Bytes> dgs) {
        digest_ran = true;
        ASSERT_EQ(dgs.size(), 1u);
        EXPECT_EQ(dgs[0], crypto::sha256(to_bytes("inline digest")));
      });
  EXPECT_TRUE(digest_ran);
  EXPECT_FALSE(engine.crypto_service().pending());

  bool verify_ran = false;
  std::vector<VerifyJob> checks(2);
  checks[0].key = fx.pub;
  checks[0].message = fx.msgs[0];
  checks[0].signature = fx.sigs[0];
  checks[1].key = fx.pub;
  checks[1].message = fx.msgs[2];
  checks[1].signature = fx.sigs[2];
  engine.crypto_service().submit_verifies(
      std::move(checks), [&](std::vector<bool> ok) {
        verify_ran = true;
        ASSERT_EQ(ok.size(), 2u);
        EXPECT_TRUE(ok[0]);
        EXPECT_FALSE(ok[1]);
      });
  EXPECT_TRUE(verify_ran);
  EXPECT_FALSE(engine.crypto_service().pending());
}

TEST(CryptoService, EmptySubmissionsCompleteImmediately) {
  Engine engine(1);
  bool digest_ran = false;
  bool verify_ran = false;
  engine.crypto_service().submit_digests({}, [&](std::vector<Bytes> dgs) {
    digest_ran = true;
    EXPECT_TRUE(dgs.empty());
  });
  engine.crypto_service().submit_verifies({}, [&](std::vector<bool> ok) {
    verify_ran = true;
    EXPECT_TRUE(ok.empty());
  });
  EXPECT_TRUE(digest_ran);
  EXPECT_TRUE(verify_ran);
}

TEST(CryptoService, DeferredCompletionRunsAtSubmissionTime) {
  ServiceGuard on(true);
  Engine engine(1, {2, 1});
  engine.set_lookahead(kLatency);
  const EndpointId a = engine.endpoint("a");
  SimTime submitted_at = -1;
  SimTime completed_at = -1;
  EndpointId completed_on = kNoEndpoint;
  engine.post(a, kNoEndpoint, 5, [&] {
    submitted_at = engine.now();
    std::vector<DigestJob> jobs(1);
    jobs[0].message = common::Payload::copy_of(to_bytes("when"));
    engine.crypto_service().submit_digests(
        std::move(jobs), [&](std::vector<Bytes>) {
          completed_at = engine.now();
          completed_on = engine.current_endpoint();
        });
    // Still pending: the submission itself must not compute inline.
    EXPECT_TRUE(engine.crypto_service().pending());
  });
  engine.run(100);
  EXPECT_TRUE(engine.idle());
  EXPECT_EQ(submitted_at, 5);
  EXPECT_EQ(completed_at, 5);  // same sim-time as the submission
  EXPECT_EQ(completed_on, a);  // same endpoint context
}

}  // namespace
}  // namespace tpnr::runtime
