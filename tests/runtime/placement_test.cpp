// runtime::Placement: the consistent-hash object->provider ring. The
// properties that make it fleet-safe: ownership is a pure function of the
// membership set (not insertion history), membership changes move only the
// keys they must (adds steal exclusively for the new node; removals
// redistribute exclusively the removed node's keys), and every change bumps
// the version so cached directory answers can be aged out.
#include "runtime/placement.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace tpnr::runtime {
namespace {

std::vector<std::string> keys(std::size_t count) {
  std::vector<std::string> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back("obj-" + std::to_string(i));
  }
  return out;
}

Placement make_ring(std::size_t providers, std::uint32_t vnodes = 64) {
  Placement ring(vnodes);
  for (std::size_t i = 0; i < providers; ++i) {
    ring.add_provider("p-" + std::to_string(i));
  }
  return ring;
}

TEST(Placement, OwnerIsDeterministicAcrossInstancesAndInsertOrder) {
  Placement forward = make_ring(5);
  Placement reversed(64);
  for (int i = 4; i >= 0; --i) reversed.add_provider("p-" + std::to_string(i));
  for (const std::string& key : keys(200)) {
    EXPECT_EQ(forward.owner(key), reversed.owner(key)) << key;
  }
}

TEST(Placement, EmptyRingThrows) {
  Placement ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_THROW((void)ring.owner("anything"), std::runtime_error);
}

TEST(Placement, OwnersAreDistinctClockwiseSuccessors) {
  const Placement ring = make_ring(6);
  const std::vector<std::string> replicas = ring.owners("obj-17", 3);
  ASSERT_EQ(replicas.size(), 3u);
  EXPECT_EQ(replicas.front(), ring.owner("obj-17"));
  EXPECT_EQ(std::set<std::string>(replicas.begin(), replicas.end()).size(),
            3u);
  // Asking for more replicas than providers returns each provider once.
  EXPECT_EQ(ring.owners("obj-17", 99).size(), 6u);
}

TEST(Placement, SpreadsKeysAcrossAllProviders) {
  const Placement ring = make_ring(8);
  std::map<std::string, std::size_t> load;
  for (const std::string& key : keys(4000)) ++load[ring.owner(key)];
  EXPECT_EQ(load.size(), 8u);  // nobody starved
  for (const auto& [provider, count] : load) {
    // Uniform share is 500; 64 vnodes keeps everyone within a loose band.
    EXPECT_GT(count, 150u) << provider;
    EXPECT_LT(count, 1200u) << provider;
  }
}

TEST(Placement, AddingProviderStealsOnlyForItself) {
  Placement ring = make_ring(8);
  const std::vector<std::string> sample = keys(4000);
  std::map<std::string, std::string> before;
  for (const std::string& key : sample) before[key] = ring.owner(key);

  ring.add_provider("p-8");
  std::size_t moved = 0;
  for (const std::string& key : sample) {
    const std::string& now = ring.owner(key);
    if (now != before[key]) {
      ++moved;
      // The consistent-hashing guarantee: a join only moves keys TO the
      // joining node — nothing reshuffles between the old providers.
      EXPECT_EQ(now, "p-8") << key << " moved between old providers";
    }
  }
  // Expected fraction ~1/9 of the keys; allow a generous band.
  EXPECT_GT(moved, sample.size() / 30);
  EXPECT_LT(moved, sample.size() / 3);
}

TEST(Placement, RemovingProviderMovesOnlyItsKeys) {
  Placement ring = make_ring(8);
  const std::vector<std::string> sample = keys(4000);
  std::map<std::string, std::string> before;
  for (const std::string& key : sample) before[key] = ring.owner(key);

  ring.remove_provider("p-3");
  EXPECT_EQ(ring.provider_count(), 7u);
  for (const std::string& key : sample) {
    if (before[key] == "p-3") {
      EXPECT_NE(ring.owner(key), "p-3");
    } else {
      // Keys of surviving providers must not move at all.
      EXPECT_EQ(ring.owner(key), before[key]) << key;
    }
  }
}

TEST(Placement, VersionBumpsOnEveryMembershipChange) {
  Placement ring(16);
  const std::uint64_t v0 = ring.version();
  ring.add_provider("a");
  const std::uint64_t v1 = ring.version();
  EXPECT_GT(v1, v0);
  ring.add_provider("b");
  const std::uint64_t v2 = ring.version();
  EXPECT_GT(v2, v1);
  ring.remove_provider("a");
  EXPECT_GT(ring.version(), v2);
  // Lookups do not bump the version.
  const std::uint64_t v3 = ring.version();
  (void)ring.owner("k");
  EXPECT_EQ(ring.version(), v3);
}

}  // namespace
}  // namespace tpnr::runtime
