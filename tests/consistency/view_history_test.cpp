// View commitments: encoding, hash-chaining, signed verification, the
// append rules of ViewHistory, walk_view's TTP validation, and the
// self-certifying EquivocationProof.
#include "consistency/view_history.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/serial.h"
#include "crypto/drbg.h"
#include "crypto/hash.h"
#include "pki/identity.h"

namespace tpnr::consistency {
namespace {

using common::Bytes;

const pki::Identity& provider_identity() {
  static const pki::Identity* identity = [] {
    crypto::Drbg rng(std::uint64_t{70707});
    return new pki::Identity("provider", 1024, rng);
  }();
  return *identity;
}

ViewCommitment make_view(const std::string& key, std::uint64_t seq,
                         const Bytes& prev, const std::string& salt) {
  ViewCommitment view;
  view.object_key = key;
  view.global_seq = seq;
  view.client = (seq % 2 == 0) ? "carol" : "alice";
  view.op_record_hash =
      crypto::sha256(common::to_bytes("op|" + salt + std::to_string(seq)));
  view.head_version = seq;
  view.head_root =
      crypto::sha256(common::to_bytes("root|" + salt + std::to_string(seq)));
  view.observed_head = prev;
  view.prev_commit_hash = prev;
  return view;
}

SignedViewCommitment sign_view(ViewCommitment view) {
  SignedViewCommitment signed_view;
  signed_view.provider_sig = provider_identity().sign(view.encode());
  signed_view.view = std::move(view);
  return signed_view;
}

/// A well-formed, provider-signed history of `n` commitments. `salt`
/// varies the contents so two histories for the same key can diverge.
std::vector<SignedViewCommitment> make_history(const std::string& key,
                                               std::size_t n,
                                               const std::string& salt = "") {
  std::vector<SignedViewCommitment> out;
  Bytes prev = ViewCommitment::genesis_link();
  for (std::size_t seq = 1; seq <= n; ++seq) {
    out.push_back(sign_view(make_view(key, seq, prev, salt)));
    prev = out.back().view.hash();
  }
  return out;
}

TEST(ViewCommitment, EncodeDecodeRoundTripsAndHashIsStable) {
  const ViewCommitment view =
      make_view("obj", 3, crypto::sha256(common::to_bytes("prev")), "x");
  const ViewCommitment back = ViewCommitment::decode(view.encode());
  EXPECT_EQ(back.object_key, view.object_key);
  EXPECT_EQ(back.global_seq, view.global_seq);
  EXPECT_EQ(back.client, view.client);
  EXPECT_EQ(back.op_record_hash, view.op_record_hash);
  EXPECT_EQ(back.head_version, view.head_version);
  EXPECT_EQ(back.head_root, view.head_root);
  EXPECT_EQ(back.observed_head, view.observed_head);
  EXPECT_EQ(back.prev_commit_hash, view.prev_commit_hash);
  EXPECT_EQ(back.hash(), view.hash());

  ViewCommitment tampered = view;
  tampered.head_version = 4;
  EXPECT_NE(tampered.hash(), view.hash());
}

TEST(ViewCommitment, GenesisLinkIsThirtyTwoZeroBytes) {
  const Bytes& genesis = ViewCommitment::genesis_link();
  ASSERT_EQ(genesis.size(), 32u);
  for (const std::uint8_t byte : genesis) EXPECT_EQ(byte, 0u);
}

TEST(ViewCommitment, DecodeRejectsTruncatedInput) {
  Bytes encoded = make_view("obj", 1, ViewCommitment::genesis_link(), "x")
                      .encode();
  encoded.resize(encoded.size() / 2);
  EXPECT_THROW(ViewCommitment::decode(encoded), common::SerialError);
}

TEST(SignedViewCommitment, VerifiesProviderSignatureOnly) {
  const auto history = make_history("obj", 1);
  EXPECT_TRUE(history[0].verify(provider_identity().public_key()));

  SignedViewCommitment forged = history[0];
  forged.view.head_version = 99;  // signature no longer covers the view
  EXPECT_FALSE(forged.verify(provider_identity().public_key()));

  crypto::Drbg rng(std::uint64_t{70708});
  const pki::Identity other("other", 1024, rng);
  EXPECT_FALSE(history[0].verify(other.public_key()));
}

TEST(ViewHistory, AppendsWellLinkedCommitments) {
  ViewHistory history;
  EXPECT_TRUE(history.empty());
  EXPECT_EQ(history.head_seq(), 0u);
  EXPECT_EQ(history.head_hash(), ViewCommitment::genesis_link());

  std::string why;
  for (const auto& commit : make_history("obj", 4)) {
    EXPECT_TRUE(history.append(commit, &why)) << why;
  }
  EXPECT_EQ(history.head_seq(), 4u);
  EXPECT_EQ(history.head_hash(), history.commitments().back().view.hash());

  const SignedViewCommitment* third = history.at(3);
  ASSERT_NE(third, nullptr);
  EXPECT_EQ(third->view.global_seq, 3u);
  EXPECT_EQ(history.at(0), nullptr);
  EXPECT_EQ(history.at(5), nullptr);
}

TEST(ViewHistory, AppendRejectsSequenceLinkAndObservedHeadBreaks) {
  const auto commits = make_history("obj", 3);
  ViewHistory history;
  ASSERT_TRUE(history.append(commits[0]));

  std::string why;
  // Skipping a position.
  EXPECT_FALSE(history.append(commits[2], &why));
  EXPECT_FALSE(why.empty());

  // Wrong object.
  SignedViewCommitment wrong_object = commits[1];
  wrong_object.view.object_key = "other";
  EXPECT_FALSE(history.append(wrong_object, &why));

  // Broken hash link.
  SignedViewCommitment unlinked = commits[1];
  unlinked.view.prev_commit_hash = crypto::sha256(common::to_bytes("bogus"));
  EXPECT_FALSE(history.append(unlinked, &why));

  // Fork-join rule: the provider may only commit an op whose observed
  // head IS the head it extends.
  SignedViewCommitment stale_observer = commits[1];
  stale_observer.view.observed_head =
      crypto::sha256(common::to_bytes("stale"));
  EXPECT_FALSE(history.append(stale_observer, &why));

  // The well-formed commitment still goes through.
  EXPECT_TRUE(history.append(commits[1], &why)) << why;
  EXPECT_EQ(history.head_seq(), 2u);
}

TEST(WalkView, ValidatesStructureAndSignatures) {
  const auto commits = make_history("obj", 5);
  const auto& key = provider_identity().public_key();

  EXPECT_EQ(walk_view(commits, key).status, ViewWalkStatus::kValid);
  EXPECT_EQ(walk_view({}, key).status, ViewWalkStatus::kEmpty);

  auto broken = commits;
  broken[3].view.prev_commit_hash = crypto::sha256(common::to_bytes("cut"));
  broken[3].provider_sig = provider_identity().sign(broken[3].view.encode());
  const ViewWalkResult link_walk = walk_view(broken, key);
  EXPECT_EQ(link_walk.status, ViewWalkStatus::kBrokenLink);
  EXPECT_EQ(link_walk.at_seq, 4u);

  auto unsigned_tail = commits;
  unsigned_tail[4].view.head_version = 99;  // signature now stale
  const ViewWalkResult sig_walk = walk_view(unsigned_tail, key);
  EXPECT_EQ(sig_walk.status, ViewWalkStatus::kBadSignature);
  EXPECT_EQ(sig_walk.at_seq, 5u);

  EXPECT_FALSE(view_walk_status_name(ViewWalkStatus::kBrokenLink).empty());
}

TEST(EquivocationProof, ValidOnlyForConflictingSignedSamePositionPair) {
  const auto main_branch = make_history("obj", 3, "main");
  const auto fork_branch = make_history("obj", 3, "fork");
  const auto& key = provider_identity().public_key();

  EquivocationProof proof;
  proof.object_key = "obj";
  proof.a = main_branch[2];
  proof.b = fork_branch[2];
  std::string why;
  EXPECT_TRUE(proof.valid(key, &why)) << why;
  EXPECT_FALSE(proof.describe().empty());

  // Identical commitments prove nothing.
  EquivocationProof same;
  same.object_key = "obj";
  same.a = main_branch[2];
  same.b = main_branch[2];
  EXPECT_FALSE(same.valid(key, &why));

  // Different positions prove nothing.
  EquivocationProof skewed;
  skewed.object_key = "obj";
  skewed.a = main_branch[1];
  skewed.b = fork_branch[2];
  EXPECT_FALSE(skewed.valid(key, &why));

  // A forged half invalidates the proof.
  EquivocationProof forged = proof;
  forged.b.view.head_version = 99;
  EXPECT_FALSE(forged.valid(key, &why));

  // The wrong provider key invalidates the proof.
  crypto::Drbg rng(std::uint64_t{70709});
  const pki::Identity other("other", 1024, rng);
  EXPECT_FALSE(proof.valid(other.public_key(), &why));
}

TEST(EquivocationProof, RoundTripsThroughEncodeDecode) {
  const auto main_branch = make_history("obj", 2, "main");
  const auto fork_branch = make_history("obj", 2, "fork");
  EquivocationProof proof;
  proof.object_key = "obj";
  proof.a = main_branch[1];
  proof.b = fork_branch[1];

  const EquivocationProof back = EquivocationProof::decode(proof.encode());
  EXPECT_EQ(back.object_key, proof.object_key);
  EXPECT_EQ(back.a.encode(), proof.a.encode());
  EXPECT_EQ(back.b.encode(), proof.b.encode());
  std::string why;
  EXPECT_TRUE(back.valid(provider_identity().public_key(), &why)) << why;
}

}  // namespace
}  // namespace tpnr::consistency
