// The extended §2.4 decision table for fork disputes — one test per row,
// plus the determinism contract. The asymmetry under test: signed proofs
// convict, testimony at most escalates, broken evidence convicts nobody.
#include "consistency/arbitration.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/bytes.h"
#include "crypto/drbg.h"
#include "crypto/hash.h"
#include "pki/identity.h"

namespace tpnr::consistency {
namespace {

using common::Bytes;

const pki::Identity& provider_identity() {
  static const pki::Identity* identity = [] {
    crypto::Drbg rng(std::uint64_t{72727});
    return new pki::Identity("provider", 1024, rng);
  }();
  return *identity;
}

std::vector<SignedViewCommitment> make_history(const std::string& key,
                                               std::size_t n,
                                               const std::string& salt = "") {
  std::vector<SignedViewCommitment> out;
  Bytes prev = ViewCommitment::genesis_link();
  for (std::size_t seq = 1; seq <= n; ++seq) {
    ViewCommitment view;
    view.object_key = key;
    view.global_seq = seq;
    view.client = "alice";
    view.op_record_hash =
        crypto::sha256(common::to_bytes("op|" + salt + std::to_string(seq)));
    view.head_version = seq;
    view.head_root =
        crypto::sha256(common::to_bytes("root|" + salt + std::to_string(seq)));
    view.observed_head = prev;
    view.prev_commit_hash = prev;
    SignedViewCommitment signed_view;
    signed_view.provider_sig = provider_identity().sign(view.encode());
    signed_view.view = std::move(view);
    out.push_back(std::move(signed_view));
    prev = out.back().view.hash();
  }
  return out;
}

/// A history that shares `fork_at - 1` positions with `base` and then
/// diverges (same positions, different provider-signed contents).
std::vector<SignedViewCommitment> fork_of(
    const std::vector<SignedViewCommitment>& base, std::size_t fork_at,
    const std::string& salt) {
  std::vector<SignedViewCommitment> out(base.begin(),
                                        base.begin() + (fork_at - 1));
  Bytes prev = out.empty() ? ViewCommitment::genesis_link()
                           : out.back().view.hash();
  for (std::size_t seq = fork_at; seq <= base.size(); ++seq) {
    ViewCommitment view = base[seq - 1].view;
    view.head_root =
        crypto::sha256(common::to_bytes("root|" + salt + std::to_string(seq)));
    view.observed_head = prev;
    view.prev_commit_hash = prev;
    SignedViewCommitment signed_view;
    signed_view.provider_sig = provider_identity().sign(view.encode());
    signed_view.view = std::move(view);
    out.push_back(std::move(signed_view));
    prev = out.back().view.hash();
  }
  return out;
}

ForkDisputeCase base_case() {
  ForkDisputeCase dispute;
  dispute.object_key = "obj";
  dispute.provider_key = provider_identity().public_key();
  return dispute;
}

EquivocationProof make_proof(const std::string& salt_b = "fork") {
  const auto main_branch = make_history("obj", 3, "main");
  const auto fork_branch = fork_of(main_branch, 2, salt_b);
  EquivocationProof proof;
  proof.object_key = "obj";
  proof.a = main_branch[1];
  proof.b = fork_branch[1];
  return proof;
}

TEST(ForkArbitration, ValidPresentedProofConvictsProvider) {
  ForkDisputeCase dispute = base_case();
  dispute.proof = make_proof();

  const ForkRuling ruling = resolve_fork_dispute(dispute);
  EXPECT_EQ(ruling.kind, ForkRulingKind::kProviderConvicted);
  ASSERT_TRUE(ruling.proof.has_value());
  std::string why;
  EXPECT_TRUE(ruling.proof->valid(dispute.provider_key, &why)) << why;
  EXPECT_NE(ruling.rationale.find("valid equivocation proof"),
            std::string::npos);
}

TEST(ForkArbitration, ProofForDifferentObjectRejectsTheClaim) {
  ForkDisputeCase dispute = base_case();
  dispute.object_key = "some-other-object";
  dispute.proof = make_proof();

  const ForkRuling ruling = resolve_fork_dispute(dispute);
  EXPECT_EQ(ruling.kind, ForkRulingKind::kClaimRejected);
  EXPECT_NE(ruling.rationale.find("different object"), std::string::npos);
}

TEST(ForkArbitration, ForgedProofRejectsTheClaimNotEscalates) {
  ForkDisputeCase dispute = base_case();
  EquivocationProof forged = make_proof();
  forged.b.view.head_version = 99;  // breaks the signature
  dispute.proof = forged;
  // A valid accuser view rides along — the forged proof must still kill
  // the claim outright, or forging would cost nothing.
  dispute.accuser_view = make_history("obj", 3, "main");

  const ForkRuling ruling = resolve_fork_dispute(dispute);
  EXPECT_EQ(ruling.kind, ForkRulingKind::kClaimRejected);
  EXPECT_FALSE(ruling.proof.has_value());
}

TEST(ForkArbitration, NoProofAndNoViewHasNothingToDecideOn) {
  const ForkRuling ruling = resolve_fork_dispute(base_case());
  EXPECT_EQ(ruling.kind, ForkRulingKind::kClaimRejected);
  EXPECT_NE(ruling.rationale.find("nothing to decide"), std::string::npos);
}

TEST(ForkArbitration, BrokenAccuserViewRejectsTheClaim) {
  ForkDisputeCase dispute = base_case();
  dispute.accuser_view = make_history("obj", 4, "main");
  dispute.accuser_view[2].view.prev_commit_hash =
      crypto::sha256(common::to_bytes("cut"));
  dispute.accuser_view[2].provider_sig =
      provider_identity().sign(dispute.accuser_view[2].view.encode());

  const ForkRuling ruling = resolve_fork_dispute(dispute);
  EXPECT_EQ(ruling.kind, ForkRulingKind::kClaimRejected);
  EXPECT_NE(ruling.rationale.find("position 3"), std::string::npos);
}

TEST(ForkArbitration, ValidAccuserViewAloneEscalates) {
  ForkDisputeCase dispute = base_case();
  dispute.accuser_view = make_history("obj", 3, "main");

  const ForkRuling ruling = resolve_fork_dispute(dispute);
  EXPECT_EQ(ruling.kind, ForkRulingKind::kEscalate);
  EXPECT_NE(ruling.rationale.find("query the provider"), std::string::npos);
}

TEST(ForkArbitration, BrokenCounterViewEscalatesRatherThanConvicts) {
  ForkDisputeCase dispute = base_case();
  dispute.accuser_view = make_history("obj", 3, "main");
  dispute.counter_view = fork_of(dispute.accuser_view, 2, "fork");
  dispute.counter_view[2].view.head_version = 99;  // signature breaks

  const ForkRuling ruling = resolve_fork_dispute(dispute);
  EXPECT_EQ(ruling.kind, ForkRulingKind::kEscalate);
  EXPECT_NE(ruling.rationale.find("counter-view fails"), std::string::npos);
}

TEST(ForkArbitration, PrefixViewsAreConsistentNeverConvict) {
  const auto full = make_history("obj", 5, "main");
  ForkDisputeCase dispute = base_case();
  dispute.accuser_view.assign(full.begin(), full.begin() + 3);
  dispute.counter_view = full;

  const ForkRuling ruling = resolve_fork_dispute(dispute);
  EXPECT_EQ(ruling.kind, ForkRulingKind::kViewsConsistent);
  EXPECT_NE(ruling.rationale.find("3 shared positions"), std::string::npos);

  // Symmetric: the longer view accusing the shorter changes nothing.
  std::swap(dispute.accuser_view, dispute.counter_view);
  EXPECT_EQ(resolve_fork_dispute(dispute).kind,
            ForkRulingKind::kViewsConsistent);
}

TEST(ForkArbitration, DivergentValidViewsSynthesizeAProofAndConvict) {
  ForkDisputeCase dispute = base_case();
  dispute.accuser_view = make_history("obj", 4, "main");
  dispute.counter_view = fork_of(dispute.accuser_view, 3, "fork");

  const ForkRuling ruling = resolve_fork_dispute(dispute);
  EXPECT_EQ(ruling.kind, ForkRulingKind::kProviderConvicted);
  ASSERT_TRUE(ruling.proof.has_value());
  EXPECT_EQ(ruling.proof->a.view.global_seq, 3u);
  std::string why;
  EXPECT_TRUE(ruling.proof->valid(dispute.provider_key, &why)) << why;
  EXPECT_NE(ruling.rationale.find("diverge at position 3"),
            std::string::npos);
}

TEST(ForkArbitration, SameCaseSameRuling) {
  ForkDisputeCase dispute = base_case();
  dispute.accuser_view = make_history("obj", 4, "main");
  dispute.counter_view = fork_of(dispute.accuser_view, 2, "fork");

  const ForkRuling first = resolve_fork_dispute(dispute);
  const ForkRuling second = resolve_fork_dispute(dispute);
  EXPECT_EQ(first.kind, second.kind);
  EXPECT_EQ(first.rationale, second.rationale);
  ASSERT_TRUE(first.proof && second.proof);
  EXPECT_EQ(first.proof->encode(), second.proof->encode());
}

TEST(ForkArbitration, RulingNamesAreDistinct) {
  EXPECT_EQ(fork_ruling_name(ForkRulingKind::kProviderConvicted),
            "provider-convicted");
  EXPECT_EQ(fork_ruling_name(ForkRulingKind::kClaimRejected),
            "claim-rejected");
  EXPECT_EQ(fork_ruling_name(ForkRulingKind::kViewsConsistent),
            "views-consistent");
  EXPECT_EQ(fork_ruling_name(ForkRulingKind::kEscalate), "escalate");
}

}  // namespace
}  // namespace tpnr::consistency
