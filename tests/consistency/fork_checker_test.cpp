// ForkChecker classification: clean extension, duplicates, the latched
// conflict proof, and the suspicion (never accusation) handling of gaps
// and unlinked commitments.
#include "consistency/fork_checker.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/bytes.h"
#include "crypto/drbg.h"
#include "crypto/hash.h"
#include "pki/identity.h"

namespace tpnr::consistency {
namespace {

using common::Bytes;

const pki::Identity& provider_identity() {
  static const pki::Identity* identity = [] {
    crypto::Drbg rng(std::uint64_t{71717});
    return new pki::Identity("provider", 1024, rng);
  }();
  return *identity;
}

SignedViewCommitment sign_view(ViewCommitment view) {
  SignedViewCommitment signed_view;
  signed_view.provider_sig = provider_identity().sign(view.encode());
  signed_view.view = std::move(view);
  return signed_view;
}

std::vector<SignedViewCommitment> make_history(const std::string& key,
                                               std::size_t n,
                                               const std::string& salt = "") {
  std::vector<SignedViewCommitment> out;
  Bytes prev = ViewCommitment::genesis_link();
  for (std::size_t seq = 1; seq <= n; ++seq) {
    ViewCommitment view;
    view.object_key = key;
    view.global_seq = seq;
    view.client = "alice";
    view.op_record_hash =
        crypto::sha256(common::to_bytes("op|" + salt + std::to_string(seq)));
    view.head_version = seq;
    view.head_root =
        crypto::sha256(common::to_bytes("root|" + salt + std::to_string(seq)));
    view.observed_head = prev;
    view.prev_commit_hash = prev;
    out.push_back(sign_view(std::move(view)));
    prev = out.back().view.hash();
  }
  return out;
}

ForkChecker make_checker() {
  return ForkChecker("obj", provider_identity().public_key());
}

TEST(ForkChecker, ExtendsAndRecognisesDuplicates) {
  ForkChecker checker = make_checker();
  const auto commits = make_history("obj", 3);

  EXPECT_EQ(checker.observe(commits[0]), ObserveOutcome::kExtended);
  EXPECT_EQ(checker.observe(commits[1]), ObserveOutcome::kExtended);
  EXPECT_EQ(checker.observe(commits[1]), ObserveOutcome::kDuplicate);
  EXPECT_EQ(checker.observe(commits[0]), ObserveOutcome::kDuplicate);
  EXPECT_EQ(checker.observe(commits[2]), ObserveOutcome::kExtended);

  EXPECT_EQ(checker.view().head_seq(), 3u);
  EXPECT_FALSE(checker.forked());
  EXPECT_EQ(checker.suspicions(), 0u);
}

TEST(ForkChecker, ConflictLatchesFirstEquivocationProof) {
  ForkChecker checker = make_checker();
  const auto main_branch = make_history("obj", 3, "main");
  const auto fork_branch = make_history("obj", 3, "fork");
  for (const auto& commit : main_branch) checker.observe(commit);

  EXPECT_EQ(checker.observe(fork_branch[1]), ObserveOutcome::kConflict);
  ASSERT_TRUE(checker.forked());
  ASSERT_TRUE(checker.proof().has_value());
  const EquivocationProof first = *checker.proof();
  std::string why;
  EXPECT_TRUE(first.valid(provider_identity().public_key(), &why)) << why;
  EXPECT_EQ(first.a.view.global_seq, first.b.view.global_seq);

  // A second conflict still classifies but never overwrites the proof.
  EXPECT_EQ(checker.observe(fork_branch[2]), ObserveOutcome::kConflict);
  EXPECT_EQ(checker.proof()->encode(), first.encode());

  // The witnessed history itself is untouched by conflicting observations.
  EXPECT_EQ(checker.view().head_seq(), 3u);
  EXPECT_EQ(checker.view().at(2)->encode(), main_branch[1].encode());
}

TEST(ForkChecker, GapsAndUnlinkedCountAsSuspicionsNotForks) {
  ForkChecker checker = make_checker();
  const auto commits = make_history("obj", 4);
  checker.observe(commits[0]);

  // Skipping ahead: could be packet loss, never an accusation.
  EXPECT_EQ(checker.observe(commits[2]), ObserveOutcome::kGap);
  EXPECT_EQ(checker.suspicions(), 1u);
  EXPECT_FALSE(checker.forked());

  // Next position but the links disagree: suspicion too (a valid signed
  // commitment for an UNSEEN position cannot prove which side forked).
  SignedViewCommitment unlinked = commits[1];
  unlinked.view.prev_commit_hash = crypto::sha256(common::to_bytes("cut"));
  unlinked.view.observed_head = unlinked.view.prev_commit_hash;
  unlinked.provider_sig = provider_identity().sign(unlinked.view.encode());
  EXPECT_EQ(checker.observe(unlinked), ObserveOutcome::kUnlinked);
  EXPECT_EQ(checker.suspicions(), 2u);
  EXPECT_FALSE(checker.forked());

  // The unlinked commitment was never absorbed, so the true position 2
  // still extends cleanly after a re-sync — suspicions alone never turn
  // into an accusation.
  EXPECT_EQ(checker.observe(commits[1]), ObserveOutcome::kExtended);
  EXPECT_EQ(checker.observe(commits[2]), ObserveOutcome::kExtended);
  EXPECT_FALSE(checker.forked());
  EXPECT_EQ(checker.view().head_seq(), 3u);
}

TEST(ForkChecker, RejectsWrongObjectAndBadSignatures) {
  ForkChecker checker = make_checker();
  const auto other = make_history("other-obj", 1);
  EXPECT_EQ(checker.observe(other[0]), ObserveOutcome::kRejected);

  auto forged = make_history("obj", 1)[0];
  forged.view.head_version = 99;
  EXPECT_EQ(checker.observe(forged), ObserveOutcome::kRejected);

  EXPECT_TRUE(checker.view().empty());
  EXPECT_FALSE(checker.forked());
  EXPECT_EQ(checker.suspicions(), 0u);
}

TEST(ForkChecker, MergeReturnsWorstOutcomeInBatch) {
  const auto main_branch = make_history("obj", 4, "main");
  const auto fork_branch = make_history("obj", 4, "fork");

  // Overlapping honest tails: the batch verdict stays in the clean
  // extended/duplicate band and the history catches up.
  ForkChecker honest = make_checker();
  honest.observe(main_branch[0]);
  honest.observe(main_branch[1]);
  EXPECT_EQ(honest.merge(std::span(main_branch).subspan(0, 3)),
            ObserveOutcome::kDuplicate);  // first overlap fixes the verdict
  EXPECT_EQ(honest.view().head_seq(), 3u);
  EXPECT_EQ(honest.merge(std::span(main_branch).subspan(3)),
            ObserveOutcome::kExtended);
  EXPECT_FALSE(honest.forked());

  // A batch containing one conflicting position is a fork regardless of
  // how many clean commitments surround it.
  ForkChecker victim = make_checker();
  victim.merge(main_branch);
  EXPECT_EQ(victim.merge(fork_branch), ObserveOutcome::kConflict);
  EXPECT_TRUE(victim.forked());

  // A gapped tail merges as suspicion, not conflict.
  ForkChecker lagging = make_checker();
  lagging.observe(main_branch[0]);
  EXPECT_EQ(lagging.merge(std::span(main_branch).subspan(2)),
            ObserveOutcome::kGap);
  EXPECT_FALSE(lagging.forked());
  EXPECT_GT(lagging.suspicions(), 0u);
}

TEST(ForkChecker, HonestGossipOverlapNeverAccuses) {
  // Two honest clients at different depths exchange full witnessed views
  // repeatedly; neither ever forks — the no-false-accusation property at
  // the checker level.
  const auto commits = make_history("obj", 6);
  ForkChecker fast = make_checker();
  ForkChecker slow = make_checker();
  fast.merge(commits);
  slow.merge(std::span(commits).subspan(0, 3));

  for (int round = 0; round < 3; ++round) {
    slow.merge(fast.view().commitments());
    fast.merge(slow.view().commitments());
  }
  EXPECT_FALSE(fast.forked());
  EXPECT_FALSE(slow.forked());
  EXPECT_EQ(slow.view().head_seq(), 6u);
  EXPECT_EQ(fast.suspicions(), 0u);
  EXPECT_EQ(slow.suspicions(), 0u);
}

TEST(ForkChecker, OutcomeNamesAreDistinct) {
  EXPECT_NE(observe_outcome_name(ObserveOutcome::kConflict),
            observe_outcome_name(ObserveOutcome::kGap));
  EXPECT_FALSE(observe_outcome_name(ObserveOutcome::kExtended).empty());
}

}  // namespace
}  // namespace tpnr::consistency
