// The fork-consistency protocol end-to-end on the simulated network:
// multi-client store/open/mutate through one provider-signed global order,
// retry and stale-catch-up flows, the equivocation attack with gossip
// detection, the kForkReport path into the auditor's ledger, and the
// storage layer's per-client divergent serving.
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "audit/auditor.h"
#include "consistency/arbitration.h"
#include "consistency/client.h"
#include "consistency/provider.h"
#include "crypto/drbg.h"
#include "net/network.h"

namespace tpnr::consistency {
namespace {

using common::Bytes;

constexpr std::size_t kChunkSize = 64;

const pki::Identity& pooled(const std::string& name) {
  static const auto* pool = [] {
    auto* identities = new std::map<std::string, pki::Identity>();
    crypto::Drbg rng(std::uint64_t{73737});
    for (const char* id : {"alice", "carol", "bob", "auditor"}) {
      identities->emplace(id, pki::Identity(id, 1024, rng));
    }
    return identities;
  }();
  return pool->at(name);
}

class ConsProtocolTest : public ::testing::Test {
 protected:
  ConsProtocolTest()
      : network_(std::uint64_t{930}),
        rng_(std::uint64_t{931}),
        alice_id_(pooled("alice")),
        carol_id_(pooled("carol")),
        bob_id_(pooled("bob")),
        auditor_id_(pooled("auditor")),
        alice_("alice", network_, alice_id_, rng_),
        carol_("carol", network_, carol_id_, rng_),
        bob_("bob", network_, bob_id_, rng_),
        auditor_("auditor", network_, auditor_id_, rng_, ledger_) {
    alice_.trust_peer("bob", bob_id_.public_key());
    alice_.trust_peer("carol", carol_id_.public_key());
    alice_.trust_peer("auditor", auditor_id_.public_key());
    carol_.trust_peer("bob", bob_id_.public_key());
    carol_.trust_peer("alice", alice_id_.public_key());
    carol_.trust_peer("auditor", auditor_id_.public_key());
    bob_.trust_peer("alice", alice_id_.public_key());
    bob_.trust_peer("carol", carol_id_.public_key());
    auditor_.trust_peer("alice", alice_id_.public_key());
    auditor_.trust_peer("carol", carol_id_.public_key());
    auditor_.trust_peer("bob", bob_id_.public_key());
  }

  /// Alice creates `key`, carol joins it; both end synchronized at v1.
  void shared_object(const std::string& key, std::size_t chunk_count) {
    crypto::Drbg data_rng(std::uint64_t{chunk_count + 7});
    alice_.store_shared("bob", "ttp", key,
                        data_rng.bytes(chunk_count * kChunkSize), kChunkSize);
    network_.run();
    ASSERT_TRUE(carol_.open_shared("bob", "ttp", key));
    network_.run();
    ASSERT_NE(alice_.object(key), nullptr);
    ASSERT_NE(carol_.object(key), nullptr);
    ASSERT_TRUE(carol_.object(key)->opened);
  }

  /// Forks `key` (alice on branch 0, carol on branch 1) and commits one
  /// divergent update on each branch.
  void forked_object(const std::string& key) {
    shared_object(key, 4);
    ASSERT_TRUE(bob_.fork_object(key, {{"alice", 0}, {"carol", 1}}));
    crypto::Drbg data_rng(std::uint64_t{555});
    ASSERT_TRUE(alice_.update(key, 0, data_rng.bytes(kChunkSize)));
    network_.run();
    ASSERT_TRUE(carol_.update(key, 0, data_rng.bytes(kChunkSize)));
    network_.run();
  }

  net::Network network_;
  crypto::Drbg rng_;
  pki::Identity alice_id_;
  pki::Identity carol_id_;
  pki::Identity bob_id_;
  pki::Identity auditor_id_;
  audit::AuditLedger ledger_;
  ConsClientActor alice_;
  ConsClientActor carol_;
  ConsProviderActor bob_;
  audit::AuditorActor auditor_;
};

TEST_F(ConsProtocolTest, StoreSharedCommitsGlobalPositionOne) {
  crypto::Drbg data_rng(std::uint64_t{11});
  alice_.store_shared("bob", "ttp", "doc", data_rng.bytes(4 * kChunkSize),
                      kChunkSize);
  network_.run();

  const auto* obj = alice_.object("doc");
  ASSERT_NE(obj, nullptr);
  EXPECT_TRUE(obj->opened);
  EXPECT_EQ(obj->receipts, 1u);
  EXPECT_FALSE(obj->pending.has_value());
  EXPECT_EQ(obj->chain.head_version(), 1u);
  ASSERT_TRUE(obj->checker.has_value());
  EXPECT_EQ(obj->checker->view().head_seq(), 1u);
  EXPECT_EQ(obj->checker->view().at(1)->view.client, "alice");
  EXPECT_EQ(obj->chain.head_root(), obj->tree.root());

  const auto* state = bob_.object_state("doc");
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->creator, "alice");
  ASSERT_EQ(state->branches.size(), 1u);
  EXPECT_EQ(state->branches[0].views.head_hash(),
            obj->checker->view().head_hash());
  EXPECT_EQ(bob_.store().version_of("doc"), 1u);
  EXPECT_FALSE(bob_.store().equivocation_armed("doc"));
}

TEST_F(ConsProtocolTest, OpenSharedReplaysTheLogFromGenesis) {
  shared_object("doc", 4);
  const auto* alice_obj = alice_.object("doc");
  const auto* carol_obj = carol_.object("doc");
  EXPECT_EQ(carol_obj->chain.head_version(), alice_obj->chain.head_version());
  EXPECT_EQ(carol_obj->tree.root(), alice_obj->tree.root());
  EXPECT_EQ(carol_obj->chunks, alice_obj->chunks);
  EXPECT_EQ(carol_obj->checker->view().head_hash(),
            alice_obj->checker->view().head_hash());
  EXPECT_EQ(carol_obj->chunk_size, kChunkSize);
}

TEST_F(ConsProtocolTest, InterleavedClientsShareOneGlobalOrder) {
  shared_object("doc", 4);
  crypto::Drbg data_rng(std::uint64_t{22});

  ASSERT_TRUE(alice_.update("doc", 1, data_rng.bytes(kChunkSize)));
  network_.run();
  ASSERT_TRUE(carol_.append_chunk("doc", data_rng.bytes(kChunkSize)));
  network_.run();
  ASSERT_TRUE(alice_.insert("doc", 0, data_rng.bytes(kChunkSize)));
  network_.run();
  ASSERT_TRUE(carol_.erase("doc", 2));
  network_.run();

  const auto* alice_obj = alice_.object("doc");
  const auto* carol_obj = carol_.object("doc");
  EXPECT_EQ(alice_obj->chain.head_version(), 5u);
  EXPECT_EQ(carol_obj->chain.head_version(), 5u);
  EXPECT_EQ(alice_obj->tree.root(), carol_obj->tree.root());
  EXPECT_EQ(alice_obj->chunks, carol_obj->chunks);
  EXPECT_EQ(alice_obj->receipts, 3u);  // store + two mutations
  EXPECT_EQ(carol_obj->receipts, 2u);
  EXPECT_EQ(alice_obj->rejected, 0u);
  EXPECT_EQ(carol_obj->rejected, 0u);

  // One global order: both checkers witnessed the identical commitment
  // chain, alternating submitters.
  const auto& commits = alice_obj->checker->view().commitments();
  ASSERT_EQ(commits.size(), 5u);
  EXPECT_EQ(commits[1].view.client, "alice");
  EXPECT_EQ(commits[2].view.client, "carol");
  EXPECT_EQ(commits[3].view.client, "alice");
  EXPECT_EQ(commits[4].view.client, "carol");
  EXPECT_EQ(alice_obj->checker->view().head_hash(),
            carol_obj->checker->view().head_hash());
  EXPECT_EQ(alice_obj->checker->suspicions(), 0u);
  EXPECT_FALSE(alice_obj->checker->forked());
}

TEST_F(ConsProtocolTest, DroppedCommitIsRetriedAndReceiptResent) {
  shared_object("doc", 4);

  // Eat the first bob -> alice envelope after the fixture settles: the
  // commit for alice's next update. Her receipt timer must retransmit and
  // bob must re-issue the receipt without re-applying.
  int drops = 0;
  network_.set_adversary("bob", "alice", [&](const net::Envelope&) {
    net::AdversaryAction action;
    if (drops == 0) {
      ++drops;
      action.kind = net::AdversaryAction::Kind::kDrop;
    }
    return action;
  });

  crypto::Drbg data_rng(std::uint64_t{33});
  ASSERT_TRUE(alice_.update("doc", 0, data_rng.bytes(kChunkSize)));
  network_.run();

  const auto* obj = alice_.object("doc");
  EXPECT_EQ(obj->receipts, 2u);  // store + the retried update
  EXPECT_FALSE(obj->pending.has_value());
  EXPECT_EQ(obj->chain.head_version(), 2u);
  EXPECT_EQ(bob_.receipts_resent(), 1u);
  EXPECT_EQ(obj->timeouts, 0u);
  const auto* state = bob_.object_state("doc");
  EXPECT_EQ(state->branches[0].chain.head_version(), 2u);  // applied once
}

TEST_F(ConsProtocolTest, StaleSubmissionCatchesUpAndResubmits) {
  shared_object("doc", 4);

  // Carol misses alice's commit entirely, then submits her own op against
  // her stale view. The provider bounces it with the missing suffix; carol
  // absorbs it, rebuilds the record against the caught-up head and
  // resubmits — no client-visible failure.
  network_.set_adversary("bob", "carol", [](const net::Envelope&) {
    net::AdversaryAction action;
    action.kind = net::AdversaryAction::Kind::kDrop;
    return action;
  });
  crypto::Drbg data_rng(std::uint64_t{44});
  ASSERT_TRUE(alice_.update("doc", 0, data_rng.bytes(kChunkSize)));
  network_.run();
  network_.clear_adversary("bob", "carol");

  EXPECT_EQ(carol_.object("doc")->chain.head_version(), 1u);  // missed it
  ASSERT_TRUE(carol_.update("doc", 1, data_rng.bytes(kChunkSize)));
  network_.run();

  const auto* carol_obj = carol_.object("doc");
  EXPECT_EQ(carol_obj->stale_resubmits, 1u);
  EXPECT_EQ(carol_obj->rejected, 0u);
  EXPECT_EQ(carol_obj->receipts, 1u);
  EXPECT_EQ(carol_obj->chain.head_version(), 3u);
  EXPECT_EQ(carol_obj->tree.root(), alice_.object("doc")->tree.root());
  EXPECT_GE(bob_.ops_rejected(), 1u);  // the stale bounce
  EXPECT_FALSE(carol_obj->checker->forked());  // lag is never a fork
}

TEST_F(ConsProtocolTest, WithheldCommitsTimeOutWithoutAccusation) {
  shared_object("doc", 4);
  bob_.set_behavior(ConsProviderBehavior{.send_commits = false});

  crypto::Drbg data_rng(std::uint64_t{55});
  ASSERT_TRUE(alice_.update("doc", 0, data_rng.bytes(kChunkSize)));
  network_.run();

  const auto* obj = alice_.object("doc");
  EXPECT_EQ(obj->timeouts, 1u);
  EXPECT_FALSE(obj->pending.has_value());  // dropped after retries
  EXPECT_EQ(obj->chain.head_version(), 1u);
  // Silence is suspicious but never evidence: no fork, no report.
  EXPECT_FALSE(obj->checker->forked());
  EXPECT_EQ(alice_.forks_detected(), 0u);
}

TEST_F(ConsProtocolTest, GossipDetectsForkAndReportsToArbiter) {
  forked_object("doc");

  // Each victim's branch is internally perfect: no fork visible yet.
  EXPECT_EQ(alice_.forks_detected(), 0u);
  EXPECT_EQ(carol_.forks_detected(), 0u);

  GossipOptions gossip;
  gossip.rounds = 4;
  gossip.arbiter = "auditor";
  alice_.add_gossip_peer("carol");
  carol_.add_gossip_peer("alice");
  alice_.enable_gossip(gossip);
  carol_.enable_gossip(gossip);
  network_.run();

  // One round of comparing notes convicts: both clients latch a proof.
  EXPECT_GE(alice_.forks_detected() + carol_.forks_detected(), 1u);
  const EquivocationProof* proof = alice_.fork_proof("doc");
  if (proof == nullptr) proof = carol_.fork_proof("doc");
  ASSERT_NE(proof, nullptr);
  std::string why;
  EXPECT_TRUE(proof->valid(bob_id_.public_key(), &why)) << why;

  // The kForkReport reached the auditor and convicted in the ledger.
  EXPECT_GE(auditor_.counters().forks_detected, 1u);
  EXPECT_EQ(auditor_.counters().fork_reports_rejected, 0u);
  bool ledger_has_fork = false;
  for (const auto& entry : ledger_.entries()) {
    if (entry.verdict == audit::AuditVerdict::kForkDetected &&
        entry.object_key == "doc" && entry.provider == "bob") {
      ledger_has_fork = true;
    }
  }
  EXPECT_TRUE(ledger_has_fork);
  EXPECT_TRUE(ledger_.verify_chain());

  // The same proof convicts at arbitration without either client's
  // testimony.
  ForkDisputeCase dispute;
  dispute.object_key = "doc";
  dispute.provider_key = bob_id_.public_key();
  dispute.proof = *proof;
  EXPECT_EQ(resolve_fork_dispute(dispute).kind,
            ForkRulingKind::kProviderConvicted);
}

TEST_F(ConsProtocolTest, ArbitrationFromWitnessedViewsAlsoConvicts) {
  forked_object("doc");

  // Even with no latched proof, the two witnessed views handed to the TTP
  // synthesize one (the multi-party dispute path).
  ForkDisputeCase dispute;
  dispute.object_key = "doc";
  dispute.provider_key = bob_id_.public_key();
  dispute.accuser_view = alice_.object("doc")->checker->view().commitments();
  dispute.counter_view = carol_.object("doc")->checker->view().commitments();

  const ForkRuling ruling = resolve_fork_dispute(dispute);
  EXPECT_EQ(ruling.kind, ForkRulingKind::kProviderConvicted);
  ASSERT_TRUE(ruling.proof.has_value());
  EXPECT_EQ(ruling.proof->a.view.global_seq, 2u);  // first divergence

  // Accuser view alone (no counter-view): escalates, never convicts.
  dispute.counter_view.clear();
  EXPECT_EQ(resolve_fork_dispute(dispute).kind, ForkRulingKind::kEscalate);
}

TEST_F(ConsProtocolTest, EquivocationArmsDivergentStoreServing) {
  forked_object("doc");

  ASSERT_TRUE(bob_.forked("doc"));
  ASSERT_TRUE(bob_.store().equivocation_armed("doc"));

  auto alice_view = bob_.store().get_as("doc", "alice");
  auto carol_view = bob_.store().get_as("doc", "carol");
  ASSERT_TRUE(alice_view.has_value());
  ASSERT_TRUE(carol_view.has_value());
  EXPECT_EQ(alice_view->version, 2u);
  EXPECT_EQ(carol_view->version, 2u);
  EXPECT_FALSE(alice_view->data == carol_view->data)
      << "divergent branches must serve different bytes";

  // The divergence is in the per-key fault log as kEquivocation events.
  bool logged = false;
  for (const auto& event : bob_.store().fault_log_for("doc")) {
    logged = logged || event.kind == storage::FaultKind::kEquivocation;
  }
  EXPECT_TRUE(logged);
}

TEST_F(ConsProtocolTest, HonestRunWithGossipNeverAccuses) {
  shared_object("doc", 4);
  GossipOptions gossip;
  gossip.rounds = 3;
  gossip.arbiter = "auditor";
  alice_.add_gossip_peer("carol");
  carol_.add_gossip_peer("alice");
  alice_.enable_gossip(gossip);
  carol_.enable_gossip(gossip);

  crypto::Drbg data_rng(std::uint64_t{66});
  ASSERT_TRUE(alice_.update("doc", 0, data_rng.bytes(kChunkSize)));
  network_.run();
  ASSERT_TRUE(carol_.update("doc", 1, data_rng.bytes(kChunkSize)));
  network_.run();
  alice_.gossip_now();
  carol_.gossip_now();
  network_.run();

  EXPECT_EQ(alice_.forks_detected(), 0u);
  EXPECT_EQ(carol_.forks_detected(), 0u);
  EXPECT_FALSE(alice_.object("doc")->checker->forked());
  EXPECT_FALSE(carol_.object("doc")->checker->forked());
  EXPECT_EQ(auditor_.counters().forks_detected, 0u);
  EXPECT_EQ(ledger_.size(), 0u);
  EXPECT_GT(alice_.gossip_rounds(), 0u);
}

TEST_F(ConsProtocolTest, MalformedForkReportIsRejectedNotRecorded) {
  forked_object("doc");
  // A proof naming the wrong object convicts nobody.
  ForkDisputeCase dispute;
  const auto* alice_obj = alice_.object("doc");
  ASSERT_NE(alice_obj, nullptr);

  EquivocationProof bogus;
  bogus.object_key = "doc";
  bogus.a = *alice_obj->checker->view().at(1);
  bogus.b = *alice_obj->checker->view().at(1);  // identical halves
  EXPECT_FALSE(auditor_.report_fork("bob", "txn", "doc", bogus, "alice"));
  EXPECT_EQ(auditor_.counters().forks_detected, 0u);
  EXPECT_EQ(auditor_.counters().fork_reports_rejected, 1u);
  EXPECT_EQ(ledger_.size(), 0u);

  // An unknown provider key can never convict either.
  EXPECT_FALSE(auditor_.report_fork("mallory", "txn", "doc", bogus, "alice"));
  EXPECT_EQ(auditor_.counters().fork_reports_rejected, 2u);
}

}  // namespace
}  // namespace tpnr::consistency
